(** Synthetic ACAS-Xu-style benchmark instances.

    The real ACAS-Xu suite is 45 trained collision-avoidance networks
    (5 inputs, 6 hidden layers of 50 ReLUs, 5 advisory outputs) checked
    against ten safety properties.  The trained weights are not
    redistributable here, so this module generates {e seeded synthetic
    stand-ins} of the same shape: 5-in/5-out MLPs (default 6×50,
    scalable down for tests) with the classic property-1..4 shapes —

    - {b P1}: the clear-of-conflict score [Y_0] stays below a
      threshold (violation: [Y_0 ≥ c], a single literal);
    - {b P2}: [Y_0] is never the {e maximal} score (violation:
      [∧_{i≥1} Y_i ≤ Y_0], a 4-literal conjunction exercising the
      VNNLIB max-gadget);
    - {b P3}/{b P4}: [Y_0] is never the {e minimal} score on two
      different approach geometries (violation: [∧_{i≥1} Y_0 ≤ Y_i]).

    Input boxes follow the normalised ACAS geometry, jittered per seed;
    the P1 threshold is calibrated against sampled outputs so the
    instance is neither vacuous nor trivially violated.  Everything is
    deterministic in [seed]. *)

type property_id = P1 | P2 | P3 | P4

val property_ids : property_id list
val property_name : property_id -> string
(** ["prop1"] … ["prop4"]. *)

val network :
  ?hidden_layers:int -> ?width:int -> seed:int -> unit -> Abonn_nn.Network.t
(** He-initialised 5-in/5-out MLP (default [~hidden_layers:6]
    [~width:50], the ACAS-Xu shape). *)

val spec :
  ?hardness:float ->
  network:Abonn_nn.Network.t ->
  seed:int ->
  property_id ->
  Abonn_spec.Vnnlib.t
(** The property as a VNNLIB violation spec against [network] (which
    must be 5-in/5-out).  [hardness] (default 0.05) shifts the P1
    threshold beyond the sampled output maximum, as a fraction of the
    sampled spread. *)

val problem :
  ?hidden_layers:int ->
  ?width:int ->
  ?hardness:float ->
  seed:int ->
  property_id ->
  Abonn_spec.Problem.t
(** [network] + [spec] lowered through {!Abonn_spec.Vnnlib.problems}
    (each property is a single disjunct, so exactly one problem; P2–P4
    carry the max-gadget). *)
