(** Verification-instance generator (§V-A "Benchmarks").

    The paper selects L∞ local-robustness problems that are "neither too
    easy nor too hard".  We reproduce that selection pressure
    quantitatively with two per-image calibration radii:

    - the {e certified radius} [r_cert]: the largest ε the root DeepPoly
      call proves outright (bisection);
    - the {e attack radius} [r_att]: the smallest ε at which the
      best-effort attack portfolio (FGSM/PGD/random) finds a concrete
      adversarial example (bisection above [r_cert]).

    Instances are then placed in {e bands} spanning the interesting
    range: between the radii live certifiable-but-hard and
    deep-violation problems (BaB must work for its verdict); just above
    [r_att] live violated problems whose counterexamples are easy for an
    attack but may sit deep in the BaB tree; far above it everything is
    trivially violated.  Problems the root call already decides are
    discarded (the paper's Fig. 3 keeps only trees that actually
    branch). *)

type band =
  | Between of float
      (** [Between f], f ∈ [0,1]: ε = r_cert + f·(r_att − r_cert); the
          certifiable-hard / deep-violation band *)
  | Above_attack of float
      (** [Above_attack f], f ≥ 1: ε = f·r_att; shallow-violation band *)

type t = {
  id : string;            (** e.g. ["cifar_base/07#b0.50"] *)
  model : string;
  index : int;            (** test-image index *)
  eps : float;
  factor : float;         (** ε / r_cert, for reporting *)
  band : band;
  problem : Abonn_spec.Problem.t;
}

val certified_radius :
  affine:Abonn_nn.Affine.t ->
  center:float array ->
  label:int ->
  num_classes:int ->
  float
(** Largest ε (within [\[0, 0.5\]], 10 bisection steps) whose clipped
    L∞ ball the root DeepPoly call certifies. *)

val attack_radius :
  affine:Abonn_nn.Affine.t ->
  center:float array ->
  label:int ->
  num_classes:int ->
  r_cert:float ->
  float option
(** Smallest ε (10 bisection steps in [(r_cert, 8·r_cert]]) at which the
    attack portfolio succeeds; [None] when even the largest probe
    resists attack. *)

val default_bands : band list
(** [Between 0.35; Above_attack 0.99; Above_attack 1.01; Between 0.85;
    Above_attack 1.2; Between 0.15] — a mixture of certifiable (easy and
    hard), attack-boundary deep-violation, and shallow-violation
    problems.  The 0.99/1.01 bands straddle the attack radius, where
    counterexamples exist but sit deep in the BaB tree — the regime the
    paper's speedups live in. *)

val generate :
  ?count:int ->
  ?bands:band list ->
  Models.trained ->
  t list
(** [generate trained] builds up to [count] (default 20) instances,
    cycling over [bands] and the correctly-classified test images,
    keeping only problems the root AppVer call cannot decide.
    Deterministic. *)

val acas :
  ?count:int ->
  ?seed:int ->
  ?hidden_layers:int ->
  ?width:int ->
  unit ->
  t list
(** Synthetic ACAS-Xu-style instances (see {!Acas}): [count] (default
    8) instances cycling properties 1–4 over successive seeds starting
    at [seed].  [eps] reports the mean per-coordinate half-width of the
    input box and [band] is a placeholder ([Between 0.]) — the ACAS
    boxes are fixed by the property, not calibrated per image.
    Deterministic. *)
