module Affine = Abonn_nn.Affine
module Trainer = Abonn_nn.Trainer
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Problem = Abonn_spec.Problem
module Outcome = Abonn_prop.Outcome
module Attack = Abonn_attack.Attack

type band =
  | Between of float
  | Above_attack of float

type t = {
  id : string;
  model : string;
  index : int;
  eps : float;
  factor : float;
  band : band;
  problem : Problem.t;
}

let problem_of ~affine ~center ~label ~num_classes ~eps =
  let region = Region.linf_ball ~clip:(0.0, 1.0) ~center ~eps () in
  let property = Property.robustness ~num_classes ~label in
  Problem.of_affine ~affine ~region ~property ()

let proves ~affine ~center ~label ~num_classes ~eps =
  let problem = problem_of ~affine ~center ~label ~num_classes ~eps in
  Outcome.proved (Abonn_prop.Deeppoly.run problem [])

let certified_radius ~affine ~center ~label ~num_classes =
  let rec bisect lo hi n =
    if n = 0 then lo
    else begin
      let mid = (lo +. hi) /. 2.0 in
      if proves ~affine ~center ~label ~num_classes ~eps:mid then bisect mid hi (n - 1)
      else bisect lo mid (n - 1)
    end
  in
  if not (proves ~affine ~center ~label ~num_classes ~eps:1e-5) then 1e-5
  else bisect 1e-5 0.5 10

let attacked ~affine ~center ~label ~num_classes ~eps =
  let problem = problem_of ~affine ~center ~label ~num_classes ~eps in
  Attack.best_effort.Attack.run (Abonn_util.Rng.create 7) problem <> None

let attack_radius ~affine ~center ~label ~num_classes ~r_cert =
  let hi0 = 8.0 *. r_cert in
  if not (attacked ~affine ~center ~label ~num_classes ~eps:hi0) then None
  else begin
    let rec bisect lo hi n =
      if n = 0 then hi
      else begin
        let mid = (lo +. hi) /. 2.0 in
        if attacked ~affine ~center ~label ~num_classes ~eps:mid then bisect lo mid (n - 1)
        else bisect mid hi (n - 1)
      end
    in
    Some (bisect r_cert hi0 10)
  end

let default_bands =
  [ Between 0.35; Above_attack 0.99; Above_attack 1.01; Between 0.85; Above_attack 1.2;
    Between 0.15 ]

(* A problem is "meaningful" in the paper's sense when the root AppVer
   call neither proves it nor validates its candidate: BaB must actually
   branch (tree size >= 3 in Fig. 3's terms). *)
let undecided_at_root problem =
  let outcome = Abonn_prop.Deeppoly.run problem [] in
  (not (Outcome.proved outcome))
  &&
  match outcome.Outcome.candidate with
  | Some x -> not (Problem.is_counterexample problem x)
  | None -> true

let eps_for_band ~r_cert ~r_att band =
  match band, r_att with
  | Between f, Some r -> r_cert +. (f *. (r -. r_cert))
  | Between f, None -> r_cert *. (1.0 +. (3.0 *. f))
  | Above_attack f, Some r -> f *. r
  | Above_attack f, None -> r_cert *. (2.0 *. f)

let band_tag = function
  | Between f -> Printf.sprintf "b%.2f" f
  | Above_attack f -> Printf.sprintf "a%.2f" f

let generate ?(count = 20) ?(bands = default_bands) (trained : Models.trained) =
  let affine = Abonn_nn.Affine.of_network trained.Models.network in
  let dataset = trained.Models.dataset in
  let num_classes = dataset.Synth.num_classes in
  let bands = Array.of_list bands in
  let correct =
    dataset.Synth.test |> Array.to_list
    |> List.mapi (fun i s -> (i, s))
    |> List.filter (fun (_, s) ->
           Abonn_nn.Network.predict trained.Models.network s.Trainer.features
           = s.Trainer.label)
  in
  let rec build acc n attempt = function
    | [] -> List.rev acc
    | _ when n >= count -> List.rev acc
    | (index, sample) :: rest ->
      let center = sample.Trainer.features in
      let label = sample.Trainer.label in
      let r_cert = certified_radius ~affine ~center ~label ~num_classes in
      let r_att = attack_radius ~affine ~center ~label ~num_classes ~r_cert in
      let band = bands.(attempt mod Array.length bands) in
      let eps = eps_for_band ~r_cert ~r_att band in
      let problem = problem_of ~affine ~center ~label ~num_classes ~eps in
      if eps > 0.0 && undecided_at_root problem then begin
        let id =
          Printf.sprintf "%s/%02d#%s" trained.Models.spec.Models.name index (band_tag band)
        in
        let inst =
          { id;
            model = trained.Models.spec.Models.name;
            index;
            eps;
            factor = eps /. r_cert;
            band;
            problem }
        in
        build (inst :: acc) (n + 1) (attempt + 1) rest
      end
      else build acc n (attempt + 1) rest
  in
  build [] 0 0 correct

let acas ?(count = 8) ?(seed = 0) ?hidden_layers ?width () =
  List.init count (fun i ->
      let pid = List.nth Acas.property_ids (i mod List.length Acas.property_ids) in
      let s = seed + (i / List.length Acas.property_ids) in
      let problem = Acas.problem ?hidden_layers ?width ~seed:s pid in
      let region = problem.Abonn_spec.Problem.region in
      let radius = Abonn_spec.Region.radius region in
      let eps =
        Array.fold_left ( +. ) 0.0 radius /. float_of_int (Array.length radius)
      in
      { id = Printf.sprintf "acas_%d/%s" s (Acas.property_name pid);
        model = "acas";
        index = s;
        eps;
        factor = 1.0;
        band = Between 0.0;
        problem })
