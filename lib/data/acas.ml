module Rng = Abonn_util.Rng
module Vnnlib = Abonn_spec.Vnnlib

type property_id = P1 | P2 | P3 | P4

let property_ids = [ P1; P2; P3; P4 ]

let property_name = function
  | P1 -> "prop1"
  | P2 -> "prop2"
  | P3 -> "prop3"
  | P4 -> "prop4"

let property_index = function P1 -> 1 | P2 -> 2 | P3 -> 3 | P4 -> 4

let network ?(hidden_layers = 6) ?(width = 50) ~seed () =
  let rng = Rng.create (0xaca5 + seed) in
  Abonn_nn.Builder.mlp rng
    ~dims:((5 :: List.init hidden_layers (fun _ -> width)) @ [ 5 ])

(* Normalised ACAS-style boxes: P1/P2 is the distant head-on encounter,
   P3/P4 are the two close-range geometries. *)
let base_box = function
  | P1 | P2 ->
    ( [| 0.60; -0.50; -0.50; 0.45; -0.50 |],
      [| 0.68; 0.50; 0.50; 0.50; -0.45 |] )
  | P3 ->
    ( [| -0.30; -0.01; 0.49; 0.45; 0.45 |],
      [| -0.29; 0.01; 0.50; 0.50; 0.50 |] )
  | P4 ->
    ( [| -0.30; -0.01; -0.50; 0.45; 0.00 |],
      [| -0.29; 0.01; -0.49; 0.50; 0.50 |] )

let spec ?(hardness = 0.05) ~network ~seed pid =
  let rng = Rng.create (0x5afe + (31 * seed) + property_index pid) in
  let base_lower, base_upper = base_box pid in
  let lower = Array.copy base_lower and upper = Array.copy base_upper in
  for i = 0 to 4 do
    (* translate the whole interval: the box keeps its width and never
       degenerates *)
    let shift = Rng.range rng (-0.02) 0.02 in
    lower.(i) <- lower.(i) +. shift;
    upper.(i) <- upper.(i) +. shift
  done;
  let disjuncts =
    match pid with
    | P1 ->
      (* violation Y_0 >= c, written c - Y_0 <= 0; calibrate c just
         beyond the sampled output maximum so the run has to work *)
      let region = Abonn_spec.Region.create ~lower ~upper in
      let y0s =
        Array.init 64 (fun _ ->
            (Abonn_nn.Network.forward network (Abonn_spec.Region.sample rng region)).(0))
      in
      let hi = Array.fold_left max neg_infinity y0s in
      let lo = Array.fold_left min infinity y0s in
      let c = hi +. (hardness *. (hi -. lo +. 0.1)) in
      [ [ { Vnnlib.coeffs = [| -1.0; 0.0; 0.0; 0.0; 0.0 |]; offset = c } ] ]
    | P2 ->
      (* violation: Y_0 maximal, i.e. Y_i - Y_0 <= 0 for i = 1..4 *)
      [ List.init 4 (fun i ->
            let coeffs = Array.make 5 0.0 in
            coeffs.(0) <- -1.0;
            coeffs.(i + 1) <- 1.0;
            { Vnnlib.coeffs; offset = 0.0 }) ]
    | P3 | P4 ->
      (* violation: Y_0 minimal, i.e. Y_0 - Y_i <= 0 for i = 1..4 *)
      [ List.init 4 (fun i ->
            let coeffs = Array.make 5 0.0 in
            coeffs.(0) <- 1.0;
            coeffs.(i + 1) <- -1.0;
            { Vnnlib.coeffs; offset = 0.0 }) ]
  in
  { Vnnlib.num_inputs = 5; num_outputs = 5; lower; upper; disjuncts }

let problem ?hidden_layers ?width ?hardness ~seed pid =
  let net = network ?hidden_layers ?width ~seed () in
  let s = spec ?hardness ~network:net ~seed pid in
  let name = Printf.sprintf "acas_%d_%s" seed (property_name pid) in
  match Vnnlib.problems ~name ~network:net s with
  | [ p ] -> p
  | ps ->
    invalid_arg
      (Printf.sprintf "Acas.problem: expected one disjunct, got %d" (List.length ps))
