module Budget = Abonn_util.Budget
module Obs = Abonn_obs.Obs
module Ev = Abonn_obs.Event
module Result = Abonn_bab.Result

type engine = {
  name : string;
  run : budget:Budget.t -> Abonn_spec.Problem.t -> Result.t;
}

let bab_baseline =
  { name = "bab-baseline"; run = (fun ~budget problem -> Abonn_bab.Bfs.verify ~budget problem) }

let alphabeta_crown =
  { name = "ab-crown";
    run = (fun ~budget problem -> Abonn_crown.Alphabeta.verify ~budget problem) }

let abonn_named name config =
  { name;
    run = (fun ~budget problem -> Abonn_core.Abonn.verify ~config ~budget problem) }

let abonn ?(config = Abonn_core.Config.default) () = abonn_named "abonn" config

let default_engines = [ bab_baseline; alphabeta_crown; abonn () ]

let per_call_cost problem =
  let times =
    Array.init 3 (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Abonn_prop.Deeppoly.run problem []);
        Unix.gettimeofday () -. t0)
  in
  Abonn_util.Stats.median times

type record = {
  instance : Abonn_data.Instances.t;
  engine : string;
  result : Result.t;
  model_time : float;
}

(* The per-call cost only depends on the network, so measure it once per
   model family. *)
let cost_cache : (string, float) Hashtbl.t = Hashtbl.create 8

let cached_cost instance =
  let model = instance.Abonn_data.Instances.model in
  match Hashtbl.find_opt cost_cache model with
  | Some c -> c
  | None ->
    let c = per_call_cost instance.Abonn_data.Instances.problem in
    Hashtbl.replace cost_cache model c;
    c

let run_instance ?(calls = 1000) ?seconds engine instance =
  let budget = Budget.combine ~calls ?seconds () in
  let problem = instance.Abonn_data.Instances.problem in
  let id = instance.Abonn_data.Instances.id in
  if Obs.tracing () then
    Obs.emit (Ev.Run_started { engine = engine.name; instance = id });
  let result = Obs.time ("engine." ^ engine.name) (fun () -> engine.run ~budget problem) in
  if Obs.tracing () then begin
    let stats = result.Result.stats in
    Obs.emit
      (Ev.Run_finished
         { engine = engine.name; instance = id;
           verdict = Abonn_spec.Verdict.to_string result.Result.verdict;
           calls = stats.Result.appver_calls; nodes = stats.Result.nodes;
           max_depth = stats.Result.max_depth; wall = stats.Result.wall_time })
  end;
  { instance;
    engine = engine.name;
    result;
    model_time = cached_cost instance *. float_of_int result.Result.stats.Result.appver_calls }
