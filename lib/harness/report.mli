(** Paper-style textual rendering of the experiment results.

    Each function turns one [Experiment] artifact into the table/figure
    analogue the paper prints; EXPERIMENTS.md archives the outputs next
    to the paper's numbers. *)

val table1 : Experiment.table1_row list -> string

val table2 : (string * Experiment.table2_cell list) list -> string

val fig3 : ?bins:int -> float array -> string
(** Log-scale histogram of BaB tree sizes, drawn with ASCII bars. *)

val fig4 : (string * (float * float) list) list -> string
(** Per-model scatter listing: time vs speedup rows plus summary
    (median / max speedup, fraction of instances sped up). *)

val fig5 : (string * Experiment.grid) list -> string
(** λ × c grids of average solve time; the best cell per model is
    marked with [*] (the paper's "darker is better"). *)

val fig6 : (string * Experiment.rq3_box list) list -> string
(** Violated/certified box-plot summaries per model and engine. *)

val ablation : (string * Experiment.table2_cell) list -> string

val csv : Runner.record list -> string
(** Machine-readable export of raw run records: one line per
    (engine × instance) with verdict, calls, nodes, depth, wall and
    model time.  Written next to the textual artifacts by
    [bin/experiments.exe]. *)

val deepviolated : Experiment.deepviolated_row list -> string
(** Per-instance call counts and speedups on the mined deep-violation
    set, with the aggregate ABONN-vs-baseline summary. *)

val stats : Abonn_obs.Metrics.snapshot -> string
(** ASCII tables of the observability counters, span timers (calls /
    total / mean / max seconds) and log-scale histograms (with
    interpolated p50/p99 columns) gathered during a run — what
    [abonn_cli --stats] prints.  Empty sections are omitted. *)
