module Table = Abonn_util.Table
module Stats = Abonn_util.Stats

let f = Table.fmt_float

let table1 rows =
  let body =
    List.map
      (fun (r : Experiment.table1_row) ->
        [ r.Experiment.model;
          r.Experiment.architecture;
          r.Experiment.dataset;
          string_of_int r.Experiment.neurons;
          string_of_int r.Experiment.num_instances ])
      rows
  in
  "Table I: Details of the benchmarks\n"
  ^ Table.render
      ~align:[ Table.Left; Table.Left; Table.Left; Table.Right; Table.Right ]
      ~header:[ "Model"; "Architecture"; "Dataset"; "#Neurons"; "#Instances" ]
      body

let table2 per_model =
  let engines =
    match per_model with
    | (_, cells) :: _ -> List.map (fun (c : Experiment.table2_cell) -> c.Experiment.engine) cells
    | [] -> []
  in
  let header =
    "Model" :: List.concat_map (fun e -> [ e ^ " solved"; e ^ " time" ]) engines
  in
  let body =
    List.map
      (fun (model, cells) ->
        model
        :: List.concat_map
             (fun (c : Experiment.table2_cell) ->
               [ string_of_int c.Experiment.solved; f ~digits:3 c.Experiment.avg_time ])
             cells)
      per_model
  in
  "Table II (RQ1): solved instances and average time (model seconds)\n"
  ^ Table.render
      ~align:(Table.Left :: List.concat_map (fun _ -> [ Table.Right; Table.Right ]) engines)
      ~header body

let fig3 ?(bins = 8) sizes =
  if Array.length sizes = 0 then "Fig. 3: no data\n"
  else begin
    let h = Stats.log_histogram ~bins sizes in
    let vmax =
      float_of_int (Array.fold_left Stdlib.max 1 h.Stats.counts)
    in
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      "Fig. 3: distribution of BaB-baseline tree sizes (log-scale bins)\n";
    Array.iteri
      (fun i count ->
        Buffer.add_string buf
          (Printf.sprintf "  [%8.0f, %8.0f) %4d %s\n" h.Stats.edges.(i)
             h.Stats.edges.(i + 1) count
             (Table.bar ~width:40 (float_of_int count) vmax)))
      h.Stats.counts;
    Buffer.contents buf
  end

let fig4 per_model =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Fig. 4 (RQ1): per-instance comparison, speedup = T_BaB-baseline / T_ABONN\n";
  List.iter
    (fun (model, points) ->
      Buffer.add_string buf (Printf.sprintf "-- %s (%d instances)\n" model (List.length points));
      List.iter
        (fun (t, s) ->
          Buffer.add_string buf
            (Printf.sprintf "   t_abonn=%8s  speedup=%8s %s\n" (f ~digits:4 t) (f ~digits:2 s)
               (if s > 1.0 then "+" else "")))
        points;
      let speedups = Array.of_list (List.map snd points) in
      if Array.length speedups > 0 then
        Buffer.add_string buf
          (Printf.sprintf "   summary: median speedup %s, max %s, sped-up fraction %s\n"
             (f (Stats.median speedups))
             (f (Stats.max speedups))
             (f
                (float_of_int (Array.length (Array.of_list (List.filter (fun (_, s) -> s > 1.0) points)))
                /. float_of_int (Array.length speedups)))))
    per_model;
  Buffer.contents buf

let fig5 per_model =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Fig. 5 (RQ2): average time (model seconds) per (lambda, c); * marks the best cell\n";
  List.iter
    (fun (model, (g : Experiment.grid)) ->
      Buffer.add_string buf (Printf.sprintf "-- %s\n" model);
      let best =
        List.fold_left
          (fun acc (_, v) -> Float.min acc v)
          infinity g.Experiment.cells
      in
      let header = "lambda\\c" :: List.map (fun c -> f c) g.Experiment.cs in
      let body =
        List.map
          (fun lambda ->
            f lambda
            :: List.map
                 (fun c ->
                   let v = List.assoc (lambda, c) g.Experiment.cells in
                   (f ~digits:3 v) ^ (if v = best then "*" else ""))
                 g.Experiment.cs)
          g.Experiment.lambdas
      in
      Buffer.add_string buf
        (Table.render
           ~align:(Table.Left :: List.map (fun _ -> Table.Right) g.Experiment.cs)
           ~header body);
      Buffer.add_char buf '\n')
    per_model;
  Buffer.contents buf

let fig6 per_model =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Fig. 6 (RQ3): time breakdown by verdict class (model seconds)\n";
  List.iter
    (fun (model, boxes) ->
      Buffer.add_string buf (Printf.sprintf "-- %s\n" model);
      let body =
        List.map
          (fun (b : Experiment.rq3_box) ->
            match b.Experiment.box with
            | None ->
              [ b.Experiment.engine; b.Experiment.verdict_class; "0"; "-"; "-"; "-"; "-"; "-" ]
            | Some box ->
              [ b.Experiment.engine;
                b.Experiment.verdict_class;
                string_of_int b.Experiment.count;
                f ~digits:3 box.Stats.whisker_lo;
                f ~digits:3 box.Stats.q1;
                f ~digits:3 box.Stats.med;
                f ~digits:3 box.Stats.q3;
                f ~digits:3 box.Stats.whisker_hi ])
          boxes
      in
      Buffer.add_string buf
        (Table.render
           ~align:
             [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
               Table.Right; Table.Right ]
           ~header:[ "Engine"; "Class"; "n"; "lo"; "Q1"; "med"; "Q3"; "hi" ]
           body);
      Buffer.add_char buf '\n')
    per_model;
  Buffer.contents buf

let ablation rows =
  let body =
    List.map
      (fun (name, (c : Experiment.table2_cell)) ->
        [ name; string_of_int c.Experiment.solved; f ~digits:3 c.Experiment.avg_time ])
      rows
  in
  "Ablation: ABONN variants over the shared instance subset\n"
  ^ Table.render
      ~align:[ Table.Left; Table.Right; Table.Right ]
      ~header:[ "Variant"; "Solved"; "Avg time" ]
      body

let csv records =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "instance,model,band_factor,eps,engine,verdict,appver_calls,nodes,max_depth,wall_time,model_time\n";
  List.iter
    (fun (r : Runner.record) ->
      let inst = r.Runner.instance in
      let res = r.Runner.result in
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%.4f,%.6f,%s,%s,%d,%d,%d,%.6f,%.6f\n"
           inst.Abonn_data.Instances.id inst.Abonn_data.Instances.model
           inst.Abonn_data.Instances.factor inst.Abonn_data.Instances.eps r.Runner.engine
           (Abonn_spec.Verdict.to_string res.Abonn_bab.Result.verdict)
           res.Abonn_bab.Result.stats.Abonn_bab.Result.appver_calls
           res.Abonn_bab.Result.stats.Abonn_bab.Result.nodes
           res.Abonn_bab.Result.stats.Abonn_bab.Result.max_depth
           res.Abonn_bab.Result.stats.Abonn_bab.Result.wall_time r.Runner.model_time))
    records;
  Buffer.contents buf

(* Render an [Abonn_obs.Metrics] snapshot as the paper-style ASCII
   tables the CLI prints for [--stats]: one table of counters, one of
   gauges, one of span timers, one of histograms. *)
let stats (snap : Abonn_obs.Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Observability summary (counters, gauges, timers, histograms)\n";
  (match snap.Abonn_obs.Metrics.counters with
   | [] -> Buffer.add_string buf "  no counters recorded\n"
   | counters ->
     let body = List.map (fun (name, n) -> [ name; string_of_int n ]) counters in
     Buffer.add_string buf
       (Table.render ~align:[ Table.Left; Table.Right ]
          ~header:[ "Counter"; "Count" ] body);
     Buffer.add_char buf '\n');
  (match snap.Abonn_obs.Metrics.gauges with
   | [] -> ()
   | gauges ->
     let body =
       List.map
         (fun (name, (g : Abonn_obs.Metrics.gauge_stat)) ->
           [ name;
             f ~digits:3 g.Abonn_obs.Metrics.last;
             f ~digits:3 g.Abonn_obs.Metrics.lo;
             f ~digits:3 g.Abonn_obs.Metrics.hi;
             string_of_int g.Abonn_obs.Metrics.updates ])
         gauges
     in
     Buffer.add_char buf '\n';
     Buffer.add_string buf
       (Table.render
          ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
          ~header:[ "Gauge"; "Last"; "Min"; "Max"; "Updates" ]
          body);
     Buffer.add_char buf '\n');
  (match snap.Abonn_obs.Metrics.spans with
   | [] -> ()
   | spans ->
     let body =
       List.map
         (fun (name, (s : Abonn_obs.Metrics.span_stat)) ->
           let mean = if s.Abonn_obs.Metrics.calls = 0 then 0.0
             else s.Abonn_obs.Metrics.total /. float_of_int s.Abonn_obs.Metrics.calls
           in
           [ name;
             string_of_int s.Abonn_obs.Metrics.calls;
             f ~digits:6 s.Abonn_obs.Metrics.total;
             f ~digits:6 mean;
             f ~digits:6 s.Abonn_obs.Metrics.max ])
         spans
     in
     Buffer.add_char buf '\n';
     Buffer.add_string buf
       (Table.render
          ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
          ~header:[ "Timer"; "Calls"; "Total s"; "Mean s"; "Max s" ]
          body);
     Buffer.add_char buf '\n');
  (match snap.Abonn_obs.Metrics.hists with
   | [] -> ()
   | hists ->
     List.iter
       (fun (name, (h : Abonn_obs.Metrics.hist_stat)) ->
         let mean = if h.Abonn_obs.Metrics.count = 0 then 0.0
           else h.Abonn_obs.Metrics.sum /. float_of_int h.Abonn_obs.Metrics.count
         in
         Buffer.add_string buf
           (Printf.sprintf "\nHistogram %s: n=%d mean=%s min=%s max=%s p50=%s p99=%s\n"
              name h.Abonn_obs.Metrics.count (f mean) (f h.Abonn_obs.Metrics.lo)
              (f h.Abonn_obs.Metrics.hi)
              (f (Abonn_obs.Metrics.quantile h 0.50))
              (f (Abonn_obs.Metrics.quantile h 0.99)));
         let vmax =
           float_of_int
             (Array.fold_left
                (fun acc (_, n) -> Stdlib.max acc n)
                1 h.Abonn_obs.Metrics.buckets)
         in
         Array.iter
           (fun (edge, n) ->
             if n > 0 then
               Buffer.add_string buf
                 (Printf.sprintf "  [%8.0e, %8.0e) %6d %s\n" edge (edge *. 10.0) n
                    (Table.bar ~width:30 (float_of_int n) vmax)))
           h.Abonn_obs.Metrics.buckets)
       hists);
  Buffer.contents buf

let deepviolated rows =
  let body =
    List.map
      (fun (r : Experiment.deepviolated_row) ->
        [ r.Experiment.instance_id;
          string_of_int r.Experiment.bfs_calls;
          string_of_int r.Experiment.abonn_calls;
          string_of_int r.Experiment.crown_calls;
          f ~digits:2 r.Experiment.abonn_speedup ])
      rows
  in
  let header = [ "Instance"; "BaB-baseline"; "ABONN"; "ab-crown"; "speedup" ] in
  let summary =
    if rows = [] then "no deep-violation instances mined; enlarge the pool\n"
    else begin
      let speedups = Array.of_list (List.map (fun r -> r.Experiment.abonn_speedup) rows) in
      let wins = List.length (List.filter (fun r -> r.Experiment.abonn_speedup > 1.0) rows) in
      Printf.sprintf
        "summary: %d instances; ABONN faster on %d; median speedup %s; max %s; geometric mean %s\n"
        (List.length rows) wins
        (f (Stats.median speedups))
        (f (Stats.max speedups))
        (f (Stats.geometric_mean speedups))
    end
  in
  "Deep-violation study (AppVer calls to falsify; mined attack-boundary instances)\n"
  ^ Table.render
      ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~header body
  ^ "\n" ^ summary
