module Rng = Abonn_util.Rng
module Obs = Abonn_obs.Obs
module Ev = Abonn_obs.Event
module Matrix = Abonn_tensor.Matrix
module Network = Abonn_nn.Network
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Problem = Abonn_spec.Problem

type t = {
  name : string;
  run : Rng.t -> Problem.t -> float array option;
}

(* Observe one attack: hit/miss counters, an ["attack.<name>"] span and
   one [attack_tried] event per invocation.  [best_effort] is itself
   observed, so its events nest around those of the attacks it tries —
   span totals of composite attacks include their components. *)
let observed ({ name; run } as attack) =
  { attack with
    run =
      (fun rng problem ->
        if not (Obs.active ()) then run rng problem
        else begin
          let t0 = Obs.now () in
          let result = run rng problem in
          let elapsed = Obs.now () -. t0 in
          let success = result <> None in
          Obs.incr
            (Printf.sprintf "attack.%s.%s" name (if success then "hits" else "misses"));
          Obs.span ("attack." ^ name) elapsed;
          if Obs.tracing () then
            Obs.emit (Ev.Attack_tried { attack = name; success; elapsed });
          result
        end) }

let margin problem x = Problem.concrete_margin problem x

let hit problem x = if margin problem x <= 0.0 then Some x else None

(* Gradient of the currently-worst margin row at [x]. *)
let worst_row_gradient (problem : Problem.t) x =
  let prop = problem.Problem.property in
  let y = Network.forward problem.Problem.network x in
  let vals = Matrix.mv prop.Property.c y in
  let worst = ref 0 in
  Array.iteri
    (fun i v ->
      if v +. prop.Property.d.(i) < vals.(!worst) +. prop.Property.d.(!worst) then worst := i)
    vals;
  let d_out = Matrix.row prop.Property.c !worst in
  Network.input_gradient problem.Problem.network x ~d_out

let fgsm_run _rng (problem : Problem.t) =
  let region = problem.Problem.region in
  let prop = problem.Problem.property in
  let centre = Region.center region in
  let radius = Region.radius region in
  (* One full-radius signed step against each row's gradient. *)
  let rec try_rows r =
    if r >= prop.Property.c.Matrix.rows then None
    else begin
      let d_out = Matrix.row prop.Property.c r in
      let g = Network.input_gradient problem.Problem.network centre ~d_out in
      let x =
        Array.mapi
          (fun j cj ->
            let s = if g.(j) > 0.0 then -1.0 else if g.(j) < 0.0 then 1.0 else 0.0 in
            cj +. (s *. radius.(j)))
          centre
      in
      let x = Region.clamp region x in
      match hit problem x with Some x -> Some x | None -> try_rows (r + 1)
    end
  in
  try_rows 0

let fgsm = observed { name = "fgsm"; run = fgsm_run }

let pgd_run ~restarts ~steps ~step_frac rng (problem : Problem.t) =
  let region = problem.Problem.region in
  let radius = Region.radius region in
  let descend x0 =
    let x = ref x0 in
    let best = ref x0 and best_margin = ref (margin problem x0) in
    let rec go step =
      if !best_margin <= 0.0 || step >= steps then ()
      else begin
        let g = worst_row_gradient problem !x in
        let x' =
          Array.mapi
            (fun j xj ->
              let s = if g.(j) > 0.0 then -1.0 else if g.(j) < 0.0 then 1.0 else 0.0 in
              xj +. (s *. step_frac *. radius.(j)))
            !x
        in
        let x' = Region.clamp region x' in
        x := x';
        let m = margin problem x' in
        if m < !best_margin then begin
          best := x';
          best_margin := m
        end;
        go (step + 1)
      end
    in
    go 0;
    if !best_margin <= 0.0 then Some !best else None
  in
  let rec try_restart r =
    if r >= restarts then None
    else begin
      let x0 = if r = 0 then Region.center region else Region.sample rng region in
      match descend x0 with Some x -> Some x | None -> try_restart (r + 1)
    end
  in
  try_restart 0

let pgd ?(restarts = 3) ?(steps = 40) ?(step_frac = 0.1) () =
  observed { name = "pgd"; run = pgd_run ~restarts ~steps ~step_frac }

let random_run ~samples rng (problem : Problem.t) =
  let region = problem.Problem.region in
  let rec go i =
    if i >= samples then None
    else begin
      let x =
        if i mod 2 = 0 then Region.sample rng region
        else Region.corner region (fun _ -> Rng.bool rng)
      in
      match hit problem x with Some x -> Some x | None -> go (i + 1)
    end
  in
  go 0

let random_search ?(samples = 200) () =
  observed { name = "random"; run = random_run ~samples }

let best_effort =
  observed
    { name = "best-effort";
      run =
        (fun rng problem ->
          let attacks = [ fgsm; pgd (); random_search () ] in
          List.find_map (fun a -> a.run rng problem) attacks) }
