(** Adversarial attacks: fast counterexample search inside Φ.

    Attacks complement verification (§VI "Testing and Attacks"): they
    cannot prove anything, but a hit is a genuine counterexample and
    terminates verification immediately.  The αβ-CROWN-style baseline
    ([Abonn_crown]) warm-starts with PGD exactly like the real tool.

    All attacks minimise the property margin [min_i (C·N(x) + d)_i] over
    the region and return the first input whose concrete margin is ≤ 0.
    They are deterministic given the [Rng.t]. *)

type t = {
  name : string;
  run : Abonn_util.Rng.t -> Abonn_spec.Problem.t -> float array option;
}

val observed : t -> t
(** Wrap an attack with [Abonn_obs] instrumentation:
    ["attack.<name>.hits"/".misses"] counters, an ["attack.<name>"] span
    timer and one [attack_tried] trace event per invocation.  The
    built-in attacks below are already observed; use this for custom
    attacks.  Costs one branch per call while observability is off. *)

val fgsm : t
(** One signed-gradient step from the region centre per property row. *)

val pgd : ?restarts:int -> ?steps:int -> ?step_frac:float -> unit -> t
(** Projected gradient descent on the worst margin row: [restarts]
    random starts (default 3, first start is the centre), [steps]
    iterations (default 40), per-step size [step_frac] of the region
    radius (default 0.1). *)

val random_search : ?samples:int -> unit -> t
(** Uniform sampling plus random corners (default 200 evaluations). *)

val best_effort : t
(** The portfolio used by baselines: FGSM, then PGD, then random
    search, stopping at the first hit. *)
