module Matrix = Abonn_tensor.Matrix
module Affine = Abonn_nn.Affine
module Obs = Abonn_obs.Obs
module Ev = Abonn_obs.Event
module Split = Abonn_spec.Split
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Problem = Abonn_spec.Problem

type slope = Adaptive | Always_zero | Always_one

let lower_slope slope ~lo ~hi =
  match slope with
  | Always_zero -> 0.0
  | Always_one -> 1.0
  | Adaptive -> if hi > -.lo then 1.0 else 0.0

(* One symbolic bound: coefficients over some layer's (post-)activations
   plus a constant.  [lo_coef]/[lo_const] lower-bound the target,
   [hi_coef]/[hi_const] upper-bound it. *)
type sym = {
  mutable lo_coef : float array;
  mutable lo_const : float;
  mutable hi_coef : float array;
  mutable hi_const : float;
}

(* Rewrite a symbolic bound over x_{k+1} = relu(ẑ_k) into one over ẑ_k,
   using the triangle relaxation driven by the (split-clamped) bounds of
   layer k.  Soundness: for the lower bound, positive coefficients take a
   lower relaxation of the ReLU and negative coefficients an upper
   relaxation; mirrored for the upper bound. *)
let relax_relu slope (b : Bounds.t) sym =
  let n = Array.length sym.lo_coef in
  let lo_coef = Array.make n 0.0 and hi_coef = Array.make n 0.0 in
  let lo_const = ref sym.lo_const and hi_const = ref sym.hi_const in
  for j = 0 to n - 1 do
    let lo = b.Bounds.lower.(j) and hi = b.Bounds.upper.(j) in
    let al = sym.lo_coef.(j) and ah = sym.hi_coef.(j) in
    if lo >= 0.0 then begin
      (* stable active: x = ẑ *)
      lo_coef.(j) <- al;
      hi_coef.(j) <- ah
    end
    else if hi <= 0.0 then begin
      (* stable inactive: x = 0; coefficients vanish *)
      ()
    end
    else begin
      let s = hi /. (hi -. lo) in
      let alpha = lower_slope slope ~lo ~hi in
      (* lower bound of target *)
      if al >= 0.0 then lo_coef.(j) <- al *. alpha
      else begin
        lo_coef.(j) <- al *. s;
        lo_const := !lo_const -. (al *. s *. lo)
      end;
      (* upper bound of target *)
      if ah >= 0.0 then begin
        hi_coef.(j) <- ah *. s;
        hi_const := !hi_const -. (ah *. s *. lo)
      end
      else hi_coef.(j) <- ah *. alpha
    end
  done;
  sym.lo_coef <- lo_coef;
  sym.hi_coef <- hi_coef;
  sym.lo_const <- !lo_const;
  sym.hi_const <- !hi_const

(* Rewrite a symbolic bound over ẑ_k = W_k x_k + b_k into one over x_k. *)
let through_affine (w : Matrix.t) (b : float array) sym =
  let dot coef = Abonn_tensor.Vector.dot coef b in
  sym.lo_const <- sym.lo_const +. dot sym.lo_coef;
  sym.hi_const <- sym.hi_const +. dot sym.hi_coef;
  sym.lo_coef <- Matrix.tmv w sym.lo_coef;
  sym.hi_coef <- Matrix.tmv w sym.hi_coef

(* Concretise a symbolic bound over the input box. *)
let concretize (region : Region.t) sym =
  let lo = ref sym.lo_const and hi = ref sym.hi_const in
  let rl = region.Region.lower and ru = region.Region.upper in
  for j = 0 to Array.length sym.lo_coef - 1 do
    let a = sym.lo_coef.(j) in
    lo := !lo +. (if a > 0.0 then a *. rl.(j) else a *. ru.(j));
    let a = sym.hi_coef.(j) in
    hi := !hi +. (if a > 0.0 then a *. ru.(j) else a *. rl.(j))
  done;
  (!lo, !hi)

(* The input-box corner minimising the symbolic lower bound. *)
let minimizer_corner (region : Region.t) lo_coef =
  Array.mapi
    (fun j a -> if a > 0.0 then region.Region.lower.(j) else region.Region.upper.(j))
    lo_coef

(* Back-substitute a batch of targets whose coefficients currently range
   over post-activations x_[start_layer] (x_0 = input).  [pre_bounds]
   must contain clamped bounds for all hidden layers < start_layer. *)
let backsub slope affine region ~pre_bounds ~start_layer syms =
  for k = start_layer - 1 downto 0 do
    Array.iter (relax_relu slope pre_bounds.(k)) syms;
    Array.iter (through_affine Affine.(affine.weights.(k)) Affine.(affine.biases.(k))) syms
  done;
  Array.map (concretize region) syms

let sym_of_row coef const =
  { lo_coef = Array.copy coef; lo_const = const; hi_coef = Array.copy coef; hi_const = const }

(* Bounds of pre-activation layer l given bounds of previous layers;
   clamps in the split constraints for layer l afterwards. *)
let layer_bounds slope affine region ~pre_bounds l =
  let w = Affine.(affine.weights.(l)) and b = Affine.(affine.biases.(l)) in
  let syms = Array.init w.Matrix.rows (fun i -> sym_of_row (Matrix.row w i) b.(i)) in
  let pairs = backsub slope affine region ~pre_bounds ~start_layer:l syms in
  Bounds.create ~lower:(Array.map fst pairs) ~upper:(Array.map snd pairs)

(* Splits touching hidden layer [l], applied as soon as that layer's
   bounds exist so deeper layers see the clamped intervals. *)
let splits_for_layer affine gamma l =
  List.filter_map
    (fun (c : Split.constr) ->
      let layer, idx = Affine.relu_position affine c.Split.relu in
      if layer = l then Some (idx, c.Split.phase) else None)
    gamma

(* Forward interval image of one affine layer (for the CROWN-IBP style
   intersection: back-substituted bounds are not uniformly tighter than
   plain interval propagation on deep networks, so we keep the tighter of
   the two per neuron). *)
let affine_interval w b ~lo ~hi = Bounds.affine_image w b ~lo ~hi

let intersect (a : Bounds.t) ~lo ~hi = Bounds.intersect a ~lo ~hi

(* Intersect a freshly recomputed layer with the parent's certified
   bounds for the same layer.  Sound monotone tightening: the child's
   feasible set is contained in the parent's, so the parent's bounds
   still hold — keep the tighter side and count each side that actually
   tightened. *)
let intersect_parent (b : Bounds.t) (p : Bounds.t) clamps =
  let n = Array.length b.Bounds.lower in
  let lo = Array.make n 0.0 and hi = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let bl = b.Bounds.lower.(i) and pl = p.Bounds.lower.(i) in
    let bu = b.Bounds.upper.(i) and pu = p.Bounds.upper.(i) in
    if pl > bl then begin lo.(i) <- pl; incr clamps end else lo.(i) <- bl;
    if pu < bu then begin hi.(i) <- pu; incr clamps end else hi.(i) <- bu
  done;
  Bounds.create ~lower:lo ~upper:hi

(* Hidden-layer bounds plus the forward interval of the deepest
   post-activation layer (used to clamp the property rows as well).

   The warm-started variant aliases the parent's bounds for every layer
   below [from_layer] (the split layer: bounds there depend only on the
   region, lower layers and splits at those layers, all of which a child
   shares with its parent verbatim), re-propagates from [from_layer]
   upward and intersects each recomputed layer with the parent's. *)
let compute_hidden_bounds_from ?parent ?(from_layer = 0) ~clamps slope
    (problem : Problem.t) gamma =
  let affine = problem.Problem.affine in
  let region = problem.Problem.region in
  let n_hidden = Affine.num_layers affine - 1 in
  let from_layer = Stdlib.min from_layer n_hidden in
  let pre_bounds = Array.make n_hidden (Bounds.create ~lower:[||] ~upper:[||]) in
  (match parent with
   | Some (p : Bounds.t array) -> Array.blit p 0 pre_bounds 0 from_layer
   | None -> ());
  let rec loop l lo hi =
    if l >= n_hidden then Ok (pre_bounds, lo, hi)
    else begin
      let zlo, zhi = affine_interval Affine.(affine.weights.(l)) Affine.(affine.biases.(l)) ~lo ~hi in
      let b = layer_bounds slope affine region ~pre_bounds l in
      let b = intersect b ~lo:zlo ~hi:zhi in
      let b =
        List.fold_left
          (fun b (idx, phase) -> Bounds.apply_split b ~idx ~phase)
          b (splits_for_layer affine gamma l)
      in
      let b = match parent with Some p -> intersect_parent b p.(l) clamps | None -> b in
      if Bounds.is_infeasible b then Error (Array.sub pre_bounds 0 l)
      else begin
        pre_bounds.(l) <- b;
        let post_lo = Array.map (fun v -> Float.max 0.0 v) b.Bounds.lower in
        let post_hi = Array.map (fun v -> Float.max 0.0 v) b.Bounds.upper in
        loop (l + 1) post_lo post_hi
      end
    end
  in
  if from_layer = 0 then loop 0 (Array.copy region.Region.lower) (Array.copy region.Region.upper)
  else begin
    let b = pre_bounds.(from_layer - 1) in
    loop from_layer
      (Array.map (fun v -> Float.max 0.0 v) b.Bounds.lower)
      (Array.map (fun v -> Float.max 0.0 v) b.Bounds.upper)
  end

let compute_hidden_bounds slope problem gamma =
  compute_hidden_bounds_from ~clamps:(ref 0) slope problem gamma

let property_syms (problem : Problem.t) =
  let affine = problem.Problem.affine in
  let prop = problem.Problem.property in
  let c = prop.Property.c and d = prop.Property.d in
  let last = Affine.num_layers affine - 1 in
  let w = Affine.(affine.weights.(last)) and b = Affine.(affine.biases.(last)) in
  (* Fold the output affine layer into the property rows so coefficients
     range over x_last (the post-activation of the deepest hidden layer). *)
  Array.init c.Matrix.rows (fun i ->
      let row = Matrix.row c i in
      let sym = sym_of_row row d.(i) in
      through_affine w b sym;
      sym)

(* Interval-based lower bound of each property row over the output box
   reached from the last hidden layer's post-activation interval. *)
let interval_row_lower (problem : Problem.t) ~lo ~hi =
  let affine = problem.Problem.affine in
  let prop = problem.Problem.property in
  let last = Affine.num_layers affine - 1 in
  let ylo, yhi = affine_interval Affine.(affine.weights.(last)) Affine.(affine.biases.(last)) ~lo ~hi in
  Array.init prop.Property.c.Matrix.rows (fun i ->
      let acc = ref prop.Property.d.(i) in
      for j = 0 to Array.length ylo - 1 do
        let a = Matrix.get prop.Property.c i j in
        acc := !acc +. (if a > 0.0 then a *. ylo.(j) else a *. yhi.(j))
      done;
      !acc)

let analyse_core ?parent ?(from_layer = 0) ~clamps slope (problem : Problem.t) gamma =
  let affine = problem.Problem.affine in
  let region = problem.Problem.region in
  let parent_bounds = Option.map (fun (p : Incremental.t) -> p.Incremental.pre_bounds) parent in
  match
    compute_hidden_bounds_from ?parent:parent_bounds ~from_layer ~clamps slope problem gamma
  with
  | Error partial -> Outcome.vacuous ~pre_bounds:partial
  | Ok (pre_bounds, post_lo, post_hi) ->
    let syms = property_syms problem in
    let last = Affine.num_layers affine - 1 in
    let pairs = backsub slope affine region ~pre_bounds ~start_layer:last syms in
    let ibp_rows = interval_row_lower problem ~lo:post_lo ~hi:post_hi in
    let row_lower = Array.mapi (fun i (lo, _) -> Float.max lo ibp_rows.(i)) pairs in
    (* The parent's certified rows are still lower bounds over the
       child's (smaller) feasible set: keep the tighter per row. *)
    (match parent with
     | Some (p : Incremental.t)
       when Array.length p.Incremental.row_lower = Array.length row_lower ->
       Array.iteri
         (fun i v -> if v > row_lower.(i) then begin row_lower.(i) <- v; incr clamps end)
         p.Incremental.row_lower
     | _ -> ());
    let phat = Array.fold_left Float.min infinity row_lower in
    let candidate =
      if phat > 0.0 then None
      else begin
        (* Corner minimising the worst row's symbolic lower bound. *)
        let worst = ref 0 in
        Array.iteri (fun i v -> if v < row_lower.(!worst) then worst := i) row_lower;
        Some (minimizer_corner region syms.(!worst).lo_coef)
      end
    in
    Outcome.make ~phat ?candidate ~pre_bounds ~row_lower ()

let analyse slope problem gamma = analyse_core ~clamps:(ref 0) slope problem gamma

let slope_name = function
  | Adaptive -> "deeppoly"
  | Always_zero -> "deeppoly-zero"
  | Always_one -> "deeppoly-one"

let run ?(slope = Adaptive) (problem : Problem.t) gamma =
  if not (Obs.active ()) then analyse slope problem gamma
  else begin
    let t0 = Obs.now () in
    let outcome = analyse slope problem gamma in
    let elapsed = Obs.now () -. t0 in
    let name = slope_name slope in
    Obs.incr (Printf.sprintf "appver.%s.calls" name);
    Obs.span ("appver." ^ name) elapsed;
    if Obs.tracing () then
      Obs.emit
        (Ev.Bound_computed
           { appver = name; depth = Split.depth gamma;
             phat = outcome.Outcome.phat; elapsed });
    outcome
  end

let hidden_bounds ?(slope = Adaptive) problem gamma =
  match compute_hidden_bounds slope problem gamma with
  | Ok (b, _, _) -> Some b
  | Error _ -> None

(* Warm-started analysis: classify how much of [state] is reusable for
   this node, alias the shared prefix, re-propagate the rest and return
   the node's own state for its future children.  An incompatible or
   absent state degenerates to the from-scratch path (plus building the
   state).  Instrumentation mirrors [run] exactly — the same
   [bound_computed] event and counters — so trace reconstruction is
   unchanged; reuse additionally emits one [bound_reuse] event and the
   [appver.cache.*] counters. *)
let run_warm ?(slope = Adaptive) ?state (problem : Problem.t) gamma =
  let name = slope_name slope in
  let reuse =
    match state with
    | Some st -> Incremental.classify st ~appver:name ~problem ~gamma
    | None -> Incremental.Incompatible
  in
  let parent, from_layer =
    match reuse with
    | Incremental.Prefix l -> (state, l)
    | Incremental.Tighten -> (state, 0)
    | Incremental.Incompatible -> (None, 0)
  in
  let clamps = ref 0 in
  let compute () = analyse_core ?parent ~from_layer ~clamps slope problem gamma in
  let outcome =
    if not (Obs.active ()) then compute ()
    else begin
      let t0 = Obs.now () in
      let outcome = compute () in
      let elapsed = Obs.now () -. t0 in
      Obs.incr (Printf.sprintf "appver.%s.calls" name);
      Obs.span ("appver." ^ name) elapsed;
      if parent <> None then begin
        Obs.incr "appver.cache.prefix_hits";
        Obs.incr ~by:from_layer "appver.cache.layers_skipped";
        Obs.incr ~by:!clamps "appver.cache.tighten_clamps"
      end;
      if Obs.tracing () then begin
        Obs.emit
          (Ev.Bound_computed
             { appver = name; depth = Split.depth gamma;
               phat = outcome.Outcome.phat; elapsed });
        if parent <> None then
          Obs.emit
            (Ev.Bound_reuse
               { appver = name; depth = Split.depth gamma; from_layer;
                 layers_skipped = from_layer; clamps = !clamps })
      end;
      outcome
    end
  in
  let n_hidden = Affine.num_layers problem.Problem.affine - 1 in
  let state' =
    if outcome.Outcome.infeasible
       || Array.length outcome.Outcome.pre_bounds <> n_hidden
    then None
    else
      Some
        (Incremental.make ~appver:name ~problem ~gamma
           ~pre_bounds:outcome.Outcome.pre_bounds
           ~row_lower:outcome.Outcome.row_lower)
  in
  (outcome, state')
