(** Incremental analysis state shared down the BaB tree.

    A [t] snapshots what one warm-startable AppVer call certified for a
    node: the per-layer pre-activation bounds (split constraints folded
    in) and the per-row property lower bounds, together with the region
    and split sequence they were computed for.  A child node differs
    from its parent by one appended ReLU constraint, so every layer
    strictly below the split layer is provably identical — the child
    re-uses the parent's arrays verbatim (O(1) structural sharing) and
    re-propagates only from the split layer upward, intersecting each
    recomputed layer with the parent's bounds (monotone tightening:
    the child's feasible set is a subset of the parent's, so the
    parent's certified bounds remain sound for the child).

    Invariants relied on by [Deeppoly] and the engines:
    - [pre_bounds] and [row_lower] are immutable once a state is built;
      shared prefixes are aliased, never copied or mutated.
    - States are only valid for the network they were computed on;
      callers thread states along tree edges of a single run and never
      mix networks ([classify] checks region, gamma and shape, not
      weights).

    See DESIGN.md "Incremental bound propagation". *)

type t = {
  appver : string;          (** producing verifier, e.g. ["deeppoly"] *)
  region_lower : float array;
  region_upper : float array;
  gamma : Abonn_spec.Split.gamma;
  pre_bounds : Bounds.t array;  (** every hidden layer, splits folded in *)
  row_lower : float array;      (** certified per-row property lower bounds *)
}

val make :
  appver:string ->
  problem:Abonn_spec.Problem.t ->
  gamma:Abonn_spec.Split.gamma ->
  pre_bounds:Bounds.t array ->
  row_lower:float array ->
  t

(** How a parent state can be reused for a node. *)
type reuse =
  | Prefix of int
      (** Same region, [gamma] extends the state's: layers below the
          given index are shared verbatim; re-propagation starts there. *)
  | Tighten
      (** Sub-region of the state's region with no split constraints on
          either side (input splitting): full re-propagation is forced,
          but every recomputed layer may be intersected with the
          parent's bounds. *)
  | Incompatible  (** fall back to a from-scratch analysis *)

val classify :
  t -> appver:string -> problem:Abonn_spec.Problem.t ->
  gamma:Abonn_spec.Split.gamma -> reuse

val enabled : unit -> bool
(** Global cache switch, [true] by default.  When [false],
    [Appver.run_warm] ignores states and runs from scratch
    (the [--no-bound-cache] escape hatch). *)

val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run with the switch forced to the given value, restoring it after. *)
