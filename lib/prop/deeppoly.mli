(** DeepPoly / CROWN-style linear bound propagation with back-substitution.

    This is the approximate verifier used by the paper's BaB stack ([7],
    [16] in its references).  For each hidden layer the pre-activation
    vector is bounded by propagating symbolic linear bounds back to the
    input box; unstable ReLUs are replaced by the triangle relaxation
    (upper: [u/(u−l)·(ẑ−l)]) with a configurable lower slope.  Split
    constraints are folded into the per-neuron bounds, and infeasible
    splits short-circuit into a vacuously proved outcome.

    Back-substituted bounds are intersected per neuron with plain forward
    interval bounds (CROWN-IBP style): on deep networks neither dominates
    the other, and production verifiers keep the tighter of the two.
    Consequently [run] is always at least as tight as [Interval.run].

    The candidate counterexample is the input-box corner minimising the
    final symbolic lower bound of the worst property row — exactly the
    point an LP over the same relaxation would return at a vertex. *)

type slope =
  | Adaptive
      (** per-neuron minimum-area rule: slope 1 when [u > −l], else 0 —
          the DeepPoly choice, and the greedy optimum of α-CROWN's
          per-coefficient selection for one pass *)
  | Always_zero  (** always relax the lower bound to 0 *)
  | Always_one   (** always keep the identity lower bound *)

val run :
  ?slope:slope ->
  Abonn_spec.Problem.t ->
  Abonn_spec.Split.gamma ->
  Outcome.t
(** Full analysis: hidden-layer bounds, property-row lower bounds [p̂],
    candidate counterexample. *)

val hidden_bounds :
  ?slope:slope ->
  Abonn_spec.Problem.t ->
  Abonn_spec.Split.gamma ->
  Bounds.t array option
(** Just the per-layer pre-activation bounds ([None] when the splits are
    infeasible).  Used by branching heuristics and tests. *)

val run_warm :
  ?slope:slope ->
  ?state:Incremental.t ->
  Abonn_spec.Problem.t ->
  Abonn_spec.Split.gamma ->
  Outcome.t * Incremental.t option
(** Warm-started analysis reusing a parent node's {!Incremental.t}:
    layers below the split layer are shared verbatim (O(1) aliasing),
    the rest is re-propagated and intersected with the parent's bounds
    (monotone tightening — never looser than [run], and identical to it
    whenever no parent bound is strictly tighter than the recomputed
    one).  With [?state] absent or incompatible this is exactly [run]
    plus the construction of a fresh state.  Returns the node's own
    state for its children; [None] when the sub-problem was infeasible.
    Does not consult {!Incremental.enabled} — gating the cache is the
    caller's ([Appver.run_warm]'s) job. *)
