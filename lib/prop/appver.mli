(** The [AppVer] abstraction of §III: a named approximate verifier.

    BaB engines are parametric in the AppVer they call on every
    sub-problem, exactly as Alg. 1 takes [AppVer(·)] as an input.  All
    engines in this repository count calls through
    [Abonn_util.Budget]; the AppVer itself is pure. *)

type warm =
  ?state:Incremental.t ->
  Abonn_spec.Problem.t ->
  Abonn_spec.Split.gamma ->
  Outcome.t * Incremental.t option
(** A warm-startable bound computation: reuse a parent node's
    {!Incremental.t} when compatible and return the node's own state
    for its children ([None] for infeasible sub-problems). *)

type t = {
  name : string;
  run : Abonn_spec.Problem.t -> Abonn_spec.Split.gamma -> Outcome.t;
  warm : warm option;
      (** warm-start entry point; [None] for verifiers that always run
          from scratch *)
}

val run_warm :
  t ->
  ?state:Incremental.t ->
  Abonn_spec.Problem.t ->
  Abonn_spec.Split.gamma ->
  Outcome.t * Incremental.t option
(** Warm-start when the verifier supports it and {!Incremental.enabled}
    is on; otherwise exactly [v.run problem gamma] (same instrumentation,
    same floats) paired with [None].  The BaB engines call this on every
    node, threading each node's returned state to its children. *)

val observed : t -> t
(** Wrap a verifier with [Abonn_obs] instrumentation: an
    ["appver.<name>.calls"] counter, an ["appver.<name>"] span timer and
    one [bound_computed] trace event per call.  Costs one branch per call
    while observability is off.  The built-in verifiers below are already
    observed; use this for custom AppVers. *)

(** {1 Easy/hard triage} *)

type triage_crit = {
  lb_threshold : float;
      (** escalate only when the cheap bound is undecided but close:
          [phat >= -lb_threshold] *)
  depth_threshold : int;  (** escalate only at BaB depth >= this *)
  impr_threshold : float;
      (** once [window] escalations have been observed, keep escalating
          only while their mean tightening ([expensive.phat -
          cheap.phat]) stays >= this *)
  window : int;  (** escalations sampled before the improvement gate *)
}
(** Escalation criterion, mirroring the [hard_crit] of the
    scaling-the-convex-barrier exemplar (DESIGN.md §13). *)

val default_triage : triage_crit
(** [{ lb_threshold = 0.5; depth_threshold = 0; impr_threshold = 1e-1;
      window = 32 }]. *)

val triaged : ?crit:triage_crit -> cheap:t -> expensive:t -> unit -> t
(** [triaged ~cheap ~expensive ()] is the AppVer ["<cheap>+<expensive>"]
    that bounds every node with [cheap] and re-bounds it with
    [expensive] only when the escalation criterion fires, merging the
    two certificates elementwise (both are sound, so the max of each
    row bound is).  Escalation statistics are shared across worker
    domains behind a mutex, so the combinator is safe under
    [--domains N]; skipped nodes pass the ancestor's expensive-verifier
    warm state through unchanged.  Counters:
    [appver.triage.escalated] / [appver.triage.skipped]. *)

val deeppoly : t
(** DeepPoly back-substitution with the adaptive lower slope — the
    default AppVer, mirroring the paper's [7],[16] stack. *)

val deeppoly_zero : t
(** DeepPoly with the always-0 lower slope (looser; for ablations). *)

val deeppoly_one : t
(** DeepPoly with the always-1 lower slope (looser; for ablations). *)

val interval : t
(** Interval bound propagation (loosest, fastest). *)

val zonotope : t
(** DeepZ-style zonotope propagation — the paper's second AppVer
    reference [16]; incomparable in tightness with [deeppoly]. *)

val symbolic : t
(** Forward symbolic intervals (ReluVal/Neurify-style): one cheap
    forward pass keeping linear input dependencies. *)

val all : t list

val find : string -> t option
(** Look up by [name]. *)
