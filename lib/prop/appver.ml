module Obs = Abonn_obs.Obs
module Ev = Abonn_obs.Event

type t = {
  name : string;
  run : Abonn_spec.Problem.t -> Abonn_spec.Split.gamma -> Outcome.t;
}

(* Observe a verifier: per-call counter, a span timer and a
   [bound_computed] trace event, all gated on [Obs.active] so the
   un-observed path pays one branch.  The DeepPoly family instruments
   itself inside [Deeppoly.run] (it is also called directly, e.g. by
   branching heuristics and the harness cost model), so only the other
   engines are wrapped here. *)
let observed { name; run } =
  { name;
    run =
      (fun problem gamma ->
        if not (Obs.active ()) then run problem gamma
        else begin
          let t0 = Obs.now () in
          let outcome = run problem gamma in
          let elapsed = Obs.now () -. t0 in
          Obs.incr (Printf.sprintf "appver.%s.calls" name);
          Obs.span ("appver." ^ name) elapsed;
          if Obs.tracing () then
            Obs.emit
              (Ev.Bound_computed
                 { appver = name; depth = Abonn_spec.Split.depth gamma;
                   phat = outcome.Outcome.phat; elapsed });
          outcome
        end) }

let deeppoly = { name = "deeppoly"; run = Deeppoly.run ~slope:Deeppoly.Adaptive }

let deeppoly_zero = { name = "deeppoly-zero"; run = Deeppoly.run ~slope:Deeppoly.Always_zero }

let deeppoly_one = { name = "deeppoly-one"; run = Deeppoly.run ~slope:Deeppoly.Always_one }

let interval = observed { name = "interval"; run = Interval.run }

let zonotope = observed { name = "zonotope"; run = Zonotope.run }

let symbolic = observed { name = "symbolic"; run = Symbolic.run }

let all = [ deeppoly; deeppoly_zero; deeppoly_one; zonotope; symbolic; interval ]

let find name = List.find_opt (fun v -> v.name = name) all
