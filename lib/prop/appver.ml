module Obs = Abonn_obs.Obs
module Ev = Abonn_obs.Event

type warm =
  ?state:Incremental.t ->
  Abonn_spec.Problem.t ->
  Abonn_spec.Split.gamma ->
  Outcome.t * Incremental.t option

type t = {
  name : string;
  run : Abonn_spec.Problem.t -> Abonn_spec.Split.gamma -> Outcome.t;
  warm : warm option;
}

(* Observe a verifier: per-call counter, a span timer and a
   [bound_computed] trace event, all gated on [Obs.active] so the
   un-observed path pays one branch.  The DeepPoly family instruments
   itself inside [Deeppoly.run] (it is also called directly, e.g. by
   branching heuristics and the harness cost model), so only the other
   engines are wrapped here. *)
let observed { name; run; warm } =
  { name;
    run =
      (fun problem gamma ->
        if not (Obs.active ()) then run problem gamma
        else begin
          let t0 = Obs.now () in
          let outcome = run problem gamma in
          let elapsed = Obs.now () -. t0 in
          Obs.incr (Printf.sprintf "appver.%s.calls" name);
          Obs.span ("appver." ^ name) elapsed;
          if Obs.tracing () then
            Obs.emit
              (Ev.Bound_computed
                 { appver = name; depth = Abonn_spec.Split.depth gamma;
                   phat = outcome.Outcome.phat; elapsed });
          outcome
        end);
    warm }

(* Warm-start dispatch: engines call this on every node.  Verifiers
   without a warm entry point, and every call while the cache is
   disabled (--no-bound-cache), fall through to the plain [run] —
   bit-for-bit the pre-cache path, returning no state. *)
let run_warm v ?state problem gamma =
  match v.warm with
  | Some w when Incremental.enabled () -> w ?state problem gamma
  | Some _ | None -> (v.run problem gamma, None)

let deeppoly =
  { name = "deeppoly";
    run = Deeppoly.run ~slope:Deeppoly.Adaptive;
    warm = Some (Deeppoly.run_warm ~slope:Deeppoly.Adaptive) }

let deeppoly_zero =
  { name = "deeppoly-zero";
    run = Deeppoly.run ~slope:Deeppoly.Always_zero;
    warm = Some (Deeppoly.run_warm ~slope:Deeppoly.Always_zero) }

let deeppoly_one =
  { name = "deeppoly-one";
    run = Deeppoly.run ~slope:Deeppoly.Always_one;
    warm = Some (Deeppoly.run_warm ~slope:Deeppoly.Always_one) }

let interval = observed { name = "interval"; run = Interval.run; warm = None }

let zonotope = observed { name = "zonotope"; run = Zonotope.run; warm = None }

let symbolic = observed { name = "symbolic"; run = Symbolic.run; warm = None }

let all = [ deeppoly; deeppoly_zero; deeppoly_one; zonotope; symbolic; interval ]

let find name = List.find_opt (fun v -> v.name = name) all
