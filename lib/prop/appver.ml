module Obs = Abonn_obs.Obs
module Ev = Abonn_obs.Event

type warm =
  ?state:Incremental.t ->
  Abonn_spec.Problem.t ->
  Abonn_spec.Split.gamma ->
  Outcome.t * Incremental.t option

type t = {
  name : string;
  run : Abonn_spec.Problem.t -> Abonn_spec.Split.gamma -> Outcome.t;
  warm : warm option;
}

(* Observe a verifier: per-call counter, a span timer and a
   [bound_computed] trace event, all gated on [Obs.active] so the
   un-observed path pays one branch.  The DeepPoly family instruments
   itself inside [Deeppoly.run] (it is also called directly, e.g. by
   branching heuristics and the harness cost model), so only the other
   engines are wrapped here. *)
let observed { name; run; warm } =
  { name;
    run =
      (fun problem gamma ->
        if not (Obs.active ()) then run problem gamma
        else begin
          let t0 = Obs.now () in
          let outcome = run problem gamma in
          let elapsed = Obs.now () -. t0 in
          Obs.incr (Printf.sprintf "appver.%s.calls" name);
          Obs.span ("appver." ^ name) elapsed;
          if Obs.tracing () then
            Obs.emit
              (Ev.Bound_computed
                 { appver = name; depth = Abonn_spec.Split.depth gamma;
                   phat = outcome.Outcome.phat; elapsed });
          outcome
        end);
    warm }

(* Warm-start dispatch: engines call this on every node.  Verifiers
   without a warm entry point, and every call while the cache is
   disabled (--no-bound-cache), fall through to the plain [run] —
   bit-for-bit the pre-cache path, returning no state. *)
let run_warm v ?state problem gamma =
  match v.warm with
  | Some w when Incremental.enabled () -> w ?state problem gamma
  | Some _ | None -> (v.run problem gamma, None)

(* --- easy/hard triage (DESIGN.md §13) ---

   Mirrors the [hard_crit] of the scaling-the-convex-barrier codebase:
   a node only earns an expensive bound when the cheap one leaves it
   undecided-but-close ([lb_threshold]), deep enough to matter
   ([depth_threshold]), and while escalation keeps paying for itself
   ([impr_threshold] mean tightening over a [window] of samples). *)

type triage_crit = {
  lb_threshold : float;
  depth_threshold : int;
  impr_threshold : float;
  window : int;
}

let default_triage =
  { lb_threshold = 0.5; depth_threshold = 0; impr_threshold = 1e-1; window = 32 }

let triaged ?(crit = default_triage) ~cheap ~expensive () =
  (* escalation statistics are per-combinator and shared across worker
     domains, hence the mutex; contention is one lock per escalation *)
  let lock = Mutex.create () in
  let observations = ref 0 in
  let total_impr = ref 0.0 in
  let note_improvement d =
    Mutex.lock lock;
    incr observations;
    total_impr := !total_impr +. d;
    Mutex.unlock lock
  in
  let worthwhile () =
    Mutex.lock lock;
    let r =
      !observations < crit.window
      || !total_impr /. float_of_int !observations >= crit.impr_threshold
    in
    Mutex.unlock lock;
    r
  in
  let escalate gamma (o : Outcome.t) =
    (not (Outcome.proved o))
    && (not o.Outcome.infeasible)
    && Abonn_spec.Split.depth gamma >= crit.depth_threshold
    && o.Outcome.phat >= -.crit.lb_threshold
    && worthwhile ()
  in
  (* both outcomes certify the same node: keep the elementwise-best *)
  let merge (a : Outcome.t) (b : Outcome.t) =
    let row_lower =
      if Array.length a.Outcome.row_lower = Array.length b.Outcome.row_lower
      then
        Array.mapi
          (fun r v -> Float.max v b.Outcome.row_lower.(r))
          a.Outcome.row_lower
      else if Array.length b.Outcome.row_lower > 0 then b.Outcome.row_lower
      else a.Outcome.row_lower
    in
    let pre_bounds =
      if Array.length b.Outcome.pre_bounds > 0 then b.Outcome.pre_bounds
      else a.Outcome.pre_bounds
    in
    let candidate =
      match b.Outcome.candidate with
      | Some _ as c -> c
      | None -> a.Outcome.candidate
    in
    Outcome.make
      ~phat:(Float.max a.Outcome.phat b.Outcome.phat)
      ?candidate ~pre_bounds
      ~infeasible:(a.Outcome.infeasible || b.Outcome.infeasible)
      ~row_lower ()
  in
  let name = cheap.name ^ "+" ^ expensive.name in
  let run problem gamma =
    let cheap_o = cheap.run problem gamma in
    if escalate gamma cheap_o then begin
      if Obs.active () then Obs.incr "appver.triage.escalated";
      let exp_o = expensive.run problem gamma in
      note_improvement (exp_o.Outcome.phat -. cheap_o.Outcome.phat);
      merge cheap_o exp_o
    end
    else begin
      if Obs.active () then Obs.incr "appver.triage.skipped";
      cheap_o
    end
  in
  let warm ?state problem gamma =
    let cheap_o = cheap.run problem gamma in
    if escalate gamma cheap_o then begin
      if Obs.active () then Obs.incr "appver.triage.escalated";
      let exp_o, state' = run_warm expensive ?state problem gamma in
      note_improvement (exp_o.Outcome.phat -. cheap_o.Outcome.phat);
      (merge cheap_o exp_o, state')
    end
    else begin
      if Obs.active () then Obs.incr "appver.triage.skipped";
      (* pass the ancestor's expensive-verifier state through unchanged:
         it stays a sound, compatible warm-start for any descendant that
         does escalate *)
      (cheap_o, state)
    end
  in
  { name; run; warm = Some warm }

let deeppoly =
  { name = "deeppoly";
    run = Deeppoly.run ~slope:Deeppoly.Adaptive;
    warm = Some (Deeppoly.run_warm ~slope:Deeppoly.Adaptive) }

let deeppoly_zero =
  { name = "deeppoly-zero";
    run = Deeppoly.run ~slope:Deeppoly.Always_zero;
    warm = Some (Deeppoly.run_warm ~slope:Deeppoly.Always_zero) }

let deeppoly_one =
  { name = "deeppoly-one";
    run = Deeppoly.run ~slope:Deeppoly.Always_one;
    warm = Some (Deeppoly.run_warm ~slope:Deeppoly.Always_one) }

let interval = observed { name = "interval"; run = Interval.run; warm = None }

let zonotope = observed { name = "zonotope"; run = Zonotope.run; warm = None }

let symbolic = observed { name = "symbolic"; run = Symbolic.run; warm = None }

let all = [ deeppoly; deeppoly_zero; deeppoly_one; zonotope; symbolic; interval ]

let find name = List.find_opt (fun v -> v.name = name) all
