module Affine = Abonn_nn.Affine
module Region = Abonn_spec.Region
module Split = Abonn_spec.Split
module Problem = Abonn_spec.Problem

type t = {
  appver : string;
  region_lower : float array;
  region_upper : float array;
  gamma : Split.gamma;
  pre_bounds : Bounds.t array;
  row_lower : float array;
}

(* Process-global escape hatch (--no-bound-cache): when disabled,
   [Appver.run_warm] falls back to the from-scratch path and returns no
   state, restoring the pre-cache behaviour bit-for-bit. *)
let enabled_flag = ref true

let enabled () = !enabled_flag

let set_enabled v = enabled_flag := v

let with_enabled v f =
  let saved = !enabled_flag in
  enabled_flag := v;
  Fun.protect ~finally:(fun () -> enabled_flag := saved) f

let make ~appver ~(problem : Problem.t) ~gamma ~pre_bounds ~row_lower =
  let region = problem.Problem.region in
  { appver;
    region_lower = region.Region.lower;
    region_upper = region.Region.upper;
    gamma;
    pre_bounds;
    row_lower }

type reuse =
  | Prefix of int
  | Tighten
  | Incompatible

(* [gamma] extends [prefix] ⟺ [prefix] is a leading sub-list: BaB engines
   only ever append constraints ([Split.extend]). *)
let rec strip_prefix prefix gamma =
  match prefix, gamma with
  | [], rest -> Some rest
  | p :: ps, g :: gs when p = g -> strip_prefix ps gs
  | _ :: _, _ -> None

let region_contained ~outer_lo ~outer_hi (region : Region.t) =
  let lo = region.Region.lower and hi = region.Region.upper in
  Array.length lo = Array.length outer_lo
  && (let ok = ref true in
      Array.iteri
        (fun i l -> if l < outer_lo.(i) || hi.(i) > outer_hi.(i) then ok := false)
        lo;
      !ok)

let classify st ~appver ~(problem : Problem.t) ~gamma =
  if st.appver <> appver then Incompatible
  else begin
    let region = problem.Problem.region in
    let n_hidden = Affine.num_layers problem.Problem.affine - 1 in
    if Array.length st.pre_bounds <> n_hidden then Incompatible
    else if
      st.region_lower = region.Region.lower && st.region_upper = region.Region.upper
    then
      match strip_prefix st.gamma gamma with
      | None -> Incompatible
      | Some [] -> Prefix n_hidden
      | Some fresh ->
        let affine = problem.Problem.affine in
        let from =
          List.fold_left
            (fun acc (c : Split.constr) ->
              let layer, _ = Affine.relu_position affine c.Split.relu in
              Stdlib.min acc layer)
            n_hidden fresh
        in
        Prefix from
    else if
      (* a shrunk input box (input splitting): every layer must be
         re-propagated, but the parent's bounds still contain the child's
         feasible set and may be intersected in (monotone tightening) *)
      st.gamma = [] && gamma = []
      && region_contained ~outer_lo:st.region_lower ~outer_hi:st.region_upper region
    then Tighten
    else Incompatible
  end
