(** αβ-CROWN-style baseline verifier (§V-A).

    The paper's second baseline is the αβ-CROWN tool — "the
    state-of-the-art verification tool … with various sophisticated
    heuristics".  This module reproduces its *architecture* (DESIGN.md §4
    documents the substitution honestly; no feature parity is claimed):

    + a PGD/FGSM attack portfolio runs first, exactly like the real
      tool's warm start — violated instances often fall here without a
      single bound computation;
    + bounds come from the adaptive-slope CROWN relaxation
      ([Abonn_prop.Deeppoly] — the per-coefficient greedy optimum of the
      α choice for one back-substitution pass);
    + the BaB phase explores best-first on the certified bound (most
      violated sub-problem first) with filtered smart branching, the
      strongest classical configuration in this repository.

    Attack evaluations are concrete forward passes, orders of magnitude
    cheaper than an AppVer call; the run statistics count AppVer calls
    only, consistent with every other engine. *)

val verify :
  ?attack:Abonn_attack.Attack.t ->
  ?attack_seed:int ->
  ?heuristic:Abonn_bab.Branching.t ->
  ?budget:Abonn_util.Budget.t ->
  ?domains:int ->
  Abonn_spec.Problem.t ->
  Abonn_bab.Result.t
(** Defaults: best-effort attack portfolio, seed 0, FSB branching.
    [domains] is forwarded to the best-first BaB phase (the attack
    portfolio stays sequential); it defaults to
    [Abonn_par.Pool.default_domains ()] — see docs/PARALLELISM.md. *)
