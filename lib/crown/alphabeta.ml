module Budget = Abonn_util.Budget
module Rng = Abonn_util.Rng
module Obs = Abonn_obs.Obs
module Ev = Abonn_obs.Event
module Verdict = Abonn_spec.Verdict
module Result = Abonn_bab.Result
module Branching = Abonn_bab.Branching
module Attack = Abonn_attack.Attack

let verify ?(attack = Attack.best_effort) ?(attack_seed = 0)
    ?(heuristic = Branching.fsb) ?budget ?domains problem =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let started = Unix.gettimeofday () in
  let rng = Rng.create attack_seed in
  match attack.Attack.run rng problem with
  | Some x ->
    let wall_time = Unix.gettimeofday () -. started in
    if Obs.active () then begin
      Obs.incr "crown.warmstart.hit";
      if Obs.tracing () then
        Obs.emit
          (Ev.Verdict_reached
             { engine = "ab-crown"; verdict = Verdict.to_string (Verdict.Falsified x);
               elapsed = wall_time })
    end;
    Result.make ~verdict:(Verdict.Falsified x) ~appver_calls:(Budget.calls_used budget)
      ~nodes:0 ~max_depth:0 ~wall_time
  | None ->
    Obs.incr "crown.warmstart.miss";
    let result = Abonn_bab.Bestfirst.verify ~heuristic ~budget ?domains problem in
    let wall_time = Unix.gettimeofday () -. started in
    if Obs.tracing () then
      Obs.emit
        (Ev.Verdict_reached
           { engine = "ab-crown"; verdict = Verdict.to_string result.Result.verdict;
             elapsed = wall_time });
    { result with
      Result.stats = { result.Result.stats with Result.wall_time } }
