(* Chase–Lev deque on OCaml 5 atomics.

   Indices [top] and [bottom] grow without bound; the live window is
   [top, bottom) mapped into a circular buffer of atomic slots.  Making
   every slot an [Atomic.t] (rather than a plain array with fences)
   keeps the implementation inside the OCaml memory model's data-race
   free fragment: the published correctness argument then carries over
   directly, because OCaml [Atomic] operations are sequentially
   consistent.  A slot read costs a few nanoseconds, which is noise
   next to the millisecond-scale bound propagation each dequeued BaB
   node triggers.

   Invariants:
   - only the owner writes [bottom] and slot contents;
   - [top] only ever increases, via CAS (thief steal, owner last-element
     race) or a plain set by the owner when it empties the deque;
   - a slot is only overwritten once its index is outside [top, bottom),
     and the grow path copies the live window before publishing the new
     buffer, so a thief that read a stale buffer still reads the value
     that was current when it read [top] — its CAS on [top] then either
     fails (value discarded) or succeeds (value was still live). *)

type 'a buffer = {
  size : int;  (* power of two *)
  mask : int;
  slots : 'a option Atomic.t array;
}

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;  (* written by the owner only *)
  buf : 'a buffer Atomic.t;
}

let make_buffer size =
  { size; mask = size - 1; slots = Array.init size (fun _ -> Atomic.make None) }

let create () =
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (make_buffer 16) }

let slot_get buf i = Atomic.get buf.slots.(i land buf.mask)
let slot_set buf i v = Atomic.set buf.slots.(i land buf.mask) v

(* Owner only: double the buffer, copying the live window [t, b). *)
let grow q t b =
  let old = Atomic.get q.buf in
  let buf = make_buffer (old.size * 2) in
  for i = t to b - 1 do
    slot_set buf i (slot_get old i)
  done;
  Atomic.set q.buf buf;
  buf

let push q x =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let buf = Atomic.get q.buf in
  let buf = if b - t >= buf.size - 1 then grow q t b else buf in
  slot_set buf b (Some x);
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if t > b then begin
    (* empty: restore the canonical empty state *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let buf = Atomic.get q.buf in
    let x = slot_get buf b in
    if t < b then x (* more than one element: no thief can reach [b] *)
    else begin
      (* exactly one element left: race thieves for it via [top] *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then x else None
    end
  end

let rec steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    let buf = Atomic.get q.buf in
    let x = slot_get buf t in
    if Atomic.compare_and_set q.top t (t + 1) then x
    else steal q (* lost to another thief or to the owner's last-element pop *)
  end

let length q =
  let b = Atomic.get q.bottom and t = Atomic.get q.top in
  if b > t then b - t else 0
