(** Chase–Lev work-stealing deque.

    The classic single-owner double-ended queue of Chase & Lev ("Dynamic
    circular work-stealing deque", SPAA 2005) with the Lê et al. (PPoPP
    2013) memory-ordering fixes, specialised to OCaml 5 [Atomic]s: the
    owner domain pushes and pops at the {e bottom} in LIFO order while
    any number of thief domains [steal] from the {e top} in FIFO order.
    All cross-domain hand-off goes through [Atomic] cells (the top and
    bottom indices and every element slot), so the structure is data-race
    free under the OCaml memory model without any lock.

    Owner operations are wait-free except for the one-CAS race on the
    last element; [steal] is lock-free (a thief retries only when it
    loses a race to another thief or to the owner taking the final
    element).  The element buffer grows geometrically and never shrinks
    — BaB frontiers are short-lived, so the transient memory is bounded
    by the deepest frontier of the run.

    Used by {!Pool} as the per-domain open set of the parallel BaB
    frontier; see docs/PARALLELISM.md. *)

type 'a t

val create : unit -> 'a t
(** A fresh empty deque. *)

val push : 'a t -> 'a -> unit
(** Owner only: push at the bottom. *)

val pop : 'a t -> 'a option
(** Owner only: pop at the bottom (LIFO).  [None] when empty. *)

val steal : 'a t -> 'a option
(** Any domain: take from the top (FIFO).  [None] when the deque is
    empty or the caller lost the race for the last element. *)

val length : 'a t -> int
(** Snapshot of the current size — racy, for telemetry only. *)
