(** Work-stealing domain pool: the parallel BaB frontier scheduler.

    [run] shards a set of root work items across [domains] OCaml 5
    domains.  Each domain owns one Chase–Lev deque ({!Deque}): it pushes
    and pops its own work LIFO (depth-first, which keeps the incremental
    bound cache hot — a node's children are expanded right after their
    parent), and steals FIFO from a sibling when its own deque runs dry
    (stealing the {e shallowest} node of the victim, i.e. the largest
    stolen sub-tree, the classic work-stealing heuristic).

    Termination is detected with a global atomic in-flight counter:
    every push increments it, every completed item decrements it, so
    the pool is done exactly when the counter reaches zero — a domain
    observing an empty deque cannot conclude anything, because a busy
    sibling may still push.  Early exit (a found counterexample, an
    exhausted budget) is requested through {!request_stop}; in-flight
    items finish, queued items are abandoned.

    Determinism contract (docs/PARALLELISM.md): [run ~domains:1]
    degenerates to a plain LIFO loop on the calling domain — no domain
    is spawned, no steal can occur, and the visit order is a pure
    function of the work function.  The BaB engines additionally bypass
    the pool entirely at one domain, so the sequential code path is
    byte-for-byte the pre-parallelism one.  With [domains > 1] the
    visit order is scheduling-dependent; only the *set* of reachable
    items (and therefore any order-insensitive result, like a BaB
    verdict under an unlimited budget) is deterministic.

    Per-domain RNG streams are split deterministically from [seed]
    ([Rng.split] on a master generator, in domain order), so randomised
    work functions stay reproducible per (seed, domain) even though the
    item-to-domain assignment is not. *)

type 'a ctx
(** Per-worker handle passed to the work function. *)

val id : 'a ctx -> int
(** This worker's domain index, [0 .. domains-1].  Index 0 runs on the
    calling domain. *)

val rng : 'a ctx -> Abonn_util.Rng.t
(** This worker's private RNG stream (deterministic in [(seed, id)]). *)

val push : 'a ctx -> 'a -> unit
(** Schedule a new work item on this worker's own deque. *)

val queue_length : 'a ctx -> int
(** Length of this worker's own deque (racy snapshot, telemetry only). *)

val request_stop : 'a ctx -> unit
(** Ask every worker to exit after its current item. *)

val stop_requested : 'a ctx -> bool

type stats = {
  domain : int;
  processed : int;  (** items this domain ran the work function on *)
  pushed : int;     (** items this domain scheduled *)
  stolen : int;     (** items this domain took from a sibling's deque *)
  steal_attempts : int;  (** steal sweeps that found at least one victim candidate *)
  idle : int;       (** sweeps that found no work anywhere *)
}

val run :
  domains:int ->
  ?seed:int ->
  ?engine:string ->
  roots:'a list ->
  work:('a ctx -> 'a -> unit) ->
  unit ->
  stats array
(** Process [roots] and everything the work function pushes, on
    [domains] domains ([domains - 1] spawned, the caller is worker 0).
    Returns per-domain statistics, in domain order.

    While a worker runs, every [Abonn_obs] event it emits is tagged
    with its domain index (the envelope [domain] field); when [engine]
    is given and tracing is active, one [domain_summary] event per
    domain is emitted at the end, and the [par.steal] / [par.idle]
    counters and [par.domains] gauge are updated.

    An exception escaping the work function stops the pool and is
    re-raised on the calling domain after all workers have joined. *)

val default_domains : unit -> int
(** The default BaB engine parallelism: [ABONN_DOMAINS] from the
    environment (clamped to [1, 64]) when set and parseable, else 1 —
    the sequential path.  Engines resolve their [?domains] argument
    through this, so one environment variable flips a whole test or
    bench run parallel without touching call sites. *)
