module Rng = Abonn_util.Rng
module Obs = Abonn_obs.Obs
module Metrics = Abonn_obs.Metrics
module Ev = Abonn_obs.Event

type 'a shared = {
  deques : 'a Deque.t array;
  pending : int Atomic.t;  (* queued + in-flight items *)
  stop : bool Atomic.t;
  failure : exn option Atomic.t;
}

type 'a ctx = {
  ctx_id : int;
  ctx_rng : Rng.t;
  shared : 'a shared;
  mutable processed : int;
  mutable pushed : int;
  mutable stolen : int;
  mutable steal_attempts : int;
  mutable idle : int;
}

let id c = c.ctx_id
let rng c = c.ctx_rng

let push c x =
  (* increment [pending] before publishing the item, so the counter can
     never be observed at zero while work remains reachable *)
  Atomic.incr c.shared.pending;
  c.pushed <- c.pushed + 1;
  Deque.push c.shared.deques.(c.ctx_id) x

let queue_length c = Deque.length c.shared.deques.(c.ctx_id)

let request_stop c = Atomic.set c.shared.stop true
let stop_requested c = Atomic.get c.shared.stop

type stats = {
  domain : int;
  processed : int;
  pushed : int;
  stolen : int;
  steal_attempts : int;
  idle : int;
}

let stats_of_ctx c =
  { domain = c.ctx_id;
    processed = c.processed;
    pushed = c.pushed;
    stolen = c.stolen;
    steal_attempts = c.steal_attempts;
    idle = c.idle }

(* One steal sweep: try every sibling once, round-robin from our right
   neighbour so victims are spread instead of dog-piling domain 0. *)
let steal_sweep c =
  let n = Array.length c.shared.deques in
  let rec go k =
    if k >= n - 1 then None
    else begin
      let victim = (c.ctx_id + 1 + k) mod n in
      match Deque.steal c.shared.deques.(victim) with
      | Some _ as got ->
        c.stolen <- c.stolen + 1;
        got
      | None -> go (k + 1)
    end
  in
  if n > 1 then c.steal_attempts <- c.steal_attempts + 1;
  go 0

let worker c work =
  let s = c.shared in
  let process item =
    (match work c item with
     | () -> ()
     | exception e ->
       (* first failure wins; stop the pool and let [run] re-raise *)
       ignore (Atomic.compare_and_set s.failure None (Some e));
       Atomic.set s.stop true);
    c.processed <- c.processed + 1;
    Atomic.decr s.pending
  in
  let rec loop () =
    if Atomic.get s.stop || Atomic.get s.pending = 0 then ()
    else begin
      (match Deque.pop s.deques.(c.ctx_id) with
       | Some item -> process item
       | None ->
         (match steal_sweep c with
          | Some item -> process item
          | None ->
            c.idle <- c.idle + 1;
            (* a busy sibling may still push: back off without burning
               the core (essential on single-CPU containers, where a
               spinning domain starves the one that holds the work) *)
            if c.idle land 31 = 0 then Unix.sleepf 0.0002
            else Domain.cpu_relax ()));
      loop ()
    end
  in
  loop ()

let emit_summaries engine stats =
  Array.iter
    (fun st ->
      Metrics.incr ~by:st.stolen "par.steal";
      Metrics.incr ~by:st.idle "par.idle";
      if Obs.tracing () then
        Obs.emit
          (Ev.Domain_summary
             { engine; domain = st.domain; processed = st.processed;
               pushed = st.pushed; stolen = st.stolen; idle = st.idle }))
    stats;
  Metrics.gauge_set "par.domains" (float_of_int (Array.length stats))

let run ~domains ?(seed = 0) ?engine ~roots ~work () =
  if domains < 1 then invalid_arg "Pool.run: domains must be >= 1";
  let shared =
    { deques = Array.init domains (fun _ -> Deque.create ());
      pending = Atomic.make (List.length roots);
      stop = Atomic.make false;
      failure = Atomic.make None }
  in
  (* deterministic per-domain RNG streams, split in domain order *)
  let master = Rng.create seed in
  let ctxs =
    Array.init domains (fun i ->
        { ctx_id = i; ctx_rng = Rng.split master; shared; processed = 0;
          pushed = 0; stolen = 0; steal_attempts = 0; idle = 0 })
  in
  (* distribute roots round-robin before any domain runs (the deques
     are owner-only once workers start) *)
  List.iteri (fun i item -> Deque.push shared.deques.(i mod domains) item) roots;
  let run_worker i () =
    let saved = Obs.current_domain () in
    Obs.set_domain (Some i);
    Fun.protect
      ~finally:(fun () -> Obs.set_domain saved)
      (fun () -> worker ctxs.(i) work)
  in
  let spawned =
    Array.init (domains - 1) (fun k -> Domain.spawn (run_worker (k + 1)))
  in
  run_worker 0 ();
  Array.iter Domain.join spawned;
  let stats = Array.map stats_of_ctx ctxs in
  (match engine with Some e -> emit_summaries e stats | None -> ());
  (match Atomic.get shared.failure with Some e -> raise e | None -> ());
  stats

let max_domains = 64

let default_domains () =
  match Sys.getenv_opt "ABONN_DOMAINS" with
  | None -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> Stdlib.min n max_domains
     | Some _ | None -> 1)
