module Event = Abonn_obs.Event

type node = {
  gamma : string;
  token : string;
  depth : int;
  phat : float;
  reward : float;
  seq : int;
  mutable children : node list;
}

type shape = {
  nodes : int;
  max_depth : int;
  depth_counts : int array;
  interior : int;
  leaves_proved : int;
  leaves_cex : int;
  leaves_open : int;
  exact_verified : int;
  exact_falsified : int;
  orphans : int;
}

type t = { root : node option; shape : shape }

let root_gamma = "\xce\xb5" (* ε *)

let parent_gamma gamma =
  if gamma = root_gamma then None
  else
    match String.rindex_opt gamma '.' with
    | Some i -> Some (String.sub gamma 0 i)
    | None -> Some root_gamma

let last_token gamma =
  match String.rindex_opt gamma '.' with
  | Some i -> String.sub gamma (i + 1) (String.length gamma - i - 1)
  | None -> gamma

let build events =
  let by_gamma : (string, node) Hashtbl.t = Hashtbl.create 256 in
  let root = ref None and orphans = ref 0 in
  let exact_verified = ref 0 and exact_falsified = ref 0 in
  let max_depth = ref 0 and depth_tally : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let untracked = ref 0 in
  (* nodes seen only through depth-bearing events, no gamma *)
  let count_depth d =
    if d > !max_depth then max_depth := d;
    Hashtbl.replace depth_tally d (1 + Option.value ~default:0 (Hashtbl.find_opt depth_tally d))
  in
  List.iter
    (fun env ->
      match env.Event.event with
      | Event.Node_evaluated { depth; gamma; phat; reward; _ } ->
        count_depth depth;
        let node =
          { gamma; token = last_token gamma; depth; phat; reward; seq = env.Event.seq;
            children = [] }
        in
        (* Re-evaluations of the same gamma should not occur; keep the first. *)
        if not (Hashtbl.mem by_gamma gamma) then begin
          Hashtbl.add by_gamma gamma node;
          match parent_gamma gamma with
          | None -> root := Some node
          | Some pg ->
            (match Hashtbl.find_opt by_gamma pg with
             | Some parent -> parent.children <- parent.children @ [ node ]
             | None -> incr orphans)
        end
      | Event.Frontier_pop { depth; _ } ->
        count_depth depth;
        incr untracked
      | Event.Exact_leaf { verified; depth; _ } ->
        if depth > !max_depth then max_depth := depth;
        if verified then incr exact_verified else incr exact_falsified
      | _ -> ())
    events;
  let nodes = Hashtbl.length by_gamma + !untracked in
  let depth_counts = Array.make (!max_depth + 1) 0 in
  Hashtbl.iter
    (fun d n -> if d >= 0 && d < Array.length depth_counts then depth_counts.(d) <- n)
    depth_tally;
  let interior = ref 0 and proved = ref 0 and cex = ref 0 and open_ = ref 0 in
  Hashtbl.iter
    (fun _ n ->
      if n.children <> [] then incr interior
      else if n.reward = neg_infinity then incr proved
      else if n.reward = infinity then incr cex
      else incr open_)
    by_gamma;
  { root = !root;
    shape =
      { nodes;
        max_depth = !max_depth;
        depth_counts;
        interior = !interior;
        leaves_proved = !proved;
        leaves_cex = !cex;
        leaves_open = !open_;
        exact_verified = !exact_verified;
        exact_falsified = !exact_falsified;
        orphans = !orphans } }

(* --- rendering --- *)

let shape_to_string s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "nodes: %d (interior %d)  max depth: %d\n" s.nodes s.interior
       s.max_depth);
  Buffer.add_string buf
    (Printf.sprintf "leaves: %d proved, %d counterexample, %d open\n" s.leaves_proved
       s.leaves_cex s.leaves_open);
  if s.exact_verified + s.exact_falsified > 0 then
    Buffer.add_string buf
      (Printf.sprintf "exact leaves: %d verified, %d falsified\n" s.exact_verified
         s.exact_falsified);
  if s.orphans > 0 then
    Buffer.add_string buf
      (Printf.sprintf "orphans: %d (parent missing — truncated trace?)\n" s.orphans);
  let vmax = Array.fold_left Stdlib.max 1 s.depth_counts in
  Buffer.add_string buf "depth histogram:\n";
  Array.iteri
    (fun d n ->
      let width = n * 40 / vmax in
      Buffer.add_string buf (Printf.sprintf "  %3d %6d %s\n" d n (String.make width '#')))
    s.depth_counts;
  Buffer.contents buf

let fnum v =
  if v = infinity then "+inf"
  else if v = neg_infinity then "-inf"
  else if Float.is_nan v then "nan"
  else Printf.sprintf "%.4f" v

let render_ascii ?(max_nodes = 200) root =
  let buf = Buffer.create 1024 in
  let printed = ref 0 and suppressed = ref 0 in
  let rec go prefix is_last node =
    if !printed >= max_nodes then incr suppressed
    else begin
      incr printed;
      let connector =
        if node.depth = 0 then "" else if is_last then "`-- " else "|-- "
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s%s  phat=%s reward=%s\n" prefix connector node.token
           (fnum node.phat) (fnum node.reward));
      let child_prefix =
        if node.depth = 0 then "" else prefix ^ (if is_last then "    " else "|   ")
      in
      let rec children = function
        | [] -> ()
        | [ c ] -> go child_prefix true c
        | c :: rest ->
          go child_prefix false c;
          children rest
      in
      children node.children
    end
  in
  go "" true root;
  if !suppressed > 0 then
    Buffer.add_string buf (Printf.sprintf "... (%d more nodes suppressed)\n" !suppressed);
  Buffer.contents buf

let render_dot ?(max_nodes = 2000) root =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "digraph bab {\n";
  Buffer.add_string buf "  node [shape=box, style=filled, fontname=\"monospace\"];\n";
  let count = ref 0 in
  let esc s =
    String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
                        (List.init (String.length s) (String.get s)))
  in
  let color n =
    if n.children <> [] then "lightblue"
    else if n.reward = neg_infinity then "palegreen"
    else if n.reward = infinity then "salmon"
    else "lightyellow"
  in
  let rec go n =
    if !count < max_nodes then begin
      incr count;
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\nphat=%s r=%s\", fillcolor=%s];\n" n.seq
           (esc n.token) (fnum n.phat) (fnum n.reward) (color n));
      List.iter
        (fun c ->
          if !count < max_nodes then begin
            go c;
            Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" n.seq c.seq)
          end)
        n.children
    end
  in
  go root;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
