(** Chrome trace-event / Perfetto exporter.

    Maps the ABONN envelope + span events (docs/TRACE_SCHEMA.md
    sections 1-2) onto the JSON trace-event format understood by
    chrome://tracing, the Perfetto UI and speedscope: the envelope
    [domain] tag becomes a named thread track, events carrying
    [elapsed] become complete ("X") spans with their timestamp rewound
    by the duration ([Phases]'s span-window convention), point events
    become thread-scoped instants and [resource_sample] becomes counter
    tracks (RSS/heap, node totals, throughput). *)

val to_string : Abonn_obs.Event.envelope list -> string
(** The whole trace as one JSON document ({v {"traceEvents":[...]} v}),
    timestamps in microseconds.  Deterministic and byte-stable: event
    order follows the input and floats print with fixed formats. *)
