(** Bench-baseline comparison behind [abonn_trace bench]: the CI
    performance regression gate.

    Loads two [BENCH_bab_nodes.json] files — the committed baseline and
    a fresh run — and compares per-instance cached node throughput plus
    the geomean speedup.  Accepts both the stamped layout
    ([{"schema":1, "commit":…, "rows":{…}}]) and the pre-stamp flat
    layout, so the gate works against historical baselines.  Kernel
    bench files ([BENCH_kernels.json], rows carrying [ns_per_run]) are
    accepted too: those rows are exposed as runs/sec in [nps_cached],
    so the same higher-is-better gate covers the kernel
    micro-benchmarks ([kernel_lp_warm] among them). *)

(** {2 Minimal JSON reader}

    Bench files nest one level and the Perfetto exporter emits arrays,
    neither of which the flat trace-line parser can express, so this
    module carries its own small reader.  Exported so tests can
    structurally validate whole JSON documents (e.g. a Perfetto
    export). *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

val parse_json_string : string -> (json, string) result

type row = {
  nps_cached : float;
      (** [nodes_per_sec_cached] — the gated metric; for kernel rows,
          [1e9 / ns_per_run] *)
  nps_uncached : float option;
  speedup : float option;
  peak_rss_bytes : int option;  (** present in stamped files only *)
}

type bench = {
  commit : string option;
  date : string option;
  geomean_speedup : float option;
  rows : (string * row) list;  (** file order *)
}

val load_string : string -> (bench, string) result

val load_file : string -> (bench, string) result
(** Errors carry the path; a missing file is an error. *)

type verdict = {
  name : string;
  baseline_nps : float;  (** after [scale_baseline] *)
  fresh_nps : float;
  delta_pct : float;  (** negative = fresh slower than baseline *)
  regressed : bool;
  baseline_rss : int option;
  fresh_rss : int option;
}

type report = {
  verdicts : verdict list;
  missing : string list;  (** baseline rows absent from the fresh run *)
  geomean_baseline : float option;
  geomean_fresh : float option;
  geomean_regressed : bool;
  ok : bool;  (** no row regressed, no row missing, geomean held *)
}

val compare_benches :
  ?scale_baseline:float ->
  max_regress:float ->
  baseline:bench ->
  fresh:bench ->
  unit ->
  report
(** A row regresses when fresh throughput falls more than [max_regress]
    percent below the baseline (so [~max_regress:20.] tolerates a 20%
    slowdown).  [scale_baseline] multiplies the baseline numbers first —
    CI uses [~scale_baseline:10.] as a synthetic must-fail check that
    the gate actually trips. *)

val report_to_string : max_regress:float -> report -> string
(** Table with throughput deltas and the peak-RSS columns, ending in a
    PASS/FAIL line. *)

(** {2 Instrumentation overhead gate}

    The bench binary can re-run instances with a sink or introspection
    sampling enabled, appending rows named [base@SUFFIX] (e.g.
    [mnist_l2@flight], [mnist_l2@i16]).  {!check_overhead} bounds the
    cached-throughput loss of each variant against its own base row in
    the {e same} file — no committed baseline involved, so the check is
    machine-speed independent ([abonn_trace bench --overhead]). *)

type overhead_verdict = {
  name : string;  (** base row name *)
  base_nps : float;
  variant_nps : float;
  overhead_pct : float;  (** positive = variant slower *)
  exceeded : bool;
}

type overhead_report = {
  suffix : string;
  max_pct : float;
  overhead_verdicts : overhead_verdict list;
  orphan_variants : string list;  (** variant rows without a base row *)
  overhead_ok : bool;
      (** every variant within budget, no orphans, and at least one
          variant row present (an empty set fails, so CI cannot pass
          vacuously) *)
}

val check_overhead : suffix:string -> max_pct:float -> bench -> overhead_report

val overhead_to_string : overhead_report -> string
(** Per-instance table ending in a PASS/FAIL line. *)
