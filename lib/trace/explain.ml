module Event = Abonn_obs.Event

type depth_balance = {
  depth : int;
  decisions : int;
  mean_exploit : float;
  mean_explore : float;
  flips : int;
}

type reward_error = {
  depth : int;
  pairs : int;
  mean_abs_err : float;
  bias : float;
}

type divergence = {
  common_prefix : int;
  first_divergence : int option;
  jaccard : float;
  only_a : int;
  only_b : int;
}

type t = {
  engine : string;
  verdict : string option;
  nodes : int;
  wasted : int;
  wasted_frac : float;
  open_frac : float;
  balance : depth_balance list;
  reward_err : reward_error list;
  branch_decisions : int;
  branch_margin : float;
  divergence : divergence option;
}

(* --- wasted work ----------------------------------------------------

   "Wasted" = evaluated nodes whose subtree contributed nothing to the
   verdict.  On a falsified run only the root-to-counterexample path
   was necessary (BaB could have gone straight there); on a verified
   run every subtree had to be proved, so nothing is wasted by
   definition; an inconclusive run has no verdict to attribute against,
   so the fraction is [nan] and the open-leaf share is reported
   instead. *)

let tree_nodes tree =
  match tree.Tree.root with
  | None -> []
  | Some root ->
    let acc = ref [] in
    let rec walk n =
      acc := n :: !acc;
      List.iter walk n.Tree.children
    in
    walk root;
    !acc

let wasted_work ~verdict tree =
  let nodes = tree_nodes tree in
  let total = List.length nodes in
  let opens =
    List.length
      (List.filter
         (fun n -> n.Tree.children = [] && Float.is_finite n.Tree.reward)
         nodes)
  in
  let open_frac =
    if total > 0 then float_of_int opens /. float_of_int total else Float.nan
  in
  match verdict with
  | Some "verified" -> (0, 0.0, open_frac)
  | Some v when String.length v >= 9 && String.sub v 0 9 = "falsified" ->
    let cex = List.filter (fun n -> n.Tree.reward = Float.infinity) nodes in
    if cex = [] || total = 0 then (0, Float.nan, open_frac)
    else begin
      (* mark every ancestor-or-self of a counterexample leaf as useful *)
      let useful = Hashtbl.create 64 in
      let rec mark gamma =
        if not (Hashtbl.mem useful gamma) then begin
          Hashtbl.replace useful gamma ();
          match Tree.parent_gamma gamma with
          | Some p -> mark p
          | None -> ()
        end
      in
      List.iter (fun n -> mark n.Tree.gamma) cex;
      let wasted =
        List.length
          (List.filter (fun n -> not (Hashtbl.mem useful n.Tree.gamma)) nodes)
      in
      (wasted, float_of_int wasted /. float_of_int total, open_frac)
    end
  | _ -> (0, Float.nan, open_frac)

(* --- per-depth aggregation helpers --- *)

let by_depth fold_rows =
  let tbl : (int, float ref * float ref * int ref * int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let cell d =
    match Hashtbl.find_opt tbl d with
    | Some c -> c
    | None ->
      let c = (ref 0.0, ref 0.0, ref 0, ref 0) in
      Hashtbl.replace tbl d c;
      c
  in
  fold_rows cell;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* exploration/exploitation balance of the chosen child, per depth *)
let balance_of events =
  by_depth (fun cell ->
      List.iter
        (fun env ->
          match env.Event.event with
          | Event.Ucb_decision
              { depth; chosen; plus_exploit; plus_explore; minus_exploit;
                minus_explore; _ } ->
            let exploit, explore, rejected =
              if chosen = "+" then (plus_exploit, plus_explore, minus_exploit)
              else (minus_exploit, minus_explore, plus_exploit)
            in
            let sum_x, sum_e, n, flips = cell depth in
            if Float.is_finite exploit && Float.is_finite explore then begin
              sum_x := !sum_x +. exploit;
              sum_e := !sum_e +. explore;
              incr n
            end;
            (* a flip: exploration overrode pure exploitation — the
               chosen child's mean reward was the worse of the two *)
            if exploit < rejected then incr flips
          | _ -> ())
        events)
  |> List.map (fun (depth, (sum_x, sum_e, n, flips)) ->
         let nf = float_of_int (max 1 !n) in
         { depth;
           decisions = !n;
           mean_exploit = !sum_x /. nf;
           mean_explore = !sum_e /. nf;
           flips = !flips })

(* reward-prediction error: a node's evaluation-time reward predicts the
   best reward its subtree will surface; compare against the max of the
   children's evaluation-time rewards (pure Def. 1 data — needs no
   introspection events). *)
let reward_errors tree =
  by_depth (fun cell ->
      List.iter
        (fun n ->
          match n.Tree.children with
          | [] -> ()
          | children ->
            let actual =
              List.fold_left
                (fun acc c -> Float.max acc c.Tree.reward)
                Float.neg_infinity children
            in
            if Float.is_finite n.Tree.reward && Float.is_finite actual then begin
              let sum_abs, sum_err, n_ref, _ = cell n.Tree.depth in
              let err = actual -. n.Tree.reward in
              sum_abs := !sum_abs +. Float.abs err;
              sum_err := !sum_err +. err;
              incr n_ref
            end)
        (tree_nodes tree))
  |> List.filter_map (fun (depth, (sum_abs, sum_err, n, _)) ->
         if !n = 0 then None
         else
           let nf = float_of_int !n in
           Some
             { depth;
               pairs = !n;
               mean_abs_err = !sum_abs /. nf;
               bias = !sum_err /. nf })

let branch_stats events =
  let n = ref 0 and margins = ref 0.0 and with_margin = ref 0 in
  List.iter
    (fun env ->
      match env.Event.event with
      | Event.Branch_decision { score; runner_up; runner_up_score; _ } ->
        incr n;
        if runner_up >= 0 && Float.is_finite score
           && Float.is_finite runner_up_score
        then begin
          margins := !margins +. (score -. runner_up_score);
          incr with_margin
        end
      | _ -> ())
    events;
  ( !n,
    if !with_margin > 0 then !margins /. float_of_int !with_margin
    else Float.nan )

(* --- policy divergence vs a second trace --- *)

(* Visit sequence: gamma strings when the engine records them
   (node_evaluated), else pop depths — enough to tell when two runs of
   the same instance stopped exploring the same region. *)
let visits events =
  let gammas =
    List.filter_map
      (fun env ->
        match env.Event.event with
        | Event.Node_evaluated { gamma; _ } -> Some gamma
        | _ -> None)
      events
  in
  if gammas <> [] then gammas
  else
    List.filter_map
      (fun env ->
        match env.Event.event with
        | Event.Frontier_pop { depth; _ } -> Some (string_of_int depth)
        | _ -> None)
      events

let diverge a b =
  let va = visits a and vb = visits b in
  let rec prefix i = function
    | x :: xs, y :: ys when String.equal x y -> prefix (i + 1) (xs, ys)
    | rest -> (i, rest)
  in
  let common, rest = prefix 0 (va, vb) in
  let first_divergence =
    match rest with _ :: _, _ :: _ -> Some common | _ -> None
  in
  let set l =
    let t = Hashtbl.create 64 in
    List.iter (fun x -> Hashtbl.replace t x ()) l;
    t
  in
  let sa = set va and sb = set vb in
  let inter =
    Hashtbl.fold (fun k () acc -> if Hashtbl.mem sb k then acc + 1 else acc) sa 0
  in
  let union = Hashtbl.length sa + Hashtbl.length sb - inter in
  { common_prefix = common;
    first_divergence;
    jaccard =
      (if union > 0 then float_of_int inter /. float_of_int union else 1.0);
    only_a = Hashtbl.length sa - inter;
    only_b = Hashtbl.length sb - inter }

let of_events ?vs events =
  let summary = Summary.of_events events in
  let tree = Tree.build events in
  let wasted, wasted_frac, open_frac =
    wasted_work ~verdict:summary.Summary.verdict tree
  in
  let branch_decisions, branch_margin = branch_stats events in
  { engine = summary.Summary.engine;
    verdict = summary.Summary.verdict;
    nodes = tree.Tree.shape.Tree.nodes;
    wasted;
    wasted_frac;
    open_frac;
    balance = balance_of events;
    reward_err = reward_errors tree;
    branch_decisions;
    branch_margin;
    divergence = Option.map (diverge events) vs }

(* --- rendering --- *)

let fpct v = if Float.is_nan v then "n/a" else Printf.sprintf "%.1f%%" (100.0 *. v)
let ffloat v = if Float.is_nan v then "n/a" else Printf.sprintf "%.4f" v

let to_string e =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "search-quality report  engine=%s verdict=%s\n" e.engine
       (Option.value ~default:"open" e.verdict));
  Buffer.add_string buf
    (Printf.sprintf "  nodes evaluated      %d\n" e.nodes);
  Buffer.add_string buf
    (Printf.sprintf "  wasted work          %s (%d nodes off the verdict path)\n"
       (fpct e.wasted_frac) e.wasted);
  Buffer.add_string buf
    (Printf.sprintf "  open-subtree share   %s\n" (fpct e.open_frac));
  Buffer.add_string buf
    (Printf.sprintf "  branch decisions     %d (mean winner margin %s)\n"
       e.branch_decisions (ffloat e.branch_margin));
  if e.balance <> [] then begin
    Buffer.add_string buf
      "  exploration/exploitation balance per depth (chosen child):\n";
    Buffer.add_string buf
      (Printf.sprintf "    %5s %9s %12s %12s %6s\n" "depth" "decisions"
         "mean exploit" "mean explore" "flips");
    List.iter
      (fun (b : depth_balance) ->
        Buffer.add_string buf
          (Printf.sprintf "    %5d %9d %12s %12s %6d\n" b.depth b.decisions
             (ffloat b.mean_exploit) (ffloat b.mean_explore) b.flips))
      e.balance
  end;
  if e.reward_err <> [] then begin
    Buffer.add_string buf "  reward-prediction error per depth:\n";
    Buffer.add_string buf
      (Printf.sprintf "    %5s %7s %12s %12s\n" "depth" "pairs" "mean |err|"
         "bias");
    List.iter
      (fun (r : reward_error) ->
        Buffer.add_string buf
          (Printf.sprintf "    %5d %7d %12s %12s\n" r.depth r.pairs
             (ffloat r.mean_abs_err) (ffloat r.bias)))
      e.reward_err
  end;
  (match e.divergence with
   | None -> ()
   | Some d ->
     Buffer.add_string buf "  policy divergence vs second trace:\n";
     Buffer.add_string buf
       (Printf.sprintf "    common visit prefix  %d\n" d.common_prefix);
     Buffer.add_string buf
       (Printf.sprintf "    first divergence     %s\n"
          (match d.first_divergence with
           | Some i -> Printf.sprintf "visit #%d" (i + 1)
           | None -> "none (one run is a prefix of the other)"));
     Buffer.add_string buf
       (Printf.sprintf "    visit-set jaccard    %.3f (only here %d, only there %d)\n"
          d.jaccard d.only_a d.only_b));
  Buffer.contents buf
