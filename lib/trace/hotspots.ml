module Event = Abonn_obs.Event

type row = {
  phase : string;
  depth : int;  (** BaB-tree depth; [-1] when the phase carries none *)
  layer : int;  (** warm-start layer ([0] = cold); [-1] = not applicable *)
  calls : int;
  seconds : float;
}

type t = {
  engine : string;
  wall : float;
  overhead : float;  (** wall not attributed to any row *)
  rows : row list;  (** sorted by [seconds], descending *)
}

let of_events events =
  let summary = Summary.of_events events in
  let arr = Array.of_list events in
  let tbl : (string * int * int, int ref * float ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let charge phase depth layer elapsed =
    let calls, secs =
      match Hashtbl.find_opt tbl (phase, depth, layer) with
      | Some c -> c
      | None ->
        let c = (ref 0, ref 0.0) in
        Hashtbl.replace tbl (phase, depth, layer) c;
        c
    in
    incr calls;
    secs := !secs +. elapsed
  in
  (* Span events land at span end, so LP/attack children precede their
     enclosing parent (same absorption contract as {!Phases}).  Keep
     unclaimed LP spans pending; a [bound_computed] whose window covers
     them absorbs them (their time is already inside its [elapsed]); an
     [exact_leaf] flushes the rest as exact-check LP work at the leaf's
     depth. *)
  let pending_lp = ref [] (* (t, elapsed) *) in
  let pending_attacks = ref [] (* (t, elapsed, name) top-level so far *) in
  let wall = ref None and t_first = ref None and t_last = ref 0.0 in
  Array.iteri
    (fun i env ->
      let t = env.Event.t in
      if !t_first = None then t_first := Some t;
      t_last := t;
      match env.Event.event with
      | Event.Bound_computed { appver; depth; elapsed; _ } ->
        (* the incremental propagator annotates a warm-started bound
           with an immediately following [bound_reuse]; absence of the
           annotation means a cold full propagation (layer 0) *)
        let layer =
          if i + 1 < Array.length arr then
            match arr.(i + 1).Event.event with
            | Event.Bound_reuse { appver = a; depth = d; from_layer; _ }
              when String.equal a appver && d = depth -> from_layer
            | _ -> 0
          else 0
        in
        charge ("appver." ^ appver) depth layer elapsed;
        let start = t -. elapsed in
        pending_lp :=
          List.filter (fun (lt, _) -> not (lt >= start && lt <= t)) !pending_lp
      | Event.Lp_solved { elapsed; _ } ->
        pending_lp := (t, elapsed) :: !pending_lp
      | Event.Exact_leaf { depth; _ } ->
        List.iter (fun (_, d) -> charge "lp.exact" depth (-1) d) !pending_lp;
        pending_lp := []
      | Event.Attack_tried { attack; elapsed; _ } ->
        let start = t -. elapsed in
        let top =
          List.filter
            (fun (at, _, _) -> not (at >= start && at <= t))
            !pending_attacks
        in
        pending_attacks := (t, elapsed, attack) :: top
      | Event.Verdict_reached { elapsed; _ } -> wall := Some elapsed
      | Event.Run_finished { wall = w; _ } ->
        if !wall = None then wall := Some w
      | _ -> ())
    arr;
  List.iter (fun (_, d) -> charge "lp.exact" (-1) (-1) d) !pending_lp;
  List.iter
    (fun (_, d, name) -> charge ("attack." ^ name) (-1) (-1) d)
    !pending_attacks;
  let wall =
    match !wall with
    | Some w -> w
    | None -> !t_last -. Option.value ~default:!t_last !t_first
  in
  let rows =
    Hashtbl.fold
      (fun (phase, depth, layer) (calls, secs) acc ->
        { phase; depth; layer; calls = !calls; seconds = !secs } :: acc)
      tbl []
    |> List.sort (fun a b ->
           match compare b.seconds a.seconds with
           | 0 -> compare (a.phase, a.depth, a.layer) (b.phase, b.depth, b.layer)
           | c -> c)
  in
  let attributed = List.fold_left (fun acc r -> acc +. r.seconds) 0.0 rows in
  { engine = summary.Summary.engine;
    wall;
    overhead = Float.max 0.0 (wall -. attributed);
    rows }

let to_string ?(limit = 30) h =
  let buf = Buffer.create 1024 in
  let pct s = if h.wall > 0.0 then 100.0 *. s /. h.wall else 0.0 in
  Buffer.add_string buf
    (Printf.sprintf "hotspots  engine=%s wall=%.6f s (%d rows)\n" h.engine
       h.wall (List.length h.rows));
  Buffer.add_string buf
    (Printf.sprintf "  %4s %-24s %6s %6s %8s %12s %7s %7s\n" "rank" "phase"
       "depth" "layer" "calls" "seconds" "wall" "cum");
  let cum = ref 0.0 in
  List.iteri
    (fun i r ->
      if i < limit then begin
        cum := !cum +. r.seconds;
        let cell v = if v >= 0 then string_of_int v else "-" in
        Buffer.add_string buf
          (Printf.sprintf "  %4d %-24s %6s %6s %8d %12.6f %6.1f%% %6.1f%%\n"
             (i + 1) r.phase (cell r.depth) (cell r.layer) r.calls r.seconds
             (pct r.seconds) (pct !cum))
      end)
    h.rows;
  if List.length h.rows > limit then
    Buffer.add_string buf
      (Printf.sprintf "  ... %d more rows (raise --limit)\n"
         (List.length h.rows - limit));
  Buffer.add_string buf
    (Printf.sprintf "  %4s %-24s %6s %6s %8s %12.6f %6.1f%%\n" "" "(overhead)"
       "-" "-" "" h.overhead (pct h.overhead));
  Buffer.contents buf

(* Folded-stack output (flamegraph.pl / speedscope / inferno): one line
   per row, semicolon-separated frames, integer sample weight in µs. *)
let to_flame h =
  let buf = Buffer.create 1024 in
  let us s = Stdlib.max 1 (int_of_float (Float.round (s *. 1e6))) in
  List.iter
    (fun r ->
      if r.seconds > 0.0 || r.calls > 0 then begin
        Buffer.add_string buf h.engine;
        Buffer.add_char buf ';';
        Buffer.add_string buf r.phase;
        if r.depth >= 0 then
          Buffer.add_string buf (Printf.sprintf ";depth_%d" r.depth);
        if r.layer >= 0 then
          Buffer.add_string buf (Printf.sprintf ";layer_%d" r.layer);
        Buffer.add_string buf (Printf.sprintf " %d\n" (us r.seconds))
      end)
    h.rows;
  if h.overhead > 0.0 then
    Buffer.add_string buf
      (Printf.sprintf "%s;overhead %d\n" h.engine (us h.overhead));
  Buffer.contents buf
