(** Streaming reader over JSONL traces (docs/TRACE_SCHEMA.md).

    Real trace files get truncated, concatenated and hand-edited, so the
    reader never aborts on a bad line: it skips it, records an {!issue},
    and keeps going.  Envelope invariants that the writer guarantees
    (gap-free [seq], monotone [t]) are checked on the way through and
    violations are reported as issues too — a quick integrity check for
    any trace of unknown provenance. *)

type issue =
  | Malformed of { line : int; msg : string }
      (** The line failed to parse ([Event.of_json] error). *)
  | Seq_gap of { line : int; expected : int; got : int }
      (** [seq] is not the predecessor's successor (1 for the first
          event).  Signals truncation or file concatenation. *)
  | Time_regression of { line : int; prev : float; got : float }
      (** [t] decreased — impossible for a trace written by
          [Abonn_obs.Obs] (monotonised clock). *)

val issue_line : issue -> int
(** 1-based line number the issue was found at. *)

val issue_to_string : issue -> string

val fold_channel :
  in_channel -> init:'a -> f:('a -> Abonn_obs.Event.envelope -> 'a) -> 'a * issue list
(** Consume every line of the channel.  [f] sees well-formed envelopes
    in file order; blank lines are skipped silently.  Issues come back
    in line order. *)

val fold_file :
  string -> init:'a -> f:('a -> Abonn_obs.Event.envelope -> 'a) -> 'a * issue list
(** [fold_channel] over [open_in path]; the channel is closed even if
    [f] raises.  Raises [Sys_error] if the file cannot be opened. *)

val read_file : string -> Abonn_obs.Event.envelope list * issue list
(** Whole trace in memory, in file order. *)

(** {1 Follow (tail) mode}

    Incremental reading of a trace that is still being written
    (powers [abonn_trace watch]).  A partially-written line — the
    writer's buffer can cut a record anywhere — is never reported as
    malformed: its bytes are buffered and the line is parsed on a later
    poll, once its terminating newline has arrived.  The seq/t
    integrity checks of {!fold_channel} run across polls. *)

type tail

val tail_open : ?offset:int -> string -> tail
(** Open [path] for tailing, optionally resuming [offset] bytes in
    (e.g. a {!tail_offset} saved from an earlier tail).  Raises
    [Sys_error] if the file cannot be opened. *)

val tail_poll : tail -> f:(Abonn_obs.Event.envelope -> unit) -> issue list
(** Consume every complete line appended since the last poll, calling
    [f] on each well-formed envelope; returns the new issues (line
    order).  Non-blocking in the sense that it stops at end-of-file
    rather than waiting for more data. *)

val tail_poll_lines : tail -> f:(line_no:int -> string -> unit) -> unit
(** Raw-line variant of {!tail_poll} for line-oriented files that are
    not event traces (the run registry among them): delivers every
    complete non-empty line appended since the last poll with its
    1-based line number, with the same partial-line deferral across
    polls, and no envelope parsing or seq/t integrity checks.  Do not
    mix with {!tail_poll} on the same tail: both consume the stream. *)

val tail_offset : tail -> int
(** Bytes consumed so far (including any buffered partial line). *)

val tail_close : tail -> unit
