(* Campaign run registry: one flat JSON line per completed run,
   appended to results/registry.jsonl by the harness, the CLI and the
   bench binaries.  The record is deliberately denormalised — every
   line answers "what ran, on what code, with what outcome and at what
   cost" on its own — so the file can be grepped, diffed across
   branches and joined by commit without any tooling. *)

module Event = Abonn_obs.Event
module Provenance = Abonn_util.Provenance

let schema_version = 3

type record = {
  schema : int;
  ts : string;  (* UTC ISO-8601 append time *)
  commit : string;
  engine : string;
  model : string;
  instance : string;
  seed : int;
  domains : int;
  source_format : string;
  verdict : string;
  wall : float;
  calls : int;
  nodes : int;
  max_depth : int;
  peak_rss_bytes : int;
}

let make ?ts ?commit ?(peak_rss_bytes = -1) ?(domains = 1)
    ?(source_format = "native") ~engine ~model ~instance ~seed ~verdict ~wall
    ~calls ~nodes ~max_depth () =
  let ts = match ts with Some t -> t | None -> Provenance.iso_now () in
  let commit = match commit with Some c -> c | None -> Provenance.git_commit () in
  let peak_rss_bytes =
    if peak_rss_bytes >= 0 then peak_rss_bytes
    else Abonn_obs.Resource.peak_rss ()
  in
  { schema = schema_version; ts; commit; engine; model; instance; seed;
    domains; source_format; verdict; wall; calls; nodes; max_depth;
    peak_rss_bytes }

let to_json r =
  Printf.sprintf
    "{\"schema\":%d,\"ts\":%s,\"commit\":%s,\"engine\":%s,\"model\":%s,\
     \"instance\":%s,\"seed\":%d,\"domains\":%d,\"source_format\":%s,\
     \"verdict\":%s,\"wall\":%.6f,\
     \"calls\":%d,\"nodes\":%d,\"max_depth\":%d,\"peak_rss_bytes\":%d}"
    r.schema (Event.json_string r.ts) (Event.json_string r.commit)
    (Event.json_string r.engine) (Event.json_string r.model)
    (Event.json_string r.instance) r.seed r.domains
    (Event.json_string r.source_format)
    (Event.json_string r.verdict) r.wall r.calls r.nodes r.max_depth
    r.peak_rss_bytes

let of_json line =
  match Event.parse_fields line with
  | Error msg -> Error msg
  | Ok fields ->
    let find name = List.assoc_opt name fields in
    let str name = Option.bind (find name) Event.field_string in
    let int name = Option.bind (find name) Event.field_int in
    let flt name = Option.bind (find name) Event.field_float in
    (match
       (int "schema", str "ts", str "commit", str "engine", str "model",
        str "instance", int "seed", str "verdict", flt "wall", int "calls",
        int "nodes", int "max_depth", int "peak_rss_bytes")
     with
     | ( Some schema, Some ts, Some commit, Some engine, Some model,
         Some instance, Some seed, Some verdict, Some wall, Some calls,
         Some nodes, Some max_depth, Some peak_rss_bytes ) ->
       (* [domains] arrived with schema 2; schema-1 lines predate
          parallel bookkeeping and were all sequential runs.
          [source_format] arrived with schema 3; older lines were all
          native-format problems. *)
       let domains = Option.value ~default:1 (int "domains") in
       let source_format = Option.value ~default:"native" (str "source_format") in
       Ok { schema; ts; commit; engine; model; instance; seed; domains;
            source_format; verdict; wall; calls; nodes; max_depth;
            peak_rss_bytes }
     | _ -> Error "registry record: missing or mistyped field")

let default_path = Filename.concat "results" "registry.jsonl"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let append ?(path = default_path) r =
  mkdir_p (Filename.dirname path);
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  output_string oc (to_json r);
  output_char oc '\n'

let load ?(path = default_path) () =
  if not (Sys.file_exists path) then ([], [])
  else begin
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let records = ref [] and errors = ref [] in
    let rec go line_no =
      match input_line ic with
      | exception End_of_file -> ()
      | "" -> go (line_no + 1)
      | line ->
        (match of_json line with
         | Ok r -> records := r :: !records
         | Error msg -> errors := (line_no, msg) :: !errors);
        go (line_no + 1)
    in
    go 1;
    (List.rev !records, List.rev !errors)
  end
