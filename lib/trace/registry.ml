(* Campaign run registry: one flat JSON line per completed run,
   appended to results/registry.jsonl by the harness, the CLI and the
   bench binaries.  The record is deliberately denormalised — every
   line answers "what ran, on what code, with what outcome and at what
   cost" on its own — so the file can be grepped, diffed across
   branches and joined by commit without any tooling. *)

module Event = Abonn_obs.Event
module Provenance = Abonn_util.Provenance

let schema_version = 3

type record = {
  schema : int;
  ts : string;  (* UTC ISO-8601 append time *)
  commit : string;
  engine : string;
  model : string;
  instance : string;
  seed : int;
  domains : int;
  source_format : string;
  verdict : string;
  wall : float;
  calls : int;
  nodes : int;
  max_depth : int;
  peak_rss_bytes : int;
}

let make ?ts ?commit ?(peak_rss_bytes = -1) ?(domains = 1)
    ?(source_format = "native") ~engine ~model ~instance ~seed ~verdict ~wall
    ~calls ~nodes ~max_depth () =
  let ts = match ts with Some t -> t | None -> Provenance.iso_now () in
  let commit = match commit with Some c -> c | None -> Provenance.git_commit () in
  let peak_rss_bytes =
    if peak_rss_bytes >= 0 then peak_rss_bytes
    else Abonn_obs.Resource.peak_rss ()
  in
  { schema = schema_version; ts; commit; engine; model; instance; seed;
    domains; source_format; verdict; wall; calls; nodes; max_depth;
    peak_rss_bytes }

let to_json r =
  Printf.sprintf
    "{\"schema\":%d,\"ts\":%s,\"commit\":%s,\"engine\":%s,\"model\":%s,\
     \"instance\":%s,\"seed\":%d,\"domains\":%d,\"source_format\":%s,\
     \"verdict\":%s,\"wall\":%.6f,\
     \"calls\":%d,\"nodes\":%d,\"max_depth\":%d,\"peak_rss_bytes\":%d}"
    r.schema (Event.json_string r.ts) (Event.json_string r.commit)
    (Event.json_string r.engine) (Event.json_string r.model)
    (Event.json_string r.instance) r.seed r.domains
    (Event.json_string r.source_format)
    (Event.json_string r.verdict) r.wall r.calls r.nodes r.max_depth
    r.peak_rss_bytes

let of_json line =
  match Event.parse_fields line with
  | Error msg -> Error msg
  | Ok fields ->
    let find name = List.assoc_opt name fields in
    let str name = Option.bind (find name) Event.field_string in
    let int name = Option.bind (find name) Event.field_int in
    let flt name = Option.bind (find name) Event.field_float in
    (match
       (int "schema", str "ts", str "commit", str "engine", str "model",
        str "instance", int "seed", str "verdict", flt "wall", int "calls",
        int "nodes", int "max_depth", int "peak_rss_bytes")
     with
     | ( Some schema, Some ts, Some commit, Some engine, Some model,
         Some instance, Some seed, Some verdict, Some wall, Some calls,
         Some nodes, Some max_depth, Some peak_rss_bytes ) ->
       (* [domains] arrived with schema 2; schema-1 lines predate
          parallel bookkeeping and were all sequential runs.
          [source_format] arrived with schema 3; older lines were all
          native-format problems. *)
       let domains = Option.value ~default:1 (int "domains") in
       let source_format = Option.value ~default:"native" (str "source_format") in
       Ok { schema; ts; commit; engine; model; instance; seed; domains;
            source_format; verdict; wall; calls; nodes; max_depth;
            peak_rss_bytes }
     | _ -> Error "registry record: missing or mistyped field")

let default_path = Filename.concat "results" "registry.jsonl"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let append ?(path = default_path) r =
  mkdir_p (Filename.dirname path);
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  output_string oc (to_json r);
  output_char oc '\n'

let load ?(path = default_path) () =
  if not (Sys.file_exists path) then ([], [])
  else begin
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let records = ref [] and errors = ref [] in
    let rec go line_no =
      match input_line ic with
      | exception End_of_file -> ()
      | "" -> go (line_no + 1)
      | line ->
        (match of_json line with
         | Ok r -> records := r :: !records
         | Error msg -> errors := (line_no, msg) :: !errors);
        go (line_no + 1)
    in
    go 1;
    (List.rev !records, List.rev !errors)
  end

(* --- lint / gc ----------------------------------------------------

   The registry accretes lines from many writers over many commits, so
   it degrades in predictable ways: truncated appends (malformed JSON),
   double appends from retried CI jobs (duplicate records), and records
   written outside a git checkout (commit "unknown" / "") that parse
   fine but cannot be joined by commit.  [lint] makes one pass over any
   mix of schema-1/2/3 files and reports all three classes; [gc]
   rewrites a file keeping the first occurrence of every distinct
   record, preserving original line bytes (no silent schema upgrade). *)

type lint_issue =
  | Lint_malformed of { file : string; line : int; msg : string }
  | Lint_duplicate of { file : string; line : int; first_file : string; first_line : int }
  | Lint_unstamped of { file : string; line : int; field : string }

let lint_issue_pos = function
  | Lint_malformed { file; line; _ }
  | Lint_duplicate { file; line; _ }
  | Lint_unstamped { file; line; _ } -> (file, line)

let lint_issue_to_string = function
  | Lint_malformed { file; line; msg } ->
    Printf.sprintf "%s:%d: malformed record: %s" file line msg
  | Lint_duplicate { file; line; first_file; first_line } ->
    Printf.sprintf "%s:%d: duplicate of %s:%d" file line first_file first_line
  | Lint_unstamped { file; line; field } ->
    Printf.sprintf "%s:%d: record without usable %s (cannot be joined by commit)"
      file line field

type lint_report = {
  files : string list;
  lines : int;        (* non-empty lines seen *)
  parsed : int;       (* lines that parsed as records *)
  distinct : int;     (* parsed minus duplicates *)
  by_schema : (int * int) list;  (* schema version -> record count *)
  lint_issues : lint_issue list; (* file order, then line order *)
}

(* a record is unstamped when it parses but its provenance fields carry
   no usable value — "unknown" is what Provenance.git_commit degrades to
   outside a checkout *)
let unstamped_field r =
  if r.commit = "" || r.commit = "unknown" then Some "commit"
  else if r.ts = "" then Some "ts"
  else None

let fold_lines path ~init ~f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let rec go acc line_no =
    match input_line ic with
    | exception End_of_file -> acc
    | "" -> go acc (line_no + 1)
    | line -> go (f acc line_no line) (line_no + 1)
  in
  go init 1

let lint paths =
  let issues = ref [] and by_schema = Hashtbl.create 4 in
  let seen : (record, string * int) Hashtbl.t = Hashtbl.create 256 in
  let lines = ref 0 and parsed = ref 0 in
  List.iter
    (fun file ->
      ignore
        (fold_lines file ~init:() ~f:(fun () line_no line ->
             incr lines;
             match of_json line with
             | Error msg ->
               issues := Lint_malformed { file; line = line_no; msg } :: !issues
             | Ok r ->
               incr parsed;
               Hashtbl.replace by_schema r.schema
                 (1 + Option.value ~default:0 (Hashtbl.find_opt by_schema r.schema));
               (match unstamped_field r with
                | Some field ->
                  issues := Lint_unstamped { file; line = line_no; field } :: !issues
                | None -> ());
               (match Hashtbl.find_opt seen r with
                | Some (first_file, first_line) ->
                  issues :=
                    Lint_duplicate { file; line = line_no; first_file; first_line }
                    :: !issues
                | None -> Hashtbl.replace seen r (file, line_no)))))
    paths;
  { files = paths;
    lines = !lines;
    parsed = !parsed;
    distinct = Hashtbl.length seen;
    by_schema =
      Hashtbl.fold (fun s c acc -> (s, c) :: acc) by_schema []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    lint_issues = List.rev !issues }

let lint_report_to_string r =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "registry lint: %s" (String.concat ", " r.files);
  line "  %d line(s), %d parsed, %d distinct record(s)" r.lines r.parsed r.distinct;
  List.iter (fun (s, c) -> line "  schema %d: %d record(s)" s c) r.by_schema;
  List.iter (fun i -> line "  %s" (lint_issue_to_string i)) r.lint_issues;
  line "lint: %s"
    (if r.lint_issues = [] then "OK"
     else Printf.sprintf "%d issue(s)" (List.length r.lint_issues));
  Buffer.contents buf

(* Dedup-compact in place (or to [out]): keep the first occurrence of
   every distinct record with its original bytes, drop malformed lines
   and later duplicates.  Returns (kept, dropped). *)
let gc ?out path =
  let seen : (record, unit) Hashtbl.t = Hashtbl.create 256 in
  let kept = ref [] and dropped = ref 0 in
  ignore
    (fold_lines path ~init:() ~f:(fun () _line_no line ->
         match of_json line with
         | Error _ -> incr dropped
         | Ok r ->
           if Hashtbl.mem seen r then incr dropped
           else begin
             Hashtbl.replace seen r ();
             kept := line :: !kept
           end));
  let target = Option.value ~default:path out in
  let tmp = target ^ ".tmp" in
  mkdir_p (Filename.dirname target);
  let oc = open_out tmp in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        (List.rev !kept));
  Sys.rename tmp target;
  (List.length !kept, !dropped)
