(** Campaign run registry: an append-only JSONL log of completed runs.

    Every run of the harness, the CLI (with [--registry]) and the bench
    binaries appends one flat, self-contained JSON record to
    {!default_path} — what ran (engine, model, instance, seed), on what
    code ([commit]), with what outcome (verdict) and at what cost (wall
    time, AppVer calls, nodes, peak RSS).  The file is the input to
    cross-commit performance comparisons and the CI artifact uploaded
    by the differential-suite job. *)

type record = {
  schema : int;  (** record layout version; currently {!schema_version} *)
  ts : string;  (** UTC ISO-8601 append time *)
  commit : string;  (** short git hash, or ["unknown"] *)
  engine : string;
  model : string;
  instance : string;
  seed : int;
  domains : int;
      (** worker domains the run used; [1] = sequential (and the implied
          value for schema-1 records, which predate the field) *)
  source_format : string;
      (** where the problem came from: ["native"] (zoo model or abonn
          problem file), ["onnx+vnnlib"] (--onnx/--vnnlib front-end) or
          ["synthetic"] (generated in-process, e.g. bench MLPs).  The
          implied value for schema-1/2 records, which predate the field,
          is ["native"]. *)
  verdict : string;
  wall : float;  (** seconds *)
  calls : int;  (** AppVer bound computations *)
  nodes : int;  (** BaB nodes created *)
  max_depth : int;
  peak_rss_bytes : int;  (** process peak RSS at append time *)
}

val schema_version : int

val make :
  ?ts:string ->
  ?commit:string ->
  ?peak_rss_bytes:int ->
  ?domains:int ->
  ?source_format:string ->
  engine:string ->
  model:string ->
  instance:string ->
  seed:int ->
  verdict:string ->
  wall:float ->
  calls:int ->
  nodes:int ->
  max_depth:int ->
  unit ->
  record
(** Build a record; [ts], [commit] and [peak_rss_bytes] default to the
    current time, {!Abonn_util.Provenance.git_commit} and
    {!Abonn_obs.Resource.peak_rss} respectively; [domains] defaults to
    [1] (sequential) and [source_format] to ["native"]. *)

val to_json : record -> string
(** One flat JSON object, no trailing newline. *)

val of_json : string -> (record, string) result
(** Parses current (schema 3) and legacy lines: schema-1 lines get
    [domains = 1], schema-1/2 lines get [source_format = "native"]. *)

val default_path : string
(** ["results/registry.jsonl"], relative to the working directory. *)

val append : ?path:string -> record -> unit
(** Append one record (creating the directory and file as needed). *)

val load : ?path:string -> unit -> record list * (int * string) list
(** All parseable records in file order, plus [(line, message)] pairs
    for lines that failed to parse.  A missing file is empty, not an
    error. *)

val fold_lines : string -> init:'a -> f:('a -> int -> string -> 'a) -> 'a
(** Fold [f acc line_no line] over every non-empty line of the file
    (1-based line numbers, empty lines counted but skipped).  Unlike
    {!load}, a missing file raises [Sys_error] — lint and campaign
    ingestion must distinguish "nothing ran" from "wrong path". *)

(** {1 Lint / compaction}

    The registry accretes lines from many writers over many commits:
    truncated appends (malformed JSON), double appends from retried CI
    jobs (duplicates), and records stamped outside a git checkout
    (commit ["unknown"]) that parse fine but cannot be joined by
    commit.  {!lint} reports all three classes in one pass over any mix
    of schema-1/2/3 files; {!gc} dedup-compacts a file in place. *)

type lint_issue =
  | Lint_malformed of { file : string; line : int; msg : string }
  | Lint_duplicate of {
      file : string;
      line : int;
      first_file : string;
      first_line : int;
    }  (** An identical record already appeared at [first_file:first_line]. *)
  | Lint_unstamped of { file : string; line : int; field : string }
      (** The record parses but its [commit] (empty / ["unknown"]) or
          [ts] (empty) is unusable for cross-commit joins. *)

val lint_issue_pos : lint_issue -> string * int
(** [(file, 1-based line)] the issue was found at. *)

val lint_issue_to_string : lint_issue -> string

type lint_report = {
  files : string list;
  lines : int;  (** non-empty lines seen *)
  parsed : int;  (** lines that parsed as records *)
  distinct : int;  (** parsed minus duplicates *)
  by_schema : (int * int) list;  (** schema version -> record count *)
  lint_issues : lint_issue list;  (** file order, then line order *)
}

val lint : string list -> lint_report
(** One pass over the given files.  Raises [Sys_error] on a missing
    file. *)

val lint_report_to_string : lint_report -> string

val gc : ?out:string -> string -> int * int
(** Rewrite [path] (or [out] when given) keeping the first occurrence
    of every distinct record with its original bytes — no silent schema
    upgrade — and dropping malformed lines and later duplicates.  The
    write goes through a [.tmp] sibling and a rename.  Returns
    [(kept, dropped)].  Raises [Sys_error] on a missing file. *)
