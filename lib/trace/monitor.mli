(** Live-run aggregation and terminal dashboard behind
    [abonn_trace watch].

    Feed the envelopes of a (possibly still growing) trace in order —
    typically from {!Reader.tail_poll} — and {!render} a snapshot at any
    point.  Unlike {!Summary} this is approximate by design: it keeps
    running totals, a depth histogram, a recent-window node rate, the
    phase split so far and the resource (memory) curve from
    [resource_sample] events. *)

type t

val create : unit -> t

val feed : t -> Abonn_obs.Event.envelope -> unit

val finished : t -> bool
(** A terminating event arrived: [run_finished], or [verdict_reached]
    outside a harness bracket. *)

val nodes_per_sec : t -> float
(** Node throughput over the last ~5 seconds of trace time ([0.] until
    two node events are in the window). *)

val render : ?width:int -> ?calls_budget:int -> t -> string
(** Multi-line dashboard: totals, node rate, best reward, phase split,
    memory curve (sparkline over the [resource_sample] RSS values), and
    a depth histogram.  With [calls_budget] (the run's [--calls]) an
    ETA line extrapolates from the current call rate. *)
