(** Search-quality analytics over one run's trace.

    Answers the questions the ABONN paper's adaptive-exploration story
    raises but a {!Summary} table cannot: how much of the tree was
    wasted work, where in the tree the UCB policy explored vs
    exploited, how well a node's Def.&nbsp;1 reward predicted its
    subtree, and — given a second trace of the same instance — where
    two policies stopped making the same decisions.

    Tree-derived metrics (wasted work, reward-prediction error) need
    only the ordinary [node_evaluated] stream; the balance table is fed
    by [ucb_decision] introspection events and is empty for traces
    recorded without [--introspect]. *)

type depth_balance = {
  depth : int;
  decisions : int;  (** [ucb_decision] events with finite terms at this depth *)
  mean_exploit : float;  (** mean reward term of the chosen child *)
  mean_explore : float;  (** mean UCB exploration bonus of the chosen child *)
  flips : int;
      (** decisions where exploration overrode exploitation: the chosen
          child had the {e worse} reward of the two *)
}

type reward_error = {
  depth : int;
  pairs : int;  (** interior nodes with a finite reward and finite best child *)
  mean_abs_err : float;  (** mean |best child reward - node reward| *)
  bias : float;  (** signed mean; [> 0] = rewards underestimate subtrees *)
}

type divergence = {
  common_prefix : int;  (** identical leading visits in both traces *)
  first_divergence : int option;
      (** 0-based index of the first differing visit; [None] when one
          visit sequence is a prefix of the other *)
  jaccard : float;  (** visit-set overlap, 1.0 = same nodes visited *)
  only_a : int;  (** nodes visited only by the first trace *)
  only_b : int;  (** nodes visited only by the second trace *)
}

type t = {
  engine : string;
  verdict : string option;
  nodes : int;  (** reconstructed tree size ({!Tree.shape}) *)
  wasted : int;
      (** falsified runs: evaluated nodes off every root-to-counterexample
          path; verified runs: [0] (every subtree had to be proved) *)
  wasted_frac : float;  (** [wasted / nodes]; [nan] when unattributable *)
  open_frac : float;  (** share of leaves still open when the run stopped *)
  balance : depth_balance list;  (** per depth, ascending; [[]] without introspection *)
  reward_err : reward_error list;  (** per depth, ascending *)
  branch_decisions : int;  (** [branch_decision] events seen *)
  branch_margin : float;
      (** mean winner-vs-runner-up score margin; [nan] without data *)
  divergence : divergence option;  (** only with [?vs] *)
}

val of_events :
  ?vs:Abonn_obs.Event.envelope list -> Abonn_obs.Event.envelope list -> t
(** Analyse one run's segment.  [?vs] is a second run's segment to
    compare visit order against ([abonn_trace explain --vs]). *)

val to_string : t -> string
(** Human-readable report. *)
