(* Chrome trace-event / Perfetto exporter: map the ABONN envelope +
   span events (docs/TRACE_SCHEMA.md section 1-2) onto the trace-event
   JSON array format so any trace opens in chrome://tracing, Perfetto UI
   or speedscope without bespoke tooling.

   Mapping:
   - the envelope [domain] tag becomes the thread id, so each OCaml
     domain renders as its own named track ("main" for untagged
     sequential events, "domain N" otherwise);
   - span events that carry [elapsed] (bound_computed, lp_solved,
     lp_warm, attack_tried, verdict_reached, run_finished) become
     complete ("X") events whose ts is rewound by their duration —
     exactly the span-window convention [Phases] uses;
   - point events (selections, evaluations, frontier pops, decisions,
     bound_reuse, domain_summary) become thread-scoped instants ("i");
   - resource_sample becomes counter ("C") tracks for RSS/heap bytes,
     node totals and throughput.

   Timestamps are microseconds as the format requires.  The output is
   deterministic: event order follows the input, floats print with
   fixed formats, and metadata rows are sorted. *)

module Event = Abonn_obs.Event

let us t = t *. 1e6

(* trace-event "args" payloads reuse the envelope's own JSON encoders *)
let jstr = Event.json_string

let fnum f =
  if Float.is_nan f then "\"nan\""
  else if f = Float.infinity then "\"inf\""
  else if f = Float.neg_infinity then "\"-inf\""
  else Printf.sprintf "%.17g" f

type row = {
  ph : char;
  name : string;
  cat : string;
  ts : float;    (* microseconds *)
  dur : float;   (* microseconds; meaningful for 'X' rows only *)
  tid : int;
  args : (string * string) list;  (* key -> pre-encoded JSON value *)
}

let tid_of env = match env.Event.domain with Some d -> d | None -> 0

let rows_of_event env =
  let t = env.Event.t in
  let tid = tid_of env in
  let complete ?(cat = "span") name elapsed args =
    [ { ph = 'X';
        name;
        cat;
        ts = us (Float.max 0.0 (t -. elapsed));
        dur = us (Float.max 0.0 elapsed);
        tid;
        args } ]
  in
  let instant ?(cat = "point") name args =
    [ { ph = 'i'; name; cat; ts = us t; dur = 0.0; tid; args } ]
  in
  let counter name args =
    [ { ph = 'C'; name; cat = "resource"; ts = us t; dur = 0.0; tid; args } ]
  in
  match env.Event.event with
  | Event.Run_started { engine; instance } ->
    instant ~cat:"run" "run_started"
      [ ("engine", jstr engine); ("instance", jstr instance) ]
  | Event.Run_finished { engine; instance; verdict; calls; nodes; max_depth; wall } ->
    complete ~cat:"run" ("run:" ^ engine) wall
      [ ("instance", jstr instance); ("verdict", jstr verdict);
        ("calls", string_of_int calls); ("nodes", string_of_int nodes);
        ("max_depth", string_of_int max_depth) ]
  | Event.Verdict_reached { engine; verdict; elapsed } ->
    complete ~cat:"run" ("run:" ^ engine) elapsed [ ("verdict", jstr verdict) ]
  | Event.Bound_computed { appver; depth; phat; elapsed } ->
    complete ("appver:" ^ appver) elapsed
      [ ("depth", string_of_int depth); ("phat", fnum phat) ]
  | Event.Lp_solved { vars; rows; status; elapsed } ->
    complete "lp" elapsed
      [ ("vars", string_of_int vars); ("rows", string_of_int rows);
        ("status", jstr status) ]
  | Event.Lp_warm { depth; rows; hit; pivots; fallback; elapsed } ->
    complete "lp_warm" elapsed
      [ ("depth", string_of_int depth); ("rows", string_of_int rows);
        ("hit", if hit then "true" else "false");
        ("pivots", string_of_int pivots); ("fallback", jstr fallback) ]
  | Event.Attack_tried { attack; success; elapsed } ->
    complete ("attack:" ^ attack) elapsed
      [ ("success", if success then "true" else "false") ]
  | Event.Node_selected { engine; depth; ucb } ->
    instant "node_selected"
      [ ("engine", jstr engine); ("depth", string_of_int depth); ("ucb", fnum ucb) ]
  | Event.Node_evaluated { engine; depth; gamma; phat; reward } ->
    instant "node_evaluated"
      [ ("engine", jstr engine); ("depth", string_of_int depth);
        ("gamma", jstr gamma); ("phat", fnum phat); ("reward", fnum reward) ]
  | Event.Backprop { engine; depth; reward; size } ->
    instant "backprop"
      [ ("engine", jstr engine); ("depth", string_of_int depth);
        ("reward", fnum reward); ("size", string_of_int size) ]
  | Event.Frontier_pop { engine; depth; frontier; priority } ->
    instant "frontier_pop"
      [ ("engine", jstr engine); ("depth", string_of_int depth);
        ("frontier", string_of_int frontier); ("priority", fnum priority) ]
  | Event.Exact_leaf { engine; depth; verified } ->
    instant "exact_leaf"
      [ ("engine", jstr engine); ("depth", string_of_int depth);
        ("verified", if verified then "true" else "false") ]
  | Event.Bound_reuse { appver; depth; from_layer; layers_skipped; clamps } ->
    instant ~cat:"cache" "bound_reuse"
      [ ("appver", jstr appver); ("depth", string_of_int depth);
        ("from_layer", string_of_int from_layer);
        ("layers_skipped", string_of_int layers_skipped);
        ("clamps", string_of_int clamps) ]
  | Event.Resource_sample { rss_bytes; heap_bytes; open_nodes; nodes; nps; _ } ->
    counter "memory_bytes"
      [ ("rss", string_of_int rss_bytes); ("heap", string_of_int heap_bytes) ]
    @ counter "nodes"
        [ ("total", string_of_int nodes); ("open", string_of_int open_nodes) ]
    @ counter "nodes_per_sec" [ ("nps", fnum nps) ]
  | Event.Domain_summary { engine; domain; processed; pushed; stolen; idle } ->
    (* describes [domain]'s whole run: pin it to that domain's track *)
    [ { ph = 'i';
        name = "domain_summary";
        cat = "par";
        ts = us t;
        dur = 0.0;
        tid = domain;
        args =
          [ ("engine", jstr engine); ("processed", string_of_int processed);
            ("pushed", string_of_int pushed); ("stolen", string_of_int stolen);
            ("idle", string_of_int idle) ] } ]
  | Event.Ucb_decision { engine; depth; chosen; sample; _ } ->
    instant ~cat:"decision" "ucb_decision"
      [ ("engine", jstr engine); ("depth", string_of_int depth);
        ("chosen", jstr chosen); ("sample", string_of_int sample) ]
  | Event.Branch_decision { engine; depth; kind; choice; candidates; sample; _ } ->
    instant ~cat:"decision" "branch_decision"
      [ ("engine", jstr engine); ("depth", string_of_int depth);
        ("kind", jstr kind); ("choice", string_of_int choice);
        ("candidates", string_of_int candidates); ("sample", string_of_int sample) ]
  | Event.Frontier_decision { engine; depth; frontier; sample; _ } ->
    instant ~cat:"decision" "frontier_decision"
      [ ("engine", jstr engine); ("depth", string_of_int depth);
        ("frontier", string_of_int frontier); ("sample", string_of_int sample) ]

let row_to_json ~pid r =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":%s,\"cat\":%s,\"ph\":\"%c\",\"ts\":%.3f" (jstr r.name)
       (jstr r.cat) r.ph r.ts);
  if r.ph = 'X' then Buffer.add_string buf (Printf.sprintf ",\"dur\":%.3f" r.dur);
  Buffer.add_string buf (Printf.sprintf ",\"pid\":%d,\"tid\":%d" pid r.tid);
  if r.ph = 'i' then Buffer.add_string buf ",\"s\":\"t\"";
  if r.args <> [] then begin
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (jstr k);
        Buffer.add_char buf ':';
        Buffer.add_string buf v)
      r.args;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let metadata_rows ~pid tids =
  let meta name tid args =
    Printf.sprintf
      "{\"name\":%s,\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{%s}}" (jstr name)
      pid tid args
  in
  meta "process_name" 0 "\"name\":\"abonn\""
  :: List.map
       (fun tid ->
         let label = if tid = 0 then "main" else Printf.sprintf "domain %d" tid in
         meta "thread_name" tid (Printf.sprintf "\"name\":%s" (jstr label)))
       tids

let to_string events =
  let pid = 1 in
  let rows = List.concat_map rows_of_event events in
  let tids =
    List.sort_uniq compare (0 :: List.map (fun r -> r.tid) rows)
  in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let all = metadata_rows ~pid tids @ List.map (row_to_json ~pid) rows in
  List.iteri
    (fun i line ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf line)
    all;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf
