(* Live-run aggregation behind [abonn_trace watch]: a fold over the
   event stream (fed incrementally by [Reader.tail_poll]) plus a
   terminal dashboard renderer.  Unlike [Summary], which reconstructs a
   finished run exactly, the monitor keeps only what a live view needs:
   running totals, a depth histogram, a recent-window node rate, the
   phase split so far and the resource (memory) curve. *)

module Event = Abonn_obs.Event
module Table = Abonn_util.Table

type t = {
  mutable engine : string option;
  mutable instance : string option;
  mutable verdict : string option;
  mutable finished : bool;
  mutable harness : bool;  (* inside a run_started..run_finished bracket *)
  mutable events : int;
  mutable calls : int;
  mutable nodes : int;
  mutable max_depth : int;
  mutable frontier : int;
  mutable best : float;
  mutable t_last : float;
  mutable appver_time : float;
  mutable lp_time : float;
  mutable attack_time : float;
  mutable depth_hist : int array;  (* grown on demand *)
  window : (float * int) Queue.t;  (* (t, nodes) for the recent node rate *)
  mutable rss_curve : (float * int) list;  (* (t, rss_bytes), newest first *)
  mutable last_sample : Event.t option;  (* latest Resource_sample payload *)
  mutable domains : int;  (* distinct worker domains seen (0 = sequential) *)
}

let create () =
  { engine = None;
    instance = None;
    verdict = None;
    finished = false;
    harness = false;
    events = 0;
    calls = 0;
    nodes = 0;
    max_depth = 0;
    frontier = 0;
    best = Float.nan;
    t_last = 0.0;
    appver_time = 0.0;
    lp_time = 0.0;
    attack_time = 0.0;
    depth_hist = Array.make 16 0;
    window = Queue.create ();
    rss_curve = [];
    last_sample = None;
    domains = 0 }

let window_seconds = 5.0
let rss_curve_cap = 512

let better m v = if Float.is_nan m.best || v > m.best then m.best <- v

let count_depth m d =
  if d > m.max_depth then m.max_depth <- d;
  if d >= Array.length m.depth_hist then begin
    let grown = Array.make (2 * (d + 1)) 0 in
    Array.blit m.depth_hist 0 grown 0 (Array.length m.depth_hist);
    m.depth_hist <- grown
  end;
  m.depth_hist.(d) <- m.depth_hist.(d) + 1

let note_node m t =
  Queue.push (t, m.nodes) m.window;
  while
    (not (Queue.is_empty m.window))
    && fst (Queue.peek m.window) < t -. window_seconds
  do
    ignore (Queue.pop m.window)
  done

let feed m env =
  m.events <- m.events + 1;
  m.t_last <- env.Event.t;
  (match env.Event.domain with
   | Some d when d + 1 > m.domains -> m.domains <- d + 1
   | Some _ | None -> ());
  match env.Event.event with
  | Event.Run_started { engine; instance } ->
    m.harness <- true;
    m.engine <- Some engine;
    m.instance <- Some instance
  | Event.Run_finished { verdict; _ } ->
    m.verdict <- Some verdict;
    m.finished <- true;
    m.harness <- false
  | Event.Node_evaluated { depth; reward; _ } ->
    m.calls <- m.calls + 1;
    m.nodes <- m.nodes + 1;
    count_depth m depth;
    better m reward;
    note_node m env.Event.t
  | Event.Frontier_pop { depth; frontier; priority; _ } ->
    m.calls <- m.calls + 1;
    m.nodes <- m.nodes + 1;
    m.frontier <- frontier;
    count_depth m depth;
    if Float.is_finite priority then better m priority;
    note_node m env.Event.t
  | Event.Exact_leaf { depth; verified; _ } ->
    m.calls <- m.calls + 1;
    count_depth m depth;
    if not verified then better m Float.infinity
  | Event.Node_selected { engine; _ } | Event.Backprop { engine; _ } ->
    if m.engine = None then m.engine <- Some engine
  | Event.Bound_computed { elapsed; _ } -> m.appver_time <- m.appver_time +. elapsed
  | Event.Lp_solved { elapsed; _ } -> m.lp_time <- m.lp_time +. elapsed
  | Event.Attack_tried { elapsed; _ } -> m.attack_time <- m.attack_time +. elapsed
  (* lp_warm annotates an lp bound_computed already counted above *)
  | Event.Bound_reuse _ | Event.Lp_warm _ -> ()
  | Event.Resource_sample ({ engine; rss_bytes; open_nodes; _ } as s) ->
    if m.engine = None then m.engine <- Some engine;
    m.frontier <- Stdlib.max m.frontier open_nodes;
    m.last_sample <- Some (Event.Resource_sample s);
    m.rss_curve <-
      (env.Event.t, rss_bytes)
      :: (if List.length m.rss_curve >= rss_curve_cap then
            List.filteri (fun i _ -> i < rss_curve_cap - 1) m.rss_curve
          else m.rss_curve)
  | Event.Verdict_reached { engine; verdict; _ } ->
    if m.engine = None then m.engine <- Some engine;
    m.verdict <- Some verdict;
    (* inside a harness bracket the engine verdict is interior
       bookkeeping; the bracketing run_finished ends the run *)
    if not m.harness then m.finished <- true
  | Event.Domain_summary { domain; _ } ->
    if domain + 1 > m.domains then m.domains <- domain + 1
  (* decision-level introspection annotates events already counted above *)
  | Event.Ucb_decision _ | Event.Branch_decision _ | Event.Frontier_decision _
    ->
    ()

let finished m = m.finished

(* nodes/sec over the retained window: newest minus oldest entry. *)
let nodes_per_sec m =
  if Queue.length m.window < 2 then 0.0
  else begin
    let t0, n0 = Queue.peek m.window in
    let t1 = ref t0 and n1 = ref n0 in
    Queue.iter
      (fun (t, n) ->
        t1 := t;
        n1 := n)
      m.window;
    let dt = !t1 -. t0 in
    if dt <= 0.0 then 0.0 else float_of_int (!n1 - n0) /. dt
  end

(* --- rendering --- *)

let mib bytes = float_of_int bytes /. (1024.0 *. 1024.0)

let spark_chars = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

(* ASCII sparkline of the RSS curve, downsampled to [width] columns. *)
let rss_sparkline ?(width = 48) m =
  match List.rev m.rss_curve with
  | [] -> None
  | samples ->
    let arr = Array.of_list (List.map snd samples) in
    let n = Array.length arr in
    let cols = Stdlib.min width n in
    let lo = Array.fold_left Stdlib.min arr.(0) arr in
    let hi = Array.fold_left Stdlib.max arr.(0) arr in
    let buf = Buffer.create cols in
    for c = 0 to cols - 1 do
      (* max over the samples this column covers *)
      let i0 = c * n / cols and i1 = Stdlib.max (c * n / cols) (((c + 1) * n / cols) - 1) in
      let v = ref arr.(i0) in
      for i = i0 to i1 do
        if arr.(i) > !v then v := arr.(i)
      done;
      let frac = if hi = lo then 1.0 else float_of_int (!v - lo) /. float_of_int (hi - lo) in
      let idx =
        Stdlib.min (Array.length spark_chars - 1)
          (int_of_float (frac *. float_of_int (Array.length spark_chars - 1) +. 0.5))
      in
      Buffer.add_char buf spark_chars.(idx)
    done;
    Some (lo, hi, Buffer.contents buf)

let fbest m =
  if Float.is_nan m.best then "-"
  else if m.best = Float.infinity then "+inf"
  else if m.best = Float.neg_infinity then "-inf"
  else Printf.sprintf "%.4f" m.best

let render ?(width = 72) ?calls_budget m =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "ABONN live monitor  %s%s"
    (Option.value ~default:"(engine pending)" m.engine)
    (match m.instance with Some i -> "  " ^ i | None -> "");
  line "%s" (String.make (Stdlib.min width 72) '-');
  line "elapsed %8.1fs   events %8d   status %s" m.t_last m.events
    (match m.verdict with
     | Some v -> v ^ (if m.finished then "" else " (engine)")
     | None -> "running");
  let nps = nodes_per_sec m in
  line "nodes %8d   calls %8d   depth %4d   frontier %6d   %8.1f nodes/s"
    m.nodes m.calls m.max_depth m.frontier nps;
  if m.domains > 0 then line "domains %6d" m.domains;
  line "best reward %s" (fbest m);
  (match calls_budget with
   | Some budget when nps > 0.0 && not m.finished ->
     let remaining = Stdlib.max 0 (budget - m.calls) in
     line "budget ETA  %.1fs (%d of %d calls left)"
       (float_of_int remaining /. nps) remaining budget
   | _ -> ());
  (* phase split *)
  let total = Float.max m.t_last 1e-9 in
  let search = Float.max 0.0 (total -. m.appver_time -. m.lp_time -. m.attack_time) in
  line "";
  line "phase split     appver %5.1f%%   lp %5.1f%%   attack %5.1f%%   search %5.1f%%"
    (100.0 *. m.appver_time /. total)
    (100.0 *. m.lp_time /. total)
    (100.0 *. m.attack_time /. total)
    (100.0 *. search /. total);
  (* memory *)
  (match m.last_sample with
   | Some
       (Event.Resource_sample
          { rss_bytes; heap_bytes; minor_gcs; major_gcs; cpu; _ }) ->
     line "memory          rss %8.1f MiB   heap %8.1f MiB   gc %d/%d   cpu %.1fs"
       (mib rss_bytes) (mib heap_bytes) minor_gcs major_gcs cpu
   | _ -> ());
  (match rss_sparkline m with
   | Some (lo, hi, spark) ->
     line "rss curve       [%.1f, %.1f] MiB  |%s|" (mib lo) (mib hi) spark
   | None -> ());
  (* depth histogram *)
  if m.max_depth > 0 || m.depth_hist.(0) > 0 then begin
    line "";
    line "depth histogram";
    let vmax =
      float_of_int (Array.fold_left Stdlib.max 1 m.depth_hist)
    in
    for d = 0 to m.max_depth do
      let n = if d < Array.length m.depth_hist then m.depth_hist.(d) else 0 in
      if n > 0 then
        line "  %4d %6d %s" d n (Table.bar ~width:36 (float_of_int n) vmax)
    done
  end;
  Buffer.contents buf
