module Event = Abonn_obs.Event

type point = {
  t : float;
  seq : int;
  calls : int;
  nodes : int;
  max_depth : int;
  frontier : int;
  best_reward : float;
}

let of_events events =
  let points = ref [] in
  let calls = ref 0 and nodes = ref 0 and max_depth = ref 0 in
  let frontier = ref 0 and best = ref Float.nan in
  (* ABONN frontier: open leaves.  A node leaves the open set when it is
     expanded, i.e. when its first child arrives. *)
  let open_set : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let better v = if Float.is_nan !best || v > !best then best := v in
  let push env =
    points :=
      { t = env.Event.t; seq = env.Event.seq; calls = !calls; nodes = !nodes;
        max_depth = !max_depth; frontier = !frontier; best_reward = !best }
      :: !points
  in
  List.iter
    (fun env ->
      match env.Event.event with
      | Event.Node_evaluated { depth; gamma; reward; _ } ->
        incr calls;
        incr nodes;
        if depth > !max_depth then max_depth := depth;
        better reward;
        (match Tree.parent_gamma gamma with
         | Some pg when Hashtbl.mem open_set pg -> Hashtbl.remove open_set pg
         | Some _ | None -> ());
        if Float.is_finite reward then Hashtbl.add open_set gamma ();
        frontier := Hashtbl.length open_set;
        push env
      | Event.Frontier_pop { depth; frontier = f; priority; _ } ->
        incr calls;
        incr nodes;
        if depth > !max_depth then max_depth := depth;
        if Float.is_finite priority then better priority;
        frontier := f;
        push env
      | Event.Exact_leaf { verified; depth; _ } ->
        incr calls;
        if depth > !max_depth then max_depth := depth;
        if not verified then better infinity;
        push env
      | Event.Verdict_reached _ -> push env
      | _ -> ())
    events;
  List.rev !points

let fnum v =
  if v = infinity then "inf"
  else if v = neg_infinity then "-inf"
  else if Float.is_nan v then "nan"
  else Printf.sprintf "%.17g" v

let to_csv points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "t,seq,calls,nodes,max_depth,frontier,best_reward\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%.6f,%d,%d,%d,%d,%d,%s\n" p.t p.seq p.calls p.nodes p.max_depth
           p.frontier (fnum p.best_reward)))
    points;
  Buffer.contents buf
