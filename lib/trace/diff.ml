module Event = Abonn_obs.Event

type divergence = {
  index : int;
  depth_a : int;
  depth_b : int;
  gamma_a : string option;
  gamma_b : string option;
}

type t = {
  run_a : Summary.run;
  run_b : Summary.run;
  visits_a : int;
  visits_b : int;
  divergence : divergence option;
  shared_prefix : int;
  phases_a : Phases.t;
  phases_b : Phases.t;
}

(* The visit sequence: one entry per node the engine materialised, in
   visit order.  ABONN visits via node_evaluated (gamma known), the
   baselines via frontier_pop (depth only). *)
let visits events =
  List.filter_map
    (fun env ->
      match env.Event.event with
      | Event.Node_evaluated { depth; gamma; _ } -> Some (Some gamma, depth)
      | Event.Frontier_pop { depth; _ } -> Some (None, depth)
      | _ -> None)
    events

let first_segment events =
  match Summary.segments events with seg :: _ -> seg | [] -> []

let diff a b =
  let seg_a = first_segment a and seg_b = first_segment b in
  let va = visits seg_a and vb = visits seg_b in
  let rec walk i xs ys =
    match xs, ys with
    | [], _ | _, [] -> (i, None)
    | (ga, da) :: xs', (gb, db) :: ys' ->
      let same =
        match ga, gb with
        | Some ga, Some gb -> ga = gb
        | _ -> da = db
      in
      if same then walk (i + 1) xs' ys'
      else (i, Some { index = i; depth_a = da; depth_b = db; gamma_a = ga; gamma_b = gb })
  in
  let shared_prefix, divergence = walk 0 va vb in
  { run_a = Summary.of_events seg_a;
    run_b = Summary.of_events seg_b;
    visits_a = List.length va;
    visits_b = List.length vb;
    divergence;
    shared_prefix;
    phases_a = Phases.of_events seg_a;
    phases_b = Phases.of_events seg_b }

let to_string ?label_a ?label_b d =
  let la = Option.value ~default:d.run_a.Summary.engine label_a in
  let lb = Option.value ~default:d.run_b.Summary.engine label_b in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %14s %14s %14s\n" "metric" la lb "delta (B-A)");
  Buffer.add_string buf (String.make 70 '-');
  Buffer.add_char buf '\n';
  let str name a b =
    Buffer.add_string buf (Printf.sprintf "%-24s %14s %14s\n" name a b)
  in
  let int name a b =
    Buffer.add_string buf
      (Printf.sprintf "%-24s %14d %14d %+14d\n" name a b (b - a))
  in
  let flt name a b =
    Buffer.add_string buf
      (Printf.sprintf "%-24s %14.6f %14.6f %+14.6f\n" name a b (b -. a))
  in
  let ra = d.run_a and rb = d.run_b in
  str "verdict"
    (Option.value ~default:"open" ra.Summary.verdict)
    (Option.value ~default:"open" rb.Summary.verdict);
  int "appver calls" ra.Summary.calls rb.Summary.calls;
  int "nodes" ra.Summary.nodes rb.Summary.nodes;
  int "max depth" ra.Summary.max_depth rb.Summary.max_depth;
  flt "wall s" ra.Summary.wall rb.Summary.wall;
  int "visits to verdict" d.visits_a d.visits_b;
  flt "phase: appver s" d.phases_a.Phases.appver_total.Phases.total
    d.phases_b.Phases.appver_total.Phases.total;
  let lp_outside (p : Phases.t) =
    Float.max 0.0 (p.Phases.lp.Phases.total -. p.Phases.lp_in_appver)
  in
  flt "phase: lp (exact) s" (lp_outside d.phases_a) (lp_outside d.phases_b);
  flt "phase: attack s" d.phases_a.Phases.attack_total.Phases.total
    d.phases_b.Phases.attack_total.Phases.total;
  flt "phase: overhead s" d.phases_a.Phases.overhead d.phases_b.Phases.overhead;
  Buffer.add_string buf (Printf.sprintf "shared visit prefix: %d\n" d.shared_prefix);
  (match d.divergence with
   | None ->
     Buffer.add_string buf
       "divergence: none (one visit sequence is a prefix of the other)\n"
   | Some dv ->
     Buffer.add_string buf
       (Printf.sprintf "divergence at visit %d: %s (depth %d) vs %s (depth %d)\n" dv.index
          (Option.value ~default:"?" dv.gamma_a)
          dv.depth_a
          (Option.value ~default:"?" dv.gamma_b)
          dv.depth_b));
  Buffer.contents buf
