(* Campaign analytics over the run registry: the instance-set view the
   paper's evaluation is told in.  Where [Summary]/[Phases] explain one
   run, this module aggregates every registry line (all schemas 1-3,
   any number of files) into solved-vs-time cactus curves, PAR-2
   scores, per-engine x per-family win/loss matrices and cross-commit
   trends, and joins two commits' runs — optionally through their
   traces via [Phases]/[Explain] — into a causal "why did commit B get
   slower" attribution.  Every renderer is deterministic and
   byte-stable: identical inputs produce identical bytes, so the
   outputs work as golden-test subjects and committed CI artifacts. *)

module Event = Abonn_obs.Event

type issue = { file : string; line : int; msg : string }

type t = {
  records : Registry.record list;  (* file order, then line order *)
  issues : issue list;
}

let load paths =
  match
    List.concat_map
      (fun file ->
        Registry.fold_lines file ~init:[] ~f:(fun acc line_no line ->
            match Registry.of_json line with
            | Ok r -> `Record r :: acc
            | Error msg -> `Issue { file; line = line_no; msg } :: acc)
        |> List.rev)
      paths
  with
  | entries ->
    Ok
      { records = List.filter_map (function `Record r -> Some r | _ -> None) entries;
        issues = List.filter_map (function `Issue i -> Some i | _ -> None) entries }
  | exception Sys_error msg -> Error msg

(* --- normalisation -------------------------------------------------

   Bench rows encode their variants as instance suffixes ("@d4",
   "@flight", "@i16").  The "@dN" suffix is the parallel dimension and
   belongs with the record's [domains] field (schema-1 lines predate
   it); the other suffixes are genuine instance variants and stay part
   of the instance identity. *)

let split_domains_suffix instance =
  match String.rindex_opt instance '@' with
  | Some i
    when i + 2 < String.length instance
         && instance.[i + 1] = 'd'
         && String.for_all
              (function '0' .. '9' -> true | _ -> false)
              (String.sub instance (i + 2) (String.length instance - i - 2)) ->
    ( String.sub instance 0 i,
      int_of_string (String.sub instance (i + 2) (String.length instance - i - 2)) )
  | _ -> (instance, 0)

let instance_key (r : Registry.record) = fst (split_domains_suffix r.instance)

let effective_domains (r : Registry.record) =
  match split_domains_suffix r.instance with
  | _, d when d > 1 -> d
  | _ -> r.domains

(* The instance family: the naming prefix shared by a generated zoo
   ("mlp_d6_seed1" -> "mlp", "acas_0/P1" -> "acas", "mnist_l2/03" ->
   "mnist"), combined with the record's source format and parallel
   dimension — the three axes the per-family matrix is told in. *)
let instance_prefix instance =
  let stop = ref (String.length instance) in
  String.iteri
    (fun i c ->
      match c with
      | '_' | '/' | '#' | '@' when i < !stop -> stop := i
      | _ -> ())
    instance;
  if !stop = 0 then instance else String.sub instance 0 !stop

let family (r : Registry.record) =
  Printf.sprintf "%s/%s/d%d" r.source_format
    (instance_prefix (instance_key r))
    (effective_domains r)

let solved (r : Registry.record) =
  match r.verdict with
  | "verified" -> true
  | v -> String.length v >= 9 && String.sub v 0 9 = "falsified"

(* The identity a run answers for: re-runs of the same identity within
   one commit supersede each other (the registry is append-only, so CI
   retries and local reruns pile up); across commits the identity is
   the join key of the attribution mode. *)
let run_key (r : Registry.record) =
  (r.engine, r.model, r.instance, r.seed, effective_domains r, r.source_format)

(* --- commit timeline ----------------------------------------------- *)

(* Commits ordered by first appearance (min ts, then commit string):
   ISO-8601 UTC strings sort chronologically as bytes. *)
let commits t =
  let first : (string, string) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (r : Registry.record) ->
      match Hashtbl.find_opt first r.commit with
      | Some ts when ts <= r.ts -> ()
      | _ -> Hashtbl.replace first r.commit r.ts)
    t.records;
  Hashtbl.fold (fun c ts acc -> (ts, c) :: acc) first []
  |> List.sort compare
  |> List.map snd

let head_commit t =
  match List.rev (commits t) with c :: _ -> Some c | [] -> None

(* Latest run per identity within one commit, in deterministic
   (sorted-by-key) order. *)
let select ~commit t =
  let best : ((string * string * string * int * int * string), Registry.record)
      Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (r : Registry.record) ->
      if r.commit = commit then
        let key = run_key r in
        match Hashtbl.find_opt best key with
        | Some prev when prev.ts > r.ts -> ()
        | _ -> Hashtbl.replace best key r)
    t.records;
  Hashtbl.fold (fun _ r acc -> r :: acc) best []
  |> List.sort (fun a b -> compare (run_key a) (run_key b))

let engines records =
  List.sort_uniq String.compare
    (List.map (fun (r : Registry.record) -> r.engine) records)

let families records = List.sort_uniq String.compare (List.map family records)

(* --- cactus / survival curves -------------------------------------- *)

type cactus_point = { nth : int; wall : float }

(* Per engine: k-th cheapest solved instance against its wall time —
   the classic solved-vs-time staircase. *)
let cactus records =
  List.map
    (fun e ->
      let walls =
        List.filter_map
          (fun (r : Registry.record) ->
            if r.engine = e && solved r then Some r.wall else None)
          records
        |> List.sort compare
      in
      (e, List.mapi (fun i w -> { nth = i + 1; wall = w }) walls))
    (engines records)

let cactus_to_csv curves =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "engine,solved,wall_s\n";
  List.iter
    (fun (e, points) ->
      List.iter
        (fun p -> Buffer.add_string buf (Printf.sprintf "%s,%d,%.6f\n" e p.nth p.wall))
        points)
    curves;
  Buffer.contents buf

(* Hand-rolled SVG cactus plot: x = instances solved, y = wall seconds.
   Fixed canvas, fixed palette, fixed numeric formats — byte-stable. *)
let palette =
  [| "#4477aa"; "#ee6677"; "#228833"; "#ccbb44"; "#66ccee"; "#aa3377"; "#bbbbbb" |]

let cactus_to_svg curves =
  let width = 640 and height = 400 in
  let ml = 60 and mr = 150 and mt = 20 and mb = 45 in
  let pw = float_of_int (width - ml - mr)
  and ph = float_of_int (height - mt - mb) in
  let max_n =
    List.fold_left (fun acc (_, ps) -> max acc (List.length ps)) 1 curves
  in
  let max_w =
    List.fold_left
      (fun acc (_, ps) ->
        List.fold_left (fun acc p -> Float.max acc p.wall) acc ps)
      1e-6 curves
  in
  let x n = float_of_int ml +. (pw *. float_of_int n /. float_of_int max_n) in
  let y w = float_of_int (mt + (height - mt - mb)) -. (ph *. w /. max_w) in
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\" font-family=\"monospace\" font-size=\"11\">"
    width height width height;
  line "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>" width height;
  (* axes *)
  line
    "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"black\"/>"
    ml (height - mb) (width - mr) (height - mb);
  line "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"black\"/>" ml mt ml
    (height - mb);
  (* ticks: 5 on each axis *)
  for i = 0 to 4 do
    let n = max_n * i / 4 in
    let xi = x n in
    line
      "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" stroke=\"black\"/>"
      xi (height - mb) xi (height - mb + 4);
    line
      "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\">%d</text>"
      xi (height - mb + 16) n;
    let w = max_w *. float_of_int i /. 4.0 in
    let yi = y w in
    line "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" stroke=\"black\"/>"
      (ml - 4) yi ml yi;
    line "<text x=\"%d\" y=\"%.1f\" text-anchor=\"end\">%.3g</text>" (ml - 7)
      (yi +. 4.0) w
  done;
  line
    "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\">instances solved</text>"
    (float_of_int ml +. (pw /. 2.0))
    (height - 8);
  line
    "<text x=\"14\" y=\"%.1f\" text-anchor=\"middle\" transform=\"rotate(-90 14 \
     %.1f)\">wall s</text>"
    (float_of_int mt +. (ph /. 2.0))
    (float_of_int mt +. (ph /. 2.0));
  (* one staircase polyline per engine, starting at (0, 0) *)
  List.iteri
    (fun i (e, points) ->
      let color = palette.(i mod Array.length palette) in
      let coords =
        String.concat " "
          (Printf.sprintf "%.1f,%.1f" (x 0) (y 0.0)
          :: List.map (fun p -> Printf.sprintf "%.1f,%.1f" (x p.nth) (y p.wall)) points)
      in
      line
        "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\"/>"
        coords color;
      let ly = mt + 14 + (i * 16) in
      line
        "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"%s\" \
         stroke-width=\"1.5\"/>"
        (width - mr + 10) ly (width - mr + 30) ly color;
      line "<text x=\"%d\" y=\"%d\">%s (%d)</text>" (width - mr + 36) (ly + 4) e
        (List.length points))
    curves;
  line "</svg>";
  Buffer.contents buf

(* --- PAR-2 ---------------------------------------------------------

   The standard SAT-competition penalised average runtime: solved runs
   count their wall time, unsolved runs twice the campaign budget.  The
   registry does not record per-run budgets, so the budget defaults to
   the longest wall observed in the selection (every run was allowed at
   least that long); pass [~budget] to override. *)

type par2_row = {
  engine : string;
  runs : int;
  solved_n : int;
  par2 : float;
  geomean_solved_wall : float;  (* nan when nothing solved *)
}

let par2 ?budget records =
  let budget =
    match budget with
    | Some b -> b
    | None ->
      List.fold_left (fun acc (r : Registry.record) -> Float.max acc r.wall) 1e-6
        records
  in
  ( budget,
    List.map
      (fun e ->
        let mine =
          List.filter (fun (r : Registry.record) -> r.engine = e) records
        in
        let solved_runs = List.filter solved mine in
        let n = List.length mine and sn = List.length solved_runs in
        let total =
          List.fold_left (fun acc (r : Registry.record) -> acc +. r.wall) 0.0
            solved_runs
          +. (2.0 *. budget *. float_of_int (n - sn))
        in
        let geomean =
          if sn = 0 then Float.nan
          else
            exp
              (List.fold_left
                 (fun acc (r : Registry.record) -> acc +. log (Float.max 1e-9 r.wall))
                 0.0 solved_runs
              /. float_of_int sn)
        in
        { engine = e;
          runs = n;
          solved_n = sn;
          par2 = (if n = 0 then Float.nan else total /. float_of_int n);
          geomean_solved_wall = geomean })
      (engines records) )

(* --- engine x family win/loss matrix ------------------------------- *)

type cell = { cell_runs : int; cell_solved : int; wins : int; losses : int }

(* Within a family, engines compete per identity (model, instance,
   seed, domains, source_format): the strictly fastest solver wins;
   an engine that left an identity unsolved while some other engine
   solved it takes a loss.  Identities only one engine ran produce
   neither wins nor losses. *)
let matrix records =
  let fams = families records and engs = engines records in
  let tbl = Hashtbl.create 32 in
  let get e f =
    Option.value
      ~default:{ cell_runs = 0; cell_solved = 0; wins = 0; losses = 0 }
      (Hashtbl.find_opt tbl (e, f))
  in
  let put e f c = Hashtbl.replace tbl (e, f) c in
  List.iter
    (fun (r : Registry.record) ->
      let c = get r.engine (family r) in
      put r.engine (family r)
        { c with
          cell_runs = c.cell_runs + 1;
          cell_solved = (c.cell_solved + if solved r then 1 else 0) })
    records;
  (* group by identity minus engine *)
  let groups = Hashtbl.create 32 in
  List.iter
    (fun (r : Registry.record) ->
      let key =
        (r.model, instance_key r, r.seed, effective_domains r, r.source_format)
      in
      Hashtbl.replace groups key
        (r :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
    records;
  Hashtbl.iter
    (fun _ group ->
      match group with
      | [] | [ _ ] -> ()
      | group ->
        let solvers = List.filter solved group in
        (match
           List.sort
             (fun (a : Registry.record) (b : Registry.record) ->
               compare (a.wall, a.engine) (b.wall, b.engine))
             solvers
         with
         | [] -> ()
         | winner :: rest ->
           (* a strict win needs a strictly better wall than every rival *)
           let strict =
             List.for_all (fun (r : Registry.record) -> r.wall > winner.wall) rest
           in
           if strict && List.length group > 1 then begin
             let c = get winner.engine (family winner) in
             put winner.engine (family winner) { c with wins = c.wins + 1 }
           end;
           List.iter
             (fun (r : Registry.record) ->
               if not (solved r) then begin
                 let c = get r.engine (family r) in
                 put r.engine (family r) { c with losses = c.losses + 1 }
               end)
             group))
    groups;
  (engs, fams, fun e f -> get e f)

(* --- cross-commit trends ------------------------------------------- *)

type trend_row = {
  trend_commit : string;
  first_ts : string;
  trend_runs : int;
  trend_solved : int;
  trend_par2 : float;
  trend_geomean : float;
}

let trends ?budget t =
  List.map
    (fun commit ->
      let records = select ~commit t in
      let first_ts =
        List.fold_left
          (fun acc (r : Registry.record) ->
            if acc = "" || r.ts < acc then r.ts else acc)
          "" records
      in
      let budget_used, rows = par2 ?budget records in
      ignore budget_used;
      let runs = List.length records in
      let solved_n = List.length (List.filter solved records) in
      let weighted =
        (* campaign-level PAR-2: runs-weighted mean of the per-engine rows *)
        let num, den =
          List.fold_left
            (fun (num, den) row ->
              if Float.is_nan row.par2 then (num, den)
              else (num +. (row.par2 *. float_of_int row.runs), den + row.runs))
            (0.0, 0) rows
        in
        if den = 0 then Float.nan else num /. float_of_int den
      in
      let geo =
        let sum, n =
          List.fold_left
            (fun (sum, n) (r : Registry.record) ->
              if solved r then (sum +. log (Float.max 1e-9 r.wall), n + 1)
              else (sum, n))
            (0.0, 0) records
        in
        if n = 0 then Float.nan else exp (sum /. float_of_int n)
      in
      { trend_commit = commit;
        first_ts;
        trend_runs = runs;
        trend_solved = solved_n;
        trend_par2 = weighted;
        trend_geomean = geo })
    (commits t)

(* --- cross-commit attribution -------------------------------------- *)

type pair_delta = {
  pair_engine : string;
  pair_instance : string;  (* model/instance for display *)
  base_wall : float;
  head_wall : float;
  delta : float;           (* positive = head slower *)
  base_solved : bool;
  head_solved : bool;
}

type attribution = {
  base_commit : string;
  head_commit : string;
  pairs : pair_delta list;    (* sorted by delta, slowest regressions first *)
  unmatched_base : int;
  unmatched_head : int;
  total_delta : float;
  newly_unsolved : int;
  newly_solved : int;
}

let attribute ~base ~head t =
  let base_records = select ~commit:base t
  and head_records = select ~commit:head t in
  let base_tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Registry.record) -> Hashtbl.replace base_tbl (run_key r) r)
    base_records;
  let pairs = ref [] and matched = ref 0 in
  List.iter
    (fun (h : Registry.record) ->
      match Hashtbl.find_opt base_tbl (run_key h) with
      | None -> ()
      | Some b ->
        incr matched;
        pairs :=
          { pair_engine = h.engine;
            pair_instance = Printf.sprintf "%s/%s" h.model h.instance;
            base_wall = b.wall;
            head_wall = h.wall;
            delta = h.wall -. b.wall;
            base_solved = solved b;
            head_solved = solved h }
          :: !pairs)
    head_records;
  let pairs =
    List.sort
      (fun a b -> compare (b.delta, a.pair_instance) (a.delta, b.pair_instance))
      !pairs
  in
  { base_commit = base;
    head_commit = head;
    pairs;
    unmatched_base = List.length base_records - !matched;
    unmatched_head = List.length head_records - !matched;
    total_delta = List.fold_left (fun acc p -> acc +. p.delta) 0.0 pairs;
    newly_unsolved =
      List.length (List.filter (fun p -> p.base_solved && not p.head_solved) pairs);
    newly_solved =
      List.length (List.filter (fun p -> (not p.base_solved) && p.head_solved) pairs) }

(* --- trace-level attribution ---------------------------------------

   When the regressed runs' traces are at hand, the wall-time delta can
   be charged to phases: the [Phases] span accounting of each trace is
   joined phase by phase, and the [Explain] wasted-work fraction plus
   the bound_reuse cache annotations locate search-quality shifts the
   phase table cannot see.  The dominant phase delta is the causal
   headline ("commit B is slower because LP time doubled"). *)

type trace_attribution = {
  phase_deltas : (string * float * float) list;  (* name, base_s, head_s *)
  dominant : (string * float) option;            (* largest positive delta *)
  wasted_base : float;
  wasted_head : float;
  reuse_events_base : int;
  reuse_events_head : int;
  layers_skipped_base : int;
  layers_skipped_head : int;
}

let phase_table events =
  let p = Phases.of_events events in
  List.map (fun (n, s) -> ("appver." ^ n, s.Phases.total)) p.Phases.appver
  @ [ ("lp", Float.max 0.0 (p.Phases.lp.Phases.total -. p.Phases.lp_in_appver)) ]
  @ List.map (fun (n, s) -> ("attack." ^ n, s.Phases.total)) p.Phases.attack
  @ [ ("search overhead", p.Phases.overhead) ]

let reuse_stats events =
  List.fold_left
    (fun (n, skipped) env ->
      match env.Event.event with
      | Event.Bound_reuse { layers_skipped; _ } -> (n + 1, skipped + layers_skipped)
      | _ -> (n, skipped))
    (0, 0) events

let trace_attribute ~base ~head =
  let tb = phase_table base and th = phase_table head in
  let names =
    List.sort_uniq String.compare (List.map fst tb @ List.map fst th)
  in
  let get tbl n = Option.value ~default:0.0 (List.assoc_opt n tbl) in
  let phase_deltas = List.map (fun n -> (n, get tb n, get th n)) names in
  let dominant =
    List.fold_left
      (fun acc (n, b, h) ->
        let d = h -. b in
        match acc with
        | Some (_, best) when best >= d -> acc
        | _ when d > 0.0 -> Some (n, d)
        | _ -> acc)
      None phase_deltas
  in
  let eb = Explain.of_events base and eh = Explain.of_events head in
  let rb, sb = reuse_stats base and rh, sh = reuse_stats head in
  { phase_deltas;
    dominant;
    wasted_base = eb.Explain.wasted_frac;
    wasted_head = eh.Explain.wasted_frac;
    reuse_events_base = rb;
    reuse_events_head = rh;
    layers_skipped_base = sb;
    layers_skipped_head = sh }

(* --- rendering ----------------------------------------------------- *)

type format = Md | Csv | Svg

let format_of_string = function
  | "md" -> Some Md
  | "csv" -> Some Csv
  | "svg" -> Some Svg
  | _ -> None

let fnum f = if Float.is_nan f then "-" else Printf.sprintf "%.4f" f

let md_report ?against ?trace_pair ?budget ~commit t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let records = select ~commit t in
  let all_commits = commits t in
  line "# Campaign report";
  line "";
  line "- commit under report: `%s` (of %d commit(s) in the registry)" commit
    (List.length all_commits);
  line "- runs: %d selected (latest per engine/model/instance/seed/domains), %d \
        registry record(s) total"
    (List.length records) (List.length t.records);
  if t.issues <> [] then
    line "- %d unparseable registry line(s) skipped" (List.length t.issues);
  line "";
  (* PAR-2 *)
  let budget_used, rows = par2 ?budget records in
  line "## PAR-2 (budget %.4f s, unsolved = 2x budget)" budget_used;
  line "";
  line "| engine | runs | solved | rate | PAR-2 s | geomean solved wall s |";
  line "|---|---:|---:|---:|---:|---:|";
  List.iter
    (fun r ->
      line "| %s | %d | %d | %.1f%% | %s | %s |" r.engine r.runs r.solved_n
        (if r.runs = 0 then 0.0
         else 100.0 *. float_of_int r.solved_n /. float_of_int r.runs)
        (fnum r.par2)
        (fnum r.geomean_solved_wall))
    rows;
  line "";
  (* cactus, as a compact table; CSV/SVG renderers carry the full curves *)
  let curves = cactus records in
  line "## Cactus (instances solved vs wall seconds)";
  line "";
  line "| engine | solved | wall at 25%% | wall at 50%% | wall at 100%% |";
  line "|---|---:|---:|---:|---:|";
  List.iter
    (fun (e, points) ->
      let n = List.length points in
      let at frac =
        if n = 0 then "-"
        else
          let idx = max 1 (int_of_float (ceil (frac *. float_of_int n))) in
          match List.nth_opt points (idx - 1) with
          | Some p -> Printf.sprintf "%.4f" p.wall
          | None -> "-"
      in
      line "| %s | %d | %s | %s | %s |" e n (at 0.25) (at 0.5) (at 1.0))
    curves;
  line "";
  (* matrix *)
  let engs, fams, get = matrix records in
  line "## Engine x family (solved/runs, W strict fastest-solver wins, L \
        unsolved-while-beaten)";
  line "";
  line "| engine | %s |" (String.concat " | " fams);
  line "|---|%s" (String.concat "" (List.map (fun _ -> "---|") fams));
  List.iter
    (fun e ->
      let cells =
        List.map
          (fun f ->
            let c = get e f in
            if c.cell_runs = 0 then "-"
            else
              Printf.sprintf "%d/%d (%dW/%dL)" c.cell_solved c.cell_runs c.wins
                c.losses)
          fams
      in
      line "| %s | %s |" e (String.concat " | " cells))
    engs;
  line "";
  (* trends *)
  let trend_rows = trends ?budget t in
  line "## Cross-commit trend";
  line "";
  line "| commit | first ts | runs | solved | PAR-2 s | geomean solved wall s | \
        dPAR-2 |";
  line "|---|---|---:|---:|---:|---:|---:|";
  List.fold_left
    (fun prev r ->
      let delta =
        match prev with
        | Some p when not (Float.is_nan p) && not (Float.is_nan r.trend_par2) ->
          Printf.sprintf "%+.4f" (r.trend_par2 -. p)
        | _ -> "-"
      in
      line "| `%s` | %s | %d | %d | %s | %s | %s |" r.trend_commit r.first_ts
        r.trend_runs r.trend_solved (fnum r.trend_par2) (fnum r.trend_geomean)
        delta;
      Some r.trend_par2)
    None trend_rows
  |> ignore;
  line "";
  (* attribution *)
  (match against with
   | None -> ()
   | Some base ->
     let a = attribute ~base ~head:commit t in
     line "## Attribution: `%s` -> `%s`" a.base_commit a.head_commit;
     line "";
     line
       "- %d matched run pair(s) (%d only in base, %d only in head), total wall \
        delta %+.4f s"
       (List.length a.pairs) a.unmatched_base a.unmatched_head a.total_delta;
     line "- verdict shifts: %d newly unsolved, %d newly solved" a.newly_unsolved
       a.newly_solved;
     line "";
     line "| engine | instance | base wall s | head wall s | delta s | verdict |";
     line "|---|---|---:|---:|---:|---|";
     let top = List.filteri (fun i _ -> i < 10) a.pairs in
     List.iter
       (fun p ->
         line "| %s | %s | %.4f | %.4f | %+.4f | %s |" p.pair_engine
           p.pair_instance p.base_wall p.head_wall p.delta
           (match (p.base_solved, p.head_solved) with
            | true, false -> "solved -> UNSOLVED"
            | false, true -> "unsolved -> solved"
            | _ -> ""))
       top;
     line "");
  (match trace_pair with
   | None -> ()
   | Some ta ->
     line "## Trace attribution (phase wall-time deltas)";
     line "";
     (match ta.dominant with
      | Some (name, d) -> line "**Dominant phase delta: %s (%+.6f s)**" name d
      | None -> line "No phase got slower between the two traces.");
     line "";
     line "| phase | base s | head s | delta s |";
     line "|---|---:|---:|---:|";
     List.iter
       (fun (n, b, h) -> line "| %s | %.6f | %.6f | %+.6f |" n b h (h -. b))
       ta.phase_deltas;
     line "";
     line "- wasted-work fraction: %s -> %s"
       (fnum ta.wasted_base) (fnum ta.wasted_head);
     line "- bound-reuse: %d event(s) / %d layer(s) skipped -> %d / %d"
       ta.reuse_events_base ta.layers_skipped_base ta.reuse_events_head
       ta.layers_skipped_head;
     line "");
  Buffer.contents buf

let report ?against ?trace_pair ?budget ?commit t format =
  match (match commit with Some c -> Some c | None -> head_commit t) with
  | None -> Error "registry holds no records to report on"
  | Some commit ->
    if not (List.mem commit (commits t)) then
      Error (Printf.sprintf "commit %S does not appear in the registry" commit)
    else begin
      match against with
      | Some base when not (List.mem base (commits t)) ->
        Error (Printf.sprintf "--against commit %S does not appear in the registry" base)
      | _ ->
        let records = select ~commit t in
        (match format with
         | Md -> Ok (md_report ?against ?trace_pair ?budget ~commit t)
         | Csv -> Ok (cactus_to_csv (cactus records))
         | Svg -> Ok (cactus_to_svg (cactus records)))
    end
