(* Bench baseline comparison behind [abonn_trace bench]: load two
   BENCH_bab_nodes.json files (committed baseline vs fresh run) and
   flag per-instance and geomean throughput regressions beyond a
   threshold.  Bench files are nested one level ({"rows": {name:
   {...}}}), which the flat trace parser cannot express, so this module
   carries its own small JSON reader; it also accepts the pre-stamp
   flat layout (rows at top level, no schema/commit/date) so the gate
   works against historical baselines. *)

(* --- minimal JSON reader (objects, arrays, strings, numbers, bools,
   null) --- also the structural validator behind the Perfetto-export
   tests, which need arrays the flat trace parser cannot express *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "offset %d: %s" !pos msg)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some (('"' | '\\' | '/') as c) -> Buffer.add_char buf c; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           (* bench files are ASCII; keep non-ASCII escapes lossy-simple *)
           if code < 128 then Buffer.add_char buf (Char.chr code)
           else Buffer.add_char buf '?'
         | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_json_string s =
  match parse_json s with v -> Ok v | exception Bad msg -> Error msg

(* --- bench file model --- *)

type row = {
  nps_cached : float;
  nps_uncached : float option;
  speedup : float option;
  peak_rss_bytes : int option;
}

type bench = {
  commit : string option;
  date : string option;
  geomean_speedup : float option;
  rows : (string * row) list;  (* file order *)
}

let obj_num fields name =
  match List.assoc_opt name fields with Some (Num f) -> Some f | _ -> None

let obj_str fields name =
  match List.assoc_opt name fields with Some (Str s) -> Some s | _ -> None

let row_of_json = function
  | Obj fields ->
    (match obj_num fields "nodes_per_sec_cached" with
     | Some nps_cached ->
       Some
         { nps_cached;
           nps_uncached = obj_num fields "nodes_per_sec_uncached";
           speedup = obj_num fields "speedup";
           peak_rss_bytes = Option.map int_of_float (obj_num fields "peak_rss_bytes") }
     | None ->
       (* kernel bench rows (BENCH_kernels.json) carry ns_per_run;
          expose them as runs/sec so the higher-is-better comparison
          below applies unchanged *)
       (match obj_num fields "ns_per_run" with
        | Some ns when ns > 0.0 ->
          Some
            { nps_cached = 1e9 /. ns;
              nps_uncached = None;
              speedup = None;
              peak_rss_bytes = None }
        | Some _ | None -> None))
  | _ -> None

let load_string text =
  match parse_json text with
  | exception Bad msg -> Error msg
  | Obj fields ->
    (* stamped layout nests the instances under "rows"; the pre-stamp
       layout has them at top level next to "geomean_speedup" *)
    let row_fields =
      match List.assoc_opt "rows" fields with Some (Obj rf) -> rf | _ -> fields
    in
    let rows =
      List.filter_map
        (fun (name, v) ->
          match row_of_json v with Some r -> Some (name, r) | None -> None)
        row_fields
    in
    if rows = [] then Error "no bench rows (no nodes_per_sec_cached fields)"
    else
      Ok
        { commit = obj_str fields "commit";
          date = obj_str fields "date";
          geomean_speedup = obj_num fields "geomean_speedup";
          rows }
  | _ -> Error "top-level value is not an object"

let load_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let text =
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      really_input_string ic (in_channel_length ic)
    in
    (match load_string text with
     | Ok b -> Ok b
     | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

(* --- comparison --- *)

type verdict = {
  name : string;
  baseline_nps : float;
  fresh_nps : float;
  delta_pct : float;  (* negative = fresh slower than baseline *)
  regressed : bool;
  baseline_rss : int option;
  fresh_rss : int option;
}

type report = {
  verdicts : verdict list;
  missing : string list;  (* baseline rows absent from the fresh run *)
  geomean_baseline : float option;
  geomean_fresh : float option;
  geomean_regressed : bool;
  ok : bool;
}

let compare_benches ?(scale_baseline = 1.0) ~max_regress ~baseline ~fresh () =
  let threshold = -.max_regress in
  let verdicts =
    List.filter_map
      (fun (name, (b : row)) ->
        match List.assoc_opt name fresh.rows with
        | None -> None
        | Some (f : row) ->
          let baseline_nps = b.nps_cached *. scale_baseline in
          let delta_pct =
            if baseline_nps <= 0.0 then 0.0
            else 100.0 *. (f.nps_cached -. baseline_nps) /. baseline_nps
          in
          Some
            { name;
              baseline_nps;
              fresh_nps = f.nps_cached;
              delta_pct;
              regressed = delta_pct < threshold;
              baseline_rss = b.peak_rss_bytes;
              fresh_rss = f.peak_rss_bytes })
      baseline.rows
  in
  let missing =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name fresh.rows then None else Some name)
      baseline.rows
  in
  let geomean_baseline =
    Option.map (fun g -> g *. scale_baseline) baseline.geomean_speedup
  in
  let geomean_regressed =
    match (geomean_baseline, fresh.geomean_speedup) with
    | Some b, Some f when b > 0.0 -> 100.0 *. (f -. b) /. b < threshold
    | _ -> false
  in
  { verdicts;
    missing;
    geomean_baseline;
    geomean_fresh = fresh.geomean_speedup;
    geomean_regressed;
    ok =
      missing = []
      && (not geomean_regressed)
      && List.for_all (fun v -> not v.regressed) verdicts }

(* --- instrumentation overhead gate --------------------------------

   Variant rows are named [base@SUFFIX] (the bench binary re-runs an
   instance with a sink or sampling enabled and appends the suffixed
   row); the gate bounds how much cached throughput the variant may
   lose against its own un-suffixed base row in the SAME file, so it
   needs no committed baseline and is immune to machine speed. *)

type overhead_verdict = {
  name : string;  (* base row name *)
  base_nps : float;
  variant_nps : float;
  overhead_pct : float;  (* positive = variant slower *)
  exceeded : bool;
}

type overhead_report = {
  suffix : string;
  max_pct : float;
  overhead_verdicts : overhead_verdict list;
  orphan_variants : string list;  (* variant rows without a base row *)
  overhead_ok : bool;
}

let check_overhead ~suffix ~max_pct bench =
  let tag = "@" ^ suffix in
  let tlen = String.length tag in
  let verdicts = ref [] and orphans = ref [] in
  List.iter
    (fun (name, (v : row)) ->
      let nlen = String.length name in
      if nlen > tlen && String.sub name (nlen - tlen) tlen = tag then begin
        let base = String.sub name 0 (nlen - tlen) in
        match List.assoc_opt base bench.rows with
        | None -> orphans := base :: !orphans
        | Some (b : row) ->
          let overhead_pct =
            if b.nps_cached <= 0.0 then 0.0
            else 100.0 *. (b.nps_cached -. v.nps_cached) /. b.nps_cached
          in
          verdicts :=
            { name = base;
              base_nps = b.nps_cached;
              variant_nps = v.nps_cached;
              overhead_pct;
              exceeded = overhead_pct > max_pct }
            :: !verdicts
      end)
    bench.rows;
  let overhead_verdicts = List.rev !verdicts in
  { suffix;
    max_pct;
    overhead_verdicts;
    orphan_variants = List.rev !orphans;
    overhead_ok =
      (* an empty verdict list means the bench never ran the variant —
         fail loudly rather than letting CI pass vacuously *)
      overhead_verdicts <> []
      && !orphans = []
      && List.for_all (fun v -> not v.exceeded) overhead_verdicts }

let overhead_to_string r =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "overhead gate @%s (max %.1f%%)" r.suffix r.max_pct;
  line "%-16s %12s %12s %9s  %s" "instance" "base n/s" "variant n/s" "overhead"
    "status";
  List.iter
    (fun v ->
      line "%-16s %12.1f %12.1f %+8.2f%%  %s" v.name v.base_nps v.variant_nps
        v.overhead_pct
        (if v.exceeded then "EXCEEDED" else "ok"))
    r.overhead_verdicts;
  List.iter
    (fun name -> line "%-16s variant row present but base row missing" name)
    r.orphan_variants;
  if r.overhead_verdicts = [] then line "no @%s rows in bench file" r.suffix;
  line "gate: %s" (if r.overhead_ok then "PASS" else "FAIL");
  Buffer.contents buf

let mib bytes = float_of_int bytes /. (1024.0 *. 1024.0)

let rss_cell = function Some b -> Printf.sprintf "%.1f" (mib b) | None -> "-"

let report_to_string ~max_regress r =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%-16s %12s %12s %8s %10s %10s  %s" "instance" "base n/s" "fresh n/s"
    "delta" "base MiB" "fresh MiB" "status";
  line "%s" (String.make 84 '-');
  List.iter
    (fun (v : verdict) ->
      line "%-16s %12.1f %12.1f %+7.1f%% %10s %10s  %s" v.name v.baseline_nps
        v.fresh_nps v.delta_pct (rss_cell v.baseline_rss) (rss_cell v.fresh_rss)
        (if v.regressed then "REGRESSED" else "ok"))
    r.verdicts;
  List.iter (fun name -> line "%-16s missing from fresh run" name) r.missing;
  (match (r.geomean_baseline, r.geomean_fresh) with
   | Some b, Some f ->
     line "geomean speedup  %12.3f %12.3f %+7.1f%% %23s %s" b f
       (if b > 0.0 then 100.0 *. (f -. b) /. b else 0.0)
       ""
       (if r.geomean_regressed then "REGRESSED" else "ok")
   | _ -> ());
  line "";
  line "gate: %s (threshold: fresh no more than %.1f%% below baseline)"
    (if r.ok then "PASS" else "FAIL")
    max_regress;
  Buffer.contents buf
