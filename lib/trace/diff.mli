(** Compare two traces of the same instance (e.g. ABONN vs the
    breadth-first baseline) — the paper's RQ1 comparison as one command.

    The diff reports, per side: the reconstructed run statistics
    ({!Summary.run}), the number of node visits needed to reach the
    verdict, and the phase breakdown ({!Phases.t}); plus the divergence
    point of the two visit sequences — the first index at which the two
    engines visit different sub-problems.  Visits are compared by gamma
    when both traces carry gammas (ABONN vs ABONN), by depth otherwise
    (the baselines only record depths). *)

type divergence = {
  index : int;  (** 0-based position in the visit sequences *)
  depth_a : int;
  depth_b : int;
  gamma_a : string option;
  gamma_b : string option;
}

type t = {
  run_a : Summary.run;
  run_b : Summary.run;
  visits_a : int;  (** node visits up to (and incl.) the verdict *)
  visits_b : int;
  divergence : divergence option;
      (** [None] when one visit sequence is a prefix of the other *)
  shared_prefix : int;  (** leading visits identical on both sides *)
  phases_a : Phases.t;
  phases_b : Phases.t;
}

val diff :
  Abonn_obs.Event.envelope list -> Abonn_obs.Event.envelope list -> t
(** [diff a b] compares one run per side (the first run segment of each
    trace). *)

val to_string : ?label_a:string -> ?label_b:string -> t -> string
(** Side-by-side table: verdict, calls, nodes, depth, wall, visits to
    verdict, per-phase seconds with deltas, and the divergence point. *)
