module Event = Abonn_obs.Event

type span = { calls : int; total : float }

type t = {
  wall : float;
  appver : (string * span) list;
  appver_total : span;
  lp : span;
  lp_in_appver : float;
  attack : (string * span) list;
  attack_total : span;
  overhead : float;
}

let zero = { calls = 0; total = 0.0 }
let add s d = { calls = s.calls + 1; total = s.total +. d }

let tally tbl name d =
  Hashtbl.replace tbl name (add (Option.value ~default:zero (Hashtbl.find_opt tbl name)) d)

let sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let of_events events =
  let appver = Hashtbl.create 8 and attack = Hashtbl.create 8 in
  let lp = ref zero and lp_in_appver = ref 0.0 in
  (* Span events are emitted at span end, so children precede their
     enclosing parent in the stream.  Keep the LP/attack spans that have
     not yet been claimed by an enclosing window; when the enclosing
     event arrives, absorb everything inside [t - elapsed, t]. *)
  let pending_lp = ref [] (* (t, elapsed), unclaimed *) in
  let pending_attacks = ref [] (* (t, elapsed, name) top-level so far *) in
  let wall = ref None and t_first = ref None and t_last = ref 0.0 in
  List.iter
    (fun env ->
      let t = env.Event.t in
      if !t_first = None then t_first := Some t;
      t_last := t;
      match env.Event.event with
      | Event.Bound_computed { appver = name; elapsed; _ } ->
        tally appver name elapsed;
        let start = t -. elapsed in
        let inside, outside =
          List.partition (fun (lt, _) -> lt >= start && lt <= t) !pending_lp
        in
        List.iter (fun (_, d) -> lp_in_appver := !lp_in_appver +. d) inside;
        pending_lp := outside
      | Event.Lp_solved { elapsed; _ } ->
        lp := add !lp elapsed;
        pending_lp := (t, elapsed) :: !pending_lp
      | Event.Attack_tried { attack = name; elapsed; _ } ->
        tally attack name elapsed;
        let start = t -. elapsed in
        let nested, top =
          List.partition (fun (at, _, _) -> at >= start && at <= t) !pending_attacks
        in
        ignore nested;
        pending_attacks := (t, elapsed, name) :: top
      | Event.Verdict_reached { elapsed; _ } -> wall := Some elapsed
      | Event.Run_finished { wall = w; _ } -> if !wall = None then wall := Some w
      | _ -> ())
    events;
  let wall =
    match !wall with
    | Some w -> w
    | None -> !t_last -. Option.value ~default:!t_last !t_first
  in
  let appver = sorted appver and attack = sorted attack in
  let total spans =
    List.fold_left
      (fun acc (_, s) -> { calls = acc.calls + s.calls; total = acc.total +. s.total })
      zero spans
  in
  let appver_total = total appver in
  let attack_total =
    List.fold_left
      (fun acc (_, d, _) -> { calls = acc.calls + 1; total = acc.total +. d })
      zero !pending_attacks
  in
  let lp_outside = Float.max 0.0 (!lp.total -. !lp_in_appver) in
  let overhead =
    Float.max 0.0 (wall -. appver_total.total -. lp_outside -. attack_total.total)
  in
  { wall;
    appver;
    appver_total;
    lp = !lp;
    lp_in_appver = !lp_in_appver;
    attack;
    attack_total;
    overhead }

let to_string p =
  let buf = Buffer.create 512 in
  let pct d = if p.wall > 0.0 then 100.0 *. d /. p.wall else 0.0 in
  let line name calls total =
    Buffer.add_string buf
      (Printf.sprintf "  %-24s %8s %12.6f %7.1f%%\n" name
         (if calls >= 0 then string_of_int calls else "")
         total (pct total))
  in
  Buffer.add_string buf
    (Printf.sprintf "phase breakdown (wall %.6f s)\n" p.wall);
  Buffer.add_string buf
    (Printf.sprintf "  %-24s %8s %12s %8s\n" "phase" "calls" "seconds" "wall");
  List.iter (fun (name, s) -> line ("appver." ^ name) s.calls s.total) p.appver;
  line "appver (total)" p.appver_total.calls p.appver_total.total;
  let lp_outside = Float.max 0.0 (p.lp.total -. p.lp_in_appver) in
  line "lp (exact/outside)" (-1) lp_outside;
  if p.lp_in_appver > 0.0 then
    Buffer.add_string buf
      (Printf.sprintf "  %-24s %8s %12.6f (inside appver, not re-charged)\n" "lp (in appver)"
         "" p.lp_in_appver);
  List.iter (fun (name, s) -> line ("attack." ^ name) s.calls s.total) p.attack;
  line "attack (top-level)" p.attack_total.calls p.attack_total.total;
  line "search overhead" (-1) p.overhead;
  Buffer.contents buf
