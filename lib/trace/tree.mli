(** BaB-tree reconstruction from a trace.

    ABONN serialises every evaluated sub-problem Γ into its
    [node_evaluated] event (the gamma string, TRACE_SCHEMA §1.3), and a
    gamma names the whole root-to-node path — so the tree is recoverable
    from the events alone: the parent of ["r3+.r17-"] is ["r3+"], the
    parent of a single token is the root ["ε"].  Baseline traces
    ([frontier_pop], no gamma) cannot be rebuilt as a tree; for those
    {!build} returns no root but still fills the depth profile.

    Leaf status is read off the Def. 1 reward recorded at evaluation
    time: [-inf] proved, [+inf] counterexample, finite = still open
    (the frontier when the trace stopped). *)

type node = {
  gamma : string;  (** full path string, e.g. ["r3+.r17-"] *)
  token : string;  (** last path component, ["ε"] for the root *)
  depth : int;
  phat : float;
  reward : float;  (** reward at evaluation time *)
  seq : int;  (** [seq] of the node's [node_evaluated] event *)
  mutable children : node list;  (** in evaluation order *)
}

type shape = {
  nodes : int;  (** tree nodes (= [node_evaluated] events attached) *)
  max_depth : int;
  depth_counts : int array;  (** [depth_counts.(d)] = nodes at depth [d] *)
  interior : int;
  leaves_proved : int;
  leaves_cex : int;
  leaves_open : int;
  exact_verified : int;  (** [exact_leaf] events (not attachable: no gamma) *)
  exact_falsified : int;
  orphans : int;  (** nodes whose parent never appeared (truncated trace) *)
}

type t = { root : node option; shape : shape }

val root_gamma : string
(** ["ε"] (UTF-8), the gamma string of the unsplit root. *)

val parent_gamma : string -> string option
(** Drop the last path component; [None] for the root. *)

val build : Abonn_obs.Event.envelope list -> t
(** Reconstruct from one run's events.  [root = None] when no
    [node_evaluated] event carries the root gamma; the depth profile in
    [shape] then comes from [frontier_pop]/[node_evaluated] events. *)

val shape_to_string : shape -> string
(** Shape statistics plus an ASCII depth histogram. *)

val render_ascii : ?max_nodes:int -> node -> string
(** Indented rendering, children in evaluation order; stops after
    [max_nodes] (default 200) and prints an ellipsis with the count of
    suppressed nodes. *)

val render_dot : ?max_nodes:int -> node -> string
(** Graphviz DOT: one box per node labelled with token, p̂ and reward;
    proved leaves green, counterexample leaves red, open leaves yellow.
    Default [max_nodes] 2000. *)
