module Event = Abonn_obs.Event

type issue =
  | Malformed of { line : int; msg : string }
  | Seq_gap of { line : int; expected : int; got : int }
  | Time_regression of { line : int; prev : float; got : float }

let issue_line = function
  | Malformed { line; _ } | Seq_gap { line; _ } | Time_regression { line; _ } -> line

let issue_to_string = function
  | Malformed { line; msg } -> Printf.sprintf "line %d: malformed: %s" line msg
  | Seq_gap { line; expected; got } ->
    Printf.sprintf "line %d: seq gap: expected %d, got %d" line expected got
  | Time_regression { line; prev; got } ->
    Printf.sprintf "line %d: time regression: %.6f after %.6f" line got prev

let fold_channel ic ~init ~f =
  let issues = ref [] in
  let report i = issues := i :: !issues in
  let rec go acc line_no prev_seq prev_t =
    match input_line ic with
    | exception End_of_file -> acc
    | "" -> go acc (line_no + 1) prev_seq prev_t
    | line ->
      (match Event.of_json line with
       | Error msg ->
         report (Malformed { line = line_no; msg });
         go acc (line_no + 1) prev_seq prev_t
       | Ok env ->
         if env.Event.seq <> prev_seq + 1 then
           report (Seq_gap { line = line_no; expected = prev_seq + 1; got = env.Event.seq });
         if env.Event.t < prev_t then
           report (Time_regression { line = line_no; prev = prev_t; got = env.Event.t });
         go (f acc env) (line_no + 1) env.Event.seq (Float.max prev_t env.Event.t))
  in
  let acc = go init 1 0 neg_infinity in
  (acc, List.rev !issues)

let fold_file path ~init ~f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  fold_channel ic ~init ~f

let read_file path =
  let events, issues = fold_file path ~init:[] ~f:(fun acc env -> env :: acc) in
  (List.rev events, issues)
