module Event = Abonn_obs.Event

type issue =
  | Malformed of { line : int; msg : string }
  | Seq_gap of { line : int; expected : int; got : int }
  | Time_regression of { line : int; prev : float; got : float }

let issue_line = function
  | Malformed { line; _ } | Seq_gap { line; _ } | Time_regression { line; _ } -> line

let issue_to_string = function
  | Malformed { line; msg } -> Printf.sprintf "line %d: malformed: %s" line msg
  | Seq_gap { line; expected; got } ->
    Printf.sprintf "line %d: seq gap: expected %d, got %d" line expected got
  | Time_regression { line; prev; got } ->
    Printf.sprintf "line %d: time regression: %.6f after %.6f" line got prev

let fold_channel ic ~init ~f =
  let issues = ref [] in
  let report i = issues := i :: !issues in
  let rec go acc line_no prev_seq prev_t =
    match input_line ic with
    | exception End_of_file -> acc
    | "" -> go acc (line_no + 1) prev_seq prev_t
    | line ->
      (match Event.of_json line with
       | Error msg ->
         report (Malformed { line = line_no; msg });
         go acc (line_no + 1) prev_seq prev_t
       | Ok env ->
         if env.Event.seq <> prev_seq + 1 then
           report (Seq_gap { line = line_no; expected = prev_seq + 1; got = env.Event.seq });
         if env.Event.t < prev_t then
           report (Time_regression { line = line_no; prev = prev_t; got = env.Event.t });
         go (f acc env) (line_no + 1) env.Event.seq (Float.max prev_t env.Event.t))
  in
  let acc = go init 1 0 neg_infinity in
  (acc, List.rev !issues)

let fold_file path ~init ~f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  fold_channel ic ~init ~f

let read_file path =
  let events, issues = fold_file path ~init:[] ~f:(fun acc env -> env :: acc) in
  (List.rev events, issues)

(* --- follow (tail) mode ---

   A live trace grows while we read it, and the writer's buffer can cut
   a line anywhere.  The tail keeps a raw fd plus the unterminated
   remainder of the last read: a line is only parsed once its '\n' has
   arrived, so a partially-written record is silently deferred to the
   next poll instead of reported as malformed.  Envelope invariants
   (seq, t) are carried across polls. *)

type tail = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  pending : Buffer.t;  (* bytes after the last '\n' seen so far *)
  mutable line_no : int;
  mutable prev_seq : int;
  mutable prev_t : float;
  mutable offset : int;  (* bytes consumed, including the pending tail *)
}

let tail_open ?(offset = 0) path =
  let fd =
    try Unix.openfile path [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e)))
  in
  if offset > 0 then ignore (Unix.lseek fd offset Unix.SEEK_SET);
  { fd;
    chunk = Bytes.create 65536;
    pending = Buffer.create 256;
    line_no = 1;
    prev_seq = 0;
    prev_t = neg_infinity;
    offset }

let tail_offset t = t.offset

let tail_close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let tail_line t report f line =
  (match line with
   | "" -> ()
   | line ->
     (match Event.of_json line with
      | Error msg -> report (Malformed { line = t.line_no; msg })
      | Ok env ->
        if env.Event.seq <> t.prev_seq + 1 then
          report
            (Seq_gap { line = t.line_no; expected = t.prev_seq + 1; got = env.Event.seq });
        if env.Event.t < t.prev_t then
          report (Time_regression { line = t.line_no; prev = t.prev_t; got = env.Event.t });
        t.prev_seq <- env.Event.seq;
        t.prev_t <- Float.max t.prev_t env.Event.t;
        f env));
  t.line_no <- t.line_no + 1

(* Drain every complete line that has arrived since the last poll and
   hand it to [line] (with its 1-based line number); a final record cut
   mid-line by the writer's buffer stays in [pending] until its '\n'
   shows up on a later poll. *)
let tail_drain t ~line:deliver =
  let rec drain () =
    match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
    | 0 -> ()
    | n ->
      t.offset <- t.offset + n;
      for i = 0 to n - 1 do
        match Bytes.get t.chunk i with
        | '\n' ->
          let line = Buffer.contents t.pending in
          Buffer.clear t.pending;
          deliver line
        | c -> Buffer.add_char t.pending c
      done;
      drain ()
  in
  drain ()

let tail_poll t ~f =
  let issues = ref [] in
  let report i = issues := i :: !issues in
  tail_drain t ~line:(fun line -> tail_line t report f line);
  List.rev !issues

(* Raw-line variant for line-oriented files that are not event traces
   (the run registry among them): same partial-line deferral across
   polls, no envelope parsing or integrity checks.  Empty lines are
   skipped but still advance the line counter. *)
let tail_poll_lines t ~f =
  tail_drain t ~line:(fun line ->
      (match line with "" -> () | line -> f ~line_no:t.line_no line);
      t.line_no <- t.line_no + 1)
