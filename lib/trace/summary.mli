(** Per-run statistics reconstructed from a trace.

    A trace file holds one engine run (CLI [--trace]) or a whole sweep
    (harness traces, delimited by [run_started]/[run_finished]).
    {!segments} cuts the event stream into runs; {!of_events} replays
    one run's events and rebuilds the statistics the engine itself
    reported — verdict, AppVer calls, nodes, max depth, wall time —
    from the event stream alone.

    Reconstruction is exact for the engines whose instrumentation pins
    every statistic to an event:

    - [abonn]: calls = node_evaluated + exact_leaf, nodes =
      node_evaluated, max depth = max node_evaluated depth;
    - [bestfirst]: calls = bound_computed + exact_leaf, nodes = max
      depth from bound_computed;
    - [bab-baseline]: calls = frontier_pop + exact_leaf is exact; node
      and depth counts are derived from frontier sizes and can
      undercount by one split (2 nodes / 1 depth) on timeout, because
      nodes pushed after the final pop are invisible to the trace.

    Harness traces carry the ground truth in [run_finished]; it is kept
    in [reported] so consumers can cross-check the reconstruction. *)

type reported = {
  verdict : string;
  calls : int;
  nodes : int;
  max_depth : int;
  wall : float;
}

type domain_stat = {
  domain : int;
  processed : int;  (** work items, from [domain_summary] *)
  pushed : int;
  stolen : int;
  idle : int;
  events : int;  (** envelopes tagged with this domain in the segment *)
}
(** Per-worker attribution of a parallel ([--domains N > 1]) run,
    merged from the run's [domain_summary] events and the envelope
    [domain] tags (schema §2.14). *)

type pair_check = { kind : string; total : int; mismatch : int }
(** Integrity of one annotation family over the segment.  Annotation
    events are emitted immediately after the event they explain:
    [ucb_decision] after its [node_selected], [frontier_decision] after
    its [frontier_pop], [bound_reuse] after its [bound_computed];
    [branch_decision] names the depth of the node last focused by its
    engine.  [mismatch] counts adjacency violations, plus — in fully
    sampled ([--introspect 1]) traces — eligible hosts that went
    unannotated.  Mismatch counts are zeroed for parallel segments,
    whose interleaving is scheduling-dependent.  Families with no
    events in the segment are omitted. *)

type run = {
  engine : string;  (** ["?"] when the segment has no engine-bearing event *)
  instance : string option;  (** from [run_started] (harness traces only) *)
  verdict : string option;  (** from [verdict_reached] / [run_finished] *)
  calls : int;  (** reconstructed AppVer calls *)
  nodes : int;  (** reconstructed BaB-tree size *)
  max_depth : int;
  wall : float;  (** engine seconds ([verdict_reached]), else event-time span *)
  events : int;  (** envelopes in this run's segment *)
  composite : bool;
      (** the bracket wraps events from a different engine — one wrapper
          run containing whole engine runs (e.g. an [abonn_fuzz] case
          whose oracles run several engines inside).  Per-engine
          reconstruction does not apply, so verdict/calls/nodes/depth
          come from the wrapper's [run_finished] report. *)
  domains : int;
      (** worker domains that left a mark on this segment (envelope tags
          or [domain_summary] events); [0] for sequential traces.  When
          [> 1] the segment's interleaving is scheduling-dependent, so —
          like [composite] — verdict/calls/nodes/depth are taken from
          the engine's own report when one is present. *)
  domain_stats : domain_stat list;  (** per-domain rows, in domain order *)
  pairs : pair_check list;
      (** annotation pair-integrity, one row per family present *)
  reported : reported option;  (** the [run_finished] payload, if any *)
}

val segments : Abonn_obs.Event.envelope list -> Abonn_obs.Event.envelope list list
(** Cut a trace into per-run event lists.  Boundaries: a [run_started]
    opens a run (closing any implicit one); [run_finished] closes it;
    in CLI traces (no harness events) [verdict_reached] closes the run.
    Every event belongs to exactly one segment; a trace with no
    boundary events is a single segment. *)

val of_events : Abonn_obs.Event.envelope list -> run
(** Reconstruct one run from one segment. *)

val runs : Abonn_obs.Event.envelope list -> run list
(** [List.map of_events (segments events)]. *)

val consistent : run -> bool
(** When [reported] is present: does the reconstruction agree on
    verdict, calls, nodes and max depth? [true] when nothing was
    reported. *)

val pairs_ok : run -> bool
(** No annotation family has pair mismatches (vacuously [true] when the
    segment carries no annotations). *)

val to_string : run list -> string
(** Render runs as an aligned table, flagging reconstructed-vs-reported
    mismatches. *)
