(** Anytime-progress curves: search state as a function of trace time.

    One {!point} is appended per search-progress event (node evaluated,
    frontier pop, exact leaf, verdict), tracking the running AppVer-call
    count, node count, max depth, frontier size and best reward — the
    time-to-bound curves used to compare exploration orders (Bunel et
    al. style).  [best_reward] is the maximum Def. 1 potentiality seen
    so far ([+inf] once a counterexample is found); for engines that do
    not score nodes it is the best heap priority, else [nan].

    [frontier] is the engine's open-set size: for the baselines the
    queue/heap size reported by [frontier_pop]; for ABONN the number of
    evaluated-but-unexpanded nodes with finite reward, maintained
    incrementally from the gamma strings. *)

type point = {
  t : float;  (** trace-relative seconds *)
  seq : int;
  calls : int;
  nodes : int;
  max_depth : int;
  frontier : int;
  best_reward : float;
}

val of_events : Abonn_obs.Event.envelope list -> point list
(** Points in trace order (one per progress event). *)

val to_csv : point list -> string
(** Header [t,seq,calls,nodes,max_depth,frontier,best_reward] then one
    row per point; non-finite rewards are spelled [inf]/[-inf]/[nan]. *)
