module Event = Abonn_obs.Event

type reported = {
  verdict : string;
  calls : int;
  nodes : int;
  max_depth : int;
  wall : float;
}

type domain_stat = {
  domain : int;
  processed : int;
  pushed : int;
  stolen : int;
  idle : int;
  events : int;  (** envelopes tagged with this domain *)
}

type pair_check = { kind : string; total : int; mismatch : int }

type run = {
  engine : string;
  instance : string option;
  verdict : string option;
  calls : int;
  nodes : int;
  max_depth : int;
  wall : float;
  events : int;
  composite : bool;
  domains : int;
  domain_stats : domain_stat list;
  pairs : pair_check list;
  reported : reported option;
}

(* --- segmentation --- *)

let segments events =
  (* [current] accumulates the open segment in reverse; [closed] the
     finished segments in reverse.  [harness] is true while inside a
     run_started .. run_finished bracket, where verdict_reached is an
     interior event rather than a terminator. *)
  let closed = ref [] and current = ref [] and harness = ref false in
  let close () =
    if !current <> [] then closed := List.rev !current :: !closed;
    current := [];
    harness := false
  in
  List.iter
    (fun env ->
      match env.Event.event with
      | Event.Run_started _ ->
        close ();
        harness := true;
        current := [ env ]
      | Event.Run_finished _ ->
        current := env :: !current;
        close ()
      | Event.Verdict_reached _ when not !harness ->
        current := env :: !current;
        close ()
      | _ -> current := env :: !current)
    events;
  close ();
  List.rev !closed

(* --- reconstruction --- *)

let of_events events =
  let engine = ref None and instance = ref None and verdict = ref None in
  let reported = ref None in
  (* [bracket] is the engine named by the run_started/run_finished pair;
     interior events from a different engine mark the segment composite
     (one wrapper run containing whole engine runs, e.g. a fuzz case). *)
  let bracket = ref None and foreign = ref false in
  let node_evaluated = ref 0 and frontier_pop = ref 0 and exact_leaf = ref 0 in
  let bound_computed = ref 0 in
  let max_depth = ref 0 and last_frontier = ref 0 in
  let engine_elapsed = ref None in
  let t_first = ref None and t_last = ref 0.0 in
  (* parallel-run attribution: envelope domain tags + domain_summary *)
  let tagged_events : (int, int ref) Hashtbl.t = Hashtbl.create 4 in
  let summaries = ref [] in
  let saw_engine e =
    if !engine = None then engine := Some e;
    (match !bracket with Some b when b <> e -> foreign := true | _ -> ())
  in
  let depth d = if d > !max_depth then max_depth := d in
  (* --- pair integrity (schema: decision events and bound_reuse are
     annotations emitted immediately after the event they explain).
     [prev] is the previous event in stream order; each annotation is
     checked against it, and each annotatable host that went unanswered
     is counted so full-sampling ([--introspect 1]) traces can also
     assert coverage.  Only meaningful for sequential interleavings —
     the caller zeroes the mismatch counts when [domains > 1]. *)
  let feq a b = (Float.is_nan a && Float.is_nan b) || a = b in
  let ucb_total = ref 0 and ucb_mis = ref 0 and ucb_full = ref true in
  let sel_unpaired = ref 0 in
  let fr_total = ref 0 and fr_mis = ref 0 and fr_full = ref true in
  let pop_unpaired = ref [] and fr_engines = ref [] in
  let br_total = ref 0 and br_mis = ref 0 in
  let ru_total = ref 0 and ru_mis = ref 0 in
  (* last depth-bearing engine event: the node a branch_decision splits *)
  let focus : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let prev = ref None in
  let pair_step current =
    (* obligations the previous event leaves open if not answered now *)
    (match !prev with
     | Some (Event.Node_selected { engine = en; depth = d; ucb })
       when not (Float.is_nan ucb) ->
       (match current with
        | Some (Event.Ucb_decision { engine = en'; depth = d'; _ })
          when en' = en && d' = d -> ()
        | _ -> incr sel_unpaired)
     | Some (Event.Frontier_pop { engine = en; priority; _ })
       when not (Float.is_nan priority) ->
       (match current with
        | Some (Event.Frontier_decision { engine = en'; _ }) when en' = en -> ()
        | _ -> pop_unpaired := en :: !pop_unpaired)
     | _ -> ());
    (* the current annotation's own pairing *)
    (match current with
     | Some (Event.Ucb_decision { engine = en; depth = d; sample; _ }) ->
       incr ucb_total;
       if sample > 1 then ucb_full := false;
       (match !prev with
        | Some (Event.Node_selected { engine = en'; depth = d'; ucb })
          when en' = en && d' = d && not (Float.is_nan ucb) -> ()
        | _ -> incr ucb_mis)
     | Some
         (Event.Frontier_decision { engine = en; depth = d; priority; sample; _ })
       ->
       incr fr_total;
       if sample > 1 then fr_full := false;
       if not (List.mem en !fr_engines) then fr_engines := en :: !fr_engines;
       (match !prev with
        | Some
            (Event.Frontier_pop { engine = en'; depth = d'; priority = p'; _ })
          when en' = en && d' = d && feq priority p' -> ()
        | _ -> incr fr_mis)
     | Some (Event.Branch_decision { engine = en; depth = d; _ }) ->
       incr br_total;
       (* engines with no depth-bearing host events (inputsplit) leave
          no focus to check against; that is not a mismatch *)
       (match Hashtbl.find_opt focus en with
        | Some fd when fd <> d -> incr br_mis
        | Some _ | None -> ())
     | Some (Event.Bound_reuse { appver = a; depth = d; _ }) ->
       incr ru_total;
       (match !prev with
        | Some (Event.Bound_computed { appver = a'; depth = d'; _ })
          when a' = a && d' = d -> ()
        | _ -> incr ru_mis)
     | _ -> ());
    (match current with
     | Some (Event.Node_selected { engine = en; depth = d; _ })
     | Some (Event.Node_evaluated { engine = en; depth = d; _ })
     | Some (Event.Frontier_pop { engine = en; depth = d; _ }) ->
       Hashtbl.replace focus en d
     | _ -> ());
    match current with Some e -> prev := Some e | None -> ()
  in
  List.iter
    (fun env ->
      if !t_first = None then t_first := Some env.Event.t;
      t_last := env.Event.t;
      pair_step (Some env.Event.event);
      (match env.Event.domain with
       | Some d ->
         (match Hashtbl.find_opt tagged_events d with
          | Some r -> incr r
          | None -> Hashtbl.replace tagged_events d (ref 1))
       | None -> ());
      match env.Event.event with
      | Event.Run_started { engine = e; instance = i } ->
        if !bracket = None then bracket := Some e;
        saw_engine e;
        instance := Some i
      | Event.Run_finished { engine = e; verdict = v; calls; nodes; max_depth = d; wall; _ }
        ->
        saw_engine e;
        if !verdict = None then verdict := Some v;
        reported := Some { verdict = v; calls; nodes; max_depth = d; wall }
      | Event.Node_selected { engine = e; _ } -> saw_engine e
      | Event.Node_evaluated { engine = e; depth = d; _ } ->
        saw_engine e;
        incr node_evaluated;
        depth d
      | Event.Backprop { engine = e; _ } -> saw_engine e
      | Event.Frontier_pop { engine = e; depth = d; frontier; _ } ->
        saw_engine e;
        incr frontier_pop;
        last_frontier := frontier;
        depth d
      | Event.Exact_leaf { engine = e; depth = d; _ } ->
        saw_engine e;
        incr exact_leaf;
        depth d
      | Event.Bound_computed { depth = d; _ } ->
        incr bound_computed;
        depth d
      (* bound_reuse is a cache-effectiveness annotation on the
         preceding bound_computed, not extra AppVer work: it must not
         perturb call/node reconstruction. *)
      | Event.Lp_solved _ | Event.Lp_warm _ | Event.Attack_tried _
      | Event.Bound_reuse _ | Event.Resource_sample _ -> ()
      | Event.Verdict_reached { engine = e; verdict = v; elapsed } ->
        saw_engine e;
        verdict := Some v;
        engine_elapsed := Some elapsed
      | Event.Domain_summary { engine = e; domain; processed; pushed; stolen; idle }
        ->
        saw_engine e;
        summaries := (domain, processed, pushed, stolen, idle) :: !summaries
      (* decision-level introspection annotates events already counted
         above: it must not perturb call/node reconstruction *)
      | Event.Ucb_decision { engine = e; _ }
      | Event.Branch_decision { engine = e; _ }
      | Event.Frontier_decision { engine = e; _ } -> saw_engine e)
    events;
  pair_step None;
  let engine = Option.value ~default:"?" !engine in
  let calls, nodes =
    match engine with
    | "abonn" -> (!node_evaluated + !exact_leaf, !node_evaluated)
    | "bab-baseline" -> (!frontier_pop + !exact_leaf, !frontier_pop + !last_frontier)
    | "bestfirst" -> (!bound_computed + !exact_leaf, !bound_computed)
    | _ ->
      (* Unknown instrumentation: bound_computed counts AppVer work for
         every built-in approximate verifier. *)
      ( !bound_computed + !exact_leaf,
        Stdlib.max !node_evaluated (Stdlib.max !frontier_pop !bound_computed) )
  in
  let wall =
    match !engine_elapsed with
    | Some e -> e
    | None ->
      (match !reported with
       | Some r -> r.wall
       | None -> !t_last -. Option.value ~default:!t_last !t_first)
  in
  let composite = !foreign && !bracket <> None in
  (* Per-domain attribution: one row per domain that either emitted a
     domain_summary or tagged at least one envelope. *)
  let domain_ids =
    Hashtbl.fold (fun d _ acc -> d :: acc) tagged_events []
    |> List.append (List.map (fun (d, _, _, _, _) -> d) !summaries)
    |> List.sort_uniq Stdlib.compare
  in
  let domain_stats =
    List.map
      (fun d ->
        let processed, pushed, stolen, idle =
          match List.find_opt (fun (d', _, _, _, _) -> d' = d) !summaries with
          | Some (_, p, pu, st, i) -> (p, pu, st, i)
          | None -> (0, 0, 0, 0)
        in
        let events =
          match Hashtbl.find_opt tagged_events d with Some r -> !r | None -> 0
        in
        { domain = d; processed; pushed; stolen; idle; events })
      domain_ids
  in
  let domains =
    match domain_ids with [] -> 0 | ids -> 1 + List.fold_left Stdlib.max 0 ids
  in
  (* A composite bracket wraps whole engine runs: per-engine event
     reconstruction does not apply, so the wrapper's own accounting is
     the ground truth for the row.  A parallel run ([domains > 1]) is
     handled the same way: its event interleaving is scheduling-
     dependent, so sequential reconstruction formulas (e.g. "frontier
     after the last pop") do not apply and the engine's own report is
     taken as truth. *)
  let reported_is_truth = composite || domains > 1 in
  let verdict, calls, nodes, max_depth, wall =
    match (reported_is_truth, !reported) with
    | true, Some r -> (Some r.verdict, r.calls, r.nodes, r.max_depth, r.wall)
    | _ -> (!verdict, calls, nodes, !max_depth, wall)
  in
  (* Coverage (host without annotation) is only a defect under full
     sampling: with --introspect 1 every eligible host must be answered;
     a sampled trace legitimately skips most.  Adjacency violations
     (annotation with the wrong host) are always defects — except in a
     parallel interleaving, where adjacency itself is scheduling-
     dependent, so mismatch counts are zeroed like the reported-stats
     checks. *)
  let pairs =
    let sel_mis = if !ucb_total > 0 && !ucb_full then !sel_unpaired else 0 in
    let pop_mis =
      if !fr_total > 0 && !fr_full then
        List.length (List.filter (fun e -> List.mem e !fr_engines) !pop_unpaired)
      else 0
    in
    List.filter
      (fun p -> p.total > 0)
      [ { kind = "ucb"; total = !ucb_total; mismatch = !ucb_mis + sel_mis };
        { kind = "frontier"; total = !fr_total; mismatch = !fr_mis + pop_mis };
        { kind = "branch"; total = !br_total; mismatch = !br_mis };
        { kind = "bound_reuse"; total = !ru_total; mismatch = !ru_mis } ]
  in
  let pairs =
    if domains > 1 then List.map (fun p -> { p with mismatch = 0 }) pairs
    else pairs
  in
  { engine = (if composite then Option.value ~default:engine !bracket else engine);
    instance = !instance;
    verdict;
    calls;
    nodes;
    max_depth;
    wall;
    events = List.length events;
    composite;
    domains;
    domain_stats;
    pairs;
    reported = !reported }

let runs events = List.map of_events (segments events)

let consistent run =
  match run.reported with
  | None -> true
  | Some r ->
    Some r.verdict = run.verdict && r.calls = run.calls && r.nodes = run.nodes
    && r.max_depth = run.max_depth

let pairs_ok run = List.for_all (fun p -> p.mismatch = 0) run.pairs

(* --- rendering --- *)

let to_string rs =
  let buf = Buffer.create 512 in
  let header =
    Printf.sprintf "%-4s %-12s %-16s %-10s %8s %8s %6s %10s %7s" "#" "engine" "instance"
      "verdict" "calls" "nodes" "depth" "wall s" "events"
  in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length header) '-');
  Buffer.add_char buf '\n';
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf "%-4d %-12s %-16s %-10s %8d %8d %6d %10.4f %7d" (i + 1) r.engine
           (Option.value ~default:"-" r.instance)
           (Option.value ~default:"open" r.verdict)
           r.calls r.nodes r.max_depth r.wall r.events);
      if not (consistent r) then begin
        Buffer.add_string buf "  [MISMATCH";
        (match r.reported with
         | Some rep ->
           Buffer.add_string buf
             (Printf.sprintf " reported calls=%d nodes=%d depth=%d verdict=%s" rep.calls
                rep.nodes rep.max_depth rep.verdict)
         | None -> ());
        Buffer.add_char buf ']'
      end;
      Buffer.add_char buf '\n';
      if r.pairs <> [] then begin
        Buffer.add_string buf "     pairs:";
        List.iter
          (fun p ->
            Buffer.add_string buf
              (if p.mismatch = 0 then Printf.sprintf "  %s %d ok" p.kind p.total
               else
                 Printf.sprintf "  %s %d [MISMATCH %d]" p.kind p.total
                   p.mismatch))
          r.pairs;
        Buffer.add_char buf '\n'
      end;
      if r.domains > 1 then
        List.iter
          (fun d ->
            Buffer.add_string buf
              (Printf.sprintf
                 "     domain %-2d   processed %8d   pushed %8d   stolen %6d   idle %8d   events %7d\n"
                 d.domain d.processed d.pushed d.stolen d.idle d.events))
          r.domain_stats)
    rs;
  Buffer.contents buf
