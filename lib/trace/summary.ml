module Event = Abonn_obs.Event

type reported = {
  verdict : string;
  calls : int;
  nodes : int;
  max_depth : int;
  wall : float;
}

type domain_stat = {
  domain : int;
  processed : int;
  pushed : int;
  stolen : int;
  idle : int;
  events : int;  (** envelopes tagged with this domain *)
}

type run = {
  engine : string;
  instance : string option;
  verdict : string option;
  calls : int;
  nodes : int;
  max_depth : int;
  wall : float;
  events : int;
  composite : bool;
  domains : int;
  domain_stats : domain_stat list;
  reported : reported option;
}

(* --- segmentation --- *)

let segments events =
  (* [current] accumulates the open segment in reverse; [closed] the
     finished segments in reverse.  [harness] is true while inside a
     run_started .. run_finished bracket, where verdict_reached is an
     interior event rather than a terminator. *)
  let closed = ref [] and current = ref [] and harness = ref false in
  let close () =
    if !current <> [] then closed := List.rev !current :: !closed;
    current := [];
    harness := false
  in
  List.iter
    (fun env ->
      match env.Event.event with
      | Event.Run_started _ ->
        close ();
        harness := true;
        current := [ env ]
      | Event.Run_finished _ ->
        current := env :: !current;
        close ()
      | Event.Verdict_reached _ when not !harness ->
        current := env :: !current;
        close ()
      | _ -> current := env :: !current)
    events;
  close ();
  List.rev !closed

(* --- reconstruction --- *)

let of_events events =
  let engine = ref None and instance = ref None and verdict = ref None in
  let reported = ref None in
  (* [bracket] is the engine named by the run_started/run_finished pair;
     interior events from a different engine mark the segment composite
     (one wrapper run containing whole engine runs, e.g. a fuzz case). *)
  let bracket = ref None and foreign = ref false in
  let node_evaluated = ref 0 and frontier_pop = ref 0 and exact_leaf = ref 0 in
  let bound_computed = ref 0 in
  let max_depth = ref 0 and last_frontier = ref 0 in
  let engine_elapsed = ref None in
  let t_first = ref None and t_last = ref 0.0 in
  (* parallel-run attribution: envelope domain tags + domain_summary *)
  let tagged_events : (int, int ref) Hashtbl.t = Hashtbl.create 4 in
  let summaries = ref [] in
  let saw_engine e =
    if !engine = None then engine := Some e;
    (match !bracket with Some b when b <> e -> foreign := true | _ -> ())
  in
  let depth d = if d > !max_depth then max_depth := d in
  List.iter
    (fun env ->
      if !t_first = None then t_first := Some env.Event.t;
      t_last := env.Event.t;
      (match env.Event.domain with
       | Some d ->
         (match Hashtbl.find_opt tagged_events d with
          | Some r -> incr r
          | None -> Hashtbl.replace tagged_events d (ref 1))
       | None -> ());
      match env.Event.event with
      | Event.Run_started { engine = e; instance = i } ->
        if !bracket = None then bracket := Some e;
        saw_engine e;
        instance := Some i
      | Event.Run_finished { engine = e; verdict = v; calls; nodes; max_depth = d; wall; _ }
        ->
        saw_engine e;
        if !verdict = None then verdict := Some v;
        reported := Some { verdict = v; calls; nodes; max_depth = d; wall }
      | Event.Node_selected { engine = e; _ } -> saw_engine e
      | Event.Node_evaluated { engine = e; depth = d; _ } ->
        saw_engine e;
        incr node_evaluated;
        depth d
      | Event.Backprop { engine = e; _ } -> saw_engine e
      | Event.Frontier_pop { engine = e; depth = d; frontier; _ } ->
        saw_engine e;
        incr frontier_pop;
        last_frontier := frontier;
        depth d
      | Event.Exact_leaf { engine = e; depth = d; _ } ->
        saw_engine e;
        incr exact_leaf;
        depth d
      | Event.Bound_computed { depth = d; _ } ->
        incr bound_computed;
        depth d
      (* bound_reuse is a cache-effectiveness annotation on the
         preceding bound_computed, not extra AppVer work: it must not
         perturb call/node reconstruction. *)
      | Event.Lp_solved _ | Event.Attack_tried _ | Event.Bound_reuse _
      | Event.Resource_sample _ -> ()
      | Event.Verdict_reached { engine = e; verdict = v; elapsed } ->
        saw_engine e;
        verdict := Some v;
        engine_elapsed := Some elapsed
      | Event.Domain_summary { engine = e; domain; processed; pushed; stolen; idle }
        ->
        saw_engine e;
        summaries := (domain, processed, pushed, stolen, idle) :: !summaries)
    events;
  let engine = Option.value ~default:"?" !engine in
  let calls, nodes =
    match engine with
    | "abonn" -> (!node_evaluated + !exact_leaf, !node_evaluated)
    | "bab-baseline" -> (!frontier_pop + !exact_leaf, !frontier_pop + !last_frontier)
    | "bestfirst" -> (!bound_computed + !exact_leaf, !bound_computed)
    | _ ->
      (* Unknown instrumentation: bound_computed counts AppVer work for
         every built-in approximate verifier. *)
      ( !bound_computed + !exact_leaf,
        Stdlib.max !node_evaluated (Stdlib.max !frontier_pop !bound_computed) )
  in
  let wall =
    match !engine_elapsed with
    | Some e -> e
    | None ->
      (match !reported with
       | Some r -> r.wall
       | None -> !t_last -. Option.value ~default:!t_last !t_first)
  in
  let composite = !foreign && !bracket <> None in
  (* Per-domain attribution: one row per domain that either emitted a
     domain_summary or tagged at least one envelope. *)
  let domain_ids =
    Hashtbl.fold (fun d _ acc -> d :: acc) tagged_events []
    |> List.append (List.map (fun (d, _, _, _, _) -> d) !summaries)
    |> List.sort_uniq Stdlib.compare
  in
  let domain_stats =
    List.map
      (fun d ->
        let processed, pushed, stolen, idle =
          match List.find_opt (fun (d', _, _, _, _) -> d' = d) !summaries with
          | Some (_, p, pu, st, i) -> (p, pu, st, i)
          | None -> (0, 0, 0, 0)
        in
        let events =
          match Hashtbl.find_opt tagged_events d with Some r -> !r | None -> 0
        in
        { domain = d; processed; pushed; stolen; idle; events })
      domain_ids
  in
  let domains =
    match domain_ids with [] -> 0 | ids -> 1 + List.fold_left Stdlib.max 0 ids
  in
  (* A composite bracket wraps whole engine runs: per-engine event
     reconstruction does not apply, so the wrapper's own accounting is
     the ground truth for the row.  A parallel run ([domains > 1]) is
     handled the same way: its event interleaving is scheduling-
     dependent, so sequential reconstruction formulas (e.g. "frontier
     after the last pop") do not apply and the engine's own report is
     taken as truth. *)
  let reported_is_truth = composite || domains > 1 in
  let verdict, calls, nodes, max_depth, wall =
    match (reported_is_truth, !reported) with
    | true, Some r -> (Some r.verdict, r.calls, r.nodes, r.max_depth, r.wall)
    | _ -> (!verdict, calls, nodes, !max_depth, wall)
  in
  { engine = (if composite then Option.value ~default:engine !bracket else engine);
    instance = !instance;
    verdict;
    calls;
    nodes;
    max_depth;
    wall;
    events = List.length events;
    composite;
    domains;
    domain_stats;
    reported = !reported }

let runs events = List.map of_events (segments events)

let consistent run =
  match run.reported with
  | None -> true
  | Some r ->
    Some r.verdict = run.verdict && r.calls = run.calls && r.nodes = run.nodes
    && r.max_depth = run.max_depth

(* --- rendering --- *)

let to_string rs =
  let buf = Buffer.create 512 in
  let header =
    Printf.sprintf "%-4s %-12s %-16s %-10s %8s %8s %6s %10s %7s" "#" "engine" "instance"
      "verdict" "calls" "nodes" "depth" "wall s" "events"
  in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length header) '-');
  Buffer.add_char buf '\n';
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf "%-4d %-12s %-16s %-10s %8d %8d %6d %10.4f %7d" (i + 1) r.engine
           (Option.value ~default:"-" r.instance)
           (Option.value ~default:"open" r.verdict)
           r.calls r.nodes r.max_depth r.wall r.events);
      if not (consistent r) then begin
        Buffer.add_string buf "  [MISMATCH";
        (match r.reported with
         | Some rep ->
           Buffer.add_string buf
             (Printf.sprintf " reported calls=%d nodes=%d depth=%d verdict=%s" rep.calls
                rep.nodes rep.max_depth rep.verdict)
         | None -> ());
        Buffer.add_char buf ']'
      end;
      Buffer.add_char buf '\n';
      if r.domains > 1 then
        List.iter
          (fun d ->
            Buffer.add_string buf
              (Printf.sprintf
                 "     domain %-2d   processed %8d   pushed %8d   stolen %6d   idle %8d   events %7d\n"
                 d.domain d.processed d.pushed d.stolen d.idle d.events))
          r.domain_stats)
    rs;
  Buffer.contents buf
