(** Wall-time hotspot attribution: phase x tree-depth x layer.

    {!Phases} answers "where did the time go" per phase; this module
    splits the same spans by BaB-tree depth and warm-start layer so a
    regression can be localised ("DeepPoly at depth 7, cold starts").
    Span absorption follows the {!Phases} contract: span events are
    emitted at span end, LP solves inside a [bound_computed] window are
    part of its [elapsed] (not re-charged), leftover LP spans are
    exact-check work attributed to the next [exact_leaf]'s depth, and
    nested attack spans fold into their top-level attack.

    The layer of a [bound_computed] row comes from the immediately
    following [bound_reuse] annotation (same appver and depth) when one
    is present; a bound with no annotation was a cold full propagation,
    layer [0]. *)

type row = {
  phase : string;
      (** ["appver.<name>"], ["lp.exact"] or ["attack.<name>"] *)
  depth : int;  (** BaB-tree depth; [-1] when the phase carries none *)
  layer : int;  (** warm-start layer ([0] = cold); [-1] = not applicable *)
  calls : int;
  seconds : float;
}

type t = {
  engine : string;
  wall : float;
  overhead : float;  (** wall not attributed to any row *)
  rows : row list;  (** sorted by [seconds], descending *)
}

val of_events : Abonn_obs.Event.envelope list -> t
(** Attribute one run's segment. *)

val to_string : ?limit:int -> t -> string
(** Ranked table with per-row and cumulative wall shares; at most
    [limit] rows (default 30). *)

val to_flame : t -> string
(** Folded-stack output for flamegraph tooling, one line per row:
    [engine;phase;depth_D;layer_L <microseconds>] (the depth/layer
    frames are omitted when [-1]; weights are at least 1 µs so no
    nonzero row vanishes). *)
