(** Per-phase wall-time attribution for one run.

    Sums the [elapsed] payloads of the span-bearing events into the
    phases the paper reasons about — approximate verification (AppVer),
    exact LP solving, adversarial attacks — and charges whatever is left
    of the engine wall time to search overhead (selection, branching,
    queue/tree maintenance, instrumentation).

    Two kinds of nesting are untangled using event timestamps (a
    span-bearing event is emitted at the {e end} of its span, so its
    window is [[t - elapsed, t]]):

    - LP solves made {e inside} an AppVer computation (the [lp] AppVer
      adapter, exact-leaf resolutions are outside) are already part of
      the AppVer phase and are not double-charged;
    - [best-effort] attack events include their sub-attacks; nested
      attack events are excluded from the attack phase total. *)

type span = { calls : int; total : float }

type t = {
  wall : float;  (** engine wall seconds (verdict_reached, else t-span) *)
  appver : (string * span) list;  (** per AppVer name, sorted *)
  appver_total : span;
  lp : span;  (** every simplex solve *)
  lp_in_appver : float;  (** seconds of LP solves inside AppVer windows *)
  attack : (string * span) list;  (** per attack name, sorted *)
  attack_total : span;  (** top-level attack time (nested removed) *)
  overhead : float;  (** wall − appver − exact LP − attacks, clamped ≥ 0 *)
}

val of_events : Abonn_obs.Event.envelope list -> t

val to_string : t -> string
(** Aligned phase table with absolute seconds and percentage of wall. *)
