(** Campaign analytics over the run registry.

    Where {!Summary}/{!Phases} explain one run, this module aggregates
    every registry line (all record schemas 1-3, any number of files)
    into the instance-set view the paper's evaluation is told in:
    solved-vs-time cactus curves, PAR-2 scores, per-engine x per-family
    win/loss matrices, cross-commit trends, and a cross-commit
    attribution that joins two commits' runs — optionally through their
    traces via {!Phases}/{!Explain} — into a causal "why did commit B
    get slower" breakdown.

    Every renderer is deterministic and byte-stable: identical inputs
    produce identical bytes, so the outputs serve as golden-test
    subjects and committed CI artifacts. *)

type issue = { file : string; line : int; msg : string }

type t = {
  records : Registry.record list;  (** file order, then line order *)
  issues : issue list;  (** unparseable lines, positioned *)
}

val load : string list -> (t, string) result
(** Ingest registry files in order.  [Error] on an unreadable file;
    unparseable lines are collected as issues, not errors. *)

(** {1 Normalisation} *)

val instance_key : Registry.record -> string
(** The instance with a bench ["@dN"] domains suffix stripped (other
    ["@..."] variant suffixes are genuine instance identity and stay). *)

val effective_domains : Registry.record -> int
(** The record's parallel dimension: an ["@dN"] instance suffix (how
    schema-1 bench rows encoded it) wins over the [domains] field. *)

val family : Registry.record -> string
(** ["source_format/prefix/dN"] — the three family axes (source format,
    instance-name prefix before the first separator, domains). *)

val solved : Registry.record -> bool
(** ["verified"] or ["falsified..."] verdicts; timeouts and anything
    else count as unsolved. *)

(** {1 Commit timeline and selection} *)

val commits : t -> string list
(** Commits in first-appearance order (min [ts], then commit string —
    ISO-8601 UTC strings sort chronologically as bytes). *)

val head_commit : t -> string option
(** The newest commit, or [None] on an empty registry. *)

val select : commit:string -> t -> Registry.record list
(** The commit's runs, deduplicated to the latest record per identity
    (engine, model, instance, seed, domains, source format) and
    returned in deterministic sorted order. *)

(** {1 Analytics} *)

type cactus_point = { nth : int; wall : float }

val cactus : Registry.record list -> (string * cactus_point list) list
(** Per engine (sorted): the k-th cheapest solved run against its wall
    time — the classic solved-vs-time staircase. *)

val cactus_to_csv : (string * cactus_point list) list -> string

val cactus_to_svg : (string * cactus_point list) list -> string
(** Self-contained SVG plot (fixed canvas, palette and numeric formats). *)

type par2_row = {
  engine : string;
  runs : int;
  solved_n : int;
  par2 : float;
  geomean_solved_wall : float;  (** [nan] when nothing solved *)
}

val par2 : ?budget:float -> Registry.record list -> float * par2_row list
(** PAR-2 per engine: solved runs cost their wall time, unsolved runs
    twice the budget.  The registry records no per-run budget, so it
    defaults to the longest wall in the selection; the budget actually
    used is returned first. *)

type cell = { cell_runs : int; cell_solved : int; wins : int; losses : int }

val matrix :
  Registry.record list -> string list * string list * (string -> string -> cell)
(** [(engines, families, lookup)].  Within a family, engines compete
    per identity: the strictly fastest solver wins; leaving an identity
    unsolved that some other engine solved is a loss. *)

type trend_row = {
  trend_commit : string;
  first_ts : string;
  trend_runs : int;
  trend_solved : int;
  trend_par2 : float;  (** runs-weighted mean of the per-engine PAR-2 rows *)
  trend_geomean : float;
}

val trends : ?budget:float -> t -> trend_row list
(** One row per commit in timeline order. *)

(** {1 Cross-commit attribution} *)

type pair_delta = {
  pair_engine : string;
  pair_instance : string;
  base_wall : float;
  head_wall : float;
  delta : float;  (** positive = head slower *)
  base_solved : bool;
  head_solved : bool;
}

type attribution = {
  base_commit : string;
  head_commit : string;
  pairs : pair_delta list;  (** sorted, slowest regressions first *)
  unmatched_base : int;
  unmatched_head : int;
  total_delta : float;
  newly_unsolved : int;
  newly_solved : int;
}

val attribute : base:string -> head:string -> t -> attribution
(** Join the two commits' selections on run identity. *)

type trace_attribution = {
  phase_deltas : (string * float * float) list;  (** name, base s, head s *)
  dominant : (string * float) option;
      (** the phase with the largest positive (slower-in-head) delta *)
  wasted_base : float;
  wasted_head : float;
  reuse_events_base : int;
  reuse_events_head : int;
  layers_skipped_base : int;
  layers_skipped_head : int;
}

val trace_attribute :
  base:Abonn_obs.Event.envelope list ->
  head:Abonn_obs.Event.envelope list ->
  trace_attribution
(** Charge a wall-time regression to phases by joining the two traces'
    {!Phases} accounting, and surface search-quality shifts via the
    {!Explain} wasted-work fraction and the bound_reuse annotations. *)

(** {1 Rendering} *)

type format = Md | Csv | Svg

val format_of_string : string -> format option

val report :
  ?against:string ->
  ?trace_pair:trace_attribution ->
  ?budget:float ->
  ?commit:string ->
  t ->
  format ->
  (string, string) result
(** The full campaign report.  [Md] renders every section (PAR-2,
    cactus summary, engine x family matrix, cross-commit trend, and —
    with [?against] / [?trace_pair] — the attribution sections); [Csv]
    and [Svg] render the cactus curves of the selected commit.
    [?commit] defaults to {!head_commit}; unknown commits are
    [Error]. *)
