(* Build/run provenance stamps shared by the bench binaries and the run
   registry.  Everything degrades gracefully: outside a git checkout the
   commit is "unknown", and ABONN_GIT_COMMIT overrides the lookup so CI
   can stamp results without a .git directory (e.g. shallow exports). *)

let chomp s =
  let n = String.length s in
  let n = if n > 0 && s.[n - 1] = '\n' then n - 1 else n in
  String.sub s 0 n

let run_line cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try Some (chomp (input_line ic)) with End_of_file -> None in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, Some l when l <> "" -> Some l
    | _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None

let git_commit () =
  match Sys.getenv_opt "ABONN_GIT_COMMIT" with
  | Some c when c <> "" -> c
  | Some _ | None -> (
    match run_line "git rev-parse --short HEAD 2>/dev/null" with
    | Some c -> c
    | None -> "unknown")

let iso_of ts =
  let tm = Unix.gmtime ts in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let iso_now () = iso_of (Unix.gettimeofday ())
