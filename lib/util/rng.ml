type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to 62 bits so the value stays non-negative in OCaml's 63-bit
     native int. *)
  let raw = Int64.to_int (Int64.logand (int64 t) 0x3FFFFFFFFFFFFFFFL) in
  raw mod bound

let uniform t =
  (* 53 random bits scaled to [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound = uniform t *. bound

let range t lo hi =
  (* Normalise the interval so reversed bounds cannot silently flip the
     distribution's direction (lo + u*(hi-lo) decreases when hi < lo);
     equal bounds are a degenerate one-point distribution.  The generator
     is always advanced so call sites stay stream-stable regardless of
     the bounds they pass. *)
  let u = uniform t in
  if lo = hi then lo
  else
    let lo, hi = if lo <= hi then (lo, hi) else (hi, lo) in
    lo +. (u *. (hi -. lo))

let gaussian t =
  let rec draw () =
    let u1 = uniform t in
    if u1 <= 1e-300 then draw () else u1
  in
  let u1 = draw () in
  let u2 = uniform t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))
