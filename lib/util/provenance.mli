(** Build/run provenance stamps for bench results and the run registry.

    Keeps every persisted measurement traceable to the code that
    produced it without making the library depend on git being
    available. *)

val git_commit : unit -> string
(** Short commit hash of the working tree.  The [ABONN_GIT_COMMIT]
    environment variable, when set and non-empty, takes precedence
    (lets CI stamp results without a [.git] directory); otherwise
    [git rev-parse --short HEAD] is consulted, and ["unknown"] is
    returned when neither source works. *)

val iso_of : float -> string
(** UTC ISO-8601 timestamp ([YYYY-MM-DDThh:mm:ssZ]) of a Unix time. *)

val iso_now : unit -> string
(** {!iso_of} of the current time. *)
