(** Execution budgets for verification runs.

    The paper uses a 1000 s wall-clock timeout per problem.  For
    reproducible CI runs we also support deterministic budgets expressed as
    a maximum number of [AppVer] calls, which dominates verification cost.
    A budget can combine both limits; whichever trips first terminates the
    run with verdict [timeout]. *)

type t

val unlimited : unit -> t
(** Never exhausts. *)

val of_calls : int -> t
(** [of_calls n] exhausts after [n] recorded AppVer calls. *)

val of_seconds : float -> t
(** [of_seconds s] exhausts [s] seconds after creation. *)

val combine : ?calls:int -> ?seconds:float -> unit -> t
(** Budget that trips on whichever limit is reached first. *)

val record_call : t -> unit
(** Count one approximate-verifier invocation. *)

val calls_used : t -> int
(** Number of calls recorded so far. *)

val elapsed : t -> float
(** Wall-clock seconds since creation. *)

val exhausted : t -> bool
(** True once any limit has been reached.  Limits are inclusive at
    exactly-zero remaining: [of_calls 0], [of_seconds 0.] and any
    negative limit (clamped to zero) are exhausted from birth, so a
    caller that checks the budget before its first unit of work never
    starts. *)
