(** Positioned parse errors shared by every front-end parser.

    The text parsers ({!Abonn_spec.Problem_file}, {!Abonn_spec.Vnnlib})
    report 1-based line/column positions plus the offending token; the
    binary ONNX reader ({!Abonn_nn.Onnx}) reports a byte offset.  Both
    raise the same exception so [abonn_cli] (and any other consumer)
    prints one uniform diagnostic shape:

    {v
    file.vnnlib:12:9: unbalanced ')' (at ")")
    net.onnx: byte 132: truncated varint
    v} *)

type pos =
  | Line of { line : int; col : int }  (** 1-based, text formats *)
  | Byte of { offset : int }  (** 0-based, binary formats *)

type t = {
  source : string;  (** file path, or a caller-chosen label like ["<string>"] *)
  pos : pos;
  token : string;  (** offending token / byte rendering; [""] when none applies *)
  msg : string;
}

exception Error of t

val error :
  source:string -> pos:pos -> token:string -> ('a, unit, string, 'b) format4 -> 'a
(** [error ~source ~pos ~token fmt ...] raises {!Error} with a formatted
    message. *)

val to_string : t -> string
(** [source:line:col: msg (at token)] or [source: byte N: msg]. *)

val with_source : string -> (unit -> 'a) -> 'a
(** Re-raise any escaping {!Error} with [source] substituted for the
    placeholder ["<string>"] — lets [of_string]-style parsers stay
    path-agnostic while [load path] reports the real file. *)
