(* [calls] is atomic: a parallel run ([--domains N > 1]) shares one
   budget across all worker domains, so the call counter — and with it
   [exhausted] — must stay exact under concurrent [record_call]s. *)
type t = {
  max_calls : int option;
  max_seconds : float option;
  started : float;
  calls : int Atomic.t;
}

let now () = Unix.gettimeofday ()

let make ?calls ?seconds () =
  (* Clamp negative limits to zero: a budget with nothing left is born
     exhausted rather than relying on [elapsed >= negative] holding by
     accident of float comparison. *)
  let clamp_int = Option.map (fun n -> if n < 0 then 0 else n) in
  let clamp_float = Option.map (fun s -> if s < 0.0 then 0.0 else s) in
  { max_calls = clamp_int calls;
    max_seconds = clamp_float seconds;
    started = now ();
    calls = Atomic.make 0 }

let unlimited () = make ()

let of_calls n = make ~calls:n ()

let of_seconds s = make ~seconds:s ()

let combine ?calls ?seconds () = make ?calls ?seconds ()

let record_call t = Atomic.incr t.calls

let calls_used t = Atomic.get t.calls

let elapsed t = now () -. t.started

let exhausted t =
  let calls_out =
    match t.max_calls with Some n -> Atomic.get t.calls >= n | None -> false
  in
  let time_out = match t.max_seconds with Some s -> elapsed t >= s | None -> false in
  calls_out || time_out
