type pos = Line of { line : int; col : int } | Byte of { offset : int }

type t = {
  source : string;
  pos : pos;
  token : string;
  msg : string;
}

exception Error of t

let error ~source ~pos ~token fmt =
  Printf.ksprintf (fun msg -> raise (Error { source; pos; token; msg })) fmt

let to_string e =
  let where =
    match e.pos with
    | Line { line; col } -> Printf.sprintf "%s:%d:%d" e.source line col
    | Byte { offset } -> Printf.sprintf "%s: byte %d" e.source offset
  in
  if e.token = "" then Printf.sprintf "%s: %s" where e.msg
  else Printf.sprintf "%s: %s (at %S)" where e.msg e.token

let with_source source f =
  try f ()
  with Error e when e.source = "<string>" -> raise (Error { e with source })
