(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    every experiment, every trained model and every synthetic dataset is
    reproducible from a single integer seed.  The generator is SplitMix64,
    which is small, fast and has no shared global state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split t] derives a statistically independent generator from [t],
    advancing [t] once.  Use it to give substreams to sub-components. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val range : t -> float -> float -> float
(** [range t lo hi] is uniform in [\[lo, hi)].  Reversed bounds are
    normalised ([range t hi lo] draws from the same interval) and equal
    bounds return that point; the generator advances exactly once in
    every case. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.  Raises [Invalid_argument] on empty array. *)
