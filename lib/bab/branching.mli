(** ReLU selection heuristics — the [H] of Alg. 1.

    Given a node Γ and the AppVer's pre-activation bounds at that node, a
    heuristic picks an *unstable, not yet constrained* ReLU to split on
    — returned as a {!choice} carrying the winner's global index plus
    the introspection context (score, best rejected alternative,
    candidate count) — or [None] when no such ReLU exists (the node is
    then resolved exactly, see [Abonn_bab.Exact]).

    Heuristics are two-stage: [prepare] runs once per verification
    problem (pre-computing, e.g., layer-sensitivity matrices) and yields
    a cheap per-node chooser.  Following the paper (§III), the default is
    the DeepSplit-style indirect-effect heuristic [14]; BaBSR [10],
    FSB-lite [15] and a widest-interval baseline are also provided, and
    ABONN is orthogonal to this choice. *)

type choice = {
  relu : int;  (** global index of the chosen ReLU (the decision) *)
  score : float;  (** the heuristic's score for the winner *)
  runner_up : int;
      (** global index of the best rejected candidate ([-1] if the
          winner was the only candidate) *)
  runner_up_score : float;  (** its score ([nan] if none) *)
  candidates : int;  (** how many splittable neurons were considered *)
}
(** A branching decision plus the context introspection needs: how
    decisive the heuristic was (winner vs. best-rejected margin) and
    over how many alternatives.  Engines split on [relu]; the rest
    feeds the optional [branch_decision] trace event. *)

type chooser =
  gamma:Abonn_spec.Split.gamma ->
  pre_bounds:Abonn_prop.Bounds.t array ->
  choice option

type t = {
  name : string;
  prepare : Abonn_spec.Problem.t -> chooser;
}

val widest : t
(** Split the unstable neuron with the widest pre-activation interval. *)

val babsr : t
(** BaBSR-style score: the triangle relaxation's intercept gap
    [u·(−l)/(u−l)], i.e. how much slack the relaxation introduces at this
    neuron. *)

val deepsplit : t
(** DeepSplit-style indirect effect: relaxation gap weighted by the
    neuron's sensitivity — the accumulated absolute weight mass on every
    path from the neuron to the property outputs.  Default heuristic. *)

val fsb : t
(** Filtered smart branching: shortlist the top candidates by
    [deepsplit] score, then evaluate each by actually clamping the
    neuron and propagating cheap interval bounds for both children;
    pick the candidate whose worse child improves most. *)

val all : t list
val find : string -> t option
val default : t
(** [deepsplit]. *)

val emit_decision :
  engine:string -> kind:string -> depth:int -> choice -> unit
(** Emit a [branch_decision] trace event for one decision, subject to
    the {!Abonn_obs.Introspect} gate and sampling draw.  [kind] is
    ["relu"] for the heuristics above; the inputsplit engine reuses
    this with [kind = "input"] and the dimension index in
    [choice.relu].  No-op (one boolean load) when tracing or
    introspection is off. *)
