(** Parallel BaB frontier: the engine-agnostic glue between the BaB
    engines and the work-stealing domain pool ([Abonn_par.Pool]).

    Engines keep their sequential loops untouched and bit-for-bit
    reproducible ([--domains 1] never enters this module); with
    [domains > 1] they restate the loop body as a pool work function
    over self-contained frontier items (each item carries its parent's
    incremental bound state, PR "incremental bound propagation", so any
    domain can expand any node).  This module owns the shared run
    state: the atomic counterexample slot, the timeout flag, node/depth
    accounting, and the final verdict — see docs/PARALLELISM.md for the
    determinism contract and the memory-ordering argument.

    Verdict semantics mirror the sequential engines exactly:

    - a validated counterexample stops the pool and wins ([Falsified];
      first writer wins — with several concurrent counterexamples the
      {e witness} is scheduling-dependent, the verdict is not);
    - a drained pool with no counterexample is [Verified];
    - a worker observing an exhausted budget with work still pending
      raises the timeout flag and stops the pool ([Timeout]). *)

type t
(** Shared state of one parallel run. *)

val create : engine:string -> budget:Abonn_util.Budget.t -> t

val engine : t -> string

(** {1 Worker-side operations} (all safe from any domain) *)

val note_cex : t -> 'a Abonn_par.Pool.ctx -> float array -> unit
(** Record a validated counterexample and stop the pool.  The first
    counterexample wins; later ones are dropped. *)

val note_timeout : t -> 'a Abonn_par.Pool.ctx -> unit
(** Record that the budget tripped with work pending, and stop the pool. *)

val guard : t -> 'a Abonn_par.Pool.ctx -> ('a -> unit) -> 'a -> unit
(** [guard st ctx f] wraps an engine work function: items arriving
    after a stop request are dropped, and the budget is re-checked
    before every item ({!note_timeout} on exhaustion) — the parallel
    counterpart of the sequential loop's per-iteration
    [Budget.exhausted] check. *)

val add_nodes : t -> int -> unit
(** Count newly materialised BaB nodes. *)

val note_depth : t -> int -> unit
(** Raise the max-depth high-water mark. *)

(** {1 Run-side operations} *)

val nodes : t -> int

val max_depth : t -> int

val verdict : t -> Abonn_spec.Verdict.t
(** The run's verdict per the rules above; call after [Pool.run]
    returns. *)

val run_relu_split :
  engine:string ->
  domains:int ->
  appver:Abonn_prop.Appver.t ->
  heuristic:Branching.t ->
  budget:Abonn_util.Budget.t ->
  record:(Certificate.leaf -> unit) ->
  Abonn_spec.Problem.t ->
  Result.t
(** The parallel ReLU-splitting frontier loop shared by [Bfs] and
    [Bestfirst] ([engine] names the caller for traces and metrics):
    pop a node, one AppVer call (warm-started from the parent's
    incremental state), prune / validate / split on the heuristic's
    ReLU, deciding fully-stabilised leaves exactly.  [record] is called
    once per discharged leaf, serialised by an internal mutex.

    Under parallel execution the visit order is the pool's LIFO +
    steal order — neither BFS's FIFO nor best-first's global priority
    order survives sharding, which changes the {e path} through the
    tree but not the verdict (docs/PARALLELISM.md §3).  [frontier_pop]
    events report the worker's own deque length and a [nan] priority. *)
