(** BaB-baseline: breadth-first branch-and-bound (§III, §V).

    The naive strategy the paper compares against: sub-problems are
    visited in first-come-first-served order.  Each visited node gets one
    AppVer call; a positive bound prunes it, a validated counterexample
    terminates the run, and otherwise the node is split on the ReLU
    chosen by the branching heuristic, appending both children to the
    FIFO queue.  An exhausted queue proves the property. *)

val verify :
  ?appver:Abonn_prop.Appver.t ->
  ?heuristic:Branching.t ->
  ?budget:Abonn_util.Budget.t ->
  ?domains:int ->
  Abonn_spec.Problem.t ->
  Result.t
(** Defaults: DeepPoly AppVer, DeepSplit heuristic, unlimited budget,
    [domains = Abonn_par.Pool.default_domains ()] (the [ABONN_DOMAINS]
    environment variable, else 1).  Returns [Timeout] when the budget
    trips before the queue empties.

    [domains = 1] is the sequential engine, bit-for-bit the historical
    one.  [domains > 1] shards the frontier across a work-stealing
    domain pool ([Parfrontier]): the verdict is unchanged on complete
    runs, but the FIFO visit order is not preserved — see
    docs/PARALLELISM.md for the full determinism contract. *)

val verify_with_certificate :
  ?appver:Abonn_prop.Appver.t ->
  ?heuristic:Branching.t ->
  ?budget:Abonn_util.Budget.t ->
  ?domains:int ->
  Abonn_spec.Problem.t ->
  Result.t * Certificate.t option
(** Like [verify], additionally returning the discharged-leaf
    certificate when the verdict is [Verified] (see [Certificate]).
    With [domains > 1] the leaf {e order} is scheduling-dependent; the
    leaf {e set} still partitions the split space, which is all
    [Certificate.check] requires. *)
