(** Input-domain branch-and-bound (ReluVal/Neurify-style).

    Instead of fixing ReLU phases, this engine bisects the *input box*:
    each sub-region gets one AppVer call (with an empty split sequence),
    proved regions are pruned, candidate counterexamples are validated,
    and undecided regions are cut in half along a chosen dimension.
    Complete for any sound AppVer because boxes shrink to points.

    Input splitting shines on low-dimensional inputs (the classic
    ACAS-Xu setting) and degrades with dimension — the opposite profile
    of ReLU splitting, which is why production verifiers carry both.
    The test suite cross-checks its verdicts against the ReLU-split
    engines on 2-D problems. *)

type strategy =
  | Widest  (** bisect the widest input dimension *)
  | Gradient_weighted
      (** bisect the dimension maximising width × |∂margin/∂x| at the
          region centre — a smear-style heuristic *)

val verify :
  ?appver:Abonn_prop.Appver.t ->
  ?strategy:strategy ->
  ?budget:Abonn_util.Budget.t ->
  ?min_width:float ->
  ?domains:int ->
  Abonn_spec.Problem.t ->
  Result.t
(** Defaults: DeepPoly, [Gradient_weighted], unlimited budget,
    [min_width = 1e-6], [domains = Abonn_par.Pool.default_domains ()]
    ([domains = 1] is the sequential engine bit-for-bit; [> 1] shards
    the region queue across a work-stealing domain pool — same verdict
    on complete runs, scheduling-dependent visit order, see
    docs/PARALLELISM.md).  A region narrower than [min_width] in every
    dimension that still resists proving is checked concretely at its
    centre: a violation there concludes [Falsified]; otherwise the box
    is left unresolved and a final all-other-boxes-proved result is
    reported as [Timeout] rather than [Verified] — margins that touch 0
    on a null set (ties) cannot be decided by bisection. *)
