module Matrix = Abonn_tensor.Matrix
module Affine = Abonn_nn.Affine
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Problem = Abonn_spec.Problem
module Bounds = Abonn_prop.Bounds
module Outcome = Abonn_prop.Outcome

exception Unresolvable of string

(* With every ReLU stable, the network restricted to the leaf is affine:
   pre-activations and outputs are affine functions of the input alone.
   The leaf is then one small LP over the input box — variables are the
   network inputs, constraints are the fixed ReLU phases — instead of the
   full triangle-relaxation encoding (which carries two variables per
   neuron and is an order of magnitude slower to pivot). *)

(* Compose the affine maps through the fixed phases.  Returns per-layer
   (m_l, c_l) with pre_l(x) = m_l·x + c_l, and the output map. *)
let compose_through affine (pre_bounds : Bounds.t array) =
  let n_layers = Affine.num_layers affine in
  let maps = Array.make (n_layers - 1) (Matrix.zeros 0 0, [||]) in
  let rec walk l (m, c) =
    (* (m, c): affine map of the current layer's input in terms of x *)
    let w = Affine.(affine.weights.(l)) and b = Affine.(affine.biases.(l)) in
    let pre_m = Matrix.matmul w m in
    let pre_c = Array.mapi (fun i v -> v +. b.(i)) (Matrix.mv w c) in
    if l = n_layers - 1 then (pre_m, pre_c)
    else begin
      maps.(l) <- (pre_m, pre_c);
      (* post = mask ⊙ pre with the mask fixed by stability *)
      let bnd = pre_bounds.(l) in
      let width = Array.length pre_c in
      let post_m =
        Matrix.init width pre_m.Matrix.cols (fun i j ->
            match Bounds.relu_state_of bnd i with
            | Bounds.Stable_active -> Matrix.get pre_m i j
            | Bounds.Stable_inactive -> 0.0
            | Bounds.Unstable -> Matrix.get pre_m i j (* caller guards *))
      in
      let post_c =
        Array.mapi
          (fun i v ->
            match Bounds.relu_state_of bnd i with
            | Bounds.Stable_active | Bounds.Unstable -> v
            | Bounds.Stable_inactive -> 0.0)
          pre_c
      in
      walk (l + 1) (post_m, post_c)
    end
  in
  let out = walk 0 (Matrix.identity Affine.(affine.input_dim), Array.make Affine.(affine.input_dim) 0.0) in
  (maps, out)

let any_unstable pre_bounds =
  Array.exists (fun b -> Bounds.num_unstable b > 0) pre_bounds

(* Exact minimum of one affine objective over the leaf polytope. *)
let minimise_row ~region ~maps ~coefs ~constant =
  let lp = Abonn_lp.Lp_problem.create () in
  let inputs =
    Array.init (Array.length coefs) (fun j ->
        Abonn_lp.Lp_problem.add_var ~lo:region.Region.lower.(j) ~hi:region.Region.upper.(j) lp)
  in
  Array.iter
    (fun ((m : Matrix.t), c, (bnd : Bounds.t)) ->
      for i = 0 to Array.length c - 1 do
        let terms = ref [] in
        for j = 0 to m.Matrix.cols - 1 do
          let v = Matrix.get m i j in
          if v <> 0.0 then terms := (v, inputs.(j)) :: !terms
        done;
        match Bounds.relu_state_of bnd i with
        | Bounds.Stable_active ->
          Abonn_lp.Lp_problem.add_constraint lp !terms Abonn_lp.Lp_problem.Ge (-.c.(i))
        | Bounds.Stable_inactive ->
          Abonn_lp.Lp_problem.add_constraint lp !terms Abonn_lp.Lp_problem.Le (-.c.(i))
        | Bounds.Unstable -> ()
      done)
    maps;
  let obj = ref [] in
  Array.iteri (fun j v -> if v <> 0.0 then obj := (v, inputs.(j)) :: !obj) coefs;
  Abonn_lp.Lp_problem.set_objective ~constant lp !obj;
  match Abonn_lp.Lp_problem.solve lp with
  | Abonn_lp.Lp_problem.Optimal { objective; values } ->
    `Optimal (objective, Array.map values inputs)
  | Abonn_lp.Lp_problem.Infeasible -> `Infeasible
  | Abonn_lp.Lp_problem.Unbounded ->
    raise (Unresolvable "leaf LP unbounded (cannot happen over a box)")
  | Abonn_lp.Lp_problem.Pivot_limit ->
    raise (Unresolvable "leaf LP hit its pivot limit")

let resolve problem gamma =
  match Abonn_prop.Deeppoly.hidden_bounds problem gamma with
  | None -> `Verified (* infeasible splits: vacuous *)
  | Some pre_bounds when any_unstable pre_bounds ->
    (* Not actually fully stabilised (defensive path): fall back to the
       triangle-relaxation LP and concrete validation. *)
    let outcome = Abonn_lp.Lp_verifier.run problem gamma in
    begin match outcome.Outcome.candidate with
    | Some x when Problem.is_counterexample problem x -> `Falsified x
    | Some _ | None ->
      if outcome.Outcome.phat > -1e-7 then `Verified
      else raise (Unresolvable "relaxation negative but minimiser does not violate")
    end
  | Some pre_bounds ->
    let affine = problem.Problem.affine in
    let region = problem.Problem.region in
    let prop = problem.Problem.property in
    let maps, (out_m, out_c) = compose_through affine pre_bounds in
    let constraint_maps =
      Array.mapi (fun l (m, c) -> (m, c, pre_bounds.(l))) maps
    in
    let nrows = prop.Property.c.Matrix.rows in
    (* Exactly minimise each property row over the leaf polytope; a
       validated minimiser ends the search, and ties (margin = 0) count
       as violations per Property.violated. *)
    let rec rows r worst =
      if r >= nrows then begin
        match worst with
        | Some v when v <= -1e-7 ->
          raise (Unresolvable "negative leaf optimum without a validating minimiser")
        | Some _ | None -> `Verified
      end
      else begin
        let crow = Matrix.row prop.Property.c r in
        let coefs = Matrix.tmv out_m crow in
        let constant = Abonn_tensor.Vector.dot crow out_c +. prop.Property.d.(r) in
        (* Box lower bound of the row ignoring the phase constraints: if
           even that is positive, the LP cannot go negative — skip it. *)
        let box_lower =
          let acc = ref constant in
          Array.iteri
            (fun j a ->
              acc := !acc +. (if a > 0.0 then a *. region.Region.lower.(j) else a *. region.Region.upper.(j)))
            coefs;
          !acc
        in
        if box_lower > 0.0 then rows (r + 1) worst
        else
        match minimise_row ~region ~maps:constraint_maps ~coefs ~constant with
        | `Infeasible -> `Verified (* empty leaf: vacuous for every row *)
        | `Optimal (value, x) ->
          if Problem.is_counterexample problem x then `Falsified x
          else begin
            let worst =
              match worst with Some w -> Some (Float.min w value) | None -> Some value
            in
            rows (r + 1) worst
          end
      end
    in
    rows 0 None
