module Budget = Abonn_util.Budget
module Heap = Abonn_util.Heap
module Obs = Abonn_obs.Obs
module Ev = Abonn_obs.Event
module Introspect = Abonn_obs.Introspect
module Resource = Abonn_obs.Resource
module Split = Abonn_spec.Split
module Verdict = Abonn_spec.Verdict
module Problem = Abonn_spec.Problem
module Outcome = Abonn_prop.Outcome
module Appver = Abonn_prop.Appver

type frontier_node = {
  gamma : Split.gamma;
  depth : int;
  outcome : Outcome.t;
  state : Abonn_prop.Incremental.t option;
      (* this node's own incremental state, warm-starting its children *)
}

exception Found of float array

let verify_seq ~appver ~heuristic ~budget problem =
  let started = Unix.gettimeofday () in
  let choose = heuristic.Branching.prepare problem in
  let heap : frontier_node Heap.t = Heap.create () in
  let nodes = ref 0 and max_depth = ref 0 in
  let resource = Resource.create ~engine:"bestfirst" () in
  let finish verdict =
    let wall_time = Unix.gettimeofday () -. started in
    Resource.final resource ~open_nodes:(Heap.length heap) ~nodes:!nodes
      ~max_depth:!max_depth;
    if Obs.tracing () then
      Obs.emit
        (Ev.Verdict_reached
           { engine = "bestfirst"; verdict = Verdict.to_string verdict;
             elapsed = wall_time });
    Result.make ~verdict ~appver_calls:(Budget.calls_used budget) ~nodes:!nodes
      ~max_depth:!max_depth ~wall_time
  in
  (* Evaluate a node, warm-starting from its parent's state; push it
     when undecided; raise [Found] on a real counterexample. *)
  let evaluate ?parent gamma depth =
    Budget.record_call budget;
    nodes := !nodes + 1;
    max_depth := Stdlib.max !max_depth depth;
    let outcome, state = Appver.run_warm appver ?state:parent problem gamma in
    if Outcome.proved outcome then ()
    else begin
      match outcome.Outcome.candidate with
      | Some x when Problem.is_counterexample problem x -> raise (Found x)
      | Some _ | None ->
        Heap.push heap outcome.Outcome.phat { gamma; depth; outcome; state }
    end
  in
  match
    (try
       evaluate [] 0;
       let rec loop () =
         if Heap.is_empty heap then `Done Verdict.Verified
         else if Budget.exhausted budget then `Done Verdict.Timeout
         else begin
           match Heap.pop heap with
           | None -> `Done Verdict.Verified
           | Some (priority, node) ->
             if Obs.active () then begin
               Obs.incr "bestfirst.pop";
               Obs.observe "bestfirst.depth" (float_of_int node.depth);
               if Obs.tracing () then begin
                 Obs.emit
                   (Ev.Frontier_pop
                      { engine = "bestfirst"; depth = node.depth;
                        frontier = Heap.length heap; priority });
                 (* Introspection: the priority picture of this pop —
                    chosen key vs. the best node left behind — right
                    after the frontier_pop it explains. *)
                 if Introspect.enabled () then begin
                   let smp = Introspect.sample () in
                   if smp > 0 then
                     Obs.emit
                       (Ev.Frontier_decision
                          { engine = "bestfirst"; depth = node.depth; priority;
                            runner_up =
                              (match Heap.peek heap with
                               | Some (p, _) -> p
                               | None -> Float.nan);
                            frontier = Heap.length heap; sample = smp })
                 end
               end
             end;
             Resource.tick resource ~open_nodes:(Heap.length heap) ~nodes:!nodes
               ~max_depth:!max_depth;
             begin match
               choose ~gamma:node.gamma ~pre_bounds:node.outcome.Outcome.pre_bounds
             with
             | Some ch ->
               let relu = ch.Branching.relu in
               Branching.emit_decision ~engine:"bestfirst" ~kind:"relu"
                 ~depth:node.depth ch;
               (* one shared pre-split computation per expansion: both
                  children warm-start from the popped node's state *)
               evaluate ?parent:node.state
                 (Split.extend node.gamma ~relu ~phase:Split.Active) (node.depth + 1);
               evaluate ?parent:node.state
                 (Split.extend node.gamma ~relu ~phase:Split.Inactive) (node.depth + 1);
               loop ()
             | None ->
               Budget.record_call budget;
               let resolution = Exact.resolve problem node.gamma in
               if Obs.active () then begin
                 Obs.incr "bestfirst.exact";
                 if Obs.tracing () then
                   Obs.emit
                     (Ev.Exact_leaf
                        { engine = "bestfirst"; depth = node.depth;
                          verified = (resolution = `Verified) })
               end;
               begin match resolution with
               | `Verified -> loop ()
               | `Falsified x -> `Done (Verdict.Falsified x)
               end
             end
         end
       in
       loop ()
     with Found x -> `Done (Verdict.Falsified x))
  with
  | `Done verdict -> finish verdict

let verify ?(appver = Appver.deeppoly) ?(heuristic = Branching.default) ?budget
    ?domains problem =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> 1
    | None -> Abonn_par.Pool.default_domains ()
  in
  (* [domains = 1] is the untouched sequential engine above; [> 1]
     shards the frontier across the work-stealing pool, which trades
     the global p̂ priority order for per-domain LIFO + steal order
     (docs/PARALLELISM.md) — the verdict of complete runs is unchanged. *)
  if domains <= 1 then verify_seq ~appver ~heuristic ~budget problem
  else
    Parfrontier.run_relu_split ~engine:"bestfirst" ~domains ~appver ~heuristic
      ~budget ~record:(fun _ -> ()) problem
