module Budget = Abonn_util.Budget
module Obs = Abonn_obs.Obs
module Ev = Abonn_obs.Event
module Resource = Abonn_obs.Resource
module Split = Abonn_spec.Split
module Verdict = Abonn_spec.Verdict
module Problem = Abonn_spec.Problem
module Outcome = Abonn_prop.Outcome
module Appver = Abonn_prop.Appver

(* Core loop shared by [verify] and [verify_with_certificate]: [record]
   is called once per discharged leaf. *)
let run_bfs ~appver ~heuristic ~budget ~record problem =
  let started = Unix.gettimeofday () in
  let choose = heuristic.Branching.prepare problem in
  let queue = Queue.create () in
  (* Each entry carries its parent's incremental state so the AppVer can
     warm-start; the root has none. *)
  Queue.add ([], 0, None) queue;
  let nodes = ref 1 and max_depth = ref 0 in
  let resource = Resource.create ~engine:"bab-baseline" () in
  let finish verdict =
    let wall_time = Unix.gettimeofday () -. started in
    Resource.final resource ~open_nodes:(Queue.length queue) ~nodes:!nodes
      ~max_depth:!max_depth;
    if Obs.tracing () then
      Obs.emit
        (Ev.Verdict_reached
           { engine = "bab-baseline"; verdict = Verdict.to_string verdict;
             elapsed = wall_time });
    Result.make ~verdict ~appver_calls:(Budget.calls_used budget) ~nodes:!nodes
      ~max_depth:!max_depth ~wall_time
  in
  let rec loop () =
    if Queue.is_empty queue then finish Verdict.Verified
    else if Budget.exhausted budget then finish Verdict.Timeout
    else begin
      let gamma, depth, state = Queue.pop queue in
      if Obs.active () then begin
        Obs.incr "bfs.pop";
        Obs.observe "bfs.depth" (float_of_int depth);
        if Obs.tracing () then
          Obs.emit
            (Ev.Frontier_pop
               { engine = "bab-baseline"; depth; frontier = Queue.length queue;
                 priority = Float.nan })
      end;
      Resource.tick resource ~open_nodes:(Queue.length queue) ~nodes:!nodes
        ~max_depth:!max_depth;
      Budget.record_call budget;
      let outcome, node_state = Appver.run_warm appver ?state problem gamma in
      if Outcome.proved outcome then begin
        record { Certificate.gamma; phat = outcome.Outcome.phat; by_exact = false };
        loop ()
      end
      else begin
        let valid_cex =
          match outcome.Outcome.candidate with
          | Some x when Problem.is_counterexample problem x -> Some x
          | Some _ | None -> None
        in
        match valid_cex with
        | Some x -> finish (Verdict.Falsified x)
        | None ->
          begin match choose ~gamma ~pre_bounds:outcome.Outcome.pre_bounds with
          | Some ch ->
            let relu = ch.Branching.relu in
            Branching.emit_decision ~engine:"bab-baseline" ~kind:"relu" ~depth
              ch;
            (* One shared pre-split computation per expansion: both
               children warm-start from this node's state instead of
               re-deriving the parent's layer bounds independently. *)
            Queue.add (Split.extend gamma ~relu ~phase:Split.Active, depth + 1, node_state)
              queue;
            Queue.add (Split.extend gamma ~relu ~phase:Split.Inactive, depth + 1, node_state)
              queue;
            nodes := !nodes + 2;
            max_depth := Stdlib.max !max_depth (depth + 1);
            loop ()
          | None ->
            (* Fully stabilised leaf: decide exactly with one LP call. *)
            Budget.record_call budget;
            let resolution = Exact.resolve problem gamma in
            if Obs.active () then begin
              Obs.incr "bfs.exact";
              if Obs.tracing () then
                Obs.emit
                  (Ev.Exact_leaf
                     { engine = "bab-baseline"; depth;
                       verified = (resolution = `Verified) })
            end;
            begin match resolution with
            | `Verified ->
              record { Certificate.gamma; phat = infinity; by_exact = true };
              loop ()
            | `Falsified x -> finish (Verdict.Falsified x)
            end
          end
      end
    end
  in
  loop ()

(* [domains = 1] (the default) takes [run_bfs] — the untouched
   sequential loop, bit-for-bit the pre-parallelism engine; [> 1]
   shards the frontier across a work-stealing domain pool
   (docs/PARALLELISM.md). *)
let resolve_domains = function
  | Some d when d >= 1 -> d
  | Some _ -> 1
  | None -> Abonn_par.Pool.default_domains ()

let run ~appver ~heuristic ~budget ~domains ~record problem =
  if domains <= 1 then run_bfs ~appver ~heuristic ~budget ~record problem
  else
    Parfrontier.run_relu_split ~engine:"bab-baseline" ~domains ~appver
      ~heuristic ~budget ~record problem

let verify ?(appver = Appver.deeppoly) ?(heuristic = Branching.default) ?budget
    ?domains problem =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let domains = resolve_domains domains in
  run ~appver ~heuristic ~budget ~domains ~record:(fun _ -> ()) problem

let verify_with_certificate ?(appver = Appver.deeppoly) ?(heuristic = Branching.default)
    ?budget ?domains problem =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let domains = resolve_domains domains in
  let leaves = ref [] in
  let record leaf = leaves := leaf :: !leaves in
  let result = run ~appver ~heuristic ~budget ~domains ~record problem in
  let certificate =
    match result.Result.verdict with
    | Verdict.Verified ->
      Some { Certificate.leaves = List.rev !leaves; appver_name = appver.Appver.name }
    | Verdict.Falsified _ | Verdict.Timeout -> None
  in
  (result, certificate)
