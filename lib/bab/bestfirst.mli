(** Best-first branch-and-bound.

    A stronger classical exploration order than the breadth-first
    baseline: the frontier is a priority queue keyed by the certified
    bound [p̂], so the sub-problem the relaxation considers *most
    violated* is always expanded next.  Children are evaluated when
    enqueued (their bound is the key).  This engine is the search
    backbone of the αβ-CROWN-style baseline ([Abonn_crown]). *)

val verify :
  ?appver:Abonn_prop.Appver.t ->
  ?heuristic:Branching.t ->
  ?budget:Abonn_util.Budget.t ->
  ?domains:int ->
  Abonn_spec.Problem.t ->
  Result.t
(** Defaults: DeepPoly AppVer, DeepSplit heuristic, unlimited budget,
    [domains = Abonn_par.Pool.default_domains ()].

    [domains = 1] is the sequential engine, bit-for-bit the historical
    one.  [domains > 1] shards the frontier across a work-stealing
    domain pool; the global best-first priority order does {e not}
    survive sharding (each domain works LIFO on its own deque), so the
    engine degrades toward plain parallel BaB — same verdict on
    complete runs, different path.  See docs/PARALLELISM.md. *)
