module Budget = Abonn_util.Budget
module Pool = Abonn_par.Pool
module Obs = Abonn_obs.Obs
module Ev = Abonn_obs.Event
module Resource = Abonn_obs.Resource
module Split = Abonn_spec.Split
module Verdict = Abonn_spec.Verdict
module Problem = Abonn_spec.Problem
module Outcome = Abonn_prop.Outcome
module Appver = Abonn_prop.Appver

type t = {
  engine : string;
  budget : Budget.t;
  (* first validated counterexample wins; CAS keeps later writers out *)
  found : float array option Atomic.t;
  (* a worker saw the budget trip with work still pending *)
  timeout : bool Atomic.t;
  nodes : int Atomic.t;
  max_depth : int Atomic.t;
}

let create ~engine ~budget =
  { engine;
    budget;
    found = Atomic.make None;
    timeout = Atomic.make false;
    nodes = Atomic.make 0;
    max_depth = Atomic.make 0 }

let engine st = st.engine

let note_cex st ctx x =
  ignore (Atomic.compare_and_set st.found None (Some x));
  Pool.request_stop ctx

let note_timeout st ctx =
  Atomic.set st.timeout true;
  Pool.request_stop ctx

let guard st ctx f item =
  if not (Pool.stop_requested ctx) then
    if Budget.exhausted st.budget then note_timeout st ctx else f item

let add_nodes st n = ignore (Atomic.fetch_and_add st.nodes n)

let note_depth st d =
  let rec raise_to () =
    let cur = Atomic.get st.max_depth in
    if d > cur && not (Atomic.compare_and_set st.max_depth cur d) then
      raise_to ()
  in
  raise_to ()

let nodes st = Atomic.get st.nodes
let max_depth st = Atomic.get st.max_depth

let verdict st =
  match Atomic.get st.found with
  | Some x -> Verdict.Falsified x
  | None -> if Atomic.get st.timeout then Verdict.Timeout else Verdict.Verified

(* --- the shared ReLU-splitting work loop (Bfs / Bestfirst) --- *)

(* A frontier item is self-contained: the split sequence, its depth and
   the parent's incremental bound state, so any domain can expand it. *)
type relu_item = Split.gamma * int * Abonn_prop.Incremental.t option

let run_relu_split ~engine ~domains ~appver ~heuristic ~budget ~record problem =
  let started = Unix.gettimeofday () in
  let st = create ~engine ~budget in
  add_nodes st 1 (* the root *);
  (* The chooser closure may carry per-problem scratch state, so each
     domain prepares its own. *)
  let choosers =
    Array.init domains (fun _ -> heuristic.Branching.prepare problem)
  in
  (* One resource sampler, ticked only by domain 0 (its fields are not
     synchronised); GC/RSS/CPU readings are process-wide anyway. *)
  let resource = Resource.create ~engine () in
  let record_mutex = Mutex.create () in
  let record leaf =
    Mutex.lock record_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock record_mutex) (fun () ->
        record leaf)
  in
  let work ctx (item : relu_item) =
    guard st ctx (fun (gamma, depth, state) ->
    if Obs.active () then begin
      Obs.incr (engine ^ ".pop");
      Obs.observe (engine ^ ".depth") (float_of_int depth);
      if Obs.tracing () then
        Obs.emit
          (Ev.Frontier_pop
             { engine; depth; frontier = Pool.queue_length ctx;
               priority = Float.nan })
    end;
    if Pool.id ctx = 0 then
      Resource.tick resource ~open_nodes:(Pool.queue_length ctx)
        ~nodes:(nodes st) ~max_depth:(max_depth st);
    Budget.record_call budget;
    let outcome, node_state = Appver.run_warm appver ?state problem gamma in
    if Outcome.proved outcome then
      record { Certificate.gamma; phat = outcome.Outcome.phat; by_exact = false }
    else begin
      let valid_cex =
        match outcome.Outcome.candidate with
        | Some x when Problem.is_counterexample problem x -> Some x
        | Some _ | None -> None
      in
      match valid_cex with
      | Some x -> note_cex st ctx x
      | None ->
        let choose = choosers.(Pool.id ctx) in
        (match choose ~gamma ~pre_bounds:outcome.Outcome.pre_bounds with
         | Some ch ->
           let relu = ch.Branching.relu in
           (* no frontier_decision here: a work-stealing pool has no
              global priority order to compare the pop against *)
           Branching.emit_decision ~engine ~kind:"relu" ~depth ch;
           (* both children warm-start from this node's state *)
           Pool.push ctx
             (Split.extend gamma ~relu ~phase:Split.Active, depth + 1, node_state);
           Pool.push ctx
             (Split.extend gamma ~relu ~phase:Split.Inactive, depth + 1, node_state);
           add_nodes st 2;
           note_depth st (depth + 1)
         | None ->
           (* fully stabilised leaf: decide exactly with one LP call *)
           Budget.record_call budget;
           let resolution = Exact.resolve problem gamma in
           if Obs.active () then begin
             Obs.incr (String.concat "" [ engine; ".exact" ]);
             if Obs.tracing () then
               Obs.emit
                 (Ev.Exact_leaf
                    { engine; depth; verified = (resolution = `Verified) })
           end;
           (match resolution with
            | `Verified ->
              record { Certificate.gamma; phat = infinity; by_exact = true }
            | `Falsified x -> note_cex st ctx x))
    end)
      item
  in
  ignore
    (Pool.run ~domains ~engine ~roots:[ (([], 0, None) : relu_item) ] ~work ());
  let wall_time = Unix.gettimeofday () -. started in
  let v = verdict st in
  Resource.final resource ~open_nodes:0 ~nodes:(nodes st)
    ~max_depth:(max_depth st);
  if Obs.tracing () then
    Obs.emit
      (Ev.Verdict_reached
         { engine; verdict = Verdict.to_string v; elapsed = wall_time });
  Result.make ~verdict:v ~appver_calls:(Budget.calls_used budget)
    ~nodes:(nodes st) ~max_depth:(max_depth st) ~wall_time
