module Budget = Abonn_util.Budget
module Resource = Abonn_obs.Resource
module Region = Abonn_spec.Region
module Verdict = Abonn_spec.Verdict
module Problem = Abonn_spec.Problem
module Property = Abonn_spec.Property
module Outcome = Abonn_prop.Outcome
module Appver = Abonn_prop.Appver
module Matrix = Abonn_tensor.Matrix

type strategy = Widest | Gradient_weighted

(* Best and second-best input dimension under [score], with the same
   first-wins strict [>] scan the engine has always used — the chosen
   dimension is unchanged; the runner-up exists only for introspection
   ([branch_decision] events).  Runner-up is [-1]/[nan] on 1-D boxes. *)
let scan2 n score =
  let best = ref 0 and best_s = ref neg_infinity in
  let run = ref (-1) and run_s = ref Float.nan in
  for i = 0 to n - 1 do
    let s = score i in
    if s > !best_s then begin
      if i > 0 then begin
        run := !best;
        run_s := !best_s
      end;
      best := i;
      best_s := s
    end
    else if !run < 0 || s > !run_s then begin
      run := i;
      run_s := s
    end
  done;
  (!best, !best_s, !run, !run_s)

let widest_choice (region : Region.t) =
  scan2
    (Array.length region.Region.lower)
    (fun i -> region.Region.upper.(i) -. region.Region.lower.(i))

let widest_dim (region : Region.t) =
  let best, best_w, _, _ = widest_choice region in
  (best, best_w)

let gradient_choice (problem : Problem.t) (region : Region.t) =
  let centre = Region.center region in
  let y = Abonn_nn.Network.forward problem.Problem.network centre in
  let prop = problem.Problem.property in
  (* gradient of the worst margin row at the centre *)
  let vals = Matrix.mv prop.Property.c y in
  let worst = ref 0 in
  Array.iteri
    (fun i v ->
      if v +. prop.Property.d.(i) < vals.(!worst) +. prop.Property.d.(!worst) then worst := i)
    vals;
  let d_out = Matrix.row prop.Property.c !worst in
  let g = Abonn_nn.Network.input_gradient problem.Problem.network centre ~d_out in
  let best, best_s, run, run_s =
    scan2
      (Array.length region.Region.lower)
      (fun i ->
        (region.Region.upper.(i) -. region.Region.lower.(i)) *. Float.abs g.(i))
  in
  (* A vanishing gradient (dead ReLU region at the centre) carries no
     signal: fall back to the widest dimension rather than starving the
     others. *)
  if best_s > 0.0 then (best, best_s, run, run_s) else widest_choice region

(* The dimension scan restated as a Branching.choice so inputsplit's
   decisions flow through the same emission point as ReLU splits. *)
let dim_decision ~depth (region : Region.t) (dim, score, run, run_s) =
  Branching.emit_decision ~engine:"inputsplit" ~kind:"input" ~depth
    { Branching.relu = dim; score; runner_up = run; runner_up_score = run_s;
      candidates = Array.length region.Region.lower }

let bisect (region : Region.t) dim =
  let mid = (region.Region.lower.(dim) +. region.Region.upper.(dim)) /. 2.0 in
  let upper_left = Array.copy region.Region.upper in
  upper_left.(dim) <- mid;
  let lower_right = Array.copy region.Region.lower in
  lower_right.(dim) <- mid;
  ( Region.create ~lower:region.Region.lower ~upper:upper_left,
    Region.create ~lower:lower_right ~upper:region.Region.upper )

let verify_seq ~appver ~strategy ~budget ~min_width problem =
  let started = Unix.gettimeofday () in
  let affine = problem.Problem.affine in
  let property = problem.Problem.property in
  let sub_problem region = Problem.of_affine ~affine ~region ~property () in
  let queue = Queue.create () in
  (* Region bisection changes the input box, so a child can never share
     a bound prefix — re-propagation is forced from layer 0 — but the
     parent's state still tightens the child's bounds by intersection
     (the [Tighten] reuse mode). *)
  Queue.add (problem.Problem.region, 0, None) queue;
  let nodes = ref 1 and max_depth = ref 0 in
  let resource = Resource.create ~engine:"inputsplit" () in
  (* Point-sized boxes that resist proving (margin touching 0 on a null
     set) cannot be soundly pruned; they downgrade Verified to Timeout. *)
  let unresolved_points = ref 0 in
  let finish verdict =
    Resource.final resource ~open_nodes:(Queue.length queue) ~nodes:!nodes
      ~max_depth:!max_depth;
    let verdict =
      match verdict with
      | Verdict.Verified when !unresolved_points > 0 -> Verdict.Timeout
      | Verdict.Verified | Verdict.Falsified _ | Verdict.Timeout -> verdict
    in
    Result.make ~verdict ~appver_calls:(Budget.calls_used budget) ~nodes:!nodes
      ~max_depth:!max_depth
      ~wall_time:(Unix.gettimeofday () -. started)
  in
  let rec loop () =
    if Queue.is_empty queue then finish Verdict.Verified
    else if Budget.exhausted budget then finish Verdict.Timeout
    else begin
      let region, depth, state = Queue.pop queue in
      Resource.tick resource ~open_nodes:(Queue.length queue) ~nodes:!nodes
        ~max_depth:!max_depth;
      Budget.record_call budget;
      let sub = sub_problem region in
      let outcome, node_state = Appver.run_warm appver ?state sub [] in
      if Outcome.proved outcome then loop ()
      else begin
        let valid_cex =
          match outcome.Outcome.candidate with
          | Some x when Problem.is_counterexample problem x -> Some x
          | Some _ | None -> None
        in
        match valid_cex with
        | Some x -> finish (Verdict.Falsified x)
        | None ->
          let ((dim, _, _, _) as dchoice) =
            match strategy with
            | Widest -> widest_choice region
            | Gradient_weighted -> gradient_choice sub region
          in
          (* Termination must consider the whole box: prune as a point
             only when *every* dimension has collapsed. *)
          let _, widest = widest_dim region in
          if widest < min_width then begin
            (* numerically a point: a concrete violation at the centre
               concludes; otherwise stay sound and leave it unresolved *)
            let centre = Region.center region in
            if Problem.is_counterexample problem centre then
              finish (Verdict.Falsified centre)
            else begin
              incr unresolved_points;
              loop ()
            end
          end
          else begin
            dim_decision ~depth region dchoice;
            let left, right = bisect region dim in
            Queue.add (left, depth + 1, node_state) queue;
            Queue.add (right, depth + 1, node_state) queue;
            nodes := !nodes + 2;
            max_depth := Stdlib.max !max_depth (depth + 1);
            loop ()
          end
      end
    end
  in
  loop ()

(* Parallel region loop: same body as [verify_seq], restated as a pool
   work function over self-contained (region, depth, state) items. *)
let verify_par ~appver ~strategy ~budget ~min_width ~domains problem =
  let module Pool = Abonn_par.Pool in
  let started = Unix.gettimeofday () in
  let affine = problem.Problem.affine in
  let property = problem.Problem.property in
  let sub_problem region = Problem.of_affine ~affine ~region ~property () in
  let st = Parfrontier.create ~engine:"inputsplit" ~budget in
  Parfrontier.add_nodes st 1;
  let unresolved_points = Atomic.make 0 in
  let resource = Resource.create ~engine:"inputsplit" () in
  let work ctx item =
    Parfrontier.guard st ctx
      (fun (region, depth, state) ->
        if Pool.id ctx = 0 then
          Resource.tick resource ~open_nodes:(Pool.queue_length ctx)
            ~nodes:(Parfrontier.nodes st) ~max_depth:(Parfrontier.max_depth st);
        Budget.record_call budget;
        let sub = sub_problem region in
        let outcome, node_state = Appver.run_warm appver ?state sub [] in
        if Outcome.proved outcome then ()
        else begin
          let valid_cex =
            match outcome.Outcome.candidate with
            | Some x when Problem.is_counterexample problem x -> Some x
            | Some _ | None -> None
          in
          match valid_cex with
          | Some x -> Parfrontier.note_cex st ctx x
          | None ->
            let ((dim, _, _, _) as dchoice) =
              match strategy with
              | Widest -> widest_choice region
              | Gradient_weighted -> gradient_choice sub region
            in
            let _, widest = widest_dim region in
            if widest < min_width then begin
              let centre = Region.center region in
              if Problem.is_counterexample problem centre then
                Parfrontier.note_cex st ctx centre
              else Atomic.incr unresolved_points
            end
            else begin
              dim_decision ~depth region dchoice;
              let left, right = bisect region dim in
              Pool.push ctx (left, depth + 1, node_state);
              Pool.push ctx (right, depth + 1, node_state);
              Parfrontier.add_nodes st 2;
              Parfrontier.note_depth st (depth + 1)
            end
        end)
      item
  in
  ignore
    (Pool.run ~domains ~engine:"inputsplit"
       ~roots:[ (problem.Problem.region, 0, None) ] ~work ());
  let verdict =
    match Parfrontier.verdict st with
    | Verdict.Verified when Atomic.get unresolved_points > 0 -> Verdict.Timeout
    | v -> v
  in
  Resource.final resource ~open_nodes:0 ~nodes:(Parfrontier.nodes st)
    ~max_depth:(Parfrontier.max_depth st);
  Result.make ~verdict ~appver_calls:(Budget.calls_used budget)
    ~nodes:(Parfrontier.nodes st) ~max_depth:(Parfrontier.max_depth st)
    ~wall_time:(Unix.gettimeofday () -. started)

let verify ?(appver = Appver.deeppoly) ?(strategy = Gradient_weighted) ?budget
    ?(min_width = 1e-6) ?domains problem =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> 1
    | None -> Abonn_par.Pool.default_domains ()
  in
  if domains <= 1 then verify_seq ~appver ~strategy ~budget ~min_width problem
  else verify_par ~appver ~strategy ~budget ~min_width ~domains problem
