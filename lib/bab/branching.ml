module Matrix = Abonn_tensor.Matrix
module Affine = Abonn_nn.Affine
module Split = Abonn_spec.Split
module Problem = Abonn_spec.Problem
module Property = Abonn_spec.Property
module Bounds = Abonn_prop.Bounds
module Obs = Abonn_obs.Obs
module Ev = Abonn_obs.Event
module Introspect = Abonn_obs.Introspect

type choice = {
  relu : int;
  score : float;
  runner_up : int;
  runner_up_score : float;
  candidates : int;
}

type chooser =
  gamma:Abonn_spec.Split.gamma ->
  pre_bounds:Abonn_prop.Bounds.t array ->
  choice option

type t = { name : string; prepare : Problem.t -> chooser }

(* Enumerate splittable neurons: unstable under the node's bounds and not
   already constrained on the path. *)
let candidates affine gamma pre_bounds =
  let acc = ref [] in
  Array.iteri
    (fun l (b : Bounds.t) ->
      List.iter
        (fun idx ->
          let relu = Affine.relu_index affine ~layer:l ~idx in
          if Split.constrained gamma ~relu = None then acc := (relu, l, idx) :: !acc)
        (Bounds.unstable_indices b))
    pre_bounds;
  List.rev !acc

(* Best and second-best under [score], evaluating each candidate once.
   The winner update is the strict [>] first-wins fold the heuristics
   have always used (ties keep the earlier candidate), so the chosen
   split is unchanged by the runner-up tracking — the runner-up exists
   only for introspection ([branch_decision] events). *)
let argmax2 score = function
  | [] -> None
  | first :: rest ->
    let best = ref first and best_s = ref (score first) in
    let run = ref None and run_s = ref Float.nan in
    List.iter
      (fun c ->
        let s = score c in
        if s > !best_s then begin
          run := Some !best;
          run_s := !best_s;
          best := c;
          best_s := s
        end
        else
          match !run with
          | None ->
            run := Some c;
            run_s := s
          | Some _ ->
            if s > !run_s then begin
              run := Some c;
              run_s := s
            end)
      rest;
    Some (!best, !best_s, !run, !run_s)

let argmax_by score cands =
  match argmax2 score cands with
  | None -> None
  | Some ((relu, _, _), s, run, run_s) ->
    Some
      { relu;
        score = s;
        runner_up = (match run with Some (r, _, _) -> r | None -> -1);
        runner_up_score = (match run with Some _ -> run_s | None -> Float.nan);
        candidates = List.length cands }

(* Gap of the triangle relaxation at ẑ = 0: the chord evaluates to
   u·(−l)/(u−l) where the true ReLU is 0 — the BaBSR improvement proxy. *)
let relaxation_gap lo hi = hi *. -.lo /. (hi -. lo)

let widest =
  { name = "widest";
    prepare =
      (fun problem ->
        let affine = problem.Problem.affine in
        fun ~gamma ~pre_bounds ->
          let score (_, l, i) = Bounds.width pre_bounds.(l) i in
          argmax_by score (candidates affine gamma pre_bounds)) }

let babsr =
  { name = "babsr";
    prepare =
      (fun problem ->
        let affine = problem.Problem.affine in
        fun ~gamma ~pre_bounds ->
          let score (_, l, i) =
            relaxation_gap pre_bounds.(l).Bounds.lower.(i) pre_bounds.(l).Bounds.upper.(i)
          in
          argmax_by score (candidates affine gamma pre_bounds)) }

(* Per-layer sensitivity of each hidden neuron: total absolute weight
   mass over all paths from the neuron's ReLU output to the property
   rows.  Computed once per problem with absolute-value matrix chains. *)
let sensitivities problem =
  let affine = problem.Problem.affine in
  let prop = problem.Problem.property in
  let n_layers = Affine.num_layers affine in
  let n_hidden = n_layers - 1 in
  let abs_m = Matrix.map Float.abs in
  let sens = Array.make n_hidden [||] in
  (* s over post-activation of hidden layer (n_hidden - 1): |C|·|W_last| *)
  let rec walk l acc =
    (* acc: m × width(l) absolute-coefficient matrix over post-activation
       of hidden layer l *)
    let colsum = Array.init acc.Matrix.cols (fun j ->
        let s = ref 0.0 in
        for r = 0 to acc.Matrix.rows - 1 do
          s := !s +. Matrix.get acc r j
        done;
        !s)
    in
    sens.(l) <- colsum;
    if l > 0 then walk (l - 1) (Matrix.matmul acc (abs_m Affine.(affine.weights.(l))))
  in
  if n_hidden > 0 then
    walk (n_hidden - 1) (Matrix.matmul (abs_m prop.Property.c) (abs_m Affine.(affine.weights.(n_layers - 1))));
  sens

let deepsplit =
  { name = "deepsplit";
    prepare =
      (fun problem ->
        let affine = problem.Problem.affine in
        let sens = sensitivities problem in
        fun ~gamma ~pre_bounds ->
          let score (_, l, i) =
            relaxation_gap pre_bounds.(l).Bounds.lower.(i) pre_bounds.(l).Bounds.upper.(i)
            *. sens.(l).(i)
          in
          argmax_by score (candidates affine gamma pre_bounds)) }

let fsb_shortlist = 4

let fsb =
  { name = "fsb";
    prepare =
      (fun problem ->
        let affine = problem.Problem.affine in
        let sens = sensitivities problem in
        fun ~gamma ~pre_bounds ->
          let cands = candidates affine gamma pre_bounds in
          match cands with
          | [] -> None
          | _ ->
            let scored =
              List.map
                (fun ((_, l, i) as c) ->
                  let s =
                    relaxation_gap pre_bounds.(l).Bounds.lower.(i)
                      pre_bounds.(l).Bounds.upper.(i)
                    *. sens.(l).(i)
                  in
                  (c, s))
                cands
            in
            let sorted = List.sort (fun (_, a) (_, b) -> compare b a) scored in
            let top = List.filteri (fun i _ -> i < fsb_shortlist) sorted in
            (* Look-ahead: clamp each shortlisted neuron both ways and
               propagate cheap interval bounds; prefer the split whose
               *worse* child gets the best certified bound. *)
            let lookahead ((relu, _, _), _) =
              let child phase =
                let gamma' = Split.extend gamma ~relu ~phase in
                (Abonn_prop.Interval.run problem gamma').Abonn_prop.Outcome.phat
              in
              Float.min (child Split.Active) (child Split.Inactive)
            in
            begin match argmax2 lookahead top with
            | None -> None
            | Some (((relu, _, _), _), s, run, run_s) ->
              Some
                { relu;
                  score = s;
                  runner_up =
                    (match run with Some ((r, _, _), _) -> r | None -> -1);
                  runner_up_score =
                    (match run with Some _ -> run_s | None -> Float.nan);
                  candidates = List.length cands }
            end) }

(* Shared emission point for branch_decision introspection events: one
   Introspect gate + sampling draw per recorded decision, used by every
   splitting engine so pair-integrity semantics stay uniform.  Costs
   nothing when tracing or introspection is off. *)
let emit_decision ~engine ~kind ~depth ch =
  if Obs.tracing () && Introspect.enabled () then begin
    let smp = Introspect.sample () in
    if smp > 0 then
      Obs.emit
        (Ev.Branch_decision
           { engine; depth; kind; choice = ch.relu; score = ch.score;
             runner_up = ch.runner_up; runner_up_score = ch.runner_up_score;
             candidates = ch.candidates; sample = smp })
  end

let all = [ deepsplit; babsr; fsb; widest ]

let find name = List.find_opt (fun h -> h.name = name) all

let default = deepsplit
