type t = float array

let create n v = Array.make n v

let zeros n = Array.make n 0.0

let init = Array.init

let copy = Array.copy

let dim = Array.length

let check_dims name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vector.%s: dimension mismatch (%d vs %d)" name (Array.length x) (Array.length y))

let add x y =
  check_dims "add" x y;
  Array.mapi (fun i xi -> xi +. y.(i)) x

let sub x y =
  check_dims "sub" x y;
  Array.mapi (fun i xi -> xi -. y.(i)) x

let mul x y =
  check_dims "mul" x y;
  Array.mapi (fun i xi -> xi *. y.(i)) x

let scale a x = Array.map (fun xi -> a *. xi) x

let neg x = Array.map (fun xi -> -.xi) x

let dot x y =
  check_dims "dot" x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun m xi -> Float.max m (Float.abs xi)) 0.0 x

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let map = Array.map

let map2 f x y =
  check_dims "map2" x y;
  Array.mapi (fun i xi -> f xi y.(i)) x

let relu x = Array.map (fun xi -> Float.max 0.0 xi) x

let argmax x =
  if Array.length x = 0 then invalid_arg "Vector.argmax: empty";
  let best = ref 0 in
  for i = 1 to Array.length x - 1 do
    if x.(i) > x.(!best) then best := i
  done;
  !best

let max_elt x =
  if Array.length x = 0 then invalid_arg "Vector.max_elt: empty";
  Array.fold_left Float.max x.(0) x

let min_elt x =
  if Array.length x = 0 then invalid_arg "Vector.min_elt: empty";
  Array.fold_left Float.min x.(0) x

let clamp ~lo ~hi x =
  check_dims "clamp" lo x;
  check_dims "clamp" hi x;
  Array.mapi (fun i xi -> Float.max lo.(i) (Float.min hi.(i) xi)) x

(* [x.(i) -. y.(i)] is NaN whenever either side is NaN (or both are the
   same infinity), and [NaN > tol] is false — so a plain difference test
   silently accepts NaN against anything.  Compare scalars explicitly:
   equal iff both NaN, or exactly equal (covers matching infinities), or
   within [tol]. *)
let scalar_approx_equal ~tol a b =
  (Float.is_nan a && Float.is_nan b)
  || a = b
  || Float.abs (a -. b) <= tol

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  && begin
       let ok = ref true in
       for i = 0 to Array.length x - 1 do
         if not (scalar_approx_equal ~tol x.(i) y.(i)) then ok := false
       done;
       !ok
     end

let pp fmt x =
  Format.fprintf fmt "[|";
  Array.iteri
    (fun i xi ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%g" xi)
    x;
  Format.fprintf fmt "|]"
