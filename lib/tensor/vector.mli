(** Dense float vectors.

    Thin, explicit wrappers over [float array] with the arithmetic needed
    by forward evaluation, gradient computation and bound propagation.
    All binary operations check dimensions and raise [Invalid_argument]
    on mismatch. *)

type t = float array

val create : int -> float -> t
val zeros : int -> t
val init : int -> (int -> float) -> t
val copy : t -> t
val dim : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Element-wise product. *)

val scale : float -> t -> t
val neg : t -> t
val dot : t -> t -> float
val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Max absolute entry; 0 for the empty vector. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y := a*x + y] in place. *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t

val relu : t -> t
(** Element-wise [max 0]. *)

val argmax : t -> int
(** Index of the maximum entry (first on ties).  Raises
    [Invalid_argument] on the empty vector. *)

val max_elt : t -> float
val min_elt : t -> float

val clamp : lo:t -> hi:t -> t -> t
(** Element-wise clipping of each entry into [\[lo_i, hi_i\]]. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Pointwise comparison within [tol] (default [1e-9]).  Non-finite
    entries compare by identity: [nan] equals only [nan] and each
    infinity equals only itself — so a NaN produced by a numerical bug
    can never pass as equal to a finite expectation. *)

val pp : Format.formatter -> t -> unit
