type t = { rows : int; cols : int; data : float array }

let create rows cols v =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative dims";
  { rows; cols; data = Array.make (rows * cols) v }

let zeros rows cols = create rows cols 0.0

let identity n =
  let m = zeros n n in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- 1.0
  done;
  m

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let of_rows rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then invalid_arg "Matrix.of_rows: empty";
  let cols = Array.length rows_arr.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Matrix.of_rows: ragged rows")
    rows_arr;
  init rows cols (fun i j -> rows_arr.(i).(j))

let copy m = { m with data = Array.copy m.data }

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Matrix.get: out of bounds";
  m.data.((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Matrix.set: out of bounds";
  m.data.((i * m.cols) + j) <- v

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Matrix.row: out of bounds";
  Array.sub m.data (i * m.cols) m.cols

let col m j =
  if j < 0 || j >= m.cols then invalid_arg "Matrix.col: out of bounds";
  Array.init m.rows (fun i -> m.data.((i * m.cols) + j))

let transpose m = init m.cols m.rows (fun i j -> m.data.((j * m.cols) + i))

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Matrix.%s: shape mismatch (%dx%d vs %dx%d)" name a.rows a.cols b.rows b.cols)

let add a b =
  check_same "add" a b;
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  check_same "sub" a b;
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale s m = { m with data = Array.map (fun x -> s *. x) m.data }

let map f m = { m with data = Array.map f m.data }

let mapi f m =
  { m with data = Array.mapi (fun k x -> f (k / m.cols) (k mod m.cols) x) m.data }

(* Cache-friendly ikj loop with accumulation directly into the output. *)
let matmul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Matrix.matmul: inner dims mismatch (%dx%d * %dx%d)" a.rows a.cols b.rows b.cols);
  let c = zeros a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then begin
        let a_off = i * b.cols and b_off = k * b.cols in
        for j = 0 to b.cols - 1 do
          c.data.(a_off + j) <- c.data.(a_off + j) +. (aik *. b.data.(b_off + j))
        done
      end
    done
  done;
  c

let mv m x =
  if m.cols <> Array.length x then invalid_arg "Matrix.mv: dimension mismatch";
  let y = Array.make m.rows 0.0 in
  for i = 0 to m.rows - 1 do
    let off = i * m.cols in
    let acc = ref 0.0 in
    for j = 0 to m.cols - 1 do
      acc := !acc +. (m.data.(off + j) *. x.(j))
    done;
    y.(i) <- !acc
  done;
  y

let tmv m x =
  if m.rows <> Array.length x then invalid_arg "Matrix.tmv: dimension mismatch";
  let y = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then begin
      let off = i * m.cols in
      for j = 0 to m.cols - 1 do
        y.(j) <- y.(j) +. (m.data.(off + j) *. xi)
      done
    end
  done;
  y

let outer x y =
  init (Array.length x) (Array.length y) (fun i j -> x.(i) *. y.(j))

let random_gaussian rng rows cols ~stddev =
  init rows cols (fun _ _ -> stddev *. Abonn_util.Rng.gaussian rng)

let frobenius m = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 m.data)

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Vector.approx_equal ~tol a.data b.data

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%g" m.data.((i * m.cols) + j)
    done;
    Format.fprintf fmt "]";
    if i < m.rows - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
