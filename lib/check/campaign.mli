(** Seeded differential-fuzzing campaigns.

    A campaign generates [cases] problems from a single seed, runs the
    selected oracle families on each, and turns every failure into a
    {!Finding.t}: the case is greedily shrunk to a minimal reproducer
    (same oracle check still failing), serialized with
    {!Abonn_spec.Problem_file} next to its network, re-loaded and
    re-checked — so every reported finding is replayable from disk by
    construction.

    While an {!Abonn_obs} sink is installed, each case additionally emits
    [run_started] / [run_finished] trace events (engine ["fuzz"]), so
    [abonn_trace summary] works on campaign traces unchanged. *)

type config = {
  seed : int;
  cases : int;
  families : Oracle.family list;
  minimize : bool;           (** shrink failing cases before reporting *)
  out_dir : string option;
      (** where minimal repros are written; default: a fresh directory
          under the system temp dir *)
  oracle : Oracle.config;
}

val default : config
(** Seed 1, 100 cases, all families, minimisation on, temp-dir repros,
    {!Oracle.default_config}. *)

type outcome = {
  cases_run : int;
  checks_run : int;          (** oracle-family runs, summed over cases *)
  findings : Finding.t list; (** in discovery order *)
}

val run :
  ?on_finding:(Finding.t -> unit) ->
  ?on_case:(Gen.case -> unit) ->
  config ->
  outcome
(** [on_case] fires before each case is checked (progress reporting);
    [on_finding] fires as each finding is confirmed (streaming logs). *)

val replay_file :
  ?config:Oracle.config -> seed:int -> family:Oracle.family -> string -> Oracle.verdict
(** Load a problem file and run one oracle family on it — the
    replay path used both by fixture tests and for triaging findings. *)

val export_corpus : ?seed:int -> dir:string -> unit -> (string * Oracle.family * int) list
(** Seed a regression corpus: for every oracle family, find a generated
    case that genuinely exercises it (solvable within budget, unstable
    neurons present, certificate produced, …), shrink it while it stays
    interesting, and save it under [dir] together with a [corpus.txt]
    manifest of [file family seed] lines.  Returns the manifest entries.
    Intended to (re)generate [test/fixtures/fuzz/]. *)
