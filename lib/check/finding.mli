(** One confirmed oracle failure, ready for logging and replay.

    Findings are appended to a JSONL log — one flat JSON object per line
    with an ["ev": "fuzz_finding"] discriminator, the same wire
    conventions as [docs/TRACE_SCHEMA.md] (strings escaped identically,
    non-finite floats as strings) — so the [abonn_trace] tooling's
    streaming reader conventions apply to findings logs too. *)

type t = {
  case_index : int;            (** position in the campaign *)
  case_seed : int;             (** regenerates the original case *)
  family : Oracle.family;
  check : string;              (** violated invariant id *)
  detail : string;             (** evidence message *)
  descr : string;              (** generated case description *)
  relus : int;                 (** ReLU count of the original case *)
  relus_minimized : int option;(** ReLU count after shrinking, if run *)
  repro : string option;       (** path of the serialized minimal repro *)
  roundtrip_ok : bool option;
      (** whether the saved repro, re-loaded via [Problem_file], fails the
          same oracle check (the replayability guarantee) *)
}

val to_json : t -> string
(** One JSON line, no trailing newline. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering for CLI output. *)
