(** Seed-driven generators for tiny verification problems.

    Every differential-fuzzing campaign draws its cases from this module:
    small random or briefly-trained MLPs and CNNs, L∞ / box input
    regions, and all four property shapes, assembled into full
    {!Abonn_spec.Problem.t} instances.  Sizes are capped (≤ 3 inputs for
    dense nets, ≤ {!max_relus} ReLUs) so that ground truth stays
    computable: exact enumeration over all 2^K ReLU phase cells, dense
    corner sampling and generous engine budgets all terminate in
    milliseconds per case.

    All randomness flows through {!Abonn_util.Rng}: a case is a pure
    function of [(campaign seed, case index)], so any finding anywhere
    can be regenerated from two integers. *)

type case = {
  index : int;       (** position in the campaign *)
  seed : int;        (** derived per-case seed; regenerates the case alone *)
  descr : string;    (** human-readable shape, e.g. ["mlp[2;4;2] eps=0.13 robust"] *)
  problem : Abonn_spec.Problem.t;
}

val max_relus : int
(** Upper bound on ReLU count of every generated network (currently 8). *)

val case_seed : seed:int -> index:int -> int
(** Deterministic per-case seed derived from the campaign seed and the
    case index (SplitMix64 mixing; always non-negative). *)

val network : Abonn_util.Rng.t -> Abonn_nn.Network.t * string
(** A tiny network and its description: a random MLP (70%), an MLP
    briefly trained on a linearly-separable synthetic task (15%) — so
    fuzzing also sees non-random weight structure — or a one-convolution
    CNN (15%). *)

val region : Abonn_util.Rng.t -> dim:int -> Abonn_spec.Region.t
(** An L∞ ball with log-uniform radius in [\[0.02, 0.7\]] around a random
    centre; occasionally clipped to [\[0, 1\]] like pixel inputs. *)

val property :
  Abonn_util.Rng.t -> Abonn_nn.Network.t -> Abonn_spec.Region.t -> Abonn_spec.Property.t
(** One of: local robustness of the centre's predicted label, targeted
    robustness, a single linear inequality with margin near zero at the
    centre (the hard band), or an output-range envelope. *)

val problem : Abonn_util.Rng.t -> Abonn_spec.Problem.t * string
(** A full random problem and its description. *)

val case : seed:int -> index:int -> case
(** The [index]-th case of the campaign started from [seed]. *)
