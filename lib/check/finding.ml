type t = {
  case_index : int;
  case_seed : int;
  family : Oracle.family;
  check : string;
  detail : string;
  descr : string;
  relus : int;
  relus_minimized : int option;
  repro : string option;
  roundtrip_ok : bool option;
}

(* Same string-escaping rules as Abonn_obs.Event.to_json. *)
let add_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_json f =
  let buf = Buffer.create 256 in
  let field name add =
    if Buffer.length buf > 1 then Buffer.add_char buf ',';
    add_string buf name;
    Buffer.add_char buf ':';
    add ()
  in
  Buffer.add_char buf '{';
  field "ev" (fun () -> add_string buf "fuzz_finding");
  field "case" (fun () -> Buffer.add_string buf (string_of_int f.case_index));
  field "seed" (fun () -> Buffer.add_string buf (string_of_int f.case_seed));
  field "family" (fun () -> add_string buf (Oracle.family_name f.family));
  field "check" (fun () -> add_string buf f.check);
  field "detail" (fun () -> add_string buf f.detail);
  field "descr" (fun () -> add_string buf f.descr);
  field "relus" (fun () -> Buffer.add_string buf (string_of_int f.relus));
  (match f.relus_minimized with
   | Some n -> field "relus_minimized" (fun () -> Buffer.add_string buf (string_of_int n))
   | None -> ());
  (match f.repro with
   | Some p -> field "repro" (fun () -> add_string buf p)
   | None -> ());
  (match f.roundtrip_ok with
   | Some b -> field "roundtrip_ok" (fun () -> Buffer.add_string buf (string_of_bool b))
   | None -> ());
  Buffer.add_char buf '}';
  Buffer.contents buf

let pp fmt f =
  Format.fprintf fmt "@[<v 2>FINDING [%s] %s (case %d, seed %d)@,%s@,case: %s (%d relus)"
    (Oracle.family_name f.family) f.check f.case_index f.case_seed f.detail f.descr f.relus;
  (match f.relus_minimized with
   | Some n -> Format.fprintf fmt "@,minimized to %d relus" n
   | None -> ());
  (match f.repro with
   | Some p -> Format.fprintf fmt "@,repro: %s" p
   | None -> ());
  (match f.roundtrip_ok with
   | Some ok -> Format.fprintf fmt "@,round-trip: %s" (if ok then "ok" else "FAILED")
   | None -> ());
  Format.fprintf fmt "@]"
