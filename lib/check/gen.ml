module Rng = Abonn_util.Rng
module Vector = Abonn_tensor.Vector
module Network = Abonn_nn.Network
module Builder = Abonn_nn.Builder
module Trainer = Abonn_nn.Trainer
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Problem = Abonn_spec.Problem

type case = {
  index : int;
  seed : int;
  descr : string;
  problem : Problem.t;
}

let max_relus = 8

let case_seed ~seed ~index =
  (* One SplitMix64 step over a seed/index mix keeps nearby campaign
     seeds and indices statistically unrelated. *)
  let r = Rng.create ((seed * 1_000_003) lxor (index * 8191)) in
  Int64.to_int (Int64.logand (Rng.int64 r) 0x3FFFFFFF_FFFFFFFFL)

(* --- networks --- *)

let mlp_dims rng =
  let input = 2 + Rng.int rng 2 in
  let out = 2 + Rng.int rng 2 in
  let hidden =
    if Rng.bool rng then [ 2 + Rng.int rng 5 ] (* one hidden layer, 2-6 wide *)
    else [ 2 + Rng.int rng 2; 2 + Rng.int rng 2 ] (* two layers, 2-3 wide *)
  in
  (input :: hidden) @ [ out ]

let dims_descr dims = "[" ^ String.concat ";" (List.map string_of_int dims) ^ "]"

(* Brief training on a linearly separable task gives the weights the
   correlated, non-random structure real benchmark models have. *)
let train_briefly rng net ~in_dim ~out_dim =
  let teacher = Array.init in_dim (fun _ -> Rng.range rng (-1.0) 1.0) in
  let samples =
    Array.init 48 (fun _ ->
        let x = Array.init in_dim (fun _ -> Rng.range rng (-1.0) 1.0) in
        let label = if Vector.dot teacher x > 0.0 then 1 mod out_dim else 0 in
        { Trainer.features = x; label })
  in
  let config =
    { Trainer.epochs = 4; batch_size = 8; learning_rate = 0.05; lr_decay = 0.9;
      verbose = false }
  in
  Trainer.train ~config rng net samples

let network rng =
  let roll = Rng.int rng 100 in
  if roll < 70 then begin
    let dims = mlp_dims rng in
    (Builder.mlp rng ~dims, "mlp" ^ dims_descr dims)
  end
  else if roll < 85 then begin
    let dims = mlp_dims rng in
    let net = Builder.mlp rng ~dims in
    let in_dim = List.hd dims in
    let out_dim = List.nth dims (List.length dims - 1) in
    (train_briefly rng net ~in_dim ~out_dim, "mlp-trained" ^ dims_descr dims)
  end
  else begin
    (* 1×3×3 input, one 2×2 convolution (4 ReLUs), linear head. *)
    let convs = [ { Builder.out_channels = 1; kernel = 2; stride = 1; padding = 0 } ] in
    let net =
      Builder.convnet rng ~in_channels:1 ~in_h:3 ~in_w:3 ~convs ~dense:[] ~num_classes:2
    in
    (net, "conv1x3x3")
  end

(* --- regions --- *)

let region rng ~dim =
  let clip = Rng.int rng 100 < 25 in
  let eps = exp (Rng.range rng (log 0.02) (log 0.7)) in
  let center =
    if clip then Array.init dim (fun _ -> Rng.range rng 0.25 0.75)
    else Array.init dim (fun _ -> Rng.range rng (-0.5) 0.5)
  in
  if clip then Region.linf_ball ~clip:(0.0, 1.0) ~center ~eps ()
  else Region.linf_ball ~center ~eps ()

(* --- properties --- *)

let property rng net region =
  let y = Network.forward net (Region.center region) in
  let out_dim = Array.length y in
  let label = Vector.argmax y in
  match Rng.int rng 100 with
  | r when r < 40 -> Property.robustness ~num_classes:out_dim ~label
  | r when r < 60 ->
    let target = (label + 1 + Rng.int rng (out_dim - 1)) mod out_dim in
    Property.targeted ~num_classes:out_dim ~label ~target
  | r when r < 85 ->
    (* Single inequality with centre margin in the hard band around 0. *)
    let coeffs = Array.init out_dim (fun _ -> Rng.range rng (-1.0) 1.0) in
    let delta = Rng.range rng (-0.05) 0.35 in
    let offset = delta -. Vector.dot coeffs y in
    Property.single ~description:"fuzz-single" coeffs offset
  | _ ->
    let output = Rng.int rng out_dim in
    let lo = y.(output) -. Rng.range rng 0.05 0.5 in
    let hi = y.(output) +. Rng.range rng 0.05 0.5 in
    Property.output_range ~num_classes:out_dim ~output ~lo ~hi

let problem rng =
  let net, net_descr = network rng in
  let region = region rng ~dim:(Network.input_dim net) in
  let property = property rng net region in
  let eps = Vector.max_elt (Region.radius region) in
  let descr =
    Printf.sprintf "%s eps=%.3g prop=%s relus=%d" net_descr eps
      property.Property.description (Network.num_relus net)
  in
  let p = Problem.create ~name:descr ~network:net ~region ~property () in
  (p, descr)

let case ~seed ~index =
  let cs = case_seed ~seed ~index in
  let rng = Rng.create cs in
  let p, descr = problem rng in
  { index; seed = cs; descr; problem = p }
