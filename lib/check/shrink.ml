module Matrix = Abonn_tensor.Matrix
module Affine = Abonn_nn.Affine
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Problem = Abonn_spec.Problem

let drop_row (m : Matrix.t) i =
  Matrix.init (m.Matrix.rows - 1) m.Matrix.cols (fun r c ->
      Matrix.get m (if r < i then r else r + 1) c)

let drop_col (m : Matrix.t) j =
  Matrix.init m.Matrix.rows (m.Matrix.cols - 1) (fun r c ->
      Matrix.get m r (if c < j then c else c + 1))

let drop_elt (a : float array) i =
  Array.init (Array.length a - 1) (fun k -> a.(if k < i then k else k + 1))

let layers_of_affine (affine : Affine.t) =
  Array.to_list
    (Array.mapi (fun l w -> (w, affine.Affine.biases.(l))) affine.Affine.weights)

let rebuild (problem : Problem.t) layers region property =
  Problem.of_affine ~name:problem.Problem.name ~affine:(Affine.of_weights layers) ~region
    ~property ()

(* Remove hidden neuron [i] of hidden layer [l]: its row in (W_l, b_l)
   and the matching column of W_{l+1}. *)
let drop_neuron layers l i =
  List.mapi
    (fun k (w, b) ->
      if k = l then (drop_row w i, drop_elt b i)
      else if k = l + 1 then (drop_col w i, b)
      else (w, b))
    layers

let halve_region (region : Region.t) =
  let center = Region.center region in
  let radius = Region.radius region in
  let lower = Array.mapi (fun i c -> c -. (radius.(i) /. 2.0)) center in
  let upper = Array.mapi (fun i c -> c +. (radius.(i) /. 2.0)) center in
  Region.create ~lower ~upper

let candidates (problem : Problem.t) =
  let affine = problem.Problem.affine in
  let region = problem.Problem.region in
  let property = problem.Problem.property in
  let layers = layers_of_affine affine in
  let num_hidden = List.length layers - 1 in
  let acc = ref [] in
  let add p = acc := p :: !acc in
  let try_add f = match f () with p -> add p | exception _ -> () in
  (* halve the region (last priority: try it after structural shrinks) *)
  if Abonn_tensor.Vector.max_elt (Region.radius region) > 1e-4 then
    try_add (fun () -> rebuild problem layers (halve_region region) property);
  (* drop property rows *)
  let nrows = Property.num_constraints property in
  if nrows > 1 then
    for r = nrows - 1 downto 0 do
      try_add (fun () ->
          let keep = List.filter (fun k -> k <> r) (List.init nrows Fun.id) in
          let c =
            Matrix.of_rows
              (Array.of_list (List.map (Matrix.row property.Property.c) keep))
          in
          let d = Array.of_list (List.map (fun k -> property.Property.d.(k)) keep) in
          rebuild problem layers region
            (Property.create ~description:property.Property.description c d))
    done;
  (* drop hidden neurons (highest priority: emitted last, consumed first) *)
  for l = num_hidden - 1 downto 0 do
    let w, _ = List.nth layers l in
    if w.Matrix.rows > 1 then
      for i = w.Matrix.rows - 1 downto 0 do
        try_add (fun () -> rebuild problem (drop_neuron layers l i) region property)
      done
  done;
  !acc

let minimize ?(max_rounds = 200) ~failing problem =
  let still_fails p = try failing p with _ -> false in
  let rec loop problem rounds =
    if rounds >= max_rounds then problem
    else
      match List.find_opt still_fails (candidates problem) with
      | Some smaller -> loop smaller (rounds + 1)
      | None -> problem
  in
  loop problem 0
