(** The formats conformance corpus (test/fixtures/formats).

    One deterministic recipe per fixture: seeded networks serialized
    with {!Abonn_nn.Onnx}, VNNLIB texts (hand-written non-canonical
    ones exercising the parser, printer-emitted ones exercising
    {!Abonn_spec.Vnnlib.to_string} stability), and deliberately
    malformed inputs under [malformed/].  The committed files are the
    golden bytes; {!check_dir} is run by the tests and the CI
    formats-conformance step, and [bin/gen_formats] regenerates the
    directory after an intentional format change. *)

val entries : unit -> (string * string) list
(** [(relative_path, bytes)] for every fixture, including the
    [malformed/] ones.  Deterministic: equal on every run and
    platform. *)

val mlp : unit -> Abonn_nn.Network.t
(** The seeded 3-8-8-2 MLP behind the [mlp_*.onnx] fixtures. *)

val conv : unit -> Abonn_nn.Network.t
(** The seeded 1×6×6 convnet behind [conv_small.onnx]. *)

val acas_net : unit -> Abonn_nn.Network.t
(** The scaled-down (2×8) seed-1 ACAS network behind
    [acas_tiny.onnx]. *)

val acas_p1 : unit -> Abonn_spec.Vnnlib.t
val acas_p2 : unit -> Abonn_spec.Vnnlib.t
(** The specs behind [acas_prop1.vnnlib]/[acas_prop2.vnnlib]. *)

val check_dir : string -> (string * string) list
(** [(path, reason)] for every fixture whose committed bytes differ
    from its recipe (or which is missing); [[]] means the corpus is
    byte-stable. *)

val write_dir : string -> unit
(** (Re)write every fixture under the given directory, creating
    subdirectories as needed. *)
