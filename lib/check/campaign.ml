module Budget = Abonn_util.Budget
module Obs = Abonn_obs.Obs
module Ev = Abonn_obs.Event
module Verdict = Abonn_spec.Verdict
module Problem = Abonn_spec.Problem
module Problem_file = Abonn_spec.Problem_file
module Deeppoly = Abonn_prop.Deeppoly
module Bounds = Abonn_prop.Bounds
module Bfs = Abonn_bab.Bfs
module Inputsplit = Abonn_bab.Inputsplit
module Result = Abonn_bab.Result
module Certificate = Abonn_bab.Certificate

type config = {
  seed : int;
  cases : int;
  families : Oracle.family list;
  minimize : bool;
  out_dir : string option;
  oracle : Oracle.config;
}

let default =
  { seed = 1; cases = 100; families = Oracle.all_families; minimize = true; out_dir = None;
    oracle = Oracle.default_config }

type outcome = {
  cases_run : int;
  checks_run : int;
  findings : Finding.t list;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let fresh_temp_dir () =
  let base =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "abonn-fuzz-%d-%d" (Unix.getpid ()) (int_of_float (Unix.gettimeofday () *. 1000.) mod 100_000))
  in
  mkdir_p base;
  base

let save_repro ~dir ~base problem =
  mkdir_p dir;
  let problem_path = Filename.concat dir (base ^ ".problem") in
  let network_path = Filename.concat dir (base ^ ".net") in
  Problem_file.save problem ~network_path problem_path;
  problem_path

let replay_file ?config ~seed ~family path =
  let problem = Problem_file.load path in
  Oracle.run ?config ~seed family problem

(* Shrink, serialize, re-load, re-check: a finding leaves this function
   replayable from disk or it says so in [roundtrip_ok]. *)
let confirm_finding cfg ~dir (case : Gen.case) (f : Oracle.failure) =
  let same_failure p =
    match Oracle.run ~config:cfg.oracle ~seed:case.Gen.seed f.Oracle.family p with
    | Oracle.Fail f' -> f'.Oracle.check = f.Oracle.check
    | Oracle.Pass -> false
  in
  let minimized =
    if cfg.minimize then Shrink.minimize ~failing:same_failure case.Gen.problem
    else case.Gen.problem
  in
  let base = Printf.sprintf "finding_c%d_%s" case.Gen.index (Oracle.family_name f.Oracle.family) in
  let repro, roundtrip_ok =
    match save_repro ~dir ~base minimized with
    | path ->
      let ok =
        match replay_file ~config:cfg.oracle ~seed:case.Gen.seed ~family:f.Oracle.family path with
        | Oracle.Fail f' -> f'.Oracle.check = f.Oracle.check
        | Oracle.Pass -> false
        | exception _ -> false
      in
      (Some path, Some ok)
    | exception _ -> (None, None)
  in
  { Finding.case_index = case.Gen.index;
    case_seed = case.Gen.seed;
    family = f.Oracle.family;
    check = f.Oracle.check;
    detail = f.Oracle.detail;
    descr = case.Gen.descr;
    relus = Problem.num_relus case.Gen.problem;
    relus_minimized =
      (if cfg.minimize then Some (Problem.num_relus minimized) else None);
    repro;
    roundtrip_ok }

let run ?on_finding ?on_case cfg =
  let dir = match cfg.out_dir with Some d -> d | None -> fresh_temp_dir () in
  let findings = ref [] in
  let checks = ref 0 in
  for index = 0 to cfg.cases - 1 do
    let case = Gen.case ~seed:cfg.seed ~index in
    (match on_case with Some f -> f case | None -> ());
    let case_started = Unix.gettimeofday () in
    if Obs.tracing () then
      Obs.emit
        (Ev.Run_started
           { engine = "fuzz"; instance = Printf.sprintf "case-%d:%s" index case.Gen.descr });
    let case_findings = ref [] in
    List.iter
      (fun family ->
        incr checks;
        match Oracle.run ~config:cfg.oracle ~seed:case.Gen.seed family case.Gen.problem with
        | Oracle.Pass -> ()
        | Oracle.Fail f ->
          if Obs.active () then Obs.incr "fuzz.findings";
          let finding = confirm_finding cfg ~dir case f in
          case_findings := finding :: !case_findings;
          findings := finding :: !findings;
          (match on_finding with Some g -> g finding | None -> ()))
      cfg.families;
    if Obs.tracing () then begin
      let verdict =
        match !case_findings with
        | [] -> "pass"
        | f :: _ -> "finding:" ^ f.Finding.check
      in
      Obs.emit
        (Ev.Run_finished
           { engine = "fuzz";
             instance = Printf.sprintf "case-%d:%s" index case.Gen.descr;
             verdict;
             calls = List.length cfg.families;
             nodes = 0;
             max_depth = 0;
             wall = Unix.gettimeofday () -. case_started })
    end
  done;
  { cases_run = cfg.cases; checks_run = !checks; findings = List.rev !findings }

(* --- corpus export --- *)

(* A case is worth committing for a family only when it genuinely
   exercises that oracle's interesting paths. *)
let interesting oracle_cfg family (problem : Problem.t) =
  let budget () = Budget.of_calls oracle_cfg.Oracle.engine_budget in
  let bfs () = (Bfs.verify ~budget:(budget ()) problem).Result.verdict in
  match (family : Oracle.family) with
  | Oracle.Sampling -> Verdict.is_solved (bfs ())
  | Oracle.Bounds ->
    (match Deeppoly.hidden_bounds problem [] with
     | Some bs -> Array.exists (fun b -> Bounds.num_unstable b > 0) bs
     | None -> false)
  | Oracle.Exact ->
    Problem.num_relus problem <= oracle_cfg.Oracle.exact_max_relus
    && Problem.num_relus problem >= 1
    && Verdict.is_solved (bfs ())
  | Oracle.Engines ->
    Verdict.is_solved (bfs ())
    && Verdict.is_solved (Inputsplit.verify ~budget:(budget ()) problem).Result.verdict
  | Oracle.Cert ->
    (match Bfs.verify_with_certificate ~budget:(budget ()) problem with
     | { Result.verdict = Verdict.Verified; _ }, Some cert ->
       Certificate.num_leaves cert >= 2
     | _ -> false)
  | Oracle.Incremental ->
    (* warm-start reuse only does work when there is a split path to
       walk and unstable neurons for the intersection to tighten *)
    Problem.num_relus problem >= 2
    && (match Deeppoly.hidden_bounds problem [] with
        | Some bs -> Array.exists (fun b -> Bounds.num_unstable b > 0) bs
        | None -> false)
  | Oracle.Lp ->
    (* basis reuse only does work along a split path, and the triangle
       relaxation only differs from the box when neurons are unstable *)
    Problem.num_relus problem >= 2
    && (match Deeppoly.hidden_bounds problem [] with
        | Some bs -> Array.exists (fun b -> Bounds.num_unstable b > 0) bs
        | None -> false)
  | Oracle.Formats ->
    (* the lowering-agreement check only bites when BFS decides, and a
       ReLU keeps the ONNX round-trip from degenerating to one affine *)
    Problem.num_relus problem >= 1 && Verdict.is_solved (bfs ())

(* Corpus entries also target both verdict polarities for the sampling
   family, so the committed set covers proves and refutes. *)
let corpus_targets : (string * Oracle.family * (Oracle.config -> Problem.t -> bool)) list =
  let bfs_verdict cfg p =
    (Bfs.verify ~budget:(Budget.of_calls cfg.Oracle.engine_budget) p).Result.verdict
  in
  [ ("sampling_verified", Oracle.Sampling,
     fun cfg p ->
       interesting cfg Oracle.Sampling p && Verdict.is_verified (bfs_verdict cfg p));
    ("sampling_falsified", Oracle.Sampling,
     fun cfg p ->
       interesting cfg Oracle.Sampling p && Verdict.is_falsified (bfs_verdict cfg p));
    ("bounds", Oracle.Bounds, (fun cfg p -> interesting cfg Oracle.Bounds p));
    ("exact", Oracle.Exact, (fun cfg p -> interesting cfg Oracle.Exact p));
    ("engines", Oracle.Engines, (fun cfg p -> interesting cfg Oracle.Engines p));
    ("cert", Oracle.Cert, (fun cfg p -> interesting cfg Oracle.Cert p));
    ("incremental", Oracle.Incremental, (fun cfg p -> interesting cfg Oracle.Incremental p));
    ("incremental_deep", Oracle.Incremental,
     (* enough ReLUs for a full depth-3 warm-started walk plus a
        multi-layer prefix to skip *)
     fun cfg p ->
       interesting cfg Oracle.Incremental p
       && Problem.num_relus p >= 4
       && Array.length p.Problem.affine.Abonn_nn.Affine.weights >= 3);
    ("lp", Oracle.Lp, (fun cfg p -> interesting cfg Oracle.Lp p));
    ("lp_deep", Oracle.Lp,
     (* enough ReLUs for a full depth-3 warm-started basis walk over a
        multi-layer encoding *)
     fun cfg p ->
       interesting cfg Oracle.Lp p
       && Problem.num_relus p >= 4
       && Array.length p.Problem.affine.Abonn_nn.Affine.weights >= 3);
    ("formats", Oracle.Formats, (fun cfg p -> interesting cfg Oracle.Formats p));
    ("formats_multirow", Oracle.Formats,
     (* >= 2 property rows so the conjunctive max-gadget path runs *)
     fun cfg p ->
       interesting cfg Oracle.Formats p
       && Abonn_spec.Property.num_constraints p.Problem.property >= 2)
  ]

let export_corpus ?(seed = 2025) ~dir () =
  let oracle_cfg = Oracle.default_config in
  mkdir_p dir;
  let manifest = Buffer.create 256 in
  let entries =
    List.map
      (fun (name, family, pred) ->
        (* scan the campaign stream for the first interesting, passing case *)
        let rec find index =
          if index > 500 then
            failwith (Printf.sprintf "export_corpus: no interesting case for %s in 500 draws" name)
          else begin
            let case = Gen.case ~seed ~index in
            if pred oracle_cfg case.Gen.problem
               && Oracle.is_pass
                    (Oracle.run ~config:oracle_cfg ~seed:case.Gen.seed family case.Gen.problem)
            then case
            else find (index + 1)
          end
        in
        let case = find 0 in
        let keep p = try pred oracle_cfg p with _ -> false in
        let minimized = Shrink.minimize ~failing:keep case.Gen.problem in
        (* never commit a case the oracle does not currently pass *)
        let final =
          if Oracle.is_pass
               (Oracle.run ~config:oracle_cfg ~seed:case.Gen.seed family minimized)
          then minimized
          else case.Gen.problem
        in
        let base = "corpus_" ^ name in
        let path = save_repro ~dir ~base final in
        Buffer.add_string manifest
          (Printf.sprintf "%s %s %d\n" (Filename.basename path)
             (Oracle.family_name family) case.Gen.seed);
        (Filename.basename path, family, case.Gen.seed))
      corpus_targets
  in
  let oc = open_out (Filename.concat dir "corpus.txt") in
  output_string oc (Buffer.contents manifest);
  close_out oc;
  entries
