(** Greedy minimisation of failing fuzz cases.

    Given a predicate that re-checks whether a problem still exhibits a
    failure, [minimize] repeatedly applies the first single-step
    simplification that preserves it — delta-debugging style — until no
    step does.  Steps, tried in this order:

    + drop one hidden neuron (remove its weight row/bias and the
      following layer's matching column);
    + drop one property row (when more than one remains);
    + halve the input region around its centre.

    The result is a local minimum: every neuron, property row and
    remaining half-region is necessary to reproduce the failure.  All
    candidates are rebuilt through {!Abonn_spec.Problem.of_affine}, so a
    minimised problem round-trips through {!Abonn_spec.Problem_file}
    exactly like a generated one. *)

val candidates : Abonn_spec.Problem.t -> Abonn_spec.Problem.t list
(** All one-step simplifications of a problem (possibly empty). *)

val minimize :
  ?max_rounds:int ->
  failing:(Abonn_spec.Problem.t -> bool) ->
  Abonn_spec.Problem.t ->
  Abonn_spec.Problem.t
(** Greedy fixed point of [candidates] under [failing] (which must hold
    for the input).  [max_rounds] (default 200) caps the number of
    accepted steps. *)
