module Rng = Abonn_util.Rng
module Budget = Abonn_util.Budget
module Parse_error = Abonn_util.Parse_error
module Network = Abonn_nn.Network
module Onnx = Abonn_nn.Onnx
module Vnnlib = Abonn_spec.Vnnlib
module Obs = Abonn_obs.Obs
module Matrix = Abonn_tensor.Matrix
module Vector = Abonn_tensor.Vector
module Affine = Abonn_nn.Affine
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Problem = Abonn_spec.Problem
module Split = Abonn_spec.Split
module Verdict = Abonn_spec.Verdict
module Outcome = Abonn_prop.Outcome
module Interval = Abonn_prop.Interval
module Zonotope = Abonn_prop.Zonotope
module Deeppoly = Abonn_prop.Deeppoly
module Symbolic = Abonn_prop.Symbolic
module Bounds = Abonn_prop.Bounds
module Incremental = Abonn_prop.Incremental
module Lp_verifier = Abonn_lp.Lp_verifier
module Bfs = Abonn_bab.Bfs
module Bestfirst = Abonn_bab.Bestfirst
module Inputsplit = Abonn_bab.Inputsplit
module Exact = Abonn_bab.Exact
module Certificate = Abonn_bab.Certificate
module Result = Abonn_bab.Result

type family = Sampling | Bounds | Exact | Engines | Cert | Incremental | Lp | Formats

let all_families = [ Sampling; Bounds; Exact; Engines; Cert; Incremental; Lp; Formats ]

let family_name = function
  | Sampling -> "sampling"
  | Bounds -> "bounds"
  | Exact -> "exact"
  | Engines -> "engines"
  | Cert -> "cert"
  | Incremental -> "incremental"
  | Lp -> "lp"
  | Formats -> "formats"

let family_of_string = function
  | "sampling" -> Some Sampling
  | "bounds" -> Some Bounds
  | "exact" -> Some Exact
  | "engines" -> Some Engines
  | "cert" -> Some Cert
  | "incremental" -> Some Incremental
  | "lp" -> Some Lp
  | "formats" -> Some Formats
  | _ -> None

type failure = {
  family : family;
  check : string;
  detail : string;
}

type verdict = Pass | Fail of failure

let is_pass = function Pass -> true | Fail _ -> false

type config = {
  samples : int;
  engine_budget : int;
  exact_max_relus : int;
  tol : float;
}

let default_config = { samples = 120; engine_budget = 600; exact_max_relus = 6; tol = 1e-6 }

let fail family check detail = Fail { family; check; detail }

let failf family check fmt = Printf.ksprintf (fail family check) fmt

(* Sampled probe points: uniform draws plus every box corner on
   low-dimensional inputs (corners are where linear pieces are extremal). *)
let probe_points cfg rng (problem : Problem.t) =
  let region = problem.Problem.region in
  let dim = Region.dim region in
  let samples = Array.init cfg.samples (fun _ -> Region.sample rng region) in
  let corners =
    if dim > 4 then [||]
    else
      Array.init (1 lsl dim) (fun mask -> Region.corner region (fun i -> mask land (1 lsl i) <> 0))
  in
  Array.append samples corners

let min_margin problem points =
  Array.fold_left
    (fun acc x -> Float.min acc (Problem.concrete_margin problem x))
    Float.infinity points

(* --- sampling oracle --- *)

let run_sampling cfg rng problem =
  let points = probe_points cfg rng problem in
  (* Internal consistency of the concrete layer itself: a contained point
     with non-positive margin IS a counterexample, and vice versa. *)
  let inconsistent =
    Array.find_opt
      (fun x ->
        Problem.is_counterexample problem x <> (Problem.concrete_margin problem x <= 0.0))
      points
  in
  match inconsistent with
  | Some x ->
    failf Sampling "sampling.validity-mismatch"
      "margin sign and is_counterexample disagree at margin %.9g"
      (Problem.concrete_margin problem x)
  | None ->
    let r = Bfs.verify ~budget:(Budget.of_calls cfg.engine_budget) problem in
    (match r.Result.verdict with
     | Verdict.Timeout -> Pass
     | Verdict.Falsified x ->
       if Problem.is_counterexample problem x then Pass
       else
         failf Sampling "sampling.bogus-cex"
           "bfs reported Falsified but the witness has margin %.9g (or is outside the region)"
           (Problem.concrete_margin problem x)
     | Verdict.Verified ->
       let worst = min_margin problem points in
       if worst < -.cfg.tol then
         failf Sampling "sampling.verified-but-violated"
           "bfs claimed Verified, but a sampled point has margin %.9g" worst
       else Pass)

(* --- bound-lattice oracle --- *)

type domain = {
  dname : string;
  drun : Problem.t -> Split.gamma -> Outcome.t;
  dhidden : Problem.t -> Split.gamma -> Bounds.t array option;
}

let domains =
  [ { dname = "interval"; drun = Interval.run; dhidden = Interval.hidden_bounds };
    { dname = "zonotope"; drun = Zonotope.run; dhidden = Zonotope.hidden_bounds };
    { dname = "deeppoly"; drun = Deeppoly.run ?slope:None;
      dhidden = Deeppoly.hidden_bounds ?slope:None };
    { dname = "deeppoly-zero"; drun = Deeppoly.run ~slope:Deeppoly.Always_zero;
      dhidden = Deeppoly.hidden_bounds ~slope:Deeppoly.Always_zero };
    { dname = "deeppoly-one"; drun = Deeppoly.run ~slope:Deeppoly.Always_one;
      dhidden = Deeppoly.hidden_bounds ~slope:Deeppoly.Always_one };
    { dname = "symbolic"; drun = Symbolic.run; dhidden = Symbolic.hidden_bounds }
  ]

let row_margins (problem : Problem.t) y =
  let prop = problem.Problem.property in
  Array.mapi (fun r v -> v +. prop.Property.d.(r)) (Matrix.mv prop.Property.c y)

(* The hidden pre-activations of every probe point must lie inside the
   domain's per-layer interval concretisation. *)
let containment_failure cfg ~dname ~gamma_str problem (bounds : Bounds.t array) points =
  let affine = problem.Problem.affine in
  let bad = ref None in
  Array.iter
    (fun x ->
      if !bad = None then begin
        let pre = Affine.pre_activations affine x in
        Array.iteri
          (fun l (b : Bounds.t) ->
            if !bad = None then
              Array.iteri
                (fun i v ->
                  if !bad = None
                     && (v < b.Bounds.lower.(i) -. cfg.tol || v > b.Bounds.upper.(i) +. cfg.tol)
                  then
                    bad :=
                      Some
                        (Printf.sprintf
                           "%s: layer %d neuron %d pre-activation %.9g outside [%.9g, %.9g] (gamma %s)"
                           dname l i v b.Bounds.lower.(i) b.Bounds.upper.(i) gamma_str))
                pre.(l))
          bounds
      end)
    points;
  !bad

(* Split constraints matching a concrete point's actual phases keep the
   point feasible: folded-in bounds must still contain it. *)
let gamma_of_point (problem : Problem.t) x =
  let affine = problem.Problem.affine in
  let pre = Affine.pre_activations affine x in
  let k = Problem.num_relus problem in
  let take = min 2 k in
  let rec build gamma i =
    if i >= take then gamma
    else begin
      (* spread the picked relus over the index range *)
      let relu = i * k / take in
      let layer, idx = Affine.relu_position affine relu in
      let phase = if pre.(layer).(idx) >= 0.0 then Split.Active else Split.Inactive in
      build (Split.extend gamma ~relu ~phase) (i + 1)
    end
  in
  build [] 0

let run_bounds cfg rng problem =
  let points = probe_points cfg rng problem in
  let contain_points =
    (* containment is the expensive check: cap the probe count *)
    if Array.length points > 40 then Array.sub points 0 40 else points
  in
  let worst = min_margin problem points in
  let sampled_rows =
    (* per-row minima over the probes *)
    let nrows = Property.num_constraints problem.Problem.property in
    let mins = Array.make nrows Float.infinity in
    Array.iter
      (fun x ->
        let rm = row_margins problem (Abonn_nn.Network.forward problem.Problem.network x) in
        Array.iteri (fun r v -> if v < mins.(r) then mins.(r) <- v) rm)
      points;
    mins
  in
  let check_domain acc (d : domain) =
    match acc with
    | Fail _ -> acc
    | Pass ->
      let outcome = d.drun problem [] in
      if outcome.Outcome.infeasible then
        failf Bounds "bounds.root-infeasible" "%s reports the unsplit root infeasible" d.dname
      else if outcome.Outcome.phat > worst +. cfg.tol then
        failf Bounds "bounds.phat-unsound"
          "%s claims phat %.9g but a sampled margin is %.9g" d.dname outcome.Outcome.phat
          worst
      else begin
        let rl = outcome.Outcome.row_lower in
        let row_bad = ref Pass in
        if Array.length rl = Array.length sampled_rows then
          Array.iteri
            (fun r lo ->
              if is_pass !row_bad && lo > sampled_rows.(r) +. cfg.tol then
                row_bad :=
                  failf Bounds "bounds.row-lower-unsound"
                    "%s row %d claims lower bound %.9g but a sampled row margin is %.9g"
                    d.dname r lo sampled_rows.(r))
            rl;
        match !row_bad with
        | Fail _ as f -> f
        | Pass ->
          (match d.dhidden problem [] with
           | None ->
             failf Bounds "bounds.root-infeasible" "%s hidden_bounds None at the root" d.dname
           | Some bounds ->
             (match containment_failure cfg ~dname:d.dname ~gamma_str:"ε" problem bounds
                      contain_points with
              | Some msg -> fail Bounds "bounds.containment" msg
              | None ->
                (* split folding: constrain two ReLUs to the phases of a
                   probe point; the point must stay inside the bounds *)
                if Problem.num_relus problem = 0 || Array.length contain_points = 0 then Pass
                else begin
                  let x0 = contain_points.(0) in
                  let gamma = gamma_of_point problem x0 in
                  match d.dhidden problem gamma with
                  | None ->
                    failf Bounds "bounds.split-infeasible"
                      "%s declares infeasible a cell containing a concrete point (gamma %s)"
                      d.dname (Split.to_string gamma)
                  | Some bounds ->
                    (match containment_failure cfg ~dname:d.dname
                             ~gamma_str:(Split.to_string gamma) problem bounds [| x0 |] with
                     | Some msg -> fail Bounds "bounds.split-containment" msg
                     | None -> Pass)
                end))
      end
  in
  match List.fold_left check_domain Pass domains with
  | Fail _ as f -> f
  | Pass ->
    (* Documented dominance: DeepPoly and symbolic intersect with forward
       intervals, so neither may be looser than plain IBP.  This is the
       tightness the αβ-CROWN-style stack's bound engine claims. *)
    let phat_of d = (d.drun problem []).Outcome.phat in
    let ibp = phat_of (List.nth domains 0) in
    let dp = phat_of (List.nth domains 2) in
    let sym = phat_of (List.nth domains 5) in
    if dp < ibp -. cfg.tol then
      failf Bounds "bounds.deeppoly-looser-than-interval"
        "deeppoly phat %.9g < interval phat %.9g" dp ibp
    else if sym < ibp -. cfg.tol then
      failf Bounds "bounds.symbolic-looser-than-interval"
        "symbolic phat %.9g < interval phat %.9g" sym ibp
    else Pass

(* --- exact enumeration oracle --- *)

let enumerate_cells problem =
  let k = Problem.num_relus problem in
  let cex = ref None in
  let cells = 1 lsl k in
  (try
     for mask = 0 to cells - 1 do
       let gamma = ref [] in
       for relu = k - 1 downto 0 do
         let phase = if mask land (1 lsl relu) <> 0 then Split.Active else Split.Inactive in
         gamma := { Split.relu; phase } :: !gamma
       done;
       match Exact.resolve problem !gamma with
       | `Verified -> ()
       | `Falsified x ->
         cex := Some x;
         raise Exit
     done
   with Exit -> ());
  !cex

let run_exact cfg rng problem =
  if Problem.num_relus problem > cfg.exact_max_relus then Pass
  else begin
    let points = probe_points cfg rng problem in
    match enumerate_cells problem with
    | Some x when not (Problem.is_counterexample problem x) ->
      failf Exact "exact.bogus-cex" "enumeration produced a non-validating witness (margin %.9g)"
        (Problem.concrete_margin problem x)
    | truth_cex ->
      (* Margins within [tol] of zero are documented tie territory: the
         engines may legitimately land on either side (Exact.resolve's
         -1e-7 slack, Inputsplit's Timeout on ties), so only a strictly
         interior witness counts as a disagreement. *)
      let truth_falsified = truth_cex <> None in
      let truth_interior =
        match truth_cex with
        | Some x -> Problem.concrete_margin problem x < -.cfg.tol
        | None -> false
      in
      let worst = min_margin problem points in
      if (not truth_falsified) && worst < -.cfg.tol then
        failf Exact "exact.misses-sampled-violation"
          "every phase cell verified, yet a sampled point has margin %.9g" worst
      else begin
        let r = Bfs.verify ~budget:(Budget.of_calls cfg.engine_budget) problem in
        match r.Result.verdict with
        | Verdict.Timeout -> Pass
        | Verdict.Verified when truth_interior ->
          failf Exact "exact.engine-disagreement"
            "bfs claims Verified but exact enumeration found a counterexample (margin %.9g)"
            (Problem.concrete_margin problem (Option.get truth_cex))
        | Verdict.Falsified x
          when (not truth_falsified) && Problem.concrete_margin problem x < -.cfg.tol ->
          failf Exact "exact.engine-disagreement"
            "bfs claims Falsified (margin %.9g) but every phase cell verified exactly"
            (Problem.concrete_margin problem x)
        | Verdict.Verified | Verdict.Falsified _ -> Pass
      end
  end

(* --- cross-engine agreement oracle --- *)

(* Sequential engines are pinned to [domains:1] so the oracle stays
   deterministic in (seed, problem) whatever ABONN_DOMAINS says; the
   @d4 rows rerun the frontier engines on a 4-domain work-stealing
   pool, cross-checking parallel against sequential verdicts (the
   up-to-Timeout agreement rule below already absorbs budget-boundary
   scheduling differences). *)
let par_domains = 4

let run_engines cfg _rng problem =
  let budget () = Budget.of_calls cfg.engine_budget in
  let engines =
    [ ("bfs", fun () -> (Bfs.verify ~domains:1 ~budget:(budget ()) problem).Result.verdict);
      ("bestfirst",
       fun () -> (Bestfirst.verify ~domains:1 ~budget:(budget ()) problem).Result.verdict);
      ("abonn",
       fun () ->
         (Abonn_core.Abonn.verify ~domains:1 ~budget:(budget ()) problem).Result.verdict);
      ("ab-crown",
       fun () ->
         (Abonn_crown.Alphabeta.verify ~domains:1 ~budget:(budget ()) problem).Result.verdict);
      ("inputsplit",
       fun () -> (Inputsplit.verify ~domains:1 ~budget:(budget ()) problem).Result.verdict);
      ("bfs@d4",
       fun () ->
         (Bfs.verify ~domains:par_domains ~budget:(budget ()) problem).Result.verdict);
      ("bestfirst@d4",
       fun () ->
         (Bestfirst.verify ~domains:par_domains ~budget:(budget ()) problem).Result.verdict);
      ("abonn@d4",
       fun () ->
         (Abonn_core.Abonn.verify ~domains:par_domains ~budget:(budget ()) problem)
           .Result.verdict);
      ("inputsplit@d4",
       fun () ->
         (Inputsplit.verify ~domains:par_domains ~budget:(budget ()) problem)
           .Result.verdict)
    ]
  in
  let verdicts = List.map (fun (name, f) -> (name, f ())) engines in
  let bogus =
    List.find_opt
      (fun (_, v) ->
        match v with
        | Verdict.Falsified x -> not (Problem.is_counterexample problem x)
        | Verdict.Verified | Verdict.Timeout -> false)
      verdicts
  in
  match bogus with
  | Some (name, Verdict.Falsified x) ->
    failf Engines "engines.bogus-cex"
      "%s reported Falsified with a non-validating witness (margin %.9g)" name
      (Problem.concrete_margin problem x)
  | Some _ | None ->
    let verified = List.filter (fun (_, v) -> Verdict.is_verified v) verdicts in
    (* A Falsified verdict only conflicts with Verified when its witness
       is strictly interior: ties (margin within [tol] of zero) are
       documented ambiguity and either verdict is acceptable. *)
    let falsified_interior =
      List.filter_map
        (fun (name, v) ->
          match v with
          | Verdict.Falsified x ->
            let m = Problem.concrete_margin problem x in
            if m < -.cfg.tol then Some (name, m) else None
          | Verdict.Verified | Verdict.Timeout -> None)
        verdicts
    in
    (match verified, falsified_interior with
     | (vn, _) :: _, (fn, m) :: _ ->
       failf Engines "engines.verdict-conflict"
         "%s claims Verified while %s claims Falsified (margin %.9g)" vn fn m
     | _ -> Pass)

(* --- certificate oracle --- *)

let run_cert cfg _rng problem =
  let result, cert =
    Bfs.verify_with_certificate ~budget:(Budget.of_calls cfg.engine_budget) problem
  in
  match result.Result.verdict, cert with
  | Verdict.Verified, None ->
    fail Cert "cert.missing" "Verified run produced no certificate"
  | Verdict.Verified, Some cert ->
    if Certificate.num_leaves cert < 1 then
      fail Cert "cert.empty" "certificate has no leaves"
    else
      (match Certificate.check problem cert with
       | Ok () -> Pass
       | Error e ->
         failf Cert "cert.rejected" "certificate checker: %s"
           (Format.asprintf "%a" Certificate.pp_error e))
  | (Verdict.Falsified _ | Verdict.Timeout), Some _ ->
    fail Cert "cert.spurious" "non-Verified run produced a certificate"
  | (Verdict.Falsified _ | Verdict.Timeout), None -> Pass

(* --- incremental warm-start oracle --- *)

(* Differential checks for the parent-state bound cache: walk a
   root-to-leaf split path whose phases match a concrete probe point (so
   the point stays feasible in every cell), warm-starting each node from
   its parent exactly as the BaB engines do, and check at every step

   - soundness: the in-cell point's pre-activations and row margins
     respect the warm bounds;
   - lattice containment: the warm child is nowhere looser than its
     parent (exact, no tolerance — intersection guarantees it);
   - warm vs scratch: the warm p̂ is never looser than from-scratch
     DeepPoly on the same gamma;
   - idempotence: re-evaluating the leaf's own gamma warm from its own
     state reproduces its outcome bit-for-bit;

   then replay two engines cache-on vs cache-off: solved verdicts must
   agree in polarity and every Falsified witness must validate. *)

let contained_in_parent (warm : Outcome.t) (parent : Incremental.t) =
  let bad = ref None in
  Array.iteri
    (fun l (b : Bounds.t) ->
      if !bad = None && l < Array.length parent.Incremental.pre_bounds then begin
        let p = parent.Incremental.pre_bounds.(l) in
        Array.iteri
          (fun i lo ->
            if !bad = None
               && (lo < p.Bounds.lower.(i) || b.Bounds.upper.(i) > p.Bounds.upper.(i))
            then
              bad :=
                Some
                  (Printf.sprintf
                     "layer %d neuron %d: warm [%.9g, %.9g] not inside parent [%.9g, %.9g]"
                     l i lo b.Bounds.upper.(i) p.Bounds.lower.(i) p.Bounds.upper.(i)))
          b.Bounds.lower
      end)
    warm.Outcome.pre_bounds;
  (match !bad with
   | None ->
     let prl = parent.Incremental.row_lower in
     if Array.length warm.Outcome.row_lower = Array.length prl then
       Array.iteri
         (fun r lo ->
           if !bad = None && lo < prl.(r) then
             bad := Some (Printf.sprintf "row %d: warm lower %.9g below parent %.9g" r lo prl.(r)))
         warm.Outcome.row_lower
   | Some _ -> ());
  !bad

let run_incremental cfg rng problem =
  let slope = Deeppoly.Adaptive in
  let k = Problem.num_relus problem in
  let points = probe_points cfg rng problem in
  let walk_verdict =
    if k = 0 || Array.length points = 0 then Pass
    else begin
      let x0 = points.(0) in
      let affine = problem.Problem.affine in
      let pre = Affine.pre_activations affine x0 in
      let rows0 = row_margins problem (Abonn_nn.Network.forward problem.Problem.network x0) in
      let steps = min 3 k in
      let result = ref Pass in
      let gamma = ref [] and state = ref None in
      let step_check parent (warm : Outcome.t) (scratch : Outcome.t) =
        let gs = Split.to_string !gamma in
        if warm.Outcome.infeasible then
          failf Incremental "incremental.spurious-infeasible"
            "warm DeepPoly declares infeasible a cell containing a concrete point (gamma %s)" gs
        else if warm.Outcome.phat > Problem.concrete_margin problem x0 +. cfg.tol then
          failf Incremental "incremental.phat-unsound"
            "warm phat %.9g exceeds the margin %.9g of an in-cell point (gamma %s)"
            warm.Outcome.phat (Problem.concrete_margin problem x0) gs
        else begin
          let row_bad = ref Pass in
          if Array.length warm.Outcome.row_lower = Array.length rows0 then
            Array.iteri
              (fun r lo ->
                if is_pass !row_bad && lo > rows0.(r) +. cfg.tol then
                  row_bad :=
                    failf Incremental "incremental.row-lower-unsound"
                      "warm row %d lower bound %.9g exceeds the in-cell margin %.9g (gamma %s)"
                      r lo rows0.(r) gs)
              warm.Outcome.row_lower;
          match !row_bad with
          | Fail _ as f -> f
          | Pass ->
            (match containment_failure cfg ~dname:"deeppoly-warm" ~gamma_str:gs problem
                     warm.Outcome.pre_bounds [| x0 |] with
             | Some msg -> fail Incremental "incremental.containment" msg
             | None ->
               if warm.Outcome.phat < scratch.Outcome.phat -. cfg.tol then
                 failf Incremental "incremental.looser-than-scratch"
                   "warm phat %.9g is looser than from-scratch phat %.9g (gamma %s)"
                   warm.Outcome.phat scratch.Outcome.phat gs
               else
                 (match parent with
                  | None -> Pass
                  | Some p ->
                    (match contained_in_parent warm p with
                     | Some msg ->
                       failf Incremental "incremental.not-contained-in-parent" "%s (gamma %s)"
                         msg gs
                     | None -> Pass)))
        end
      in
      (try
         for i = 0 to steps - 1 do
           let relu = i * k / steps in
           let layer, idx = Affine.relu_position affine relu in
           let phase = if pre.(layer).(idx) >= 0.0 then Split.Active else Split.Inactive in
           gamma := Split.extend !gamma ~relu ~phase;
           let scratch = Deeppoly.run ~slope problem !gamma in
           let parent = !state in
           let warm, next = Deeppoly.run_warm ~slope ?state:parent problem !gamma in
           (match step_check parent warm scratch with
            | Pass -> ()
            | Fail _ as f ->
              result := f;
              raise Exit);
           (* idempotence: the node's own state reproduces its outcome *)
           (match next with
            | None ->
              result :=
                failf Incremental "incremental.state-dropped"
                  "feasible warm evaluation returned no reusable state (gamma %s)"
                  (Split.to_string !gamma);
              raise Exit
            | Some st ->
              let again, _ = Deeppoly.run_warm ~slope ~state:st problem !gamma in
              let same_rows =
                Array.length again.Outcome.row_lower = Array.length warm.Outcome.row_lower
                && Array.for_all2 Float.equal again.Outcome.row_lower warm.Outcome.row_lower
              in
              if not (Float.equal again.Outcome.phat warm.Outcome.phat && same_rows) then begin
                result :=
                  failf Incremental "incremental.same-gamma-drift"
                    "re-evaluating gamma %s from its own state drifts: phat %.17g vs %.17g"
                    (Split.to_string !gamma) again.Outcome.phat warm.Outcome.phat;
                raise Exit
              end);
           state := next
         done
       with Exit -> ());
      !result
    end
  in
  match walk_verdict with
  | Fail _ as f -> f
  | Pass ->
    (* cache-on vs cache-off engine agreement *)
    let budget () = Budget.of_calls cfg.engine_budget in
    let engines =
      [ ("bfs", fun () -> (Bfs.verify ~budget:(budget ()) problem).Result.verdict);
        ("bestfirst", fun () -> (Bestfirst.verify ~budget:(budget ()) problem).Result.verdict)
      ]
    in
    let check_engine acc (name, f) =
      match acc with
      | Fail _ -> acc
      | Pass ->
        let on = Incremental.with_enabled true f in
        let off = Incremental.with_enabled false f in
        let bogus v =
          match v with
          | Verdict.Falsified x -> not (Problem.is_counterexample problem x)
          | Verdict.Verified | Verdict.Timeout -> false
        in
        if bogus on || bogus off then
          failf Incremental "incremental.bogus-cex"
            "%s (cache %s) reported Falsified with a non-validating witness" name
            (if bogus on then "on" else "off")
        else begin
          (* ties (margin within tol of 0) may legitimately land on either
             side; only a strictly interior witness conflicts *)
          let interior v =
            match v with
            | Verdict.Falsified x -> Problem.concrete_margin problem x < -.cfg.tol
            | Verdict.Verified | Verdict.Timeout -> false
          in
          match (on, off) with
          | Verdict.Verified, f when interior f ->
            failf Incremental "incremental.cache-verdict-conflict"
              "%s: Verified with cache on, interior Falsified with cache off" name
          | f, Verdict.Verified when interior f ->
            failf Incremental "incremental.cache-verdict-conflict"
              "%s: interior Falsified with cache on, Verified with cache off" name
          | _ -> Pass
        end
    in
    List.fold_left check_engine Pass engines

(* --- LP warm-start oracle --- *)

(* Differential checks for the warm-started dual simplex: walk a
   root-to-leaf split path whose phases match a concrete probe point,
   warm-starting each LP call from its parent's cached basis exactly as
   the BaB engines do, and check at every node

   - warm vs cold: the warm p̂ and per-row bounds match a cold solve of
     the same polytope within [tol] (same optima, different pivot order);
   - soundness: the in-cell point's margin and row margins respect the
     warm bounds, and no cell containing the point is declared
     infeasible;
   - dominance: the LP is never looser than DeepPoly on the same gamma
     (the tightness Lp_verifier documents);

   then replay BFS with the LP AppVer warm-on vs warm-off: solved
   verdicts must agree in polarity and every Falsified witness must
   validate. *)

let run_lp cfg rng problem =
  (* a fresh cache makes the oracle deterministic in (seed, problem) *)
  Lp_verifier.clear_warm_cache ();
  let k = Problem.num_relus problem in
  let points = probe_points cfg rng problem in
  let walk_verdict =
    if Array.length points = 0 then Pass
    else begin
      let x0 = points.(0) in
      let affine = problem.Problem.affine in
      let pre = Affine.pre_activations affine x0 in
      let margin0 = Problem.concrete_margin problem x0 in
      let rows0 = row_margins problem (Abonn_nn.Network.forward problem.Problem.network x0) in
      let steps = min 3 k in
      let result = ref Pass in
      let gamma = ref [] and state = ref None in
      let check_node (warm : Outcome.t) (cold : Outcome.t) =
        let gs = Split.to_string !gamma in
        if warm.Outcome.infeasible || cold.Outcome.infeasible then
          failf Lp "lp.spurious-infeasible"
            "LP (%s) declares infeasible a cell containing a concrete point (gamma %s)"
            (if warm.Outcome.infeasible then "warm" else "cold")
            gs
        else if warm.Outcome.phat > margin0 +. cfg.tol then
          failf Lp "lp.phat-unsound"
            "warm LP phat %.9g exceeds the margin %.9g of an in-cell point (gamma %s)"
            warm.Outcome.phat margin0 gs
        else if warm.Outcome.phat < cold.Outcome.phat -. cfg.tol then
          (* one-sided: the warm path inherits monotonically tightened
             DeepPoly pre-activation bounds from the parent state, so it
             may legitimately be *tighter* than a from-scratch cold
             solve — but never looser *)
          failf Lp "lp.warm-cold-divergence"
            "warm phat %.17g is looser than cold phat %.17g (gamma %s)"
            warm.Outcome.phat cold.Outcome.phat gs
        else begin
          let row_bad = ref Pass in
          if Array.length warm.Outcome.row_lower = Array.length rows0 then
            Array.iteri
              (fun r lo ->
                if is_pass !row_bad && lo > rows0.(r) +. cfg.tol then
                  row_bad :=
                    failf Lp "lp.row-lower-unsound"
                      "warm LP row %d lower bound %.9g exceeds the in-cell margin %.9g (gamma %s)"
                      r lo rows0.(r) gs)
              warm.Outcome.row_lower;
          if is_pass !row_bad
             && Array.length warm.Outcome.row_lower = Array.length cold.Outcome.row_lower
          then
            Array.iteri
              (fun r lo ->
                if is_pass !row_bad
                   && lo < cold.Outcome.row_lower.(r) -. cfg.tol
                then
                  row_bad :=
                    failf Lp "lp.warm-cold-divergence"
                      "warm row %d lower bound %.17g is looser than cold %.17g (gamma %s)"
                      r lo cold.Outcome.row_lower.(r) gs)
              warm.Outcome.row_lower;
          match !row_bad with
          | Fail _ as f -> f
          | Pass ->
            let dp = Deeppoly.run problem !gamma in
            if (not dp.Outcome.infeasible)
               && warm.Outcome.phat < dp.Outcome.phat -. cfg.tol
            then
              failf Lp "lp.looser-than-deeppoly"
                "LP phat %.9g is looser than DeepPoly phat %.9g (gamma %s)"
                warm.Outcome.phat dp.Outcome.phat gs
            else Pass
        end
      in
      (try
         (* i = 0 is the unsplit root (caches the first basis); each
            further step extends gamma by one phase-matched ReLU *)
         for i = 0 to steps do
           if i > 0 then begin
             let relu = (i - 1) * k / steps in
             let layer, idx = Affine.relu_position affine relu in
             let phase = if pre.(layer).(idx) >= 0.0 then Split.Active else Split.Inactive in
             gamma := Split.extend !gamma ~relu ~phase
           end;
           let cold = Lp_verifier.run problem !gamma in
           let warm, next = Lp_verifier.run_warm ?state:!state problem !gamma in
           (match check_node warm cold with
            | Pass -> ()
            | Fail _ as f ->
              result := f;
              raise Exit);
           state := next
         done
       with Exit -> ());
      !result
    end
  in
  match walk_verdict with
  | Fail _ as f -> f
  | Pass ->
    (* warm-on vs warm-off engine agreement with the LP AppVer *)
    let budget () = Budget.of_calls cfg.engine_budget in
    let verdict_of () =
      (Bfs.verify ~appver:Lp_verifier.appver ~budget:(budget ()) problem).Result.verdict
    in
    let on = Lp_verifier.with_warm_enabled true verdict_of in
    let off = Lp_verifier.with_warm_enabled false verdict_of in
    let bogus v =
      match v with
      | Verdict.Falsified x -> not (Problem.is_counterexample problem x)
      | Verdict.Verified | Verdict.Timeout -> false
    in
    if bogus on || bogus off then
      failf Lp "lp.bogus-cex"
        "bfs+lp (warm %s) reported Falsified with a non-validating witness"
        (if bogus on then "on" else "off")
    else begin
      let interior v =
        match v with
        | Verdict.Falsified x -> Problem.concrete_margin problem x < -.cfg.tol
        | Verdict.Verified | Verdict.Timeout -> false
      in
      match (on, off) with
      | Verdict.Verified, f when interior f ->
        fail Lp "lp.warm-verdict-conflict"
          "bfs+lp: Verified warm, interior Falsified cold"
      | f, Verdict.Verified when interior f ->
        fail Lp "lp.warm-verdict-conflict"
          "bfs+lp: interior Falsified warm, Verified cold"
      | _ -> Pass
    end

(* --- problem-ingestion format oracle --- *)

(* Differential checks for the ONNX + VNNLIB front-end (docs/FORMATS.md):
   the in-memory problem is the ground truth, and the wire formats must
   reproduce it.

   - ONNX: serialization is deterministic, the reader accepts the
     writer's output, the reparsed network agrees with the original on
     every probe point, and [parse . print] is a fixpoint (byte
     stability of the canonical form);
   - VNNLIB: [of_problem] round-trips exactly ([%.17g] floats) through
     [to_string] and [parse], and the printer is a fixpoint;
   - lowering: BFS on the native problem and joined per-disjunct BFS on
     the round-tripped spec over the round-tripped network must agree up
     to Timeout (ties within [tol] of zero are documented ambiguity);
   - max-gadget: on multi-row properties, lowering a conjunctive
     two-literal disjunct must produce a network computing exactly
     [max(g_0, g_1)] at every probe point (the exactness the
     DNF-splitting semantics relies on). *)

let run_formats cfg rng problem =
  let network = problem.Problem.network in
  let all_points = probe_points cfg rng problem in
  let points =
    if Array.length all_points > 40 then Array.sub all_points 0 40 else all_points
  in
  let forward_disagreement a b =
    let bad = ref None in
    Array.iter
      (fun x ->
        if !bad = None then begin
          let ya = Network.forward a x and yb = Network.forward b x in
          Array.iteri
            (fun i v ->
              if !bad = None && abs_float (v -. yb.(i)) > cfg.tol then
                bad := Some (i, v, yb.(i)))
            ya
        end)
      points;
    !bad
  in
  let onnx_verdict =
    List.fold_left
      (fun acc (sname, style) ->
        match acc with
        | Fail _ -> acc
        | Pass -> (
          let bytes = Onnx.to_bytes ~style network in
          if not (String.equal bytes (Onnx.to_bytes ~style network)) then
            failf Formats "formats.onnx-nondeterministic"
              "%s serialization of the same network differs between calls" sname
          else
            match Onnx.of_bytes bytes with
            | exception Parse_error.Error e ->
              failf Formats "formats.onnx-reject-own-output" "%s: %s" sname
                (Parse_error.to_string e)
            | reparsed -> (
              match forward_disagreement network reparsed with
              | Some (i, a, b) ->
                failf Formats "formats.onnx-forward-drift"
                  "%s: output %d drifts through the round-trip: %.17g vs %.17g"
                  sname i a b
              | None ->
                if not (String.equal bytes (Onnx.to_bytes ~style reparsed)) then
                  failf Formats "formats.onnx-reprint-unstable"
                    "%s: parse . print is not a fixpoint" sname
                else Pass)))
      Pass
      [ ("gemm", Onnx.Gemm); ("matmul_add", Onnx.Matmul_add) ]
  in
  match onnx_verdict with
  | Fail _ as f -> f
  | Pass -> (
    let spec = Vnnlib.of_problem problem in
    let text = Vnnlib.to_string spec in
    match Vnnlib.parse text with
    | exception Parse_error.Error e ->
      failf Formats "formats.vnnlib-reject-own-output" "%s" (Parse_error.to_string e)
    | spec' ->
      if spec' <> spec then
        fail Formats "formats.vnnlib-roundtrip-drift"
          "parse (to_string spec) differs structurally from spec"
      else if not (String.equal (Vnnlib.to_string spec') text) then
        fail Formats "formats.vnnlib-reprint-unstable" "print . parse is not a fixpoint"
      else begin
        (* lowering agreement: native vs joined per-disjunct verdicts *)
        let budget () = Budget.of_calls cfg.engine_budget in
        let native =
          (Bfs.verify ~domains:1 ~budget:(budget ()) problem).Result.verdict
        in
        let through =
          Vnnlib.join_verdicts
            (List.map
               (fun p -> (Bfs.verify ~domains:1 ~budget:(budget ()) p).Result.verdict)
               (Vnnlib.problems ~network:(Onnx.of_bytes (Onnx.to_bytes network)) spec'))
        in
        let interior v =
          match v with
          | Verdict.Falsified x -> Problem.concrete_margin problem x < -.cfg.tol
          | Verdict.Verified | Verdict.Timeout -> false
        in
        let conflict =
          match (native, through) with
          | Verdict.Verified, f when interior f ->
            failf Formats "formats.lowering-verdict-conflict"
              "native BFS claims Verified, the onnx+vnnlib path Falsified (margin %.9g)"
              (Problem.concrete_margin problem
                 (Option.get (Verdict.counterexample through)))
          | f, Verdict.Verified when interior f ->
            failf Formats "formats.lowering-verdict-conflict"
              "native BFS claims Falsified (margin %.9g), the onnx+vnnlib path Verified"
              (Problem.concrete_margin problem
                 (Option.get (Verdict.counterexample native)))
          | _ -> Pass
        in
        match conflict with
        | Fail _ as f -> f
        | Pass ->
          let prop = problem.Problem.property in
          let nrows = Property.num_constraints prop in
          if nrows < 2 then Pass
          else begin
            (* exact max-gadget: lower a conjunctive 2-literal disjunct *)
            let region = problem.Problem.region in
            let lit r =
              { Vnnlib.coeffs = Matrix.row prop.Property.c r;
                offset = prop.Property.d.(r) }
            in
            let conj =
              { Vnnlib.num_inputs = Region.dim region;
                num_outputs = Network.output_dim network;
                lower = Array.copy region.Region.lower;
                upper = Array.copy region.Region.upper;
                disjuncts = [ [ lit 0; lit 1 ] ] }
            in
            match Vnnlib.problems ~network conj with
            | [ gp ] ->
              let bad = ref Pass in
              Array.iter
                (fun x ->
                  if is_pass !bad then begin
                    let y = Network.forward network x in
                    let g r =
                      let l = lit r in
                      let acc = ref l.Vnnlib.offset in
                      Array.iteri (fun i c -> acc := !acc +. (c *. y.(i))) l.Vnnlib.coeffs;
                      !acc
                    in
                    let expected = Float.max (g 0) (g 1) in
                    let got = (Network.forward gp.Problem.network x).(0) in
                    if abs_float (expected -. got) > cfg.tol then
                      bad :=
                        failf Formats "formats.gadget-inexact"
                          "max-gadget output %.17g differs from max(g0, g1) = %.17g"
                          got expected
                  end)
                points;
              !bad
            | probs ->
              failf Formats "formats.lowering-shape"
                "one conjunctive disjunct lowered to %d problems" (List.length probs)
          end
      end)

(* --- dispatch --- *)

let run ?(config = default_config) ~seed family problem =
  if Obs.active () then Obs.incr (Printf.sprintf "fuzz.oracle.%s" (family_name family));
  let rng = Rng.create seed in
  let go =
    match family with
    | Sampling -> run_sampling
    | Bounds -> run_bounds
    | Exact -> run_exact
    | Engines -> run_engines
    | Cert -> run_cert
    | Incremental -> run_incremental
    | Lp -> run_lp
    | Formats -> run_formats
  in
  try go config rng problem with
  | Stack_overflow | Out_of_memory as e -> raise e
  | e ->
    fail family
      (family_name family ^ ".exception")
      (Printexc.to_string e)

let run_families ?config ~seed families problem =
  List.fold_left
    (fun acc f -> match acc with Fail _ -> acc | Pass -> run ?config ~seed f problem)
    Pass families
