module Rng = Abonn_util.Rng
module Onnx = Abonn_nn.Onnx
module Builder = Abonn_nn.Builder
module Vnnlib = Abonn_spec.Vnnlib
module Acas = Abonn_data.Acas

let mlp () = Builder.mlp (Rng.create 11) ~dims:[ 3; 8; 8; 2 ]

let conv () =
  Builder.convnet (Rng.create 12) ~in_channels:1 ~in_h:6 ~in_w:6
    ~convs:[ { Builder.out_channels = 2; kernel = 3; stride = 1; padding = 1 } ]
    ~dense:[ 8 ] ~num_classes:3

let acas_net () = Acas.network ~hidden_layers:2 ~width:8 ~seed:1 ()
let acas_p1 () = Acas.spec ~network:(acas_net ()) ~seed:1 Acas.P1
let acas_p2 () = Acas.spec ~network:(acas_net ()) ~seed:1 Acas.P2

(* Hand-written (non-canonical) VNNLIB texts: comments, odd whitespace,
   bounds under (and ...), nested term shapes — everything the parser
   must accept beyond its own printer's output. *)
let box_simple =
  ";; simple box, single output literal\n\
   (declare-const X_0 Real)\n\
   (declare-const X_1 Real)\n\
   (declare-const X_2 Real)\n\
   (declare-const Y_0 Real)\n\
   (declare-const Y_1 Real)\n\
   (assert (<= X_0 0.5))\n\
   (assert (>= X_0 -0.5))\n\
   (assert (<= X_1 1.0))\n\
   (assert (>= X_1 0.0))\n\
   (assert (<= X_2 0.25))\n\
   (assert (>= X_2 -0.25))\n\
   ; violation: the first output exceeds 1.5\n\
   (assert (>= Y_0 1.5))\n"

let conjunctive =
  "(declare-const X_0 Real)\n\
   (declare-const X_1 Real)\n\
   (declare-const X_2 Real)\n\
   (declare-const Y_0 Real)\n\
   (declare-const Y_1 Real)\n\
   (assert (and (>= X_0 -1.0) (<= X_0 1.0)))\n\
   (assert (and (>= X_1 -1.0) (<= X_1 1.0)))\n\
   (assert (and (>= X_2 -1.0) (<= X_2 1.0)))\n\
   (assert (and (<= Y_0 Y_1) (<= Y_1 0.0)))\n"

let disjunctive =
  "(declare-const X_0 Real)\n\
   (declare-const X_1 Real)\n\
   (declare-const X_2 Real)\n\
   (declare-const Y_0 Real)\n\
   (declare-const Y_1 Real)\n\
   (assert (>= X_0 -0.25))  (assert (<= X_0 0.25))\n\
   (assert (>= X_1 -0.25))  (assert (<= X_1 0.25))\n\
   (assert (>= X_2 -0.25))  (assert (<= X_2 0.25))\n\
   (assert (or (and (>= Y_0 Y_1) (>= Y_0 0.0))\n\
   \            (<= (+ Y_0 Y_1) -2.0)\n\
   \            (>= (* 2.0 Y_1) 4.0)))\n"

let unbalanced_vnnlib =
  "(declare-const X_0 Real)\n\
   (declare-const Y_0 Real)\n\
   (assert (>= X_0 0.0))\n\
   (assert (<= X_0 1.0))\n\
   (assert (<= Y_0 1.0)\n"

let unknown_op_vnnlib =
  "(declare-const X_0 Real)\n\
   (declare-const Y_0 Real)\n\
   (assert (>= X_0 0.0))\n\
   (assert (<= X_0 1.0))\n\
   (assert (<= (pow Y_0 2.0) 1.0))\n"

let replace_first ~pattern ~by s =
  let plen = String.length pattern in
  let rec find i =
    if i + plen > String.length s then None
    else if String.sub s i plen = pattern then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> invalid_arg "Formats_corpus.replace_first: pattern not found"
  | Some i ->
    String.sub s 0 i ^ by ^ String.sub s (i + plen) (String.length s - i - plen)

let entries () =
  let mlp = mlp () in
  let mlp_gemm = Onnx.to_bytes mlp in
  [ ("mlp_gemm.onnx", mlp_gemm);
    ("mlp_matmul_add.onnx", Onnx.to_bytes ~style:Onnx.Matmul_add mlp);
    ("mlp_f32.onnx", Onnx.to_bytes ~precision:Onnx.F32 mlp);
    ("conv_small.onnx", Onnx.to_bytes (conv ()));
    ("acas_tiny.onnx", Onnx.to_bytes (acas_net ()));
    ("box_simple.vnnlib", box_simple);
    ("conjunctive.vnnlib", conjunctive);
    ("disjunctive.vnnlib", disjunctive);
    ("acas_prop1.vnnlib", Vnnlib.to_string (acas_p1 ()));
    ("acas_prop2.vnnlib", Vnnlib.to_string (acas_p2 ()));
    (* malformed inputs: each must fail with a positioned error *)
    ("malformed/truncated.onnx", String.sub mlp_gemm 0 60);
    ("malformed/badwire.onnx", "\x0f\x01");
    ( "malformed/unknown_op.onnx",
      (* the first Gemm node renamed to an op the reader does not know *)
      replace_first ~pattern:"\x22\x04Gemm" ~by:"\x22\x04Gelu" mlp_gemm );
    ("malformed/unbalanced.vnnlib", unbalanced_vnnlib);
    ("malformed/unknown_op.vnnlib", unknown_op_vnnlib) ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_dir dir =
  List.filter_map
    (fun (name, bytes) ->
      let path = Filename.concat dir name in
      if not (Sys.file_exists path) then Some (name, "missing")
      else if read_file path <> bytes then Some (name, "bytes differ from recipe")
      else None)
    (entries ())

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_dir dir =
  List.iter
    (fun (name, bytes) ->
      let path = Filename.concat dir name in
      mkdir_p (Filename.dirname path);
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc bytes))
    (entries ())
