(** Soundness oracles: independent ground-truth checks for one problem.

    Each family interrogates a different layer of the stack and knows a
    cheaper or independent way to refute it:

    - {b Sampling}: concrete forward passes are the ultimate authority —
      any sampled violation refutes a [Verified] claim, and every
      reported counterexample must validate concretely.
    - {b Bounds}: the bound lattice.  Every propagation domain's hidden
      interval concretisations must contain the sampled pre-activations
      (at the root and under split constraints), every certified [p̂] and
      per-row lower bound must under-approximate the sampled margins, and
      the documented dominance order (DeepPoly and symbolic at least as
      tight as plain intervals — the bound the αβ-CROWN-style stack
      claims) must hold.
    - {b Exact}: on nets with ≤ {!config.exact_max_relus} ReLUs, full
      enumeration of every ReLU phase cell through
      {!Abonn_bab.Exact.resolve} computes the true verdict, which the
      search engines and the sampled margins must both agree with.
    - {b Engines}: all five search engines (BFS, best-first, ABONN,
      αβ-CROWN-style, input splitting) must agree up to [Timeout], and
      every [Falsified] must carry a genuine counterexample.  Each
      frontier engine is additionally rerun on a 4-domain work-stealing
      pool (the [@d4] rows), differentially checking parallel against
      sequential verdicts — the executable form of the
      docs/PARALLELISM.md verdict-determinism contract.
    - {b Cert}: a [Verified] BFS run must produce a certificate that
      passes {!Abonn_bab.Certificate.check}; non-verified runs must not
      produce one.
    - {b Incremental}: the warm-started bound cache.  Along a
      root-to-leaf split path matching a probe point's ReLU phases, each
      warm DeepPoly evaluation must stay sound for the in-cell point,
      be contained in its parent's bounds (exact — intersection
      guarantees it), be no looser than from-scratch DeepPoly, and
      reproduce itself bit-for-bit when re-evaluated from its own state;
      BFS and best-first must agree cache-on vs cache-off up to ties.
    - {b Formats}: the problem-ingestion front-end (docs/FORMATS.md).
      ONNX serialization must be deterministic, accepted back by its own
      reader with no forward drift beyond [tol], and a [parse . print]
      fixpoint; [Vnnlib.of_problem] must round-trip exactly through
      [to_string] and [parse]; BFS on the native problem and joined
      per-disjunct BFS on the round-tripped spec over the round-tripped
      network must agree up to [Timeout]; and on multi-row properties
      the lowered conjunctive max-gadget must compute [max(g_0, g_1)]
      exactly at every probe point.
    - {b Lp}: the warm-started dual simplex.  Along the same kind of
      phase-matched root-to-leaf path, each warm-started LP call
      ({!Abonn_lp.Lp_verifier.run_warm}, reusing the parent's cached
      optimal basis) must never be looser than a from-scratch cold
      solve of the same node (p̂ and every per-row bound; it may be
      tighter — the warm path inherits monotonically tightened
      pre-activation bounds from the parent), stay sound for the in-cell
      point, never declare its cell infeasible, and never be looser than
      DeepPoly on the same gamma; BFS with the LP AppVer must agree
      warm-on vs warm-off up to ties.

    Oracles are deterministic in [(seed, problem)] and never raise: an
    escaped exception is itself reported as a failure. *)

type family = Sampling | Bounds | Exact | Engines | Cert | Incremental | Lp | Formats

val all_families : family list

val family_name : family -> string
(** ["sampling" | "bounds" | "exact" | "engines" | "cert" | "incremental"
    | "lp" | "formats"]. *)

val family_of_string : string -> family option

type failure = {
  family : family;
  check : string;   (** dotted id of the violated invariant, e.g. ["bounds.phat-unsound"] *)
  detail : string;  (** human-readable evidence *)
}

type verdict = Pass | Fail of failure

val is_pass : verdict -> bool

type config = {
  samples : int;         (** sampled points per case (corners are added on top) *)
  engine_budget : int;   (** AppVer-call budget per engine invocation *)
  exact_max_relus : int; (** enumeration cap for the [Exact] family *)
  tol : float;           (** float slack for every soundness comparison *)
}

val default_config : config
(** 120 samples, 600-call budgets, 6-ReLU enumeration cap, [tol = 1e-6]. *)

val run : ?config:config -> seed:int -> family -> Abonn_spec.Problem.t -> verdict
(** Run one family.  [seed] drives the sampling stream. *)

val run_families :
  ?config:config -> seed:int -> family list -> Abonn_spec.Problem.t -> verdict
(** Run several families in order; the first failure wins. *)
