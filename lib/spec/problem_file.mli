(** Textual problem files — a VNNLIB-style interchange format.

    A problem file names a network (path to an [Abonn_nn.Serialize]
    file, resolved relative to the problem file) and states Φ and Ψ in a
    line-oriented format:

    {v
    abonn-problem 1
    network mnist_l2.net
    box-lower 0 0 0.1 ...
    box-upper 1 1 0.9 ...
    robustness 10 3
    v}

    or, for L∞ balls and explicit linear properties:

    {v
    abonn-problem 1
    network net.net
    center 0.5 0.5
    eps 0.03
    clip 0 1
    constraint 2.5 1 0        # offset followed by coefficients: y0 + 2.5 > 0
    constraint 0 1 -1         # y0 - y1 > 0
    v}

    Every robustness benchmark instance can be exported with
    [write_instance] and reloaded with [load], making runs reproducible
    from the command line without re-training. *)

val load : string -> Problem.t
(** [load path] parses the problem file and its referenced network.
    Raises {!Abonn_util.Parse_error.Error} with the 1-based line/column
    and offending token on malformed input (including an unloadable
    network reference), [Sys_error] on a missing problem file. *)

val save : Problem.t -> network_path:string -> string -> unit
(** [save problem ~network_path path] writes the problem file to [path]
    and the network to [network_path] (stored relative to [path]'s
    directory when possible). *)

val to_string : Problem.t -> network_ref:string -> string
(** Render just the problem file body, referencing the network as
    [network_ref]. *)

val of_string : ?dir:string -> ?source:string -> string -> Problem.t
(** Parse from a string; [dir] (default ".") resolves the network
    reference, [source] (default ["<string>"]) labels positions in
    error messages. *)
