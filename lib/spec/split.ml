type phase = Active | Inactive

type constr = { relu : int; phase : phase }

type gamma = constr list

let phase_equal a b =
  match a, b with
  | Active, Active | Inactive, Inactive -> true
  | Active, Inactive | Inactive, Active -> false

let opposite = function Active -> Inactive | Inactive -> Active

let constrained gamma ~relu =
  List.find_map (fun c -> if c.relu = relu then Some c.phase else None) gamma

let extend gamma ~relu ~phase =
  match constrained gamma ~relu with
  | Some _ -> invalid_arg (Printf.sprintf "Split.extend: relu %d already constrained" relu)
  | None -> gamma @ [ { relu; phase } ]

let depth = List.length

let relu_indices gamma = List.map (fun c -> c.relu) gamma

let satisfied_by affine gamma x =
  let pre = Abonn_nn.Affine.pre_activations affine x in
  List.for_all
    (fun c ->
      let layer, idx = Abonn_nn.Affine.relu_position affine c.relu in
      let v = pre.(layer).(idx) in
      match c.phase with Active -> v >= 0.0 | Inactive -> v <= 0.0)
    gamma

let pp_phase fmt = function
  | Active -> Format.pp_print_string fmt "+"
  | Inactive -> Format.pp_print_string fmt "-"

let pp fmt gamma =
  if gamma = [] then Format.pp_print_string fmt "ε"
  else
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ".")
      (fun fmt c -> Format.fprintf fmt "r%d%a" c.relu pp_phase c.phase)
      fmt gamma

let to_string gamma = Format.asprintf "%a" pp gamma

let of_string s =
  if s = "ε" || s = "" then []
  else
    String.split_on_char '.' s
    |> List.map (fun tok ->
           let tok = String.trim tok in
           let fail () = invalid_arg (Printf.sprintf "Split.of_string: bad token %S" tok) in
           let n = String.length tok in
           if n < 3 || tok.[0] <> 'r' then fail ();
           let phase =
             match tok.[n - 1] with '+' -> Active | '-' -> Inactive | _ -> fail ()
           in
           match int_of_string_opt (String.sub tok 1 (n - 2)) with
           | Some relu when relu >= 0 -> { relu; phase }
           | Some _ | None -> fail ())
