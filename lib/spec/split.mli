(** ReLU split constraints and BaB node identifiers Γ (§III "BaB Tree").

    A split fixes the phase of one ReLU unit (identified by its global
    index in the compiled [Abonn_nn.Affine] form): [Active] asserts the
    pre-activation is non-negative ([r⁺] in the paper), [Inactive]
    asserts it is non-positive ([r⁻]).  A node of the BaB tree is the
    sequence Γ of splits on the path from the root. *)

type phase = Active | Inactive

type constr = { relu : int; phase : phase }

type gamma = constr list
(** Root-to-node order; the root is []. *)

val phase_equal : phase -> phase -> bool
val opposite : phase -> phase

val extend : gamma -> relu:int -> phase:phase -> gamma
(** Append one split.  Raises [Invalid_argument] if [relu] is already
    constrained in Γ (a ReLU is split at most once on a path). *)

val depth : gamma -> int
val constrained : gamma -> relu:int -> phase option
val relu_indices : gamma -> int list

val satisfied_by :
  Abonn_nn.Affine.t -> gamma -> float array -> bool
(** Does a concrete input's forward trace respect every split? *)

val pp_phase : Format.formatter -> phase -> unit
val pp : Format.formatter -> gamma -> unit

val to_string : gamma -> string
(** Compact form like ["r3+.r17-"] (root: ["ε"]) used in traces and
    tests. *)

val of_string : string -> gamma
(** Inverse of {!to_string} (also accepts [""] for the root).  Raises
    [Invalid_argument] on malformed input.  Used to decode the [gamma]
    field of trace events back into a split sequence. *)
