(** VNNLIB property files — the SMT-LIB2 subset used by VNN-COMP.

    A VNNLIB file declares input variables [X_0 … X_{n−1}] and output
    variables [Y_0 … Y_{m−1}] and asserts the {e violation} condition:
    the property is verified iff no input in the asserted box can
    produce an output satisfying the asserted output constraints.

    The supported grammar (docs/FORMATS.md):

    {v
    (declare-const X_i Real)          input/output declarations
    (declare-const Y_j Real)
    (assert (<= X_i c))               per-dimension input bounds
    (assert (>= X_i c))               (both bounds required per dim)
    (assert (or (and lit …) …))       output constraints: a DNF of
    (assert (and lit …))              linear literals over the Y_j
    (assert lit)
    v}

    where a literal is [(<= t u)] or [(>= t u)] and the terms are
    linear: constants, variables, [( * c t)], [(+ t …)], [(- t …)].
    Multiple top-level output asserts are conjoined and distributed
    into disjunctive normal form (at most {!max_disjuncts} disjuncts).
    A comparison mixing [X] and [Y] variables is a positioned error.

    {b DNF-splitting semantics.}  The violation condition is
    [∨_j (∧_i literal_ij)].  {!problems} lowers each disjunct to one
    self-contained {!Problem.t} — one branch-and-bound run per
    disjunct — and {!join_verdicts} recombines: the property is
    [Verified] iff {e every} disjunct is unreachable, [Falsified] as
    soon as any run finds a counterexample (the witness is valid for
    the original network), and [Timeout] otherwise.  A multi-literal
    disjunct [∧_i (g_i ≤ 0)] is encoded {e exactly} by appending a
    ReLU max-gadget computing [t = max_i g_i] to the network and
    asserting [t > 0]: the gadget run is falsified iff all literals
    hold simultaneously, so no over-approximation is introduced.

    Malformed input raises {!Abonn_util.Parse_error.Error} with the
    1-based line/column and offending token. *)

type linterm = {
  coeffs : float array;  (** length [num_outputs] *)
  offset : float;
}
(** One violation literal [coeffs · y + offset ≤ 0]. *)

type t = {
  num_inputs : int;
  num_outputs : int;
  lower : float array;  (** length [num_inputs] *)
  upper : float array;
  disjuncts : linterm list list;
      (** violation DNF: [∨_j (∧_i literal_ij)]; never empty, and no
          disjunct is empty *)
}

val max_disjuncts : int
(** Cap on the DNF size produced by distributing conjoined [or]s (64);
    exceeding it is a parse error. *)

val parse : ?source:string -> string -> t
(** Parse VNNLIB text.  [source] (default ["<string>"]) labels error
    positions.  Raises {!Abonn_util.Parse_error.Error} on malformed or
    unsupported input. *)

val load : string -> t
(** [load path] parses the file at [path]; errors are positioned with
    [path] as the source.  Raises [Sys_error] when the file is
    missing. *)

val to_string : t -> string
(** Deterministic pretty-printer.  Floats are rendered with [%.17g] so
    [parse (to_string s)] reproduces [s] exactly. *)

val save : t -> string -> unit

val problems : ?name:string -> network:Abonn_nn.Network.t -> t -> Problem.t list
(** One problem per disjunct, in order (see the DNF-splitting note
    above).  Single-literal disjuncts negate the literal directly;
    multi-literal disjuncts append the exact ReLU max-gadget.  Raises
    [Invalid_argument] when the spec's dimensions disagree with the
    network. *)

val join_verdicts : Verdict.t list -> Verdict.t
(** [Falsified] if any disjunct is (first wins, witness preserved),
    else [Verified] if all are, else [Timeout]. *)

val of_problem : Problem.t -> t
(** Encode a problem's region and property as a VNNLIB spec: each
    property row [c·y + d > 0] becomes its own single-literal violation
    disjunct [c·y + d ≤ 0] (¬Ψ in DNF).  [problems] on the result
    yields one run per row; {!join_verdicts} restores the original
    semantics. *)
