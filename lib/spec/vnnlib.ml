module Matrix = Abonn_tensor.Matrix
module Parse_error = Abonn_util.Parse_error

type linterm = { coeffs : float array; offset : float }

type t = {
  num_inputs : int;
  num_outputs : int;
  lower : float array;
  upper : float array;
  disjuncts : linterm list list;
}

let max_disjuncts = 64

(* --- s-expressions with source positions --------------------------- *)

type loc = { l : int; c : int }
type sexp = Atom of string * loc | List of sexp list * loc

(* --- parser -------------------------------------------------------- *)

(* A linear term while variable counts are still unknown: coefficient
   assoc lists over input (X) and output (Y) indices, plus a constant. *)
type lin = { xv : (int * float) list; yv : (int * float) list; k : float }

type batom =
  | Bound of int * [ `Le | `Ge ] * float * loc  (* X_i <= / >= value *)
  | Lit of (int * float) list * float * loc  (* Σ c_j·Y_j + k <= 0 *)

type form = Leaf of batom | And of form list | Or of form list

let parse ?(source = "<string>") text =
  let err { l; c } token fmt =
    Parse_error.error ~source ~pos:(Parse_error.Line { line = l; col = c }) ~token fmt
  in
  (* tokenizer / reader *)
  let n = String.length text in
  let pos = ref 0 and line = ref 1 and col = ref 1 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () =
    (match text.[!pos] with
     | '\n' ->
       incr line;
       col := 1
     | _ -> incr col);
    incr pos
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance ();
      skip_ws ()
    | Some ';' ->
      let rec comment () =
        match peek () with
        | Some '\n' | None -> ()
        | Some _ ->
          advance ();
          comment ()
      in
      comment ();
      skip_ws ()
    | _ -> ()
  in
  let rec read_form () =
    let here = { l = !line; c = !col } in
    match peek () with
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        match peek () with
        | None -> err here "(" "unbalanced parentheses: missing ')'"
        | Some ')' -> advance ()
        | Some _ ->
          items := read_form () :: !items;
          loop ()
      in
      loop ();
      List (List.rev !items, here)
    | Some ')' -> err here ")" "unbalanced parentheses: unexpected ')'"
    | Some _ ->
      let buf = Buffer.create 8 in
      let rec word () =
        match peek () with
        | Some (' ' | '\t' | '\r' | '\n' | '(' | ')' | ';') | None -> ()
        | Some ch ->
          Buffer.add_char buf ch;
          advance ();
          word ()
      in
      word ();
      Atom (Buffer.contents buf, here)
    | None -> assert false
  in
  let forms =
    let acc = ref [] in
    let rec top () =
      skip_ws ();
      if !pos < n then begin
        acc := read_form () :: !acc;
        top ()
      end
    in
    top ();
    List.rev !acc
  in
  (* declarations *)
  let xdecl = Hashtbl.create 16 and ydecl = Hashtbl.create 16 in
  let var_of name =
    let index prefix =
      let plen = String.length prefix in
      if String.length name > plen && String.sub name 0 plen = prefix then
        match int_of_string_opt (String.sub name plen (String.length name - plen)) with
        | Some i when i >= 0 -> Some i
        | _ -> None
      else None
    in
    match index "X_" with
    | Some i -> Some (`X i)
    | None -> ( match index "Y_" with Some i -> Some (`Y i) | None -> None)
  in
  let declare loc name =
    match var_of name with
    | Some (`X i) -> Hashtbl.replace xdecl i ()
    | Some (`Y i) -> Hashtbl.replace ydecl i ()
    | None -> err loc name "expected a variable named X_<i> or Y_<i>"
  in
  (* linear terms *)
  let lin_const k = { xv = []; yv = []; k } in
  let lin_add a b = { xv = a.xv @ b.xv; yv = a.yv @ b.yv; k = a.k +. b.k } in
  let lin_scale s a =
    { xv = List.map (fun (i, v) -> (i, s *. v)) a.xv;
      yv = List.map (fun (i, v) -> (i, s *. v)) a.yv;
      k = s *. a.k }
  in
  let lin_sub a b = lin_add a (lin_scale (-1.0) b) in
  let rec lin_of = function
    | Atom (word, loc) -> (
      match float_of_string_opt word with
      | Some k -> lin_const k
      | None -> (
        match var_of word with
        | Some (`X i) ->
          if not (Hashtbl.mem xdecl i) then err loc word "undeclared variable";
          { xv = [ (i, 1.0) ]; yv = []; k = 0.0 }
        | Some (`Y i) ->
          if not (Hashtbl.mem ydecl i) then err loc word "undeclared variable";
          { xv = []; yv = [ (i, 1.0) ]; k = 0.0 }
        | None -> err loc word "expected a number or a variable"))
    | List (Atom ("+", _) :: (_ :: _ as args), _) ->
      List.fold_left (fun acc a -> lin_add acc (lin_of a)) (lin_const 0.0) args
    | List ([ Atom ("-", _); a ], _) -> lin_scale (-1.0) (lin_of a)
    | List (Atom ("-", _) :: a :: (_ :: _ as rest), _) ->
      List.fold_left (fun acc b -> lin_sub acc (lin_of b)) (lin_of a) rest
    | List ([ Atom ("*", loc); a; b ], _) -> (
      let la = lin_of a and lb = lin_of b in
      match (la.xv @ la.yv, lb.xv @ lb.yv) with
      | [], _ -> lin_scale la.k lb
      | _, [] -> lin_scale lb.k la
      | _ -> err loc "*" "nonlinear term: both factors contain variables")
    | List (Atom (op, loc) :: _, _) ->
      err loc op "unsupported term operator (expected +, - or *)"
    | List (_, loc) -> err loc "(" "expected a term"
  in
  (* sum duplicate indices, drop zero coefficients, keep first-seen order *)
  let consolidate pairs =
    let order = ref [] and sums = Hashtbl.create 8 in
    List.iter
      (fun (i, v) ->
        if not (Hashtbl.mem sums i) then begin
          order := i :: !order;
          Hashtbl.add sums i 0.0
        end;
        Hashtbl.replace sums i (Hashtbl.find sums i +. v))
      pairs;
    List.filter_map
      (fun i ->
        let v = Hashtbl.find sums i in
        if v = 0.0 then None else Some (i, v))
      (List.rev !order)
  in
  let compare_of loc op lhs rhs =
    (* normalize to diff <= 0 *)
    let diff =
      match op with `Le -> lin_sub (lin_of lhs) (lin_of rhs) | `Ge -> lin_sub (lin_of rhs) (lin_of lhs)
    in
    let xs = consolidate diff.xv and ys = consolidate diff.yv in
    match (xs, ys) with
    | _ :: _, _ :: _ ->
      err loc
        (match op with `Le -> "<=" | `Ge -> ">=")
        "comparison mixes input (X) and output (Y) variables"
    | [ (i, coeff) ], [] ->
      (* coeff·X_i + k <= 0 *)
      let bound = -.diff.k /. coeff in
      if coeff > 0.0 then Bound (i, `Le, bound, loc) else Bound (i, `Ge, bound, loc)
    | _ :: _ :: _, [] ->
      err loc
        (match op with `Le -> "<=" | `Ge -> ">=")
        "input constraints must bound a single X variable"
    | [], ys -> Lit (ys, diff.k, loc)
  in
  let rec form_of = function
    | List (Atom ("and", loc) :: args, _) ->
      if args = [] then err loc "and" "and takes at least one argument";
      And (List.map form_of args)
    | List (Atom ("or", loc) :: args, _) ->
      if args = [] then err loc "or" "or takes at least one argument";
      Or (List.map form_of args)
    | List ([ Atom ("<=", loc); a; b ], _) -> Leaf (compare_of loc `Le a b)
    | List ([ Atom (">=", loc); a; b ], _) -> Leaf (compare_of loc `Ge a b)
    | List (Atom (("<=" | ">=") as op, loc) :: _, _) ->
      err loc op "%s takes exactly two arguments" op
    | List (Atom (op, loc) :: _, _) ->
      err loc op "unsupported operator (expected and, or, <= or >=)"
    | List (_, loc) -> err loc "(" "expected a formula"
    | Atom (word, loc) -> err loc word "expected a formula"
  in
  (* top-level commands *)
  let asserts = ref [] in
  List.iter
    (fun form ->
      match form with
      | List (Atom ("declare-const", loc) :: rest, _) -> (
        match rest with
        | [ Atom (name, nloc); Atom ("Real", _) ] -> declare nloc name
        | _ -> err loc "declare-const" "declare-const takes a variable and the sort Real")
      | List ([ Atom ("assert", _); body ], aloc) -> asserts := (form_of body, aloc) :: !asserts
      | List (Atom ("assert", loc) :: _, _) -> err loc "assert" "assert takes exactly one formula"
      | List (Atom (cmd, loc) :: _, _) ->
        err loc cmd "unsupported command (expected declare-const or assert)"
      | List (_, loc) -> err loc "(" "expected a command"
      | Atom (word, loc) -> err loc word "expected a command")
    forms;
  let asserts = List.rev !asserts in
  let top = { l = 1; c = 1 } in
  let num_inputs = Hashtbl.fold (fun i () acc -> max acc (i + 1)) xdecl 0 in
  let num_outputs = Hashtbl.fold (fun i () acc -> max acc (i + 1)) ydecl 0 in
  if num_inputs = 0 then err top "X_0" "no input variables declared";
  if num_outputs = 0 then err top "Y_0" "no output variables declared";
  (* split asserts into input bounds and output constraints *)
  let rec atoms = function
    | Leaf a -> [ a ]
    | And fs | Or fs -> List.concat_map atoms fs
  in
  let rec has_or = function
    | Leaf _ -> false
    | Or _ -> true
    | And fs -> List.exists has_or fs
  in
  let lower = Array.make num_inputs None and upper = Array.make num_inputs None in
  let apply_bound = function
    | Bound (i, dir, v, loc) ->
      if i >= num_inputs then err loc (Printf.sprintf "X_%d" i) "undeclared variable";
      let tighten cell pick =
        cell := Some (match !cell with None -> v | Some old -> pick old v)
      in
      (match dir with
       | `Le ->
         let cell = ref upper.(i) in
         tighten cell min;
         upper.(i) <- !cell
       | `Ge ->
         let cell = ref lower.(i) in
         tighten cell max;
         lower.(i) <- !cell)
    | Lit _ -> assert false
  in
  let output_asserts = ref [] in
  List.iter
    (fun (form, aloc) ->
      let ats = atoms form in
      let bounds, lits =
        List.partition (function Bound _ -> true | Lit _ -> false) ats
      in
      match (bounds, lits) with
      | _ :: _, [] ->
        if has_or form then
          (match List.hd bounds with
           | Bound (_, _, _, loc) | Lit (_, _, loc) ->
             err loc "or" "input bounds may not appear under (or ...)");
        List.iter apply_bound bounds
      | [], _ -> output_asserts := (form, aloc) :: !output_asserts
      | (Bound (_, _, _, loc) | Lit (_, _, loc)) :: _, _ :: _ ->
        err loc "and"
          "input bounds and output constraints may not be mixed in one assert")
    asserts;
  let output_asserts = List.rev !output_asserts in
  (match output_asserts with
   | [] -> err top "assert" "no output constraints asserted"
   | _ -> ());
  let lower =
    Array.mapi
      (fun i cell ->
        match cell with
        | Some v -> v
        | None ->
          err top (Printf.sprintf "X_%d" i) "missing lower bound for X_%d" i)
      lower
  in
  let upper =
    Array.mapi
      (fun i cell ->
        match cell with
        | Some v -> v
        | None ->
          err top (Printf.sprintf "X_%d" i) "missing upper bound for X_%d" i)
      upper
  in
  Array.iteri
    (fun i lo ->
      if lo > upper.(i) then
        err top (Printf.sprintf "X_%d" i) "empty input box: lower > upper for X_%d" i)
    lower;
  (* DNF of the conjoined output asserts, with a size guard *)
  let conj = And (List.map fst output_asserts) in
  let first_loc = snd (List.hd output_asserts) in
  let sat = max_disjuncts + 1 in
  let rec dnf_size = function
    | Leaf _ -> 1
    | Or fs -> min sat (List.fold_left (fun acc f -> acc + dnf_size f) 0 fs)
    | And fs -> min sat (List.fold_left (fun acc f -> acc * dnf_size f) 1 fs)
  in
  if dnf_size conj > max_disjuncts then
    err first_loc "or" "output constraints expand to more than %d disjuncts"
      max_disjuncts;
  let rec dnf = function
    | Leaf (Lit (ys, k, _)) -> [ [ (ys, k) ] ]
    | Leaf (Bound _) -> assert false
    | Or fs -> List.concat_map dnf fs
    | And fs ->
      List.fold_left
        (fun acc f ->
          let d = dnf f in
          List.concat_map (fun conj -> List.map (fun tail -> conj @ tail) d) acc)
        [ [] ] fs
  in
  let to_linterm (ys, k) =
    let coeffs = Array.make num_outputs 0.0 in
    List.iter (fun (i, v) -> coeffs.(i) <- v) ys;
    { coeffs; offset = k }
  in
  let disjuncts = List.map (List.map to_linterm) (dnf conj) in
  { num_inputs; num_outputs; lower; upper; disjuncts }

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      parse ~source:path text)

(* --- pretty-printer ------------------------------------------------ *)

let float_str v = Printf.sprintf "%.17g" v

let term_str { coeffs; offset } =
  let parts =
    Array.to_list coeffs
    |> List.mapi (fun i v ->
           if v = 0.0 then None
           else Some (Printf.sprintf "(* %s Y_%d)" (float_str v) i))
    |> List.filter_map Fun.id
  in
  match parts with
  | [] -> float_str offset
  | parts -> Printf.sprintf "(+ %s %s)" (String.concat " " parts) (float_str offset)

let to_string spec =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "; VNNLIB export (abonn)";
  for i = 0 to spec.num_inputs - 1 do
    line "(declare-const X_%d Real)" i
  done;
  for i = 0 to spec.num_outputs - 1 do
    line "(declare-const Y_%d Real)" i
  done;
  line "";
  for i = 0 to spec.num_inputs - 1 do
    line "(assert (>= X_%d %s))" i (float_str spec.lower.(i));
    line "(assert (<= X_%d %s))" i (float_str spec.upper.(i))
  done;
  line "";
  let literal_str lit = Printf.sprintf "(<= %s 0.0)" (term_str lit) in
  let conj_str = function
    | [ lit ] -> literal_str lit
    | lits -> Printf.sprintf "(and %s)" (String.concat " " (List.map literal_str lits))
  in
  (match spec.disjuncts with
   | [ one ] -> line "(assert %s)" (conj_str one)
   | many ->
     line "(assert (or %s))" (String.concat " " (List.map conj_str many)));
  Buffer.contents buf

let save spec path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string spec))

(* --- lowering to problems ------------------------------------------ *)

module Layer = Abonn_nn.Layer
module Network = Abonn_nn.Network

(* t = max_i g_i where g_i = coeffs_i·y + offset_i, built from
   max(u, w) = relu(u) − relu(−u) + relu(w − u) pairwise reduction
   stages (exact, not an over-approximation). *)
let gadget_layers ~num_outputs literals =
  let k = List.length literals in
  let lits = Array.of_list literals in
  let head =
    Layer.linear
      (Matrix.init k num_outputs (fun i j -> lits.(i).coeffs.(j)))
      (Array.map (fun lit -> lit.offset) lits)
  in
  let rev_layers = ref [ head ] in
  let width = ref k in
  while !width > 1 do
    let pairs = !width / 2 and odd = !width mod 2 = 1 in
    (* pair j over inputs (2j, 2j+1): rows u, −u, w−u; odd leftover v:
       rows v, −v (so relu-then-combine reproduces v exactly) *)
    let exp_rows = (3 * pairs) + if odd then 2 else 0 in
    let expand =
      Matrix.init exp_rows !width (fun r col ->
          if r < 3 * pairs then begin
            let j = r / 3 and s = r mod 3 in
            let u = 2 * j and w = (2 * j) + 1 in
            match s with
            | 0 -> if col = u then 1.0 else 0.0
            | 1 -> if col = u then -1.0 else 0.0
            | _ -> if col = w then 1.0 else if col = u then -1.0 else 0.0
          end
          else begin
            let s = r - (3 * pairs) and v = !width - 1 in
            if col = v then (if s = 0 then 1.0 else -1.0) else 0.0
          end)
    in
    let out_rows = pairs + if odd then 1 else 0 in
    let combine =
      Matrix.init out_rows exp_rows (fun r col ->
          if r < pairs then begin
            let base = 3 * r in
            if col = base then 1.0
            else if col = base + 1 then -1.0
            else if col = base + 2 then 1.0
            else 0.0
          end
          else begin
            let base = 3 * pairs in
            if col = base then 1.0 else if col = base + 1 then -1.0 else 0.0
          end)
    in
    rev_layers :=
      Layer.linear combine (Array.make out_rows 0.0)
      :: Layer.Relu exp_rows
      :: Layer.linear expand (Array.make exp_rows 0.0)
      :: !rev_layers;
    width := out_rows
  done;
  List.rev !rev_layers

let problems ?(name = "vnnlib") ~network spec =
  let n_in = Network.input_dim network and n_out = Network.output_dim network in
  if spec.num_inputs <> n_in then
    invalid_arg
      (Printf.sprintf "Vnnlib.problems: spec has %d inputs, network expects %d"
         spec.num_inputs n_in);
  if spec.num_outputs <> n_out then
    invalid_arg
      (Printf.sprintf "Vnnlib.problems: spec has %d outputs, network has %d"
         spec.num_outputs n_out);
  let region = Region.create ~lower:spec.lower ~upper:spec.upper in
  List.mapi
    (fun i disjunct ->
      let pname = Printf.sprintf "%s#%d" name i in
      match disjunct with
      | [] -> invalid_arg "Vnnlib.problems: empty disjunct"
      | [ { coeffs; offset } ] ->
        (* ¬(c·y + k <= 0) is exactly c·y + k > 0 *)
        Problem.create ~name:pname ~network ~region
          ~property:
            (Property.single ~description:"negated VNNLIB literal" coeffs offset)
          ()
      | literals ->
        let network =
          Network.create
            (Network.layers network @ gadget_layers ~num_outputs:n_out literals)
        in
        Problem.create ~name:pname ~network ~region
          ~property:
            (Property.single ~description:"VNNLIB max-gadget: max_i g_i > 0"
               [| 1.0 |] 0.0)
          ())
    spec.disjuncts

let join_verdicts = function
  | [] -> invalid_arg "Vnnlib.join_verdicts: empty verdict list"
  | verdicts -> (
    match List.find_opt Verdict.is_falsified verdicts with
    | Some v -> v
    | None ->
      if List.for_all Verdict.is_verified verdicts then Verdict.Verified
      else Verdict.Timeout)

let of_problem (problem : Problem.t) =
  let region = problem.Problem.region in
  let prop = problem.Problem.property in
  let c = prop.Property.c in
  let disjuncts =
    List.init c.Matrix.rows (fun i ->
        [ { coeffs = Matrix.row c i; offset = prop.Property.d.(i) } ])
  in
  { num_inputs = Array.length region.Region.lower;
    num_outputs = c.Matrix.cols;
    lower = Array.copy region.Region.lower;
    upper = Array.copy region.Region.upper;
    disjuncts }
