module Matrix = Abonn_tensor.Matrix
module Parse_error = Abonn_util.Parse_error

let floats_to_line arr =
  String.concat " " (Array.to_list (Array.map (Printf.sprintf "%h") arr))

let to_string (problem : Problem.t) ~network_ref =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "abonn-problem 1\n";
  Buffer.add_string buf (Printf.sprintf "network %s\n" network_ref);
  let region = problem.Problem.region in
  Buffer.add_string buf ("box-lower " ^ floats_to_line region.Region.lower ^ "\n");
  Buffer.add_string buf ("box-upper " ^ floats_to_line region.Region.upper ^ "\n");
  let prop = problem.Problem.property in
  for r = 0 to prop.Property.c.Matrix.rows - 1 do
    let row = Matrix.row prop.Property.c r in
    Buffer.add_string buf
      (Printf.sprintf "constraint %h %s\n" prop.Property.d.(r) (floats_to_line row))
  done;
  Buffer.contents buf

type partial = {
  mutable network : string option;
  mutable network_pos : int * int * string;  (* line, col, token of the directive *)
  mutable lower : float array option;
  mutable upper : float array option;
  mutable center : float array option;
  mutable eps : float option;
  mutable clip : (float * float) option;
  mutable robustness : (int * int) option;
  mutable constraints : (float * float array) list;  (* reversed *)
}

(* Words of [line] with their 1-based starting columns. *)
let words_with_cols line =
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do incr i done;
    if !i < n then begin
      let start = !i in
      while !i < n && line.[!i] <> ' ' && line.[!i] <> '\t' do incr i done;
      out := (String.sub line start (!i - start), start + 1) :: !out
    end
  done;
  List.rev !out

let of_string ?(dir = ".") ?(source = "<string>") text =
  let err ~line ~col ~token fmt =
    Parse_error.error ~source ~pos:(Parse_error.Line { line; col }) ~token fmt
  in
  let float_of ~line (w, col) =
    match float_of_string_opt w with
    | Some f -> f
    | None -> err ~line ~col ~token:w "expected a float"
  in
  let int_of ~line (w, col) =
    match int_of_string_opt w with
    | Some i -> i
    | None -> err ~line ~col ~token:w "expected an integer"
  in
  let floats_of ~line ws = Array.of_list (List.map (float_of ~line) ws) in
  let p =
    { network = None; network_pos = (0, 0, ""); lower = None; upper = None;
      center = None; eps = None; clip = None; robustness = None; constraints = [] }
  in
  let raw_lines = String.split_on_char '\n' text in
  let seen_header = ref false in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let trimmed = String.trim raw in
      if trimmed <> "" && trimmed.[0] <> '#' then begin
        let ws = words_with_cols raw in
        if not !seen_header then begin
          match ws with
          | [ ("abonn-problem", _); ("1", _) ] -> seen_header := true
          | (w, col) :: _ ->
            err ~line ~col ~token:w "expected 'abonn-problem 1' header"
          | [] -> assert false
        end
        else begin
          match ws with
          | (("network", col) as _d) :: rest -> (
            match rest with
            | [ (path, _) ] ->
              p.network <- Some path;
              p.network_pos <- (line, col, path)
            | _ -> err ~line ~col ~token:"network" "network takes exactly one path")
          | ("box-lower", _) :: rest -> p.lower <- Some (floats_of ~line rest)
          | ("box-upper", _) :: rest -> p.upper <- Some (floats_of ~line rest)
          | ("center", _) :: rest -> p.center <- Some (floats_of ~line rest)
          | [ ("eps", _); v ] -> p.eps <- Some (float_of ~line v)
          | [ ("clip", _); a; b ] ->
            p.clip <- Some (float_of ~line a, float_of ~line b)
          | [ ("robustness", _); classes; label ] ->
            p.robustness <- Some (int_of ~line classes, int_of ~line label)
          | ("constraint", col) :: rest -> (
            match rest with
            | offset :: coefs when coefs <> [] ->
              p.constraints <-
                (float_of ~line offset, floats_of ~line coefs) :: p.constraints
            | _ ->
              err ~line ~col ~token:"constraint"
                "constraint takes an offset followed by coefficients")
          | ("eps", col) :: _ -> err ~line ~col ~token:"eps" "eps takes exactly one value"
          | ("clip", col) :: _ ->
            err ~line ~col ~token:"clip" "clip takes exactly two values"
          | ("robustness", col) :: _ ->
            err ~line ~col ~token:"robustness" "robustness takes num_classes and label"
          | (w, col) :: _ -> err ~line ~col ~token:w "unknown directive"
          | [] -> assert false
        end
      end)
    raw_lines;
  if not !seen_header then
    err ~line:1 ~col:1 ~token:"" "missing 'abonn-problem 1' header";
  let network_path =
    match p.network with
    | Some path -> if Filename.is_relative path then Filename.concat dir path else path
    | None -> err ~line:1 ~col:1 ~token:"" "missing network directive"
  in
  let network =
    match Abonn_nn.Serialize.load network_path with
    | net -> net
    | exception (Failure msg | Sys_error msg) ->
      let line, col, token = p.network_pos in
      err ~line ~col ~token "cannot load network: %s" msg
  in
  let region =
    match p.lower, p.upper, p.center, p.eps with
    | Some lower, Some upper, None, None -> Region.create ~lower ~upper
    | None, None, Some center, Some eps -> Region.linf_ball ?clip:p.clip ~center ~eps ()
    | _ ->
      err ~line:1 ~col:1 ~token:""
        "give either box-lower/box-upper or center/eps (not a mixture)"
  in
  let property =
    match p.robustness, List.rev p.constraints with
    | Some (num_classes, label), [] -> Property.robustness ~num_classes ~label
    | None, ((_ :: _) as rows) ->
      let ncols = Array.length (snd (List.hd rows)) in
      List.iter
        (fun (_, coefs) ->
          if Array.length coefs <> ncols then
            err ~line:1 ~col:1 ~token:"constraint" "constraint rows of unequal width")
        rows;
      let c = Matrix.init (List.length rows) ncols (fun i j -> snd (List.nth rows i) |> fun a -> a.(j)) in
      let d = Array.of_list (List.map fst rows) in
      Property.create ~description:"from problem file" c d
    | Some _, _ :: _ ->
      err ~line:1 ~col:1 ~token:"" "robustness and constraint are exclusive"
    | None, [] -> err ~line:1 ~col:1 ~token:"" "missing property"
  in
  Problem.create ~name:"problem-file" ~network ~region ~property ()

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      of_string ~dir:(Filename.dirname path) ~source:path text)

let save problem ~network_path path =
  Abonn_nn.Serialize.save problem.Problem.network network_path;
  let dir = Filename.dirname path in
  let network_ref =
    (* store relative when the network sits in the same directory *)
    if Filename.dirname network_path = dir then Filename.basename network_path
    else network_path
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string problem ~network_ref))
