(** ONNX protobuf reader/writer for the feed-forward subset.

    A pure-OCaml implementation of the protobuf wire format — no
    generated code, no external dependency — covering exactly the graph
    shapes the verification stack consumes (docs/FORMATS.md):

    - ops: [Gemm] (with [alpha]/[beta]/[transB] attributes; [transA]
      must be 0), [MatMul] followed by [Add] (bias merged), [Relu],
      [Conv] (square stride, symmetric padding, [group = 1], unit
      dilations), [Flatten];
    - initializers: [float32] and [float64] tensors, from [raw_data]
      (little-endian) or the repeated [float_data]/[double_data] fields;
    - a single sequential activation path from the graph input to the
      graph output (the MLP/convnet shapes of ACAS-Xu, MNIST and
      CIFAR-style benchmarks).

    The reader lowers directly into {!Network.t}; a [Conv → Gemm]
    transition may omit the [Flatten] node because ONNX's row-major
    [N×C×H×W] flattening coincides with {!Conv}'s channel-major flat
    layout.  Malformed input (truncated varints, bad wire types,
    unsupported ops or attribute combinations) raises
    {!Abonn_util.Parse_error.Error} with the byte offset of the
    offending field — never a crash or a silent mis-parse.

    The writer emits a deterministic, byte-stable encoding of the same
    subset (fields in ascending tag order, tensors named [w0/b0/w1/…]),
    so [of_bytes (to_bytes net)] reproduces [net] exactly with the
    default [float64] precision, and within float32 rounding with
    [~precision:`F32]. *)

type style =
  | Gemm  (** one [Gemm] node per linear layer ([transB = 1]) *)
  | Matmul_add  (** a [MatMul] node plus an [Add] node per linear layer *)

type precision = F32 | F64

val to_bytes : ?style:style -> ?precision:precision -> Network.t -> string
(** Serialize as an ONNX [ModelProto] (default [Gemm] style, [F64]
    tensors).  Deterministic: equal networks yield equal bytes. *)

val of_bytes : ?source:string -> string -> Network.t
(** Parse an ONNX [ModelProto] and lower it to a network.  [source]
    (default ["<bytes>"]) labels error positions.  Raises
    {!Abonn_util.Parse_error.Error} on malformed or unsupported input. *)

val save : ?style:style -> ?precision:precision -> Network.t -> string -> unit
(** [save net path] writes [to_bytes net] to [path]. *)

val load : string -> Network.t
(** [load path] reads and parses [path]; positions in errors are
    labelled with [path].  Raises [Sys_error] when the file is
    missing. *)
