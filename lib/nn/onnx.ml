module Matrix = Abonn_tensor.Matrix
module Parse_error = Abonn_util.Parse_error

type style = Gemm | Matmul_add
type precision = F32 | F64

(* --- protobuf wire reader ---------------------------------------------

   A reader is a window [pos, limit) into the whole model's bytes;
   nested messages narrow [limit] but keep absolute offsets, so every
   error names the byte position in the file. *)

type rd = { src : string; buf : string; mutable pos : int; mutable limit : int }

let err_at r offset token fmt =
  Parse_error.error ~source:r.src ~pos:(Parse_error.Byte { offset }) ~token fmt

let err r fmt = err_at r r.pos "" fmt

let read_byte r =
  if r.pos >= r.limit then err r "truncated protobuf: unexpected end of input";
  let b = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  b

let read_varint r =
  let start = r.pos in
  let rec go shift acc =
    if shift > 63 then err_at r start "" "varint longer than 10 bytes";
    let b = read_byte r in
    let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7f)) shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0L

let read_fixed32 r =
  let start = r.pos in
  if start + 4 > r.limit then err r "truncated protobuf: unexpected end of input";
  let byte i = Int32.of_int (Char.code r.buf.[start + i]) in
  r.pos <- start + 4;
  Int32.logor (byte 0)
    (Int32.logor
       (Int32.shift_left (byte 1) 8)
       (Int32.logor (Int32.shift_left (byte 2) 16) (Int32.shift_left (byte 3) 24)))

let read_fixed64 r =
  let start = r.pos in
  if start + 8 > r.limit then err r "truncated protobuf: unexpected end of input";
  let acc = ref 0L in
  for i = 7 downto 0 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code r.buf.[start + i]))
  done;
  r.pos <- start + 8;
  !acc

let read_len r =
  let start = r.pos in
  let n = read_varint r in
  let n = Int64.to_int n in
  if n < 0 || r.pos + n > r.limit then
    err_at r start "" "length-delimited field of %d bytes overruns the input" n;
  n

let read_string r =
  let n = read_len r in
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

(* field number * wire type, at the current position *)
let read_tag r =
  let start = r.pos in
  let tag = Int64.to_int (read_varint r) in
  let field = tag lsr 3 and wire = tag land 7 in
  if field < 1 then err_at r start "" "invalid field number %d" field;
  (field, wire, start)

let skip_field r wire tag_pos =
  match wire with
  | 0 -> ignore (read_varint r)
  | 1 -> ignore (read_fixed64 r)
  | 2 ->
    let n = read_len r in
    r.pos <- r.pos + n
  | 5 -> ignore (read_fixed32 r)
  | w -> err_at r tag_pos "" "unsupported wire type %d" w

(* Run [f] over every field of a nested message, with [limit] narrowed
   to the message body. *)
let in_message r f =
  let n = read_len r in
  let saved = r.limit in
  r.limit <- r.pos + n;
  let finish = r.limit in
  while r.pos < r.limit do
    let field, wire, tag_pos = read_tag r in
    f field wire tag_pos
  done;
  r.pos <- finish;
  r.limit <- saved

(* Packed repeated scalars arrive as one length-delimited blob. *)
let read_packed r read_one =
  let n = read_len r in
  let stop = r.pos + n in
  let acc = ref [] in
  while r.pos < stop do
    acc := read_one r :: !acc
  done;
  List.rev !acc

let f32 bits = Int32.float_of_bits bits
let f64 bits = Int64.float_of_bits bits

(* --- ONNX message subset ------------------------------------------- *)

type tensor = {
  t_name : string;
  t_dims : int array;
  t_data : float array;
  t_pos : int;  (* byte offset of the TensorProto, for error reports *)
}

type attr = {
  a_name : string;
  a_f : float option;
  a_i : int64 option;
  a_ints : int64 list;
}

type node = {
  op : string;
  n_inputs : string list;
  n_outputs : string list;
  n_attrs : attr list;
  n_pos : int;
}

type graph = {
  g_nodes : node list;
  g_inits : tensor list;
  g_inputs : (string * int list) list;  (* name, dims (symbolic = -1) *)
  g_outputs : string list;
}

let parse_tensor r t_pos =
  let dims = ref [] and dtype = ref 1 and name = ref "" in
  let raw = ref None and floats = ref [] and doubles = ref [] in
  in_message r (fun field wire tag_pos ->
      match (field, wire) with
      | 1, 0 -> dims := Int64.to_int (read_varint r) :: !dims
      | 1, 2 -> dims := !dims @ List.rev_map Int64.to_int (read_packed r read_varint)
      | 2, 0 -> dtype := Int64.to_int (read_varint r)
      | 4, 5 -> floats := f32 (read_fixed32 r) :: !floats
      | 4, 2 -> floats := List.rev_append (read_packed r (fun r -> f32 (read_fixed32 r))) !floats
      | 8, 2 -> name := read_string r
      | 9, 2 -> raw := Some (tag_pos, read_string r)
      | 10, 1 -> doubles := f64 (read_fixed64 r) :: !doubles
      | 10, 2 ->
        doubles := List.rev_append (read_packed r (fun r -> f64 (read_fixed64 r))) !doubles
      | _ -> skip_field r wire tag_pos);
  let data =
    match (!dtype, !raw) with
    | 1, Some (pos, bytes) ->
      let n = String.length bytes in
      if n mod 4 <> 0 then
        err_at r pos !name "float32 raw_data of %d bytes is not a multiple of 4" n;
      Array.init (n / 4)
        (fun i ->
          let byte j = Int32.of_int (Char.code bytes.[(4 * i) + j]) in
          f32
            (Int32.logor (byte 0)
               (Int32.logor
                  (Int32.shift_left (byte 1) 8)
                  (Int32.logor (Int32.shift_left (byte 2) 16)
                     (Int32.shift_left (byte 3) 24)))))
    | 11, Some (pos, bytes) ->
      let n = String.length bytes in
      if n mod 8 <> 0 then
        err_at r pos !name "float64 raw_data of %d bytes is not a multiple of 8" n;
      Array.init (n / 8)
        (fun i ->
          let acc = ref 0L in
          for j = 7 downto 0 do
            acc := Int64.logor (Int64.shift_left !acc 8)
                     (Int64.of_int (Char.code bytes.[(8 * i) + j]))
          done;
          f64 !acc)
    | 1, None -> Array.of_list (List.rev !floats)
    | 11, None -> Array.of_list (List.rev !doubles)
    | dt, _ ->
      err_at r t_pos !name "unsupported tensor data type %d (only float32/float64)" dt
  in
  let dims = Array.of_list (List.rev !dims) in
  let expected = Array.fold_left ( * ) 1 dims in
  if Array.length dims > 0 && expected <> Array.length data then
    err_at r t_pos !name "tensor data has %d element(s) but dims imply %d"
      (Array.length data) expected;
  { t_name = !name; t_dims = dims; t_data = data; t_pos }

let parse_attr r =
  let name = ref "" and fval = ref None and ival = ref None and ints = ref [] in
  in_message r (fun field wire tag_pos ->
      match (field, wire) with
      | 1, 2 -> name := read_string r
      | 2, 5 -> fval := Some (f32 (read_fixed32 r))
      | 3, 0 -> ival := Some (read_varint r)
      | 8, 0 -> ints := read_varint r :: !ints
      | 8, 2 -> ints := List.rev_append (read_packed r read_varint) !ints
      | _ -> skip_field r wire tag_pos);
  { a_name = !name; a_f = !fval; a_i = !ival; a_ints = List.rev !ints }

let parse_node r n_pos =
  let op = ref "" and inputs = ref [] and outputs = ref [] and attrs = ref [] in
  in_message r (fun field wire tag_pos ->
      match (field, wire) with
      | 1, 2 -> inputs := read_string r :: !inputs
      | 2, 2 -> outputs := read_string r :: !outputs
      | 4, 2 -> op := read_string r
      | 5, 2 -> attrs := parse_attr r :: !attrs
      | _ -> skip_field r wire tag_pos);
  { op = !op;
    n_inputs = List.rev !inputs;
    n_outputs = List.rev !outputs;
    n_attrs = List.rev !attrs;
    n_pos }

(* ValueInfoProto -> (name, dims); a dim_param (symbolic batch) is -1 *)
let parse_value_info r =
  let name = ref "" and dims = ref [] in
  in_message r (fun field wire tag_pos ->
      match (field, wire) with
      | 1, 2 -> name := read_string r
      | 2, 2 ->
        (* TypeProto *)
        in_message r (fun field wire tag_pos ->
            match (field, wire) with
            | 1, 2 ->
              (* TypeProto.Tensor *)
              in_message r (fun field wire tag_pos ->
                  match (field, wire) with
                  | 2, 2 ->
                    (* TensorShapeProto *)
                    in_message r (fun field wire tag_pos ->
                        match (field, wire) with
                        | 1, 2 ->
                          (* Dimension *)
                          let value = ref (-1) in
                          in_message r (fun field wire tag_pos ->
                              match (field, wire) with
                              | 1, 0 -> value := Int64.to_int (read_varint r)
                              | _ -> skip_field r wire tag_pos);
                          dims := !value :: !dims
                        | _ -> skip_field r wire tag_pos)
                  | _ -> skip_field r wire tag_pos)
            | _ -> skip_field r wire tag_pos)
      | _ -> skip_field r wire tag_pos);
  (!name, List.rev !dims)

let parse_graph r =
  let nodes = ref [] and inits = ref [] and inputs = ref [] and outputs = ref [] in
  in_message r (fun field wire tag_pos ->
      match (field, wire) with
      | 1, 2 -> nodes := parse_node r tag_pos :: !nodes
      | 5, 2 -> inits := parse_tensor r tag_pos :: !inits
      | 11, 2 -> inputs := parse_value_info r :: !inputs
      | 12, 2 -> outputs := fst (parse_value_info r) :: !outputs
      | _ -> skip_field r wire tag_pos);
  { g_nodes = List.rev !nodes;
    g_inits = List.rev !inits;
    g_inputs = List.rev !inputs;
    g_outputs = List.rev !outputs }

let parse_model r =
  let graph = ref None in
  while r.pos < r.limit do
    let field, wire, tag_pos = read_tag r in
    match (field, wire) with
    | 7, 2 -> graph := Some (parse_graph r)
    | _ -> skip_field r wire tag_pos
  done;
  match !graph with
  | Some g -> g
  | None -> err_at r 0 "" "ModelProto has no graph"

(* --- lowering to Network.t ----------------------------------------- *)

type shape = Flat of int | Spatial of int * int * int

let flat_width = function Flat n -> n | Spatial (c, h, w) -> c * h * w

let attr_f node name default =
  match List.find_opt (fun a -> a.a_name = name) node.n_attrs with
  | Some { a_f = Some f; _ } -> f
  | _ -> default

let attr_i node name default =
  match List.find_opt (fun a -> a.a_name = name) node.n_attrs with
  | Some { a_i = Some i; _ } -> Int64.to_int i
  | _ -> default

let attr_ints node name =
  match List.find_opt (fun a -> a.a_name = name) node.n_attrs with
  | Some { a_ints = (_ :: _) as ints; _ } -> Some (List.map Int64.to_int ints)
  | _ -> None

let matrix_of rows cols (data : float array) =
  Matrix.init rows cols (fun i j -> data.((i * cols) + j))

let lower r graph =
  let nerr node fmt = err_at r node.n_pos node.op fmt in
  let tensors = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace tensors t.t_name t) graph.g_inits;
  let flow_inputs =
    List.filter (fun (name, _) -> not (Hashtbl.mem tensors name)) graph.g_inputs
  in
  let input_name, input_dims =
    match flow_inputs with
    | [ one ] -> one
    | [] -> err_at r 0 "" "graph has no non-initializer input"
    | _ -> err_at r 0 "" "graph has %d data inputs; only one is supported"
             (List.length flow_inputs)
  in
  let shape =
    (* drop a leading batch dimension (1 or symbolic) when more dims follow *)
    let dims =
      match input_dims with
      | d :: (_ :: _ as rest) when d = 1 || d = -1 -> rest
      | dims -> dims
    in
    match dims with
    | [ c; h; w ] when c > 0 && h > 0 && w > 0 -> Spatial (c, h, w)
    | [] -> err_at r 0 "" "graph input %s has no shape" input_name
    | dims ->
      if List.exists (fun d -> d <= 0) dims then
        err_at r 0 "" "graph input %s has a non-positive or symbolic dimension"
          input_name;
      Flat (List.fold_left ( * ) 1 dims)
  in
  let init_of node name =
    match Hashtbl.find_opt tensors name with
    | Some t -> t
    | None -> nerr node "input %s is not an initializer" name
  in
  let cur = ref input_name and shape = ref shape in
  let layers = ref [] and last_was_matmul = ref false in
  let push layer = layers := layer :: !layers in
  let out_name node =
    match node.n_outputs with
    | o :: _ -> o
    | [] -> nerr node "node has no output"
  in
  let check_flow node = function
    | f :: _ when f = !cur -> ()
    | f :: _ ->
      nerr node "input %s is not the current activation (%s): only a single \
                 sequential path is supported" f !cur
    | [] -> nerr node "node has no inputs"
  in
  List.iter
    (fun node ->
      check_flow node node.n_inputs;
      let was_matmul = !last_was_matmul in
      last_was_matmul := false;
      (match node.op with
       | "Relu" -> push (Layer.Relu (flat_width !shape))
       | "Flatten" ->
         let axis = attr_i node "axis" 1 in
         if axis <> 1 && axis <> 0 then nerr node "Flatten axis %d is unsupported" axis;
         shape := Flat (flat_width !shape)
       | "Gemm" ->
         let w, b =
           match node.n_inputs with
           | [ _; w ] -> (init_of node w, None)
           | [ _; w; b ] -> (init_of node w, Some (init_of node b))
           | _ -> nerr node "Gemm takes 2 or 3 inputs"
         in
         if attr_i node "transA" 0 <> 0 then nerr node "Gemm transA=1 is unsupported";
         let trans_b = attr_i node "transB" 0 <> 0 in
         let alpha = attr_f node "alpha" 1.0 and beta = attr_f node "beta" 1.0 in
         (match w.t_dims with
          | [| d0; d1 |] ->
            let rows, cols = if trans_b then (d0, d1) else (d1, d0) in
            if cols <> flat_width !shape then
              nerr node "Gemm weight expects %d inputs but the activation has %d"
                cols (flat_width !shape);
            let weight =
              if trans_b then matrix_of rows cols w.t_data
              else Matrix.transpose (matrix_of d0 d1 w.t_data)
            in
            let weight = if alpha = 1.0 then weight else Matrix.scale alpha weight in
            let bias =
              match b with
              | None -> Array.make rows 0.0
              | Some b ->
                if Array.length b.t_data <> rows then
                  nerr node "Gemm bias has %d element(s), expected %d"
                    (Array.length b.t_data) rows;
                if beta = 1.0 then Array.copy b.t_data
                else Array.map (fun v -> beta *. v) b.t_data
            in
            push (Layer.linear weight bias);
            shape := Flat rows
          | _ -> nerr node "Gemm weight must be 2-D")
       | "MatMul" ->
         let w =
           match node.n_inputs with
           | [ _; w ] -> init_of node w
           | _ -> nerr node "MatMul takes 2 inputs"
         in
         (match w.t_dims with
          | [| d0; d1 |] ->
            if d0 <> flat_width !shape then
              nerr node "MatMul weight expects %d inputs but the activation has %d"
                d0 (flat_width !shape);
            (* activation row-vector convention: y = x W, so W is in x out *)
            push (Layer.linear (Matrix.transpose (matrix_of d0 d1 w.t_data))
                    (Array.make d1 0.0));
            shape := Flat d1;
            last_was_matmul := true
          | _ -> nerr node "MatMul weight must be 2-D")
       | "Add" ->
         let b =
           match node.n_inputs with
           | [ _; b ] -> init_of node b
           | _ -> nerr node "Add takes 2 inputs"
         in
         if not was_matmul then
           nerr node "Add is only supported as the bias of a preceding MatMul";
         (match !layers with
          | Layer.Linear { weight; bias } :: rest ->
            if Array.length b.t_data <> Array.length bias then
              nerr node "Add bias has %d element(s), expected %d"
                (Array.length b.t_data) (Array.length bias);
            layers := Layer.linear weight (Array.copy b.t_data) :: rest
          | _ -> nerr node "Add is only supported as the bias of a preceding MatMul")
       | "Conv" ->
         let w, b =
           match node.n_inputs with
           | [ _; w ] -> (init_of node w, None)
           | [ _; w; b ] -> (init_of node w, Some (init_of node b))
           | _ -> nerr node "Conv takes 2 or 3 inputs"
         in
         let c, h, wd =
           match !shape with
           | Spatial (c, h, w) -> (c, h, w)
           | Flat _ -> nerr node "Conv requires a spatial (C,H,W) activation"
         in
         (match w.t_dims with
          | [| oc; ic; kh; kw |] ->
            if ic <> c then
              nerr node "Conv weight expects %d input channel(s) but the activation \
                         has %d" ic c;
            (match attr_ints node "kernel_shape" with
             | Some ks when ks <> [ kh; kw ] ->
               nerr node "Conv kernel_shape disagrees with the weight tensor"
             | _ -> ());
            if attr_i node "group" 1 <> 1 then nerr node "Conv group != 1 is unsupported";
            (match attr_ints node "dilations" with
             | Some ds when List.exists (fun d -> d <> 1) ds ->
               nerr node "Conv dilations != 1 are unsupported"
             | _ -> ());
            let stride =
              match attr_ints node "strides" with
              | None -> 1
              | Some [ s1; s2 ] when s1 = s2 -> s1
              | Some _ -> nerr node "Conv strides must be square"
            in
            let padding =
              match attr_ints node "pads" with
              | None -> 0
              | Some (p :: rest) when List.for_all (( = ) p) rest -> p
              | Some _ -> nerr node "Conv pads must be symmetric"
            in
            let bias =
              match b with
              | None -> Array.make oc 0.0
              | Some b ->
                if Array.length b.t_data <> oc then
                  nerr node "Conv bias has %d element(s), expected %d"
                    (Array.length b.t_data) oc;
                Array.copy b.t_data
            in
            let conv =
              { Conv.in_channels = c; in_h = h; in_w = wd; out_channels = oc;
                kernel_h = kh; kernel_w = kw; stride; padding;
                weight = Array.copy w.t_data; bias }
            in
            let oh = Conv.out_h conv and ow = Conv.out_w conv in
            if oh <= 0 || ow <= 0 then
              nerr node "Conv produces an empty %dx%d output" oh ow;
            push (Layer.Conv2d conv);
            shape := Spatial (oc, oh, ow)
          | _ -> nerr node "Conv weight must be 4-D (OC,IC,KH,KW)")
       | op -> nerr node "unsupported op %s" op);
      cur := out_name node)
    graph.g_nodes;
  (match graph.g_outputs with
   | out :: _ when out <> !cur ->
     err_at r 0 out "graph output %s is not produced by the node chain (last \
                     value: %s)" out !cur
   | _ -> ());
  match List.rev !layers with
  | [] -> err_at r 0 "" "graph has no supported layers"
  | layers -> (
    match Network.create layers with
    | net -> net
    | exception Invalid_argument msg -> err_at r 0 "" "inconsistent network: %s" msg)

let of_bytes ?(source = "<bytes>") bytes =
  let r = { src = source; buf = bytes; pos = 0; limit = String.length bytes } in
  lower r (parse_model r)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let bytes = really_input_string ic n in
      of_bytes ~source:path bytes)

(* --- protobuf wire writer ------------------------------------------

   Deterministic: fields are emitted in ascending tag order with fixed
   tensor/value names, so equal networks serialize to equal bytes (the
   golden corpus relies on this). *)

let add_varint buf n =
  let rec go n =
    let low = Int64.to_int (Int64.logand n 0x7fL) in
    let rest = Int64.shift_right_logical n 7 in
    if rest = 0L then Buffer.add_char buf (Char.chr low)
    else begin
      Buffer.add_char buf (Char.chr (low lor 0x80));
      go rest
    end
  in
  go n

let add_key buf field wire = add_varint buf (Int64.of_int ((field lsl 3) lor wire))

let add_int buf field n =
  add_key buf field 0;
  add_varint buf (Int64.of_int n)

let add_f32 buf field v =
  add_key buf field 5;
  let bits = Int32.bits_of_float v in
  for i = 0 to 3 do
    Buffer.add_char buf
      (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical bits (8 * i)) 0xffl)))
  done

let add_bytes buf field s =
  add_key buf field 2;
  add_varint buf (Int64.of_int (String.length s));
  Buffer.add_string buf s

let add_sub buf field f =
  let b = Buffer.create 64 in
  f b;
  add_bytes buf field (Buffer.contents b)

let raw_of_floats precision (data : float array) =
  let n = Array.length data in
  match precision with
  | F32 ->
    let bytes = Bytes.create (4 * n) in
    Array.iteri
      (fun i v -> Bytes.set_int32_le bytes (4 * i) (Int32.bits_of_float v))
      data;
    Bytes.unsafe_to_string bytes
  | F64 ->
    let bytes = Bytes.create (8 * n) in
    Array.iteri
      (fun i v -> Bytes.set_int64_le bytes (8 * i) (Int64.bits_of_float v))
      data;
    Bytes.unsafe_to_string bytes

let add_tensor buf ~precision ~name ~dims data =
  add_sub buf 5 (fun b ->
      List.iter (fun d -> add_int b 1 d) dims;
      add_int b 2 (match precision with F32 -> 1 | F64 -> 11);
      add_bytes b 8 name;
      add_bytes b 9 (raw_of_floats precision data))

let add_value_info buf ~field ~name ~elem_type dims =
  add_sub buf field (fun b ->
      add_bytes b 1 name;
      add_sub b 2 (fun t ->
          add_sub t 1 (fun tt ->
              add_int tt 1 elem_type;
              add_sub tt 2 (fun sh ->
                  List.iter (fun d -> add_sub sh 1 (fun dim -> add_int dim 1 d)) dims))))

type out_attr = Af of string * float | Ai of string * int | Aints of string * int list

let add_attr buf attr =
  add_sub buf 5 (fun b ->
      match attr with
      | Af (name, v) ->
        add_bytes b 1 name;
        add_f32 b 2 v;
        add_int b 20 1 (* FLOAT *)
      | Ai (name, v) ->
        add_bytes b 1 name;
        add_int b 3 v;
        add_int b 20 2 (* INT *)
      | Aints (name, vs) ->
        add_bytes b 1 name;
        List.iter (fun v -> add_int b 8 v) vs;
        add_int b 20 7 (* INTS *))

let add_node buf ~op ~inputs ~outputs attrs =
  add_sub buf 1 (fun b ->
      List.iter (fun i -> add_bytes b 1 i) inputs;
      List.iter (fun o -> add_bytes b 2 o) outputs;
      add_bytes b 4 op;
      List.iter (add_attr b) attrs)

let to_bytes ?(style = Gemm) ?(precision = F64) (net : Network.t) =
  let nodes = Buffer.create 1024 and inits = Buffer.create 4096 in
  let cur = ref "input" and next_value = ref 0 and next_param = ref 0 in
  let fresh () =
    incr next_value;
    Printf.sprintf "t%d" !next_value
  in
  let spatial0 =
    match Network.layers net with
    | Layer.Conv2d c :: _ -> Some (c.Conv.in_channels, c.Conv.in_h, c.Conv.in_w)
    | _ -> None
  in
  let spatial = ref spatial0 in
  List.iter
    (fun layer ->
      match layer with
      | Layer.Relu _ ->
        let out = fresh () in
        add_node nodes ~op:"Relu" ~inputs:[ !cur ] ~outputs:[ out ] [];
        cur := out
      | Layer.Linear { weight; bias } ->
        if !spatial <> None then begin
          (* the dense head consumes the conv tower's flat view *)
          let out = fresh () in
          add_node nodes ~op:"Flatten" ~inputs:[ !cur ] ~outputs:[ out ]
            [ Ai ("axis", 1) ];
          cur := out;
          spatial := None
        end;
        let k = !next_param in
        incr next_param;
        let wname = Printf.sprintf "w%d" k and bname = Printf.sprintf "b%d" k in
        let rows = weight.Matrix.rows and cols = weight.Matrix.cols in
        (match style with
         | Gemm ->
           add_tensor inits ~precision ~name:wname ~dims:[ rows; cols ]
             weight.Matrix.data;
           add_tensor inits ~precision ~name:bname ~dims:[ rows ] bias;
           let out = fresh () in
           add_node nodes ~op:"Gemm" ~inputs:[ !cur; wname; bname ]
             ~outputs:[ out ]
             [ Af ("alpha", 1.0); Af ("beta", 1.0); Ai ("transB", 1) ];
           cur := out
         | Matmul_add ->
           let wt = Matrix.transpose weight in
           add_tensor inits ~precision ~name:wname ~dims:[ cols; rows ]
             wt.Matrix.data;
           add_tensor inits ~precision ~name:bname ~dims:[ rows ] bias;
           let mid = fresh () in
           add_node nodes ~op:"MatMul" ~inputs:[ !cur; wname ] ~outputs:[ mid ] [];
           let out = fresh () in
           add_node nodes ~op:"Add" ~inputs:[ mid; bname ] ~outputs:[ out ] [];
           cur := out)
      | Layer.Conv2d c ->
        let k = !next_param in
        incr next_param;
        let wname = Printf.sprintf "w%d" k and bname = Printf.sprintf "b%d" k in
        add_tensor inits ~precision ~name:wname
          ~dims:[ c.Conv.out_channels; c.Conv.in_channels; c.Conv.kernel_h;
                  c.Conv.kernel_w ]
          c.Conv.weight;
        add_tensor inits ~precision ~name:bname ~dims:[ c.Conv.out_channels ]
          c.Conv.bias;
        let out = fresh () in
        add_node nodes ~op:"Conv" ~inputs:[ !cur; wname; bname ] ~outputs:[ out ]
          [ Aints ("dilations", [ 1; 1 ]);
            Ai ("group", 1);
            Aints ("kernel_shape", [ c.Conv.kernel_h; c.Conv.kernel_w ]);
            Aints ("pads", [ c.Conv.padding; c.Conv.padding; c.Conv.padding;
                             c.Conv.padding ]);
            Aints ("strides", [ c.Conv.stride; c.Conv.stride ]) ];
        cur := out;
        spatial := Some (c.Conv.out_channels, Conv.out_h c, Conv.out_w c))
    (Network.layers net);
  let elem_type = match precision with F32 -> 1 | F64 -> 11 in
  let input_dims =
    match spatial0 with
    | Some (c, h, w) -> [ 1; c; h; w ]
    | None -> [ 1; Network.input_dim net ]
  in
  let output_dims =
    match !spatial with
    | Some (c, h, w) -> [ 1; c; h; w ]
    | None -> [ 1; Network.output_dim net ]
  in
  let model = Buffer.create 8192 in
  add_int model 1 8;  (* ir_version *)
  add_bytes model 2 "abonn";  (* producer_name *)
  add_sub model 7 (fun g ->
      Buffer.add_buffer g nodes;
      add_bytes g 2 "abonn";
      Buffer.add_buffer g inits;
      add_value_info g ~field:11 ~name:"input" ~elem_type input_dims;
      add_value_info g ~field:12 ~name:!cur ~elem_type output_dims);
  add_sub model 8 (fun op -> add_int op 2 13);  (* opset_import { version = 13 } *)
  Buffer.contents model

let save ?style ?precision net path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_bytes ?style ?precision net))
