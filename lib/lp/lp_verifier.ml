module Matrix = Abonn_tensor.Matrix
module Affine = Abonn_nn.Affine
module Obs = Abonn_obs.Obs
module Ev = Abonn_obs.Event
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Problem = Abonn_spec.Problem
module Bounds = Abonn_prop.Bounds
module Outcome = Abonn_prop.Outcome

(* One neuron of the relaxation: a pre-activation variable constrained to
   equal the affine image of the previous layer, and a post-activation
   variable related to it according to the neuron's (split-clamped)
   stability state. *)
let encode_neuron lp ~prev ~w ~bias ~layer ~i ~lo ~hi ~state =
  let z = Lp_problem.add_var ~lo ~hi ~name:(Printf.sprintf "z%d_%d" layer i) lp in
  let terms = ref [ (1.0, z) ] in
  for j = 0 to Array.length prev - 1 do
    let wij = Matrix.get w i j in
    if wij <> 0.0 then terms := (-.wij, prev.(j)) :: !terms
  done;
  Lp_problem.add_constraint lp !terms Lp_problem.Eq bias;
  match state with
  | Bounds.Stable_inactive ->
    Lp_problem.add_var ~lo:0.0 ~hi:0.0 ~name:(Printf.sprintf "p%d_%d" layer i) lp
  | Bounds.Stable_active ->
    let p =
      Lp_problem.add_var ~lo:(Float.max 0.0 lo) ~hi:(Float.max 0.0 hi)
        ~name:(Printf.sprintf "p%d_%d" layer i) lp
    in
    Lp_problem.add_constraint lp [ (1.0, p); (-1.0, z) ] Lp_problem.Eq 0.0;
    p
  | Bounds.Unstable ->
    let p =
      Lp_problem.add_var ~lo:0.0 ~hi:(Float.max 0.0 hi)
        ~name:(Printf.sprintf "p%d_%d" layer i) lp
    in
    (* p ≥ z, and the triangle's chord p ≤ s·(z − lo) with s = hi/(hi−lo). *)
    Lp_problem.add_constraint lp [ (1.0, p); (-1.0, z) ] Lp_problem.Ge 0.0;
    let s = hi /. (hi -. lo) in
    Lp_problem.add_constraint lp [ (1.0, p); (-.s, z) ] Lp_problem.Le (-.s *. lo);
    p

(* Build the relaxation LP; returns the builder, the input variables and
   the post-activation variables of the deepest hidden layer. *)
let encode (problem : Problem.t) (pre_bounds : Bounds.t array) =
  let affine = problem.Problem.affine in
  let region = problem.Problem.region in
  let lp = Lp_problem.create () in
  let inputs =
    Array.init Affine.(affine.input_dim) (fun j ->
        Lp_problem.add_var ~lo:region.Region.lower.(j) ~hi:region.Region.upper.(j)
          ~name:(Printf.sprintf "in%d" j) lp)
  in
  let encode_layer prev l =
    let w = Affine.(affine.weights.(l)) and bias = Affine.(affine.biases.(l)) in
    let b = pre_bounds.(l) in
    Array.init w.Matrix.rows (fun i ->
        encode_neuron lp ~prev ~w ~bias:bias.(i) ~layer:l ~i ~lo:b.Bounds.lower.(i)
          ~hi:b.Bounds.upper.(i) ~state:(Bounds.relu_state_of b i))
  in
  let rec walk prev l =
    if l >= Array.length pre_bounds then prev else walk (encode_layer prev l) (l + 1)
  in
  let last_post = walk inputs 0 in
  (lp, inputs, last_post)

(* [Lp_problem.solve] with observability: per-status counters, a span
   timer and one [lp_solved] event per solve. *)
let observed_solve lp =
  if not (Obs.active ()) then Lp_problem.solve lp
  else begin
    let t0 = Obs.now () in
    let outcome = Lp_problem.solve lp in
    let elapsed = Obs.now () -. t0 in
    let status =
      match outcome with
      | Lp_problem.Optimal _ -> "optimal"
      | Lp_problem.Infeasible -> "infeasible"
      | Lp_problem.Unbounded -> "unbounded"
      | Lp_problem.Pivot_limit -> "pivot_limit"
    in
    Obs.incr "lp.solves";
    Obs.incr ("lp.solve." ^ status);
    Obs.span "lp.solve" elapsed;
    if Obs.tracing () then
      Obs.emit
        (Ev.Lp_solved
           { vars = Lp_problem.num_vars lp; rows = Lp_problem.num_constraints lp;
             status; elapsed });
    outcome
  end

let analyse (problem : Problem.t) gamma =
  match Abonn_prop.Deeppoly.hidden_bounds problem gamma with
  | None -> Outcome.vacuous ~pre_bounds:[||]
  | Some pre_bounds ->
    let affine = problem.Problem.affine in
    let prop = problem.Problem.property in
    let lp, inputs, last_post = encode problem pre_bounds in
    let last = Affine.num_layers affine - 1 in
    let w = Affine.(affine.weights.(last)) and bias = Affine.(affine.biases.(last)) in
    let nrows = prop.Property.c.Matrix.rows in
    let row_lower = Array.make nrows infinity in
    let best_candidate = ref None in
    let best_value = ref infinity in
    for r = 0 to nrows - 1 do
      (* Minimise (cᵀW)·x_last + cᵀb + d over the relaxation. *)
      let crow = Matrix.row prop.Property.c r in
      let coefs = Matrix.tmv w crow in
      let constant = Abonn_tensor.Vector.dot crow bias +. prop.Property.d.(r) in
      let terms = ref [] in
      Array.iteri (fun j c -> if c <> 0.0 then terms := (c, last_post.(j)) :: !terms) coefs;
      Lp_problem.set_objective ~constant lp !terms;
      begin match observed_solve lp with
      | Lp_problem.Optimal { objective; values } ->
        row_lower.(r) <- objective;
        if objective < !best_value then begin
          best_value := objective;
          best_candidate := Some (Array.map values inputs)
        end
      | Lp_problem.Infeasible ->
        (* The relaxation admits no point at all, so the sub-problem is
           vacuous for this (and every) row. *)
        row_lower.(r) <- infinity
      | Lp_problem.Unbounded ->
        (* Cannot happen: every variable is bounded through the input box
           and the relaxation constraints.  Stay sound regardless. *)
        row_lower.(r) <- neg_infinity
      | Lp_problem.Pivot_limit ->
        (* Inconclusive solve: -∞ is the sound "no information" bound. *)
        row_lower.(r) <- neg_infinity
      end
    done;
    let phat = Array.fold_left Float.min infinity row_lower in
    let candidate = if phat > 0.0 then None else !best_candidate in
    Outcome.make ~phat ?candidate ~pre_bounds ~row_lower ()

(* Whole-verifier instrumentation on top of the per-solve telemetry of
   [observed_solve]. *)
let run (problem : Problem.t) gamma =
  if not (Obs.active ()) then analyse problem gamma
  else begin
    let t0 = Obs.now () in
    let outcome = analyse problem gamma in
    let elapsed = Obs.now () -. t0 in
    Obs.incr "appver.lp.calls";
    Obs.span "appver.lp" elapsed;
    if Obs.tracing () then
      Obs.emit
        (Ev.Bound_computed
           { appver = "lp"; depth = Abonn_spec.Split.depth gamma;
             phat = outcome.Abonn_prop.Outcome.phat; elapsed });
    outcome
  end

(* --- warm-started path (DESIGN.md §13) --- *)

module Incremental = Abonn_prop.Incremental
module Deeppoly = Abonn_prop.Deeppoly

(* Process-global escape hatch (--no-lp-warm): when disabled, the warm
   entry point is exactly [run] — bit-for-bit the cold path. *)
let warm_flag = ref true

let warm_enabled () = !warm_flag

let set_warm_enabled v = warm_flag := v

let with_warm_enabled v f =
  let saved = !warm_flag in
  warm_flag := v;
  Fun.protect ~finally:(fun () -> warm_flag := saved) f

(* Per-tree basis cache: content-addressed on (architecture fingerprint,
   input region, split sequence) — the same identity [Incremental.classify]
   keys parent bound state on — and mutex-guarded so [--domains N] workers
   share it safely.  A stale or foreign basis can never produce a wrong
   answer ([Boxlp.solve_warm] validates shape and repairs or falls back);
   at worst it costs pivots, so the cache is evicted wholesale when it
   outgrows [cache_cap]. *)
type cache_key = {
  ck_net : int;
  ck_gamma : Abonn_spec.Split.gamma;
  ck_lower : float array;
  ck_upper : float array;
}

let cache_lock = Mutex.create ()
let cache : (cache_key, Boxlp.warm) Hashtbl.t = Hashtbl.create 256
let cache_cap = 4096

let with_lock f =
  Mutex.lock cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_lock) f

let net_fingerprint (problem : Problem.t) =
  let affine = problem.Problem.affine in
  Hashtbl.hash
    ( Affine.(affine.input_dim),
      Array.map (fun (w : Matrix.t) -> w.Matrix.rows) Affine.(affine.weights) )

let cache_key (problem : Problem.t) gamma =
  let region = problem.Problem.region in
  { ck_net = net_fingerprint problem;
    ck_gamma = gamma;
    ck_lower = region.Region.lower;
    ck_upper = region.Region.upper }

let key_of_state (problem : Problem.t) (st : Incremental.t) =
  { ck_net = net_fingerprint problem;
    ck_gamma = st.Incremental.gamma;
    ck_lower = st.Incremental.region_lower;
    ck_upper = st.Incremental.region_upper }

let cache_find key = with_lock (fun () -> Hashtbl.find_opt cache key)

let cache_store key basis =
  with_lock (fun () ->
      if Hashtbl.length cache >= cache_cap then Hashtbl.reset cache;
      Hashtbl.replace cache key basis)

let clear_warm_cache () = with_lock (fun () -> Hashtbl.reset cache)

let warm_cache_size () = with_lock (fun () -> Hashtbl.length cache)

(* Canonical fixed-shape encoding for the warm path.  Unlike [encode],
   whose rows depend on each neuron's stability state, every hidden
   neuron always contributes the variables [z; p] and the three rows

     z − W·prev = b   (Eq)
     p − z ≥ 0        (Ge)
     p − u_s·z ≤ u_c  (Le)

   with (u_s, u_c) = the triangle chord for unstable neurons, (1, 0)
   for stably-active ones (p = z together with the Ge row) and (0, 0)
   for stably-inactive ones (vacuous next to p ∈ [0, 0]).  Each state's
   polytope is exactly the one [encode] builds, but the variable/row
   layout is a function of the architecture alone — which is what lets
   a parent basis be replayed against any child of the same tree. *)
type canonical = {
  c_lo : float array;
  c_hi : float array;
  c_rows : Boxlp.row list;
  c_n0 : int;  (* input variables are 0 .. c_n0-1 *)
  c_last_post : int array;
  c_nvars : int;
}

let encode_canonical (problem : Problem.t) (pre_bounds : Bounds.t array) =
  let affine = problem.Problem.affine in
  let region = problem.Problem.region in
  let n0 = Affine.(affine.input_dim) in
  let n_hidden = Array.length pre_bounds in
  let nvars = ref n0 in
  for l = 0 to n_hidden - 1 do
    nvars := !nvars + (2 * Affine.(affine.weights.(l)).Matrix.rows)
  done;
  let nvars = !nvars in
  let lo = Array.make nvars 0.0 and hi = Array.make nvars 0.0 in
  Array.blit region.Region.lower 0 lo 0 n0;
  Array.blit region.Region.upper 0 hi 0 n0;
  let rows = ref [] in
  let next = ref n0 in
  let prev = ref (Array.init n0 Fun.id) in
  for l = 0 to n_hidden - 1 do
    let w = Affine.(affine.weights.(l)) and bias = Affine.(affine.biases.(l)) in
    let b = pre_bounds.(l) in
    let cur = Array.make w.Matrix.rows 0 in
    for i = 0 to w.Matrix.rows - 1 do
      let z = !next and p = !next + 1 in
      next := !next + 2;
      cur.(i) <- p;
      let zlo = b.Bounds.lower.(i) and zhi = b.Bounds.upper.(i) in
      lo.(z) <- zlo;
      hi.(z) <- zhi;
      let coefs = ref [ (z, 1.0) ] in
      for j = 0 to Array.length !prev - 1 do
        let wij = Matrix.get w i j in
        if wij <> 0.0 then coefs := ((!prev).(j), -.wij) :: !coefs
      done;
      rows := { Boxlp.coefs = !coefs; sense = Boxlp.Eq; rhs = bias.(i) } :: !rows;
      let u_s, u_c, plo, phi =
        match Bounds.relu_state_of b i with
        | Bounds.Stable_inactive -> (0.0, 0.0, 0.0, 0.0)
        | Bounds.Stable_active ->
          (1.0, 0.0, Float.max 0.0 zlo, Float.max 0.0 zhi)
        | Bounds.Unstable ->
          let s = zhi /. (zhi -. zlo) in
          (s, -.s *. zlo, 0.0, Float.max 0.0 zhi)
      in
      lo.(p) <- plo;
      hi.(p) <- phi;
      rows :=
        { Boxlp.coefs = [ (p, 1.0); (z, -1.0) ]; sense = Boxlp.Ge; rhs = 0.0 }
        :: !rows;
      rows :=
        { Boxlp.coefs = [ (p, 1.0); (z, -.u_s) ]; sense = Boxlp.Le; rhs = u_c }
        :: !rows
    done;
    prev := cur
  done;
  { c_lo = lo; c_hi = hi; c_rows = List.rev !rows; c_n0 = n0;
    c_last_post = !prev; c_nvars = nvars }

type warm_stats = { hit : bool; pivots : int; fallback : string }

(* Warm analysis.  Pre-activation bounds ride the DeepPoly incremental
   machinery: an lp state's [pre_bounds] are exactly the dp-warm bounds
   it was built from, so relabeling the state lets [Deeppoly.run_warm]
   do its prefix sharing and monotone tightening unchanged.  The
   parent's (LP-certified) [row_lower] stays sound under that reuse:
   the child's feasible set is contained in the parent's, so any lower
   bound certified for the parent also bounds the child. *)
let analyse_warm ?state (problem : Problem.t) gamma =
  let dp_state =
    Option.map
      (fun st -> { st with Incremental.appver = "deeppoly" })
      state
  in
  let dp_outcome, _ = Deeppoly.run_warm ?state:dp_state problem gamma in
  let n_hidden = Affine.num_layers problem.Problem.affine - 1 in
  if
    dp_outcome.Outcome.infeasible
    || Array.length dp_outcome.Outcome.pre_bounds <> n_hidden
  then
    ( Outcome.vacuous ~pre_bounds:dp_outcome.Outcome.pre_bounds,
      None,
      { hit = false; pivots = 0; fallback = "infeasible" } )
  else begin
    let pre_bounds = dp_outcome.Outcome.pre_bounds in
    let affine = problem.Problem.affine in
    let prop = problem.Problem.property in
    let enc = encode_canonical problem pre_bounds in
    let last = Affine.num_layers affine - 1 in
    let w = Affine.(affine.weights.(last)) in
    let bias = Affine.(affine.biases.(last)) in
    let nrows = prop.Property.c.Matrix.rows in
    let objective_of r =
      let crow = Matrix.row prop.Property.c r in
      let coefs = Matrix.tmv w crow in
      let constant = Abonn_tensor.Vector.dot crow bias +. prop.Property.d.(r) in
      let carr = Array.make enc.c_nvars 0.0 in
      Array.iteri
        (fun j v -> if v <> 0.0 then carr.(enc.c_last_post.(j)) <- v)
        coefs;
      (carr, constant)
    in
    let row_lower = Array.make nrows infinity in
    let best_candidate = ref None in
    let best_value = ref infinity in
    let record (sol : Boxlp.solution) constant r =
      let status_name =
        match sol.Boxlp.status with
        | Boxlp.Optimal -> "optimal"
        | Boxlp.Infeasible -> "infeasible"
        | Boxlp.Unbounded -> "unbounded"
        | Boxlp.Pivot_limit -> "pivot_limit"
      in
      if Obs.active () then begin
        Obs.incr "lp.solves";
        Obs.incr ("lp.solve." ^ status_name)
      end;
      match sol.Boxlp.status with
      | Boxlp.Optimal ->
        let objective = sol.Boxlp.objective +. constant in
        row_lower.(r) <- objective;
        if objective < !best_value then begin
          best_value := objective;
          best_candidate := Some (Array.sub sol.Boxlp.x 0 enc.c_n0)
        end
      | Boxlp.Infeasible -> row_lower.(r) <- infinity
      | Boxlp.Unbounded | Boxlp.Pivot_limit -> row_lower.(r) <- neg_infinity
    in
    let hit = ref false in
    let pivots = ref 0 in
    let fallback = ref "no-parent" in
    let session = ref None in
    let last_iters = ref 0 in
    let cold_row r carr constant =
      let sol, ses =
        Boxlp.solve_session ~c:carr ~lo:enc.c_lo ~hi:enc.c_hi ~rows:enc.c_rows
          ()
      in
      session := ses;
      last_iters := sol.Boxlp.iterations;
      record sol constant r
    in
    let parent_basis =
      match state with
      | Some st
        when Incremental.classify st ~appver:"lp" ~problem ~gamma
             <> Incremental.Incompatible ->
        cache_find (key_of_state problem st)
      | Some _ | None -> None
    in
    let c0, const0 = objective_of 0 in
    (match parent_basis with
     | Some from ->
       (match
          Boxlp.solve_warm ~from ~c:c0 ~lo:enc.c_lo ~hi:enc.c_hi
            ~rows:enc.c_rows ()
        with
        | Boxlp.Warm_ok { sol; pivots = p; session = ses } ->
          hit := true;
          fallback := "";
          pivots := !pivots + p;
          session := ses;
          last_iters := sol.Boxlp.iterations;
          record sol const0 0
        | Boxlp.Warm_fallback reason ->
          fallback := reason;
          cold_row 0 c0 const0)
     | None -> cold_row 0 c0 const0);
    for r = 1 to nrows - 1 do
      let carr, constant = objective_of r in
      match !session with
      | Some ses ->
        let sol = Boxlp.reoptimize ses ~c:carr in
        pivots := !pivots + Stdlib.max 0 (sol.Boxlp.iterations - !last_iters);
        last_iters := sol.Boxlp.iterations;
        record sol constant r
      | None ->
        (* row 0 left no live tableau (infeasible / unbounded / pivot
           limit): mirror the cold path, which solves each row on its
           own — infeasibility is a property of the polytope, so the
           fresh solve re-derives the same verdict. *)
        cold_row r carr constant
    done;
    (match !session with
     | Some ses ->
       (match Boxlp.basis_of_session ses with
        | Some b -> cache_store (cache_key problem gamma) b
        | None -> ())
     | None -> ());
    let phat = Array.fold_left Float.min infinity row_lower in
    let candidate = if phat > 0.0 then None else !best_candidate in
    let outcome = Outcome.make ~phat ?candidate ~pre_bounds ~row_lower () in
    let state' =
      Some
        (Incremental.make ~appver:"lp" ~problem ~gamma ~pre_bounds ~row_lower)
    in
    (outcome, state', { hit = !hit; pivots = !pivots; fallback = !fallback })
  end

(* Warm entry point with [run]-parity instrumentation plus the
   [lp.warm.*] counters and one [lp_warm] trace event per call.
   Fallback semantics of the [fallback] payload: [""] = parent basis
   replayed successfully; ["no-parent"] = nothing to replay (root node,
   incompatible state or cache miss); ["infeasible"] = the cheap bounds
   already closed the node; anything else = a replay was attempted and
   degraded to a cold solve (counted in [lp.warm.fallbacks]). *)
let run_warm ?state (problem : Problem.t) gamma =
  if not (warm_enabled ()) then (run problem gamma, None)
  else if not (Obs.active ()) then begin
    let outcome, state', _ = analyse_warm ?state problem gamma in
    (outcome, state')
  end
  else begin
    let t0 = Obs.now () in
    let outcome, state', stats = analyse_warm ?state problem gamma in
    let elapsed = Obs.now () -. t0 in
    Obs.incr "appver.lp.calls";
    Obs.span "appver.lp" elapsed;
    if stats.hit then Obs.incr "lp.warm.hits";
    if stats.pivots > 0 then Obs.incr ~by:stats.pivots "lp.warm.pivots";
    let degraded =
      match stats.fallback with "" | "no-parent" | "infeasible" -> false | _ -> true
    in
    if degraded then Obs.incr "lp.warm.fallbacks";
    if Obs.tracing () then begin
      Obs.emit
        (Ev.Bound_computed
           { appver = "lp"; depth = Abonn_spec.Split.depth gamma;
             phat = outcome.Abonn_prop.Outcome.phat; elapsed });
      Obs.emit
        (Ev.Lp_warm
           { depth = Abonn_spec.Split.depth gamma;
             rows = problem.Problem.property.Property.c.Matrix.rows;
             hit = stats.hit; pivots = stats.pivots;
             fallback = stats.fallback; elapsed })
    end;
    (outcome, state')
  end

let appver = { Abonn_prop.Appver.name = "lp"; run; warm = Some run_warm }
