module Matrix = Abonn_tensor.Matrix
module Affine = Abonn_nn.Affine
module Obs = Abonn_obs.Obs
module Ev = Abonn_obs.Event
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Problem = Abonn_spec.Problem
module Bounds = Abonn_prop.Bounds
module Outcome = Abonn_prop.Outcome

(* One neuron of the relaxation: a pre-activation variable constrained to
   equal the affine image of the previous layer, and a post-activation
   variable related to it according to the neuron's (split-clamped)
   stability state. *)
let encode_neuron lp ~prev ~w ~bias ~layer ~i ~lo ~hi ~state =
  let z = Lp_problem.add_var ~lo ~hi ~name:(Printf.sprintf "z%d_%d" layer i) lp in
  let terms = ref [ (1.0, z) ] in
  for j = 0 to Array.length prev - 1 do
    let wij = Matrix.get w i j in
    if wij <> 0.0 then terms := (-.wij, prev.(j)) :: !terms
  done;
  Lp_problem.add_constraint lp !terms Lp_problem.Eq bias;
  match state with
  | Bounds.Stable_inactive ->
    Lp_problem.add_var ~lo:0.0 ~hi:0.0 ~name:(Printf.sprintf "p%d_%d" layer i) lp
  | Bounds.Stable_active ->
    let p =
      Lp_problem.add_var ~lo:(Float.max 0.0 lo) ~hi:(Float.max 0.0 hi)
        ~name:(Printf.sprintf "p%d_%d" layer i) lp
    in
    Lp_problem.add_constraint lp [ (1.0, p); (-1.0, z) ] Lp_problem.Eq 0.0;
    p
  | Bounds.Unstable ->
    let p =
      Lp_problem.add_var ~lo:0.0 ~hi:(Float.max 0.0 hi)
        ~name:(Printf.sprintf "p%d_%d" layer i) lp
    in
    (* p ≥ z, and the triangle's chord p ≤ s·(z − lo) with s = hi/(hi−lo). *)
    Lp_problem.add_constraint lp [ (1.0, p); (-1.0, z) ] Lp_problem.Ge 0.0;
    let s = hi /. (hi -. lo) in
    Lp_problem.add_constraint lp [ (1.0, p); (-.s, z) ] Lp_problem.Le (-.s *. lo);
    p

(* Build the relaxation LP; returns the builder, the input variables and
   the post-activation variables of the deepest hidden layer. *)
let encode (problem : Problem.t) (pre_bounds : Bounds.t array) =
  let affine = problem.Problem.affine in
  let region = problem.Problem.region in
  let lp = Lp_problem.create () in
  let inputs =
    Array.init Affine.(affine.input_dim) (fun j ->
        Lp_problem.add_var ~lo:region.Region.lower.(j) ~hi:region.Region.upper.(j)
          ~name:(Printf.sprintf "in%d" j) lp)
  in
  let encode_layer prev l =
    let w = Affine.(affine.weights.(l)) and bias = Affine.(affine.biases.(l)) in
    let b = pre_bounds.(l) in
    Array.init w.Matrix.rows (fun i ->
        encode_neuron lp ~prev ~w ~bias:bias.(i) ~layer:l ~i ~lo:b.Bounds.lower.(i)
          ~hi:b.Bounds.upper.(i) ~state:(Bounds.relu_state_of b i))
  in
  let rec walk prev l =
    if l >= Array.length pre_bounds then prev else walk (encode_layer prev l) (l + 1)
  in
  let last_post = walk inputs 0 in
  (lp, inputs, last_post)

(* [Lp_problem.solve] with observability: per-status counters, a span
   timer and one [lp_solved] event per solve. *)
let observed_solve lp =
  if not (Obs.active ()) then Lp_problem.solve lp
  else begin
    let t0 = Obs.now () in
    let outcome = Lp_problem.solve lp in
    let elapsed = Obs.now () -. t0 in
    let status =
      match outcome with
      | Lp_problem.Optimal _ -> "optimal"
      | Lp_problem.Infeasible -> "infeasible"
      | Lp_problem.Unbounded -> "unbounded"
    in
    Obs.incr "lp.solves";
    Obs.incr ("lp.solve." ^ status);
    Obs.span "lp.solve" elapsed;
    if Obs.tracing () then
      Obs.emit
        (Ev.Lp_solved
           { vars = Lp_problem.num_vars lp; rows = Lp_problem.num_constraints lp;
             status; elapsed });
    outcome
  end

let analyse (problem : Problem.t) gamma =
  match Abonn_prop.Deeppoly.hidden_bounds problem gamma with
  | None -> Outcome.vacuous ~pre_bounds:[||]
  | Some pre_bounds ->
    let affine = problem.Problem.affine in
    let prop = problem.Problem.property in
    let lp, inputs, last_post = encode problem pre_bounds in
    let last = Affine.num_layers affine - 1 in
    let w = Affine.(affine.weights.(last)) and bias = Affine.(affine.biases.(last)) in
    let nrows = prop.Property.c.Matrix.rows in
    let row_lower = Array.make nrows infinity in
    let best_candidate = ref None in
    let best_value = ref infinity in
    for r = 0 to nrows - 1 do
      (* Minimise (cᵀW)·x_last + cᵀb + d over the relaxation. *)
      let crow = Matrix.row prop.Property.c r in
      let coefs = Matrix.tmv w crow in
      let constant = Abonn_tensor.Vector.dot crow bias +. prop.Property.d.(r) in
      let terms = ref [] in
      Array.iteri (fun j c -> if c <> 0.0 then terms := (c, last_post.(j)) :: !terms) coefs;
      Lp_problem.set_objective ~constant lp !terms;
      begin match observed_solve lp with
      | Lp_problem.Optimal { objective; values } ->
        row_lower.(r) <- objective;
        if objective < !best_value then begin
          best_value := objective;
          best_candidate := Some (Array.map values inputs)
        end
      | Lp_problem.Infeasible ->
        (* The relaxation admits no point at all, so the sub-problem is
           vacuous for this (and every) row. *)
        row_lower.(r) <- infinity
      | Lp_problem.Unbounded ->
        (* Cannot happen: every variable is bounded through the input box
           and the relaxation constraints.  Stay sound regardless. *)
        row_lower.(r) <- neg_infinity
      end
    done;
    let phat = Array.fold_left Float.min infinity row_lower in
    let candidate = if phat > 0.0 then None else !best_candidate in
    Outcome.make ~phat ?candidate ~pre_bounds ~row_lower ()

(* Whole-verifier instrumentation on top of the per-solve telemetry of
   [observed_solve]. *)
let run (problem : Problem.t) gamma =
  if not (Obs.active ()) then analyse problem gamma
  else begin
    let t0 = Obs.now () in
    let outcome = analyse problem gamma in
    let elapsed = Obs.now () -. t0 in
    Obs.incr "appver.lp.calls";
    Obs.span "appver.lp" elapsed;
    if Obs.tracing () then
      Obs.emit
        (Ev.Bound_computed
           { appver = "lp"; depth = Abonn_spec.Split.depth gamma;
             phat = outcome.Abonn_prop.Outcome.phat; elapsed });
    outcome
  end

let appver = { Abonn_prop.Appver.name = "lp"; run; warm = None }
