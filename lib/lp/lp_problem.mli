(** General-form linear programs over bounded/free variables.

    A thin modelling layer over [Simplex]: variables may carry arbitrary
    (possibly infinite) bounds, constraints may be ≤ / ≥ / =, and the
    objective is minimisation.  [solve] performs the classical reduction
    to standard form (shifting lower bounds, splitting free variables,
    adding slack/surplus variables, turning finite upper bounds into rows)
    and maps the solution back to the original variables. *)

type t
type var

type sense = Le | Ge | Eq

type outcome =
  | Optimal of { objective : float; values : var -> float }
  | Infeasible
  | Unbounded
  | Pivot_limit
      (** pivot budget exhausted before convergence — inconclusive;
          callers must treat it as "no information", never a verdict *)

val create : unit -> t

val add_var : ?lo:float -> ?hi:float -> ?name:string -> t -> var
(** Fresh variable with bounds [\[lo, hi\]] (defaults: free).  Raises
    [Invalid_argument] if [lo > hi]. *)

val num_vars : t -> int
val num_constraints : t -> int

val add_constraint : t -> (float * var) list -> sense -> float -> unit
(** [add_constraint t terms sense rhs] adds [Σ coef·x  sense  rhs].
    Repeated variables in [terms] are summed. *)

val set_objective : ?constant:float -> t -> (float * var) list -> unit
(** Minimise [Σ coef·x + constant].  Defaults to the zero objective
    (pure feasibility). *)

val solve : ?max_iters:int -> t -> outcome
(** Solve by two-phase simplex.  The builder may be reused (and further
    extended) after solving. *)
