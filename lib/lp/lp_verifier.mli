(** LP-based approximate verifier over the triangle relaxation.

    Encodes the (split-constrained) network as the standard LP relaxation
    — exact affine layers, triangle-relaxed unstable ReLUs — and minimises
    each property row with the in-repo simplex.  This is the tightest
    AppVer in the repository (it reasons about all neurons jointly, where
    [Abonn_prop.Deeppoly] commits to one linear bound per neuron), at a
    much higher per-call cost; the paper's pipeline reserves LP-grade
    reasoning for the solver backend and we use this engine as a
    cross-check oracle in tests and as an optional AppVer for small
    networks.

    The candidate counterexample is the input part of the LP minimiser —
    a vertex of the relaxation, mirroring what a Gurobi-backed BaB
    implementation validates. *)

val run : Abonn_spec.Problem.t -> Abonn_spec.Split.gamma -> Abonn_prop.Outcome.t
(** Pre-activation bounds are taken from [Abonn_prop.Deeppoly] (and are
    part of the returned outcome, as for every AppVer). *)

val run_warm :
  ?state:Abonn_prop.Incremental.t ->
  Abonn_spec.Problem.t ->
  Abonn_spec.Split.gamma ->
  Abonn_prop.Outcome.t * Abonn_prop.Incremental.t option
(** Warm-started analysis (DESIGN.md §13): pre-activation bounds reuse
    the parent's state through the DeepPoly incremental machinery, the
    first property row is re-solved by dual simplex from the parent's
    cached optimal basis ({!Boxlp.solve_warm}) and the remaining rows
    reoptimize the same live tableau ({!Boxlp.reoptimize}).  Every
    degraded step (no parent, incompatible state, singular or
    dual-infeasible basis, pivot cap) falls back to a cold solve of the
    same polytope, so the result is always exactly as trustworthy as
    {!run}; warm and cold differ only in pivot order (same optima up to
    floating-point noise).  Emits [lp.warm.{hits,pivots,fallbacks}]
    counters and one [lp_warm] trace event per call (TRACE_SCHEMA
    §2.19).  When {!warm_enabled} is off this is exactly [run] paired
    with [None] — bit-for-bit the cold path. *)

val warm_enabled : unit -> bool
(** Global warm-start switch, [true] by default ([--no-lp-warm] turns
    it off). *)

val set_warm_enabled : bool -> unit

val with_warm_enabled : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the switch forced, restoring it afterwards (also
    on exceptions). *)

val clear_warm_cache : unit -> unit
(** Drop every cached basis (tests; long-lived processes between
    runs).  Never required for correctness. *)

val warm_cache_size : unit -> int
(** Number of cached bases (introspection/tests). *)

val appver : Abonn_prop.Appver.t
(** [run] registered under the name ["lp"], with [run_warm] as the warm
    entry point. *)
