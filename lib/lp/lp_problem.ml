module Matrix = Abonn_tensor.Matrix

type var = int

type sense = Le | Ge | Eq

type var_decl = { lo : float; hi : float; name : string }

type row = { terms : (float * var) list; sense : sense; rhs : float }

type t = {
  mutable vars : var_decl list;  (* reversed *)
  mutable nvars : int;
  mutable rows : row list;       (* reversed *)
  mutable nrows : int;
  mutable objective : (float * var) list;
  mutable obj_constant : float;
}

type outcome =
  | Optimal of { objective : float; values : var -> float }
  | Infeasible
  | Unbounded
  | Pivot_limit

let create () =
  { vars = []; nvars = 0; rows = []; nrows = 0; objective = []; obj_constant = 0.0 }

let add_var ?(lo = neg_infinity) ?(hi = infinity) ?name t =
  if lo > hi then invalid_arg "Lp_problem.add_var: lo > hi";
  let name = match name with Some n -> n | None -> Printf.sprintf "x%d" t.nvars in
  t.vars <- { lo; hi; name } :: t.vars;
  let v = t.nvars in
  t.nvars <- t.nvars + 1;
  v

let num_vars t = t.nvars

let num_constraints t = t.nrows

let check_var t v =
  if v < 0 || v >= t.nvars then invalid_arg "Lp_problem: unknown variable"

let add_constraint t terms sense rhs =
  List.iter (fun (_, v) -> check_var t v) terms;
  t.rows <- { terms; sense; rhs } :: t.rows;
  t.nrows <- t.nrows + 1

let set_objective ?(constant = 0.0) t terms =
  List.iter (fun (_, v) -> check_var t v) terms;
  t.objective <- terms;
  t.obj_constant <- constant

(* Fast path: when no variable is fully free, the bounded-variable
   simplex solves the model directly — no bound rows, no splitting. *)
let solve_boxed ?max_iters t decls =
  let n = t.nvars in
  let c = Array.make n 0.0 in
  List.iter (fun (v, var) -> c.(var) <- c.(var) +. v) t.objective;
  let lo = Array.map (fun d -> d.lo) decls in
  let hi = Array.map (fun d -> d.hi) decls in
  let rows =
    List.rev_map
      (fun r ->
        let sense =
          match r.sense with Le -> Boxlp.Le | Ge -> Boxlp.Ge | Eq -> Boxlp.Eq
        in
        { Boxlp.coefs = List.map (fun (v, var) -> (var, v)) r.terms; sense; rhs = r.rhs })
      t.rows
  in
  let sol = Boxlp.solve ?max_iters ~c ~lo ~hi ~rows () in
  match sol.Boxlp.status with
  | Boxlp.Infeasible -> Infeasible
  | Boxlp.Unbounded -> Unbounded
  | Boxlp.Pivot_limit -> Pivot_limit
  | Boxlp.Optimal ->
    Optimal
      { objective = sol.Boxlp.objective +. t.obj_constant;
        values = (fun v -> sol.Boxlp.x.(v)) }

(* Standard-form encoding of one original variable: a list of
   (std_index, coefficient) plus a constant offset, so that
   x_orig = offset + Σ coef · x_std with every x_std ≥ 0. *)
type encoding = { parts : (int * float) list; offset : float }

let solve_standard ?max_iters t =
  let decls = Array.of_list (List.rev t.vars) in
  let next_std = ref 0 in
  let fresh () =
    let i = !next_std in
    incr next_std;
    i
  in
  let extra_rows = ref [] in
  let encodings =
    Array.map
      (fun d ->
        let finite v = Float.is_finite v in
        match finite d.lo, finite d.hi with
        | true, true ->
          (* x = lo + x', 0 ≤ x' ≤ hi − lo; the upper bound becomes a row. *)
          let s = fresh () in
          extra_rows := ([ (1.0, s) ], Le, d.hi -. d.lo) :: !extra_rows;
          { parts = [ (s, 1.0) ]; offset = d.lo }
        | true, false ->
          let s = fresh () in
          { parts = [ (s, 1.0) ]; offset = d.lo }
        | false, true ->
          (* x = hi − x'. *)
          let s = fresh () in
          { parts = [ (s, -1.0) ]; offset = d.hi }
        | false, false ->
          let p = fresh () in
          let n = fresh () in
          { parts = [ (p, 1.0); (n, -1.0) ]; offset = 0.0 })
      decls
  in
  (* Translate a term list over original vars into (std coefficient map,
     constant contribution). *)
  let translate terms =
    let coefs = Hashtbl.create 16 in
    let const = ref 0.0 in
    List.iter
      (fun (c, v) ->
        let e = encodings.(v) in
        const := !const +. (c *. e.offset);
        List.iter
          (fun (s, f) ->
            let cur = Option.value ~default:0.0 (Hashtbl.find_opt coefs s) in
            Hashtbl.replace coefs s (cur +. (c *. f)))
          e.parts)
      terms;
    (coefs, !const)
  in
  (* Collect all rows: user rows (over encodings) + bound rows (already
     over std vars). *)
  let user_rows =
    List.rev_map
      (fun r ->
        let coefs, const = translate r.terms in
        (coefs, r.sense, r.rhs -. const))
      t.rows
  in
  let bound_rows =
    List.rev_map
      (fun (terms, sense, rhs) ->
        let coefs = Hashtbl.create 4 in
        List.iter (fun (c, s) -> Hashtbl.replace coefs s c) terms;
        (coefs, sense, rhs))
      !extra_rows
  in
  let all_rows = user_rows @ bound_rows in
  (* Slack/surplus variables for inequalities. *)
  let slack_of_row =
    List.map
      (fun (_, sense, _) ->
        match sense with
        | Eq -> None
        | Le -> Some (fresh (), 1.0)
        | Ge -> Some (fresh (), -1.0))
      all_rows
  in
  let n_std = !next_std in
  let m = List.length all_rows in
  let a = Matrix.zeros m n_std in
  let b = Array.make m 0.0 in
  List.iteri
    (fun i ((coefs, _, rhs), slack) ->
      Hashtbl.iter (fun s c -> Matrix.set a i s (Matrix.get a i s +. c)) coefs;
      (match slack with Some (s, sign) -> Matrix.set a i s sign | None -> ());
      b.(i) <- rhs)
    (List.combine all_rows slack_of_row);
  let c_std = Array.make n_std 0.0 in
  let obj_coefs, obj_const = translate t.objective in
  Hashtbl.iter (fun s c -> c_std.(s) <- c_std.(s) +. c) obj_coefs;
  let sol = Simplex.solve ?max_iters ~c:c_std ~a ~b () in
  match sol.Simplex.status with
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded
  | Simplex.Pivot_limit -> Pivot_limit
  | Simplex.Optimal ->
    let value v =
      let e = encodings.(v) in
      List.fold_left (fun acc (s, f) -> acc +. (f *. sol.Simplex.x.(s))) e.offset e.parts
    in
    Optimal
      { objective = sol.Simplex.objective +. obj_const +. t.obj_constant; values = value }

let solve ?max_iters t =
  let decls = Array.of_list (List.rev t.vars) in
  let free d = d.lo = neg_infinity && d.hi = infinity in
  if Array.exists free decls then solve_standard ?max_iters t
  else solve_boxed ?max_iters t decls
