(** Dense simplex with bounded variables (Chvátal ch. 8).

    Solves   minimize c·x   subject to   A x {≤,=,≥} b,   l ≤ x ≤ u,

    keeping variable bounds *implicit*: non-basic variables sit at a
    finite bound instead of being forced to 0, and upper bounds never
    become tableau rows.  For the verification LPs built by this
    repository — a few dozen constraint rows over a few hundred
    box-bounded variables — this is one to two orders of magnitude faster
    than the textbook standard-form reduction in {!Simplex}, which must
    add one row per finite upper bound.

    Every variable needs at least one finite bound (no free variables);
    [Lp_problem] falls back to {!Simplex} when that is violated.  Bland's
    rule is used for entering/leaving selection, so the method terminates
    on degenerate instances.  Feasibility is established by a bounded
    phase-1 with one artificial per initially-violated row.

    Beyond the cold [solve], this module supports warm-started
    reoptimization (DESIGN.md §13): {!solve_session} keeps the final
    tableau alive so further objectives over the *same* polytope are
    re-solved from the optimal basis ({!reoptimize}), and
    {!basis_of_session} exports a compact basis snapshot that
    {!solve_warm} can refactorize against a *different but nearby*
    polytope (one ReLU constraint added or flipped), repairing primal
    feasibility with a bounded dual simplex instead of a cold solve. *)

type sense = Le | Ge | Eq

type row = {
  coefs : (int * float) list;  (** sparse (variable, coefficient) *)
  sense : sense;
  rhs : float;
}

type status =
  | Optimal
  | Infeasible
  | Unbounded
  | Pivot_limit
      (** the pivot budget ([max_iters]) was exhausted before the phase
          converged — the solve is inconclusive, not a verdict *)

type solution = {
  status : status;
  objective : float;
  x : float array;   (** structural variables only *)
  iterations : int;
}

val solve :
  ?max_iters:int ->
  c:float array ->
  lo:float array ->
  hi:float array ->
  rows:row list ->
  unit ->
  solution
(** [solve ~c ~lo ~hi ~rows ()].  Raises [Invalid_argument] if array
    lengths differ, some [lo > hi], a variable has two infinite bounds,
    or a row references an unknown variable.  Exceeding [max_iters]
    (default 100_000) pivots yields [{ status = Pivot_limit; _ }]. *)

(** {1 Warm-started solves} *)

type session
(** A solved tableau kept alive for reoptimization: same constraint
    rows and variable bounds, new objectives.  Only [Optimal] solves
    produce sessions. *)

type warm = {
  w_n : int;                    (** structural variables *)
  w_m : int;                    (** constraint rows *)
  w_basis : int array;          (** basic variable per row, length [w_m] *)
  w_status : var_status array;  (** per-variable rest status, length [w_n + w_m] *)
}
(** A compact, tableau-free basis snapshot.  Valid to warm-start any
    problem with the same variable/row layout (same [w_n], [w_m], same
    row senses); coefficients, bounds and objective may differ. *)

and var_status = Basic | At_lower | At_upper

val solve_session :
  ?max_iters:int ->
  c:float array ->
  lo:float array ->
  hi:float array ->
  rows:row list ->
  unit ->
  solution * session option
(** Like {!solve}, additionally returning the live tableau when the
    solve was [Optimal] ([None] otherwise). *)

val reoptimize : ?max_iters:int -> session -> c:float array -> solution
(** Re-solve the session's polytope under a new objective, starting
    primal phase 2 from the current (optimal) basis.  [iterations] in
    the result is cumulative over the session.  Raises
    [Invalid_argument] if [c] has the wrong length. *)

val basis_of_session : session -> warm option
(** Export the session's basis.  [None] when an artificial variable is
    still basic (degenerate phase-1 leftovers) — such bases cannot be
    replayed against an artificial-free warm tableau. *)

type warm_result =
  | Warm_ok of { sol : solution; pivots : int; session : session option }
      (** warm reoptimization converged; [pivots] counts dual + cleanup
          pivots, [session] is available iff [sol.status = Optimal] *)
  | Warm_fallback of string
      (** the basis could not be replayed (shape mismatch, singular or
          dual-infeasible basis, pivot cap) — caller must cold-solve;
          the payload names the reason for telemetry *)

val solve_warm :
  ?max_iters:int ->
  ?pivot_cap:int ->
  from:warm ->
  c:float array ->
  lo:float array ->
  hi:float array ->
  rows:row list ->
  unit ->
  warm_result
(** Re-solve a problem from a parent basis: refactorize the parent's
    basis against the child's rows/bounds, repair dual feasibility by
    bound flips, run a bounded dual simplex (at most [pivot_cap] pivots,
    default 200) to restore primal feasibility, then finish with primal
    phase 2.  Any structural failure degrades to [Warm_fallback] rather
    than raising; the result, when [Warm_ok], is exactly as trustworthy
    as a cold {!solve}. *)
