type sense = Le | Ge | Eq

type row = {
  coefs : (int * float) list;
  sense : sense;
  rhs : float;
}

type status = Optimal | Infeasible | Unbounded | Pivot_limit

type solution = { status : status; objective : float; x : float array; iterations : int }

let eps = 1e-9

type var_status = Basic | At_lower | At_upper

type warm = {
  w_n : int;
  w_m : int;
  w_basis : int array;
  w_status : var_status array;
}

(* Working state.  [tab] is B⁻¹·A kept explicitly (dense, m × total);
   [xb] holds the current values of the basic variables; [z] is the
   reduced-cost row of the current phase, updated by the same pivots. *)
type state = {
  m : int;
  total : int;            (* structural + slacks + artificials *)
  n_real : int;           (* structural + slacks: artificials excluded from entering *)
  tab : float array array;
  basis : int array;
  xb : float array;
  status : var_status array;
  lo : float array;
  hi : float array;
  z : float array;
  mutable iters : int;
}

let bound_value st j =
  match st.status.(j) with
  | At_lower -> st.lo.(j)
  | At_upper -> st.hi.(j)
  | Basic -> invalid_arg "Boxlp: bound_value of basic variable"

let pivot st ~row ~col =
  let t = st.tab in
  let piv = t.(row).(col) in
  let r = t.(row) in
  for j = 0 to st.total - 1 do
    r.(j) <- r.(j) /. piv
  done;
  for i = 0 to st.m - 1 do
    if i <> row then begin
      let f = t.(i).(col) in
      if f <> 0.0 then begin
        let ri = t.(i) in
        for j = 0 to st.total - 1 do
          ri.(j) <- ri.(j) -. (f *. r.(j))
        done
      end
    end
  done;
  let f = st.z.(col) in
  if f <> 0.0 then
    for j = 0 to st.total - 1 do
      st.z.(j) <- st.z.(j) -. (f *. r.(j))
    done

(* One simplex phase on the current [z] row.  Entering variables are
   restricted to indices < [allowed] (phase 2 locks artificials out).
   Bland's rule: smallest eligible entering index; leaving row with the
   tightest ratio, ties by smallest basis index. *)
let run_phase st ~allowed ~max_iters =
  let rec entering j =
    if j >= allowed then None
    else
      match st.status.(j) with
      | At_lower when st.z.(j) < -.eps -> Some (j, 1.0)
      | At_upper when st.z.(j) > eps -> Some (j, -1.0)
      | At_lower | At_upper | Basic -> entering (j + 1)
  in
  let rec loop () =
    st.iters <- st.iters + 1;
    if st.iters > max_iters then `Limit
    else match entering 0 with
    | None -> `Optimal
    | Some (j, dir) ->
      (* The entering variable moves by t ≥ 0 in direction [dir]; basic
         variable i moves by t · delta_i. *)
      let span = st.hi.(j) -. st.lo.(j) in
      let best = ref None in (* (t, row) *)
      for i = 0 to st.m - 1 do
        let delta = -.dir *. st.tab.(i).(j) in
        let bi = st.basis.(i) in
        let limit =
          if delta > eps then (st.hi.(bi) -. st.xb.(i)) /. delta
          else if delta < -.eps then (st.lo.(bi) -. st.xb.(i)) /. delta
          else infinity
        in
        if limit < infinity then begin
          let limit = Float.max 0.0 limit in
          match !best with
          | None -> best := Some (limit, i)
          | Some (t, r) ->
            if limit < t -. eps || (limit < t +. eps && bi < st.basis.(r)) then
              best := Some (limit, i)
        end
      done;
      let t_rows, row = match !best with Some (t, r) -> (t, Some r) | None -> (infinity, None) in
      let t = Float.min span t_rows in
      if t = infinity then `Unbounded
      else if t >= span -. eps && span <= t_rows then begin
        (* bound flip: no basis change *)
        for i = 0 to st.m - 1 do
          st.xb.(i) <- st.xb.(i) +. (t *. -.dir *. st.tab.(i).(j))
        done;
        st.status.(j) <- (match st.status.(j) with At_lower -> At_upper | At_upper -> At_lower | Basic -> Basic);
        loop ()
      end
      else begin
        match row with
        | None -> `Unbounded (* unreachable: t finite implies a limiting row *)
        | Some r ->
          let entering_value = bound_value st j +. (dir *. t) in
          let leaving = st.basis.(r) in
          (* leaving variable stops at whichever of its bounds it hit *)
          let delta_r = -.dir *. st.tab.(r).(j) in
          let leaving_status = if delta_r > 0.0 then At_upper else At_lower in
          for i = 0 to st.m - 1 do
            if i <> r then st.xb.(i) <- st.xb.(i) +. (t *. -.dir *. st.tab.(i).(j))
          done;
          pivot st ~row:r ~col:j;
          st.basis.(r) <- j;
          st.xb.(r) <- entering_value;
          st.status.(j) <- Basic;
          st.status.(leaving) <- leaving_status;
          loop ()
      end
  in
  loop ()

(* Reduced-cost row for objective [c] (length total) under the current
   basis: z = c - c_B^T · tab. *)
let set_costs st c =
  Array.blit c 0 st.z 0 st.total;
  for i = 0 to st.m - 1 do
    let cb = c.(st.basis.(i)) in
    if cb <> 0.0 then begin
      let row = st.tab.(i) in
      for j = 0 to st.total - 1 do
        st.z.(j) <- st.z.(j) -. (cb *. row.(j))
      done
    end
  done

(* Read the structural solution off a (primal-optimal) state. *)
let extract_solution st ~c ~n =
  let x = Array.make n 0.0 in
  for j = 0 to n - 1 do
    x.(j) <-
      (match st.status.(j) with
       | At_lower -> st.lo.(j)
       | At_upper -> st.hi.(j)
       | Basic -> 0.0)
  done;
  for i = 0 to st.m - 1 do
    if st.basis.(i) < n then x.(st.basis.(i)) <- st.xb.(i)
  done;
  let objective = ref 0.0 in
  for j = 0 to n - 1 do
    objective := !objective +. (c.(j) *. x.(j))
  done;
  { status = Optimal; objective = !objective; x; iterations = st.iters }

(* A solved tableau kept alive so further objectives over the same
   polytope restart from the current basis. *)
type session = { st : state; n : int; smax_iters : int }

let solve_session ?(max_iters = 100_000) ~c ~lo ~hi ~rows () =
  let n = Array.length c in
  if Array.length lo <> n || Array.length hi <> n then
    invalid_arg "Boxlp.solve: bound array length mismatch";
  Array.iteri
    (fun j l ->
      if l > hi.(j) then invalid_arg "Boxlp.solve: lo > hi";
      if l = neg_infinity && hi.(j) = infinity then
        invalid_arg "Boxlp.solve: free variable (need one finite bound)")
    lo;
  let rows = Array.of_list rows in
  let m = Array.length rows in
  Array.iter
    (fun r ->
      List.iter
        (fun (j, _) -> if j < 0 || j >= n then invalid_arg "Boxlp.solve: unknown variable")
        r.coefs)
    rows;
  (* columns: structural 0..n-1, slacks n..n+m-1, artificials appended *)
  let n_real = n + m in
  let total = n_real + m (* room for at most one artificial per row *) in
  let tab = Array.make_matrix m total 0.0 in
  let glo = Array.make total 0.0 and ghi = Array.make total 0.0 in
  Array.blit lo 0 glo 0 n;
  Array.blit hi 0 ghi 0 n;
  Array.iteri
    (fun i r ->
      List.iter (fun (j, v) -> tab.(i).(j) <- tab.(i).(j) +. v) r.coefs;
      tab.(i).(n + i) <- 1.0;
      let slo, shi =
        match r.sense with
        | Le -> (0.0, infinity)
        | Ge -> (neg_infinity, 0.0)
        | Eq -> (0.0, 0.0)
      in
      glo.(n + i) <- slo;
      ghi.(n + i) <- shi)
    rows;
  let status = Array.make total At_lower in
  (* structural variables start at a finite bound (prefer lower) *)
  for j = 0 to n - 1 do
    status.(j) <- (if glo.(j) > neg_infinity then At_lower else At_upper)
  done;
  let basis = Array.init m (fun i -> n + i) in
  let xb = Array.make m 0.0 in
  let st = { m; total; n_real; tab; basis; xb; status; lo = glo; hi = ghi; z = Array.make total 0.0; iters = 0 } in
  (* initial basic (slack) values: s_i = b_i - Σ A_ij · xval_j *)
  let structural_value j = match status.(j) with At_upper -> ghi.(j) | At_lower | Basic -> glo.(j) in
  let n_artificials = ref 0 in
  for i = 0 to m - 1 do
    let acc = ref rows.(i).rhs in
    List.iter (fun (j, v) -> acc := !acc -. (v *. structural_value j)) rows.(i).coefs;
    let s = !acc in
    let slo = glo.(n + i) and shi = ghi.(n + i) in
    if s >= slo -. eps && s <= shi +. eps then begin
      st.basis.(i) <- n + i;
      st.status.(n + i) <- Basic;
      st.xb.(i) <- s
    end
    else begin
      (* violated: park the slack at the violated bound and absorb the
         residual into a fresh artificial (always ≥ 0) *)
      let a = n_real + !n_artificials in
      incr n_artificials;
      let excess_high = s > shi in
      let bound = if excess_high then shi else slo in
      st.status.(n + i) <- (if excess_high then At_upper else At_lower);
      let sigma = if excess_high then 1.0 else -1.0 in
      (* The artificial's basis column must be +e_i: the artificial
         enters the equation with coefficient sigma, so scale the whole
         row by sigma to normalise it. *)
      for j = 0 to total - 1 do
        st.tab.(i).(j) <- sigma *. st.tab.(i).(j)
      done;
      st.tab.(i).(a) <- 1.0;
      glo.(a) <- 0.0;
      ghi.(a) <- infinity;
      st.basis.(i) <- a;
      st.status.(a) <- Basic;
      st.xb.(i) <- sigma *. (s -. bound)
    end
  done;
  (* hide unused artificial columns *)
  for a = n_real + !n_artificials to total - 1 do
    glo.(a) <- 0.0;
    ghi.(a) <- 0.0
  done;
  let fail_result status =
    { status; objective = 0.0; x = Array.make n 0.0; iterations = st.iters }
  in
  (* phase 1 *)
  let phase1 =
    if !n_artificials = 0 then `Feasible
    else begin
      let c1 = Array.make total 0.0 in
      for a = n_real to n_real + !n_artificials - 1 do
        c1.(a) <- 1.0
      done;
      set_costs st c1;
      match run_phase st ~allowed:n_real ~max_iters with
      | `Unbounded -> failwith "Boxlp: phase 1 unbounded (cannot happen)"
      | `Limit -> `Limit
      | `Optimal ->
        let resid = ref 0.0 in
        for i = 0 to m - 1 do
          if st.basis.(i) >= n_real then resid := !resid +. st.xb.(i)
        done;
        (* pin artificials so phase 2 cannot move them *)
        for a = n_real to total - 1 do
          glo.(a) <- 0.0;
          ghi.(a) <- 0.0
        done;
        if !resid > 1e-7 then `Infeasible else `Feasible
    end
  in
  match phase1 with
  | `Limit -> (fail_result Pivot_limit, None)
  | `Infeasible -> (fail_result Infeasible, None)
  | `Feasible ->
    let c2 = Array.make total 0.0 in
    Array.blit c 0 c2 0 n;
    set_costs st c2;
    (match run_phase st ~allowed:n_real ~max_iters with
     | `Limit -> (fail_result Pivot_limit, None)
     | `Unbounded -> ({ (fail_result Unbounded) with objective = neg_infinity }, None)
     | `Optimal ->
       (extract_solution st ~c ~n, Some { st; n; smax_iters = max_iters }))

let solve ?max_iters ~c ~lo ~hi ~rows () =
  fst (solve_session ?max_iters ~c ~lo ~hi ~rows ())

let reoptimize ?max_iters ses ~c =
  let st = ses.st in
  if Array.length c <> ses.n then
    invalid_arg "Boxlp.reoptimize: cost length mismatch";
  let budget = Option.value ~default:ses.smax_iters max_iters in
  let c2 = Array.make st.total 0.0 in
  Array.blit c 0 c2 0 ses.n;
  set_costs st c2;
  match run_phase st ~allowed:st.n_real ~max_iters:(st.iters + budget) with
  | `Limit ->
    { status = Pivot_limit; objective = 0.0; x = Array.make ses.n 0.0;
      iterations = st.iters }
  | `Unbounded ->
    { status = Unbounded; objective = neg_infinity; x = Array.make ses.n 0.0;
      iterations = st.iters }
  | `Optimal -> extract_solution st ~c ~n:ses.n

let basis_of_session ses =
  let st = ses.st in
  if Array.exists (fun b -> b >= st.n_real) st.basis then None
  else
    Some
      { w_n = ses.n;
        w_m = st.m;
        w_basis = Array.copy st.basis;
        w_status = Array.sub st.status 0 st.n_real }

type warm_result =
  | Warm_ok of { sol : solution; pivots : int; session : session option }
  | Warm_fallback of string

(* Bounded-variable dual simplex: while some basic variable violates a
   bound, drive it back to the violated bound, entering the column that
   preserves dual feasibility with the smallest reduced-cost ratio.
   Bland-flavoured tie-breaks plus the pivot cap bound the work; the cap
   (not an anti-cycling proof) is the termination guarantee here — on
   [`Cap] the caller cold-solves. *)
let dual_phase st ~pivot_cap =
  let rec loop pivots =
    if pivots >= pivot_cap then `Cap
    else begin
      (* leaving row: largest bound violation, ties by basis index *)
      let r = ref (-1) and worst = ref eps in
      for i = 0 to st.m - 1 do
        let bi = st.basis.(i) in
        let v =
          if st.xb.(i) < st.lo.(bi) then st.lo.(bi) -. st.xb.(i)
          else if st.xb.(i) > st.hi.(bi) then st.xb.(i) -. st.hi.(bi)
          else 0.0
        in
        if
          v > !worst +. eps
          || (v > !worst -. eps && !r >= 0 && v > eps && bi < st.basis.(!r))
        then begin
          worst := v;
          r := i
        end
      done;
      if !r < 0 then `Feasible pivots
      else begin
        let r = !r in
        let bi = st.basis.(r) in
        let below = st.xb.(r) < st.lo.(bi) in
        let target = if below then st.lo.(bi) else st.hi.(bi) in
        (* entering column: dual ratio test, min |z_j / a_rj| over columns
           that can move the leaving variable towards [target] without
           breaking reduced-cost signs *)
        let best = ref (-1) and best_ratio = ref infinity in
        for j = 0 to st.n_real - 1 do
          if st.status.(j) <> Basic && st.hi.(j) -. st.lo.(j) > eps then begin
            let a = st.tab.(r).(j) in
            let eligible =
              match st.status.(j), below with
              | At_lower, true -> a < -.eps
              | At_upper, true -> a > eps
              | At_lower, false -> a > eps
              | At_upper, false -> a < -.eps
              | Basic, _ -> false
            in
            if eligible then begin
              let ratio = Float.abs (st.z.(j) /. a) in
              if ratio < !best_ratio -. eps || (ratio < !best_ratio +. eps && !best >= 0 && j < !best)
              then begin
                best_ratio := ratio;
                best := j
              end
            end
          end
        done;
        if !best < 0 then `Dual_unbounded (* primal infeasible *)
        else begin
          let j = !best in
          let a = st.tab.(r).(j) in
          let d = (st.xb.(r) -. target) /. a in
          let entering_value = bound_value st j +. d in
          let col = Array.init st.m (fun i -> st.tab.(i).(j)) in
          st.iters <- st.iters + 1;
          pivot st ~row:r ~col:j;
          for i = 0 to st.m - 1 do
            if i <> r then st.xb.(i) <- st.xb.(i) -. (col.(i) *. d)
          done;
          st.basis.(r) <- j;
          st.xb.(r) <- entering_value;
          st.status.(j) <- Basic;
          st.status.(bi) <- (if below then At_lower else At_upper);
          loop (pivots + 1)
        end
      end
    end
  in
  loop 0

let solve_warm ?(max_iters = 100_000) ?(pivot_cap = 200) ~from ~c ~lo ~hi
    ~rows () =
  let n = Array.length c in
  let rows = Array.of_list rows in
  let m = Array.length rows in
  let shape_ok =
    from.w_n = n && from.w_m = m
    && Array.length lo = n
    && Array.length hi = n
    && Array.length from.w_basis = m
    && Array.length from.w_status = n + m
  in
  if not shape_ok then Warm_fallback "shape-mismatch"
  else begin
    let bad = ref false in
    Array.iteri
      (fun j l ->
        if l > hi.(j) || (l = neg_infinity && hi.(j) = infinity) then bad := true)
      lo;
    Array.iter
      (fun r ->
        List.iter (fun (j, _) -> if j < 0 || j >= n then bad := true) r.coefs)
      rows;
    Array.iter (fun b -> if b < 0 || b >= n + m then bad := true) from.w_basis;
    (* the status vector must mark exactly the stored basis as Basic —
       a nonbasic variable labelled Basic would silently drop its bound
       contribution from xb and corrupt the replay *)
    if not !bad then begin
      let basic_count = ref 0 in
      Array.iter
        (fun s -> if s = Basic then incr basic_count)
        from.w_status;
      if !basic_count <> m then bad := true;
      Array.iter
        (fun b -> if from.w_status.(b) <> Basic then bad := true)
        from.w_basis
    end;
    if !bad then Warm_fallback "invalid-problem"
    else begin
      let n_real = n + m in
      let total = n_real in
      let tab = Array.make_matrix m total 0.0 in
      let glo = Array.make total 0.0 and ghi = Array.make total 0.0 in
      Array.blit lo 0 glo 0 n;
      Array.blit hi 0 ghi 0 n;
      (* [bcol] tracks B⁻¹·b through the refactorization pivots; [xb] is
         then bcol minus the non-basic bound contributions. *)
      let bcol = Array.make m 0.0 in
      Array.iteri
        (fun i r ->
          List.iter (fun (j, v) -> tab.(i).(j) <- tab.(i).(j) +. v) r.coefs;
          tab.(i).(n + i) <- 1.0;
          let slo, shi =
            match r.sense with
            | Le -> (0.0, infinity)
            | Ge -> (neg_infinity, 0.0)
            | Eq -> (0.0, 0.0)
          in
          (* tighten the slack with the bounds implied by the row over
             the variable box (s = rhs - Σ a_j x_j): a finite box gives
             finite slack bounds, so the dual-feasibility repair below
             can always flip a mis-signed slack instead of giving up *)
          let smin = ref r.rhs and smax = ref r.rhs in
          List.iter
            (fun (j, v) ->
              if v <> 0.0 then begin
                let a = v *. lo.(j) and b = v *. hi.(j) in
                smin := !smin -. Float.max a b;
                smax := !smax -. Float.min a b
              end)
            r.coefs;
          glo.(n + i) <- Float.max slo !smin;
          ghi.(n + i) <- Float.min shi !smax;
          bcol.(i) <- r.rhs)
        rows;
      let status = Array.copy from.w_status in
      let st =
        { m; total; n_real; tab; basis = Array.make m (-1);
          xb = Array.make m 0.0; status; lo = glo; hi = ghi;
          z = Array.make total 0.0; iters = 0 }
      in
      (* Refactorize: Gauss–Jordan the stored basis columns in, choosing
         for each the remaining row with the largest pivot. *)
      let used = Array.make m false in
      let singular = ref false in
      Array.iter
        (fun jb ->
          if not !singular then begin
            let best = ref (-1) and bestv = ref 0.0 in
            for i = 0 to m - 1 do
              if not used.(i) then begin
                let v = Float.abs st.tab.(i).(jb) in
                if v > !bestv then begin
                  bestv := v;
                  best := i
                end
              end
            done;
            if !bestv < 1e-9 then singular := true
            else begin
              let r = !best in
              used.(r) <- true;
              let piv = st.tab.(r).(jb) in
              let col = Array.init m (fun i -> st.tab.(i).(jb)) in
              pivot st ~row:r ~col:jb;
              bcol.(r) <- bcol.(r) /. piv;
              for i = 0 to m - 1 do
                if i <> r && col.(i) <> 0.0 then
                  bcol.(i) <- bcol.(i) -. (col.(i) *. bcol.(r))
              done;
              st.basis.(r) <- jb;
              st.status.(jb) <- Basic
            end
          end)
        from.w_basis;
      if !singular then Warm_fallback "singular-basis"
      else begin
        (* every non-basic variable must rest at a finite bound *)
        let ok = ref true in
        for j = 0 to n_real - 1 do
          if st.status.(j) <> Basic then
            match st.status.(j) with
            | At_lower when glo.(j) = neg_infinity ->
              if ghi.(j) < infinity then st.status.(j) <- At_upper
              else ok := false
            | At_upper when ghi.(j) = infinity ->
              if glo.(j) > neg_infinity then st.status.(j) <- At_lower
              else ok := false
            | _ -> ()
        done;
        if not !ok then Warm_fallback "unbounded-nonbasic"
        else begin
          Array.blit bcol 0 st.xb 0 m;
          for j = 0 to n_real - 1 do
            if st.status.(j) <> Basic then begin
              let v = bound_value st j in
              if v <> 0.0 then
                for i = 0 to m - 1 do
                  st.xb.(i) <- st.xb.(i) -. (st.tab.(i).(j) *. v)
                done
            end
          done;
          let c2 = Array.make total 0.0 in
          Array.blit c 0 c2 0 n;
          set_costs st c2;
          (* repair dual feasibility by flipping mis-signed non-basic
             variables to their opposite bound *)
          let repaired = ref true in
          for j = 0 to n_real - 1 do
            if st.status.(j) <> Basic && st.hi.(j) -. st.lo.(j) > eps then begin
              let flip delta target =
                for i = 0 to m - 1 do
                  st.xb.(i) <- st.xb.(i) -. (st.tab.(i).(j) *. delta)
                done;
                st.status.(j) <- target
              in
              match st.status.(j) with
              | At_lower when st.z.(j) < -.eps ->
                if ghi.(j) < infinity then flip (ghi.(j) -. glo.(j)) At_upper
                else repaired := false
              | At_upper when st.z.(j) > eps ->
                if glo.(j) > neg_infinity then flip (glo.(j) -. ghi.(j)) At_lower
                else repaired := false
              | _ -> ()
            end
          done;
          (* primal phase 2 from the current basis: counts loop entries,
             including the final iteration that only certifies
             optimality — subtract it so a perfect basis round-trip
             reports zero pivots *)
          let finish dual_pivots =
            let iters0 = st.iters in
            match run_phase st ~allowed:n_real ~max_iters with
            | `Limit -> Warm_fallback "pivot-limit"
            | `Unbounded ->
              Warm_ok
                { sol =
                    { status = Unbounded; objective = neg_infinity;
                      x = Array.make n 0.0; iterations = st.iters };
                  pivots = dual_pivots + Stdlib.max 0 (st.iters - iters0 - 1);
                  session = None }
            | `Optimal ->
              let sol = extract_solution st ~c ~n in
              Warm_ok
                { sol;
                  pivots = dual_pivots + Stdlib.max 0 (st.iters - iters0 - 1);
                  session = Some { st; n; smax_iters = max_iters } }
          in
          let primal_feasible () =
            let ok = ref true in
            for i = 0 to m - 1 do
              let bi = st.basis.(i) in
              if st.xb.(i) < st.lo.(bi) -. eps || st.xb.(i) > st.hi.(bi) +. eps
              then ok := false
            done;
            !ok
          in
          if not !repaired then begin
            (* dual feasibility is unrepairable (a mis-signed variable
               whose opposite bound is infinite, typically a Ge/Le
               slack).  The basis is still a valid primal start when xb
               sits within bounds: skip the dual phase and let primal
               phase 2 restore optimality.  Only when primal and dual
               feasibility are both broken must we give up. *)
            if primal_feasible () then finish 0
            else Warm_fallback "dual-infeasible"
          end
          else begin
            match dual_phase st ~pivot_cap with
            | `Cap -> Warm_fallback "pivot-cap"
            | `Dual_unbounded ->
              Warm_ok
                { sol =
                    { status = Infeasible; objective = 0.0;
                      x = Array.make n 0.0; iterations = st.iters };
                  pivots = st.iters;
                  session = None }
            | `Feasible dual_pivots -> finish dual_pivots
          end
        end
      end
    end
  end
