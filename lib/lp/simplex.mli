(** Dense two-phase primal simplex for linear programs in standard form:

      minimize    c·x
      subject to  A x = b,   x ≥ 0.

    This is the in-repo substitute for the commercial solver (GUROBI
    9.1.2) the paper's experiments used — see DESIGN.md §4.  Bland's
    anti-cycling rule is applied throughout, so the method terminates on
    every input at the cost of speed; the verification LPs built by
    [Encoding] are small enough for this to be a non-issue.

    Callers with inequality constraints or bounded variables should go
    through [Lp_problem], which performs the standard-form reduction. *)

type status =
  | Optimal
  | Infeasible
  | Unbounded
  | Pivot_limit
      (** the pivot budget ([max_iters]) ran out before convergence —
          an inconclusive solve, not a verdict *)

type solution = {
  status : status;
  objective : float;     (** meaningful only when [status = Optimal] *)
  x : float array;       (** primal solution, length = #variables *)
  iterations : int;
  basis : int array;
      (** variable basic in each row at termination, length = #rows;
          entries [≥ n] are artificials (only possible on non-[Optimal]
          exits or redundant rows) *)
}

val solve :
  ?max_iters:int ->
  c:float array ->
  a:Abonn_tensor.Matrix.t ->
  b:float array ->
  unit ->
  solution
(** [solve ~c ~a ~b ()] where [a] is [m × n], [b] length [m], [c] length
    [n].  Raises [Invalid_argument] on dimension mismatch; exceeding
    [max_iters] (default [50_000]) pivots yields
    [{ status = Pivot_limit; _ }]. *)

type warm_result =
  | Warm_ok of solution * int
      (** converged from the parent basis; the [int] is the pivot count
          (dual repair + primal cleanup) *)
  | Warm_fallback of string
      (** basis could not be replayed (shape mismatch, artificial or
          singular basis, dual-infeasible start, pivot cap); caller
          must cold-[solve].  Payload names the reason. *)

val solve_warm :
  ?max_iters:int ->
  ?pivot_cap:int ->
  from:int array ->
  c:float array ->
  a:Abonn_tensor.Matrix.t ->
  b:float array ->
  unit ->
  warm_result
(** [solve_warm ~from ~c ~a ~b ()] re-solves a problem of the same shape
    from a previously returned [solution.basis]: the basis is
    refactorized against the (possibly perturbed) [a]/[b], negative
    right-hand sides are repaired by at most [pivot_cap] (default 200)
    dual-simplex pivots, and primal phase 2 finishes the job.  [from]
    must contain structural indices only.  Raises [Invalid_argument] on
    [b]/[c] length mismatch, like {!solve}. *)
