module Matrix = Abonn_tensor.Matrix

type status = Optimal | Infeasible | Unbounded | Pivot_limit

type solution = {
  status : status;
  objective : float;
  x : float array;
  iterations : int;
  basis : int array;
}

let eps = 1e-9

(* Tableau layout: rows 0..m-1 are constraints, columns 0..total-1 are
   variables, column [total] is the right-hand side.  [basis.(r)] is the
   variable basic in row r.  [cost] is the current reduced-cost row and
   [obj] the (negated) objective value, both maintained incrementally by
   pivoting. *)
type tableau = {
  m : int;
  total : int;
  tab : float array array;  (* m rows × (total + 1) *)
  basis : int array;
  cost : float array;       (* length total + 1; last entry = -objective *)
}

let pivot t ~row ~col =
  let width = t.total + 1 in
  let piv = t.tab.(row).(col) in
  let r = t.tab.(row) in
  for j = 0 to width - 1 do
    r.(j) <- r.(j) /. piv
  done;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let factor = t.tab.(i).(col) in
      if Float.abs factor > 0.0 then begin
        let ri = t.tab.(i) in
        for j = 0 to width - 1 do
          ri.(j) <- ri.(j) -. (factor *. r.(j))
        done
      end
    end
  done;
  let factor = t.cost.(col) in
  if Float.abs factor > 0.0 then
    for j = 0 to width - 1 do
      t.cost.(j) <- t.cost.(j) -. (factor *. r.(j))
    done;
  t.basis.(row) <- col

(* Bland's rule: entering = smallest index with negative reduced cost;
   leaving = row minimising the ratio, ties broken by smallest basis
   variable index.  Guarantees termination. *)
let entering t ~allowed =
  let rec loop j =
    if j >= allowed then None else if t.cost.(j) < -.eps then Some j else loop (j + 1)
  in
  loop 0

let leaving t ~col =
  let best = ref None in
  for i = 0 to t.m - 1 do
    let aij = t.tab.(i).(col) in
    if aij > eps then begin
      let ratio = t.tab.(i).(t.total) /. aij in
      match !best with
      | None -> best := Some (i, ratio)
      | Some (bi, bratio) ->
        if ratio < bratio -. eps || (Float.abs (ratio -. bratio) <= eps && t.basis.(i) < t.basis.(bi))
        then best := Some (i, ratio)
    end
  done;
  Option.map fst !best

let run_phase t ~allowed ~max_iters ~iters =
  let rec loop () =
    if !iters > max_iters then `Limit
    else match entering t ~allowed with
    | None -> `Optimal
    | Some col ->
      begin match leaving t ~col with
      | None -> `Unbounded
      | Some row ->
        incr iters;
        pivot t ~row ~col;
        loop ()
      end
  in
  loop ()

let solve ?(max_iters = 50_000) ~c ~(a : Matrix.t) ~b () =
  let m = a.Matrix.rows and n = a.Matrix.cols in
  if Array.length b <> m then invalid_arg "Simplex.solve: b length mismatch";
  if Array.length c <> n then invalid_arg "Simplex.solve: c length mismatch";
  let total = n + m in
  (* Constraint rows with b >= 0 (flip signs as needed) and artificial
     variables n..n+m-1 forming the initial identity basis. *)
  let tab =
    Array.init m (fun i ->
        let row = Array.make (total + 1) 0.0 in
        let flip = if b.(i) < 0.0 then -1.0 else 1.0 in
        for j = 0 to n - 1 do
          row.(j) <- flip *. Matrix.get a i j
        done;
        row.(n + i) <- 1.0;
        row.(total) <- flip *. b.(i);
        row)
  in
  let basis = Array.init m (fun i -> n + i) in
  (* Phase-1 cost: sum of artificials, expressed over the current basis
     (subtract each constraint row once). *)
  let cost = Array.make (total + 1) 0.0 in
  for j = n to total - 1 do
    cost.(j) <- 1.0
  done;
  for i = 0 to m - 1 do
    for j = 0 to total do
      cost.(j) <- cost.(j) -. tab.(i).(j)
    done
  done;
  let t = { m; total; tab; basis; cost } in
  let iters = ref 0 in
  let fail_result status =
    { status; objective = 0.0; x = Array.make n 0.0; iterations = !iters;
      basis = Array.copy t.basis }
  in
  match run_phase t ~allowed:total ~max_iters ~iters with
  | `Unbounded -> failwith "Simplex: phase 1 unbounded (cannot happen)"
  | `Limit -> fail_result Pivot_limit
  | `Optimal ->
  let phase1_obj = -.t.cost.(total) in
  if phase1_obj > 1e-7 then fail_result Infeasible
  else begin
    (* Drive any residual artificial variables out of the basis; rows
       whose coefficients over the structural variables are all zero are
       redundant constraints and may keep a zero-valued artificial. *)
    for i = 0 to m - 1 do
      if t.basis.(i) >= n then begin
        let rec find j =
          if j >= n then None else if Float.abs t.tab.(i).(j) > eps then Some j else find (j + 1)
        in
        match find 0 with
        | Some j -> incr iters; pivot t ~row:i ~col:j
        | None -> ()
      end
    done;
    (* Phase-2 cost row: original objective expressed over the basis. *)
    Array.fill t.cost 0 (total + 1) 0.0;
    for j = 0 to n - 1 do
      t.cost.(j) <- c.(j)
    done;
    for i = 0 to m - 1 do
      let bi = t.basis.(i) in
      if bi < n && Float.abs c.(bi) > 0.0 then begin
        let cb = c.(bi) in
        for j = 0 to total do
          t.cost.(j) <- t.cost.(j) -. (cb *. t.tab.(i).(j))
        done
      end
    done;
    (* Forbid artificial variables from re-entering: restrict entering
       column search to structural variables. *)
    match run_phase t ~allowed:n ~max_iters ~iters with
    | `Limit -> fail_result Pivot_limit
    | `Unbounded -> { (fail_result Unbounded) with objective = neg_infinity }
    | `Optimal ->
      let x = Array.make n 0.0 in
      for i = 0 to m - 1 do
        if t.basis.(i) < n then x.(t.basis.(i)) <- t.tab.(i).(total)
      done;
      let objective = ref 0.0 in
      for j = 0 to n - 1 do
        objective := !objective +. (c.(j) *. x.(j))
      done;
      { status = Optimal; objective = !objective; x; iterations = !iters;
        basis = Array.copy t.basis }
  end

type warm_result = Warm_ok of solution * int | Warm_fallback of string

(* Warm re-solve from a parent basis.  The basis must be purely
   structural (artificial-free): refactorize it against the new
   constraint matrix, then repair any negative right-hand sides with a
   (capped) textbook dual simplex before finishing with primal
   phase 2.  Everything structural degrades to [Warm_fallback]. *)
let solve_warm ?(max_iters = 50_000) ?(pivot_cap = 200) ~from ~c
    ~(a : Matrix.t) ~b () =
  let m = a.Matrix.rows and n = a.Matrix.cols in
  if Array.length b <> m then invalid_arg "Simplex.solve_warm: b length mismatch";
  if Array.length c <> n then invalid_arg "Simplex.solve_warm: c length mismatch";
  if Array.length from <> m || Array.exists (fun j -> j < 0 || j >= n) from
  then Warm_fallback "shape-mismatch"
  else begin
    let tab =
      Array.init m (fun i ->
          let row = Array.make (n + 1) 0.0 in
          for j = 0 to n - 1 do
            row.(j) <- Matrix.get a i j
          done;
          row.(n) <- b.(i);
          row)
    in
    let t =
      { m; total = n; tab; basis = Array.make m (-1);
        cost = Array.make (n + 1) 0.0 }
    in
    (* refactorize the stored basis in, largest remaining pivot first *)
    let used = Array.make m false in
    let singular = ref false in
    Array.iter
      (fun jb ->
        if not !singular then begin
          let best = ref (-1) and bestv = ref 0.0 in
          for i = 0 to m - 1 do
            if not used.(i) then begin
              let v = Float.abs t.tab.(i).(jb) in
              if v > !bestv then begin
                bestv := v;
                best := i
              end
            end
          done;
          if !bestv < 1e-9 then singular := true
          else begin
            used.(!best) <- true;
            pivot t ~row:!best ~col:jb
          end
        end)
      from;
    if !singular then Warm_fallback "singular-basis"
    else begin
      (* reduced costs of [c] over the refactorized basis *)
      Array.fill t.cost 0 (n + 1) 0.0;
      Array.blit c 0 t.cost 0 n;
      for i = 0 to m - 1 do
        let cb = c.(t.basis.(i)) in
        if Float.abs cb > 0.0 then
          for j = 0 to n do
            t.cost.(j) <- t.cost.(j) -. (cb *. t.tab.(i).(j))
          done
      done;
      let dual_feasible =
        let ok = ref true in
        for j = 0 to n - 1 do
          if t.cost.(j) < -.eps then ok := false
        done;
        !ok
      in
      let primal_feasible =
        let ok = ref true in
        for i = 0 to m - 1 do
          if t.tab.(i).(n) < -.eps then ok := false
        done;
        !ok
      in
      let iters = ref 0 in
      let rec dual pivots =
        if pivots >= pivot_cap then `Cap
        else begin
          let r = ref (-1) and worst = ref (-.eps) in
          for i = 0 to m - 1 do
            if t.tab.(i).(n) < !worst then begin
              worst := t.tab.(i).(n);
              r := i
            end
          done;
          if !r < 0 then `Feasible
          else begin
            let r = !r in
            let best = ref (-1) and best_ratio = ref infinity in
            for j = 0 to n - 1 do
              let arj = t.tab.(r).(j) in
              if arj < -.eps then begin
                let ratio = t.cost.(j) /. -.arj in
                if ratio < !best_ratio -. eps then begin
                  best_ratio := ratio;
                  best := j
                end
              end
            done;
            if !best < 0 then `Infeasible
            else begin
              incr iters;
              pivot t ~row:r ~col:!best;
              dual (pivots + 1)
            end
          end
        end
      in
      let repaired =
        if primal_feasible then `Feasible
        else if dual_feasible then dual 0
        else `Dual_infeasible
      in
      match repaired with
      | `Cap -> Warm_fallback "pivot-cap"
      | `Dual_infeasible -> Warm_fallback "dual-infeasible"
      | `Infeasible ->
        Warm_ok
          ( { status = Infeasible; objective = 0.0; x = Array.make n 0.0;
              iterations = !iters; basis = Array.copy t.basis },
            !iters )
      | `Feasible ->
        (match run_phase t ~allowed:n ~max_iters ~iters with
         | `Limit -> Warm_fallback "pivot-limit"
         | `Unbounded ->
           Warm_ok
             ( { status = Unbounded; objective = neg_infinity;
                 x = Array.make n 0.0; iterations = !iters;
                 basis = Array.copy t.basis },
               !iters )
         | `Optimal ->
           let x = Array.make n 0.0 in
           for i = 0 to m - 1 do
             if t.basis.(i) < n then x.(t.basis.(i)) <- t.tab.(i).(n)
           done;
           let objective = ref 0.0 in
           for j = 0 to n - 1 do
             objective := !objective +. (c.(j) *. x.(j))
           done;
           Warm_ok
             ( { status = Optimal; objective = !objective; x;
                 iterations = !iters; basis = Array.copy t.basis },
               !iters ))
    end
  end
