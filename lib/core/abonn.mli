(** ABONN — Adaptive BaB with Order for Neural Network verification.

    Faithful implementation of the paper's Alg. 1: the BaB tree is grown
    MCTS-style, guided by the counterexample potentiality of Def. 1.

    - {b Initialisation}: the root problem gets one AppVer call; a
      positive bound or a validated counterexample concludes immediately.
    - {b Selection}: at an expanded node, the child maximising
      [R(child) + c·sqrt(2·ln |T(node)| / |T(child)|)] (UCB1, Line 13) is
      descended into; proved sub-trees carry reward −∞ and are never
      re-entered.
    - {b Expansion}: at an unexpanded node, the heuristic [H] picks a
      ReLU, both children get AppVer calls, their potentialities become
      their rewards.
    - {b Back-propagation}: rewards are max-combined and sub-tree sizes
      summed along the path back to the root (Lines 20–21) — including
      after recursive selection returns, so the root's reward is the
      exact max over the frontier.
    - {b Termination}: root reward +∞ ⇒ [Falsified]; −∞ ⇒ [Verified];
      exhausted budget ⇒ [Timeout].

    Fully-stabilised leaves (no splittable ReLU, yet an invalidated
    negative bound) are decided exactly with one LP call
    ([Abonn_bab.Exact]), preserving completeness. *)

val verify :
  ?config:Config.t ->
  ?budget:Abonn_util.Budget.t ->
  ?trace:(depth:int -> gamma:Abonn_spec.Split.gamma -> reward:float -> unit) ->
  ?domains:int ->
  Abonn_spec.Problem.t ->
  Abonn_bab.Result.t
(** [trace] is invoked at every node expansion with the new child's
    reward (used by the test suite to observe the exploration order).
    Internally it is an [Abonn_obs] sink over this engine's
    [node_evaluated] events; richer telemetry (selection, backprop,
    exact-leaf and verdict events, counters, timers) is available by
    installing a sink via [Abonn_obs.Obs.install] — see
    [docs/TRACE_SCHEMA.md].

    [domains] defaults to [Abonn_par.Pool.default_domains ()] (the
    [ABONN_DOMAINS] environment variable, else 1).  [domains = 1] is
    the sequential engine, bit-for-bit the historical one.  Because a
    UCB1 descent is inherently sequential, [domains > 1] parallelises
    at the sub-tree level: a breadth-first seed phase grows the tree
    until the frontier holds [2 × domains] undecided nodes, then each
    sub-tree gets an independent MCTS search as a work-stealing pool
    item.  Verdicts of complete runs are unchanged; the exploration
    order (and under the [Uniform_random] ablation the per-sub-tree
    random streams, split per domain) is scheduling-dependent — see
    docs/PARALLELISM.md. *)
