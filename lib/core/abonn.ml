module Budget = Abonn_util.Budget
module Rng = Abonn_util.Rng
module Obs = Abonn_obs.Obs
module Ev = Abonn_obs.Event
module Sink = Abonn_obs.Sink
module Introspect = Abonn_obs.Introspect
module Resource = Abonn_obs.Resource
module Split = Abonn_spec.Split
module Verdict = Abonn_spec.Verdict
module Problem = Abonn_spec.Problem
module Outcome = Abonn_prop.Outcome
module Appver = Abonn_prop.Appver
module Branching = Abonn_bab.Branching
module Result = Abonn_bab.Result
module Exact = Abonn_bab.Exact

type node = {
  gamma : Split.gamma;
  depth : int;
  outcome : Outcome.t;
  state : Abonn_prop.Incremental.t option;
      (* incremental bound state, warm-starting this node's children *)
  mutable reward : float;
  mutable size : int;  (* |T(Γ)|: nodes in the sub-tree rooted here *)
  mutable children : (node * node) option;
}

type search = {
  problem : Problem.t;
  config : Config.t;
  budget : Budget.t;
  choose : Branching.chooser;
  num_relus : int;
  phat_min : float;  (* Def. 1 normaliser: the root's p̂ *)
  rng : Rng.t option;  (* only for the Uniform_random ablation *)
  resource : Resource.t;
  mutable found_cex : float array option;
  mutable nodes_created : int;
  mutable max_depth : int;
}

let potentiality s ~depth ~phat ~valid_cex =
  Potentiality.value ~lambda:s.config.Config.lambda ~num_relus:s.num_relus
    ~phat_min:s.phat_min ~depth ~phat ~valid_cex

(* Evaluate one fresh node: AppVer call (warm-started from the parent's
   incremental state), candidate validation, reward. *)
let eval_node ?parent s gamma depth =
  Budget.record_call s.budget;
  s.nodes_created <- s.nodes_created + 1;
  s.max_depth <- Stdlib.max s.max_depth depth;
  let outcome, state =
    Appver.run_warm s.config.Config.appver ?state:parent s.problem gamma
  in
  let valid_cex =
    match outcome.Outcome.candidate with
    | Some x when Problem.is_counterexample s.problem x ->
      s.found_cex <- Some x;
      true
    | Some _ | None -> false
  in
  let reward = potentiality s ~depth ~phat:outcome.Outcome.phat ~valid_cex in
  if Obs.active () then begin
    Obs.incr "abonn.expand";
    Obs.observe "abonn.depth" (float_of_int depth);
    if Obs.tracing () then
      Obs.emit
        (Ev.Node_evaluated
           { engine = "abonn"; depth; gamma = Split.to_string gamma;
             phat = outcome.Outcome.phat; reward })
  end;
  (* MCTS has no explicit frontier; open_nodes is 0 by convention *)
  Resource.tick s.resource ~open_nodes:0 ~nodes:s.nodes_created
    ~max_depth:s.max_depth;
  { gamma; depth; outcome; state; reward; size = 1; children = None }

(* UCB1 (Alg. 1 Line 13), kept split into its exploitation (mean reward)
   and exploration (confidence radius) terms so introspection can report
   the decomposition without perturbing the scalar the search compares. *)
let explore_term s parent child =
  s.config.Config.c
  *. sqrt (2.0 *. log (float_of_int parent.size) /. float_of_int child.size)

let ucb1 s parent child = child.reward +. explore_term s parent child

let select s parent (plus, minus) =
  let chosen, score =
    match s.rng with
    | Some rng ->
      (* ablation: ignore rewards entirely *)
      let live c = c.reward > neg_infinity in
      let chosen =
        match live plus, live minus with
        | true, true -> if Rng.bool rng then plus else minus
        | true, false -> plus
        | false, true -> minus
        | false, false -> plus (* caller prunes via reward update *)
      in
      (chosen, Float.nan)
    | None ->
      let sp = ucb1 s parent plus and sm = ucb1 s parent minus in
      if sp >= sm then (plus, sp) else (minus, sm)
  in
  if Obs.active () then begin
    Obs.incr "abonn.select";
    if Obs.tracing () then begin
      Obs.emit (Ev.Node_selected { engine = "abonn"; depth = chosen.depth; ucb = score });
      (* Introspection: the full candidate picture behind this descent
         step, right after the node_selected it explains.  The ablation
         has no UCB to decompose, so it stays silent. *)
      if Option.is_none s.rng && Introspect.enabled () then begin
        let smp = Introspect.sample () in
        if smp > 0 then
          Obs.emit
            (Ev.Ucb_decision
               { engine = "abonn"; depth = chosen.depth;
                 chosen = (if chosen == plus then "+" else "-");
                 sample = smp;
                 plus_exploit = plus.reward;
                 plus_explore = explore_term s parent plus;
                 plus_visits = plus.size;
                 minus_exploit = minus.reward;
                 minus_explore = explore_term s parent minus;
                 minus_visits = minus.size })
      end
    end
  end;
  chosen

(* Expansion (Lines 16–19): split on H's ReLU and evaluate both
   children; fully-stabilised leaves are decided exactly instead. *)
let expand s node =
  match
    s.choose ~gamma:node.gamma ~pre_bounds:node.outcome.Outcome.pre_bounds
  with
  | Some ch ->
    let relu = ch.Branching.relu in
    Branching.emit_decision ~engine:"abonn" ~kind:"relu" ~depth:node.depth ch;
    (* both children warm-start from this node's state: the shared
       pre-split bounds are computed once, not re-derived per child *)
    let plus =
      eval_node ?parent:node.state s
        (Split.extend node.gamma ~relu ~phase:Split.Active) (node.depth + 1)
    in
    let minus =
      eval_node ?parent:node.state s
        (Split.extend node.gamma ~relu ~phase:Split.Inactive) (node.depth + 1)
    in
    node.children <- Some (plus, minus)
  | None ->
    Budget.record_call s.budget;
    let resolution = Exact.resolve s.problem node.gamma in
    begin match resolution with
    | `Verified -> node.reward <- neg_infinity
    | `Falsified x ->
      s.found_cex <- Some x;
      node.reward <- infinity
    end;
    if Obs.active () then begin
      Obs.incr "abonn.exact";
      if Obs.tracing () then
        Obs.emit
          (Ev.Exact_leaf
             { engine = "abonn"; depth = node.depth;
               verified = (resolution = `Verified) })
    end

(* One MCTS-BAB descent (Alg. 1 Lines 10–21).  Rewards and sizes are
   refreshed on the way back up so every ancestor sees the new frontier. *)
let rec mcts_bab s node =
  begin match node.children with
  | Some ((plus, minus) as pair) ->
    if Float.max plus.reward minus.reward = neg_infinity then
      (* both sub-trees proved: nothing to descend into *)
      ()
    else mcts_bab s (select s node pair)
  | None -> expand s node
  end;
  match node.children with
  | Some (plus, minus) ->
    node.reward <- Float.max plus.reward minus.reward;
    node.size <- 1 + plus.size + minus.size;
    if Obs.active () then begin
      Obs.incr "abonn.backprop";
      if Obs.tracing () then
        Obs.emit
          (Ev.Backprop
             { engine = "abonn"; depth = node.depth; reward = node.reward;
               size = node.size })
    end
  | None -> ()

(* The legacy [?trace] callback, re-expressed as an observability sink:
   it fires on exactly the [Node_evaluated] events this engine emits, so
   callers observe the same per-node order as before. *)
let trace_sink trace =
  Sink.callback (fun env ->
      match env.Ev.event with
      | Ev.Node_evaluated { depth; gamma; reward; _ } ->
        trace ~depth ~gamma:(Split.of_string gamma) ~reward
      | _ -> ())

let verify_seq ~config ~budget ?trace problem =
  let started = Unix.gettimeofday () in
  let rng = match config.Config.selection with
    | Config.Ucb1 -> None
    | Config.Uniform_random seed -> Some (Rng.create seed)
  in
  (* Initialisation (Lines 1–4): evaluate the root.  The normaliser needs
     the root p̂ before the search record exists, so bootstrap with a
     placeholder and patch it. *)
  let s =
    { problem;
      config;
      budget;
      choose = config.Config.heuristic.Branching.prepare problem;
      num_relus = Stdlib.max 1 (Problem.num_relus problem);
      phat_min = -1.0;
      rng;
      resource = Resource.create ~engine:"abonn" ();
      found_cex = None;
      nodes_created = 0;
      max_depth = 0 }
  in
  let search () =
    let root0 = eval_node s [] 0 in
    let s = { s with phat_min = Float.min root0.outcome.Outcome.phat (-1e-12) } in
    (* Recompute the root reward under the final normaliser. *)
    let root =
      { root0 with
        reward =
          potentiality s ~depth:0 ~phat:root0.outcome.Outcome.phat
            ~valid_cex:(s.found_cex <> None) }
    in
    let finish verdict =
      let wall_time = Unix.gettimeofday () -. started in
      Resource.final s.resource ~open_nodes:0 ~nodes:s.nodes_created
        ~max_depth:s.max_depth;
      if Obs.tracing () then
        Obs.emit
          (Ev.Verdict_reached
             { engine = "abonn"; verdict = Verdict.to_string verdict;
               elapsed = wall_time });
      Result.make ~verdict ~appver_calls:(Budget.calls_used budget)
        ~nodes:s.nodes_created ~max_depth:s.max_depth ~wall_time
    in
    (* Termination (Line 5 / Lines 6–9). *)
    let rec loop () =
      if root.reward = infinity then
        match s.found_cex with
        | Some x -> finish (Verdict.Falsified x)
        | None -> finish Verdict.Timeout (* unreachable: +∞ implies a stored cex *)
      else if root.reward = neg_infinity then finish Verdict.Verified
      else if Budget.exhausted budget then finish Verdict.Timeout
      else begin
        mcts_bab s root;
        loop ()
      end
    in
    loop ()
  in
  match trace with
  | None -> search ()
  | Some t -> Obs.with_sink (trace_sink t) search

(* --- parallel ABONN: seed expansion + per-subtree search portfolio ---

   A UCB1 descent is inherently sequential (each selection depends on
   the rewards the previous iteration back-propagated), so ABONN is
   parallelised at the sub-tree level instead: a short sequential BFS
   seed phase grows the tree until the frontier holds at least
   2 × domains undecided nodes, then each frontier node becomes one
   work-stealing pool item and gets a full, independent MCTS search of
   its sub-tree.  Sub-trees are disjoint and every frontier node
   carries its own incremental bound state, so workers share nothing
   but the (atomic) budget and the stop flag.  See docs/PARALLELISM.md. *)

module Pool = Abonn_par.Pool

let verify_par ~domains ~config ~budget ?trace problem =
  let started = Unix.gettimeofday () in
  let seed_rng_seed =
    match config.Config.selection with
    | Config.Ucb1 -> 0
    | Config.Uniform_random seed -> seed
  in
  let s =
    { problem;
      config;
      budget;
      choose = config.Config.heuristic.Branching.prepare problem;
      num_relus = Stdlib.max 1 (Problem.num_relus problem);
      phat_min = -1.0;
      rng =
        (match config.Config.selection with
         | Config.Ucb1 -> None
         | Config.Uniform_random seed -> Some (Rng.create seed));
      resource = Resource.create ~engine:"abonn" ();
      found_cex = None;
      nodes_created = 0;
      max_depth = 0 }
  in
  let search () =
    let root0 = eval_node s [] 0 in
    let s = { s with phat_min = Float.min root0.outcome.Outcome.phat (-1e-12) } in
    let root =
      { root0 with
        reward =
          potentiality s ~depth:0 ~phat:root0.outcome.Outcome.phat
            ~valid_cex:(s.found_cex <> None) }
    in
    (* merged across the seed phase and every worker sub-search *)
    let nodes_total = Atomic.make 0 and depth_total = Atomic.make 0 in
    let note_depth d =
      let rec go () =
        let cur = Atomic.get depth_total in
        if d > cur && not (Atomic.compare_and_set depth_total cur d) then go ()
      in
      go ()
    in
    let finish verdict =
      Atomic.fetch_and_add nodes_total s.nodes_created |> ignore;
      note_depth s.max_depth;
      let wall_time = Unix.gettimeofday () -. started in
      Resource.final s.resource ~open_nodes:0 ~nodes:(Atomic.get nodes_total)
        ~max_depth:(Atomic.get depth_total);
      if Obs.tracing () then
        Obs.emit
          (Ev.Verdict_reached
             { engine = "abonn"; verdict = Verdict.to_string verdict;
               elapsed = wall_time });
      Result.make ~verdict ~appver_calls:(Budget.calls_used budget)
        ~nodes:(Atomic.get nodes_total) ~max_depth:(Atomic.get depth_total)
        ~wall_time
    in
    (* Seed phase: breadth-first expansion on the calling domain until
       the frontier can feed every worker (≥ 2 sub-trees per domain). *)
    let frontier = Queue.create () in
    let undecided n = n.reward > neg_infinity && n.reward < infinity in
    if undecided root then Queue.add root frontier;
    let target = 2 * domains in
    let rec seed () =
      if s.found_cex <> None then `Cex
      else if Queue.is_empty frontier then `All_proved
      else if Budget.exhausted budget then `Timeout
      else if Queue.length frontier >= target then `Frontier
      else begin
        let node = Queue.pop frontier in
        expand s node;
        (match node.children with
         | Some (plus, minus) ->
           if undecided plus then Queue.add plus frontier;
           if undecided minus then Queue.add minus frontier
         | None -> () (* exact leaf: reward pinned to ±∞ by [expand] *));
        seed ()
      end
    in
    match seed () with
    | `Cex -> finish (Verdict.Falsified (Option.get s.found_cex))
    | `All_proved -> finish Verdict.Verified
    | `Timeout -> finish Verdict.Timeout
    | `Frontier ->
      let found = Atomic.make None and timeout = Atomic.make false in
      let resources =
        Array.init domains (fun _ -> Resource.create ~engine:"abonn" ())
      in
      let work ctx (node : node) =
        if not (Pool.stop_requested ctx) then begin
          let s_w =
            { s with
              choose = config.Config.heuristic.Branching.prepare problem;
              rng =
                (match config.Config.selection with
                 | Config.Ucb1 -> None
                 | Config.Uniform_random _ -> Some (Pool.rng ctx));
              resource = resources.(Pool.id ctx);
              found_cex = None;
              nodes_created = 0;
              max_depth = node.depth }
          in
          let rec sub_loop () =
            if node.reward = infinity then begin
              (match s_w.found_cex with
               | Some x -> ignore (Atomic.compare_and_set found None (Some x))
               | None -> Atomic.set timeout true);
              Pool.request_stop ctx
            end
            else if node.reward = neg_infinity then () (* sub-tree proved *)
            else if Pool.stop_requested ctx then ()
            else if Budget.exhausted budget then begin
              Atomic.set timeout true;
              Pool.request_stop ctx
            end
            else begin
              mcts_bab s_w node;
              sub_loop ()
            end
          in
          sub_loop ();
          Atomic.fetch_and_add nodes_total s_w.nodes_created |> ignore;
          note_depth s_w.max_depth
        end
      in
      let roots = List.of_seq (Queue.to_seq frontier) in
      ignore
        (Pool.run ~domains ~seed:seed_rng_seed ~engine:"abonn" ~roots ~work ());
      (match Atomic.get found with
       | Some x -> finish (Verdict.Falsified x)
       | None ->
         if Atomic.get timeout then finish Verdict.Timeout
         else finish Verdict.Verified)
  in
  match trace with
  | None -> search ()
  | Some t -> Obs.with_sink (trace_sink t) search

let verify ?(config = Config.default) ?budget ?trace ?domains problem =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> 1
    | None -> Pool.default_domains ()
  in
  if domains <= 1 then verify_seq ~config ~budget ?trace problem
  else verify_par ~domains ~config ~budget ?trace problem
