(** Pluggable trace-event consumers.

    A sink receives every {!Event.envelope} emitted while it is installed
    (see {!Obs.install}).  Sinks must be cheap: they run synchronously on
    the verifier hot path whenever tracing is on. *)

type t = {
  emit : Event.envelope -> unit;
  close : unit -> unit;
      (** Flush and release resources.  Idempotent for the built-in
          sinks.  Closing does {e not} uninstall the sink. *)
}

val memory : unit -> t * (unit -> Event.envelope list)
(** In-memory sink for tests: the second component returns every
    envelope received so far, in emission order. *)

val callback : (Event.envelope -> unit) -> t
(** Wrap a plain function (used to re-express legacy trace callbacks as
    sinks).  [close] is a no-op. *)

val jsonl_channel : out_channel -> t
(** Write one JSON line per event to an existing channel.  Flushes on
    every [run_finished], [verdict_reached] and [resource_sample], and
    at least once per second of trace time otherwise, so live tail
    readers ([abonn_trace watch]) never see a truncated final record.
    [close] flushes but leaves the channel open (the caller owns it). *)

val jsonl_file : string -> t
(** Create/truncate [path] and write one JSON line per event, with the
    same eager-flush policy as {!jsonl_channel}; [close] flushes and
    closes the file. *)

val progress : ?out:out_channel -> ?every:float -> unit -> t
(** Single-line live heartbeat for long runs: aggregates the event
    stream into [elapsed, AppVer calls, nodes, max depth, best reward]
    (plus completed harness runs when present) and rewrites one
    [\r]-terminated line on [out] (default [stderr]) at most once per
    [every] seconds (default 2; non-positive values clamp to 0.1) of
    trace time, flushing after each heartbeat.  [close] terminates the
    line with a newline.  Costs one pattern match per event; installs
    like any sink, so runs without it keep the single-branch overhead
    guarantee. *)

(** {1 Flight recorder}

    A bounded in-memory ring that keeps the newest [capacity] events
    plus {e every} run bracket / terminator ([run_started],
    [run_finished], [verdict_reached]) out-of-band, so a hung or killed
    run can be dumped post-mortem.  Emission cost is one pattern match
    and one array store — cheap enough to leave on for every CLI run
    (see DESIGN.md §12). *)

type flight
(** Recorder state, shared between the installed sink and the dumper. *)

val flight : ?capacity:int -> unit -> t * flight
(** A ring-buffer sink holding the newest [capacity] (default 4096)
    non-terminator events.  Install the first component like any sink;
    pass the second to {!flight_events} / {!flight_dump}. *)

val flight_events : flight -> Event.envelope list
(** Snapshot of the recorder contents in emission (seq) order:
    all retained terminators plus the surviving ring window.  Safe to
    call from a signal handler racing the emitter — envelopes are
    immutable, so the worst case is a one-event-stale snapshot. *)

val flight_dump : flight -> string -> unit
(** Write {!flight_events} as JSONL (creating parent directories),
    readable by every [abonn_trace] command.  Overwrites [path]. *)
