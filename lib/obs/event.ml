type t =
  | Run_started of { engine : string; instance : string }
  | Run_finished of {
      engine : string;
      instance : string;
      verdict : string;
      calls : int;
      nodes : int;
      max_depth : int;
      wall : float;
    }
  | Node_selected of { engine : string; depth : int; ucb : float }
  | Node_evaluated of {
      engine : string;
      depth : int;
      gamma : string;
      phat : float;
      reward : float;
    }
  | Backprop of { engine : string; depth : int; reward : float; size : int }
  | Frontier_pop of {
      engine : string;
      depth : int;
      frontier : int;
      priority : float;
    }
  | Exact_leaf of { engine : string; depth : int; verified : bool }
  | Bound_computed of {
      appver : string;
      depth : int;
      phat : float;
      elapsed : float;
    }
  | Bound_reuse of {
      appver : string;
      depth : int;
      from_layer : int;
      layers_skipped : int;
      clamps : int;
    }
  | Lp_solved of { vars : int; rows : int; status : string; elapsed : float }
  | Lp_warm of {
      depth : int;
      rows : int;
      hit : bool;
      pivots : int;
      fallback : string;
      elapsed : float;
    }
  | Attack_tried of { attack : string; success : bool; elapsed : float }
  | Verdict_reached of { engine : string; verdict : string; elapsed : float }
  | Resource_sample of {
      engine : string;
      rss_bytes : int;
      heap_bytes : int;
      minor_words : float;
      major_words : float;
      minor_gcs : int;
      major_gcs : int;
      cpu : float;
      wall : float;
      open_nodes : int;
      nodes : int;
      max_depth : int;
      nps : float;
    }
  | Domain_summary of {
      engine : string;
      domain : int;
      processed : int;
      pushed : int;
      stolen : int;
      idle : int;
    }
  | Ucb_decision of {
      engine : string;
      depth : int;
      chosen : string;
      sample : int;
      plus_exploit : float;
      plus_explore : float;
      plus_visits : int;
      minus_exploit : float;
      minus_explore : float;
      minus_visits : int;
    }
  | Branch_decision of {
      engine : string;
      depth : int;
      kind : string;
      choice : int;
      score : float;
      runner_up : int;
      runner_up_score : float;
      candidates : int;
      sample : int;
    }
  | Frontier_decision of {
      engine : string;
      depth : int;
      priority : float;
      runner_up : float;
      frontier : int;
      sample : int;
    }

type envelope = { seq : int; t : float; domain : int option; event : t }

let name = function
  | Run_started _ -> "run_started"
  | Run_finished _ -> "run_finished"
  | Node_selected _ -> "node_selected"
  | Node_evaluated _ -> "node_evaluated"
  | Backprop _ -> "backprop"
  | Frontier_pop _ -> "frontier_pop"
  | Exact_leaf _ -> "exact_leaf"
  | Bound_computed _ -> "bound_computed"
  | Bound_reuse _ -> "bound_reuse"
  | Lp_solved _ -> "lp_solved"
  | Lp_warm _ -> "lp_warm"
  | Attack_tried _ -> "attack_tried"
  | Verdict_reached _ -> "verdict_reached"
  | Resource_sample _ -> "resource_sample"
  | Domain_summary _ -> "domain_summary"
  | Ucb_decision _ -> "ucb_decision"
  | Branch_decision _ -> "branch_decision"
  | Frontier_decision _ -> "frontier_decision"

(* --- encoding --- *)

(* JSON has no literal for non-finite floats; encode them as strings. *)
let add_float buf v =
  if Float.is_nan v then Buffer.add_string buf "\"nan\""
  else if v = Float.infinity then Buffer.add_string buf "\"inf\""
  else if v = Float.neg_infinity then Buffer.add_string buf "\"-inf\""
  else Buffer.add_string buf (Printf.sprintf "%.17g" v)

let add_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

type field = S of string | I of int | F of float | B of bool

let to_json { seq; t; domain; event } =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "{\"seq\":%d,\"t\":%.6f,\"ev\":" seq t);
  add_string buf (name event);
  (* The envelope domain tag rides right after the discriminator.  A
     [domain_summary] event describes a domain in its own field of the
     same name, so the envelope tag is suppressed there to keep the
     object's keys unique; sequential traces (tag [None]) are
     byte-for-byte what the pre-parallelism encoder produced. *)
  (match (domain, event) with
   | Some _, Domain_summary _ | None, _ -> ()
   | Some d, _ -> Buffer.add_string buf (Printf.sprintf ",\"domain\":%d" d));
  let field (k, v) =
    Buffer.add_char buf ',';
    add_string buf k;
    Buffer.add_char buf ':';
    match v with
    | S s -> add_string buf s
    | I i -> Buffer.add_string buf (string_of_int i)
    | F f -> add_float buf f
    | B b -> Buffer.add_string buf (if b then "true" else "false")
  in
  let fields =
    match event with
    | Run_started { engine; instance } ->
      [ ("engine", S engine); ("instance", S instance) ]
    | Run_finished { engine; instance; verdict; calls; nodes; max_depth; wall } ->
      [ ("engine", S engine); ("instance", S instance); ("verdict", S verdict);
        ("calls", I calls); ("nodes", I nodes); ("max_depth", I max_depth);
        ("wall", F wall) ]
    | Node_selected { engine; depth; ucb } ->
      [ ("engine", S engine); ("depth", I depth); ("ucb", F ucb) ]
    | Node_evaluated { engine; depth; gamma; phat; reward } ->
      [ ("engine", S engine); ("depth", I depth); ("gamma", S gamma);
        ("phat", F phat); ("reward", F reward) ]
    | Backprop { engine; depth; reward; size } ->
      [ ("engine", S engine); ("depth", I depth); ("reward", F reward);
        ("size", I size) ]
    | Frontier_pop { engine; depth; frontier; priority } ->
      [ ("engine", S engine); ("depth", I depth); ("frontier", I frontier);
        ("priority", F priority) ]
    | Exact_leaf { engine; depth; verified } ->
      [ ("engine", S engine); ("depth", I depth); ("verified", B verified) ]
    | Bound_computed { appver; depth; phat; elapsed } ->
      [ ("appver", S appver); ("depth", I depth); ("phat", F phat);
        ("elapsed", F elapsed) ]
    | Bound_reuse { appver; depth; from_layer; layers_skipped; clamps } ->
      [ ("appver", S appver); ("depth", I depth); ("from_layer", I from_layer);
        ("layers_skipped", I layers_skipped); ("clamps", I clamps) ]
    | Lp_solved { vars; rows; status; elapsed } ->
      [ ("vars", I vars); ("rows", I rows); ("status", S status);
        ("elapsed", F elapsed) ]
    | Lp_warm { depth; rows; hit; pivots; fallback; elapsed } ->
      [ ("depth", I depth); ("rows", I rows); ("hit", B hit);
        ("pivots", I pivots); ("fallback", S fallback);
        ("elapsed", F elapsed) ]
    | Attack_tried { attack; success; elapsed } ->
      [ ("attack", S attack); ("success", B success); ("elapsed", F elapsed) ]
    | Verdict_reached { engine; verdict; elapsed } ->
      [ ("engine", S engine); ("verdict", S verdict); ("elapsed", F elapsed) ]
    | Resource_sample
        { engine; rss_bytes; heap_bytes; minor_words; major_words; minor_gcs;
          major_gcs; cpu; wall; open_nodes; nodes; max_depth; nps } ->
      [ ("engine", S engine); ("rss_bytes", I rss_bytes);
        ("heap_bytes", I heap_bytes); ("minor_words", F minor_words);
        ("major_words", F major_words); ("minor_gcs", I minor_gcs);
        ("major_gcs", I major_gcs); ("cpu", F cpu); ("wall", F wall);
        ("open_nodes", I open_nodes); ("nodes", I nodes);
        ("max_depth", I max_depth); ("nps", F nps) ]
    | Domain_summary { engine; domain; processed; pushed; stolen; idle } ->
      [ ("engine", S engine); ("domain", I domain); ("processed", I processed);
        ("pushed", I pushed); ("stolen", I stolen); ("idle", I idle) ]
    | Ucb_decision
        { engine; depth; chosen; sample; plus_exploit; plus_explore;
          plus_visits; minus_exploit; minus_explore; minus_visits } ->
      [ ("engine", S engine); ("depth", I depth); ("chosen", S chosen);
        ("sample", I sample); ("plus_exploit", F plus_exploit);
        ("plus_explore", F plus_explore); ("plus_visits", I plus_visits);
        ("minus_exploit", F minus_exploit); ("minus_explore", F minus_explore);
        ("minus_visits", I minus_visits) ]
    | Branch_decision
        { engine; depth; kind; choice; score; runner_up; runner_up_score;
          candidates; sample } ->
      [ ("engine", S engine); ("depth", I depth); ("kind", S kind);
        ("choice", I choice); ("score", F score); ("runner_up", I runner_up);
        ("runner_up_score", F runner_up_score); ("candidates", I candidates);
        ("sample", I sample) ]
    | Frontier_decision { engine; depth; priority; runner_up; frontier; sample } ->
      [ ("engine", S engine); ("depth", I depth); ("priority", F priority);
        ("runner_up", F runner_up); ("frontier", I frontier);
        ("sample", I sample) ]
  in
  List.iter field fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* --- decoding: a minimal parser for the flat objects we emit --- *)

exception Bad of string

let parse_flat line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then line.[!pos] else raise (Bad "truncated") in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then raise (Bad (Printf.sprintf "expected '%c' at %d" c !pos));
    advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      let c = peek () in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        let e = peek () in
        advance ();
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           if !pos + 4 > n then raise (Bad "truncated \\u escape");
           let hex = String.sub line !pos 4 in
           pos := !pos + 4;
           let code =
             try int_of_string ("0x" ^ hex)
             with _ -> raise (Bad ("bad \\u escape " ^ hex))
           in
           if code > 0xff then raise (Bad "\\u escape above latin-1")
           else Buffer.add_char buf (Char.chr code)
         | c -> raise (Bad (Printf.sprintf "bad escape '\\%c'" c)));
        go ()
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_scalar () =
    skip_ws ();
    match peek () with
    | '"' -> S (parse_string ())
    | 't' ->
      if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
        pos := !pos + 4; B true
      end
      else raise (Bad "bad literal")
    | 'f' ->
      if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
        pos := !pos + 5; B false
      end
      else raise (Bad "bad literal")
    | _ ->
      let start = !pos in
      while
        !pos < n
        && (match line.[!pos] with
            | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
            | _ -> false)
      do
        advance ()
      done;
      if !pos = start then raise (Bad (Printf.sprintf "bad value at %d" start));
      let text = String.sub line start (!pos - start) in
      (match int_of_string_opt text with
       | Some i -> I i
       | None ->
         (match float_of_string_opt text with
          | Some f -> F f
          | None -> raise (Bad ("bad number " ^ text))))
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = '}' then advance ()
  else begin
    let rec members () =
      skip_ws ();
      let key = parse_string () in
      expect ':';
      let v = parse_scalar () in
      fields := (key, v) :: !fields;
      skip_ws ();
      match peek () with
      | ',' -> advance (); members ()
      | '}' -> advance ()
      | c -> raise (Bad (Printf.sprintf "expected ',' or '}', got '%c'" c))
    in
    members ()
  end;
  skip_ws ();
  if !pos <> n then raise (Bad "trailing garbage");
  List.rev !fields

let get fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> raise (Bad ("missing field " ^ k))

let get_string fields k =
  match get fields k with S s -> s | _ -> raise (Bad (k ^ ": expected string"))

let get_int fields k =
  match get fields k with I i -> i | _ -> raise (Bad (k ^ ": expected int"))

let get_bool fields k =
  match get fields k with B b -> b | _ -> raise (Bad (k ^ ": expected bool"))

let get_float fields k =
  match get fields k with
  | F f -> f
  | I i -> float_of_int i
  | S "inf" -> Float.infinity
  | S "-inf" -> Float.neg_infinity
  | S "nan" -> Float.nan
  | _ -> raise (Bad (k ^ ": expected float"))

let of_json line =
  try
    let fields = parse_flat line in
    let s k = get_string fields k
    and i k = get_int fields k
    and f k = get_float fields k
    and b k = get_bool fields k in
    let event =
      match get_string fields "ev" with
      | "run_started" -> Run_started { engine = s "engine"; instance = s "instance" }
      | "run_finished" ->
        Run_finished
          { engine = s "engine"; instance = s "instance"; verdict = s "verdict";
            calls = i "calls"; nodes = i "nodes"; max_depth = i "max_depth";
            wall = f "wall" }
      | "node_selected" ->
        Node_selected { engine = s "engine"; depth = i "depth"; ucb = f "ucb" }
      | "node_evaluated" ->
        Node_evaluated
          { engine = s "engine"; depth = i "depth"; gamma = s "gamma";
            phat = f "phat"; reward = f "reward" }
      | "backprop" ->
        Backprop
          { engine = s "engine"; depth = i "depth"; reward = f "reward";
            size = i "size" }
      | "frontier_pop" ->
        Frontier_pop
          { engine = s "engine"; depth = i "depth"; frontier = i "frontier";
            priority = f "priority" }
      | "exact_leaf" ->
        Exact_leaf { engine = s "engine"; depth = i "depth"; verified = b "verified" }
      | "bound_computed" ->
        Bound_computed
          { appver = s "appver"; depth = i "depth"; phat = f "phat";
            elapsed = f "elapsed" }
      | "bound_reuse" ->
        Bound_reuse
          { appver = s "appver"; depth = i "depth"; from_layer = i "from_layer";
            layers_skipped = i "layers_skipped"; clamps = i "clamps" }
      | "lp_solved" ->
        Lp_solved
          { vars = i "vars"; rows = i "rows"; status = s "status";
            elapsed = f "elapsed" }
      | "lp_warm" ->
        Lp_warm
          { depth = i "depth"; rows = i "rows"; hit = b "hit";
            pivots = i "pivots"; fallback = s "fallback";
            elapsed = f "elapsed" }
      | "attack_tried" ->
        Attack_tried
          { attack = s "attack"; success = b "success"; elapsed = f "elapsed" }
      | "verdict_reached" ->
        Verdict_reached
          { engine = s "engine"; verdict = s "verdict"; elapsed = f "elapsed" }
      | "resource_sample" ->
        Resource_sample
          { engine = s "engine"; rss_bytes = i "rss_bytes";
            heap_bytes = i "heap_bytes"; minor_words = f "minor_words";
            major_words = f "major_words"; minor_gcs = i "minor_gcs";
            major_gcs = i "major_gcs"; cpu = f "cpu"; wall = f "wall";
            open_nodes = i "open_nodes"; nodes = i "nodes";
            max_depth = i "max_depth"; nps = f "nps" }
      | "domain_summary" ->
        Domain_summary
          { engine = s "engine"; domain = i "domain"; processed = i "processed";
            pushed = i "pushed"; stolen = i "stolen"; idle = i "idle" }
      | "ucb_decision" ->
        Ucb_decision
          { engine = s "engine"; depth = i "depth"; chosen = s "chosen";
            sample = i "sample"; plus_exploit = f "plus_exploit";
            plus_explore = f "plus_explore"; plus_visits = i "plus_visits";
            minus_exploit = f "minus_exploit"; minus_explore = f "minus_explore";
            minus_visits = i "minus_visits" }
      | "branch_decision" ->
        Branch_decision
          { engine = s "engine"; depth = i "depth"; kind = s "kind";
            choice = i "choice"; score = f "score"; runner_up = i "runner_up";
            runner_up_score = f "runner_up_score"; candidates = i "candidates";
            sample = i "sample" }
      | "frontier_decision" ->
        Frontier_decision
          { engine = s "engine"; depth = i "depth"; priority = f "priority";
            runner_up = f "runner_up"; frontier = i "frontier";
            sample = i "sample" }
      | other -> raise (Bad ("unknown event " ^ other))
    in
    let domain =
      (* "domain" on a domain_summary line is the event's own field *)
      match event with
      | Domain_summary _ -> None
      | _ ->
        (match List.assoc_opt "domain" fields with
         | Some (I d) -> Some d
         | Some _ | None -> None)
    in
    Ok { seq = get_int fields "seq"; t = get_float fields "t"; domain; event }
  with Bad msg -> Error msg

(* --- equality (nan = nan, for round-trip checks) --- *)

let feq a b = (Float.is_nan a && Float.is_nan b) || a = b

let event_equal a b =
  match a, b with
  | Node_selected x, Node_selected y ->
    x.engine = y.engine && x.depth = y.depth && feq x.ucb y.ucb
  | Node_evaluated x, Node_evaluated y ->
    x.engine = y.engine && x.depth = y.depth && x.gamma = y.gamma
    && feq x.phat y.phat && feq x.reward y.reward
  | Backprop x, Backprop y ->
    x.engine = y.engine && x.depth = y.depth && feq x.reward y.reward
    && x.size = y.size
  | Frontier_pop x, Frontier_pop y ->
    x.engine = y.engine && x.depth = y.depth && x.frontier = y.frontier
    && feq x.priority y.priority
  | Bound_computed x, Bound_computed y ->
    x.appver = y.appver && x.depth = y.depth && feq x.phat y.phat
    && feq x.elapsed y.elapsed
  | Lp_solved x, Lp_solved y ->
    x.vars = y.vars && x.rows = y.rows && x.status = y.status
    && feq x.elapsed y.elapsed
  | Lp_warm x, Lp_warm y ->
    x.depth = y.depth && x.rows = y.rows && x.hit = y.hit
    && x.pivots = y.pivots && x.fallback = y.fallback
    && feq x.elapsed y.elapsed
  | Attack_tried x, Attack_tried y ->
    x.attack = y.attack && x.success = y.success && feq x.elapsed y.elapsed
  | Verdict_reached x, Verdict_reached y ->
    x.engine = y.engine && x.verdict = y.verdict && feq x.elapsed y.elapsed
  | Run_finished x, Run_finished y ->
    x.engine = y.engine && x.instance = y.instance && x.verdict = y.verdict
    && x.calls = y.calls && x.nodes = y.nodes && x.max_depth = y.max_depth
    && feq x.wall y.wall
  | Resource_sample x, Resource_sample y ->
    x.engine = y.engine && x.rss_bytes = y.rss_bytes
    && x.heap_bytes = y.heap_bytes && feq x.minor_words y.minor_words
    && feq x.major_words y.major_words && x.minor_gcs = y.minor_gcs
    && x.major_gcs = y.major_gcs && feq x.cpu y.cpu && feq x.wall y.wall
    && x.open_nodes = y.open_nodes && x.nodes = y.nodes
    && x.max_depth = y.max_depth && feq x.nps y.nps
  | Ucb_decision x, Ucb_decision y ->
    x.engine = y.engine && x.depth = y.depth && x.chosen = y.chosen
    && x.sample = y.sample && feq x.plus_exploit y.plus_exploit
    && feq x.plus_explore y.plus_explore && x.plus_visits = y.plus_visits
    && feq x.minus_exploit y.minus_exploit
    && feq x.minus_explore y.minus_explore && x.minus_visits = y.minus_visits
  | Branch_decision x, Branch_decision y ->
    x.engine = y.engine && x.depth = y.depth && x.kind = y.kind
    && x.choice = y.choice && feq x.score y.score && x.runner_up = y.runner_up
    && feq x.runner_up_score y.runner_up_score
    && x.candidates = y.candidates && x.sample = y.sample
  | Frontier_decision x, Frontier_decision y ->
    x.engine = y.engine && x.depth = y.depth && feq x.priority y.priority
    && feq x.runner_up y.runner_up && x.frontier = y.frontier
    && x.sample = y.sample
  | (Run_started _ | Exact_leaf _ | Bound_reuse _ | Domain_summary _), _ -> a = b
  | _, _ -> false

let equal a b =
  a.seq = b.seq && feq a.t b.t && a.domain = b.domain
  && event_equal a.event b.event

(* --- flat-JSON helpers for other line-oriented consumers (registry, …) --- *)

let parse_fields line =
  try Ok (parse_flat line) with Bad msg -> Error msg

let field_string = function S s -> Some s | I _ | F _ | B _ -> None
let field_int = function I i -> Some i | S _ | F _ | B _ -> None

let field_float = function
  | F f -> Some f
  | I i -> Some (float_of_int i)
  | S "inf" -> Some Float.infinity
  | S "-inf" -> Some Float.neg_infinity
  | S "nan" -> Some Float.nan
  | S _ | B _ -> None

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  add_string buf s;
  Buffer.contents buf
