(** Facade of the observability layer: sink registry, emission and
    metric shorthands.

    Design contract (relied on by every instrumented hot path, see
    DESIGN.md "Observability"): while no sink is installed and
    {!Metrics.enabled} is false, {!active} is [false] and every function
    here returns after a single branch — no allocation, no clock read,
    no string building.  Instrumentation sites therefore follow the
    pattern

    {[
      if Obs.active () then begin
        (* build strings / read clocks only here *)
        Obs.incr "subsystem.thing";
        if Obs.tracing () then Obs.emit (Event.…)
      end
    ]}

    The registry is process-global; [with_sink] scopes an installation
    to one call.  Emission and registry mutation are serialised by an
    internal mutex, so parallel BaB workers ([--domains N > 1]) can
    emit concurrently: sinks observe a gap-free interleaving of
    sequence numbers and never run their callbacks concurrently.  The
    inactive fast path stays lock-free ([active] / [tracing] / [emit]
    with no sinks take a single branch). *)

val tracing : unit -> bool
(** At least one sink is installed. *)

val active : unit -> bool
(** [tracing () || Metrics.enabled ()] — gate for any instrumentation
    work beyond a branch. *)

val install : Sink.t -> unit
(** Append a sink.  Installing the first sink (re)starts the trace
    clock and sequence numbering at 0. *)

val remove : Sink.t -> unit
(** Remove a previously installed sink (physical equality).  Does not
    call [close]. *)

val with_sink : Sink.t -> (unit -> 'a) -> 'a
(** [with_sink s f] installs [s], runs [f], and removes [s] even if [f]
    raises.  [close] is left to the caller. *)

val emit : Event.t -> unit
(** Stamp the event with the next sequence number, the trace-relative
    time and the emitting domain's tag ({!set_domain}), and deliver it
    to every installed sink in installation order.  No-op without
    sinks. *)

val set_domain : int option -> unit
(** Tag (or untag, with [None]) the {e current domain}: every event it
    emits from now on carries this index in the envelope [domain]
    field.  Domain-local — set by the [Abonn_par.Pool] workers around
    each worker's run; sequential code never calls it, so sequential
    traces stay untagged and byte-identical to pre-parallelism output. *)

val current_domain : unit -> int option
(** The current domain's tag, for save/restore around nested scopes. *)

val now : unit -> float
(** Monotonised wall clock in seconds: never goes backwards within the
    process even if the system clock steps. *)

(** {1 Metric shorthands} (no-ops unless metrics are enabled) *)

val incr : ?by:int -> string -> unit
(** Alias of {!Metrics.incr}. *)

val span : string -> float -> unit
(** Alias of {!Metrics.span}. *)

val observe : string -> float -> unit
(** Alias of {!Metrics.observe}. *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f] and records its duration as a span — but only
    when {!active}; otherwise it is a tail call to [f]. *)
