(** Named counters, span timers and log-scale histograms.

    A process-wide registry, off by default: while disabled every
    recording function returns after one branch, so un-observed runs pay
    essentially nothing (the overhead guarantee of [docs/TRACE_SCHEMA.md]).
    Enable with {!set_enabled}, read with {!snapshot}, clear with
    {!reset}.

    Naming convention: dot-separated [subsystem.detail] keys, e.g.
    ["appver.deeppoly"], ["lp.solve"], ["abonn.expand"] — the CLI's
    [--stats] table groups rows by the prefix before the first dot. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val incr : ?by:int -> string -> unit
(** Bump a counter (created at 0 on first use).  No-op while disabled. *)

val span : string -> float -> unit
(** Record one timed span of [d] seconds under a name: accumulates call
    count, total and maximum.  No-op while disabled. *)

val observe : string -> float -> unit
(** Record one sample into a histogram with decade (powers-of-ten)
    buckets spanning [1e-7, 1e3); out-of-range and non-finite samples are
    clamped to the edge buckets.  No-op while disabled. *)

val gauge_set : string -> float -> unit
(** Set a gauge to a level (resident memory, frontier size, …): the
    snapshot keeps its last, minimum and maximum values plus the update
    count — unlike a histogram it is cheap (no buckets) and keeps the
    final level, unlike a counter it can go down.  No-op while
    disabled. *)

val gauge_add : string -> float -> unit
(** Adjust a gauge by a signed delta (created at 0 on first use).
    No-op while disabled. *)

type span_stat = { calls : int; total : float; max : float }

type gauge_stat = {
  last : float;  (** most recent level *)
  lo : float;  (** lowest level seen *)
  hi : float;  (** highest level seen (e.g. peak RSS) *)
  updates : int;
}

type hist_stat = {
  count : int;
  sum : float;
  lo : float;  (** smallest sample *)
  hi : float;  (** largest sample *)
  buckets : (float * int) array;
      (** [(decade lower edge, samples in [edge, 10·edge))], dense. *)
}

type snapshot = {
  counters : (string * int) list;
  spans : (string * span_stat) list;
  gauges : (string * gauge_stat) list;
  hists : (string * hist_stat) list;
}
(** All four lists sorted by name. *)

val snapshot : unit -> snapshot

val quantile : hist_stat -> float -> float
(** [quantile h q] estimates the [q]-quantile ([q] clamped to [0,1]) of
    the samples behind [h] from its decade buckets: the target rank
    [q · count] is located in the cumulative bucket counts and
    interpolated linearly within the bucket's [[edge, 10·edge)] range,
    then clamped to the observed [[lo, hi]].  Exact for quantiles that
    land on bucket boundaries; otherwise accurate to within one decade.
    [nan] for an empty histogram. *)

val reset : unit -> unit
(** Drop every counter, span, gauge and histogram (does not change
    {!enabled}). *)
