(** Typed trace events emitted by the verification stack.

    Every observable action in a run — node evaluations and selections in
    ABONN, frontier pops in the BaB baselines, AppVer bound computations,
    LP solves, attack attempts and engine verdicts — is described by one
    constructor of {!t}.  Events carry only plain strings / ints / floats
    so this library sits at the very bottom of the dependency graph and
    every layer above can emit without cycles.

    The JSONL wire format (one flat JSON object per line, a ["ev"]
    discriminator field, non-finite floats encoded as the strings
    ["inf"] / ["-inf"] / ["nan"]) is documented in [docs/TRACE_SCHEMA.md];
    {!to_json} and {!of_json} are exact inverses for every event. *)

type t =
  | Run_started of { engine : string; instance : string }
      (** An experiment-harness run of [engine] on [instance] begins. *)
  | Run_finished of {
      engine : string;
      instance : string;
      verdict : string;
      calls : int;
      nodes : int;
      max_depth : int;
      wall : float;
    }  (** Harness run completed, with the final statistics. *)
  | Node_selected of { engine : string; depth : int; ucb : float }
      (** MCTS descent chose the child at [depth]; [ucb] is its UCB1
          score ([nan] under the uniform-random ablation). *)
  | Node_evaluated of {
      engine : string;
      depth : int;
      gamma : string;
      phat : float;
      reward : float;
    }  (** A fresh BaB node Γ received an AppVer call; [reward] is its
          Def. 1 potentiality. *)
  | Backprop of { engine : string; depth : int; reward : float; size : int }
      (** Reward/size refresh of an interior node on the way back up. *)
  | Frontier_pop of {
      engine : string;
      depth : int;
      frontier : int;
      priority : float;
    }  (** A baseline engine popped a node; [frontier] is the queue/heap
          size after the pop, [priority] the heap key ([nan] for FIFO). *)
  | Exact_leaf of { engine : string; depth : int; verified : bool }
      (** A fully-stabilised leaf was decided exactly by one LP call. *)
  | Bound_computed of {
      appver : string;
      depth : int;
      phat : float;
      elapsed : float;
    }  (** One approximate-verifier bound computation. *)
  | Bound_reuse of {
      appver : string;
      depth : int;
      from_layer : int;
      layers_skipped : int;
      clamps : int;
    }  (** A warm-started bound computation reused a parent node's
          incremental state: layers [< from_layer] were shared verbatim
          ([layers_skipped] of them) and [clamps] child bounds were
          tightened by intersection with the parent's.  Always emitted
          immediately after the [bound_computed] of the same call. *)
  | Lp_solved of { vars : int; rows : int; status : string; elapsed : float }
      (** One simplex solve ([status] ∈ optimal / infeasible / unbounded /
          pivot_limit). *)
  | Lp_warm of {
      depth : int;  (** BaB depth of the node being bounded *)
      rows : int;  (** property rows resolved by this verifier call *)
      hit : bool;  (** a compatible parent basis was found in the cache *)
      pivots : int;  (** simplex pivots spent across all warm solves *)
      fallback : string;
          (** non-empty when the warm path degraded to a cold solve:
              the [Boxlp.Warm_fallback] reason, or ["no-parent"] *)
      elapsed : float;
    }
      (** One warm-started LP verifier call (DESIGN.md §13).  Annotation
          event: summaries and tree reconstruction ignore it. *)
  | Attack_tried of { attack : string; success : bool; elapsed : float }
      (** One adversarial-attack attempt. *)
  | Verdict_reached of { engine : string; verdict : string; elapsed : float }
      (** An engine terminated with [verdict] after [elapsed] seconds. *)
  | Resource_sample of {
      engine : string;
      rss_bytes : int;  (** resident set size ([Resource.rss_bytes]) *)
      heap_bytes : int;  (** OCaml major-heap size *)
      minor_words : float;  (** [Gc.quick_stat] cumulative minor words *)
      major_words : float;  (** cumulative major words *)
      minor_gcs : int;  (** minor collections so far *)
      major_gcs : int;  (** major collections so far *)
      cpu : float;  (** process CPU seconds since the sampler started *)
      wall : float;  (** wall seconds since the sampler started *)
      open_nodes : int;
          (** frontier size (queue/heap length); [0] for engines with no
              explicit frontier (ABONN's implicit MCTS tree) *)
      nodes : int;  (** BaB nodes materialised so far *)
      max_depth : int;  (** deepest node so far *)
      nps : float;  (** nodes/second over the last sampling window *)
    }
      (** Periodic runtime-resource snapshot from {!Resource}, ticked by
          every engine's node-expansion loop while observability is on. *)
  | Domain_summary of {
      engine : string;
      domain : int;  (** the worker this record describes *)
      processed : int;  (** work items this domain expanded *)
      pushed : int;  (** children this domain scheduled *)
      stolen : int;  (** items this domain stole from siblings *)
      idle : int;  (** steal sweeps that found no work anywhere *)
    }
      (** Per-domain work attribution of a parallel ([--domains N > 1])
          BaB run, emitted once per worker when the pool drains (see
          docs/PARALLELISM.md and schema §2.14). *)
  | Ucb_decision of {
      engine : string;
      depth : int;  (** depth of the chosen child (= its [node_selected]) *)
      chosen : string;  (** ["+"] or ["-"]: which phase child won *)
      sample : int;  (** introspection sampling denominator [n] of 1/n *)
      plus_exploit : float;  (** [+]-child mean reward term of UCB1 *)
      plus_explore : float;  (** [+]-child [c·sqrt(2 ln N / n)] term *)
      plus_visits : int;  (** [+]-child subtree size (visit count) *)
      minus_exploit : float;
      minus_explore : float;
      minus_visits : int;
    }
      (** Introspection ([--introspect]): the full candidate picture of
          one MCTS descent step — both children's UCB1 scores decomposed
          into exploitation/exploration, immediately after the
          [node_selected] it explains.  Not emitted under the
          uniform-random ablation (there is no UCB to decompose). *)
  | Branch_decision of {
      engine : string;
      depth : int;  (** depth of the node being split *)
      kind : string;  (** ["relu"] (neuron index) or ["input"] (dimension) *)
      choice : int;  (** flat index of the chosen split *)
      score : float;  (** heuristic score of the winner *)
      runner_up : int;  (** best rejected candidate; [-1] if none *)
      runner_up_score : float;  (** its score; [nan] if none *)
      candidates : int;  (** number of candidates considered *)
      sample : int;  (** introspection sampling denominator *)
    }
      (** Introspection: one branching-heuristic decision — the winning
          split against the best rejected alternative, for every engine
          that splits (ReLU engines via [lib/bab/branching.ml],
          inputsplit via its dimension scan). *)
  | Frontier_decision of {
      engine : string;
      depth : int;  (** depth of the popped node *)
      priority : float;  (** heap key of the chosen (popped) node *)
      runner_up : float;  (** next-best priority left on the heap; [nan]
                              when the heap emptied *)
      frontier : int;  (** heap size after the pop *)
      sample : int;  (** introspection sampling denominator *)
    }
      (** Introspection: the frontier-priority picture of one best-first
          pop — chosen vs. best-rejected node — immediately after the
          [frontier_pop] it explains.  Sequential best-first only; a
          parallel pool has no global priority order to report. *)

type envelope = { seq : int; t : float; domain : int option; event : t }
(** What sinks receive: the event plus a per-trace sequence number
    (1-based, gap-free), seconds since the first sink was installed,
    and — for events emitted from a worker of a parallel run — the
    emitting domain's index.  [domain] is [None] in sequential runs
    (including [--domains 1]), keeping their JSON byte-identical to the
    pre-parallelism encoder; it is serialized as a ["domain"] field
    right after ["ev"] when present, except on [domain_summary] lines
    where the event's own ["domain"] field already names a domain. *)

val name : t -> string
(** Wire name of the constructor, e.g. ["node_evaluated"] — the value of
    the ["ev"] JSON field. *)

val to_json : envelope -> string
(** One JSON object, no trailing newline. *)

val of_json : string -> (envelope, string) result
(** Parse one line produced by {!to_json}.  [Error msg] on malformed
    input, unknown ["ev"], or missing fields. *)

val equal : envelope -> envelope -> bool
(** Structural equality treating [nan] as equal to [nan] (so JSONL
    round-trips can be checked). *)

(** {1 Flat-JSON helpers}

    The trace wire format is flat JSON objects of scalars; other
    line-oriented consumers in the repo (the run registry) reuse the
    same parser and string escaping instead of growing their own. *)

type field = S of string | I of int | F of float | B of bool

val parse_fields : string -> ((string * field) list, string) result
(** Parse one flat JSON object into its fields, in source order.
    Accepts exactly the scalar conventions of the trace schema
    (strings, ints, floats, bools; no nesting). *)

val field_string : field -> string option
val field_int : field -> int option

val field_float : field -> float option
(** Ints widen to floats; the strings ["inf"]/["-inf"]/["nan"] decode to
    the corresponding non-finite floats (schema §1.2). *)

val json_string : string -> string
(** Quote and escape [s] exactly as the trace encoder does. *)
