type t = {
  emit : Event.envelope -> unit;
  close : unit -> unit;
}

let memory () =
  let events = ref [] in
  ( { emit = (fun env -> events := env :: !events); close = (fun () -> ()) },
    fun () -> List.rev !events )

let callback f = { emit = f; close = (fun () -> ()) }

(* Live tails (abonn_trace watch) read the file while it is still being
   written, so the JSONL sinks flush eagerly: on every run/engine
   terminator and resource heartbeat, plus at least once per second of
   trace time between them — a live reader never waits more than a
   second (or one event) behind the verifier, and never sees a
   truncated final record. *)
let jsonl_emit oc =
  let last_flush = ref 0.0 in
  fun env ->
    output_string oc (Event.to_json env);
    output_char oc '\n';
    match env.Event.event with
    | Event.Run_finished _ | Event.Verdict_reached _ | Event.Resource_sample _
      ->
      last_flush := env.Event.t;
      flush oc
    | _ ->
      if env.Event.t -. !last_flush >= 1.0 then begin
        last_flush := env.Event.t;
        flush oc
      end

let jsonl_channel oc = { emit = jsonl_emit oc; close = (fun () -> flush oc) }

let progress ?(out = stderr) ?(every = 2.0) () =
  (* A non-positive cadence would reprint on every event; clamp to a
     sane minimum instead of spinning the terminal. *)
  let every = if every <= 0.0 then 0.1 else every in
  (* Heartbeat aggregates, updated on every event; a line is (re)printed
     at most once per [every] seconds of trace time, carriage-return
     overwritten in place.  [close] finishes with a newline so the next
     shell prompt starts clean. *)
  let calls = ref 0 and nodes = ref 0 and max_depth = ref 0 in
  let runs = ref 0 and best = ref Float.nan and last_print = ref neg_infinity in
  let started = ref false and dirty = ref false and last_t = ref 0.0 in
  let better v = if Float.is_nan !best || v > !best then best := v in
  let line t =
    let reward =
      if Float.is_nan !best then "-"
      else if !best = Float.infinity then "+inf"
      else if !best = Float.neg_infinity then "-inf"
      else Printf.sprintf "%.4f" !best
    in
    Printf.sprintf "[%8.1fs] calls=%d nodes=%d depth=%d best=%s%s" t !calls !nodes
      !max_depth reward
      (if !runs > 0 then Printf.sprintf " runs=%d" !runs else "")
  in
  let print t =
    started := true;
    dirty := false;
    last_print := t;
    output_char out '\r';
    output_string out (line t);
    flush out
  in
  { emit =
      (fun env ->
        (match env.Event.event with
         | Event.Node_evaluated { depth; reward; _ } ->
           incr nodes;
           incr calls;
           if depth > !max_depth then max_depth := depth;
           better reward
         | Event.Frontier_pop { depth; _ } ->
           incr nodes;
           incr calls;
           if depth > !max_depth then max_depth := depth
         | Event.Exact_leaf { depth; verified; _ } ->
           incr calls;
           if depth > !max_depth then max_depth := depth;
           if not verified then better Float.infinity
         | Event.Run_finished _ -> incr runs
         | _ -> ());
        dirty := true;
        last_t := env.Event.t;
        if env.Event.t -. !last_print >= every then print env.Event.t);
    close =
      (fun () ->
        if !started then begin
          (* events arrived since the last heartbeat: print the final
             aggregate so the line the user is left with is complete *)
          if !dirty then print !last_t;
          output_char out '\n';
          flush out
        end) }

let jsonl_file path =
  let oc = open_out path in
  let closed = ref false in
  { emit = jsonl_emit oc;
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          close_out oc
        end) }

(* --- flight recorder ------------------------------------------------ *)

type flight = {
  capacity : int;
  slots : Event.envelope option array;
  mutable next : int;  (* total ring writes; next mod capacity is the slot *)
  mutable kept : Event.envelope list;  (* terminators, newest first *)
}

(* Run brackets and terminators are what a post-mortem reader needs to
   orient itself (segment boundaries, final verdicts); they are retained
   out-of-band so no amount of chatter between them can evict them. *)
let is_terminator = function
  | Event.Run_started _ | Event.Run_finished _ | Event.Verdict_reached _ -> true
  | _ -> false

let flight ?(capacity = 4096) () =
  let fl =
    { capacity = max 1 capacity;
      slots = Array.make (max 1 capacity) None;
      next = 0;
      kept = [] }
  in
  let emit env =
    if is_terminator env.Event.event then fl.kept <- env :: fl.kept
    else begin
      fl.slots.(fl.next mod fl.capacity) <- Some env;
      fl.next <- fl.next + 1
    end
  in
  ({ emit; close = (fun () -> ()) }, fl)

(* A dump can race the emitting thread (signal handlers fire between
   instructions); each slot holds an immutable envelope pointer, so the
   worst case is one torn-in-time snapshot — never a torn record.  The
   seq sort restores emission order across the wrap point. *)
let flight_events fl =
  let ring = ref [] in
  Array.iter (function Some env -> ring := env :: !ring | None -> ()) fl.slots;
  List.sort
    (fun a b -> compare a.Event.seq b.Event.seq)
    (List.rev_append fl.kept !ring)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let flight_dump fl path =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  List.iter
    (fun env ->
      output_string oc (Event.to_json env);
      output_char oc '\n')
    (flight_events fl);
  close_out oc
