type t = {
  emit : Event.envelope -> unit;
  close : unit -> unit;
}

let memory () =
  let events = ref [] in
  ( { emit = (fun env -> events := env :: !events); close = (fun () -> ()) },
    fun () -> List.rev !events )

let callback f = { emit = f; close = (fun () -> ()) }

let jsonl_channel oc =
  { emit =
      (fun env ->
        output_string oc (Event.to_json env);
        output_char oc '\n');
    close = (fun () -> flush oc) }

let progress ?(out = stderr) ?(every = 2.0) () =
  (* Heartbeat aggregates, updated on every event; a line is (re)printed
     at most once per [every] seconds of trace time, carriage-return
     overwritten in place.  [close] finishes with a newline so the next
     shell prompt starts clean. *)
  let calls = ref 0 and nodes = ref 0 and max_depth = ref 0 in
  let runs = ref 0 and best = ref Float.nan and last_print = ref neg_infinity in
  let started = ref false in
  let better v = if Float.is_nan !best || v > !best then best := v in
  let line t =
    let reward =
      if Float.is_nan !best then "-"
      else if !best = Float.infinity then "+inf"
      else if !best = Float.neg_infinity then "-inf"
      else Printf.sprintf "%.4f" !best
    in
    Printf.sprintf "[%8.1fs] calls=%d nodes=%d depth=%d best=%s%s" t !calls !nodes
      !max_depth reward
      (if !runs > 0 then Printf.sprintf " runs=%d" !runs else "")
  in
  let print t =
    started := true;
    last_print := t;
    output_char out '\r';
    output_string out (line t);
    flush out
  in
  { emit =
      (fun env ->
        (match env.Event.event with
         | Event.Node_evaluated { depth; reward; _ } ->
           incr nodes;
           incr calls;
           if depth > !max_depth then max_depth := depth;
           better reward
         | Event.Frontier_pop { depth; _ } ->
           incr nodes;
           incr calls;
           if depth > !max_depth then max_depth := depth
         | Event.Exact_leaf { depth; verified; _ } ->
           incr calls;
           if depth > !max_depth then max_depth := depth;
           if not verified then better Float.infinity
         | Event.Run_finished _ -> incr runs
         | _ -> ());
        if env.Event.t -. !last_print >= every then print env.Event.t);
    close =
      (fun () ->
        if !started then begin
          output_char out '\n';
          flush out
        end) }

let jsonl_file path =
  let oc = open_out path in
  let closed = ref false in
  { emit =
      (fun env ->
        output_string oc (Event.to_json env);
        output_char oc '\n');
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          close_out oc
        end) }
