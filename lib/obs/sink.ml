type t = {
  emit : Event.envelope -> unit;
  close : unit -> unit;
}

let memory () =
  let events = ref [] in
  ( { emit = (fun env -> events := env :: !events); close = (fun () -> ()) },
    fun () -> List.rev !events )

let callback f = { emit = f; close = (fun () -> ()) }

let jsonl_channel oc =
  { emit =
      (fun env ->
        output_string oc (Event.to_json env);
        output_char oc '\n');
    close = (fun () -> flush oc) }

let jsonl_file path =
  let oc = open_out path in
  let closed = ref false in
  { emit =
      (fun env ->
        output_string oc (Event.to_json env);
        output_char oc '\n');
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          close_out oc
        end) }
