(** Global gate for decision-level introspection events.

    Off by default.  When enabled with a sampling denominator [n]
    (CLI [--introspect 1/n]), engines emit one decision event
    ({!Event.Ucb_decision} / {!Event.Branch_decision} /
    {!Event.Frontier_decision}) for every n-th decision, counted by a
    single process-global atomic — deterministic for sequential runs,
    cheap (one fetch-and-add per skipped decision) always.  Engines
    must gate on {!enabled} first so a disabled run pays exactly one
    atomic load per decision site, and none at all when tracing itself
    is off (the [Obs.tracing] check comes first).  Sampling never
    changes search behaviour: the gate only decides whether an event
    is emitted, never which node is explored. *)

val set : int option -> unit
(** [set (Some n)] enables 1/n sampling ([n >= 1]; non-positive
    disables); [set None] disables.  Resets the decision counter. *)

val rate : unit -> int option
(** Current sampling denominator, [None] when off. *)

val enabled : unit -> bool
(** [rate () <> None], as a single atomic load. *)

val sample : unit -> int
(** Draw one decision: returns the sampling denominator [n] if this
    decision should be recorded (the event's [sample] field), or [0]
    to skip.  Always [0] when disabled. *)

val with_rate : int option -> (unit -> 'a) -> 'a
(** Run [f] with the rate temporarily set (tests); restores the
    previous rate even on exceptions. *)
