(* Time-gated runtime-resource sampler, ticked from the node-expansion
   loop of every BaB engine.  While observability is off a tick is one
   branch; while on but between samples it is one branch plus one float
   compare.  Each due sample reads GC statistics, RSS and CPU time,
   updates the [resource.*] gauges and (when tracing) emits one
   [resource_sample] event. *)

let word_bytes = Sys.word_size / 8

(* Linux exposes resident pages in /proc/self/statm; OCaml's Unix does
   not expose sysconf(_SC_PAGESIZE), and 4 KiB pages are universal on
   the platforms we target. *)
let page_bytes = 4096

let statm_rss () =
  match open_in "/proc/self/statm" with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    (match input_line ic with
     | exception End_of_file -> None
     | line ->
       (* "size resident shared text lib data dt", in pages *)
       (match String.split_on_char ' ' line with
        | _ :: resident :: _ ->
          Option.map (fun p -> p * page_bytes) (int_of_string_opt resident)
        | _ -> None))

let heap_bytes () = (Gc.quick_stat ()).Gc.heap_words * word_bytes

let rss_bytes () =
  match statm_rss () with
  | Some rss -> rss
  | None ->
    (* portable fallback: the OCaml major heap is the dominant resident
       term of this (unmapped-file-free) process *)
    heap_bytes ()

(* Process-wide high-water mark, updated by every sample and by direct
   [peak_rss] probes (bench/registry call it after untraced runs).
   Atomic: parallel workers sample concurrently. *)
let peak = Atomic.make 0

let note_rss () =
  let rss = rss_bytes () in
  let rec raise_to () =
    let cur = Atomic.get peak in
    if rss > cur && not (Atomic.compare_and_set peak cur rss) then raise_to ()
  in
  raise_to ();
  rss

let peak_rss () =
  ignore (note_rss ());
  Atomic.get peak

let cpu_seconds () =
  let t = Unix.times () in
  t.Unix.tms_utime +. t.Unix.tms_stime

type t = {
  engine : string;
  interval : float;
  mutable next_due : float;  (* absolute, on the [Obs.now] clock *)
  started_wall : float;
  started_cpu : float;
  mutable last_t : float;  (* previous sample time, for the nps window *)
  mutable last_nodes : int;
  mutable samples : int;
}

let default_interval = 0.25

let create ?(interval = default_interval) ~engine () =
  let now = Unix.gettimeofday () in
  { engine;
    interval = Float.max 0.0 interval;
    next_due = 0.0;  (* first due tick samples immediately *)
    started_wall = now;
    started_cpu = cpu_seconds ();
    last_t = now;
    last_nodes = 0;
    samples = 0 }

let sample t now ~open_nodes ~nodes ~max_depth =
  t.next_due <- now +. t.interval;
  let rss = note_rss () in
  let gc = Gc.quick_stat () in
  let heap = gc.Gc.heap_words * word_bytes in
  let cpu = cpu_seconds () -. t.started_cpu in
  let wall = now -. t.started_wall in
  let dt = now -. t.last_t in
  let nps =
    if t.samples = 0 || dt <= 0.0 then 0.0
    else float_of_int (nodes - t.last_nodes) /. dt
  in
  t.last_t <- now;
  t.last_nodes <- nodes;
  t.samples <- t.samples + 1;
  Metrics.incr "resource.samples";
  Metrics.gauge_set "resource.rss_bytes" (float_of_int rss);
  Metrics.gauge_set "resource.heap_bytes" (float_of_int heap);
  Metrics.gauge_set "resource.open_nodes" (float_of_int open_nodes);
  if t.samples > 1 then Metrics.gauge_set "resource.nodes_per_sec" nps;
  if Obs.tracing () then
    Obs.emit
      (Event.Resource_sample
         { engine = t.engine; rss_bytes = rss; heap_bytes = heap;
           minor_words = gc.Gc.minor_words; major_words = gc.Gc.major_words;
           minor_gcs = gc.Gc.minor_collections;
           major_gcs = gc.Gc.major_collections; cpu; wall; open_nodes; nodes;
           max_depth; nps })

let tick t ~open_nodes ~nodes ~max_depth =
  if Obs.active () then begin
    let now = Unix.gettimeofday () in
    if now >= t.next_due then sample t now ~open_nodes ~nodes ~max_depth
  end

let final t ~open_nodes ~nodes ~max_depth =
  if Obs.active () then
    sample t (Unix.gettimeofday ()) ~open_nodes ~nodes ~max_depth

let samples t = t.samples
