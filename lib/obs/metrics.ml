let on = ref false

let set_enabled v = on := v
let enabled () = !on

(* Serialises all table mutation: parallel BaB workers record metrics
   concurrently.  The disabled fast path never takes the lock. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counters : (string, int ref) Hashtbl.t = Hashtbl.create 32

type span_acc = { mutable calls : int; mutable total : float; mutable max : float }

let spans : (string, span_acc) Hashtbl.t = Hashtbl.create 32

(* Decade buckets: index i covers [10^(i-7), 10^(i-6)), i ∈ [0, 10). *)
let num_buckets = 10
let min_exp = -7

type hist_acc = {
  mutable count : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
  buckets : int array;
}

let hists : (string, hist_acc) Hashtbl.t = Hashtbl.create 16

type gauge_acc = {
  mutable last : float;
  mutable g_lo : float;
  mutable g_hi : float;
  mutable updates : int;
}

let gauges : (string, gauge_acc) Hashtbl.t = Hashtbl.create 16

let gauge_update name v =
  match Hashtbl.find_opt gauges name with
  | Some g ->
    g.last <- v;
    if v < g.g_lo then g.g_lo <- v;
    if v > g.g_hi then g.g_hi <- v;
    g.updates <- g.updates + 1;
    g
  | None ->
    let g = { last = v; g_lo = v; g_hi = v; updates = 1 } in
    Hashtbl.replace gauges name g;
    g

let gauge_set name v =
  if !on then locked (fun () -> ignore (gauge_update name v))

let gauge_add name d =
  if !on then
    locked (fun () ->
        let base =
          match Hashtbl.find_opt gauges name with Some g -> g.last | None -> 0.0
        in
        ignore (gauge_update name (base +. d)))

let incr ?(by = 1) name =
  if !on then
    locked (fun () ->
        match Hashtbl.find_opt counters name with
        | Some r -> r := !r + by
        | None -> Hashtbl.replace counters name (ref by))

let span name d =
  if !on then
    locked (fun () ->
        match Hashtbl.find_opt spans name with
        | Some a ->
          a.calls <- a.calls + 1;
          a.total <- a.total +. d;
          if d > a.max then a.max <- d
        | None -> Hashtbl.replace spans name { calls = 1; total = d; max = d })

let bucket_of v =
  if Float.is_nan v || v <= 0.0 then 0
  else begin
    let e = int_of_float (Float.floor (Float.log10 v)) - min_exp in
    if e < 0 then 0 else if e >= num_buckets then num_buckets - 1 else e
  end

let observe name v =
  if !on then
    locked @@ fun () ->
    let h =
      match Hashtbl.find_opt hists name with
      | Some h -> h
      | None ->
        let h =
          { count = 0; sum = 0.0; lo = Float.infinity; hi = Float.neg_infinity;
            buckets = Array.make num_buckets 0 }
        in
        Hashtbl.replace hists name h;
        h
    in
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.lo then h.lo <- v;
    if v > h.hi then h.hi <- v;
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1

type span_stat = { calls : int; total : float; max : float }

type gauge_stat = { last : float; lo : float; hi : float; updates : int }

type hist_stat = {
  count : int;
  sum : float;
  lo : float;
  hi : float;
  buckets : (float * int) array;
}

type snapshot = {
  counters : (string * int) list;
  spans : (string * span_stat) list;
  gauges : (string * gauge_stat) list;
  hists : (string * hist_stat) list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  locked @@ fun () ->
  { counters = sorted_bindings counters (fun r -> !r);
    spans =
      sorted_bindings spans (fun a ->
          { calls = a.calls; total = a.total; max = a.max });
    gauges =
      sorted_bindings gauges (fun g ->
          { last = g.last; lo = g.g_lo; hi = g.g_hi; updates = g.updates });
    hists =
      sorted_bindings hists (fun h ->
          { count = h.count; sum = h.sum; lo = h.lo; hi = h.hi;
            buckets =
              Array.mapi
                (fun i n -> (10.0 ** float_of_int (i + min_exp), n))
                h.buckets }) }

let quantile (h : hist_stat) q =
  if h.count = 0 then Float.nan
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let target = q *. float_of_int h.count in
    let clamp v = Float.min h.hi (Float.max h.lo v) in
    let n_buckets = Array.length h.buckets in
    let rec walk i cum =
      if i >= n_buckets then clamp h.hi
      else begin
        let edge, n = h.buckets.(i) in
        let cum' = cum +. float_of_int n in
        if n > 0 && target <= cum' then begin
          (* Interpolate the rank linearly inside this decade bucket. *)
          let frac = (target -. cum) /. float_of_int n in
          clamp (edge +. (frac *. (edge *. 10.0 -. edge)))
        end
        else walk (i + 1) cum'
      end
    in
    walk 0 0.0
  end

let reset () =
  locked (fun () ->
      Hashtbl.reset counters;
      Hashtbl.reset spans;
      Hashtbl.reset gauges;
      Hashtbl.reset hists)
