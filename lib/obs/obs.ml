let sinks : Sink.t list ref = ref []
let seq = ref 0
let epoch = ref 0.0

let last = ref neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let tracing () = !sinks <> []

let active () = tracing () || Metrics.enabled ()

let install s =
  if !sinks = [] then begin
    seq := 0;
    epoch := now ()
  end;
  sinks := !sinks @ [ s ]

let remove s = sinks := List.filter (fun x -> x != s) !sinks

let with_sink s f =
  install s;
  Fun.protect ~finally:(fun () -> remove s) f

let emit event =
  match !sinks with
  | [] -> ()
  | installed ->
    incr seq;
    let env = { Event.seq = !seq; t = now () -. !epoch; event } in
    List.iter (fun s -> s.Sink.emit env) installed

let incr = Metrics.incr
let span = Metrics.span
let observe = Metrics.observe

let time name f =
  if active () then begin
    let t0 = now () in
    let finally () = Metrics.span name (now () -. t0) in
    Fun.protect ~finally f
  end
  else f ()
