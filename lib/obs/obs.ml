let sinks : Sink.t list ref = ref []
let seq = ref 0
let epoch = ref 0.0

let last = ref neg_infinity

(* Serialises registry mutation and emission: with [--domains N > 1]
   several worker domains emit into the same sinks.  The uncontended
   fast path (sequential runs) is one futex-free lock/unlock. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let now () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let tracing () = !sinks <> []

let active () = tracing () || Metrics.enabled ()

let install s =
  locked (fun () ->
      if !sinks = [] then begin
        seq := 0;
        epoch := now ()
      end;
      sinks := !sinks @ [ s ])

let remove s = locked (fun () -> sinks := List.filter (fun x -> x != s) !sinks)

let with_sink s f =
  install s;
  Fun.protect ~finally:(fun () -> remove s) f

(* Which parallel worker this domain is, for envelope tagging.  Stored
   in domain-local state so engines never thread it through: the pool
   sets it once per worker and every event emitted underneath is
   attributed automatically.  [None] (the sequential case, and worker
   domains outside a pool region) leaves envelopes untagged and the
   wire format byte-identical to the pre-parallelism encoder. *)
let domain_key : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let set_domain d = Domain.DLS.set domain_key d
let current_domain () = Domain.DLS.get domain_key

let emit event =
  match !sinks with
  | [] -> ()
  | _ ->
    let domain = current_domain () in
    locked (fun () ->
        match !sinks with
        | [] -> ()
        | installed ->
          incr seq;
          let env =
            { Event.seq = !seq; t = now () -. !epoch; domain; event }
          in
          List.iter (fun s -> s.Sink.emit env) installed)

let incr = Metrics.incr
let span = Metrics.span
let observe = Metrics.observe

let time name f =
  if active () then begin
    let t0 = now () in
    let finally () = Metrics.span name (now () -. t0) in
    Fun.protect ~finally f
  end
  else f ()
