(** Runtime-resource telemetry: a time-gated sampler for the engines'
    node-expansion loops, plus direct RSS probes.

    Each engine creates one sampler per run and calls {!tick} once per
    node expansion.  While {!Obs.active} is false a tick is a single
    branch (the overhead guarantee of [docs/TRACE_SCHEMA.md] §4); while
    active but between samples it adds one clock read and one float
    compare.  A due sample reads [Gc.quick_stat], RSS and process CPU
    time, updates the [resource.*] gauges ({!Metrics.gauge_set}) and —
    when a sink is installed — emits one
    {!Event.Resource_sample} (schema §2.13). *)

type t

val default_interval : float
(** Seconds between samples when [?interval] is omitted (0.25). *)

val create : ?interval:float -> engine:string -> unit -> t
(** Fresh sampler clocked from now; [interval] is clamped to [>= 0]
    ([0] samples on every due tick — used by tests).  The first due
    {!tick} samples immediately. *)

val tick : t -> open_nodes:int -> nodes:int -> max_depth:int -> unit
(** Sample if observability is on and at least [interval] seconds have
    passed since the previous sample; otherwise (almost) free.
    [open_nodes] is the frontier size ([0] for engines with no explicit
    frontier), [nodes]/[max_depth] the engine's running totals. *)

val final : t -> open_nodes:int -> nodes:int -> max_depth:int -> unit
(** Unconditional sample (observability permitting): engines call it
    from their [finish] path so every traced run ends with a fresh
    resource record, whatever the cadence. *)

val samples : t -> int
(** Samples taken so far. *)

val rss_bytes : unit -> int
(** Current resident set size in bytes, from [/proc/self/statm];
    portable fallback is the OCaml major-heap size when procfs is
    unavailable (macOS, BSD). *)

val peak_rss : unit -> int
(** Probe RSS now and return the process-wide high-water mark across
    every probe and sample so far. *)

val heap_bytes : unit -> int
(** OCaml major-heap size in bytes ([Gc.quick_stat ()].heap_words). *)
