(* Global introspection gate with deterministic every-Nth sampling.

   Decision-level events (ucb_decision / branch_decision /
   frontier_decision) can double the event volume of a trace, so they
   sit behind an explicit opt-in with a sampling denominator: a rate of
   [n] keeps every n-th decision, counted by a single global atomic so
   the overhead of a skipped decision is one fetch-and-add.  Rate 0
   (the default) means off; [enabled] is the cheap front gate engines
   check before doing any decomposition work. *)

let rate_a = Atomic.make 0
let counter = Atomic.make 0

let set r =
  let r = match r with Some n when n > 0 -> n | Some _ | None -> 0 in
  Atomic.set rate_a r;
  Atomic.set counter 0

let rate () = match Atomic.get rate_a with 0 -> None | n -> Some n
let enabled () = Atomic.get rate_a > 0

let sample () =
  match Atomic.get rate_a with
  | 0 -> 0
  | n -> if Atomic.fetch_and_add counter 1 mod n = 0 then n else 0

let with_rate r f =
  let saved = rate () in
  set r;
  Fun.protect ~finally:(fun () -> set saved) f
