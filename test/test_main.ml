let () =
  Alcotest.run "abonn"
    (Test_util.suite @ Test_obs.suite @ Test_tensor.suite @ Test_nn.suite @ Test_spec.suite @ Test_prop.suite @ Test_lp.suite @ Test_lp_warm.suite @ Test_bab.suite @ Test_abonn.suite @ Test_attack.suite @ Test_data.suite @ Test_harness.suite @ Test_trace.suite @ Test_crown.suite @ Test_fuzz.suite @ Test_incremental.suite @ Test_par.suite @ Test_introspect.suite @ Test_formats.suite @ Test_campaign.suite @ Test_properties.suite)
