(* Cross-cutting property-based tests (qcheck): round-trips, monotonicity
   laws, feasibility of LP solutions, model-based heap checks.  These
   complement the per-module suites with randomised invariants. *)

module Rng = Abonn_util.Rng
module Stats = Abonn_util.Stats
module Heap = Abonn_util.Heap
module Vector = Abonn_tensor.Vector
module Matrix = Abonn_tensor.Matrix
module Network = Abonn_nn.Network
module Builder = Abonn_nn.Builder
module Serialize = Abonn_nn.Serialize
module Affine = Abonn_nn.Affine
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Problem = Abonn_spec.Problem
module Outcome = Abonn_prop.Outcome
module Deeppoly = Abonn_prop.Deeppoly
module Boxlp = Abonn_lp.Boxlp

let qtest = QCheck_alcotest.to_alcotest

(* --- serialization round-trips preserve the function --- *)

let prop_serialize_roundtrip =
  QCheck.Test.make ~name:"serialize round-trip preserves the function" ~count:30
    QCheck.(triple (int_range 0 10_000) (int_range 1 6) (int_range 1 6))
    (fun (seed, h1, h2) ->
      let rng = Rng.create seed in
      let net = Builder.mlp rng ~dims:[ 3; h1; h2; 2 ] in
      let net' = Serialize.of_string (Serialize.to_string net) in
      let probe = Rng.create (seed + 1) in
      let ok = ref true in
      for _ = 1 to 10 do
        let x = Array.init 3 (fun _ -> Rng.range probe (-2.0) 2.0) in
        if not (Vector.approx_equal ~tol:1e-12 (Network.forward net x) (Network.forward net' x))
        then ok := false
      done;
      !ok)

(* --- affine compilation is semantics-preserving on random shapes --- *)

let prop_affine_compilation_preserves_function =
  QCheck.Test.make ~name:"affine compilation preserves semantics" ~count:30
    QCheck.(triple (int_range 0 10_000) (int_range 1 5) (int_range 1 5))
    (fun (seed, h1, h2) ->
      let rng = Rng.create seed in
      let net = Builder.mlp rng ~dims:[ 2; h1; h2; 3 ] in
      let affine = Affine.of_network net in
      let probe = Rng.create (seed + 7) in
      let ok = ref true in
      for _ = 1 to 10 do
        let x = Array.init 2 (fun _ -> Rng.range probe (-2.0) 2.0) in
        if not (Vector.approx_equal ~tol:1e-9 (Network.forward net x) (Affine.forward affine x))
        then ok := false
      done;
      !ok)

(* --- DeepPoly p̂ is antitone in the radius (min over a superset) --- *)

let prop_deeppoly_antitone_in_eps =
  QCheck.Test.make ~name:"deeppoly phat antitone in eps" ~count:30
    QCheck.(pair (int_range 0 5_000) (float_bound_inclusive 0.2))
    (fun (seed, eps1) ->
      let eps1 = Float.max 1e-4 eps1 in
      let eps2 = eps1 *. 1.7 in
      let rng = Rng.create seed in
      let net = Builder.mlp rng ~dims:[ 3; 6; 2 ] in
      let center = Array.init 3 (fun _ -> Rng.range rng (-0.5) 0.5) in
      let label = Network.predict net center in
      let property = Property.robustness ~num_classes:2 ~label in
      let phat eps =
        let region = Region.linf_ball ~center ~eps () in
        let problem = Problem.create ~network:net ~region ~property () in
        (Deeppoly.run problem []).Outcome.phat
      in
      phat eps2 <= phat eps1 +. 1e-9)

(* --- region laws --- *)

let prop_region_clamp_idempotent_and_inside =
  QCheck.Test.make ~name:"region clamp is idempotent and lands inside" ~count:100
    QCheck.(pair (int_range 0 10_000) (list_of_size (QCheck.Gen.return 3) (float_bound_inclusive 4.0)))
    (fun (seed, xs) ->
      let rng = Rng.create seed in
      let lower = Array.init 3 (fun _ -> Rng.range rng (-1.0) 0.0) in
      let upper = Array.init 3 (fun i -> lower.(i) +. Rng.range rng 0.0 2.0) in
      let region = Region.create ~lower ~upper in
      let x = Array.of_list (List.map (fun v -> v -. 2.0) xs) in
      let c = Region.clamp region x in
      Region.contains region c && Region.clamp region c = c)

(* --- stats laws --- *)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_bound_inclusive 100.0))
    (fun xs ->
      let arr = Array.of_list xs in
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 100.0 ] in
      let vals = List.map (Stats.percentile arr) ps in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && sorted rest
        | [ _ ] | [] -> true
      in
      sorted vals)

let prop_box_plot_ordered =
  QCheck.Test.make ~name:"box plot five numbers are ordered" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 2 30) (float_bound_inclusive 50.0))
    (fun xs ->
      let b = Stats.box_plot (Array.of_list xs) in
      b.Stats.whisker_lo <= b.Stats.q1 +. 1e-9
      && b.Stats.q1 <= b.Stats.med +. 1e-9
      && b.Stats.med <= b.Stats.q3 +. 1e-9
      && b.Stats.q3 <= b.Stats.whisker_hi +. 1e-9)

(* --- heap model check against sorting --- *)

let prop_heap_model =
  QCheck.Test.make ~name:"heap interleaved push/pop matches sorted model" ~count:100
    QCheck.(list (pair bool (float_bound_inclusive 100.0)))
    (fun ops ->
      let h = Heap.create () in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (is_pop, key) ->
          if is_pop then begin
            let expected =
              match List.sort compare !model with
              | [] -> None
              | k :: rest ->
                model := rest;
                Some k
            in
            match Heap.pop h, expected with
            | None, None -> ()
            | Some (k, ()), Some k' -> if Float.abs (k -. k') > 1e-12 then ok := false
            | Some _, None | None, Some _ -> ok := false
          end
          else begin
            Heap.push h key ();
            model := key :: !model
          end)
        ops;
      !ok)

(* --- LP solutions are primal feasible --- *)

let prop_boxlp_solution_feasible =
  QCheck.Test.make ~name:"boxlp optimal solutions are feasible" ~count:150
    (QCheck.int_range 0 100_000) (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 4 in
      let m = 1 + Rng.int rng 4 in
      let lo = Array.init n (fun _ -> Rng.range rng (-2.0) 0.0) in
      let hi = Array.init n (fun i -> lo.(i) +. Rng.range rng 0.0 3.0) in
      let c = Array.init n (fun _ -> Rng.range rng (-1.0) 1.0) in
      let rows =
        List.init m (fun _ ->
            let coefs = List.init n (fun j -> (j, Rng.range rng (-1.0) 1.0)) in
            let sense =
              match Rng.int rng 3 with 0 -> Boxlp.Le | 1 -> Boxlp.Ge | _ -> Boxlp.Eq
            in
            { Boxlp.coefs; sense; rhs = Rng.range rng (-1.0) 1.0 })
      in
      let sol = Boxlp.solve ~c ~lo ~hi ~rows () in
      match sol.Boxlp.status with
      | Boxlp.Infeasible | Boxlp.Unbounded | Boxlp.Pivot_limit -> true
      | Boxlp.Optimal ->
        let x = sol.Boxlp.x in
        let tol = 1e-6 in
        let bounds_ok = ref true in
        Array.iteri
          (fun j v -> if v < lo.(j) -. tol || v > hi.(j) +. tol then bounds_ok := false)
          x;
        let rows_ok =
          List.for_all
            (fun (r : Boxlp.row) ->
              let lhs = List.fold_left (fun a (j, v) -> a +. (v *. x.(j))) 0.0 r.Boxlp.coefs in
              match r.Boxlp.sense with
              | Boxlp.Le -> lhs <= r.Boxlp.rhs +. tol
              | Boxlp.Ge -> lhs >= r.Boxlp.rhs -. tol
              | Boxlp.Eq -> Float.abs (lhs -. r.Boxlp.rhs) <= tol)
            rows
        in
        !bounds_ok && rows_ok)

(* --- conv materialisation on random geometry --- *)

let prop_conv_matrix_equivalence =
  QCheck.Test.make ~name:"conv materialisation equals direct forward" ~count:30
    QCheck.(quad (int_range 0 10_000) (int_range 1 2) (int_range 2 3) (int_range 0 1))
    (fun (seed, channels, kernel, padding) ->
      let rng = Rng.create seed in
      let conv =
        Abonn_nn.Conv.create rng ~in_channels:channels ~in_h:5 ~in_w:5 ~out_channels:2
          ~kernel ~stride:1 ~padding
      in
      let w, b = Abonn_nn.Conv.to_matrix conv in
      let probe = Rng.create (seed + 3) in
      let x =
        Array.init (Abonn_nn.Conv.input_dim conv) (fun _ -> Rng.range probe (-1.0) 1.0)
      in
      Vector.approx_equal ~tol:1e-9
        (Abonn_nn.Conv.forward conv x)
        (Vector.add (Matrix.mv w x) b))

let suite =
  [ ( "properties",
      [ qtest prop_serialize_roundtrip;
        qtest prop_affine_compilation_preserves_function;
        qtest prop_deeppoly_antitone_in_eps;
        qtest prop_region_clamp_idempotent_and_inside;
        qtest prop_percentile_monotone;
        qtest prop_box_plot_ordered;
        qtest prop_heap_model;
        qtest prop_boxlp_solution_feasible;
        qtest prop_conv_matrix_equivalence
      ] )
  ]
