(* Direct unit tests for the αβ-CROWN-style engine (lib/crown):
   soundness of verdicts against sampled outputs, bound monotonicity
   under split refinement, and exact agreement with DeepPoly on
   pure-linear networks. *)

module Rng = Abonn_util.Rng
module Budget = Abonn_util.Budget
module Vector = Abonn_tensor.Vector
module Matrix = Abonn_tensor.Matrix
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Split = Abonn_spec.Split
module Verdict = Abonn_spec.Verdict
module Problem = Abonn_spec.Problem
module Network = Abonn_nn.Network
module Affine = Abonn_nn.Affine
module Builder = Abonn_nn.Builder
module Outcome = Abonn_prop.Outcome
module Deeppoly = Abonn_prop.Deeppoly
module Alphabeta = Abonn_crown.Alphabeta

let tol = 1e-6

let random_problem ?(seed = 0) ?(dims = [ 2; 5; 2 ]) ?(eps = 0.25) () =
  let rng = Rng.create seed in
  let net = Builder.mlp rng ~dims in
  let in_dim = List.hd dims in
  let center = Array.init in_dim (fun _ -> Rng.range rng (-0.5) 0.5) in
  let region = Region.linf_ball ~center ~eps () in
  let out_dim = List.nth dims (List.length dims - 1) in
  let label = Network.predict net center in
  let property = Property.robustness ~num_classes:out_dim ~label in
  Problem.create ~network:net ~region ~property ()

let sampled_min_margin ?(samples = 300) problem =
  let rng = Rng.create 7 in
  let worst = ref Float.infinity in
  for _ = 1 to samples do
    let x = Region.sample rng problem.Problem.region in
    let m = Problem.concrete_margin problem x in
    if m < !worst then worst := m
  done;
  !worst

(* Verified ⟹ no sampled point violates; Falsified ⟹ the witness is a
   genuine counterexample inside the region. *)
let test_alphabeta_sound_vs_sampling () =
  for seed = 0 to 14 do
    let eps = 0.05 +. (0.1 *. float_of_int (seed mod 5)) in
    let problem = random_problem ~seed ~eps () in
    let r = Alphabeta.verify ~budget:(Budget.of_calls 400) problem in
    match r.Abonn_bab.Result.verdict with
    | Verdict.Verified ->
      let worst = sampled_min_margin problem in
      if worst < -.tol then
        Alcotest.failf "seed %d: Verified but sampled margin %.9g" seed worst
    | Verdict.Falsified x ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: witness validates" seed)
        true (Problem.is_counterexample problem x)
    | Verdict.Timeout -> ()
  done

(* Split refinement and monotonicity.  Interval propagation is
   inclusion-isotone, so folding a phase clamp into a child node can
   only tighten its certified bound: min over the two phase children ≥
   the parent bound.  One-pass CROWN back-substitution does NOT have
   this property — an Active child replaces the ReLU by the identity
   but still concretises over the full input box, losing the ẑ ≥ 0
   side of the split (the information β-CROWN's β multipliers encode) —
   so for DeepPoly the test instead pins per-cell soundness: every
   child bound stays below the sampled margins of its own cell. *)
let test_bound_monotone_under_splits () =
  for seed = 0 to 9 do
    let problem = random_problem ~seed ~dims:[ 2; 6; 2 ] ~eps:0.35 () in
    let phat gamma =
      let o = Abonn_prop.Interval.run problem gamma in
      if o.Outcome.infeasible then Float.infinity else o.Outcome.phat
    in
    let parent = phat [] in
    let k = Problem.num_relus problem in
    for relu = 0 to k - 1 do
      let child phase = phat [ { Split.relu; phase } ] in
      let refined = Float.min (child Split.Active) (child Split.Inactive) in
      if refined < parent -. 1e-9 then
        Alcotest.failf "seed %d relu %d: split loosened interval bound %.12g -> %.12g"
          seed relu parent refined
    done;
    (* second-level refinement keeps refining *)
    if k >= 2 then begin
      let parent1 = phat [ { Split.relu = 0; phase = Split.Active } ] in
      let grand phase =
        phat [ { Split.relu = 0; phase = Split.Active }; { Split.relu = 1; phase } ]
      in
      let refined = Float.min (grand Split.Active) (grand Split.Inactive) in
      if refined < parent1 -. 1e-9 then
        Alcotest.failf "seed %d: depth-2 split loosened interval bound %.12g -> %.12g"
          seed parent1 refined
    end
  done

let test_split_bounds_sound_per_cell () =
  for seed = 0 to 9 do
    let problem = random_problem ~seed ~dims:[ 2; 6; 2 ] ~eps:0.35 () in
    let affine = problem.Problem.affine in
    let rng = Rng.create (50 + seed) in
    let k = Problem.num_relus problem in
    for relu = 0 to min 2 (k - 1) do
      List.iter
        (fun phase ->
          let gamma = [ { Split.relu; phase } ] in
          let o = Deeppoly.run problem gamma in
          if not o.Outcome.infeasible then
            (* sample the region, keep the points inside this phase cell *)
            for _ = 1 to 200 do
              let x = Region.sample rng problem.Problem.region in
              let pre = Affine.pre_activations affine x in
              let layer, idx = Affine.relu_position affine relu in
              let in_cell =
                match phase with
                | Split.Active -> pre.(layer).(idx) >= 0.0
                | Split.Inactive -> pre.(layer).(idx) <= 0.0
              in
              if in_cell then begin
                let m = Problem.concrete_margin problem x in
                if o.Outcome.phat > m +. tol then
                  Alcotest.failf
                    "seed %d relu %d: cell bound %.9g above cell margin %.9g" seed relu
                    o.Outcome.phat m
              end
            done)
        [ Split.Active; Split.Inactive ]
    done
  done

(* On a network with no ReLU the CROWN relaxation is exact: its root
   bound equals the true box minimum of the margin, and the engine's
   verdict matches that bound's sign. *)
let test_linear_agrees_with_deeppoly () =
  for seed = 0 to 19 do
    let rng = Rng.create (1000 + seed) in
    let w = Matrix.init 2 3 (fun _ _ -> Rng.range rng (-1.0) 1.0) in
    let b = [| Rng.range rng (-0.3) 0.3; Rng.range rng (-0.3) 0.3 |] in
    let affine = Affine.of_weights [ (w, b) ] in
    let center = Array.init 3 (fun _ -> Rng.range rng (-0.5) 0.5) in
    let region = Region.linf_ball ~center ~eps:(Rng.range rng 0.05 0.4) () in
    let property = Property.targeted ~num_classes:2 ~label:0 ~target:1 in
    let problem = Problem.of_affine ~affine ~region ~property () in
    (* exact box minimum of the (linear) margin, coordinate-wise *)
    let crow = Matrix.row property.Property.c 0 in
    let coefs = Matrix.tmv w crow in
    let exact_min =
      let acc = ref (Vector.dot crow b +. property.Property.d.(0)) in
      Array.iteri
        (fun j a ->
          acc :=
            !acc
            +. (if a > 0.0 then a *. region.Region.lower.(j)
                else a *. region.Region.upper.(j)))
        coefs;
      !acc
    in
    let o = Deeppoly.run problem [] in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "seed %d: deeppoly exact on linear" seed)
      exact_min o.Outcome.phat;
    let r = Alphabeta.verify ~budget:(Budget.of_calls 50) problem in
    (match r.Abonn_bab.Result.verdict with
     | Verdict.Verified ->
       Alcotest.(check bool)
         (Printf.sprintf "seed %d: Verified iff margin positive" seed)
         true
         (exact_min > -.tol)
     | Verdict.Falsified x ->
       Alcotest.(check bool)
         (Printf.sprintf "seed %d: Falsified iff margin non-positive" seed)
         true
         (exact_min <= tol && Problem.is_counterexample problem x)
     | Verdict.Timeout ->
       Alcotest.failf "seed %d: linear problem timed out" seed)
  done

(* The attack warm start must never flip a verifiable instance: on
   problems BFS proves, αβ-CROWN must prove too (same AppVer, and
   attacks cannot produce spurious counterexamples). *)
let test_alphabeta_agrees_with_bfs_on_verified () =
  let checked = ref 0 in
  for seed = 0 to 19 do
    let problem = random_problem ~seed ~eps:0.08 () in
    let budget () = Budget.of_calls 400 in
    match (Abonn_bab.Bfs.verify ~budget:(budget ()) problem).Abonn_bab.Result.verdict with
    | Verdict.Verified ->
      incr checked;
      (match (Alphabeta.verify ~budget:(budget ()) problem).Abonn_bab.Result.verdict with
       | Verdict.Verified | Verdict.Timeout -> ()
       | Verdict.Falsified x ->
         (* only a genuine tie may disagree with a Verified BFS *)
         let m = Problem.concrete_margin problem x in
         if m < -.tol then
           Alcotest.failf "seed %d: ab-crown falsified a verified problem (margin %.9g)"
             seed m)
    | Verdict.Falsified _ | Verdict.Timeout -> ()
  done;
  Alcotest.(check bool) "exercised at least one verified instance" true (!checked > 0)

let suite =
  [ ( "crown",
      [ Alcotest.test_case "alphabeta sound vs sampling" `Quick
          test_alphabeta_sound_vs_sampling;
        Alcotest.test_case "bounds monotone under split refinement" `Quick
          test_bound_monotone_under_splits;
        Alcotest.test_case "split bounds sound per cell" `Quick
          test_split_bounds_sound_per_cell;
        Alcotest.test_case "exact on linear networks" `Quick
          test_linear_agrees_with_deeppoly;
        Alcotest.test_case "agrees with bfs on verified instances" `Quick
          test_alphabeta_agrees_with_bfs_on_verified
      ] )
  ]
