(* Fuzzing subsystem tests: committed-corpus replay, generator
   determinism, shrinking, and repro round-trips (lib/check). *)

module Rng = Abonn_util.Rng
module Vector = Abonn_tensor.Vector
module Network = Abonn_nn.Network
module Problem = Abonn_spec.Problem
module Problem_file = Abonn_spec.Problem_file
module Gen = Abonn_check.Gen
module Oracle = Abonn_check.Oracle
module Shrink = Abonn_check.Shrink
module Finding = Abonn_check.Finding
module Campaign = Abonn_check.Campaign

let corpus_dir = "fixtures/fuzz"
let manifest = Filename.concat corpus_dir "corpus.txt"

let read_manifest () =
  let ic = open_in manifest in
  let rec go acc =
    match input_line ic with
    | line ->
      let entry =
        match String.split_on_char ' ' (String.trim line) with
        | [ file; family; seed ] -> (
          match Oracle.family_of_string family with
          | Some f -> (file, f, int_of_string seed)
          | None -> Alcotest.failf "corpus.txt: unknown family %S" family)
        | _ -> Alcotest.failf "corpus.txt: malformed line %S" line
      in
      go (entry :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* Every committed fixture must replay through its oracle family and
   pass: the corpus pins today's cross-engine/bound/certificate
   behaviour on minimized real cases. *)
let test_corpus_replays () =
  let entries = read_manifest () in
  Alcotest.(check bool) "corpus covers every oracle family" true
    (List.for_all
       (fun family -> List.exists (fun (_, f, _) -> f = family) entries)
       Oracle.all_families);
  Alcotest.(check bool) "at least 5 fixtures" true (List.length entries >= 5);
  List.iter
    (fun (file, family, seed) ->
      let path = Filename.concat corpus_dir file in
      match Campaign.replay_file ~seed ~family path with
      | Oracle.Pass -> ()
      | Oracle.Fail f ->
        Alcotest.failf "%s: %s failed %s: %s" file (Oracle.family_name family)
          f.Oracle.check f.Oracle.detail)
    (read_manifest ())

(* Same campaign seed and index → byte-identical case: descriptions
   match and the networks agree on a probe input. *)
let test_generator_deterministic () =
  for index = 0 to 19 do
    let a = Gen.case ~seed:99 ~index and b = Gen.case ~seed:99 ~index in
    Alcotest.(check string) "descr" a.Gen.descr b.Gen.descr;
    Alcotest.(check int) "seed" a.Gen.seed b.Gen.seed;
    let region = a.Gen.problem.Problem.region in
    let x = Abonn_spec.Region.center region in
    let ya = Network.forward a.Gen.problem.Problem.network x in
    let yb = Network.forward b.Gen.problem.Problem.network x in
    Alcotest.(check bool) "same outputs" true (Vector.approx_equal ya yb)
  done;
  (* distinct indices give distinct cases (no accidental seed reuse) *)
  let s0 = Gen.case_seed ~seed:99 ~index:0 and s1 = Gen.case_seed ~seed:99 ~index:1 in
  Alcotest.(check bool) "case seeds differ" true (s0 <> s1)

(* Greedy shrinking under a synthetic predicate converges to a minimal
   problem that still satisfies the predicate. *)
let test_shrink_converges () =
  let case = Gen.case ~seed:4242 ~index:0 in
  let failing p = Problem.num_relus p >= 1 in
  let minimized = Shrink.minimize ~failing case.Gen.problem in
  Alcotest.(check bool) "still failing" true (failing minimized);
  (* the structural floor is one neuron per hidden layer *)
  let hidden_layers =
    Array.length minimized.Problem.affine.Abonn_nn.Affine.weights - 1
  in
  Alcotest.(check int) "one relu per hidden layer" hidden_layers
    (Problem.num_relus minimized);
  Alcotest.(check bool) "no larger than the original" true
    (Problem.num_relus minimized <= Problem.num_relus case.Gen.problem)

(* A shrink candidate list never proposes the problem itself, so the
   minimizer cannot loop. *)
let test_shrink_strictly_smaller () =
  let case = Gen.case ~seed:7 ~index:3 in
  let size (p : Problem.t) =
    Problem.num_relus p
    + Abonn_spec.Property.num_constraints p.Problem.property
    + int_of_float (1e6 *. Vector.max_elt (Abonn_spec.Region.radius p.Problem.region))
  in
  List.iter
    (fun c -> Alcotest.(check bool) "candidate smaller" true (size c < size case.Gen.problem))
    (Shrink.candidates case.Gen.problem)

(* Serialize → reload → identical network behaviour and margins: the
   guarantee findings rely on for replayability. *)
let test_roundtrip () =
  let case = Gen.case ~seed:11 ~index:5 in
  let dir = Filename.temp_file "abonn-fuzz-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let problem_path = Filename.concat dir "case.problem" in
  let network_path = Filename.concat dir "case.net" in
  Problem_file.save case.Gen.problem ~network_path problem_path;
  let reloaded = Problem_file.load problem_path in
  let rng = Rng.create 5 in
  for _ = 1 to 20 do
    let x = Abonn_spec.Region.sample rng case.Gen.problem.Problem.region in
    let m0 = Problem.concrete_margin case.Gen.problem x in
    let m1 = Problem.concrete_margin reloaded x in
    Alcotest.(check (float 0.0)) "margin round-trips exactly" m0 m1
  done;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

(* Finding JSONL lines follow the trace wire conventions: parseable
   key-value object with the fuzz_finding discriminator and escaped
   strings. *)
let test_finding_json () =
  let f =
    { Finding.case_index = 3; case_seed = 42; family = Oracle.Bounds;
      check = "bounds.phat-unsound"; detail = "quote \" and\nnewline";
      descr = "mlp[2;2]"; relus = 2; relus_minimized = Some 1;
      repro = Some "/tmp/x.problem"; roundtrip_ok = Some true }
  in
  let contains_sub hay needle =
    let n = String.length needle and h = String.length hay in
    let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
    at 0
  in
  let json = Finding.to_json f in
  Alcotest.(check bool) "has discriminator" true
    (contains_sub json "\"ev\":\"fuzz_finding\"");
  Alcotest.(check bool) "escapes quotes" true
    (contains_sub json "quote \\\" and\\nnewline");
  Alcotest.(check bool) "single line" true (not (String.contains json '\n'))

(* A tiny end-to-end campaign on the PR path: a handful of cases across
   every family must come back clean. *)
let test_small_campaign_clean () =
  let cfg = { Campaign.default with Campaign.seed = 13; cases = 8 } in
  let outcome = Campaign.run cfg in
  Alcotest.(check int) "cases" 8 outcome.Campaign.cases_run;
  Alcotest.(check int) "checks" (8 * List.length Oracle.all_families)
    outcome.Campaign.checks_run;
  (match outcome.Campaign.findings with
   | [] -> ()
   | f :: _ ->
     Alcotest.failf "unexpected finding: %s"
       (Format.asprintf "%a" Finding.pp f))

let suite =
  [ ( "fuzz",
      [ Alcotest.test_case "committed corpus replays clean" `Quick test_corpus_replays;
        Alcotest.test_case "generator is deterministic" `Quick test_generator_deterministic;
        Alcotest.test_case "shrinking converges to minimal" `Quick test_shrink_converges;
        Alcotest.test_case "shrink candidates strictly smaller" `Quick
          test_shrink_strictly_smaller;
        Alcotest.test_case "problem files round-trip margins" `Quick test_roundtrip;
        Alcotest.test_case "finding JSONL format" `Quick test_finding_json;
        Alcotest.test_case "small campaign finds nothing" `Quick test_small_campaign_clean
      ] )
  ]
