(* Tests for Abonn_trace: streaming reader with malformed-line recovery
   and envelope validation, BaB-tree reconstruction, phase attribution,
   anytime curves, per-run summaries and trace diff — against a
   hand-written golden fixture with known shape and totals, and against
   fresh engine runs (the summary must reproduce the engine's own
   statistics exactly). *)

module Rng = Abonn_util.Rng
module Budget = Abonn_util.Budget
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Verdict = Abonn_spec.Verdict
module Problem = Abonn_spec.Problem
module Network = Abonn_nn.Network
module Builder = Abonn_nn.Builder
module Result = Abonn_bab.Result
module Event = Abonn_obs.Event
module Sink = Abonn_obs.Sink
module Obs = Abonn_obs.Obs
module Reader = Abonn_trace.Reader
module Tree = Abonn_trace.Tree
module Phases = Abonn_trace.Phases
module Curve = Abonn_trace.Curve
module Summary = Abonn_trace.Summary
module Diff = Abonn_trace.Diff

let check_float = Alcotest.(check (float 1e-9))

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let count ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i acc =
    if i + n > m then acc
    else go (i + 1) (if String.sub s i n = affix then acc + 1 else acc)
  in
  if n = 0 then 0 else go 0 0

let check_contains what affix s =
  Alcotest.(check bool) what true (contains ~affix s)

let golden = "fixtures/golden.jsonl"
let golden_cached = "fixtures/golden_cached.jsonl"
let malformed = "fixtures/malformed.jsonl"

let read_clean path =
  let events, issues = Reader.read_file path in
  Alcotest.(check (list string)) (path ^ " has no issues") []
    (List.map Reader.issue_to_string issues);
  events

(* --- reader --- *)

let test_reader_golden () =
  let events = read_clean golden in
  Alcotest.(check int) "all events" 18 (List.length events);
  let seqs = List.map (fun e -> e.Event.seq) events in
  Alcotest.(check (list int)) "seqs in order" (List.init 18 (fun i -> i + 1)) seqs

let test_reader_recovery () =
  let events, issues = Reader.read_file malformed in
  Alcotest.(check int) "good events survive" 5 (List.length events);
  let malformed_lines =
    List.filter_map
      (function Reader.Malformed { line; _ } -> Some line | _ -> None)
      issues
  in
  Alcotest.(check (list int)) "malformed lines" [ 3; 4 ] malformed_lines;
  (match
     List.find_opt (function Reader.Seq_gap _ -> true | _ -> false) issues
   with
   | Some (Reader.Seq_gap { line; expected; got }) ->
     Alcotest.(check int) "gap line" 5 line;
     Alcotest.(check int) "gap expected" 3 expected;
     Alcotest.(check int) "gap got" 5 got
   | _ -> Alcotest.fail "no seq gap reported");
  match
    List.find_opt (function Reader.Time_regression _ -> true | _ -> false) issues
  with
  | Some (Reader.Time_regression { line; _ }) ->
    Alcotest.(check int) "regression line" 6 line
  | _ -> Alcotest.fail "no time regression reported"

(* The cached golden trace is a real best-first run with the incremental
   bound cache on (dims [2;6;2], seed 0, 200-call budget): every
   non-root bound computation carries a bound_reuse annotation. *)
let test_reader_golden_cached () =
  let events = read_clean golden_cached in
  Alcotest.(check int) "all events" 109 (List.length events);
  let reuses =
    List.filter
      (fun e -> match e.Event.event with Event.Bound_reuse _ -> true | _ -> false)
      events
  in
  Alcotest.(check int) "bound_reuse events" 30 (List.length reuses);
  List.iter
    (fun e ->
      match e.Event.event with
      | Event.Bound_reuse r ->
        Alcotest.(check string) "appver" "deeppoly" r.appver;
        Alcotest.(check int) "layers_skipped mirrors from_layer" r.from_layer
          r.layers_skipped
      | _ -> ())
    reuses

let test_reader_missing_file () =
  match Reader.read_file "fixtures/does_not_exist.jsonl" with
  | exception Sys_error _ -> ()
  | _ -> Alcotest.fail "expected Sys_error"

(* --- tree --- *)

let test_tree_golden_shape () =
  let t = Tree.build (read_clean golden) in
  let s = t.Tree.shape in
  Alcotest.(check int) "nodes" 5 s.Tree.nodes;
  Alcotest.(check int) "max depth" 2 s.Tree.max_depth;
  Alcotest.(check (array int)) "depth histogram" [| 1; 2; 2 |] s.Tree.depth_counts;
  Alcotest.(check int) "interior" 2 s.Tree.interior;
  Alcotest.(check int) "proved leaves" 1 s.Tree.leaves_proved;
  Alcotest.(check int) "cex leaves" 1 s.Tree.leaves_cex;
  Alcotest.(check int) "open leaves" 1 s.Tree.leaves_open;
  Alcotest.(check int) "orphans" 0 s.Tree.orphans;
  match t.Tree.root with
  | None -> Alcotest.fail "no root"
  | Some root ->
    Alcotest.(check string) "root gamma" Tree.root_gamma root.Tree.gamma;
    Alcotest.(check int) "root children" 2 (List.length root.Tree.children);
    let first = List.hd root.Tree.children in
    Alcotest.(check string) "first child in eval order" "r1+" first.Tree.gamma;
    Alcotest.(check int) "grandchildren" 2 (List.length first.Tree.children)

let test_tree_renderings () =
  let t = Tree.build (read_clean golden) in
  let root = Option.get t.Tree.root in
  let ascii = Tree.render_ascii root in
  List.iter
    (fun token -> check_contains (token ^ " in ascii") token ascii)
    [ "r1+"; "r1-"; "r2+"; "r2-" ];
  let dot = Tree.render_dot root in
  check_contains "digraph" "digraph" dot;
  check_contains "cex colored" "salmon" dot;
  check_contains "proved colored" "palegreen" dot;
  (* 5 nodes, 4 edges *)
  Alcotest.(check int) "edges" 4 (count ~affix:" -> " dot)

let test_tree_truncation () =
  let t = Tree.build (read_clean golden) in
  let root = Option.get t.Tree.root in
  let ascii = Tree.render_ascii ~max_nodes:2 root in
  check_contains "ellipsis" "3 more nodes suppressed" ascii

let test_tree_baseline_profile_only () =
  (* frontier_pop-only traces have no gammas: depth profile, no root. *)
  let events =
    List.mapi
      (fun i depth ->
        { Event.seq = i + 1; t = float_of_int i /. 100.0; domain = None;
          event =
            Event.Frontier_pop
              { engine = "bab-baseline"; depth; frontier = 1; priority = Float.nan } })
      [ 0; 1; 1; 2 ]
  in
  let t = Tree.build events in
  Alcotest.(check bool) "no root" true (t.Tree.root = None);
  Alcotest.(check int) "nodes counted" 4 t.Tree.shape.Tree.nodes;
  Alcotest.(check (array int)) "depth histogram" [| 1; 2; 1 |]
    t.Tree.shape.Tree.depth_counts

(* --- phases --- *)

let test_phases_golden () =
  let p = Phases.of_events (read_clean golden) in
  check_float "wall" 0.07 p.Phases.wall;
  Alcotest.(check int) "appver calls" 5 p.Phases.appver_total.Phases.calls;
  check_float "appver total" 0.036 p.Phases.appver_total.Phases.total;
  Alcotest.(check int) "lp calls" 1 p.Phases.lp.Phases.calls;
  check_float "lp total" 0.002 p.Phases.lp.Phases.total;
  check_float "no lp inside appver" 0.0 p.Phases.lp_in_appver;
  (* pgd nests inside the best-effort window: top-level attack = best-effort only *)
  Alcotest.(check int) "top-level attacks" 1 p.Phases.attack_total.Phases.calls;
  check_float "attack total" 0.004 p.Phases.attack_total.Phases.total;
  check_float "overhead" (0.07 -. 0.036 -. 0.002 -. 0.004) p.Phases.overhead;
  check_contains "renders appver row" "appver.deeppoly" (Phases.to_string p)

let test_phases_lp_inside_appver () =
  (* An lp_solved whose window falls inside a bound_computed window is
     charged to AppVer, not double-charged to the LP phase. *)
  let env i t event = { Event.seq = i; t; domain = None; event } in
  let events =
    [ env 1 0.008
        (Event.Lp_solved { vars = 2; rows = 2; status = "optimal"; elapsed = 0.004 });
      env 2 0.010
        (Event.Bound_computed { appver = "lp"; depth = 0; phat = -0.1; elapsed = 0.006 });
      env 3 0.020
        (Event.Verdict_reached { engine = "abonn"; verdict = "timeout"; elapsed = 0.02 })
    ]
  in
  let p = Phases.of_events events in
  check_float "lp claimed by appver" 0.004 p.Phases.lp_in_appver;
  check_float "overhead excludes nested lp" (0.02 -. 0.006) p.Phases.overhead

(* --- curve --- *)

let test_curve_golden () =
  let points = Curve.of_events (read_clean golden) in
  (* 5 node_evaluated + 1 verdict_reached *)
  Alcotest.(check int) "points" 6 (List.length points);
  let last = List.nth points 5 in
  Alcotest.(check int) "calls" 5 last.Curve.calls;
  Alcotest.(check int) "nodes" 5 last.Curve.nodes;
  Alcotest.(check int) "max depth" 2 last.Curve.max_depth;
  Alcotest.(check int) "frontier = open leaves" 1 last.Curve.frontier;
  check_float "best reward is cex" infinity last.Curve.best_reward;
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "t monotone" true (a.Curve.t <= b.Curve.t);
      monotone rest
    | _ -> ()
  in
  monotone points;
  let csv = Curve.to_csv points in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + rows" 7 (List.length lines);
  Alcotest.(check string) "header" "t,seq,calls,nodes,max_depth,frontier,best_reward"
    (List.hd lines)

(* --- summary --- *)

let test_summary_golden () =
  match Summary.runs (read_clean golden) with
  | [ run ] ->
    Alcotest.(check string) "engine" "abonn" run.Summary.engine;
    Alcotest.(check (option string)) "verdict" (Some "falsified") run.Summary.verdict;
    Alcotest.(check int) "calls" 5 run.Summary.calls;
    Alcotest.(check int) "nodes" 5 run.Summary.nodes;
    Alcotest.(check int) "max depth" 2 run.Summary.max_depth;
    check_float "wall" 0.07 run.Summary.wall;
    Alcotest.(check int) "events" 18 run.Summary.events;
    Alcotest.(check bool) "consistent (nothing reported)" true (Summary.consistent run)
  | runs -> Alcotest.fail (Printf.sprintf "expected 1 run, got %d" (List.length runs))

(* bound_reuse is an annotation, not AppVer work: reconstruction over
   the cached golden trace must count exactly the bound_computed and
   exact_leaf events, reproducing the engine's own statistics with no
   MISMATCH. *)
let test_summary_golden_cached () =
  let events = read_clean golden_cached in
  (match Summary.runs events with
   | [ run ] ->
     Alcotest.(check string) "engine" "bestfirst" run.Summary.engine;
     Alcotest.(check (option string)) "verdict" (Some "verified") run.Summary.verdict;
     Alcotest.(check int) "calls = bound_computed + exact_leaf" 47 run.Summary.calls;
     Alcotest.(check int) "nodes = bound_computed" 31 run.Summary.nodes;
     Alcotest.(check int) "max depth" 4 run.Summary.max_depth;
     Alcotest.(check bool) "consistent" true (Summary.consistent run)
   | runs -> Alcotest.failf "expected 1 run, got %d" (List.length runs));
  let rendered = Summary.to_string (Summary.runs events) in
  Alcotest.(check bool) "no MISMATCH" false (contains ~affix:"MISMATCH" rendered)

let test_phases_golden_cached () =
  let p = Phases.of_events (read_clean golden_cached) in
  Alcotest.(check int) "appver calls = bound_computed" 31
    p.Phases.appver_total.Phases.calls;
  check_contains "renders appver row" "appver.deeppoly" (Phases.to_string p)

let test_summary_segments_harness_trace () =
  (* Two harness runs in one file; verdict_reached inside a
     run_started/run_finished bracket must not cut the segment. *)
  let env i t event = { Event.seq = i; t; domain = None; event } in
  let run_pair i t0 engine verdict =
    [ env i t0 (Event.Run_started { engine; instance = "inst" });
      env (i + 1) (t0 +. 0.001)
        (Event.Node_evaluated
           { engine; depth = 0; gamma = Tree.root_gamma; phat = -0.1; reward = 0.1 });
      env (i + 2) (t0 +. 0.002)
        (Event.Verdict_reached { engine; verdict; elapsed = 0.002 });
      env (i + 3) (t0 +. 0.003)
        (Event.Run_finished
           { engine; instance = "inst"; verdict; calls = 1; nodes = 1; max_depth = 0;
             wall = 0.003 })
    ]
  in
  let events = run_pair 1 0.0 "abonn" "verified" @ run_pair 5 1.0 "abonn" "timeout" in
  let runs = Summary.runs events in
  Alcotest.(check int) "two runs" 2 (List.length runs);
  List.iter
    (fun r ->
      Alcotest.(check (option string)) "instance" (Some "inst") r.Summary.instance;
      Alcotest.(check bool) "reported present" true (r.Summary.reported <> None);
      Alcotest.(check bool) "reconstruction matches report" true (Summary.consistent r))
    runs;
  Alcotest.(check (option string)) "first verdict" (Some "verified")
    (List.hd runs).Summary.verdict

let test_summary_composite_bracket () =
  (* A wrapper run (e.g. an abonn_fuzz case) whose bracket contains
     whole engine runs: reconstruction must flag it composite and take
     the row's statistics from the wrapper's report, not from the
     interior engines' events. *)
  let env i t event = { Event.seq = i; t; domain = None; event } in
  let events =
    [ env 1 0.0 (Event.Run_started { engine = "fuzz"; instance = "case-0" });
      env 2 0.001
        (Event.Node_evaluated
           { engine = "abonn"; depth = 1; gamma = Tree.root_gamma; phat = -0.1;
             reward = 0.1 });
      env 3 0.002
        (Event.Verdict_reached { engine = "abonn"; verdict = "falsified"; elapsed = 0.002 });
      env 4 0.003
        (Event.Verdict_reached
           { engine = "bab-baseline"; verdict = "verified"; elapsed = 0.001 });
      env 5 0.004
        (Event.Run_finished
           { engine = "fuzz"; instance = "case-0"; verdict = "pass"; calls = 5; nodes = 0;
             max_depth = 0; wall = 0.004 })
    ]
  in
  match Summary.runs events with
  | [ run ] ->
    Alcotest.(check bool) "composite" true run.Summary.composite;
    Alcotest.(check string) "engine is the bracket's" "fuzz" run.Summary.engine;
    Alcotest.(check (option string)) "verdict from report" (Some "pass")
      run.Summary.verdict;
    Alcotest.(check int) "calls from report" 5 run.Summary.calls;
    Alcotest.(check bool) "consistent (cross-check not applicable)" true
      (Summary.consistent run)
  | runs -> Alcotest.failf "expected one segment, got %d" (List.length runs)

(* --- summary vs a fresh engine run (the acceptance property) --- *)

let random_problem ?(seed = 0) ?(dims = [ 2; 6; 2 ]) ?(eps = 0.3) () =
  let rng = Rng.create seed in
  let net = Builder.mlp rng ~dims in
  let in_dim = List.hd dims in
  let center = Array.init in_dim (fun _ -> Rng.range rng (-0.5) 0.5) in
  let region = Region.linf_ball ~center ~eps () in
  let out_dim = List.nth dims (List.length dims - 1) in
  let label = Network.predict net center in
  let property = Property.robustness ~num_classes:out_dim ~label in
  Problem.create ~network:net ~region ~property ()

let traced_run verify =
  let path = Filename.temp_file "abonn_trace_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let sink = Sink.jsonl_file path in
  let result = Obs.with_sink sink verify in
  sink.Sink.close ();
  let events = read_clean path in
  (result, events)

(* [exact_shape]: bab-baseline node/depth reconstruction may undercount
   by one split on timeout (see Summary docs), so those two fields are
   only asserted for solved runs there. *)
let check_summary_matches ?(exact_shape = true) name (result : Result.t) events =
  match Summary.runs events with
  | [ run ] ->
    Alcotest.(check (option string)) (name ^ " verdict")
      (Some (Verdict.to_string result.Result.verdict))
      run.Summary.verdict;
    Alcotest.(check int) (name ^ " calls") result.Result.stats.Result.appver_calls
      run.Summary.calls;
    if exact_shape then begin
      Alcotest.(check int) (name ^ " nodes") result.Result.stats.Result.nodes
        run.Summary.nodes;
      Alcotest.(check int) (name ^ " max depth") result.Result.stats.Result.max_depth
        run.Summary.max_depth
    end
  | runs ->
    Alcotest.fail (Printf.sprintf "%s: expected 1 run, got %d" name (List.length runs))

let test_summary_reproduces_abonn_run () =
  List.iter
    (fun seed ->
      let problem = random_problem ~seed () in
      let result, events =
        traced_run (fun () ->
            Abonn_core.Abonn.verify ~budget:(Budget.of_calls 200) problem)
      in
      check_summary_matches (Printf.sprintf "abonn seed %d" seed) result events)
    [ 0; 1; 2; 3 ]

let test_summary_reproduces_bfs_run () =
  List.iter
    (fun seed ->
      let problem = random_problem ~seed () in
      let result, events =
        traced_run (fun () -> Abonn_bab.Bfs.verify ~budget:(Budget.of_calls 200) problem)
      in
      let exact_shape = Verdict.is_solved result.Result.verdict in
      check_summary_matches ~exact_shape
        (Printf.sprintf "bfs seed %d" seed)
        result events)
    [ 0; 1; 2 ]

let test_summary_reproduces_bestfirst_run () =
  let problem = random_problem ~seed:1 () in
  let result, events =
    traced_run (fun () ->
        Abonn_bab.Bestfirst.verify ~budget:(Budget.of_calls 200) problem)
  in
  check_summary_matches "bestfirst" result events

(* --- diff --- *)

let test_diff_self_is_neutral () =
  let events = read_clean golden in
  let d = Diff.diff events events in
  Alcotest.(check int) "same visits" d.Diff.visits_a d.Diff.visits_b;
  Alcotest.(check int) "full shared prefix" 5 d.Diff.shared_prefix;
  Alcotest.(check bool) "no divergence" true (d.Diff.divergence = None);
  check_contains "renders delta column" "delta" (Diff.to_string d)

let test_diff_abonn_vs_bfs () =
  let problem = random_problem ~seed:2 () in
  let _, abonn_events =
    traced_run (fun () -> Abonn_core.Abonn.verify ~budget:(Budget.of_calls 150) problem)
  in
  let _, bfs_events =
    traced_run (fun () -> Abonn_bab.Bfs.verify ~budget:(Budget.of_calls 150) problem)
  in
  let d = Diff.diff abonn_events bfs_events in
  (* Both engines start at the unsplit root, so depth-compared visit
     sequences share at least that first visit. *)
  Alcotest.(check bool) "shared prefix >= 1" true (d.Diff.shared_prefix >= 1);
  Alcotest.(check string) "engine a" "abonn" d.Diff.run_a.Summary.engine;
  Alcotest.(check string) "engine b" "bab-baseline" d.Diff.run_b.Summary.engine;
  let rendered = Diff.to_string ~label_a:"abonn" ~label_b:"bfs" d in
  check_contains "mentions label a" "abonn" rendered;
  check_contains "mentions label b" "bfs" rendered;
  check_contains "reports shared prefix" "shared visit prefix" rendered

(* The bound cache must not change what the search does, only what each
   bound computation costs: cached and uncached traces of the same
   instance agree on verdict and visit sequence, and the extra
   bound_reuse annotations are invisible to the visit comparison. *)
let test_diff_cached_vs_uncached () =
  let problem = random_problem ~seed:0 () in
  (* domains is pinned: diffing two scheduling-dependent parallel runs
     would make the no-divergence check flaky under ABONN_DOMAINS *)
  let run () =
    Abonn_bab.Bestfirst.verify ~budget:(Budget.of_calls 200) ~domains:1 problem
  in
  let r_on, cached =
    traced_run (fun () -> Abonn_prop.Incremental.with_enabled true run)
  in
  let r_off, uncached =
    traced_run (fun () -> Abonn_prop.Incremental.with_enabled false run)
  in
  Alcotest.(check string) "same verdict"
    (Verdict.to_string r_off.Result.verdict)
    (Verdict.to_string r_on.Result.verdict);
  Alcotest.(check bool) "cached trace has bound_reuse" true
    (List.exists
       (fun e -> match e.Event.event with Event.Bound_reuse _ -> true | _ -> false)
       cached);
  Alcotest.(check bool) "uncached trace has none" false
    (List.exists
       (fun e -> match e.Event.event with Event.Bound_reuse _ -> true | _ -> false)
       uncached);
  let d = Diff.diff cached uncached in
  Alcotest.(check int) "identical visit counts" d.Diff.visits_b d.Diff.visits_a;
  Alcotest.(check int) "identical calls" d.Diff.run_b.Summary.calls
    d.Diff.run_a.Summary.calls;
  Alcotest.(check bool) "no divergence" true (d.Diff.divergence = None)

(* --- progress sink --- *)

let test_progress_sink_heartbeat () =
  let path = Filename.temp_file "abonn_progress" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  let sink = Sink.progress ~out:oc ~every:0.0 () in
  Obs.with_sink sink (fun () ->
      List.iter Obs.emit
        [ Event.Node_evaluated
            { engine = "abonn"; depth = 0; gamma = Tree.root_gamma; phat = -0.2;
              reward = 0.4 };
          Event.Node_evaluated
            { engine = "abonn"; depth = 1; gamma = "r1+"; phat = -0.1; reward = 0.6 };
          Event.Exact_leaf { engine = "abonn"; depth = 2; verified = true } ]);
  sink.Sink.close ();
  close_out oc;
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (* heartbeats are \r-separated in-place updates of one line; a
     non-positive cadence is clamped (not per-event), so the three
     events land as the immediate first print plus the final aggregate
     that [close] flushes *)
  let updates =
    String.split_on_char '\r' content |> List.filter (fun s -> String.trim s <> "")
  in
  Alcotest.(check int) "first print plus final aggregate" 2 (List.length updates);
  let last = List.nth updates 1 in
  check_contains "final calls" "calls=3" last;
  check_contains "final nodes" "nodes=2" last;
  check_contains "final depth" "depth=2" last;
  check_contains "final best" "best=0.6" last;
  Alcotest.(check bool) "close terminates the line" true
    (String.length content > 0 && content.[String.length content - 1] = '\n')

let test_progress_sink_silent_when_uninstalled () =
  (* The single-branch overhead guarantee: an emitted event reaches no
     sink that is not installed. *)
  let path = Filename.temp_file "abonn_progress" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  let _sink : Sink.t = Sink.progress ~out:oc ~every:0.0 () in
  Obs.emit
    (Event.Node_evaluated
       { engine = "abonn"; depth = 0; gamma = Tree.root_gamma; phat = -0.2; reward = 0.4 });
  close_out oc;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Alcotest.(check int) "no output" 0 len

(* --- follow (tail) mode --- *)

module Monitor = Abonn_trace.Monitor
module Registry = Abonn_trace.Registry
module Regress = Abonn_trace.Regress

let mk_env seq t event = { Event.seq; t; domain = None; event }

let node_env seq t depth =
  mk_env seq t
    (Event.Node_evaluated
       { engine = "abonn"; depth; gamma = Tree.root_gamma; phat = -0.2; reward = 0.4 })

let append_raw path s =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc s;
  close_out oc

let test_tail_partial_line_recovery () =
  let path = Filename.temp_file "abonn_tail" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let l1 = Event.to_json (node_env 1 0.0 0) in
  let l2 = Event.to_json (node_env 2 0.1 1) in
  let l3 = Event.to_json (node_env 3 0.2 2) in
  let cut = String.length l2 / 2 in
  (* first line complete, second cut mid-record — as a writer's buffer
     flush can leave it *)
  append_raw path (l1 ^ "\n" ^ String.sub l2 0 cut);
  let tail = Reader.tail_open path in
  Fun.protect ~finally:(fun () -> Reader.tail_close tail) @@ fun () ->
  let got = ref [] in
  let issues1 = Reader.tail_poll tail ~f:(fun env -> got := env :: !got) in
  Alcotest.(check int) "only the complete line parsed" 1 (List.length !got);
  Alcotest.(check int) "partial line is not an issue" 0 (List.length issues1);
  (* the rest of line 2 arrives, plus line 3 *)
  append_raw path (String.sub l2 cut (String.length l2 - cut) ^ "\n" ^ l3 ^ "\n");
  let issues2 = Reader.tail_poll tail ~f:(fun env -> got := env :: !got) in
  Alcotest.(check int) "no issues after completion" 0 (List.length issues2);
  let seqs = List.rev_map (fun e -> e.Event.seq) !got in
  Alcotest.(check (list int)) "all three events, in order" [ 1; 2; 3 ] seqs

let test_tail_integrity_across_polls () =
  let path = Filename.temp_file "abonn_tail" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  append_raw path (Event.to_json (node_env 1 0.0 0) ^ "\n");
  let tail = Reader.tail_open path in
  Fun.protect ~finally:(fun () -> Reader.tail_close tail) @@ fun () ->
  Alcotest.(check int) "clean first poll" 0
    (List.length (Reader.tail_poll tail ~f:ignore));
  (* seq 3 after seq 1: the gap must be flagged even though the two
     lines arrived in different polls *)
  append_raw path (Event.to_json (node_env 3 0.2 1) ^ "\n");
  (match Reader.tail_poll tail ~f:ignore with
   | [ Reader.Seq_gap { expected = 2; got = 3; _ } ] -> ()
   | issues ->
     Alcotest.fail
       (Printf.sprintf "expected one seq gap, got %d issue(s)" (List.length issues)));
  Alcotest.(check bool) "offset advanced" true (Reader.tail_offset tail > 0)

let test_tail_resume_at_offset () =
  let path = Filename.temp_file "abonn_tail" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  append_raw path (Event.to_json (node_env 1 0.0 0) ^ "\n");
  let t1 = Reader.tail_open path in
  ignore (Reader.tail_poll t1 ~f:ignore);
  let offset = Reader.tail_offset t1 in
  Reader.tail_close t1;
  append_raw path (Event.to_json (node_env 2 0.1 1) ^ "\n");
  (* a new tail resumed at the saved offset sees only the new line *)
  let t2 = Reader.tail_open ~offset path in
  Fun.protect ~finally:(fun () -> Reader.tail_close t2) @@ fun () ->
  let got = ref [] in
  ignore (Reader.tail_poll t2 ~f:(fun env -> got := env :: !got));
  match !got with
  | [ env ] -> Alcotest.(check int) "only the appended event" 2 env.Event.seq
  | l -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length l))

(* --- monitor --- *)

let test_monitor_aggregates () =
  let m = Monitor.create () in
  Monitor.feed m
    (mk_env 1 0.0 (Event.Run_started { engine = "abonn"; instance = "mnist_l2:0" }));
  Monitor.feed m (node_env 2 0.5 0);
  Monitor.feed m (node_env 3 1.0 1);
  Monitor.feed m (node_env 4 1.5 2);
  Monitor.feed m
    (mk_env 5 1.6
       (Event.Resource_sample
          { engine = "abonn"; rss_bytes = 50_000_000; heap_bytes = 10_000_000;
            minor_words = 1e6; major_words = 1e5; minor_gcs = 5; major_gcs = 1;
            cpu = 1.0; wall = 1.6; open_nodes = 2; nodes = 3; max_depth = 2;
            nps = 2.0 }));
  Alcotest.(check bool) "not finished mid-run" false (Monitor.finished m);
  Alcotest.(check bool) "node rate positive" true (Monitor.nodes_per_sec m > 0.0);
  (* verdict_reached inside the harness bracket does not end the watch *)
  Monitor.feed m
    (mk_env 6 1.8
       (Event.Verdict_reached { engine = "abonn"; verdict = "verified"; elapsed = 1.8 }));
  Alcotest.(check bool) "engine verdict is interior" false (Monitor.finished m);
  Monitor.feed m
    (mk_env 7 2.0
       (Event.Run_finished
          { engine = "abonn"; instance = "mnist_l2:0"; verdict = "verified"; calls = 3;
            nodes = 3; max_depth = 2; wall = 2.0 }));
  Alcotest.(check bool) "run_finished ends the watch" true (Monitor.finished m);
  let rendered = Monitor.render ~calls_budget:100 m in
  List.iter
    (fun affix ->
      let n = String.length affix and s = rendered in
      let rec go i = i + n <= String.length s && (String.sub s i n = affix || go (i + 1)) in
      Alcotest.(check bool) (Printf.sprintf "render mentions %S" affix) true (go 0))
    [ "abonn"; "verified"; "rss curve"; "depth histogram"; "phase split" ]

(* --- registry --- *)

let test_registry_round_trip () =
  let r =
    Registry.make ~ts:"2026-08-07T00:00:00Z" ~commit:"abc1234" ~peak_rss_bytes:123456
      ~engine:"abonn" ~model:"mnist_l2" ~instance:"index0_eps0.02" ~seed:7
      ~verdict:"verified" ~wall:1.25 ~calls:400 ~nodes:401 ~max_depth:9 ()
  in
  (match Registry.of_json (Registry.to_json r) with
   | Ok back -> Alcotest.(check bool) "round trip" true (back = r)
   | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "schema version stamped" Registry.schema_version r.Registry.schema

let test_registry_append_load () =
  let dir = Filename.temp_file "abonn_registry" "" in
  Sys.remove dir;
  (* append creates the directory chain *)
  let path = Filename.concat (Filename.concat dir "results") "registry.jsonl" in
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (Filename.dirname path) then Unix.rmdir (Filename.dirname path);
      if Sys.file_exists dir then Unix.rmdir dir)
  @@ fun () ->
  let mk i =
    Registry.make ~ts:"2026-08-07T00:00:00Z" ~commit:"abc1234" ~peak_rss_bytes:(1000 * i)
      ~engine:"abonn" ~model:"mnist_l2" ~instance:(Printf.sprintf "i%d" i) ~seed:i
      ~verdict:"timeout" ~wall:0.5 ~calls:100 ~nodes:99 ~max_depth:4 ()
  in
  Registry.append ~path (mk 1);
  Registry.append ~path (mk 2);
  (* a corrupt line must not take the rest of the file down *)
  append_raw path "not json\n";
  Registry.append ~path (mk 3);
  let records, errors = Registry.load ~path () in
  Alcotest.(check int) "three good records" 3 (List.length records);
  Alcotest.(check int) "one bad line" 1 (List.length errors);
  Alcotest.(check (list string))
    "order preserved" [ "i1"; "i2"; "i3" ]
    (List.map (fun r -> r.Registry.instance) records);
  (* missing file loads as empty *)
  let none, errs = Registry.load ~path:(Filename.concat dir "absent.jsonl") () in
  Alcotest.(check int) "missing file is empty" 0 (List.length none);
  Alcotest.(check int) "missing file no errors" 0 (List.length errs)

(* --- regression gate --- *)

let stamped_bench nps =
  Printf.sprintf
    {|{
  "schema": 1,
  "commit": "abc1234",
  "date": "2026-08-07T00:00:00Z",
  "rows": {
    "mlp_a": {"nodes": 401, "max_depth": 9, "verdict": "timeout",
              "nodes_per_sec_cached": %.1f, "nodes_per_sec_uncached": 1000.0,
              "speedup": 3.0, "peak_rss_bytes": 104857600}
  },
  "geomean_speedup": 3.0
}|}
    nps

let flat_bench nps =
  Printf.sprintf
    {|{
  "mlp_a": {"nodes": 401, "max_depth": 9, "verdict": "timeout",
            "nodes_per_sec_cached": %.1f, "nodes_per_sec_uncached": 1000.0,
            "speedup": 3.0},
  "geomean_speedup": 3.0
}|}
    nps

let load_ok text =
  match Regress.load_string text with
  | Ok b -> b
  | Error msg -> Alcotest.fail msg

let test_regress_both_layouts () =
  let stamped = load_ok (stamped_bench 3000.0) in
  let flat = load_ok (flat_bench 3000.0) in
  Alcotest.(check int) "stamped rows" 1 (List.length stamped.Regress.rows);
  Alcotest.(check int) "flat rows" 1 (List.length flat.Regress.rows);
  Alcotest.(check (option string)) "stamped commit" (Some "abc1234") stamped.Regress.commit;
  Alcotest.(check (option string)) "flat has no commit" None flat.Regress.commit;
  (match stamped.Regress.rows with
   | [ (_, row) ] ->
     Alcotest.(check (option int)) "peak rss parsed" (Some 104857600)
       row.Regress.peak_rss_bytes
   | _ -> Alcotest.fail "expected one stamped row")

(* Kernel bench rows carry ns_per_run instead of a node rate; the
   loader exposes them as runs/sec so the same gate covers
   BENCH_kernels.json (kernel_lp_warm among them). *)
let kernel_bench ns =
  Printf.sprintf
    {|{
  "schema": 1,
  "commit": "abc1234",
  "date": "2026-08-07T00:00:00Z",
  "rows": {
    "abonn/kernel_lp_call": {"ns_per_run": 1808530260.655, "r_square": 0.937},
    "abonn/kernel_lp_warm": {"ns_per_run": %.3f, "r_square": 0.99}
  }
}|}
    ns

let test_regress_kernel_layout () =
  let b = load_ok (kernel_bench 103_000_000.0) in
  Alcotest.(check int) "kernel rows" 2 (List.length b.Regress.rows);
  (match List.assoc_opt "abonn/kernel_lp_warm" b.Regress.rows with
   | Some row ->
     Alcotest.(check bool) "runs/sec derived" true
       (Float.abs (row.Regress.nps_cached -. (1e9 /. 103_000_000.0)) < 1e-9)
   | None -> Alcotest.fail "kernel_lp_warm row missing");
  (* a 2x-slower fresh warm kernel must trip the gate *)
  let fresh = load_ok (kernel_bench 206_000_000.0) in
  let r = Regress.compare_benches ~max_regress:20.0 ~baseline:b ~fresh () in
  Alcotest.(check bool) "2x slower kernel fails" false r.Regress.ok;
  let r = Regress.compare_benches ~max_regress:20.0 ~baseline:b ~fresh:b () in
  Alcotest.(check bool) "identical kernels pass" true r.Regress.ok

let test_regress_gate_pass_and_fail () =
  let baseline = load_ok (stamped_bench 3000.0) in
  (* 10% below baseline: inside a 20% tolerance *)
  let fresh_ok = load_ok (stamped_bench 2700.0) in
  let r = Regress.compare_benches ~max_regress:20.0 ~baseline ~fresh:fresh_ok () in
  Alcotest.(check bool) "10% drop passes at 20%" true r.Regress.ok;
  (* 40% below baseline: must trip *)
  let fresh_slow = load_ok (stamped_bench 1800.0) in
  let r = Regress.compare_benches ~max_regress:20.0 ~baseline ~fresh:fresh_slow () in
  Alcotest.(check bool) "40% drop fails at 20%" false r.Regress.ok;
  (match r.Regress.verdicts with
   | [ v ] -> Alcotest.(check bool) "row flagged" true v.Regress.regressed
   | _ -> Alcotest.fail "expected one verdict");
  (* the CI negative test: scaling the baseline 10x must always fail *)
  let r =
    Regress.compare_benches ~scale_baseline:10.0 ~max_regress:20.0 ~baseline
      ~fresh:fresh_ok ()
  in
  Alcotest.(check bool) "synthetic 10x baseline fails" false r.Regress.ok;
  (* speeding up never trips the gate *)
  let fresh_fast = load_ok (stamped_bench 9000.0) in
  let r = Regress.compare_benches ~max_regress:20.0 ~baseline ~fresh:fresh_fast () in
  Alcotest.(check bool) "speedup passes" true r.Regress.ok

let test_regress_missing_row_fails () =
  let baseline = load_ok (stamped_bench 3000.0) in
  let fresh =
    load_ok
      {|{"other": {"nodes_per_sec_cached": 3000.0}, "geomean_speedup": 3.0}|}
  in
  let r = Regress.compare_benches ~max_regress:20.0 ~baseline ~fresh () in
  Alcotest.(check bool) "missing instance fails the gate" false r.Regress.ok;
  Alcotest.(check (list string)) "named" [ "mlp_a" ] r.Regress.missing

let test_regress_report_renders () =
  let baseline = load_ok (stamped_bench 3000.0) in
  let fresh = load_ok (stamped_bench 1800.0) in
  let r = Regress.compare_benches ~max_regress:20.0 ~baseline ~fresh () in
  let rendered = Regress.report_to_string ~max_regress:20.0 r in
  List.iter
    (fun affix ->
      let n = String.length affix in
      let rec go i =
        i + n <= String.length rendered
        && (String.sub rendered i n = affix || go (i + 1))
      in
      Alcotest.(check bool) (Printf.sprintf "report mentions %S" affix) true (go 0))
    [ "mlp_a"; "REGRESSED"; "FAIL"; "MiB" ]

let suite =
  [ ( "trace.reader",
      [ Alcotest.test_case "golden parses clean" `Quick test_reader_golden;
        Alcotest.test_case "cached golden parses clean" `Quick test_reader_golden_cached;
        Alcotest.test_case "malformed-line recovery" `Quick test_reader_recovery;
        Alcotest.test_case "missing file" `Quick test_reader_missing_file
      ] );
    ( "trace.tree",
      [ Alcotest.test_case "golden shape" `Quick test_tree_golden_shape;
        Alcotest.test_case "ascii + dot renderings" `Quick test_tree_renderings;
        Alcotest.test_case "render truncation" `Quick test_tree_truncation;
        Alcotest.test_case "baseline depth profile" `Quick test_tree_baseline_profile_only
      ] );
    ( "trace.phases",
      [ Alcotest.test_case "golden totals" `Quick test_phases_golden;
        Alcotest.test_case "cached golden totals" `Quick test_phases_golden_cached;
        Alcotest.test_case "lp inside appver window" `Quick test_phases_lp_inside_appver
      ] );
    ( "trace.curve", [ Alcotest.test_case "golden curve" `Quick test_curve_golden ] );
    ( "trace.summary",
      [ Alcotest.test_case "golden summary" `Quick test_summary_golden;
        Alcotest.test_case "cached golden summary" `Quick test_summary_golden_cached;
        Alcotest.test_case "harness segmentation" `Quick test_summary_segments_harness_trace;
        Alcotest.test_case "composite bracket uses reported stats" `Quick
          test_summary_composite_bracket;
        Alcotest.test_case "reproduces abonn run" `Quick test_summary_reproduces_abonn_run;
        Alcotest.test_case "reproduces bfs run" `Quick test_summary_reproduces_bfs_run;
        Alcotest.test_case "reproduces bestfirst run" `Quick
          test_summary_reproduces_bestfirst_run
      ] );
    ( "trace.diff",
      [ Alcotest.test_case "self diff is neutral" `Quick test_diff_self_is_neutral;
        Alcotest.test_case "abonn vs bfs" `Quick test_diff_abonn_vs_bfs;
        Alcotest.test_case "cached vs uncached run" `Quick test_diff_cached_vs_uncached
      ] );
    ( "trace.progress",
      [ Alcotest.test_case "heartbeat aggregates" `Quick test_progress_sink_heartbeat;
        Alcotest.test_case "uninstalled is silent" `Quick
          test_progress_sink_silent_when_uninstalled
      ] );
    ( "trace.tail",
      [ Alcotest.test_case "partial-line recovery" `Quick test_tail_partial_line_recovery;
        Alcotest.test_case "integrity across polls" `Quick test_tail_integrity_across_polls;
        Alcotest.test_case "resume at offset" `Quick test_tail_resume_at_offset
      ] );
    ( "trace.monitor",
      [ Alcotest.test_case "aggregates and renders" `Quick test_monitor_aggregates ] );
    ( "trace.registry",
      [ Alcotest.test_case "round trip" `Quick test_registry_round_trip;
        Alcotest.test_case "append and load" `Quick test_registry_append_load
      ] );
    ( "trace.regress",
      [ Alcotest.test_case "both layouts parse" `Quick test_regress_both_layouts;
        Alcotest.test_case "kernel ns_per_run layout" `Quick test_regress_kernel_layout;
        Alcotest.test_case "gate pass and fail" `Quick test_regress_gate_pass_and_fail;
        Alcotest.test_case "missing row fails" `Quick test_regress_missing_row_fails;
        Alcotest.test_case "report renders" `Quick test_regress_report_renders
      ] )
  ]
