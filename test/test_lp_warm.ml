(* Differential battery for the warm-started LP verifier (DESIGN.md §13):
   warm vs cold agreement along split paths, basis round-trips through
   [Boxlp.solve_warm], fallback-path correctness, the bounded-pivot
   [Pivot_limit] result, [lp.warm.*] counters and [lp_warm] trace events,
   the [--no-lp-warm] escape hatch and multi-domain verdict agreement. *)

module Rng = Abonn_util.Rng
module Budget = Abonn_util.Budget
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Split = Abonn_spec.Split
module Problem = Abonn_spec.Problem
module Verdict = Abonn_spec.Verdict
module Network = Abonn_nn.Network
module Affine = Abonn_nn.Affine
module Builder = Abonn_nn.Builder
module Outcome = Abonn_prop.Outcome
module Boxlp = Abonn_lp.Boxlp
module Simplex = Abonn_lp.Simplex
module Lp = Abonn_lp.Lp_problem
module Lp_verifier = Abonn_lp.Lp_verifier
module Obs = Abonn_obs.Obs
module Metrics = Abonn_obs.Metrics
module Sink = Abonn_obs.Sink
module Event = Abonn_obs.Event
module Matrix = Abonn_tensor.Matrix
module Bfs = Abonn_bab.Bfs
module Result = Abonn_bab.Result

let check_float tol = Alcotest.(check (float tol))

let random_problem ?(seed = 0) ?(dims = [ 2; 5; 2 ]) ?(eps = 0.3) () =
  let rng = Rng.create seed in
  let net = Builder.mlp rng ~dims in
  let in_dim = List.hd dims in
  let center = Array.init in_dim (fun _ -> Rng.range rng (-0.5) 0.5) in
  let region = Region.linf_ball ~center ~eps () in
  let out_dim = List.nth dims (List.length dims - 1) in
  let label = Network.predict net center in
  let property = Property.robustness ~num_classes:out_dim ~label in
  Problem.create ~network:net ~region ~property ()

(* equal up to [tol], with equal infinities counting as equal *)
let close ?(tol = 1e-9) a b = a = b || Float.abs (a -. b) <= tol

let check_rows name a b =
  Alcotest.(check int) (name ^ " arity") (Array.length a) (Array.length b);
  Array.iteri
    (fun r va ->
      if not (close va b.(r)) then
        Alcotest.failf "%s: row %d differs (%.17g vs %.17g)" name r va b.(r))
    a

(* Phase-matched split path from a concrete probe point: every prefix of
   the path keeps [x] feasible, so [concrete_margin problem x] upper-bounds
   the true minimum of every node along it. *)
let phase_path problem x depth =
  let affine = problem.Problem.affine in
  let pre = Affine.pre_activations affine x in
  let k = Problem.num_relus problem in
  List.init depth (fun i ->
      let relu = i * k / depth in
      let layer, idx = Affine.relu_position affine relu in
      let phase = if pre.(layer).(idx) >= 0.0 then Split.Active else Split.Inactive in
      (relu, phase))

(* root plus every prefix of the path, shallowest first *)
let gammas_of_path path =
  List.rev
    (List.fold_left
       (fun acc (relu, phase) -> Split.extend (List.hd acc) ~relu ~phase :: acc)
       [ [] ] path)

let counter name =
  match List.assoc_opt name (Metrics.snapshot ()).Metrics.counters with
  | Some n -> n
  | None -> 0

let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.reset ();
      Metrics.set_enabled false)
    f

(* --- warm vs cold differential --- *)

(* Stateless warm calls solve the very same polytope as [run] (canonical
   encoding vs the modelling-layer encoding): optima must agree to
   solver noise on every node of a split path. *)
let test_warm_stateless_matches_cold () =
  Lp_verifier.clear_warm_cache ();
  for seed = 0 to 5 do
    let problem = random_problem ~seed ~eps:0.4 () in
    let rng = Rng.create (1000 + seed) in
    let x = Region.sample rng problem.Problem.region in
    let depth = Stdlib.min 4 (Problem.num_relus problem) in
    List.iter
      (fun gamma ->
        let cold = Lp_verifier.run problem gamma in
        let warm, state' = Lp_verifier.run_warm problem gamma in
        Alcotest.(check bool)
          (Printf.sprintf "infeasible agrees (seed %d)" seed)
          cold.Outcome.infeasible warm.Outcome.infeasible;
        if not (close cold.Outcome.phat warm.Outcome.phat) then
          Alcotest.failf "phat differs (seed %d): %.17g vs %.17g" seed
            cold.Outcome.phat warm.Outcome.phat;
        check_rows (Printf.sprintf "row_lower (seed %d)" seed)
          cold.Outcome.row_lower warm.Outcome.row_lower;
        Alcotest.(check bool) "state iff feasible"
          (not warm.Outcome.infeasible)
          (state' <> None))
      (gammas_of_path (phase_path problem x depth))
  done

(* Contradictory splits must stay vacuous through the warm path. *)
let test_warm_infeasible_split_vacuous () =
  let problem = random_problem ~seed:50 ~dims:[ 3; 6; 6; 2 ] ~eps:0.01 () in
  let outcome = Lp_verifier.run problem [] in
  let affine = problem.Problem.affine in
  let found = ref None in
  Array.iteri
    (fun l (b : Abonn_prop.Bounds.t) ->
      Array.iteri
        (fun i _ ->
          if !found = None && b.Abonn_prop.Bounds.lower.(i) > 0.01 then
            found := Some (Affine.relu_index affine ~layer:l ~idx:i))
        b.Abonn_prop.Bounds.lower)
    outcome.Outcome.pre_bounds;
  match !found with
  | None -> Alcotest.fail "no stable-active neuron"
  | Some relu ->
    let gamma = Split.extend [] ~relu ~phase:Split.Inactive in
    let warm, state' = Lp_verifier.run_warm problem gamma in
    Alcotest.(check bool) "vacuous" true warm.Outcome.infeasible;
    Alcotest.(check bool) "no state" true (state' = None)

(* Threading parent state down a phase-matched path: warm bounds may
   tighten (parent LP rows clamp the child's DeepPoly pre-bounds) but can
   never be looser than cold, and stay sound against the in-region probe. *)
let test_warm_stateful_sound_and_no_looser () =
  Lp_verifier.clear_warm_cache ();
  for seed = 10 to 14 do
    let problem = random_problem ~seed ~dims:[ 2; 6; 2 ] ~eps:0.4 () in
    let rng = Rng.create (2000 + seed) in
    let x = Region.sample rng problem.Problem.region in
    let depth = Stdlib.min 4 (Problem.num_relus problem) in
    let margin = Problem.concrete_margin problem x in
    let state = ref None in
    List.iter
      (fun gamma ->
        let cold = Lp_verifier.run problem gamma in
        let warm, state' = Lp_verifier.run_warm ?state:!state problem gamma in
        state := state';
        Alcotest.(check bool)
          (Printf.sprintf "phat no looser (seed %d)" seed)
          true
          (warm.Outcome.phat >= cold.Outcome.phat -. 1e-9);
        if
          Array.length warm.Outcome.row_lower
          = Array.length cold.Outcome.row_lower
        then
          Array.iteri
            (fun r v ->
              Alcotest.(check bool) "row no looser" true
                (v >= cold.Outcome.row_lower.(r) -. 1e-9))
            warm.Outcome.row_lower;
        Alcotest.(check bool)
          (Printf.sprintf "sound at probe (seed %d)" seed)
          true
          (warm.Outcome.infeasible || warm.Outcome.phat <= margin +. 1e-7))
      (gammas_of_path (phase_path problem x depth))
  done

(* Stateful warm calls along a path must actually replay cached bases:
   every non-root node is a cache hit, with matching counters and one
   [lp_warm] event per call whose payload obeys the fallback contract
   ([""] iff hit, ["no-parent"] at the root). *)
let test_warm_cache_hits_and_events () =
  Lp_verifier.clear_warm_cache ();
  let problem = random_problem ~seed:3 ~dims:[ 2; 6; 2 ] ~eps:0.4 () in
  let rng = Rng.create 77 in
  let x = Region.sample rng problem.Problem.region in
  let depth = Stdlib.min 4 (Problem.num_relus problem) in
  let gammas = gammas_of_path (phase_path problem x depth) in
  with_metrics (fun () ->
      let sink, events = Sink.memory () in
      Obs.with_sink sink (fun () ->
          let state = ref None in
          List.iter
            (fun gamma ->
              let _, state' = Lp_verifier.run_warm ?state:!state problem gamma in
              state := state')
            gammas);
      let non_root = List.length gammas - 1 in
      Alcotest.(check int) "every non-root call hits" non_root
        (counter "lp.warm.hits");
      Alcotest.(check int) "no degraded fallbacks" 0 (counter "lp.warm.fallbacks");
      Alcotest.(check bool) "cache populated" true
        (Lp_verifier.warm_cache_size () > 0);
      let warm_events =
        List.filter_map
          (fun e ->
            match e.Event.event with
            | Event.Lp_warm { hit; fallback; pivots; _ } ->
              Some (hit, fallback, pivots)
            | _ -> None)
          (events ())
      in
      Alcotest.(check int) "one lp_warm event per call" (List.length gammas)
        (List.length warm_events);
      (match warm_events with
       | (hit0, fb0, _) :: rest ->
         Alcotest.(check bool) "root is not a hit" false hit0;
         Alcotest.(check string) "root has no parent" "no-parent" fb0;
         List.iter
           (fun (hit, fb, pivots) ->
             Alcotest.(check bool) "non-root hits" true hit;
             Alcotest.(check string) "hit payload is empty" "" fb;
             Alcotest.(check bool) "pivot count sane" true (pivots >= 0))
           rest
       | [] -> Alcotest.fail "no lp_warm events");
      (* every lp_warm annotates the lp bound_computed just before it *)
      let rec pairs = function
        | prev :: ({ Event.event = Event.Lp_warm _; _ } as cur) :: rest ->
          (match prev.Event.event with
           | Event.Bound_computed b ->
             Alcotest.(check string) "annotates the lp appver" "lp" b.appver
           | _ -> Alcotest.fail "lp_warm not preceded by bound_computed");
          pairs (cur :: rest)
        | _ :: rest -> pairs rest
        | [] -> ()
      in
      pairs (events ()))

(* [--no-lp-warm]: the warm entry point is bit-for-bit the cold path. *)
let test_disabled_is_cold_path () =
  for seed = 20 to 23 do
    let problem = random_problem ~seed ~eps:0.4 () in
    Lp_verifier.with_warm_enabled false (fun () ->
        let cold = Lp_verifier.run problem [] in
        let warm, state' = Lp_verifier.run_warm problem [] in
        Alcotest.(check bool) "no state" true (state' = None);
        Alcotest.(check bool)
          (Printf.sprintf "identical phat (seed %d)" seed)
          true
          (cold.Outcome.phat = warm.Outcome.phat);
        Alcotest.(check bool) "identical rows" true
          (cold.Outcome.row_lower = warm.Outcome.row_lower);
        Alcotest.(check bool) "identical candidate" true
          (cold.Outcome.candidate = warm.Outcome.candidate))
  done

(* --- Boxlp basis round-trips and fallbacks --- *)

(* min -x0-x1 over [0,2]^2 with x0+x1 <= 3: optimum -3, one basic var. *)
let base_c = [| -1.0; -1.0 |]
let base_lo = [| 0.0; 0.0 |]
let base_hi = [| 2.0; 2.0 |]
let base_rows = [ { Boxlp.coefs = [ (0, 1.0); (1, 1.0) ]; sense = Boxlp.Le; rhs = 3.0 } ]

let solved_base () =
  let sol, ses =
    Boxlp.solve_session ~c:base_c ~lo:base_lo ~hi:base_hi ~rows:base_rows ()
  in
  Alcotest.(check bool) "base optimal" true (sol.Boxlp.status = Boxlp.Optimal);
  let ses = Option.get ses in
  match Boxlp.basis_of_session ses with
  | None -> Alcotest.fail "expected exportable basis"
  | Some from -> (sol, from)

let test_basis_roundtrip_zero_pivots () =
  let sol, from = solved_base () in
  match
    Boxlp.solve_warm ~from ~c:base_c ~lo:base_lo ~hi:base_hi ~rows:base_rows ()
  with
  | Boxlp.Warm_ok { sol = wsol; pivots; session } ->
    Alcotest.(check bool) "optimal" true (wsol.Boxlp.status = Boxlp.Optimal);
    Alcotest.(check int) "zero pivots" 0 pivots;
    check_float 1e-9 "same objective" sol.Boxlp.objective wsol.Boxlp.objective;
    Alcotest.(check bool) "live session" true (session <> None)
  | Boxlp.Warm_fallback r -> Alcotest.failf "unexpected fallback: %s" r

(* Raising the lower bounds leaves the stored basis primal-infeasible
   (the basic variable replays below its new floor, and the slack's
   implied bounds pin it so no bound flip can compensate): the dual
   simplex must repair it (>= 1 pivot) and land on the new optimum. *)
let test_warm_repairs_bound_shift () =
  let _, from = solved_base () in
  let lo' = [| 1.5; 1.5 |] in
  match Boxlp.solve_warm ~from ~c:base_c ~lo:lo' ~hi:base_hi ~rows:base_rows () with
  | Boxlp.Warm_ok { sol; pivots; _ } ->
    Alcotest.(check bool) "optimal" true (sol.Boxlp.status = Boxlp.Optimal);
    check_float 1e-9 "repaired optimum" (-3.0) sol.Boxlp.objective;
    Alcotest.(check bool) "dual pivots spent" true (pivots >= 1)
  | Boxlp.Warm_fallback r -> Alcotest.failf "unexpected fallback: %s" r

let test_warm_pivot_cap_falls_back () =
  let _, from = solved_base () in
  let lo' = [| 1.5; 1.5 |] in
  match
    Boxlp.solve_warm ~pivot_cap:0 ~from ~c:base_c ~lo:lo' ~hi:base_hi
      ~rows:base_rows ()
  with
  | Boxlp.Warm_fallback "pivot-cap" -> ()
  | Boxlp.Warm_fallback r -> Alcotest.failf "wrong fallback reason: %s" r
  | Boxlp.Warm_ok _ -> Alcotest.fail "expected pivot-cap fallback"

let test_warm_shape_mismatch_falls_back () =
  let _, from = solved_base () in
  (* one variable too many: same rows, different n *)
  match
    Boxlp.solve_warm ~from ~c:[| -1.0; -1.0; 0.0 |] ~lo:[| 0.0; 0.0; 0.0 |]
      ~hi:[| 2.0; 2.0; 1.0 |] ~rows:base_rows ()
  with
  | Boxlp.Warm_fallback "shape-mismatch" -> ()
  | Boxlp.Warm_fallback r -> Alcotest.failf "wrong fallback reason: %s" r
  | Boxlp.Warm_ok _ -> Alcotest.fail "expected shape-mismatch fallback"

let test_warm_corrupt_basis_falls_back () =
  let _, from = solved_base () in
  (* out-of-range basis entry must degrade, never raise *)
  let corrupt = { from with Boxlp.w_basis = [| 99 |] } in
  (match
     Boxlp.solve_warm ~from:corrupt ~c:base_c ~lo:base_lo ~hi:base_hi
       ~rows:base_rows ()
   with
   | Boxlp.Warm_fallback r ->
     Alcotest.(check bool) "reason named" true (String.length r > 0)
   | Boxlp.Warm_ok _ -> Alcotest.fail "expected fallback on corrupt basis");
  (* an all-Basic status vector is structurally inconsistent too *)
  let inconsistent =
    { from with Boxlp.w_status = Array.map (fun _ -> Boxlp.Basic) from.Boxlp.w_status }
  in
  match
    Boxlp.solve_warm ~from:inconsistent ~c:base_c ~lo:base_lo ~hi:base_hi
      ~rows:base_rows ()
  with
  | Boxlp.Warm_fallback _ -> ()
  | Boxlp.Warm_ok { sol; _ } ->
    (* tolerated only if the repair still found the true optimum *)
    Alcotest.(check bool) "optimal" true (sol.Boxlp.status = Boxlp.Optimal);
    check_float 1e-9 "objective" (-3.0) sol.Boxlp.objective

(* Round-trip property on random boxed LPs: an exported basis replayed
   against its own problem must reproduce the optimum (never fall back,
   never drift). *)
let prop_roundtrip_random =
  QCheck.Test.make ~name:"warm round-trip reproduces the optimum" ~count:100
    (QCheck.int_range 0 100_000) (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 4 in
      let m = 1 + Rng.int rng 3 in
      let lo = Array.init n (fun _ -> Rng.range rng (-2.0) 0.0) in
      let hi = Array.init n (fun i -> lo.(i) +. Rng.range rng 0.0 3.0) in
      let c = Array.init n (fun _ -> Rng.range rng (-1.0) 1.0) in
      let rows =
        List.init m (fun _ ->
            let coefs = List.init n (fun j -> (j, Rng.range rng (-1.0) 1.0)) in
            let sense =
              match Rng.int rng 3 with 0 -> Boxlp.Le | 1 -> Boxlp.Ge | _ -> Boxlp.Eq
            in
            { Boxlp.coefs; sense; rhs = Rng.range rng (-1.0) 1.0 })
      in
      let sol, ses = Boxlp.solve_session ~c ~lo ~hi ~rows () in
      match ses with
      | None -> true (* infeasible / unbounded: nothing to round-trip *)
      | Some ses ->
        (match Boxlp.basis_of_session ses with
         | None -> true (* artificial still basic: not exportable *)
         | Some from ->
           (match Boxlp.solve_warm ~from ~c ~lo ~hi ~rows () with
            | Boxlp.Warm_ok { sol = wsol; _ } ->
              wsol.Boxlp.status = Boxlp.Optimal
              && Float.abs (wsol.Boxlp.objective -. sol.Boxlp.objective) < 1e-6
            | Boxlp.Warm_fallback _ -> false)))

(* --- bounded-pivot termination (Pivot_limit) --- *)

(* Starving the solvers of pivots must surface as a [Pivot_limit] result,
   never an exception (regression: this used to [failwith]). *)
let test_boxlp_pivot_limit () =
  let sol =
    Boxlp.solve ~max_iters:0 ~c:base_c ~lo:base_lo ~hi:base_hi ~rows:base_rows ()
  in
  Alcotest.(check bool) "pivot limit" true (sol.Boxlp.status = Boxlp.Pivot_limit)

let test_simplex_pivot_limit () =
  (* the classic degenerate instance from test_lp.ml, starved of pivots *)
  let a =
    Matrix.of_rows
      [| [| 0.5; -5.5; -2.5; 9.0; 1.0; 0.0; 0.0 |];
         [| 0.5; -1.5; -0.5; 1.0; 0.0; 1.0; 0.0 |];
         [| 1.0; 0.0; 0.0; 0.0; 0.0; 0.0; 1.0 |]
      |]
  in
  let c = [| -10.0; 57.0; 9.0; 24.0; 0.0; 0.0; 0.0 |] in
  let sol = Simplex.solve ~max_iters:1 ~c ~a ~b:[| 0.0; 0.0; 1.0 |] () in
  Alcotest.(check bool) "pivot limit" true (sol.Simplex.status = Simplex.Pivot_limit);
  (* with the default budget the same instance still solves *)
  let sol = Simplex.solve ~c ~a ~b:[| 0.0; 0.0; 1.0 |] () in
  Alcotest.(check bool) "solves with budget" true (sol.Simplex.status = Simplex.Optimal)

let test_lp_problem_pivot_limit () =
  (* boxed path *)
  let lp = Lp.create () in
  let x = Lp.add_var ~lo:0.0 ~hi:2.0 lp in
  let y = Lp.add_var ~lo:0.0 ~hi:2.0 lp in
  Lp.add_constraint lp [ (1.0, x); (1.0, y) ] Lp.Le 3.0;
  Lp.set_objective lp [ (-1.0, x); (-1.0, y) ];
  Alcotest.(check bool) "boxed pivot limit" true
    (Lp.solve ~max_iters:0 lp = Lp.Pivot_limit);
  (* standard-form path (forced by a free variable) *)
  let lp = Lp.create () in
  let x = Lp.add_var lp in
  Lp.add_constraint lp [ (1.0, x) ] Lp.Eq (-7.0);
  Lp.set_objective lp [ (1.0, x) ];
  Alcotest.(check bool) "standard pivot limit" true
    (Lp.solve ~max_iters:0 lp = Lp.Pivot_limit)

(* --- engine integration --- *)

let verdicts_agree name a b =
  match (a, b) with
  | Verdict.Verified, Verdict.Verified -> ()
  | Verdict.Falsified _, Verdict.Falsified _ -> ()
  | _ ->
    Alcotest.failf "%s: verdicts disagree (%s vs %s)" name (Verdict.to_string a)
      (Verdict.to_string b)

let check_witness problem = function
  | Verdict.Falsified x ->
    Alcotest.(check bool) "witness validates" true
      (Problem.is_counterexample problem x)
  | Verdict.Verified | Verdict.Timeout -> ()

(* Warm on, warm off and [--domains 4] must reach the same verdict when
   BaB runs on the LP AppVer. *)
let test_engine_warm_cold_domains_agree () =
  List.iter
    (fun seed ->
      let problem = random_problem ~seed ~dims:[ 2; 6; 2 ] ~eps:0.35 () in
      let budget () = Budget.of_calls 2_000 in
      Lp_verifier.clear_warm_cache ();
      let vwarm =
        (Bfs.verify ~appver:Lp_verifier.appver ~budget:(budget ()) ~domains:1
           problem)
          .Result.verdict
      in
      let vcold =
        Lp_verifier.with_warm_enabled false (fun () ->
            (Bfs.verify ~appver:Lp_verifier.appver ~budget:(budget ()) ~domains:1
               problem)
              .Result.verdict)
      in
      Lp_verifier.clear_warm_cache ();
      let vpar =
        (Bfs.verify ~appver:Lp_verifier.appver ~budget:(budget ()) ~domains:4
           problem)
          .Result.verdict
      in
      verdicts_agree (Printf.sprintf "warm vs cold (seed %d)" seed) vwarm vcold;
      verdicts_agree (Printf.sprintf "seq vs domains:4 (seed %d)" seed) vwarm vpar;
      List.iter (check_witness problem) [ vwarm; vcold; vpar ])
    [ 0; 3; 7 ]

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [ ( "lp_warm.differential",
      [ Alcotest.test_case "stateless matches cold" `Quick
          test_warm_stateless_matches_cold;
        Alcotest.test_case "infeasible split vacuous" `Quick
          test_warm_infeasible_split_vacuous;
        Alcotest.test_case "stateful sound, no looser" `Quick
          test_warm_stateful_sound_and_no_looser;
        Alcotest.test_case "cache hits and events" `Quick
          test_warm_cache_hits_and_events;
        Alcotest.test_case "disabled is cold path" `Quick
          test_disabled_is_cold_path
      ] );
    ( "lp_warm.boxlp",
      [ Alcotest.test_case "basis round-trip, zero pivots" `Quick
          test_basis_roundtrip_zero_pivots;
        Alcotest.test_case "repairs bound shift" `Quick
          test_warm_repairs_bound_shift;
        Alcotest.test_case "pivot cap falls back" `Quick
          test_warm_pivot_cap_falls_back;
        Alcotest.test_case "shape mismatch falls back" `Quick
          test_warm_shape_mismatch_falls_back;
        Alcotest.test_case "corrupt basis falls back" `Quick
          test_warm_corrupt_basis_falls_back;
        qtest prop_roundtrip_random
      ] );
    ( "lp_warm.pivot_limit",
      [ Alcotest.test_case "boxlp" `Quick test_boxlp_pivot_limit;
        Alcotest.test_case "simplex" `Quick test_simplex_pivot_limit;
        Alcotest.test_case "lp_problem" `Quick test_lp_problem_pivot_limit
      ] );
    ( "lp_warm.engine",
      [ Alcotest.test_case "warm/cold/domains verdicts agree" `Slow
          test_engine_warm_cold_domains_agree
      ] )
  ]
