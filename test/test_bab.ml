(* Tests for Abonn_bab: branching heuristics, exact leaf resolution, and
   the BFS / best-first engines — including soundness cross-checks of
   verdicts against sampling and against each other. *)

module Matrix = Abonn_tensor.Matrix
module Rng = Abonn_util.Rng
module Budget = Abonn_util.Budget
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Split = Abonn_spec.Split
module Verdict = Abonn_spec.Verdict
module Problem = Abonn_spec.Problem
module Network = Abonn_nn.Network
module Affine = Abonn_nn.Affine
module Builder = Abonn_nn.Builder
module Bounds = Abonn_prop.Bounds
module Deeppoly = Abonn_prop.Deeppoly
module Branching = Abonn_bab.Branching
module Exact = Abonn_bab.Exact
module Bfs = Abonn_bab.Bfs
module Bestfirst = Abonn_bab.Bestfirst
module Result = Abonn_bab.Result

let random_problem ?(seed = 0) ?(dims = [ 2; 6; 2 ]) ?(eps = 0.3) () =
  let rng = Rng.create seed in
  let net = Builder.mlp rng ~dims in
  let in_dim = List.hd dims in
  let center = Array.init in_dim (fun _ -> Rng.range rng (-0.5) 0.5) in
  let region = Region.linf_ball ~center ~eps () in
  let out_dim = List.nth dims (List.length dims - 1) in
  let label = Network.predict net center in
  let property = Property.robustness ~num_classes:out_dim ~label in
  Problem.create ~network:net ~region ~property ()

(* --- Branching --- *)

let node_bounds problem gamma =
  match Deeppoly.hidden_bounds problem gamma with
  | Some b -> b
  | None -> Alcotest.fail "unexpected infeasibility"

let test_heuristics_pick_unstable_unconstrained () =
  let problem = random_problem ~seed:3 ~dims:[ 3; 8; 8; 2 ] ~eps:0.4 () in
  let pre_bounds = node_bounds problem [] in
  List.iter
    (fun (h : Branching.t) ->
      let choose = h.Branching.prepare problem in
      match choose ~gamma:[] ~pre_bounds with
      | None -> Alcotest.fail (h.Branching.name ^ ": expected a candidate")
      | Some { Branching.relu; _ } ->
        let layer, idx = Affine.relu_position problem.Problem.affine relu in
        Alcotest.(check bool)
          (h.Branching.name ^ " picks unstable")
          true
          (Bounds.relu_state_of pre_bounds.(layer) idx = Bounds.Unstable))
    Branching.all

let test_heuristics_respect_gamma () =
  let problem = random_problem ~seed:3 ~dims:[ 3; 8; 8; 2 ] ~eps:0.4 () in
  let choose = Branching.default.Branching.prepare problem in
  let pre_bounds = node_bounds problem [] in
  match choose ~gamma:[] ~pre_bounds with
  | None -> Alcotest.fail "expected candidate"
  | Some { Branching.relu = first; _ } ->
    let gamma = Split.extend [] ~relu:first ~phase:Split.Active in
    let pre_bounds' = node_bounds problem gamma in
    (match choose ~gamma ~pre_bounds:pre_bounds' with
     | None -> ()
     | Some { Branching.relu = second; _ } ->
       Alcotest.(check bool) "does not repick constrained relu" true (second <> first))

let test_heuristics_none_when_all_stable () =
  (* Tiny epsilon keeps every neuron stable: nothing to split. *)
  let problem = random_problem ~seed:7 ~eps:1e-9 () in
  let pre_bounds = node_bounds problem [] in
  List.iter
    (fun (h : Branching.t) ->
      let choose = h.Branching.prepare problem in
      Alcotest.(check bool) (h.Branching.name ^ " returns None") true
        (choose ~gamma:[] ~pre_bounds = None))
    Branching.all

let test_branching_registry () =
  Alcotest.(check int) "four heuristics" 4 (List.length Branching.all);
  Alcotest.(check bool) "default is deepsplit" true
    (Branching.default.Branching.name = "deepsplit");
  Alcotest.(check bool) "find fsb" true (Branching.find "fsb" <> None);
  Alcotest.(check bool) "find unknown" true (Branching.find "nope" = None)

(* --- Exact --- *)

let test_exact_resolves_linear_leaf () =
  (* Network with no hidden relu instability (eps tiny): the root itself
     is a fully-stabilised "leaf". *)
  let w = Matrix.of_rows [| [| 1.0; -2.0 |] |] in
  let affine = Affine.of_weights [ (w, [| 0.25 |]) ] in
  let region = Region.create ~lower:[| -1.0; -1.0 |] ~upper:[| 1.0; 1.0 |] in
  (* Violated: min margin is -2.75. *)
  let p_violated =
    Problem.of_affine ~affine ~region ~property:(Property.single [| 1.0 |] 0.0) ()
  in
  (match Exact.resolve p_violated [] with
   | `Falsified x ->
     Alcotest.(check bool) "real cex" true (Problem.is_counterexample p_violated x)
   | `Verified -> Alcotest.fail "expected falsification");
  (* Verified: offset shifts the margin positive everywhere. *)
  let p_verified =
    Problem.of_affine ~affine ~region ~property:(Property.single [| 1.0 |] 4.0) ()
  in
  Alcotest.(check bool) "verified" true (Exact.resolve p_verified [] = `Verified)

(* --- BFS engine --- *)

let test_bfs_verifies_easy () =
  let problem = random_problem ~seed:11 ~eps:1e-6 () in
  let r = Bfs.verify problem in
  Alcotest.(check bool) "verified" true (Verdict.is_verified r.Result.verdict);
  Alcotest.(check int) "single call" 1 r.Result.stats.Result.appver_calls

let test_bfs_falsifies_large_eps () =
  (* A huge ball certainly crosses the decision boundary. *)
  let problem = random_problem ~seed:12 ~eps:10.0 () in
  let r = Bfs.verify ~budget:(Budget.of_calls 2000) problem in
  match r.Result.verdict with
  | Verdict.Falsified x ->
    Alcotest.(check bool) "cex is genuine" true (Problem.is_counterexample problem x)
  | Verdict.Verified | Verdict.Timeout -> Alcotest.fail "expected falsification"

let test_bfs_timeout_on_tiny_budget () =
  (* eps in the hard band with a 1-call budget must time out (unless the
     root alone decides, which these seeds avoid). *)
  let problem = random_problem ~seed:13 ~dims:[ 3; 8; 8; 2 ] ~eps:0.35 () in
  let r = Bfs.verify ~budget:(Budget.of_calls 1) problem in
  Alcotest.(check bool) "timeout or instantly solved" true
    (Verdict.is_timeout r.Result.verdict || r.Result.stats.Result.appver_calls <= 1)

let test_bfs_stats_consistent () =
  let problem = random_problem ~seed:14 ~dims:[ 2; 6; 2 ] ~eps:0.4 () in
  let r = Bfs.verify ~budget:(Budget.of_calls 500) problem in
  Alcotest.(check bool) "nodes odd (root + pairs)" true (r.Result.stats.Result.nodes mod 2 = 1);
  Alcotest.(check bool) "calls >= 1" true (r.Result.stats.Result.appver_calls >= 1);
  Alcotest.(check bool) "depth sane" true
    (r.Result.stats.Result.max_depth <= Problem.num_relus problem)

let test_bfs_verified_proves_all_samples () =
  (* Whenever BFS says Verified, no sampled point may violate. *)
  let checked = ref 0 in
  for seed = 20 to 29 do
    let problem = random_problem ~seed ~eps:0.15 () in
    let r = Bfs.verify ~budget:(Budget.of_calls 500) problem in
    if Verdict.is_verified r.Result.verdict then begin
      incr checked;
      let rng = Rng.create (seed * 7) in
      for _ = 1 to 100 do
        let x = Region.sample rng problem.Problem.region in
        Alcotest.(check bool) "no sampled violation" true
          (Problem.concrete_margin problem x > 0.0)
      done
    end
  done;
  Alcotest.(check bool) "some problems were verified" true (!checked > 0)

(* --- best-first engine --- *)

let test_bestfirst_agrees_with_bfs () =
  let falsified = ref 0 and verified = ref 0 in
  for seed = 30 to 44 do
    let problem = random_problem ~seed ~dims:[ 2; 6; 2 ] ~eps:0.35 () in
    let b1 = Bfs.verify ~budget:(Budget.of_calls 3000) problem in
    let b2 = Bestfirst.verify ~budget:(Budget.of_calls 3000) problem in
    match b1.Result.verdict, b2.Result.verdict with
    | Verdict.Timeout, _ | _, Verdict.Timeout -> ()
    | v1, v2 ->
      (match v1 with
       | Verdict.Verified -> incr verified
       | Verdict.Falsified _ -> incr falsified
       | Verdict.Timeout -> ());
      Alcotest.(check bool)
        (Printf.sprintf "same verdict class (seed %d)" seed)
        true
        (Verdict.is_verified v1 = Verdict.is_verified v2)
  done;
  Alcotest.(check bool) "both verdict classes exercised" true (!falsified > 0 && !verified > 0)

let test_bestfirst_cex_valid () =
  let problem = random_problem ~seed:12 ~eps:10.0 () in
  let r = Bestfirst.verify ~budget:(Budget.of_calls 2000) problem in
  match r.Result.verdict with
  | Verdict.Falsified x ->
    Alcotest.(check bool) "genuine" true (Problem.is_counterexample problem x)
  | Verdict.Verified | Verdict.Timeout -> Alcotest.fail "expected falsification"

let test_engines_with_all_heuristics () =
  (* Every branching heuristic must preserve verdicts (it only changes
     the order of work). *)
  let problem = random_problem ~seed:33 ~dims:[ 2; 6; 2 ] ~eps:0.3 () in
  let reference = Bfs.verify ~budget:(Budget.of_calls 3000) problem in
  match reference.Result.verdict with
  | Verdict.Timeout -> Alcotest.fail "reference run timed out; re-seed the test"
  | ref_verdict ->
    List.iter
      (fun h ->
        let r = Bfs.verify ~heuristic:h ~budget:(Budget.of_calls 3000) problem in
        match r.Result.verdict with
        | Verdict.Timeout -> () (* a weaker heuristic may simply be slower *)
        | v ->
          Alcotest.(check bool)
            (h.Branching.name ^ " same verdict")
            true
            (Verdict.is_verified v = Verdict.is_verified ref_verdict))
      Branching.all

let test_interval_appver_also_complete () =
  (* BaB over the looser IBP AppVer must still reach the same verdict,
     only with more splits. *)
  let problem = random_problem ~seed:35 ~dims:[ 2; 5; 2 ] ~eps:0.25 () in
  let dp = Bfs.verify ~budget:(Budget.of_calls 5000) problem in
  let ibp = Bfs.verify ~appver:Abonn_prop.Appver.interval ~budget:(Budget.of_calls 5000) problem in
  match dp.Result.verdict, ibp.Result.verdict with
  | Verdict.Timeout, _ | _, Verdict.Timeout -> ()
  | v1, v2 ->
    Alcotest.(check bool) "same verdict" true (Verdict.is_verified v1 = Verdict.is_verified v2);
    Alcotest.(check bool) "IBP needs at least as many calls" true
      (ibp.Result.stats.Result.appver_calls >= dp.Result.stats.Result.appver_calls)

let suite =
  [ ( "bab.branching",
      [ Alcotest.test_case "picks unstable" `Quick test_heuristics_pick_unstable_unconstrained;
        Alcotest.test_case "respects gamma" `Quick test_heuristics_respect_gamma;
        Alcotest.test_case "none when stable" `Quick test_heuristics_none_when_all_stable;
        Alcotest.test_case "registry" `Quick test_branching_registry
      ] );
    ( "bab.exact",
      [ Alcotest.test_case "resolves linear leaf" `Quick test_exact_resolves_linear_leaf ] );
    ( "bab.bfs",
      [ Alcotest.test_case "verifies easy" `Quick test_bfs_verifies_easy;
        Alcotest.test_case "falsifies large eps" `Quick test_bfs_falsifies_large_eps;
        Alcotest.test_case "timeout on tiny budget" `Quick test_bfs_timeout_on_tiny_budget;
        Alcotest.test_case "stats consistent" `Quick test_bfs_stats_consistent;
        Alcotest.test_case "verified implies no violations" `Quick test_bfs_verified_proves_all_samples
      ] );
    ( "bab.bestfirst",
      [ Alcotest.test_case "agrees with bfs" `Quick test_bestfirst_agrees_with_bfs;
        Alcotest.test_case "cex valid" `Quick test_bestfirst_cex_valid;
        Alcotest.test_case "all heuristics same verdict" `Quick test_engines_with_all_heuristics;
        Alcotest.test_case "IBP appver complete" `Quick test_interval_appver_also_complete
      ] )
  ]

(* --- Certificates --- *)

module Certificate = Abonn_bab.Certificate

let test_certificate_produced_and_checks () =
  let checked = ref 0 in
  for seed = 20 to 29 do
    let problem = random_problem ~seed ~eps:0.15 () in
    let result, cert = Bfs.verify_with_certificate ~budget:(Budget.of_calls 500) problem in
    match result.Result.verdict, cert with
    | Verdict.Verified, Some cert ->
      incr checked;
      Alcotest.(check bool) "at least one leaf" true (Certificate.num_leaves cert >= 1);
      (match Certificate.check problem cert with
       | Ok () -> ()
       | Error e ->
         Alcotest.fail (Format.asprintf "certificate rejected: %a" Certificate.pp_error e))
    | Verdict.Verified, None -> Alcotest.fail "verified without certificate"
    | (Verdict.Falsified _ | Verdict.Timeout), Some _ ->
      Alcotest.fail "certificate for non-verified verdict"
    | (Verdict.Falsified _ | Verdict.Timeout), None -> ()
  done;
  Alcotest.(check bool) "some certificates checked" true (!checked >= 3)

let test_certificate_detects_coverage_gap () =
  let problem = random_problem ~seed:24 ~eps:0.15 () in
  let _, cert = Bfs.verify_with_certificate ~budget:(Budget.of_calls 500) problem in
  match cert with
  | None -> Alcotest.fail "expected verified problem; re-seed"
  | Some cert ->
    if Certificate.num_leaves cert < 2 then Alcotest.fail "expected a split tree; re-seed"
    else begin
      (* drop one leaf: the cover check must fail *)
      let broken = { cert with Certificate.leaves = List.tl cert.Certificate.leaves } in
      match Certificate.check problem broken with
      | Ok () -> Alcotest.fail "gap not detected"
      | Error (Certificate.Coverage_gap _ | Certificate.Duplicate_or_overlap _) -> ()
      | Error (Certificate.Leaf_not_proved _ as e) ->
        Alcotest.fail (Format.asprintf "wrong error: %a" Certificate.pp_error e)
    end

let test_certificate_detects_bogus_leaf () =
  let problem = random_problem ~seed:24 ~eps:0.15 () in
  let _, cert = Bfs.verify_with_certificate ~budget:(Budget.of_calls 500) problem in
  match cert with
  | None -> Alcotest.fail "expected verified problem; re-seed"
  | Some cert ->
    (* replace all leaves by the root pretending it was proved: replay
       must reject it (the root of these problems is undecided) *)
    let bogus =
      { cert with
        Certificate.leaves = [ { Certificate.gamma = []; phat = 1.0; by_exact = false } ] }
    in
    (match Certificate.check problem bogus with
     | Error (Certificate.Leaf_not_proved _) -> ()
     | Ok () -> Alcotest.fail "bogus leaf accepted"
     | Error e -> Alcotest.fail (Format.asprintf "wrong error: %a" Certificate.pp_error e))

(* --- Input splitting --- *)

module Inputsplit = Abonn_bab.Inputsplit

let test_inputsplit_agrees_with_relu_split () =
  let solved = ref 0 in
  for seed = 30 to 41 do
    let problem = random_problem ~seed ~dims:[ 2; 6; 2 ] ~eps:0.35 () in
    let relu_split = Bfs.verify ~budget:(Budget.of_calls 3000) problem in
    let input_split = Inputsplit.verify ~budget:(Budget.of_calls 3000) problem in
    match relu_split.Result.verdict, input_split.Result.verdict with
    | Verdict.Timeout, _ | _, Verdict.Timeout -> ()
    | v1, v2 ->
      incr solved;
      Alcotest.(check bool)
        (Printf.sprintf "verdict agreement (seed %d)" seed)
        true
        (Verdict.is_verified v1 = Verdict.is_verified v2)
  done;
  Alcotest.(check bool) "solved several" true (!solved >= 5)

let test_inputsplit_cex_valid () =
  let problem = random_problem ~seed:12 ~eps:10.0 () in
  let r = Inputsplit.verify ~budget:(Budget.of_calls 2000) problem in
  match r.Result.verdict with
  | Verdict.Falsified x ->
    Alcotest.(check bool) "genuine" true (Abonn_spec.Problem.is_counterexample problem x)
  | Verdict.Verified | Verdict.Timeout -> Alcotest.fail "expected falsification"

let test_inputsplit_strategies_agree () =
  let problem = random_problem ~seed:33 ~dims:[ 2; 6; 2 ] ~eps:0.3 () in
  let w = Inputsplit.verify ~strategy:Inputsplit.Widest ~budget:(Budget.of_calls 3000) problem in
  let g =
    Inputsplit.verify ~strategy:Inputsplit.Gradient_weighted ~budget:(Budget.of_calls 3000)
      problem
  in
  match w.Result.verdict, g.Result.verdict with
  | Verdict.Timeout, _ | _, Verdict.Timeout -> ()
  | v1, v2 ->
    Alcotest.(check bool) "strategies agree" true
      (Verdict.is_verified v1 = Verdict.is_verified v2)

let test_inputsplit_verifies_easy () =
  let problem = random_problem ~seed:11 ~eps:1e-6 () in
  let r = Inputsplit.verify problem in
  Alcotest.(check bool) "verified" true (Verdict.is_verified r.Result.verdict);
  Alcotest.(check int) "single call" 1 r.Result.stats.Result.appver_calls

let extra_suite =
  [ ( "bab.certificate",
      [ Alcotest.test_case "produced and checks" `Quick test_certificate_produced_and_checks;
        Alcotest.test_case "detects coverage gap" `Quick test_certificate_detects_coverage_gap;
        Alcotest.test_case "detects bogus leaf" `Quick test_certificate_detects_bogus_leaf
      ] );
    ( "bab.inputsplit",
      [ Alcotest.test_case "agrees with relu split" `Quick test_inputsplit_agrees_with_relu_split;
        Alcotest.test_case "cex valid" `Quick test_inputsplit_cex_valid;
        Alcotest.test_case "strategies agree" `Quick test_inputsplit_strategies_agree;
        Alcotest.test_case "verifies easy" `Quick test_inputsplit_verifies_easy
      ] )
  ]

let suite = suite @ extra_suite

(* Regression: a margin that touches 0 at a single point (the origin of a
   zero-bias network) must never let input splitting claim Verified — the
   unsound point-pruning path returned Verified here before the fix. *)
let test_inputsplit_tie_point_not_verified () =
  let problem = random_problem ~seed:34 ~dims:[ 2; 6; 2 ] ~eps:0.35 () in
  (* ground truth: ReLU-split BaB finds the tie as a counterexample *)
  let bfs = Bfs.verify ~budget:(Budget.of_calls 3000) problem in
  Alcotest.(check bool) "baseline falsifies the tie" true
    (Verdict.is_falsified bfs.Result.verdict);
  let r = Inputsplit.verify ~budget:(Budget.of_calls 3000) problem in
  Alcotest.(check bool) "input splitting must not claim Verified" true
    (not (Verdict.is_verified r.Result.verdict))

let test_certificate_detects_duplicate_leaf () =
  let problem = random_problem ~seed:24 ~eps:0.15 () in
  let _, cert = Bfs.verify_with_certificate ~budget:(Budget.of_calls 500) problem in
  match cert with
  | None -> Alcotest.fail "expected verified problem; re-seed"
  | Some cert ->
    (match cert.Certificate.leaves with
     | first :: _ ->
       let broken = { cert with Certificate.leaves = first :: cert.Certificate.leaves } in
       (match Certificate.check problem broken with
        | Error (Certificate.Duplicate_or_overlap _) -> ()
        | Ok () -> Alcotest.fail "duplicate leaf accepted"
        | Error e -> Alcotest.fail (Format.asprintf "wrong error: %a" Certificate.pp_error e))
     | [] -> Alcotest.fail "empty certificate")

let regression_suite =
  ( "bab.regressions",
    [ Alcotest.test_case "tie point not verified" `Quick test_inputsplit_tie_point_not_verified;
      Alcotest.test_case "duplicate leaf detected" `Quick test_certificate_detects_duplicate_leaf
    ] )

let suite = suite @ [ regression_suite ]

(* --- exhaustive enumeration & input-split refinement --- *)

module Outcome = Abonn_prop.Outcome

(* Enumerate every ReLU phase cell with Exact.resolve.  On small nets
   this is ground truth: it must agree with dense sampling and with the
   BFS verdict (up to margin ties, which either side may call). *)
let enumerate_exact problem =
  let k = Problem.num_relus problem in
  let cex = ref None in
  (try
     for mask = 0 to (1 lsl k) - 1 do
       let gamma = ref [] in
       for relu = k - 1 downto 0 do
         let phase = if mask land (1 lsl relu) <> 0 then Split.Active else Split.Inactive in
         gamma := { Split.relu; phase } :: !gamma
       done;
       match Exact.resolve problem !gamma with
       | `Verified -> ()
       | `Falsified x ->
         cex := Some x;
         raise Exit
     done
   with Exit -> ());
  !cex

let test_exact_enumeration_matches_sampling () =
  let checked = ref 0 in
  for seed = 0 to 11 do
    let eps = 0.1 +. (0.12 *. float_of_int (seed mod 4)) in
    let problem = random_problem ~seed ~dims:[ 2; 4; 2 ] ~eps () in
    if Problem.num_relus problem <= 6 then begin
      incr checked;
      let truth = enumerate_exact problem in
      (* the enumeration's own witness must be genuine *)
      (match truth with
       | Some x ->
         Alcotest.(check bool)
           (Printf.sprintf "seed %d: enumeration witness validates" seed)
           true (Problem.is_counterexample problem x)
       | None -> ());
      (* dense sampling cannot beat ground truth *)
      let rng = Rng.create (300 + seed) in
      for _ = 1 to 400 do
        let x = Region.sample rng problem.Problem.region in
        let m = Problem.concrete_margin problem x in
        if m < -1e-6 && truth = None then
          Alcotest.failf "seed %d: enumeration verified but sample has margin %.9g" seed m
      done;
      (* and the BFS verdict must agree up to ties *)
      let r = Bfs.verify ~budget:(Budget.of_calls 2000) problem in
      (match r.Result.verdict, truth with
       | Verdict.Timeout, _ -> ()
       | Verdict.Verified, Some x ->
         let m = Problem.concrete_margin problem x in
         if m < -1e-6 then
           Alcotest.failf "seed %d: bfs Verified, enumeration margin %.9g" seed m
       | Verdict.Falsified x, None ->
         let m = Problem.concrete_margin problem x in
         if m < -1e-6 then
           Alcotest.failf "seed %d: bfs Falsified (margin %.9g), enumeration Verified"
             seed m
       | Verdict.Verified, None | Verdict.Falsified _, Some _ -> ())
    end
  done;
  Alcotest.(check bool) "enumerated at least one instance" true (!checked > 0)

(* Bisecting the input region can only tighten the certified bound:
   the min over the two halves is at least the parent's bound. *)
let test_inputsplit_refines_bounds_monotonically () =
  for seed = 0 to 9 do
    let problem = random_problem ~seed ~dims:[ 2; 6; 2 ] ~eps:0.4 () in
    let phat p =
      let o = Abonn_prop.Deeppoly.run p [] in
      if o.Outcome.infeasible then Float.infinity else o.Outcome.phat
    in
    let parent = phat problem in
    let region = problem.Problem.region in
    let with_box ~lower ~upper =
      Problem.create ~network:problem.Problem.network
        ~region:(Region.create ~lower ~upper) ~property:problem.Problem.property ()
    in
    let dims = Array.length region.Region.lower in
    for d = 0 to dims - 1 do
      let mid = 0.5 *. (region.Region.lower.(d) +. region.Region.upper.(d)) in
      let half bound_side =
        let lower = Array.copy region.Region.lower in
        let upper = Array.copy region.Region.upper in
        (match bound_side with
         | `Lo -> upper.(d) <- mid
         | `Hi -> lower.(d) <- mid);
        with_box ~lower ~upper
      in
      let refined = Float.min (phat (half `Lo)) (phat (half `Hi)) in
      if refined < parent -. 1e-9 then
        Alcotest.failf "seed %d dim %d: bisection loosened bound %.12g -> %.12g" seed d
          parent refined
    done;
    (* a second bisection level on dimension 0 refines again *)
    let mid = 0.5 *. (region.Region.lower.(0) +. region.Region.upper.(0)) in
    let lo_upper = Array.copy region.Region.upper in
    lo_upper.(0) <- mid;
    let parent1 = phat (with_box ~lower:(Array.copy region.Region.lower) ~upper:lo_upper) in
    let quarter_upper = Array.copy lo_upper in
    quarter_upper.(0) <- 0.5 *. (region.Region.lower.(0) +. mid);
    let quarter = with_box ~lower:(Array.copy region.Region.lower) ~upper:quarter_upper in
    if phat quarter < parent1 -. 1e-9 then
      Alcotest.failf "seed %d: second-level bisection loosened bound" seed
  done

let enumeration_suite =
  ( "bab.exhaustive",
    [ Alcotest.test_case "exact enumeration vs sampling and bfs" `Quick
        test_exact_enumeration_matches_sampling;
      Alcotest.test_case "input bisection refines bounds monotonically" `Quick
        test_inputsplit_refines_bounds_monotonically
    ] )

let suite = suite @ [ enumeration_suite ]

(* --- easy/hard triage (DESIGN.md §13) --- *)

module Appver = Abonn_prop.Appver
module Lp_verifier = Abonn_lp.Lp_verifier
module Metrics = Abonn_obs.Metrics

let counter name =
  match List.assoc_opt name (Metrics.snapshot ()).Metrics.counters with
  | Some n -> n
  | None -> 0

let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.reset ();
      Metrics.set_enabled false)
    f

let leaf_gamma k mask =
  let gamma = ref [] in
  for relu = k - 1 downto 0 do
    let phase = if mask land (1 lsl relu) <> 0 then Split.Active else Split.Inactive in
    gamma := { Split.relu; phase } :: !gamma
  done;
  !gamma

(* Exhaustive over every phase cell of small nets: the triaged verifier
   never loses the cheap certificate, a cell it skips is never decided
   differently by one LP call alone (skip-with-proof implies the LP
   proves too; dominance makes this exact), an escalated cell keeps the
   LP bound, and no cell with an exactly-falsified interior point is
   ever claimed proved. *)
let test_triage_exhaustive_cells () =
  List.iter
    (fun seed ->
      let problem = random_problem ~seed ~dims:[ 2; 4; 2 ] ~eps:0.3 () in
      let k = Problem.num_relus problem in
      with_metrics (fun () ->
          let tri =
            Appver.triaged ~cheap:Appver.deeppoly ~expensive:Lp_verifier.appver ()
          in
          for mask = 0 to (1 lsl k) - 1 do
            let gamma = leaf_gamma k mask in
            let esc0 = counter "appver.triage.escalated" in
            let t_o = tri.Appver.run problem gamma in
            let escalated = counter "appver.triage.escalated" > esc0 in
            let cheap_o = Appver.deeppoly.Appver.run problem gamma in
            if t_o.Outcome.phat < cheap_o.Outcome.phat -. 1e-12 then
              Alcotest.failf "seed %d mask %d: triage lost the cheap bound (%.12g < %.12g)"
                seed mask t_o.Outcome.phat cheap_o.Outcome.phat;
            if escalated then begin
              let lp_o = Lp_verifier.run problem gamma in
              if (not lp_o.Outcome.infeasible) && (not t_o.Outcome.infeasible)
                 && t_o.Outcome.phat < lp_o.Outcome.phat -. 1e-9
              then
                Alcotest.failf "seed %d mask %d: escalated cell lost the LP bound" seed mask
            end
            else begin
              (* skipped: the cheap outcome is passed through unchanged *)
              if not (Float.equal t_o.Outcome.phat cheap_o.Outcome.phat) then
                Alcotest.failf "seed %d mask %d: skipped cell drifted from cheap phat"
                  seed mask;
              if Outcome.proved cheap_o && not cheap_o.Outcome.infeasible then begin
                let lp_o = Lp_verifier.run problem gamma in
                if not (Outcome.proved lp_o) then
                  Alcotest.failf
                    "seed %d mask %d: triage skipped a proved cell the LP refuses to prove"
                    seed mask
              end
            end;
            (match Exact.resolve problem gamma with
             | `Falsified x when Problem.concrete_margin problem x < -1e-6 ->
               if Outcome.proved t_o then
                 Alcotest.failf
                   "seed %d mask %d: triage proved a cell with an exact interior cex"
                   seed mask
             | `Falsified _ | `Verified -> ())
          done))
    [ 41; 42; 43 ]

(* An unreachable depth gate means the triaged verifier is bitwise the
   cheap one and never escalates. *)
let test_triage_depth_gate_disables_escalation () =
  let problem = random_problem ~seed:44 ~dims:[ 2; 4; 2 ] ~eps:0.3 () in
  let k = Problem.num_relus problem in
  with_metrics (fun () ->
      let crit = { Appver.default_triage with Appver.depth_threshold = 1000 } in
      let tri =
        Appver.triaged ~crit ~cheap:Appver.deeppoly ~expensive:Lp_verifier.appver ()
      in
      for mask = 0 to (1 lsl k) - 1 do
        let gamma = leaf_gamma k mask in
        let t_o = tri.Appver.run problem gamma in
        let cheap_o = Appver.deeppoly.Appver.run problem gamma in
        Alcotest.(check bool) "phat bitwise" true
          (Float.equal t_o.Outcome.phat cheap_o.Outcome.phat);
        Alcotest.(check bool) "rows bitwise" true
          (Array.length t_o.Outcome.row_lower = Array.length cheap_o.Outcome.row_lower
          && Array.for_all2 Float.equal t_o.Outcome.row_lower cheap_o.Outcome.row_lower)
      done;
      Alcotest.(check int) "no escalations" 0 (counter "appver.triage.escalated");
      Alcotest.(check int) "all skipped" (1 lsl k) (counter "appver.triage.skipped"))

(* With every gate wide open the combinator escalates exactly the
   undecided cells. *)
let test_triage_open_gates_escalate_all_undecided () =
  let problem = random_problem ~seed:45 ~dims:[ 2; 4; 2 ] ~eps:0.3 () in
  let k = Problem.num_relus problem in
  with_metrics (fun () ->
      let crit =
        { Appver.lb_threshold = infinity; depth_threshold = 0;
          impr_threshold = neg_infinity; window = 1 }
      in
      let tri =
        Appver.triaged ~crit ~cheap:Appver.deeppoly ~expensive:Lp_verifier.appver ()
      in
      let undecided = ref 0 in
      for mask = 0 to (1 lsl k) - 1 do
        let gamma = leaf_gamma k mask in
        let cheap_o = Appver.deeppoly.Appver.run problem gamma in
        if (not (Outcome.proved cheap_o)) && not cheap_o.Outcome.infeasible then
          incr undecided;
        ignore (tri.Appver.run problem gamma)
      done;
      Alcotest.(check int) "escalations = undecided cells" !undecided
        (counter "appver.triage.escalated"))

(* BaB on the triaged AppVer reaches the same verdict as BaB on plain
   DeepPoly, with validating witnesses, sequentially and on 4 domains. *)
let test_triage_engine_verdict_agreement () =
  let check_witness problem = function
    | Verdict.Falsified x ->
      Alcotest.(check bool) "witness validates" true (Problem.is_counterexample problem x)
    | Verdict.Verified | Verdict.Timeout -> ()
  in
  List.iter
    (fun seed ->
      let problem = random_problem ~seed ~dims:[ 2; 5; 2 ] ~eps:0.3 () in
      let tri =
        Appver.triaged ~cheap:Appver.deeppoly ~expensive:Lp_verifier.appver ()
      in
      let budget () = Budget.of_calls 800 in
      let vt = (Bfs.verify ~appver:tri ~budget:(budget ()) problem).Result.verdict in
      let vd = (Bfs.verify ~budget:(budget ()) problem).Result.verdict in
      let vp =
        (Bfs.verify ~appver:tri ~domains:4 ~budget:(budget ()) problem).Result.verdict
      in
      (* ties (witness margin within 1e-6 of zero) may land on either
         side; only a strictly interior witness conflicts with Verified *)
      let interior = function
        | Verdict.Falsified x -> Problem.concrete_margin problem x < -1e-6
        | Verdict.Verified | Verdict.Timeout -> false
      in
      (match (vt, vd) with
       | Verdict.Verified, f when interior f ->
         Alcotest.failf "seed %d: deeppoly BaB falsifies interior, triaged verifies" seed
       | f, Verdict.Verified when interior f ->
         Alcotest.failf "seed %d: triaged BaB falsifies interior, deeppoly verifies" seed
       | _ -> ());
      (match (vt, vp) with
       | Verdict.Verified, f when interior f ->
         Alcotest.failf "seed %d: triaged BaB domains:4 falsifies interior, seq verifies" seed
       | f, Verdict.Verified when interior f ->
         Alcotest.failf "seed %d: triaged BaB seq falsifies interior, domains:4 verifies" seed
       | _ -> ());
      List.iter (check_witness problem) [ vt; vd; vp ])
    [ 46; 47; 48 ]

let triage_suite =
  ( "bab.triage",
    [ Alcotest.test_case "exhaustive cells: skip never flips a decision" `Slow
        test_triage_exhaustive_cells;
      Alcotest.test_case "depth gate disables escalation bitwise" `Quick
        test_triage_depth_gate_disables_escalation;
      Alcotest.test_case "open gates escalate every undecided cell" `Quick
        test_triage_open_gates_escalate_all_undecided;
      Alcotest.test_case "triaged engine verdicts agree" `Slow
        test_triage_engine_verdict_agreement
    ] )

let suite = suite @ [ triage_suite ]
