(* Conformance tests for the problem-ingestion front-end (docs/FORMATS.md):
   golden-corpus byte stability and parse equivalence, ONNX and VNNLIB
   round-trips, the native-vs-ONNX+VNNLIB differential battery on all
   four engines (sequential and 4-domain), and malformed-input
   positioning. *)

module Rng = Abonn_util.Rng
module Parse_error = Abonn_util.Parse_error
module Budget = Abonn_util.Budget
module Network = Abonn_nn.Network
module Builder = Abonn_nn.Builder
module Onnx = Abonn_nn.Onnx
module Vnnlib = Abonn_spec.Vnnlib
module Verdict = Abonn_spec.Verdict
module Problem = Abonn_spec.Problem
module Region = Abonn_spec.Region
module Result = Abonn_bab.Result
module Acas = Abonn_data.Acas
module Corpus = Abonn_check.Formats_corpus

let fixtures_dir = Filename.concat "fixtures" "formats"
let fixture name = Filename.concat fixtures_dir name
let malformed name = fixture (Filename.concat "malformed" name)

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* deterministic probe points spanning [lo, hi]^dim *)
let probes ~dim ~lo ~hi n =
  let rng = Rng.create 2024 in
  List.init n (fun _ -> Array.init dim (fun _ -> Rng.range rng lo hi))

let max_forward_diff a b points =
  List.fold_left
    (fun acc x ->
      let ya = Network.forward a x and yb = Network.forward b x in
      Array.fold_left max acc (Array.mapi (fun i v -> abs_float (v -. yb.(i))) ya))
    0.0 points

(* --- golden corpus ------------------------------------------------- *)

let test_corpus_byte_stable () =
  match Corpus.check_dir fixtures_dir with
  | [] -> ()
  | mismatches ->
    Alcotest.failf "corpus not byte-stable: %s"
      (String.concat ", "
         (List.map (fun (n, r) -> Printf.sprintf "%s (%s)" n r) mismatches))

let test_corpus_parse_equivalence () =
  (* every committed network fixture parses back to the recipe network *)
  let checks =
    [ ("mlp_gemm.onnx", Corpus.mlp (), 0.0);
      ("mlp_matmul_add.onnx", Corpus.mlp (), 0.0);
      ("mlp_f32.onnx", Corpus.mlp (), 1e-5);
      ("conv_small.onnx", Corpus.conv (), 0.0);
      ("acas_tiny.onnx", Corpus.acas_net (), 0.0) ]
  in
  List.iter
    (fun (name, expected, tol) ->
      let loaded = Onnx.load (fixture name) in
      Alcotest.(check int)
        (name ^ " input dim") (Network.input_dim expected) (Network.input_dim loaded);
      let points = probes ~dim:(Network.input_dim expected) ~lo:(-1.0) ~hi:1.0 16 in
      let diff = max_forward_diff expected loaded points in
      if diff > tol then
        Alcotest.failf "%s: forward diff %g exceeds %g" name diff tol)
    checks;
  (* hand-written VNNLIB fixtures lower to the expected structures *)
  let simple = Vnnlib.load (fixture "box_simple.vnnlib") in
  Alcotest.(check int) "simple inputs" 3 simple.Vnnlib.num_inputs;
  Alcotest.(check int) "simple outputs" 2 simple.Vnnlib.num_outputs;
  Alcotest.(check (float 0.0)) "simple lower" (-0.5) simple.Vnnlib.lower.(0);
  Alcotest.(check (float 0.0)) "simple upper" 0.25 simple.Vnnlib.upper.(2);
  (match simple.Vnnlib.disjuncts with
   | [ [ { Vnnlib.coeffs; offset } ] ] ->
     Alcotest.(check (array (float 0.0))) "simple coeffs" [| -1.0; 0.0 |] coeffs;
     Alcotest.(check (float 0.0)) "simple offset" 1.5 offset
   | _ -> Alcotest.fail "box_simple: expected one single-literal disjunct");
  let conj = Vnnlib.load (fixture "conjunctive.vnnlib") in
  (match conj.Vnnlib.disjuncts with
   | [ [ _; _ ] ] -> ()
   | _ -> Alcotest.fail "conjunctive: expected one 2-literal disjunct");
  let disj = Vnnlib.load (fixture "disjunctive.vnnlib") in
  Alcotest.(check (list int))
    "disjunctive shape" [ 2; 1; 1 ]
    (List.map List.length disj.Vnnlib.disjuncts);
  (* printer-emitted fixtures equal their recipes exactly *)
  Alcotest.(check bool) "acas_prop1 equal" true
    (Vnnlib.load (fixture "acas_prop1.vnnlib") = Corpus.acas_p1 ());
  Alcotest.(check bool) "acas_prop2 equal" true
    (Vnnlib.load (fixture "acas_prop2.vnnlib") = Corpus.acas_p2 ())

(* --- round-trips --------------------------------------------------- *)

let test_onnx_roundtrip () =
  let nets =
    [ ("mlp", Builder.mlp (Rng.create 31) ~dims:[ 4; 10; 7; 3 ]);
      ("deep", Builder.mlp (Rng.create 32) ~dims:[ 2; 5; 5; 5; 2 ]);
      ("conv", Corpus.conv ());
      ("acas", Corpus.acas_net ()) ]
  in
  List.iter
    (fun (name, net) ->
      List.iter
        (fun (style_name, style) ->
          let bytes = Onnx.to_bytes ~style net in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s deterministic" name style_name)
            true
            (String.equal bytes (Onnx.to_bytes ~style net));
          let reparsed = Onnx.of_bytes bytes in
          let points =
            probes ~dim:(Network.input_dim net) ~lo:(-1.0) ~hi:1.0 16
          in
          let diff = max_forward_diff net reparsed points in
          if diff > 1e-9 then
            Alcotest.failf "%s/%s: round-trip diff %g exceeds 1e-9" name
              style_name diff;
          (* the writer is a fixpoint of parse . print *)
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s reprint fixpoint" name style_name)
            true
            (String.equal bytes (Onnx.to_bytes ~style reparsed)))
        [ ("gemm", Onnx.Gemm); ("matmul_add", Onnx.Matmul_add) ])
    nets

let test_vnnlib_roundtrip () =
  let specs =
    Vnnlib.
      [ ("box_simple", load (fixture "box_simple.vnnlib"));
        ("conjunctive", load (fixture "conjunctive.vnnlib"));
        ("disjunctive", load (fixture "disjunctive.vnnlib")) ]
    @ List.map
        (fun pid ->
          ( "acas_" ^ Acas.property_name pid,
            Acas.spec ~network:(Corpus.acas_net ()) ~seed:3 pid ))
        Acas.property_ids
  in
  List.iter
    (fun (name, spec) ->
      let reparsed = Vnnlib.parse (Vnnlib.to_string spec) in
      Alcotest.(check bool) (name ^ " exact round-trip") true (spec = reparsed))
    specs;
  (* property -> VNNLIB -> parse is exact through of_problem too *)
  let problem = Acas.problem ~hidden_layers:2 ~width:8 ~seed:2 Acas.P1 in
  let spec = Vnnlib.of_problem problem in
  Alcotest.(check bool) "of_problem round-trip" true
    (spec = Vnnlib.parse (Vnnlib.to_string spec))

let test_gadget_exact () =
  (* the max-gadget network computes exactly max_i (c_i . y + k_i) *)
  let net = Corpus.acas_net () in
  List.iter
    (fun pid ->
      let spec = Acas.spec ~network:net ~seed:1 pid in
      let problem = List.hd (Vnnlib.problems ~network:net spec) in
      let literals = List.hd spec.Vnnlib.disjuncts in
      let region = Region.create ~lower:spec.Vnnlib.lower ~upper:spec.Vnnlib.upper in
      let rng = Rng.create 99 in
      for _ = 1 to 32 do
        let x = Region.sample rng region in
        let y = Network.forward net x in
        let expected =
          List.fold_left
            (fun acc { Vnnlib.coeffs; offset } ->
              let g = ref offset in
              Array.iteri (fun i c -> g := !g +. (c *. y.(i))) coeffs;
              max acc !g)
            neg_infinity literals
        in
        let got = (Network.forward problem.Problem.network x).(0) in
        if abs_float (expected -. got) > 1e-10 then
          Alcotest.failf "%s gadget: expected %.17g got %.17g"
            (Acas.property_name pid) expected got
      done)
    [ Acas.P2; Acas.P3 ]

(* --- differential battery ------------------------------------------ *)

let engines =
  [ ("bfs", fun ~domains ~budget p -> (Abonn_bab.Bfs.verify ~domains ~budget p).Result.verdict);
    ( "bestfirst",
      fun ~domains ~budget p ->
        (Abonn_bab.Bestfirst.verify ~domains ~budget p).Result.verdict );
    ( "abonn",
      fun ~domains ~budget p ->
        (Abonn_core.Abonn.verify ~domains ~budget p).Result.verdict );
    ( "inputsplit",
      fun ~domains ~budget p ->
        (Abonn_bab.Inputsplit.verify ~domains ~budget p).Result.verdict ) ]

let verdict_kind = function
  | Verdict.Verified -> "verified"
  | Verdict.Falsified _ -> "falsified"
  | Verdict.Timeout -> "timeout"

(* The same ACAS-style instance reaches the engines twice: built
   natively in-process, and serialized to ONNX + VNNLIB and read back.
   Complete runs have deterministic verdicts (docs/PARALLELISM.md), so
   the kinds must match engine by engine; counterexamples must validate
   on the problem that produced them. *)
let differential_battery ~domains () =
  List.iter
    (fun pid ->
      let native = Acas.problem ~hidden_layers:2 ~width:8 ~seed:1 pid in
      let net = Acas.network ~hidden_layers:2 ~width:8 ~seed:1 () in
      let spec = Acas.spec ~network:net ~seed:1 pid in
      (* through the wire formats *)
      let net' = Onnx.of_bytes (Onnx.to_bytes net) in
      let spec' = Vnnlib.parse (Vnnlib.to_string spec) in
      let format_problems = Vnnlib.problems ~network:net' spec' in
      List.iter
        (fun (engine_name, run) ->
          let budget () = Budget.of_calls 4000 in
          let native_verdict = run ~domains ~budget:(budget ()) native in
          let format_verdict =
            Vnnlib.join_verdicts
              (List.map (fun p -> run ~domains ~budget:(budget ()) p) format_problems)
          in
          let label =
            Printf.sprintf "%s/%s/d%d" (Acas.property_name pid) engine_name domains
          in
          if verdict_kind native_verdict = "timeout" then
            Alcotest.failf "%s: native run did not decide" label;
          Alcotest.(check string) label
            (verdict_kind native_verdict) (verdict_kind format_verdict);
          (match Verdict.counterexample native_verdict with
           | Some x ->
             Alcotest.(check bool) (label ^ " native cex") true
               (Problem.is_counterexample native x)
           | None -> ());
          match Verdict.counterexample format_verdict with
          | Some x ->
            (* a witness from any disjunct problem lives in the same
               input region and violates its own (exact) property *)
            Alcotest.(check bool) (label ^ " format cex valid") true
              (List.exists (fun p -> Problem.is_counterexample p x) format_problems)
          | None -> ())
        engines)
    [ Acas.P1; Acas.P3 ]

let test_differential_sequential () = differential_battery ~domains:1 ()
let test_differential_domains4 () = differential_battery ~domains:4 ()

(* --- malformed inputs ---------------------------------------------- *)

let expect_parse_error ~what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Parse_error.Error" what
  | exception Parse_error.Error e -> e
  | exception other ->
    Alcotest.failf "%s: expected Parse_error.Error, got %s" what
      (Printexc.to_string other)

let test_malformed_onnx () =
  let byte_pos e =
    match e.Parse_error.pos with
    | Parse_error.Byte { offset } -> offset
    | Parse_error.Line _ ->
      Alcotest.fail "ONNX errors must carry byte offsets"
  in
  let e =
    expect_parse_error ~what:"truncated.onnx" (fun () ->
        Onnx.load (malformed "truncated.onnx"))
  in
  Alcotest.(check bool) "truncated offset sane" true (byte_pos e >= 0);
  let e =
    expect_parse_error ~what:"badwire.onnx" (fun () ->
        Onnx.load (malformed "badwire.onnx"))
  in
  ignore (byte_pos e);
  Alcotest.(check bool) "badwire mentions wire type" true
    (contains_substring (Parse_error.to_string e) "wire type");
  let e =
    expect_parse_error ~what:"unknown_op.onnx" (fun () ->
        Onnx.load (malformed "unknown_op.onnx"))
  in
  Alcotest.(check string) "unknown op token" "Gelu" e.Parse_error.token;
  (* a handful of synthesized corruptions: never a crash, always positioned *)
  let base = Onnx.to_bytes (Corpus.mlp ()) in
  for cut = 1 to 24 do
    ignore
      (expect_parse_error ~what:(Printf.sprintf "cut at %d" cut) (fun () ->
           Onnx.of_bytes (String.sub base 0 cut)))
  done;
  ignore
    (expect_parse_error ~what:"ff varint" (fun () ->
         Onnx.of_bytes "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))

let test_malformed_vnnlib () =
  let line_pos e =
    match e.Parse_error.pos with
    | Parse_error.Line { line; col } -> (line, col)
    | Parse_error.Byte _ -> Alcotest.fail "VNNLIB errors must carry line/column"
  in
  let e =
    expect_parse_error ~what:"unbalanced.vnnlib" (fun () ->
        Vnnlib.load (malformed "unbalanced.vnnlib"))
  in
  let line, col = line_pos e in
  Alcotest.(check bool) "unbalanced position sane" true (line >= 1 && col >= 1);
  let e =
    expect_parse_error ~what:"unknown_op.vnnlib" (fun () ->
        Vnnlib.load (malformed "unknown_op.vnnlib"))
  in
  Alcotest.(check string) "unknown op token" "pow" e.Parse_error.token;
  Alcotest.(check bool) "line 5" true (fst (line_pos e) = 5);
  (* inline malformations *)
  let cases =
    [ ("missing bound", "(declare-const X_0 Real)\n(declare-const Y_0 Real)\n(assert (<= X_0 1.0))\n(assert (<= Y_0 0.0))\n");
      ("mixed vars", "(declare-const X_0 Real)\n(declare-const Y_0 Real)\n(assert (>= X_0 0.0))\n(assert (<= X_0 1.0))\n(assert (<= (+ X_0 Y_0) 0.0))\n");
      ("undeclared", "(declare-const X_0 Real)\n(declare-const Y_0 Real)\n(assert (>= X_0 0.0))\n(assert (<= X_0 1.0))\n(assert (<= Y_3 0.0))\n");
      ("no outputs", "(declare-const X_0 Real)\n(declare-const Y_0 Real)\n(assert (>= X_0 0.0))\n(assert (<= X_0 1.0))\n");
      ("stray close", "(declare-const X_0 Real))\n");
      ("bound under or",
       "(declare-const X_0 Real)\n(declare-const Y_0 Real)\n(assert (or (<= X_0 1.0) (>= X_0 0.0)))\n(assert (<= Y_0 0.0))\n") ]
  in
  List.iter
    (fun (what, text) ->
      ignore (expect_parse_error ~what (fun () -> Vnnlib.parse text)))
    cases

(* --- registry schema ----------------------------------------------- *)

let test_registry_source_format () =
  let module Registry = Abonn_trace.Registry in
  let r =
    Registry.make ~ts:"2026-01-01T00:00:00Z" ~commit:"abc" ~peak_rss_bytes:1
      ~source_format:"onnx+vnnlib" ~engine:"bfs" ~model:"m" ~instance:"i" ~seed:0
      ~verdict:"verified" ~wall:0.1 ~calls:1 ~nodes:1 ~max_depth:0 ()
  in
  (match Registry.of_json (Registry.to_json r) with
   | Ok r' ->
     Alcotest.(check string) "round-trip" "onnx+vnnlib" r'.Registry.source_format;
     Alcotest.(check int) "schema" 3 r'.Registry.schema
   | Error msg -> Alcotest.failf "schema-3 line rejected: %s" msg);
  (* a schema-2 line (no source_format) parses as a native run *)
  let legacy =
    "{\"schema\":2,\"ts\":\"2025-01-01T00:00:00Z\",\"commit\":\"abc\",\
     \"engine\":\"bfs\",\"model\":\"m\",\"instance\":\"i\",\"seed\":0,\
     \"domains\":2,\"verdict\":\"verified\",\"wall\":0.100000,\"calls\":1,\
     \"nodes\":1,\"max_depth\":0,\"peak_rss_bytes\":1}"
  in
  match Registry.of_json legacy with
  | Ok r ->
    Alcotest.(check string) "legacy default" "native" r.Registry.source_format;
    Alcotest.(check int) "legacy domains kept" 2 r.Registry.domains
  | Error msg -> Alcotest.failf "schema-2 line rejected: %s" msg

let suite =
  [ ( "formats",
      [ Alcotest.test_case "corpus byte-stable" `Quick test_corpus_byte_stable;
        Alcotest.test_case "corpus parse equivalence" `Quick
          test_corpus_parse_equivalence;
        Alcotest.test_case "onnx round-trip" `Quick test_onnx_roundtrip;
        Alcotest.test_case "vnnlib round-trip" `Quick test_vnnlib_roundtrip;
        Alcotest.test_case "max-gadget exact" `Quick test_gadget_exact;
        Alcotest.test_case "differential battery (sequential)" `Slow
          test_differential_sequential;
        Alcotest.test_case "differential battery (4 domains)" `Slow
          test_differential_domains4;
        Alcotest.test_case "malformed onnx" `Quick test_malformed_onnx;
        Alcotest.test_case "malformed vnnlib" `Quick test_malformed_vnnlib;
        Alcotest.test_case "registry source_format" `Quick
          test_registry_source_format ] ) ]
