(* Tests for Abonn_spec: regions, properties, splits, verdicts, problems. *)

module Matrix = Abonn_tensor.Matrix
module Vector = Abonn_tensor.Vector
module Rng = Abonn_util.Rng
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Split = Abonn_spec.Split
module Verdict = Abonn_spec.Verdict
module Problem = Abonn_spec.Problem
module Layer = Abonn_nn.Layer
module Network = Abonn_nn.Network
module Builder = Abonn_nn.Builder

let check_float = Alcotest.(check (float 1e-9))

(* --- Region --- *)

let test_region_linf_ball () =
  let r = Region.linf_ball ~center:[| 0.5; 0.5 |] ~eps:0.1 () in
  check_float "lower" 0.4 r.Region.lower.(0);
  check_float "upper" 0.6 r.Region.upper.(1)

let test_region_clip () =
  let r = Region.linf_ball ~clip:(0.0, 1.0) ~center:[| 0.05; 0.95 |] ~eps:0.2 () in
  check_float "clipped low" 0.0 r.Region.lower.(0);
  check_float "clipped high" 1.0 r.Region.upper.(1)

let test_region_contains () =
  let r = Region.create ~lower:[| 0.0; 0.0 |] ~upper:[| 1.0; 1.0 |] in
  Alcotest.(check bool) "inside" true (Region.contains r [| 0.5; 0.5 |]);
  Alcotest.(check bool) "boundary" true (Region.contains r [| 0.0; 1.0 |]);
  Alcotest.(check bool) "outside" false (Region.contains r [| 1.5; 0.5 |]);
  Alcotest.(check bool) "wrong dim" false (Region.contains r [| 0.5 |])

let test_region_clamp () =
  let r = Region.create ~lower:[| 0.0 |] ~upper:[| 1.0 |] in
  check_float "clamps" 1.0 (Region.clamp r [| 3.0 |]).(0)

let test_region_center_radius () =
  let r = Region.create ~lower:[| 0.0; -2.0 |] ~upper:[| 1.0; 2.0 |] in
  check_float "center" 0.5 (Region.center r).(0);
  check_float "radius" 2.0 (Region.radius r).(1)

let test_region_rejects_inverted () =
  Alcotest.(check bool) "raises" true
    (try ignore (Region.create ~lower:[| 1.0 |] ~upper:[| 0.0 |]); false
     with Invalid_argument _ -> true)

let test_region_sample_inside =
  QCheck.Test.make ~name:"region samples lie inside" ~count:100
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let lo = float_of_int (min a b) and hi = float_of_int (max a b) +. 1.0 in
      let r = Region.create ~lower:[| lo; lo |] ~upper:[| hi; hi |] in
      let rng = Rng.create (a + (1000 * b)) in
      Region.contains r (Region.sample rng r))

let test_region_corner () =
  let r = Region.create ~lower:[| 0.0; 0.0 |] ~upper:[| 1.0; 2.0 |] in
  let c = Region.corner r (fun i -> i = 1) in
  check_float "corner lo" 0.0 c.(0);
  check_float "corner hi" 2.0 c.(1)

(* --- Property --- *)

let test_property_robustness_margin () =
  let p = Property.robustness ~num_classes:3 ~label:1 in
  Alcotest.(check int) "constraints" 2 (Property.num_constraints p);
  (* y = [0; 2; 1]: margins are 2-0=2 and 2-1=1, min = 1 *)
  check_float "margin" 1.0 (Property.margin p [| 0.0; 2.0; 1.0 |]);
  Alcotest.(check bool) "satisfied" true (Property.satisfied p [| 0.0; 2.0; 1.0 |]);
  Alcotest.(check bool) "violated" true (Property.violated p [| 3.0; 2.0; 1.0 |])

let test_property_margin_tie_is_violation () =
  let p = Property.robustness ~num_classes:2 ~label:0 in
  Alcotest.(check bool) "tie violates" true (Property.violated p [| 1.0; 1.0 |])

let test_property_single () =
  (* The running example of Fig. 1: O + 2.5 > 0. *)
  let p = Property.single [| 1.0 |] 2.5 in
  check_float "margin" 0.5 (Property.margin p [| -2.0 |]);
  Alcotest.(check bool) "violated at -3" true (Property.violated p [| -3.0 |])

let test_property_rejects_bad_label () =
  Alcotest.(check bool) "raises" true
    (try ignore (Property.robustness ~num_classes:3 ~label:3); false
     with Invalid_argument _ -> true)

(* --- Split --- *)

let test_split_extend_and_lookup () =
  let g = Split.extend [] ~relu:3 ~phase:Split.Active in
  let g = Split.extend g ~relu:7 ~phase:Split.Inactive in
  Alcotest.(check int) "depth" 2 (Split.depth g);
  Alcotest.(check bool) "lookup active" true
    (Split.constrained g ~relu:3 = Some Split.Active);
  Alcotest.(check bool) "lookup missing" true (Split.constrained g ~relu:5 = None)

let test_split_rejects_duplicate () =
  let g = Split.extend [] ~relu:3 ~phase:Split.Active in
  Alcotest.(check bool) "raises" true
    (try ignore (Split.extend g ~relu:3 ~phase:Split.Inactive); false
     with Invalid_argument _ -> true)

let test_split_opposite () =
  Alcotest.(check bool) "opposite" true
    (Split.phase_equal (Split.opposite Split.Active) Split.Inactive)

let test_split_to_string () =
  Alcotest.(check string) "root" "ε" (Split.to_string []);
  let g = Split.extend [] ~relu:3 ~phase:Split.Active in
  Alcotest.(check string) "one split" "r3+" (Split.to_string g)

let test_split_of_string_round_trip () =
  let gammas =
    [ [];
      Split.extend [] ~relu:3 ~phase:Split.Active;
      Split.extend
        (Split.extend [] ~relu:3 ~phase:Split.Active)
        ~relu:17 ~phase:Split.Inactive ]
  in
  List.iter
    (fun g ->
      let s = Split.to_string g in
      Alcotest.(check string) ("round trip " ^ s) s
        (Split.to_string (Split.of_string s)))
    gammas;
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (try ignore (Split.of_string s); false
         with Invalid_argument _ -> true))
    [ "r3"; "r+"; "bogus"; "r3+."; "r3+.r3x" ]

let test_split_satisfied_by () =
  (* Identity-ish net: 1 -> 1 -> 1 with weight 1.  relu 0 is active iff x >= 0. *)
  let w = Matrix.identity 1 in
  let net = Network.create [ Layer.linear w [| 0.0 |]; Layer.Relu 1; Layer.linear w [| 0.0 |] ] in
  let affine = Abonn_nn.Affine.of_network net in
  let g_act = Split.extend [] ~relu:0 ~phase:Split.Active in
  let g_inact = Split.extend [] ~relu:0 ~phase:Split.Inactive in
  Alcotest.(check bool) "positive input active" true (Split.satisfied_by affine g_act [| 1.0 |]);
  Alcotest.(check bool) "positive not inactive" false
    (Split.satisfied_by affine g_inact [| 1.0 |]);
  Alcotest.(check bool) "negative inactive" true (Split.satisfied_by affine g_inact [| -1.0 |])

(* --- Verdict --- *)

let test_verdict_predicates () =
  Alcotest.(check bool) "verified" true (Verdict.is_verified Verdict.Verified);
  Alcotest.(check bool) "falsified" true (Verdict.is_falsified (Verdict.Falsified [| 0.0 |]));
  Alcotest.(check bool) "timeout" true (Verdict.is_timeout Verdict.Timeout);
  Alcotest.(check bool) "solved" true (Verdict.is_solved Verdict.Verified);
  Alcotest.(check bool) "timeout unsolved" false (Verdict.is_solved Verdict.Timeout)

let test_verdict_counterexample () =
  Alcotest.(check bool) "extracts" true
    (Verdict.counterexample (Verdict.Falsified [| 1.0 |]) = Some [| 1.0 |]);
  Alcotest.(check bool) "none" true (Verdict.counterexample Verdict.Verified = None)

let test_verdict_to_string () =
  Alcotest.(check string) "verified" "verified" (Verdict.to_string Verdict.Verified);
  Alcotest.(check string) "timeout" "timeout" (Verdict.to_string Verdict.Timeout)

(* --- Problem --- *)

let robust_problem () =
  let rng = Rng.create 9 in
  let net = Builder.mlp rng ~dims:[ 2; 4; 2 ] in
  let region = Region.linf_ball ~center:[| 0.2; -0.1 |] ~eps:0.05 () in
  let property = Property.robustness ~num_classes:2 ~label:0 in
  Problem.create ~network:net ~region ~property ()

let test_problem_create () =
  let p = robust_problem () in
  Alcotest.(check int) "relus" 4 (Problem.num_relus p)

let test_problem_rejects_region_mismatch () =
  let rng = Rng.create 9 in
  let net = Builder.mlp rng ~dims:[ 2; 4; 2 ] in
  let region = Region.linf_ball ~center:[| 0.0; 0.0; 0.0 |] ~eps:0.1 () in
  let property = Property.robustness ~num_classes:2 ~label:0 in
  Alcotest.(check bool) "raises" true
    (try ignore (Problem.create ~network:net ~region ~property ()); false
     with Invalid_argument _ -> true)

let test_problem_counterexample_check () =
  (* Single output O = x; property O - 0.5 > 0; region [0,1].
     x = 0.2 is a counterexample; x = 0.9 is not; x = 2 is outside. *)
  let w = Matrix.identity 1 in
  let net = Network.create [ Layer.linear w [| 0.0 |]; Layer.Relu 1; Layer.linear w [| 0.0 |] ] in
  let region = Region.create ~lower:[| 0.0 |] ~upper:[| 1.0 |] in
  let property = Property.single [| 1.0 |] (-0.5) in
  let p = Problem.create ~network:net ~region ~property () in
  Alcotest.(check bool) "cex" true (Problem.is_counterexample p [| 0.2 |]);
  Alcotest.(check bool) "not cex" false (Problem.is_counterexample p [| 0.9 |]);
  Alcotest.(check bool) "outside region" false (Problem.is_counterexample p [| 2.0 |])

let test_problem_of_affine_roundtrip () =
  let rng = Rng.create 21 in
  let net = Builder.mlp rng ~dims:[ 2; 3; 2 ] in
  let affine = Abonn_nn.Affine.of_network net in
  let region = Region.linf_ball ~center:[| 0.0; 0.0 |] ~eps:0.1 () in
  let property = Property.robustness ~num_classes:2 ~label:0 in
  let p = Problem.of_affine ~affine ~region ~property () in
  let x = [| 0.05; -0.03 |] in
  Alcotest.(check bool) "reconstructed network agrees" true
    (Vector.approx_equal ~tol:1e-9
       (Network.forward p.Problem.network x)
       (Abonn_nn.Affine.forward affine x))

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [ ( "spec.region",
      [ Alcotest.test_case "linf ball" `Quick test_region_linf_ball;
        Alcotest.test_case "clip" `Quick test_region_clip;
        Alcotest.test_case "contains" `Quick test_region_contains;
        Alcotest.test_case "clamp" `Quick test_region_clamp;
        Alcotest.test_case "center/radius" `Quick test_region_center_radius;
        Alcotest.test_case "rejects inverted" `Quick test_region_rejects_inverted;
        Alcotest.test_case "corner" `Quick test_region_corner;
        qtest test_region_sample_inside
      ] );
    ( "spec.property",
      [ Alcotest.test_case "robustness margin" `Quick test_property_robustness_margin;
        Alcotest.test_case "tie violates" `Quick test_property_margin_tie_is_violation;
        Alcotest.test_case "single constraint" `Quick test_property_single;
        Alcotest.test_case "rejects bad label" `Quick test_property_rejects_bad_label
      ] );
    ( "spec.split",
      [ Alcotest.test_case "extend/lookup" `Quick test_split_extend_and_lookup;
        Alcotest.test_case "rejects duplicate" `Quick test_split_rejects_duplicate;
        Alcotest.test_case "opposite" `Quick test_split_opposite;
        Alcotest.test_case "to_string" `Quick test_split_to_string;
        Alcotest.test_case "satisfied_by" `Quick test_split_satisfied_by
      ] );
    ( "spec.verdict",
      [ Alcotest.test_case "predicates" `Quick test_verdict_predicates;
        Alcotest.test_case "counterexample" `Quick test_verdict_counterexample;
        Alcotest.test_case "to_string" `Quick test_verdict_to_string
      ] );
    ( "spec.problem",
      [ Alcotest.test_case "create" `Quick test_problem_create;
        Alcotest.test_case "rejects mismatch" `Quick test_problem_rejects_region_mismatch;
        Alcotest.test_case "counterexample check" `Quick test_problem_counterexample_check;
        Alcotest.test_case "of_affine roundtrip" `Quick test_problem_of_affine_roundtrip
      ] )
  ]

(* --- Problem files --- *)

module Problem_file = Abonn_spec.Problem_file

let sample_problem () =
  let rng = Rng.create 77 in
  let net = Builder.mlp rng ~dims:[ 3; 5; 2 ] in
  let region =
    Region.linf_ball ~clip:(0.0, 1.0) ~center:[| 0.4; 0.5; 0.6 |] ~eps:0.05 ()
  in
  let property = Property.robustness ~num_classes:2 ~label:1 in
  Problem.create ~network:net ~region ~property ()

let test_problem_file_roundtrip () =
  let problem = sample_problem () in
  let dir = Filename.temp_file "abonn_pf" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let net_path = Filename.concat dir "net.net" in
  let path = Filename.concat dir "problem.txt" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove net_path;
      Sys.remove path;
      Sys.rmdir dir)
    (fun () ->
      Problem_file.save problem ~network_path:net_path path;
      let reloaded = Problem_file.load path in
      (* same region *)
      Alcotest.(check bool) "region lower" true
        (reloaded.Problem.region.Region.lower = problem.Problem.region.Region.lower);
      Alcotest.(check bool) "region upper" true
        (reloaded.Problem.region.Region.upper = problem.Problem.region.Region.upper);
      (* same semantics: concrete margins agree on samples *)
      let rng = Rng.create 5 in
      for _ = 1 to 50 do
        let x = Region.sample rng problem.Problem.region in
        Alcotest.(check (float 1e-9)) "same margin"
          (Problem.concrete_margin problem x)
          (Problem.concrete_margin reloaded x)
      done)

let test_problem_file_center_eps_form () =
  let dir = Filename.temp_file "abonn_pf2" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let net_path = Filename.concat dir "net.net" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove net_path;
      Sys.rmdir dir)
    (fun () ->
      let rng = Rng.create 78 in
      let net = Builder.mlp rng ~dims:[ 2; 4; 2 ] in
      Abonn_nn.Serialize.save net net_path;
      let text =
        "abonn-problem 1\n" ^ "network net.net\n" ^ "center 0.5 0.5\n" ^ "eps 0.1\n"
        ^ "clip 0 1\n" ^ "robustness 2 0\n"
      in
      let problem = Problem_file.of_string ~dir text in
      Alcotest.(check (float 1e-9)) "lower" 0.4 problem.Problem.region.Region.lower.(0);
      Alcotest.(check (float 1e-9)) "upper" 0.6 problem.Problem.region.Region.upper.(1))

let test_problem_file_constraints_form () =
  let dir = Filename.temp_file "abonn_pf3" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let net_path = Filename.concat dir "net.net" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove net_path;
      Sys.rmdir dir)
    (fun () ->
      let rng = Rng.create 79 in
      let net = Builder.mlp rng ~dims:[ 2; 4; 1 ] in
      Abonn_nn.Serialize.save net net_path;
      let text =
        "abonn-problem 1\nnetwork net.net\n# the Fig. 1 property\n"
        ^ "box-lower 0 0\nbox-upper 1 1\nconstraint 2.5 1\n"
      in
      let problem = Problem_file.of_string ~dir text in
      Alcotest.(check int) "one row" 1 (Property.num_constraints problem.Problem.property);
      Alcotest.(check (float 1e-9)) "margin uses offset" 2.5
        (Property.margin problem.Problem.property [| 0.0 |]))

let test_problem_file_rejects_garbage () =
  (* malformed input raises the shared positioned error with the
     offending token and a 1-based line/column (satellite of PR 9) *)
  (match Problem_file.of_string "network foo\n" with
   | _ -> Alcotest.fail "no header accepted"
   | exception Abonn_util.Parse_error.Error e ->
     Alcotest.(check string) "token" "network" e.Abonn_util.Parse_error.token;
     (match e.Abonn_util.Parse_error.pos with
      | Abonn_util.Parse_error.Line { line; col } ->
        Alcotest.(check int) "line" 1 line;
        Alcotest.(check int) "col" 1 col
      | Abonn_util.Parse_error.Byte _ -> Alcotest.fail "expected a line position"));
  Alcotest.(check bool) "mixture" true
    (try
       ignore
         (Problem_file.of_string
            "abonn-problem 1\nnetwork x\nbox-lower 0\ncenter 0\neps 1\nrobustness 2 0\n");
       false
     with Abonn_util.Parse_error.Error _ -> true);
  (match
     Problem_file.of_string "abonn-problem 1\nnetwork x\nbox-lower 0 oops 1\n"
   with
   | _ -> Alcotest.fail "bad float accepted"
   | exception Abonn_util.Parse_error.Error e ->
     Alcotest.(check string) "bad token" "oops" e.Abonn_util.Parse_error.token;
     (match e.Abonn_util.Parse_error.pos with
      | Abonn_util.Parse_error.Line { line; col } ->
        Alcotest.(check int) "bad float line" 3 line;
        Alcotest.(check int) "bad float col" 13 col
      | Abonn_util.Parse_error.Byte _ -> Alcotest.fail "expected a line position"))

let problem_file_tests =
  ( "spec.problem_file",
    [ Alcotest.test_case "roundtrip" `Quick test_problem_file_roundtrip;
      Alcotest.test_case "center/eps form" `Quick test_problem_file_center_eps_form;
      Alcotest.test_case "constraints form" `Quick test_problem_file_constraints_form;
      Alcotest.test_case "rejects garbage" `Quick test_problem_file_rejects_garbage
    ] )

let suite = suite @ [ problem_file_tests ]

(* --- Targeted / output-range properties --- *)

let test_property_targeted () =
  let p = Property.targeted ~num_classes:3 ~label:0 ~target:2 in
  Alcotest.(check int) "one row" 1 (Property.num_constraints p);
  check_float "margin" 1.5 (Property.margin p [| 2.0; 9.0; 0.5 |]);
  Alcotest.(check bool) "violated when target preferred" true
    (Property.violated p [| 0.5; 9.0; 2.0 |]);
  Alcotest.(check bool) "rejects equal classes" true
    (try ignore (Property.targeted ~num_classes:3 ~label:1 ~target:1); false
     with Invalid_argument _ -> true)

let test_property_output_range () =
  let p = Property.output_range ~num_classes:2 ~output:0 ~lo:(-1.0) ~hi:1.0 in
  Alcotest.(check int) "two rows" 2 (Property.num_constraints p);
  Alcotest.(check bool) "inside" true (Property.satisfied p [| 0.0; 99.0 |]);
  Alcotest.(check bool) "below" true (Property.violated p [| -2.0; 0.0 |]);
  Alcotest.(check bool) "above" true (Property.violated p [| 2.0; 0.0 |]);
  Alcotest.(check bool) "rejects empty range" true
    (try ignore (Property.output_range ~num_classes:2 ~output:0 ~lo:1.0 ~hi:1.0); false
     with Invalid_argument _ -> true)

let test_targeted_verification_end_to_end () =
  (* Verify a targeted property with ABONN-adjacent machinery: a tiny
     epsilon ball must certify; a huge one must produce a targeted flip
     or verify, and any counterexample must indeed prefer the target. *)
  let rng = Rng.create 123 in
  let net = Builder.mlp rng ~dims:[ 2; 6; 3 ] in
  let center = [| 0.2; -0.1 |] in
  let label = Network.predict net center in
  let target = (label + 1) mod 3 in
  let property = Property.targeted ~num_classes:3 ~label ~target in
  let region = Region.linf_ball ~center ~eps:1e-6 () in
  let problem = Problem.create ~network:net ~region ~property () in
  let outcome = Abonn_prop.Deeppoly.run problem [] in
  Alcotest.(check bool) "tiny ball certifies" true (Abonn_prop.Outcome.proved outcome)

let more_property_tests =
  ( "spec.property_extra",
    [ Alcotest.test_case "targeted" `Quick test_property_targeted;
      Alcotest.test_case "output range" `Quick test_property_output_range;
      Alcotest.test_case "targeted end-to-end" `Quick test_targeted_verification_end_to_end
    ] )

let suite = suite @ [ more_property_tests ]
