(* Campaign analytics (cactus/PAR-2/matrix/trends/attribution), the
   registry lint/gc pass, tail-mode registry reading, and the Perfetto
   exporter.  The report and exporter outputs are byte-compared against
   committed goldens: identical inputs must produce identical bytes. *)

module Registry = Abonn_trace.Registry
module Campaign = Abonn_trace.Campaign
module Reader = Abonn_trace.Reader
module Perfetto = Abonn_trace.Perfetto
module Regress = Abonn_trace.Regress
module Event = Abonn_obs.Event

let fx name = Filename.concat (Filename.concat "fixtures" "campaign") name
let reg_a = fx "registry_a.jsonl"
let reg_b = fx "registry_b.jsonl"
let reg_bad = fx "registry_bad.jsonl"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let load_pair () =
  match Campaign.load [ reg_a; reg_b ] with
  | Ok t -> t
  | Error msg -> Alcotest.failf "load: %s" msg

let mk ?(ts = "2026-08-01T00:00:00Z") ?(commit = "aaa1111") ?(domains = 1)
    ?(source_format = "native") ?(engine = "abonn") ?(model = "acas")
    ?(seed = 0) ~instance ~verdict ~wall () =
  Registry.make ~ts ~commit ~peak_rss_bytes:0 ~domains ~source_format ~engine
    ~model ~instance ~seed ~verdict ~wall ~calls:1 ~nodes:1 ~max_depth:1 ()

(* --- normalisation -------------------------------------------------- *)

let test_normalisation () =
  let r = mk ~instance:"mlp_d6_seed1@d4" ~verdict:"timeout" ~wall:1.0 () in
  Alcotest.(check string) "@dN stripped" "mlp_d6_seed1" (Campaign.instance_key r);
  Alcotest.(check int) "@dN wins over field" 4 (Campaign.effective_domains r);
  Alcotest.(check string) "family" "native/mlp/d4" (Campaign.family r);
  let r = mk ~instance:"mnist_l2@flight" ~verdict:"verified" ~wall:1.0 () in
  Alcotest.(check string) "non-dN suffix is identity" "mnist_l2@flight"
    (Campaign.instance_key r);
  Alcotest.(check int) "field domains" 1 (Campaign.effective_domains r);
  let r =
    mk ~instance:"acas_1_1" ~source_format:"onnx+vnnlib" ~domains:2
      ~verdict:"falsified (attack pgd)" ~wall:1.0 ()
  in
  Alcotest.(check string) "3-axis family" "onnx+vnnlib/acas/d2" (Campaign.family r);
  Alcotest.(check bool) "falsified counts solved" true (Campaign.solved r);
  Alcotest.(check bool) "timeout is unsolved" false
    (Campaign.solved (mk ~instance:"x" ~verdict:"timeout" ~wall:1.0 ()))

let test_commits_select () =
  let t = load_pair () in
  Alcotest.(check (list string)) "commit timeline" [ "aaa1111"; "bbb2222" ]
    (Campaign.commits t);
  Alcotest.(check (option string)) "head commit" (Some "bbb2222")
    (Campaign.head_commit t);
  Alcotest.(check int) "all records ingested" 21 (List.length t.Campaign.records);
  Alcotest.(check int) "no issues in clean fixtures" 0
    (List.length t.Campaign.issues);
  let sel = Campaign.select ~commit:"aaa1111" t in
  Alcotest.(check int) "re-run deduped to latest" 10 (List.length sel);
  let abonn_acas =
    List.find
      (fun (r : Registry.record) -> r.engine = "abonn" && r.instance = "acas_1_1")
      sel
  in
  Alcotest.(check (float 1e-9)) "latest record won" 1.0 abonn_acas.Registry.wall

(* --- PAR-2 / cactus / matrix --------------------------------------- *)

let test_par2 () =
  let t = load_pair () in
  let sel = Campaign.select ~commit:"aaa1111" t in
  let budget, rows = Campaign.par2 sel in
  Alcotest.(check (float 1e-9)) "default budget = max wall" 10.0 budget;
  let row e = List.find (fun (r : Campaign.par2_row) -> r.engine = e) rows in
  Alcotest.(check (float 1e-6)) "abonn PAR-2" 1.625 (row "abonn").Campaign.par2;
  Alcotest.(check (float 1e-4)) "bab PAR-2 (1 timeout = 2x budget)"
    (26.0 /. 3.0) (row "bab").Campaign.par2;
  Alcotest.(check (float 1e-4)) "random PAR-2" (40.8 /. 3.0)
    (row "random").Campaign.par2;
  Alcotest.(check int) "abonn solved all 4" 4 (row "abonn").Campaign.solved_n;
  (* explicit budget overrides *)
  let _, rows = Campaign.par2 ~budget:100.0 sel in
  let bab = List.find (fun (r : Campaign.par2_row) -> r.engine = "bab") rows in
  Alcotest.(check (float 1e-4)) "budget override applied"
    ((2.0 +. 4.0 +. 200.0) /. 3.0) bab.Campaign.par2

let test_cactus () =
  let t = load_pair () in
  let sel = Campaign.select ~commit:"aaa1111" t in
  let curves = Campaign.cactus sel in
  let abonn = List.assoc "abonn" curves in
  Alcotest.(check (list (pair int (float 1e-9))))
    "abonn staircase sorted by wall"
    [ (1, 0.5); (2, 1.0); (3, 2.0); (4, 3.0) ]
    (List.map (fun (p : Campaign.cactus_point) -> (p.nth, p.wall)) abonn);
  let csv = Campaign.cactus_to_csv curves in
  Alcotest.(check bool) "csv header" true
    (String.length csv > 20 && String.sub csv 0 20 = "engine,solved,wall_s");
  Alcotest.(check string) "csv deterministic" csv
    (Campaign.cactus_to_csv (Campaign.cactus sel));
  let svg = Campaign.cactus_to_svg curves in
  Alcotest.(check string) "svg deterministic" svg
    (Campaign.cactus_to_svg (Campaign.cactus sel));
  Alcotest.(check bool) "svg has one polyline per engine" true
    (let count = ref 0 in
     String.iteri
       (fun i c ->
         if c = '<' && i + 9 <= String.length svg
            && String.sub svg i 9 = "<polyline" then incr count)
       svg;
     !count = 3)

let test_matrix () =
  let t = load_pair () in
  let sel = Campaign.select ~commit:"bbb2222" t in
  let engines, families, get = Campaign.matrix sel in
  Alcotest.(check (list string)) "engines sorted" [ "abonn"; "bab"; "random" ]
    engines;
  Alcotest.(check (list string)) "families sorted"
    [ "native/acas/d1"; "native/acas/d4"; "onnx+vnnlib/mnist/d1" ]
    families;
  let c = get "abonn" "native/acas/d1" in
  Alcotest.(check int) "abonn acas runs" 2 c.Campaign.cell_runs;
  Alcotest.(check int) "abonn acas wins (strictly fastest on acas_1_1)" 1
    c.Campaign.wins;
  Alcotest.(check int) "abonn acas losses (acas_1_2 unsolved by all: none)" 0
    c.Campaign.losses;
  let c = get "random" "native/acas/d1" in
  Alcotest.(check int) "random loses acas_1_1 (unsolved while beaten)" 1
    c.Campaign.losses;
  let c = get "random" "onnx+vnnlib/mnist/d1" in
  Alcotest.(check int) "random wins mnist_0 (fastest falsifier)" 1 c.Campaign.wins;
  let c = get "abonn" "native/acas/d4" in
  Alcotest.(check int) "solo identity: no win" 0 c.Campaign.wins;
  let c = get "bab" "native/acas/d4" in
  Alcotest.(check int) "bab never ran the d4 family" 0 c.Campaign.cell_runs

(* --- trends and attribution ----------------------------------------- *)

let test_trends_attribution () =
  let t = load_pair () in
  let rows = Campaign.trends ~budget:10.0 t in
  Alcotest.(check (list string)) "trend timeline"
    [ "aaa1111"; "bbb2222" ]
    (List.map (fun (r : Campaign.trend_row) -> r.trend_commit) rows);
  let head = List.nth rows 1 in
  Alcotest.(check int) "head solved count" 6 head.Campaign.trend_solved;
  let a = Campaign.attribute ~base:"aaa1111" ~head:"bbb2222" t in
  Alcotest.(check int) "all pairs matched" 10 (List.length a.Campaign.pairs);
  Alcotest.(check int) "nothing unmatched" 0 a.Campaign.unmatched_base;
  Alcotest.(check int) "one run became unsolved" 1 a.Campaign.newly_unsolved;
  Alcotest.(check int) "none became solved" 0 a.Campaign.newly_solved;
  match a.Campaign.pairs with
  | top :: _ ->
    Alcotest.(check string) "worst regression named" "acas/acas_1_2"
      top.Campaign.pair_instance;
    Alcotest.(check (float 1e-9)) "worst regression delta" 8.0 top.Campaign.delta
  | [] -> Alcotest.fail "no pairs"

(* --- golden byte-stability ------------------------------------------ *)

let test_report_md_golden () =
  let t = load_pair () in
  match Campaign.report ~against:"aaa1111" ~budget:10.0 t Campaign.Md with
  | Error msg -> Alcotest.failf "report: %s" msg
  | Ok text ->
    Alcotest.(check string) "md report matches committed golden bytes"
      (read_file (fx "report_golden.md"))
      text

let test_report_errors () =
  let t = load_pair () in
  (match Campaign.report ~commit:"nope" t Campaign.Md with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown commit must be an error");
  (match Campaign.report ~against:"nope" t Campaign.Md with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown --against commit must be an error");
  match Campaign.report { Campaign.records = []; issues = [] } Campaign.Md with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty registry must be an error"

let test_perfetto_golden () =
  let events, issues = Reader.read_file (Filename.concat "fixtures" "golden.jsonl") in
  Alcotest.(check int) "clean fixture" 0 (List.length issues);
  Alcotest.(check string) "perfetto export matches committed golden bytes"
    (read_file (fx "perfetto_golden.json"))
    (Perfetto.to_string events)

let test_perfetto_introspect () =
  let events, _ =
    Reader.read_file (Filename.concat "fixtures" "golden_introspect.jsonl")
  in
  let a = Perfetto.to_string events in
  Alcotest.(check string) "deterministic" a (Perfetto.to_string events);
  match Regress.parse_json_string a with
  | Error msg -> Alcotest.failf "export is not valid JSON: %s" msg
  | Ok (Regress.Obj fields) ->
    (match List.assoc_opt "traceEvents" fields with
     | Some (Regress.Arr rows) ->
       Alcotest.(check bool) "non-trivial event count" true (List.length rows > 100);
       List.iter
         (function
           | Regress.Obj row ->
             Alcotest.(check bool) "every row has name/ph/pid" true
               (List.mem_assoc "name" row && List.mem_assoc "ph" row
                && List.mem_assoc "pid" row);
             (match List.assoc_opt "ts" row with
              | Some (Regress.Num ts) ->
                Alcotest.(check bool) "timestamps never negative" true (ts >= 0.0)
              | Some _ -> Alcotest.fail "ts must be a number"
              | None -> () (* metadata rows carry no ts *))
           | _ -> Alcotest.fail "every trace event must be an object")
         rows;
       let phs =
         List.filter_map
           (function
             | Regress.Obj row ->
               (match List.assoc_opt "ph" row with
                | Some (Regress.Str s) -> Some s
                | _ -> None)
             | _ -> None)
           rows
       in
       let has p = List.mem p phs in
       Alcotest.(check bool) "has spans, instants, counters and metadata" true
         (has "X" && has "i" && has "C" && has "M")
     | _ -> Alcotest.fail "traceEvents must be an array")
  | Ok _ -> Alcotest.fail "export must be a JSON object"

let test_trace_attribution_dominant () =
  let base, _ = Reader.read_file (Filename.concat "fixtures" "golden.jsonl") in
  (* seed a slowdown: triple every AppVer bound-computation time *)
  let head =
    List.map
      (fun (env : Event.envelope) ->
        match env.Event.event with
        | Event.Bound_computed b ->
          { env with
            Event.event = Event.Bound_computed { b with elapsed = b.elapsed *. 3.0 } }
        | _ -> env)
      base
  in
  let ta = Campaign.trace_attribute ~base ~head in
  (match ta.Campaign.dominant with
   | Some (name, d) ->
     Alcotest.(check string) "dominant phase is the seeded one" "appver.deeppoly"
       name;
     Alcotest.(check bool) "positive delta" true (d > 0.0)
   | None -> Alcotest.fail "a seeded slowdown must have a dominant phase");
  let ta = Campaign.trace_attribute ~base ~head:base in
  Alcotest.(check bool) "identical traces have no dominant delta" true
    (ta.Campaign.dominant = None)

(* --- registry lint / gc --------------------------------------------- *)

let test_lint () =
  let r = Registry.lint [ reg_bad ] in
  Alcotest.(check int) "lines" 6 r.Registry.lines;
  Alcotest.(check int) "parsed" 4 r.Registry.parsed;
  Alcotest.(check int) "distinct" 3 r.Registry.distinct;
  let count p = List.length (List.filter p r.Registry.lint_issues) in
  Alcotest.(check int) "malformed lines" 2
    (count (function Registry.Lint_malformed _ -> true | _ -> false));
  Alcotest.(check int) "duplicate records" 1
    (count (function Registry.Lint_duplicate _ -> true | _ -> false));
  Alcotest.(check int) "unstamped records (empty ts, unknown commit)" 2
    (count (function Registry.Lint_unstamped _ -> true | _ -> false));
  (* clean fixtures lint clean *)
  let r = Registry.lint [ reg_a; reg_b ] in
  Alcotest.(check (list string)) "clean files" []
    (List.map Registry.lint_issue_to_string r.Registry.lint_issues);
  Alcotest.(check int) "both files counted" 21 r.Registry.distinct;
  match Registry.lint [ "fixtures/campaign/definitely_missing.jsonl" ] with
  | exception Sys_error _ -> ()
  | _ -> Alcotest.fail "missing file must raise"

let test_gc () =
  let tmp = Filename.temp_file "abonn_gc" ".jsonl" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
  @@ fun () ->
  let oc = open_out tmp in
  output_string oc (read_file reg_bad);
  close_out oc;
  let kept, dropped = Registry.gc tmp in
  Alcotest.(check int) "kept distinct records" 3 kept;
  Alcotest.(check int) "dropped malformed + duplicates" 3 dropped;
  let r = Registry.lint [ tmp ] in
  Alcotest.(check int) "no malformed or duplicate left" 2
    (List.length r.Registry.lint_issues);
  Alcotest.(check bool) "remaining issues are unstamped only" true
    (List.for_all
       (function Registry.Lint_unstamped _ -> true | _ -> false)
       r.Registry.lint_issues);
  (* idempotent *)
  let kept2, dropped2 = Registry.gc tmp in
  Alcotest.(check int) "gc is idempotent" kept kept2;
  Alcotest.(check int) "nothing more to drop" 0 dropped2

(* --- tail-mode registry reading -------------------------------------
   The registry is appended to by live runs; the follow-mode reader
   must hold back a record cut mid-line by the writer's buffering and
   deliver it intact on a later poll, across record schemas. *)

let test_tail_registry_lines () =
  let l1 =
    {|{"schema":1,"ts":"2026-08-01T00:00:00Z","commit":"aaa1111","engine":"e1","model":"m","instance":"i1","seed":0,"verdict":"verified","wall":1.000000,"calls":1,"nodes":1,"max_depth":1,"peak_rss_bytes":0}|}
  and l2 =
    {|{"schema":2,"ts":"2026-08-01T00:00:01Z","commit":"aaa1111","engine":"e2","model":"m","instance":"i2","seed":0,"domains":4,"verdict":"timeout","wall":2.000000,"calls":2,"nodes":2,"max_depth":2,"peak_rss_bytes":0}|}
  and l3 =
    {|{"schema":3,"ts":"2026-08-01T00:00:02Z","commit":"aaa1111","engine":"e3","model":"m","instance":"i3","seed":0,"domains":1,"source_format":"onnx+vnnlib","verdict":"falsified","wall":3.000000,"calls":3,"nodes":3,"max_depth":3,"peak_rss_bytes":0}|}
  in
  let tmp = Filename.temp_file "abonn_tailreg" ".jsonl" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
  @@ fun () ->
  let append s =
    let oc = open_out_gen [ Open_append ] 0o644 tmp in
    output_string oc s;
    close_out oc
  in
  (* first poll: one whole line plus a record truncated mid-field *)
  let cut = String.length l2 / 2 in
  append (l1 ^ "\n" ^ String.sub l2 0 cut);
  let tail = Reader.tail_open tmp in
  Fun.protect ~finally:(fun () -> Reader.tail_close tail) @@ fun () ->
  let got = ref [] in
  let poll () =
    Reader.tail_poll_lines tail ~f:(fun ~line_no line ->
        got := (line_no, line) :: !got)
  in
  poll ();
  Alcotest.(check (list (pair int string)))
    "partial final record held back" [ (1, l1) ] (List.rev !got);
  (* the rest of the cut record arrives, plus a whole schema-3 line *)
  append (String.sub l2 cut (String.length l2 - cut) ^ "\n" ^ l3 ^ "\n");
  got := [];
  poll ();
  Alcotest.(check (list (pair int string)))
    "deferred record delivered intact with its line number"
    [ (2, l2); (3, l3) ]
    (List.rev !got);
  (* every delivered line parses as its schema's record *)
  List.iter
    (fun (_, line) ->
      match Registry.of_json line with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "tail-delivered line failed to parse: %s" msg)
    (List.rev !got);
  (* nothing more *)
  got := [];
  poll ();
  Alcotest.(check (list (pair int string))) "quiescent" [] !got

let suite =
  [ ( "campaign",
      [ Alcotest.test_case "normalisation" `Quick test_normalisation;
        Alcotest.test_case "commits and selection" `Quick test_commits_select;
        Alcotest.test_case "par2" `Quick test_par2;
        Alcotest.test_case "cactus" `Quick test_cactus;
        Alcotest.test_case "matrix" `Quick test_matrix;
        Alcotest.test_case "trends and attribution" `Quick test_trends_attribution;
        Alcotest.test_case "report md golden bytes" `Quick test_report_md_golden;
        Alcotest.test_case "report error paths" `Quick test_report_errors;
        Alcotest.test_case "perfetto golden bytes" `Quick test_perfetto_golden;
        Alcotest.test_case "perfetto introspect structural" `Quick
          test_perfetto_introspect;
        Alcotest.test_case "trace attribution dominant phase" `Quick
          test_trace_attribution_dominant;
        Alcotest.test_case "registry lint" `Quick test_lint;
        Alcotest.test_case "registry gc" `Quick test_gc;
        Alcotest.test_case "tail registry lines" `Quick test_tail_registry_lines
      ] )
  ]
