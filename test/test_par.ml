(* Tests for the multicore BaB layer (lib/par + the engines' --domains
   paths): Chase–Lev deque semantics under concurrent stealing, pool
   exactly-once processing and termination, deterministic per-domain RNG
   splitting, the domains:1 ≡ sequential guarantee (including encoder
   byte-stability for untagged envelopes), and multi-domain verdict
   agreement with the sequential engines — the executable form of the
   docs/PARALLELISM.md determinism contract. *)

module Rng = Abonn_util.Rng
module Budget = Abonn_util.Budget
module Obs = Abonn_obs.Obs
module Sink = Abonn_obs.Sink
module Event = Abonn_obs.Event
module Deque = Abonn_par.Deque
module Pool = Abonn_par.Pool
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Verdict = Abonn_spec.Verdict
module Problem = Abonn_spec.Problem
module Network = Abonn_nn.Network
module Builder = Abonn_nn.Builder
module Bfs = Abonn_bab.Bfs
module Bestfirst = Abonn_bab.Bestfirst
module Inputsplit = Abonn_bab.Inputsplit
module Certificate = Abonn_bab.Certificate
module Result = Abonn_bab.Result

let random_problem ?(seed = 0) ?(dims = [ 2; 6; 2 ]) ?(eps = 0.3) () =
  let rng = Rng.create seed in
  let net = Builder.mlp rng ~dims in
  let in_dim = List.hd dims in
  let center = Array.init in_dim (fun _ -> Rng.range rng (-0.5) 0.5) in
  let region = Region.linf_ball ~center ~eps () in
  let out_dim = List.nth dims (List.length dims - 1) in
  let label = Network.predict net center in
  let property = Property.robustness ~num_classes:out_dim ~label in
  Problem.create ~network:net ~region ~property ()

(* --- deque: sequential semantics --- *)

let test_deque_lifo_fifo () =
  let d = Deque.create () in
  for i = 0 to 9 do
    Deque.push d i
  done;
  Alcotest.(check int) "length" 10 (Deque.length d);
  (* owner pops LIFO from the bottom *)
  Alcotest.(check (option int)) "pop newest" (Some 9) (Deque.pop d);
  Alcotest.(check (option int)) "pop next" (Some 8) (Deque.pop d);
  (* thief steals FIFO from the top *)
  Alcotest.(check (option int)) "steal oldest" (Some 0) (Deque.steal d);
  Alcotest.(check (option int)) "steal next" (Some 1) (Deque.steal d);
  let rec drain n = match Deque.pop d with Some _ -> drain (n + 1) | None -> n in
  Alcotest.(check int) "remaining" 6 (drain 0);
  Alcotest.(check (option int)) "empty pop" None (Deque.pop d);
  Alcotest.(check (option int)) "empty steal" None (Deque.steal d)

let test_deque_grows () =
  (* push far past the initial buffer capacity, then drain *)
  let d = Deque.create () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    Deque.push d i
  done;
  let seen = Array.make n false in
  let rec drain () =
    match Deque.pop d with
    | Some v ->
      Alcotest.(check bool) "no duplicate" false seen.(v);
      seen.(v) <- true;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check bool) "all present" true (Array.for_all Fun.id seen)

(* --- deque: concurrent owner/thief stress --- *)

let test_deque_concurrent_stress () =
  let n = 20_000 and thieves = 3 in
  let d = Deque.create () in
  let counts = Array.init n (fun _ -> Atomic.make 0) in
  let done_pushing = Atomic.make false in
  let take = function
    | Some v -> Atomic.incr counts.(v)
    | None -> Domain.cpu_relax ()
  in
  let thief () =
    let rec go () =
      match Deque.steal d with
      | Some v ->
        Atomic.incr counts.(v);
        go ()
      | None -> if Atomic.get done_pushing then () else (Domain.cpu_relax (); go ())
    in
    go ()
  in
  let spawned = Array.init thieves (fun _ -> Domain.spawn thief) in
  (* owner: interleave pushes with occasional pops *)
  for i = 0 to n - 1 do
    Deque.push d i;
    if i land 7 = 0 then take (Deque.pop d)
  done;
  let rec drain () =
    match Deque.pop d with
    | Some v ->
      Atomic.incr counts.(v);
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set done_pushing true;
  Array.iter Domain.join spawned;
  (* after the owner drained and every thief exited, each pushed item
     was taken exactly once: nothing lost, nothing duplicated *)
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "item %d taken once" i) 1 (Atomic.get c))
    counts

(* --- pool: exactly-once processing and stats accounting --- *)

let test_pool_exactly_once () =
  let n = 2_000 and domains = 4 in
  let counts = Array.init n (fun _ -> Atomic.make 0) in
  (* implicit binary tree: processing node i schedules its children *)
  let work ctx i =
    Atomic.incr counts.(i);
    if (2 * i) + 1 < n then Pool.push ctx ((2 * i) + 1);
    if (2 * i) + 2 < n then Pool.push ctx ((2 * i) + 2)
  in
  let stats = Pool.run ~domains ~roots:[ 0 ] ~work () in
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "node %d processed once" i) 1 (Atomic.get c))
    counts;
  Alcotest.(check int) "stats rows" domains (Array.length stats);
  let processed = Array.fold_left (fun a st -> a + st.Pool.processed) 0 stats in
  let pushed = Array.fold_left (fun a st -> a + st.Pool.pushed) 0 stats in
  Alcotest.(check int) "sum processed = tree size" n processed;
  Alcotest.(check int) "sum pushed = non-root nodes" (n - 1) pushed

let test_pool_single_domain_inline () =
  (* domains:1 runs entirely on the calling domain, in deterministic
     LIFO order, with no steals and no idling *)
  let order = ref [] in
  let work ctx i =
    order := i :: !order;
    if i < 2 then begin
      Pool.push ctx (10 + i);
      Pool.push ctx (20 + i)
    end
  in
  let stats = Pool.run ~domains:1 ~roots:[ 0; 1; 2 ] ~work () in
  Alcotest.(check (list int)) "LIFO visit order" [ 2; 1; 21; 11; 0; 20; 10 ]
    (List.rev !order);
  Alcotest.(check int) "no steals" 0 stats.(0).Pool.stolen;
  Alcotest.(check int) "no idling" 0 stats.(0).Pool.idle

let test_pool_stop_abandons_queue () =
  let processed = Atomic.make 0 in
  let work ctx _i =
    Atomic.incr processed;
    Pool.request_stop ctx
  in
  let stats =
    Pool.run ~domains:1 ~roots:[ 0; 1; 2; 3; 4 ] ~work ()
  in
  (* the stop lands after the first item: queued items are abandoned *)
  Alcotest.(check int) "only first item ran" 1 (Atomic.get processed);
  Alcotest.(check int) "stats agree" 1 stats.(0).Pool.processed

let test_pool_propagates_exception () =
  let work _ctx i = if i = 3 then failwith "boom" in
  match Pool.run ~domains:2 ~roots:[ 0; 1; 2; 3; 4; 5 ] ~work () with
  | _ -> Alcotest.fail "expected the worker exception to re-raise"
  | exception Failure msg -> Alcotest.(check string) "original exception" "boom" msg

let test_pool_rng_streams_deterministic () =
  (* Each domain's stream is split from the master in domain order, so
     domain i's first draw is a pure function of (seed, i) — whatever
     the scheduling.  Domains that never got an item are skipped. *)
  let domains = 4 and seed = 42 in
  let expected =
    let master = Rng.create seed in
    Array.init domains (fun _ ->
        let r = Rng.split master in
        Rng.int r 1_000_000)
  in
  let draws = Array.make domains (-1) in
  let work ctx _i =
    let id = Pool.id ctx in
    if draws.(id) < 0 then draws.(id) <- Rng.int (Pool.rng ctx) 1_000_000
  in
  ignore (Pool.run ~domains ~seed ~roots:[ 0; 1; 2; 3; 4; 5; 6; 7 ] ~work ());
  Array.iteri
    (fun i d ->
      if d >= 0 then
        Alcotest.(check int) (Printf.sprintf "domain %d stream head" i) expected.(i) d)
    draws

let test_default_domains_env () =
  let with_env v f =
    let old = Sys.getenv_opt "ABONN_DOMAINS" in
    (match v with Some s -> Unix.putenv "ABONN_DOMAINS" s | None -> Unix.putenv "ABONN_DOMAINS" "");
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "ABONN_DOMAINS" (Option.value ~default:"" old))
      f
  in
  with_env (Some "4") (fun () ->
      Alcotest.(check int) "parses" 4 (Pool.default_domains ()));
  with_env (Some "0") (fun () ->
      Alcotest.(check int) "clamps to 1" 1 (Pool.default_domains ()));
  with_env (Some "9999") (fun () ->
      Alcotest.(check int) "clamps to 64" 64 (Pool.default_domains ()));
  with_env (Some "nope") (fun () ->
      Alcotest.(check int) "garbage is 1" 1 (Pool.default_domains ()));
  with_env None (fun () ->
      Alcotest.(check int) "unset is 1" 1 (Pool.default_domains ()))

(* --- domains:1 ≡ sequential --- *)

(* The untagged envelope encoder is byte-for-byte the pre-parallelism
   one: re-encoding the machine-written golden trace reproduces every
   line exactly. *)
let test_golden_encoding_unchanged () =
  let ic = open_in "fixtures/golden_cached.jsonl" in
  let rec go line_no =
    match input_line ic with
    | line ->
      (match Event.of_json line with
       | Ok env ->
         Alcotest.(check string)
           (Printf.sprintf "line %d re-encodes identically" line_no)
           line (Event.to_json env)
       | Error msg -> Alcotest.failf "line %d: %s" line_no msg);
      go (line_no + 1)
    | exception End_of_file -> close_in ic
  in
  go 1

let strip_timing events =
  (* event-name sequence with the time-gated sampler events removed:
     everything here is deterministic for a fixed problem *)
  List.filter_map
    (fun e ->
      match e.Event.event with
      | Event.Resource_sample _ -> None
      | ev -> Some (Event.name ev))
    events

let test_domains1_matches_sequential () =
  let problem = random_problem ~seed:5 ~dims:[ 2; 8; 2 ] ~eps:0.25 () in
  let run domains =
    let sink, events = Sink.memory () in
    let r =
      Obs.with_sink sink (fun () ->
          Bestfirst.verify ~budget:(Budget.of_calls 400) ~domains problem)
    in
    (r, events ())
  in
  let r1, ev1 = run 1 in
  let r2, ev2 = run 1 in
  Alcotest.(check string) "verdict" (Verdict.to_string r1.Result.verdict)
    (Verdict.to_string r2.Result.verdict);
  Alcotest.(check int) "calls" r1.Result.stats.Result.appver_calls
    r2.Result.stats.Result.appver_calls;
  Alcotest.(check int) "nodes" r1.Result.stats.Result.nodes r2.Result.stats.Result.nodes;
  Alcotest.(check int) "max depth" r1.Result.stats.Result.max_depth
    r2.Result.stats.Result.max_depth;
  Alcotest.(check (list string)) "identical event sequence" (strip_timing ev1)
    (strip_timing ev2);
  (* sequential envelopes carry no domain tag *)
  List.iter
    (fun e -> Alcotest.(check bool) "untagged" true (e.Event.domain = None))
    ev1

(* --- multi-domain runs --- *)

let verdicts_agree name a b =
  (* complete runs must agree; witnesses may differ but must validate *)
  match (a, b) with
  | Verdict.Verified, Verdict.Verified -> ()
  | Verdict.Falsified _, Verdict.Falsified _ -> ()
  | Verdict.Timeout, _ | _, Verdict.Timeout ->
    Alcotest.failf "%s: unexpected timeout (%s vs %s)" name (Verdict.to_string a)
      (Verdict.to_string b)
  | _ ->
    Alcotest.failf "%s: verdicts disagree (%s vs %s)" name (Verdict.to_string a)
      (Verdict.to_string b)

let check_witness problem = function
  | Verdict.Falsified x ->
    Alcotest.(check bool) "witness validates" true (Problem.is_counterexample problem x)
  | Verdict.Verified | Verdict.Timeout -> ()

let test_parallel_verdicts_match_sequential () =
  (* a spread of seeds lands on both Verified and Falsified instances *)
  List.iter
    (fun seed ->
      let problem = random_problem ~seed ~dims:[ 2; 6; 2 ] ~eps:0.3 () in
      let budget () = Budget.of_calls 4_000 in
      let engines =
        [ ("bfs",
           fun d -> (Bfs.verify ~budget:(budget ()) ~domains:d problem).Result.verdict);
          ("bestfirst",
           fun d ->
             (Bestfirst.verify ~budget:(budget ()) ~domains:d problem).Result.verdict);
          ("inputsplit",
           fun d ->
             (Inputsplit.verify ~budget:(budget ()) ~domains:d problem).Result.verdict);
          ("abonn",
           fun d ->
             (Abonn_core.Abonn.verify ~budget:(budget ()) ~domains:d problem)
               .Result.verdict)
        ]
      in
      List.iter
        (fun (name, run) ->
          let seq = run 1 and par = run 4 in
          check_witness problem par;
          verdicts_agree (Printf.sprintf "%s seed %d" name seed) seq par)
        engines)
    [ 0; 1; 2; 3 ]

let test_parallel_certificate_checks () =
  (* find a Verified instance, then certify it on 4 domains *)
  let problem = random_problem ~seed:1 ~dims:[ 2; 6; 2 ] ~eps:0.1 () in
  let seq = Bfs.verify ~domains:1 problem in
  Alcotest.(check string) "instance verifies sequentially" "verified"
    (Verdict.to_string seq.Result.verdict);
  match Bfs.verify_with_certificate ~domains:4 problem with
  | _, None -> Alcotest.fail "parallel Verified run must produce a certificate"
  | r, Some cert ->
    Alcotest.(check string) "parallel verdict" "verified"
      (Verdict.to_string r.Result.verdict);
    (match Certificate.check problem cert with
     | Ok () -> ()
     | Error e -> Alcotest.failf "certificate rejected: %a" Certificate.pp_error e)

let test_parallel_trace_attribution () =
  (* a traced 4-domain run yields gap-free sequence numbers, one
     domain_summary per domain, and work accounting that adds up.  A
     Verified instance, so no early stop abandons queued items and
     every processed item emitted exactly one frontier_pop. *)
  let problem = random_problem ~seed:1 ~dims:[ 2; 6; 2 ] ~eps:0.1 () in
  let sink, events = Sink.memory () in
  let r =
    Obs.with_sink sink (fun () -> Bfs.verify ~domains:4 problem)
  in
  let events = events () in
  List.iteri
    (fun i e -> Alcotest.(check int) "gap-free seq" (i + 1) e.Event.seq)
    events;
  let summaries =
    List.filter_map
      (fun e ->
        match e.Event.event with
        | Event.Domain_summary { domain; processed; _ } -> Some (domain, processed)
        | _ -> None)
      events
  in
  Alcotest.(check int) "one summary per domain" 4 (List.length summaries);
  Alcotest.(check (list int)) "summaries in domain order" [ 0; 1; 2; 3 ]
    (List.map fst summaries);
  let pops =
    List.length
      (List.filter
         (fun e ->
           match e.Event.event with Event.Frontier_pop _ -> true | _ -> false)
         events)
  in
  let processed = List.fold_left (fun a (_, p) -> a + p) 0 summaries in
  (* with an unlimited budget nothing is abandoned: every processed
     item emitted exactly one frontier_pop *)
  Alcotest.(check int) "summaries account for every pop" pops processed;
  Alcotest.(check string) "verdict reached" "verified"
    (Verdict.to_string r.Result.verdict)

let test_domain_tag_round_trip () =
  let env =
    { Event.seq = 7; t = 0.5; domain = Some 2;
      event =
        Event.Frontier_pop
          { engine = "bab-baseline"; depth = 3; frontier = 5; priority = Float.nan } }
  in
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let json = Event.to_json env in
  Alcotest.(check bool) "serializes the tag" true
    (contains_sub json "\"domain\":2");
  (match Event.of_json json with
   | Ok back -> Alcotest.(check bool) "round-trips" true (Event.equal env back)
   | Error msg -> Alcotest.fail msg);
  let summary =
    { Event.seq = 8; t = 0.6; domain = Some 2;
      event =
        Event.Domain_summary
          { engine = "bab-baseline"; domain = 2; processed = 10; pushed = 9;
            stolen = 1; idle = 4 } }
  in
  let sjson = Event.to_json summary in
  (* the envelope tag is suppressed on domain_summary lines (the event
     owns the "domain" key); parsing reads the envelope tag as None *)
  (match Event.of_json sjson with
   | Ok back ->
     Alcotest.(check bool) "summary envelope untagged" true (back.Event.domain = None)
   | Error msg -> Alcotest.fail msg)

let suite =
  [ ( "par",
      [ Alcotest.test_case "deque LIFO pop / FIFO steal" `Quick test_deque_lifo_fifo;
        Alcotest.test_case "deque grows past initial capacity" `Quick test_deque_grows;
        Alcotest.test_case "deque concurrent stress: exactly once" `Quick
          test_deque_concurrent_stress;
        Alcotest.test_case "pool processes a tree exactly once" `Quick
          test_pool_exactly_once;
        Alcotest.test_case "pool domains:1 is inline LIFO" `Quick
          test_pool_single_domain_inline;
        Alcotest.test_case "pool stop abandons queued items" `Quick
          test_pool_stop_abandons_queue;
        Alcotest.test_case "pool re-raises worker exceptions" `Quick
          test_pool_propagates_exception;
        Alcotest.test_case "pool RNG streams deterministic" `Quick
          test_pool_rng_streams_deterministic;
        Alcotest.test_case "ABONN_DOMAINS parsing and clamping" `Quick
          test_default_domains_env;
        Alcotest.test_case "golden trace encoding unchanged" `Quick
          test_golden_encoding_unchanged;
        Alcotest.test_case "domains:1 matches sequential engine" `Quick
          test_domains1_matches_sequential;
        Alcotest.test_case "parallel verdicts match sequential" `Quick
          test_parallel_verdicts_match_sequential;
        Alcotest.test_case "parallel certificate passes check" `Quick
          test_parallel_certificate_checks;
        Alcotest.test_case "parallel trace attribution adds up" `Quick
          test_parallel_trace_attribution;
        Alcotest.test_case "domain tag JSON round-trip" `Quick
          test_domain_tag_round_trip
      ] )
  ]
