(* Tests for Abonn_core: Def. 1 potentiality values, configuration
   validation, and Alg. 1 end-to-end — verdict agreement with the naive
   BaB baseline, counterexample validity, budget/timeout behaviour, trace
   callbacks, hyperparameter and selection-policy variants. *)

module Rng = Abonn_util.Rng
module Budget = Abonn_util.Budget
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Verdict = Abonn_spec.Verdict
module Problem = Abonn_spec.Problem
module Network = Abonn_nn.Network
module Builder = Abonn_nn.Builder
module Result = Abonn_bab.Result
module Bfs = Abonn_bab.Bfs
module Potentiality = Abonn_core.Potentiality
module Config = Abonn_core.Config
module Abonn = Abonn_core.Abonn

let check_float = Alcotest.(check (float 1e-9))

let random_problem ?(seed = 0) ?(dims = [ 2; 6; 2 ]) ?(eps = 0.3) () =
  let rng = Rng.create seed in
  let net = Builder.mlp rng ~dims in
  let in_dim = List.hd dims in
  let center = Array.init in_dim (fun _ -> Rng.range rng (-0.5) 0.5) in
  let region = Region.linf_ball ~center ~eps () in
  let out_dim = List.nth dims (List.length dims - 1) in
  let label = Network.predict net center in
  let property = Property.robustness ~num_classes:out_dim ~label in
  Problem.create ~network:net ~region ~property ()

(* --- Potentiality (Def. 1) --- *)

let test_potentiality_proved_is_neg_inf () =
  check_float "proved" neg_infinity
    (Potentiality.value ~lambda:0.5 ~num_relus:10 ~phat_min:(-2.0) ~depth:3 ~phat:0.5
       ~valid_cex:false)

let test_potentiality_valid_cex_is_pos_inf () =
  check_float "cex" infinity
    (Potentiality.value ~lambda:0.5 ~num_relus:10 ~phat_min:(-2.0) ~depth:3 ~phat:(-0.5)
       ~valid_cex:true)

let test_potentiality_interpolation () =
  (* λ·d/K + (1−λ)·p̂/p̂_min = 0.5·(2/10) + 0.5·(−1/−2) = 0.35 *)
  check_float "formula" 0.35
    (Potentiality.value ~lambda:0.5 ~num_relus:10 ~phat_min:(-2.0) ~depth:2 ~phat:(-1.0)
       ~valid_cex:false)

let test_potentiality_lambda_extremes () =
  (* λ=1: only depth matters; λ=0: only p̂. *)
  check_float "depth only" 0.2
    (Potentiality.value ~lambda:1.0 ~num_relus:10 ~phat_min:(-2.0) ~depth:2 ~phat:(-1.0)
       ~valid_cex:false);
  check_float "phat only" 0.5
    (Potentiality.value ~lambda:0.0 ~num_relus:10 ~phat_min:(-2.0) ~depth:2 ~phat:(-1.0)
       ~valid_cex:false)

let test_potentiality_monotone_in_depth () =
  let v d =
    Potentiality.value ~lambda:0.5 ~num_relus:10 ~phat_min:(-2.0) ~depth:d ~phat:(-1.0)
      ~valid_cex:false
  in
  Alcotest.(check bool) "deeper scores higher" true (v 5 > v 1)

let test_potentiality_monotone_in_phat () =
  let v p =
    Potentiality.value ~lambda:0.5 ~num_relus:10 ~phat_min:(-2.0) ~depth:2 ~phat:p
      ~valid_cex:false
  in
  Alcotest.(check bool) "more negative phat scores higher" true (v (-1.5) > v (-0.2))

let test_potentiality_rejects_bad_args () =
  Alcotest.(check bool) "bad lambda" true
    (try
       ignore
         (Potentiality.value ~lambda:1.5 ~num_relus:10 ~phat_min:(-1.0) ~depth:0 ~phat:(-1.0)
            ~valid_cex:false);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad K" true
    (try
       ignore
         (Potentiality.value ~lambda:0.5 ~num_relus:0 ~phat_min:(-1.0) ~depth:0 ~phat:(-1.0)
            ~valid_cex:false);
       false
     with Invalid_argument _ -> true)

(* --- Config --- *)

let test_config_defaults () =
  check_float "lambda" 0.5 Config.default.Config.lambda;
  check_float "c" 0.2 Config.default.Config.c

let test_config_validation () =
  Alcotest.(check bool) "bad lambda" true
    (try ignore (Config.make ~lambda:(-0.1) ()); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad c" true
    (try ignore (Config.make ~c:(-1.0) ()); false with Invalid_argument _ -> true);
  let cfg = Config.make ~lambda:0.25 ~c:1.0 () in
  check_float "override lambda" 0.25 cfg.Config.lambda

(* --- Alg. 1 end-to-end --- *)

let test_abonn_verifies_easy () =
  let problem = random_problem ~seed:11 ~eps:1e-6 () in
  let r = Abonn.verify problem in
  Alcotest.(check bool) "verified" true (Verdict.is_verified r.Result.verdict);
  Alcotest.(check int) "single call" 1 r.Result.stats.Result.appver_calls

let test_abonn_falsifies_large_eps () =
  let problem = random_problem ~seed:12 ~eps:10.0 () in
  let r = Abonn.verify ~budget:(Budget.of_calls 2000) problem in
  match r.Result.verdict with
  | Verdict.Falsified x ->
    Alcotest.(check bool) "cex is genuine" true (Problem.is_counterexample problem x)
  | Verdict.Verified | Verdict.Timeout -> Alcotest.fail "expected falsification"

let test_abonn_agrees_with_baseline () =
  (* The paper's core completeness claim: ABONN differs from naive BaB
     only in visiting order, so verdicts must coincide whenever both
     finish. *)
  let falsified = ref 0 and verified = ref 0 in
  for seed = 50 to 69 do
    let problem = random_problem ~seed ~dims:[ 2; 6; 2 ] ~eps:0.35 () in
    let baseline = Bfs.verify ~budget:(Budget.of_calls 4000) problem in
    let abonn = Abonn.verify ~budget:(Budget.of_calls 4000) problem in
    match baseline.Result.verdict, abonn.Result.verdict with
    | Verdict.Timeout, _ | _, Verdict.Timeout -> ()
    | v1, v2 ->
      (match v2 with
       | Verdict.Verified -> incr verified
       | Verdict.Falsified _ -> incr falsified
       | Verdict.Timeout -> ());
      Alcotest.(check bool)
        (Printf.sprintf "verdict agreement (seed %d)" seed)
        true
        (Verdict.is_verified v1 = Verdict.is_verified v2)
  done;
  Alcotest.(check bool) "both classes exercised" true (!falsified > 0 && !verified > 0)

let test_abonn_cex_always_valid () =
  for seed = 70 to 84 do
    let problem = random_problem ~seed ~eps:0.5 () in
    let r = Abonn.verify ~budget:(Budget.of_calls 2000) problem in
    match r.Result.verdict with
    | Verdict.Falsified x ->
      Alcotest.(check bool)
        (Printf.sprintf "valid cex (seed %d)" seed)
        true
        (Problem.is_counterexample problem x)
    | Verdict.Verified | Verdict.Timeout -> ()
  done

let test_abonn_times_out () =
  let problem = random_problem ~seed:13 ~dims:[ 3; 8; 8; 2 ] ~eps:0.35 () in
  let r = Abonn.verify ~budget:(Budget.of_calls 1) problem in
  Alcotest.(check bool) "timeout or root-solved" true
    (Verdict.is_timeout r.Result.verdict || r.Result.stats.Result.appver_calls <= 1)

let test_abonn_trace_observes_expansions () =
  let problem = random_problem ~seed:14 ~eps:0.35 () in
  let count = ref 0 and max_d = ref 0 in
  let trace ~depth ~gamma:_ ~reward:_ =
    incr count;
    max_d := Stdlib.max !max_d depth
  in
  let r = Abonn.verify ~budget:(Budget.of_calls 300) ~trace problem in
  Alcotest.(check int) "trace sees every node" r.Result.stats.Result.nodes !count;
  Alcotest.(check int) "max depth agrees" r.Result.stats.Result.max_depth !max_d

let test_abonn_obs_events_match_trace_callback () =
  (* The obs stream must agree with the legacy [?trace] callback: the
     [Node_evaluated] events are exactly the callback invocations, in
     order, and selection / backprop / verdict events accompany them. *)
  let module Ev = Abonn_obs.Event in
  let module Obs = Abonn_obs.Obs in
  let module Sink = Abonn_obs.Sink in
  let problem = random_problem ~seed:14 ~eps:0.35 () in
  let callback = ref [] in
  let trace ~depth ~gamma ~reward =
    callback := (depth, Abonn_spec.Split.to_string gamma, reward) :: !callback
  in
  let sink, events = Sink.memory () in
  let r =
    Obs.with_sink sink (fun () ->
        Abonn.verify ~budget:(Budget.of_calls 300) ~trace problem)
  in
  let events = events () in
  let evaluated =
    List.filter_map
      (fun env ->
        match env.Ev.event with
        | Ev.Node_evaluated { depth; gamma; reward; _ } -> Some (depth, gamma, reward)
        | _ -> None)
      events
  in
  let callback = List.rev !callback in
  (* rewards can be ±inf (proved / valid cex), so compare with [=]. *)
  let same (d1, g1, r1) (d2, g2, r2) =
    d1 = d2 && String.equal g1 g2
    && (r1 = r2 || (Float.is_nan r1 && Float.is_nan r2))
  in
  Alcotest.(check bool) "node_evaluated events = callback order" true
    (List.length callback = List.length evaluated
     && List.for_all2 same callback evaluated);
  Alcotest.(check int) "one evaluation per node" r.Result.stats.Result.nodes
    (List.length evaluated);
  let count name =
    List.length (List.filter (fun env -> Ev.name env.Ev.event = name) events)
  in
  Alcotest.(check bool) "selections present" true (count "node_selected" > 0);
  Alcotest.(check bool) "backprops present" true (count "backprop" > 0);
  Alcotest.(check int) "one verdict event" 1 (count "verdict_reached")

let test_abonn_hyperparameter_grid_all_sound () =
  (* Every (λ, c) pair must keep verdicts consistent with the baseline:
     hyperparameters tune speed, never correctness. *)
  let problem = random_problem ~seed:55 ~dims:[ 2; 6; 2 ] ~eps:0.35 () in
  let baseline = Bfs.verify ~budget:(Budget.of_calls 4000) problem in
  match baseline.Result.verdict with
  | Verdict.Timeout -> Alcotest.fail "baseline timed out; re-seed"
  | ref_v ->
    List.iter
      (fun lambda ->
        List.iter
          (fun c ->
            let config = Config.make ~lambda ~c () in
            let r = Abonn.verify ~config ~budget:(Budget.of_calls 4000) problem in
            match r.Result.verdict with
            | Verdict.Timeout -> ()
            | v ->
              Alcotest.(check bool)
                (Printf.sprintf "λ=%.2f c=%.2f verdict" lambda c)
                true
                (Verdict.is_verified v = Verdict.is_verified ref_v))
          [ 0.0; 0.2; 1.0 ])
      [ 0.0; 0.5; 1.0 ]

let test_abonn_random_selection_still_complete () =
  let problem = random_problem ~seed:56 ~dims:[ 2; 6; 2 ] ~eps:0.35 () in
  let baseline = Bfs.verify ~budget:(Budget.of_calls 4000) problem in
  let config = Config.make ~selection:(Config.Uniform_random 1) () in
  let r = Abonn.verify ~config ~budget:(Budget.of_calls 4000) problem in
  match baseline.Result.verdict, r.Result.verdict with
  | Verdict.Timeout, _ | _, Verdict.Timeout -> ()
  | v1, v2 ->
    Alcotest.(check bool) "random selection same verdict" true
      (Verdict.is_verified v1 = Verdict.is_verified v2)

let test_abonn_faster_on_violated_ensemble () =
  (* The paper's headline: on violated problems ABONN's guided order finds
     counterexamples with fewer sub-problem visits than breadth-first
     BaB.  Individual instances can go either way; the ensemble total
     must favour ABONN.  60 instances keep the statistic robust to the
     small trajectory shifts bound caching introduces (monotone
     tightening can reorder which child a heuristic pops first). *)
  let total_abonn = ref 0 and total_bfs = ref 0 and falsified = ref 0 in
  for seed = 100 to 159 do
    let problem = random_problem ~seed ~dims:[ 3; 8; 8; 2 ] ~eps:0.6 () in
    (* pinned sequential: the guided-vs-FIFO visit-order statistic is a
       property of the sequential engines (ABONN_DOMAINS must not flip it) *)
    let bfs = Bfs.verify ~budget:(Budget.of_calls 3000) ~domains:1 problem in
    let abonn = Abonn.verify ~budget:(Budget.of_calls 3000) ~domains:1 problem in
    match bfs.Result.verdict, abonn.Result.verdict with
    | Verdict.Falsified _, Verdict.Falsified _ ->
      incr falsified;
      total_bfs := !total_bfs + bfs.Result.stats.Result.appver_calls;
      total_abonn := !total_abonn + abonn.Result.stats.Result.appver_calls
    | _, _ -> ()
  done;
  Alcotest.(check bool) "enough falsified instances" true (!falsified >= 12);
  Alcotest.(check bool)
    (Printf.sprintf "ABONN total calls (%d) <= BFS total calls (%d)" !total_abonn !total_bfs)
    true
    (!total_abonn <= !total_bfs)

let suite =
  [ ( "abonn.potentiality",
      [ Alcotest.test_case "proved -inf" `Quick test_potentiality_proved_is_neg_inf;
        Alcotest.test_case "cex +inf" `Quick test_potentiality_valid_cex_is_pos_inf;
        Alcotest.test_case "interpolation" `Quick test_potentiality_interpolation;
        Alcotest.test_case "lambda extremes" `Quick test_potentiality_lambda_extremes;
        Alcotest.test_case "monotone in depth" `Quick test_potentiality_monotone_in_depth;
        Alcotest.test_case "monotone in phat" `Quick test_potentiality_monotone_in_phat;
        Alcotest.test_case "rejects bad args" `Quick test_potentiality_rejects_bad_args
      ] );
    ( "abonn.config",
      [ Alcotest.test_case "defaults" `Quick test_config_defaults;
        Alcotest.test_case "validation" `Quick test_config_validation
      ] );
    ( "abonn.algorithm",
      [ Alcotest.test_case "verifies easy" `Quick test_abonn_verifies_easy;
        Alcotest.test_case "falsifies large eps" `Quick test_abonn_falsifies_large_eps;
        Alcotest.test_case "agrees with baseline" `Quick test_abonn_agrees_with_baseline;
        Alcotest.test_case "cex always valid" `Quick test_abonn_cex_always_valid;
        Alcotest.test_case "times out" `Quick test_abonn_times_out;
        Alcotest.test_case "trace observes expansions" `Quick test_abonn_trace_observes_expansions;
        Alcotest.test_case "obs events match trace callback" `Quick
          test_abonn_obs_events_match_trace_callback;
        Alcotest.test_case "hyperparameter grid sound" `Quick test_abonn_hyperparameter_grid_all_sound;
        Alcotest.test_case "random selection complete" `Quick test_abonn_random_selection_still_complete;
        Alcotest.test_case "faster on violated ensemble" `Slow test_abonn_faster_on_violated_ensemble
      ] )
  ]

(* --- Scripted-AppVer tests: pin down Alg. 1's mechanics exactly ---

   A mock AppVer returns predetermined p̂ per node Γ and a mock heuristic
   always splits the lowest unconstrained ReLU, so the MCTS selection /
   expansion / back-propagation order becomes fully observable through
   the trace. *)

module Split = Abonn_spec.Split
module Outcome = Abonn_prop.Outcome
module Appver = Abonn_prop.Appver
module Branching = Abonn_bab.Branching

(* 1-input network with 2 ReLUs; property margin is -100 everywhere, so
   any in-region point is a valid counterexample when scripted as one. *)
let mock_problem () =
  let rng = Rng.create 5 in
  let net = Builder.mlp rng ~dims:[ 1; 2; 1 ] in
  let region = Region.create ~lower:[| 0.0 |] ~upper:[| 1.0 |] in
  let property = Abonn_spec.Property.single [| 0.0 |] (-100.0) in
  Problem.create ~network:net ~region ~property ()

let lowest_relu_heuristic =
  { Branching.name = "mock-lowest";
    prepare =
      (fun problem ->
        let k = Problem.num_relus problem in
        fun ~gamma ~pre_bounds:_ ->
          let rec find i =
            if i >= k then None
            else if Split.constrained gamma ~relu:i = None then
              Some
                { Branching.relu = i; score = 0.0; runner_up = -1;
                  runner_up_score = Float.nan; candidates = 1 }
            else find (i + 1)
          in
          find 0) }

(* Script: Γ (as string) -> (p̂, has-valid-candidate).  Unscripted nodes
   default to proved. *)
let scripted_appver problem script =
  let centre = Region.center problem.Problem.region in
  { Appver.name = "scripted";
    run =
      (fun _problem gamma ->
        let key = Split.to_string gamma in
        match List.assoc_opt key script with
        | Some (phat, valid) ->
          Outcome.make ~phat ?candidate:(if valid then Some centre else None) ()
        | None -> Outcome.make ~phat:1.0 ());
    warm = None }

let run_scripted script ~lambda ~c =
  let problem = mock_problem () in
  let appver = scripted_appver problem script in
  let config =
    Abonn_core.Config.make ~lambda ~c ~appver ~heuristic:lowest_relu_heuristic ()
  in
  let order = ref [] in
  let trace ~depth:_ ~gamma ~reward:_ = order := Split.to_string gamma :: !order in
  (* pinned sequential: scripted tests assert the exact expansion order *)
  let result =
    Abonn_core.Abonn.verify ~config ~budget:(Budget.of_calls 50) ~trace ~domains:1
      problem
  in
  (result, List.rev !order)

let test_mock_greedy_descends_into_best_child () =
  (* r0+ scores higher than r0- (more negative p̂); pure exploitation
     must expand under r0+ next and find the scripted counterexample. *)
  let script =
    [ ("ε", (-2.0, false));
      ("r0+", (-1.0, false));
      ("r0-", (-0.5, false));
      ("r0+.r1+", (-1.9, true));
      ("r0+.r1-", (-0.1, false))
    ]
  in
  let result, order = run_scripted script ~lambda:0.0 ~c:0.0 in
  Alcotest.(check bool) "falsified" true (Verdict.is_falsified result.Result.verdict);
  Alcotest.(check (list string)) "exploration order"
    [ "ε"; "r0+"; "r0-"; "r0+.r1+"; "r0+.r1-" ]
    order;
  Alcotest.(check int) "5 appver calls" 5 result.Result.stats.Result.appver_calls

let test_mock_greedy_descends_into_other_child_when_scripted () =
  (* Mirror script: now r0- is the promising side. *)
  let script =
    [ ("ε", (-2.0, false));
      ("r0+", (-0.5, false));
      ("r0-", (-1.0, false));
      ("r0-.r1+", (-1.9, true));
      ("r0-.r1-", (-0.1, false))
    ]
  in
  let result, order = run_scripted script ~lambda:0.0 ~c:0.0 in
  Alcotest.(check bool) "falsified" true (Verdict.is_falsified result.Result.verdict);
  Alcotest.(check (list string)) "exploration order"
    [ "ε"; "r0+"; "r0-"; "r0-.r1+"; "r0-.r1-" ]
    order

let test_mock_proved_subtree_never_reentered () =
  (* r0+ is proved at once (-∞ reward); everything happens under r0-. *)
  let script =
    [ ("ε", (-2.0, false));
      ("r0+", (1.0, false));
      ("r0-", (-1.0, false));
      ("r0-.r1+", (1.0, false));
      ("r0-.r1-", (1.0, false))
    ]
  in
  let result, order = run_scripted script ~lambda:0.5 ~c:0.2 in
  Alcotest.(check bool) "verified" true (Verdict.is_verified result.Result.verdict);
  Alcotest.(check (list string)) "no node under r0+"
    [ "ε"; "r0+"; "r0-"; "r0-.r1+"; "r0-.r1-" ]
    order

let test_mock_depth_reward_prefers_deeper () =
  (* λ=1 ignores p̂: both children tie at depth 1, the plus child wins
     ties, and the search keeps digging under it. *)
  let script =
    [ ("ε", (-2.0, false));
      ("r0+", (-0.1, false));
      ("r0-", (-1.9, false));
      ("r0+.r1+", (-0.1, true));
      ("r0+.r1-", (-0.1, false))
    ]
  in
  let result, order = run_scripted script ~lambda:1.0 ~c:0.0 in
  Alcotest.(check bool) "falsified" true (Verdict.is_falsified result.Result.verdict);
  Alcotest.(check (list string)) "tie broken toward plus"
    [ "ε"; "r0+"; "r0-"; "r0+.r1+"; "r0+.r1-" ]
    order

let mock_suite =
  ( "abonn.scripted",
    [ Alcotest.test_case "greedy descends best child" `Quick test_mock_greedy_descends_into_best_child;
      Alcotest.test_case "greedy mirror" `Quick test_mock_greedy_descends_into_other_child_when_scripted;
      Alcotest.test_case "proved subtree pruned" `Quick test_mock_proved_subtree_never_reentered;
      Alcotest.test_case "depth reward ties" `Quick test_mock_depth_reward_prefers_deeper
    ] )

let suite = suite @ [ mock_suite ]
