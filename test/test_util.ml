(* Tests for Abonn_util: Rng determinism and distribution sanity, Stats
   quantiles/histograms, Heap ordering, Budget accounting, Table layout. *)

module Rng = Abonn_util.Rng
module Stats = Abonn_util.Stats
module Heap = Abonn_util.Heap
module Budget = Abonn_util.Budget
module Table = Abonn_util.Table

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = Array.init 10 (fun _ -> Rng.int64 a) in
  let ys = Array.init 10 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "different seeds differ" true (xs <> ys)

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  let b = Rng.copy a in
  let x = Rng.int64 a in
  let y = Rng.int64 b in
  Alcotest.(check int64) "copy replays" x y

let test_rng_split_differs () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = Array.init 5 (fun _ -> Rng.int64 a) in
  let ys = Array.init 5 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split stream differs" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_uniform_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.uniform rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_uniform_mean () =
  let rng = Rng.create 11 in
  let xs = Array.init 10_000 (fun _ -> Rng.uniform rng) in
  let m = Stats.mean xs in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (m -. 0.5) < 0.02)

let test_rng_gaussian_moments () =
  let rng = Rng.create 13 in
  let xs = Array.init 20_000 (fun _ -> Rng.gaussian rng) in
  Alcotest.(check bool) "mean near 0" true (Float.abs (Stats.mean xs) < 0.05);
  Alcotest.(check bool) "stddev near 1" true (Float.abs (Stats.stddev xs -. 1.0) < 0.05)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 17 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

(* --- Stats --- *)

let test_stats_mean () = check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_mean_empty () = check_float "empty mean" 0.0 (Stats.mean [||])

let test_stats_variance () =
  check_float "variance" 1.25 (Stats.variance [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_median_odd () = check_float "median odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |])

let test_stats_median_even () =
  check_float "median even" 2.5 (Stats.median [| 4.0; 1.0; 3.0; 2.0 |])

let test_stats_percentile_endpoints () =
  let xs = [| 10.0; 20.0; 30.0 |] in
  check_float "p0" 10.0 (Stats.percentile xs 0.0);
  check_float "p100" 30.0 (Stats.percentile xs 100.0)

let test_stats_percentile_interpolates () =
  let xs = [| 0.0; 10.0 |] in
  check_float "p25" 2.5 (Stats.percentile xs 25.0)

let test_stats_box_plot () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0; 100.0 |] in
  let b = Stats.box_plot xs in
  Alcotest.(check (list (float 1e-9))) "outliers" [ 100.0 ] b.Stats.outliers;
  Alcotest.(check bool) "median inside" true (b.Stats.q1 <= b.Stats.med && b.Stats.med <= b.Stats.q3)

let test_stats_histogram_counts () =
  let xs = [| 0.0; 0.5; 1.0; 1.5; 2.0 |] in
  let h = Stats.histogram ~bins:2 xs in
  Alcotest.(check int) "total count" 5 (Array.fold_left ( + ) 0 h.Stats.counts)

let test_stats_log_histogram () =
  let xs = [| 1.0; 10.0; 100.0; 1000.0 |] in
  let h = Stats.log_histogram ~bins:3 xs in
  Alcotest.(check int) "total count" 4 (Array.fold_left ( + ) 0 h.Stats.counts);
  Alcotest.(check int) "edges" 4 (Array.length h.Stats.edges)

let test_stats_log_histogram_rejects_nonpositive () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.log_histogram: non-positive datum") (fun () ->
      ignore (Stats.log_histogram [| 1.0; 0.0 |]))

let test_stats_geometric_mean () =
  check_float "geomean" 2.0 (Stats.geometric_mean [| 1.0; 2.0; 4.0 |])

(* --- Heap --- *)

let test_heap_orders () =
  let h = Heap.create () in
  List.iter (fun (k, v) -> Heap.push h k v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  let popped = List.init 3 (fun _ -> match Heap.pop h with Some (_, v) -> v | None -> "?") in
  Alcotest.(check (list string)) "sorted pops" [ "a"; "b"; "c" ] popped

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h 1.0 v) [ "first"; "second"; "third" ];
  let popped = List.init 3 (fun _ -> match Heap.pop h with Some (_, v) -> v | None -> "?") in
  Alcotest.(check (list string)) "FIFO on ties" [ "first"; "second"; "third" ] popped

let test_heap_empty_pop () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "pop empty" true (Heap.pop h = None)

let test_heap_peek () =
  let h = Heap.create () in
  Heap.push h 5.0 "x";
  Heap.push h 2.0 "y";
  (match Heap.peek h with
   | Some (k, v) ->
     check_float "peek key" 2.0 k;
     Alcotest.(check string) "peek value" "y" v
   | None -> Alcotest.fail "peek on non-empty");
  Alcotest.(check int) "peek preserves" 2 (Heap.length h)

let test_heap_random_sorted =
  QCheck.Test.make ~name:"heap pops keys in sorted order" ~count:100
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h k ()) keys;
      let rec drain acc =
        match Heap.pop h with Some (k, ()) -> drain (k :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare keys)

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h 1.0 "a";
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h)

(* --- Budget --- *)

let test_budget_calls () =
  let b = Budget.of_calls 3 in
  Alcotest.(check bool) "fresh" false (Budget.exhausted b);
  Budget.record_call b;
  Budget.record_call b;
  Alcotest.(check bool) "two calls" false (Budget.exhausted b);
  Budget.record_call b;
  Alcotest.(check bool) "three calls" true (Budget.exhausted b);
  Alcotest.(check int) "count" 3 (Budget.calls_used b)

let test_budget_unlimited () =
  let b = Budget.unlimited () in
  for _ = 1 to 1000 do Budget.record_call b done;
  Alcotest.(check bool) "never exhausts" false (Budget.exhausted b)

let test_budget_seconds () =
  let b = Budget.of_seconds 0.0 in
  Alcotest.(check bool) "instant timeout" true (Budget.exhausted b)

let test_budget_combine () =
  let b = Budget.combine ~calls:2 ~seconds:1000.0 () in
  Budget.record_call b;
  Budget.record_call b;
  Alcotest.(check bool) "calls trip first" true (Budget.exhausted b)

(* Regression (fuzz-generator audit): budgets with exactly zero remaining
   must be exhausted from birth — an engine that checks the budget before
   its first AppVer call must not get to make it. *)
let test_budget_zero_remaining () =
  Alcotest.(check bool) "of_calls 0 born exhausted" true (Budget.exhausted (Budget.of_calls 0));
  Alcotest.(check bool) "of_seconds 0 born exhausted" true
    (Budget.exhausted (Budget.of_seconds 0.0));
  Alcotest.(check bool) "combine zero seconds trips despite call headroom" true
    (Budget.exhausted (Budget.combine ~calls:1000 ~seconds:0.0 ()));
  Alcotest.(check bool) "negative limits clamp to zero" true
    (Budget.exhausted (Budget.of_calls (-3)) && Budget.exhausted (Budget.of_seconds (-1.0)));
  let b = Budget.of_calls 1 in
  Alcotest.(check bool) "one call of headroom" false (Budget.exhausted b);
  Budget.record_call b;
  Alcotest.(check bool) "inclusive at the limit" true (Budget.exhausted b)

(* --- Table --- *)

let test_table_render_shape () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header + sep + 2 rows" 4 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check int) "equal widths" (String.length (List.hd lines)) (String.length l))
    lines

let test_table_pads_short_rows () =
  let s = Table.render ~header:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_table_bar () =
  Alcotest.(check string) "full bar" (String.make 10 '#') (Table.bar ~width:10 1.0 1.0);
  Alcotest.(check string) "half bar" (String.make 5 '#') (Table.bar ~width:10 0.5 1.0);
  Alcotest.(check string) "zero max" "" (Table.bar ~width:10 1.0 0.0)

let test_table_fmt_float () =
  Alcotest.(check string) "fixed" "3.14" (Table.fmt_float 3.14159);
  Alcotest.(check string) "inf" "inf" (Table.fmt_float infinity);
  Alcotest.(check string) "-inf" "-inf" (Table.fmt_float neg_infinity);
  Alcotest.(check string) "nan" "nan" (Table.fmt_float Float.nan)

(* Regression (fuzz-generator audit): [range] with reversed bounds used to
   draw from a *decreasing* affine map — values landed in (hi, lo] and
   downstream interval constructions silently inverted.  Bounds are now
   normalised, equal bounds are a point mass, and the stream advances
   exactly once per call either way. *)
let test_rng_range_reversed_and_equal () =
  let rng = Rng.create 91 in
  for _ = 1 to 500 do
    let v = Rng.range rng 2.0 (-1.0) in
    Alcotest.(check bool) "reversed bounds normalised" true (v >= -1.0 && v < 2.0)
  done;
  Alcotest.(check (float 0.0)) "equal bounds are a point" 3.5 (Rng.range rng 3.5 3.5);
  (* stream stability: a degenerate call consumes exactly one draw *)
  let a = Rng.create 17 and b = Rng.create 17 in
  ignore (Rng.range a 1.0 1.0);
  ignore (Rng.uniform b);
  Alcotest.(check int64) "advances once" (Rng.int64 a) (Rng.int64 b)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [ ( "util.rng",
      [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
        Alcotest.test_case "split differs" `Quick test_rng_split_differs;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
        Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
        Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        Alcotest.test_case "int rejects non-positive" `Quick test_rng_int_rejects_nonpositive;
        Alcotest.test_case "range reversed/equal bounds" `Quick test_rng_range_reversed_and_equal
      ] );
    ( "util.stats",
      [ Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "mean empty" `Quick test_stats_mean_empty;
        Alcotest.test_case "variance" `Quick test_stats_variance;
        Alcotest.test_case "median odd" `Quick test_stats_median_odd;
        Alcotest.test_case "median even" `Quick test_stats_median_even;
        Alcotest.test_case "percentile endpoints" `Quick test_stats_percentile_endpoints;
        Alcotest.test_case "percentile interpolates" `Quick test_stats_percentile_interpolates;
        Alcotest.test_case "box plot" `Quick test_stats_box_plot;
        Alcotest.test_case "histogram counts" `Quick test_stats_histogram_counts;
        Alcotest.test_case "log histogram" `Quick test_stats_log_histogram;
        Alcotest.test_case "log histogram rejects" `Quick test_stats_log_histogram_rejects_nonpositive;
        Alcotest.test_case "geometric mean" `Quick test_stats_geometric_mean
      ] );
    ( "util.heap",
      [ Alcotest.test_case "orders" `Quick test_heap_orders;
        Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "empty pop" `Quick test_heap_empty_pop;
        Alcotest.test_case "peek" `Quick test_heap_peek;
        Alcotest.test_case "clear" `Quick test_heap_clear;
        qtest test_heap_random_sorted
      ] );
    ( "util.budget",
      [ Alcotest.test_case "calls" `Quick test_budget_calls;
        Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
        Alcotest.test_case "seconds" `Quick test_budget_seconds;
        Alcotest.test_case "combine" `Quick test_budget_combine;
        Alcotest.test_case "zero remaining" `Quick test_budget_zero_remaining
      ] );
    ( "util.table",
      [ Alcotest.test_case "render shape" `Quick test_table_render_shape;
        Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
        Alcotest.test_case "bar" `Quick test_table_bar;
        Alcotest.test_case "fmt_float" `Quick test_table_fmt_float
      ] )
  ]
