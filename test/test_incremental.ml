(* Differential battery for the incremental bound cache (Prop.Incremental
   + Deeppoly.run_warm + Appver.run_warm): warm-started propagation must
   share parent prefixes physically, never be looser than from-scratch
   DeepPoly, agree with it bit-for-bit while no tightening clamp has
   fired, stay sound against exact enumeration, and leave engine
   verdicts unchanged cache-on vs cache-off. *)

module Rng = Abonn_util.Rng
module Budget = Abonn_util.Budget
module Obs = Abonn_obs.Obs
module Metrics = Abonn_obs.Metrics
module Sink = Abonn_obs.Sink
module Event = Abonn_obs.Event
module Network = Abonn_nn.Network
module Builder = Abonn_nn.Builder
module Affine = Abonn_nn.Affine
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Problem = Abonn_spec.Problem
module Split = Abonn_spec.Split
module Verdict = Abonn_spec.Verdict
module Outcome = Abonn_prop.Outcome
module Bounds = Abonn_prop.Bounds
module Deeppoly = Abonn_prop.Deeppoly
module Appver = Abonn_prop.Appver
module Incremental = Abonn_prop.Incremental
module Bfs = Abonn_bab.Bfs
module Bestfirst = Abonn_bab.Bestfirst
module Exact = Abonn_bab.Exact
module Result = Abonn_bab.Result
module Gen = Abonn_check.Gen

let mlp_problem ?(eps = 0.3) ~dims seed =
  let rng = Rng.create seed in
  let network = Builder.mlp rng ~dims in
  let dim = List.hd dims in
  let center = Array.init dim (fun _ -> Rng.range rng (-0.5) 0.5) in
  let region = Region.linf_ball ~center ~eps () in
  let label = Network.predict network center in
  let property =
    Property.robustness ~num_classes:(List.nth dims (List.length dims - 1)) ~label
  in
  Problem.create ~network ~region ~property ()

let conv_problem seed =
  let rng = Rng.create seed in
  let convs = [ { Builder.out_channels = 1; kernel = 2; stride = 1; padding = 0 } ] in
  let network =
    Builder.convnet rng ~in_channels:1 ~in_h:3 ~in_w:3 ~convs ~dense:[] ~num_classes:2
  in
  let center = Array.init 9 (fun _ -> Rng.range rng 0.2 0.8) in
  let region = Region.linf_ball ~center ~eps:0.25 () in
  let label = Network.predict network center in
  let property = Property.robustness ~num_classes:2 ~label in
  Problem.create ~network ~region ~property ()

(* A root-to-leaf constraint path matching [x]'s concrete ReLU phases:
   [x] stays feasible in every cell, so no step may report infeasible. *)
let phase_path (problem : Problem.t) x depth =
  let affine = problem.Problem.affine in
  let pre = Affine.pre_activations affine x in
  let k = Problem.num_relus problem in
  List.init depth (fun i ->
      let relu = i * k / depth in
      let layer, idx = Affine.relu_position affine relu in
      let phase = if pre.(layer).(idx) >= 0.0 then Split.Active else Split.Inactive in
      (relu, phase))

let counter name =
  match List.assoc_opt name (Metrics.snapshot ()).Metrics.counters with
  | Some n -> n
  | None -> 0

let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.reset ();
      Metrics.set_enabled false)
    f

(* --- prefix sharing --- *)

(* Splitting at hidden layer 1 must alias (physical equality) the
   parent's layer-0 bounds instead of recomputing them, and classify the
   reuse as [Prefix 1]; an unchanged gamma is a full-prefix hit. *)
let test_prefix_physically_shared () =
  let problem = mlp_problem ~dims:[ 3; 4; 4; 2 ] 42 in
  let _, state0 = Deeppoly.run_warm problem [] in
  let st = Option.get state0 in
  let affine = problem.Problem.affine in
  let relu =
    (* first ReLU living in hidden layer 1 *)
    let rec find r = if fst (Affine.relu_position affine r) = 1 then r else find (r + 1) in
    find 0
  in
  let gamma = Split.extend [] ~relu ~phase:Split.Active in
  (match Incremental.classify st ~appver:"deeppoly" ~problem ~gamma with
   | Incremental.Prefix l -> Alcotest.(check int) "split layer" 1 l
   | Incremental.Tighten | Incremental.Incompatible ->
     Alcotest.fail "expected Prefix reuse for a layer-1 split");
  (match Incremental.classify st ~appver:"deeppoly" ~problem ~gamma:[] with
   | Incremental.Prefix l -> Alcotest.(check int) "full prefix on equal gamma" 2 l
   | Incremental.Tighten | Incremental.Incompatible ->
     Alcotest.fail "expected full-prefix reuse for an identical gamma");
  let outcome, _ = Deeppoly.run_warm ~state:st problem gamma in
  Alcotest.(check bool) "layer 0 bounds aliased, not copied" true
    (outcome.Outcome.pre_bounds.(0) == st.Incremental.pre_bounds.(0))

(* --- warm vs scratch differential --- *)

(* Walk phase paths of depth 1–8 over generated MLPs/CNNs plus a deep
   hand-built MLP.  Invariants per step: the warm p̂ is never looser than
   scratch, the in-cell point never reports infeasible, and while no
   tightening clamp has fired on the path the warm outcome equals the
   scratch outcome bit-for-bit. *)
let differential_path problem =
  let k = Problem.num_relus problem in
  if k = 0 then ()
  else begin
    let x0 = Region.center problem.Problem.region in
    let depth = min 8 k in
    let path = phase_path problem x0 depth in
    let gamma = ref [] and state = ref None and clean = ref true in
    List.iter
      (fun (relu, phase) ->
        gamma := Split.extend !gamma ~relu ~phase;
        let clamps0 = counter "appver.cache.tighten_clamps" in
        let warm, next = Deeppoly.run_warm ?state:!state problem !gamma in
        if counter "appver.cache.tighten_clamps" > clamps0 then clean := false;
        let scratch = Deeppoly.run problem !gamma in
        Alcotest.(check bool) "in-cell point never infeasible" false
          warm.Outcome.infeasible;
        Alcotest.(check bool)
          (Printf.sprintf "warm phat %.17g never looser than scratch %.17g"
             warm.Outcome.phat scratch.Outcome.phat)
          true
          (warm.Outcome.phat >= scratch.Outcome.phat -. 1e-9);
        if !clean then begin
          Alcotest.(check bool) "clamp-free warm phat is bit-for-bit scratch" true
            (Float.equal warm.Outcome.phat scratch.Outcome.phat);
          Alcotest.(check bool) "clamp-free warm rows are bit-for-bit scratch" true
            (Array.for_all2 Float.equal warm.Outcome.row_lower scratch.Outcome.row_lower)
        end;
        state := next)
      path
  end

let test_warm_matches_scratch_generated () =
  with_metrics (fun () ->
      for index = 0 to 19 do
        differential_path (Gen.case ~seed:515 ~index).Gen.problem
      done)

let test_warm_matches_scratch_deep_and_conv () =
  with_metrics (fun () ->
      differential_path (mlp_problem ~dims:[ 3; 3; 3; 3; 3; 3; 3; 3; 2 ] ~eps:0.2 7);
      differential_path (mlp_problem ~dims:[ 4; 6; 5; 4; 3 ] ~eps:0.4 11);
      differential_path (conv_problem 23))

(* --- exhaustive 2^K sweep --- *)

(* Enumerate every ReLU phase cell of a small net as a warm-started DFS
   (states flow parent → child exactly as in BaB).  At every node warm
   must not be looser than scratch; at every leaf a warm "proved" claim
   is checked against exact resolution of that cell. *)
let exhaustive_sweep problem =
  let k = Problem.num_relus problem in
  let leaves = ref 0 in
  let rec dfs gamma state next_relu =
    let warm, st = Deeppoly.run_warm ?state problem gamma in
    let scratch = Deeppoly.run problem gamma in
    Alcotest.(check bool) "warm never looser than scratch" true
      (warm.Outcome.phat >= scratch.Outcome.phat -. 1e-9);
    if next_relu >= k then begin
      incr leaves;
      if Outcome.proved warm then
        match Exact.resolve problem gamma with
        | `Verified -> ()
        | `Falsified x ->
          Alcotest.failf "warm proved cell %s but exact resolution falsifies it (margin %.9g)"
            (Split.to_string gamma)
            (Problem.concrete_margin problem x)
    end
    else if not warm.Outcome.infeasible then begin
      dfs (Split.extend gamma ~relu:next_relu ~phase:Split.Active) st (next_relu + 1);
      dfs (Split.extend gamma ~relu:next_relu ~phase:Split.Inactive) st (next_relu + 1)
    end
  in
  dfs [] None 0;
  Alcotest.(check bool) "visited a real tree" true (!leaves >= 1)

let test_exhaustive_small_nets () =
  exhaustive_sweep (mlp_problem ~dims:[ 2; 3; 2 ] ~eps:0.5 3);
  exhaustive_sweep (mlp_problem ~dims:[ 2; 2; 2; 2 ] ~eps:0.4 5);
  exhaustive_sweep (mlp_problem ~dims:[ 3; 5; 2 ] ~eps:0.6 9)

(* --- engine verdicts cache-on vs cache-off --- *)

let test_engine_verdicts_cache_invariant () =
  let problems =
    [ mlp_problem ~dims:[ 2; 3; 2 ] ~eps:0.5 3;
      mlp_problem ~dims:[ 3; 5; 2 ] ~eps:0.6 9;
      mlp_problem ~dims:[ 3; 4; 4; 2 ] ~eps:0.45 42;
      conv_problem 23 ]
  in
  List.iter
    (fun problem ->
      List.iter
        (fun (name, run) ->
          let on = Incremental.with_enabled true (fun () -> (run () : Result.t)) in
          let off = Incremental.with_enabled false run in
          Alcotest.(check bool)
            (name ^ ": verified agrees cache-on/off")
            (Verdict.is_verified off.Result.verdict)
            (Verdict.is_verified on.Result.verdict);
          Alcotest.(check bool)
            (name ^ ": falsified agrees cache-on/off")
            (Verdict.is_falsified off.Result.verdict)
            (Verdict.is_falsified on.Result.verdict);
          List.iter
            (fun (r : Result.t) ->
              match r.Result.verdict with
              | Verdict.Falsified x ->
                Alcotest.(check bool) (name ^ ": witness validates") true
                  (Problem.is_counterexample problem x)
              | Verdict.Verified | Verdict.Timeout -> ())
            [ on; off ])
        [ ("bfs", fun () -> Bfs.verify ~budget:(Budget.of_calls 5000) problem);
          ("bestfirst", fun () -> Bestfirst.verify ~budget:(Budget.of_calls 5000) problem)
        ])
    problems

(* --- fallback and escape hatch --- *)

(* A state from another network (or another slope) must be rejected by
   classification and degrade to the from-scratch result bit-for-bit. *)
let test_incompatible_state_falls_back () =
  let a = mlp_problem ~dims:[ 3; 4; 4; 2 ] 42 in
  let b = mlp_problem ~dims:[ 3; 5; 5; 2 ] 43 in
  let _, sa = Deeppoly.run_warm a [] in
  let sa = Option.get sa in
  (match Incremental.classify sa ~appver:"deeppoly" ~problem:b ~gamma:[] with
   | Incremental.Incompatible -> ()
   | Incremental.Prefix _ | Incremental.Tighten ->
     Alcotest.fail "foreign problem must classify as Incompatible");
  (match Incremental.classify sa ~appver:"deeppoly-zero" ~problem:a ~gamma:[] with
   | Incremental.Incompatible -> ()
   | Incremental.Prefix _ | Incremental.Tighten ->
     Alcotest.fail "slope mismatch must classify as Incompatible");
  let warm, _ = Deeppoly.run_warm ~state:sa b [] in
  let scratch = Deeppoly.run b [] in
  Alcotest.(check bool) "fallback phat bit-for-bit" true
    (Float.equal warm.Outcome.phat scratch.Outcome.phat);
  Alcotest.(check bool) "fallback rows bit-for-bit" true
    (Array.for_all2 Float.equal warm.Outcome.row_lower scratch.Outcome.row_lower)

let test_disabled_cache_bypasses_warm_path () =
  let problem = mlp_problem ~dims:[ 3; 4; 4; 2 ] 42 in
  let _, st = Deeppoly.run_warm problem [] in
  Alcotest.(check bool) "cache enabled by default" true (Incremental.enabled ());
  Incremental.with_enabled false (fun () ->
      let outcome, state =
        Appver.run_warm Appver.deeppoly ?state:st problem []
      in
      Alcotest.(check bool) "no state returned when disabled" true (state = None);
      let scratch = Deeppoly.run problem [] in
      Alcotest.(check bool) "disabled path is the scratch path" true
        (Float.equal outcome.Outcome.phat scratch.Outcome.phat));
  Alcotest.(check bool) "flag restored" true (Incremental.enabled ())

(* --- observability --- *)

(* A real BFS run with the cache on must report nonzero cache counters,
   and every [bound_reuse] trace event must annotate the immediately
   preceding [bound_computed] (same appver, same depth). *)
let test_counters_and_bound_reuse_events () =
  (* scan a few instances for one the root cannot decide, so the run
     genuinely expands children and exercises the cache *)
  let problem =
    let rec find seed =
      if seed > 120 then Alcotest.fail "no splitting instance found in seed range"
      else begin
        let p = mlp_problem ~dims:[ 3; 8; 8; 2 ] ~eps:0.6 seed in
        let r = Bfs.verify ~budget:(Budget.of_calls 200) p in
        if r.Result.stats.Result.nodes > 1 then p else find (seed + 1)
      end
    in
    find 100
  in
  with_metrics (fun () ->
      let sink, events = Sink.memory () in
      let result =
        Obs.with_sink sink (fun () ->
            Bfs.verify ~budget:(Budget.of_calls 200) problem)
      in
      Alcotest.(check bool) "run actually split" true (result.Result.stats.Result.nodes > 1);
      Alcotest.(check bool) "prefix hits recorded" true
        (counter "appver.cache.prefix_hits" > 0);
      Alcotest.(check bool) "layers skipped recorded" true
        (counter "appver.cache.layers_skipped" >= 0);
      let evs = events () in
      let reuses =
        List.filter
          (fun e -> match e.Event.event with Event.Bound_reuse _ -> true | _ -> false)
          evs
      in
      Alcotest.(check bool) "bound_reuse events emitted" true (List.length reuses > 0);
      let rec pairs = function
        | prev :: ({ Event.event = Event.Bound_reuse r; _ } as cur) :: rest ->
          (match prev.Event.event with
           | Event.Bound_computed b ->
             Alcotest.(check string) "annotates same appver" b.appver r.appver;
             Alcotest.(check int) "annotates same depth" b.depth r.depth;
             Alcotest.(check int) "layers_skipped mirrors from_layer" r.from_layer
               r.layers_skipped
           | _ -> Alcotest.fail "bound_reuse not preceded by bound_computed");
          pairs (cur :: rest)
        | _ :: rest -> pairs rest
        | [] -> ()
      in
      pairs evs)

let test_bound_reuse_json_roundtrip () =
  let ev =
    Event.Bound_reuse
      { appver = "deeppoly"; depth = 5; from_layer = 2; layers_skipped = 2; clamps = 7 }
  in
  let env = { Event.seq = 1; t = 0.25; domain = None; event = ev } in
  match Event.of_json (Event.to_json env) with
  | Ok env' ->
    Alcotest.(check bool) "round-trips structurally" true (Event.equal env env')
  | Error msg -> Alcotest.failf "bound_reuse did not parse back: %s" msg

let suite =
  [ ( "incremental",
      [ Alcotest.test_case "prefix bounds physically shared" `Quick
          test_prefix_physically_shared;
        Alcotest.test_case "warm vs scratch on generated cases" `Quick
          test_warm_matches_scratch_generated;
        Alcotest.test_case "warm vs scratch on deep MLP and CNN" `Quick
          test_warm_matches_scratch_deep_and_conv;
        Alcotest.test_case "exhaustive 2^K cells stay sound" `Quick
          test_exhaustive_small_nets;
        Alcotest.test_case "engine verdicts cache-on vs cache-off" `Quick
          test_engine_verdicts_cache_invariant;
        Alcotest.test_case "incompatible state falls back to scratch" `Quick
          test_incompatible_state_falls_back;
        Alcotest.test_case "disabled cache bypasses warm path" `Quick
          test_disabled_cache_bypasses_warm_path;
        Alcotest.test_case "cache counters and bound_reuse trace" `Quick
          test_counters_and_bound_reuse_events;
        Alcotest.test_case "bound_reuse JSON round-trip" `Quick
          test_bound_reuse_json_roundtrip ] )
  ]
