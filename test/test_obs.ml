(* Tests for Abonn_obs: event ordering and envelope stamping through the
   in-memory sink, JSONL encode/decode round-trips, counter/timer/
   histogram correctness, sink lifecycle, and the off-by-default
   guarantee (nothing is recorded while no sink is installed and metrics
   are disabled). *)

module Event = Abonn_obs.Event
module Sink = Abonn_obs.Sink
module Metrics = Abonn_obs.Metrics
module Obs = Abonn_obs.Obs

(* Every test leaves the global registry clean. *)
let isolated f () =
  Metrics.reset ();
  Metrics.set_enabled false;
  Fun.protect ~finally:(fun () ->
      Metrics.reset ();
      Metrics.set_enabled false)
    f

let sample_events =
  [ Event.Run_started { engine = "abonn"; instance = "mnist_l2:0" };
    Event.Node_evaluated
      { engine = "abonn"; depth = 2; gamma = "r3+.r17-"; phat = -0.5; reward = 0.35 };
    Event.Node_selected { engine = "abonn"; depth = 3; ucb = 1.25 };
    Event.Backprop { engine = "abonn"; depth = 1; reward = 0.75; size = 9 };
    Event.Frontier_pop
      { engine = "bestfirst"; depth = 4; frontier = 11; priority = -0.25 };
    Event.Exact_leaf { engine = "bab-baseline"; depth = 6; verified = true };
    Event.Bound_computed
      { appver = "deeppoly"; depth = 2; phat = Float.infinity; elapsed = 0.001 };
    Event.Bound_reuse
      { appver = "deeppoly"; depth = 3; from_layer = 1; layers_skipped = 1; clamps = 4 };
    Event.Lp_solved { vars = 12; rows = 30; status = "optimal"; elapsed = 0.002 };
    Event.Attack_tried { attack = "pgd"; success = false; elapsed = 0.0125 };
    Event.Verdict_reached { engine = "abonn"; verdict = "verified"; elapsed = 0.5 };
    Event.Resource_sample
      { engine = "abonn"; rss_bytes = 104857600; heap_bytes = 8388608;
        minor_words = 1.5e7; major_words = 2.5e6; minor_gcs = 42; major_gcs = 3;
        cpu = 0.75; wall = 1.25; open_nodes = 17; nodes = 33; max_depth = 6;
        nps = 26.4 };
    Event.Run_finished
      { engine = "abonn"; instance = "mnist_l2:0"; verdict = "verified"; calls = 17;
        nodes = 17; max_depth = 4; wall = 0.5 };
    (* Non-finite floats and exotic gamma strings must survive JSONL. *)
    Event.Node_evaluated
      { engine = "abonn"; depth = 0; gamma = "ε"; phat = Float.neg_infinity;
        reward = Float.nan };
    Event.Node_selected { engine = "abonn"; depth = 1; ucb = Float.nan }
  ]

(* --- memory sink: ordering and envelope stamping --- *)

let test_memory_sink_order () =
  let sink, events = Sink.memory () in
  Obs.with_sink sink (fun () ->
      List.iter Obs.emit sample_events);
  let got = events () in
  Alcotest.(check int) "all delivered" (List.length sample_events) (List.length got);
  List.iteri
    (fun i env ->
      Alcotest.(check int) (Printf.sprintf "seq %d" i) (i + 1) env.Event.seq;
      Alcotest.(check string)
        (Printf.sprintf "event %d" i)
        (Event.name (List.nth sample_events i))
        (Event.name env.Event.event))
    got;
  (* trace-relative times are monotone *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "t monotone" true (a.Event.t <= b.Event.t);
      monotone rest
    | _ -> ()
  in
  monotone got

let test_emit_without_sink_is_noop () =
  (* Nothing to observe: emit must not raise and must not leak state
     into a sink installed later (sequence restarts at 1). *)
  Obs.emit (Event.Node_selected { engine = "abonn"; depth = 0; ucb = 0.0 });
  let sink, events = Sink.memory () in
  Obs.with_sink sink (fun () ->
      Obs.emit (Event.Node_selected { engine = "abonn"; depth = 1; ucb = 1.0 }));
  match events () with
  | [ env ] -> Alcotest.(check int) "seq restarts" 1 env.Event.seq
  | l -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length l))

let test_with_sink_removes_on_exception () =
  let sink, events = Sink.memory () in
  (try
     Obs.with_sink sink (fun () ->
         Obs.emit (Event.Node_selected { engine = "abonn"; depth = 0; ucb = 0.0 });
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "sink removed" false (Obs.tracing ());
  Obs.emit (Event.Node_selected { engine = "abonn"; depth = 1; ucb = 1.0 });
  Alcotest.(check int) "no event after removal" 1 (List.length (events ()))

let test_two_sinks_both_receive () =
  let s1, e1 = Sink.memory () and s2, e2 = Sink.memory () in
  Obs.with_sink s1 (fun () ->
      Obs.with_sink s2 (fun () ->
          Obs.emit (Event.Node_selected { engine = "abonn"; depth = 0; ucb = 0.0 })));
  Alcotest.(check int) "first sink" 1 (List.length (e1 ()));
  Alcotest.(check int) "second sink" 1 (List.length (e2 ()))

(* --- JSONL round-trip --- *)

let test_jsonl_round_trip () =
  List.iteri
    (fun i event ->
      let env =
        { Event.seq = i + 1; t = float_of_int i /. 64.0; domain = None; event }
      in
      let line = Event.to_json env in
      match Event.of_json line with
      | Ok back ->
        Alcotest.(check bool)
          (Printf.sprintf "round-trip %d (%s): %s" i (Event.name event) line)
          true (Event.equal env back)
      | Error msg -> Alcotest.fail (Printf.sprintf "parse %s: %s" line msg))
    sample_events

let test_jsonl_rejects_garbage () =
  List.iter
    (fun line ->
      match Event.of_json line with
      | Ok _ -> Alcotest.fail ("accepted: " ^ line)
      | Error _ -> ())
    [ ""; "{"; "not json"; "{\"seq\":1}"; "{\"seq\":1,\"t\":0.0,\"ev\":\"martian\"}";
      "{\"seq\":1,\"t\":0.0,\"ev\":\"backprop\",\"engine\":\"abonn\"}" (* missing fields *);
      "{\"seq\":1,\"t\":0.0,\"ev\":\"node_selected\",\"engine\":\"abonn\",\"depth\":0,\"ucb\":0.0} trailing" ]

let test_jsonl_file_sink () =
  let path = Filename.temp_file "abonn_obs" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let sink = Sink.jsonl_file path in
  Obs.with_sink sink (fun () -> List.iter Obs.emit sample_events);
  sink.Sink.close ();
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "one line per event" (List.length sample_events)
    (List.length lines);
  List.iteri
    (fun i line ->
      match Event.of_json line with
      | Ok env ->
        Alcotest.(check string)
          (Printf.sprintf "line %d type" i)
          (Event.name (List.nth sample_events i))
          (Event.name env.Event.event)
      | Error msg -> Alcotest.fail (Printf.sprintf "line %d: %s" i msg))
    lines

(* --- metrics --- *)

let test_counters () =
  Metrics.set_enabled true;
  Obs.incr "a.x";
  Obs.incr "a.x";
  Obs.incr ~by:40 "a.x";
  Obs.incr "a.y";
  let snap = Metrics.snapshot () in
  Alcotest.(check (list (pair string int)))
    "counters sorted with totals"
    [ ("a.x", 42); ("a.y", 1) ]
    snap.Metrics.counters

let test_spans () =
  Metrics.set_enabled true;
  Obs.span "lp.solve" 0.25;
  Obs.span "lp.solve" 0.5;
  Obs.span "lp.solve" 0.25;
  let snap = Metrics.snapshot () in
  match snap.Metrics.spans with
  | [ ("lp.solve", s) ] ->
    Alcotest.(check int) "calls" 3 s.Metrics.calls;
    Alcotest.(check (float 1e-9)) "total" 1.0 s.Metrics.total;
    Alcotest.(check (float 1e-9)) "max" 0.5 s.Metrics.max
  | _ -> Alcotest.fail "expected exactly lp.solve"

let test_time_records_a_span () =
  Metrics.set_enabled true;
  let r = Obs.time "work" (fun () -> 21 * 2) in
  Alcotest.(check int) "result passed through" 42 r;
  (* and it records even when f raises *)
  (try Obs.time "work" (fun () -> failwith "boom") with Failure _ -> ());
  let snap = Metrics.snapshot () in
  match snap.Metrics.spans with
  | [ ("work", s) ] ->
    Alcotest.(check int) "both calls recorded" 2 s.Metrics.calls;
    Alcotest.(check bool) "non-negative" true (s.Metrics.total >= 0.0)
  | _ -> Alcotest.fail "expected exactly work"

let test_histogram_buckets () =
  Metrics.set_enabled true;
  (* one sample per decade plus out-of-range extremes *)
  List.iter (Obs.observe "h") [ 3e-4; 5e-4; 2e-2; 7.0; 1e9; 0.0 ];
  let snap = Metrics.snapshot () in
  match snap.Metrics.hists with
  | [ ("h", h) ] ->
    Alcotest.(check int) "count" 6 h.Metrics.count;
    Alcotest.(check (float 1e-3)) "min" 0.0 h.Metrics.lo;
    Alcotest.(check (float 1.0)) "max" 1e9 h.Metrics.hi;
    let at edge =
      match
        Array.find_opt (fun (e, _) -> abs_float (e -. edge) < edge /. 2.0) h.Metrics.buckets
      with
      | Some (_, n) -> n
      | None -> Alcotest.fail (Printf.sprintf "no bucket at %g" edge)
    in
    Alcotest.(check int) "1e-4 decade" 2 (at 1e-4);
    Alcotest.(check int) "1e-2 decade" 1 (at 1e-2);
    Alcotest.(check int) "1e0 decade" 1 (at 1.0);
    (* 1e9 clamps into the top decade, 0.0 into the bottom one *)
    Alcotest.(check int) "top decade" 1 (at 100.0);
    Alcotest.(check int) "bottom decade" 1 (at 1e-7)
  | _ -> Alcotest.fail "expected exactly h"

let test_quantile_identical_samples () =
  Metrics.set_enabled true;
  (* all mass at one point: every quantile clamps to the observed value *)
  List.iter (Obs.observe "q") [ 0.005; 0.005; 0.005; 0.005 ];
  match (Metrics.snapshot ()).Metrics.hists with
  | [ ("q", h) ] ->
    List.iter
      (fun q ->
        Alcotest.(check (float 1e-12))
          (Printf.sprintf "q=%g" q)
          0.005 (Metrics.quantile h q))
      [ 0.0; 0.25; 0.5; 0.99; 1.0 ]
  | _ -> Alcotest.fail "expected exactly q"

let test_quantile_interpolates_and_clamps () =
  Metrics.set_enabled true;
  (* 2 samples in the 1e-4 decade, 1 in 1e-2, 1 in [1, 10) *)
  List.iter (Obs.observe "q") [ 1e-4; 1e-4; 1e-2; 7.0 ];
  match (Metrics.snapshot ()).Metrics.hists with
  | [ ("q", h) ] ->
    Alcotest.(check (float 1e-12)) "q=0 is the min" 1e-4 (Metrics.quantile h 0.0);
    Alcotest.(check (float 1e-12)) "q=1 clamps to the max" 7.0 (Metrics.quantile h 1.0);
    (* rank 2 of 4 exhausts the first bucket: exactly its upper edge *)
    Alcotest.(check (float 1e-12)) "p50 on a bucket boundary" 1e-3
      (Metrics.quantile h 0.5);
    (* out-of-range q is clamped, not an error *)
    Alcotest.(check (float 1e-12)) "q<0 clamps" 1e-4 (Metrics.quantile h (-1.0));
    Alcotest.(check (float 1e-12)) "q>1 clamps" 7.0 (Metrics.quantile h 2.0)
  | _ -> Alcotest.fail "expected exactly q"

let test_quantile_empty_is_nan () =
  let h =
    { Metrics.count = 0; sum = 0.0; lo = Float.nan; hi = Float.nan; buckets = [||] }
  in
  Alcotest.(check bool) "nan" true (Float.is_nan (Metrics.quantile h 0.5))

let test_stats_report_shows_quantiles () =
  Metrics.set_enabled true;
  List.iter (Obs.observe "lp.solve") [ 1e-4; 2e-4; 3e-3 ];
  let rendered = Abonn_harness.Report.stats (Metrics.snapshot ()) in
  let contains affix =
    let n = String.length affix and m = String.length rendered in
    let rec go i = i + n <= m && (String.sub rendered i n = affix || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "p50 column" true (contains "p50=");
  Alcotest.(check bool) "p99 column" true (contains "p99=")

let test_gauges () =
  Metrics.set_enabled true;
  Metrics.gauge_set "g" 5.0;
  Metrics.gauge_set "g" 2.0;
  Metrics.gauge_set "g" 8.0;
  Metrics.gauge_add "g" (-3.0);
  match (Metrics.snapshot ()).Metrics.gauges with
  | [ ("g", g) ] ->
    Alcotest.(check (float 1e-12)) "last" 5.0 g.Metrics.last;
    Alcotest.(check (float 1e-12)) "min" 2.0 g.Metrics.lo;
    Alcotest.(check (float 1e-12)) "max" 8.0 g.Metrics.hi;
    Alcotest.(check int) "updates" 4 g.Metrics.updates
  | _ -> Alcotest.fail "expected exactly g"

let test_gauge_add_creates_at_zero () =
  Metrics.set_enabled true;
  Metrics.gauge_add "fresh" 3.0;
  match (Metrics.snapshot ()).Metrics.gauges with
  | [ ("fresh", g) ] -> Alcotest.(check (float 1e-12)) "0 + 3" 3.0 g.Metrics.last
  | _ -> Alcotest.fail "expected exactly fresh"

let test_gauges_in_stats_report () =
  Metrics.set_enabled true;
  Metrics.gauge_set "resource.rss_bytes" 1234.0;
  let rendered = Abonn_harness.Report.stats (Metrics.snapshot ()) in
  let contains affix =
    let n = String.length affix and m = String.length rendered in
    let rec go i = i + n <= m && (String.sub rendered i n = affix || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "gauge table header" true (contains "Gauge");
  Alcotest.(check bool) "gauge row" true (contains "resource.rss_bytes")

let test_reset_clears_everything () =
  Metrics.set_enabled true;
  Obs.incr "c";
  Obs.span "s" 1.0;
  Obs.observe "h" 1.0;
  Metrics.gauge_set "g" 1.0;
  Metrics.reset ();
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "no counters" 0 (List.length snap.Metrics.counters);
  Alcotest.(check int) "no spans" 0 (List.length snap.Metrics.spans);
  Alcotest.(check int) "no gauges" 0 (List.length snap.Metrics.gauges);
  Alcotest.(check int) "no hists" 0 (List.length snap.Metrics.hists)

let test_disabled_records_nothing () =
  (* The overhead guarantee: with no sink and metrics off, instrumented
     code paths leave zero state behind. *)
  Alcotest.(check bool) "inactive" false (Obs.active ());
  Obs.incr "c";
  Obs.span "s" 1.0;
  Obs.observe "h" 1.0;
  Metrics.gauge_set "g" 1.0;
  Metrics.gauge_add "g" 1.0;
  let r = Obs.time "t" (fun () -> 7) in
  Alcotest.(check int) "time passthrough" 7 r;
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "no counters" 0 (List.length snap.Metrics.counters);
  Alcotest.(check int) "no spans" 0 (List.length snap.Metrics.spans);
  Alcotest.(check int) "no gauges" 0 (List.length snap.Metrics.gauges);
  Alcotest.(check int) "no hists" 0 (List.length snap.Metrics.hists)

let test_tracing_flips_active () =
  Alcotest.(check bool) "off" false (Obs.active ());
  let sink, _ = Sink.memory () in
  Obs.with_sink sink (fun () ->
      Alcotest.(check bool) "on with sink" true (Obs.active ());
      Alcotest.(check bool) "tracing" true (Obs.tracing ()));
  Alcotest.(check bool) "off again" false (Obs.active ())

(* --- resource sampler --- *)

module Resource = Abonn_obs.Resource

let test_resource_probes_positive () =
  Alcotest.(check bool) "rss > 0" true (Resource.rss_bytes () > 0);
  Alcotest.(check bool) "heap > 0" true (Resource.heap_bytes () > 0);
  Alcotest.(check bool) "peak >= current" true
    (Resource.peak_rss () >= Resource.rss_bytes () || Resource.peak_rss () > 0)

let test_resource_inactive_tick_is_inert () =
  (* no sink, metrics off: ticks must not sample *)
  let s = Resource.create ~interval:0.0 ~engine:"test" () in
  for i = 1 to 5 do
    Resource.tick s ~open_nodes:i ~nodes:i ~max_depth:1
  done;
  Alcotest.(check int) "no samples while inactive" 0 (Resource.samples s)

let test_resource_cadence_interval_zero () =
  Metrics.set_enabled true;
  (* interval 0: every tick is due *)
  let s = Resource.create ~interval:0.0 ~engine:"test" () in
  for i = 1 to 4 do
    Resource.tick s ~open_nodes:i ~nodes:i ~max_depth:1
  done;
  Alcotest.(check int) "one sample per tick" 4 (Resource.samples s)

let test_resource_cadence_time_gated () =
  Metrics.set_enabled true;
  (* huge interval: only the first tick (due immediately) samples; the
     rest cost one float compare *)
  let s = Resource.create ~interval:1e9 ~engine:"test" () in
  for i = 1 to 100 do
    Resource.tick s ~open_nodes:i ~nodes:i ~max_depth:1
  done;
  Alcotest.(check int) "first tick only" 1 (Resource.samples s);
  (* [final] samples unconditionally so traced runs end fresh *)
  Resource.final s ~open_nodes:0 ~nodes:100 ~max_depth:2;
  Alcotest.(check int) "final forces a sample" 2 (Resource.samples s)

let test_resource_sample_event_payload () =
  let sink, events = Sink.memory () in
  Obs.with_sink sink (fun () ->
      let s = Resource.create ~interval:0.0 ~engine:"unit" () in
      Resource.tick s ~open_nodes:7 ~nodes:12 ~max_depth:3);
  match events () with
  | [ { Event.event =
          Event.Resource_sample
            { engine; rss_bytes; wall; open_nodes; nodes; max_depth; _ };
        _ } ] ->
    Alcotest.(check string) "engine" "unit" engine;
    Alcotest.(check int) "open_nodes" 7 open_nodes;
    Alcotest.(check int) "nodes" 12 nodes;
    Alcotest.(check int) "max_depth" 3 max_depth;
    Alcotest.(check bool) "rss positive" true (rss_bytes > 0);
    Alcotest.(check bool) "wall non-negative" true (wall >= 0.0)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 resource_sample, got %d events" (List.length l))

let test_resource_updates_gauges () =
  Metrics.set_enabled true;
  let s = Resource.create ~interval:0.0 ~engine:"test" () in
  Resource.tick s ~open_nodes:9 ~nodes:1 ~max_depth:1;
  let snap = Metrics.snapshot () in
  let g name = List.assoc_opt name snap.Metrics.gauges in
  (match g "resource.rss_bytes" with
   | Some g -> Alcotest.(check bool) "rss gauge positive" true (g.Metrics.last > 0.0)
   | None -> Alcotest.fail "resource.rss_bytes gauge missing");
  (match g "resource.open_nodes" with
   | Some g -> Alcotest.(check (float 1e-12)) "open_nodes gauge" 9.0 g.Metrics.last
   | None -> Alcotest.fail "resource.open_nodes gauge missing");
  match List.assoc_opt "resource.samples" snap.Metrics.counters with
  | Some n -> Alcotest.(check int) "sample counter" 1 n
  | None -> Alcotest.fail "resource.samples counter missing"

let suite =
  [ ( "obs.sink",
      [ Alcotest.test_case "memory sink order" `Quick (isolated test_memory_sink_order);
        Alcotest.test_case "emit without sink" `Quick (isolated test_emit_without_sink_is_noop);
        Alcotest.test_case "with_sink on exception" `Quick
          (isolated test_with_sink_removes_on_exception);
        Alcotest.test_case "two sinks" `Quick (isolated test_two_sinks_both_receive)
      ] );
    ( "obs.jsonl",
      [ Alcotest.test_case "round trip" `Quick (isolated test_jsonl_round_trip);
        Alcotest.test_case "rejects garbage" `Quick (isolated test_jsonl_rejects_garbage);
        Alcotest.test_case "file sink" `Quick (isolated test_jsonl_file_sink)
      ] );
    ( "obs.metrics",
      [ Alcotest.test_case "counters" `Quick (isolated test_counters);
        Alcotest.test_case "spans" `Quick (isolated test_spans);
        Alcotest.test_case "time" `Quick (isolated test_time_records_a_span);
        Alcotest.test_case "histogram buckets" `Quick (isolated test_histogram_buckets);
        Alcotest.test_case "quantile identical samples" `Quick
          (isolated test_quantile_identical_samples);
        Alcotest.test_case "quantile interpolation" `Quick
          (isolated test_quantile_interpolates_and_clamps);
        Alcotest.test_case "quantile empty" `Quick (isolated test_quantile_empty_is_nan);
        Alcotest.test_case "stats report quantiles" `Quick
          (isolated test_stats_report_shows_quantiles);
        Alcotest.test_case "gauges" `Quick (isolated test_gauges);
        Alcotest.test_case "gauge_add from zero" `Quick
          (isolated test_gauge_add_creates_at_zero);
        Alcotest.test_case "gauges in stats report" `Quick
          (isolated test_gauges_in_stats_report);
        Alcotest.test_case "reset" `Quick (isolated test_reset_clears_everything);
        Alcotest.test_case "disabled is inert" `Quick (isolated test_disabled_records_nothing);
        Alcotest.test_case "tracing flips active" `Quick (isolated test_tracing_flips_active)
      ] );
    ( "obs.resource",
      [ Alcotest.test_case "probes positive" `Quick (isolated test_resource_probes_positive);
        Alcotest.test_case "inactive tick inert" `Quick
          (isolated test_resource_inactive_tick_is_inert);
        Alcotest.test_case "interval zero cadence" `Quick
          (isolated test_resource_cadence_interval_zero);
        Alcotest.test_case "time-gated cadence" `Quick
          (isolated test_resource_cadence_time_gated);
        Alcotest.test_case "sample event payload" `Quick
          (isolated test_resource_sample_event_payload);
        Alcotest.test_case "gauges updated" `Quick (isolated test_resource_updates_gauges)
      ] )
  ]
