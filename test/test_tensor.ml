(* Tests for Abonn_tensor: vector arithmetic and matrix kernels, including
   qcheck algebraic properties (transpose involution, matmul-mv agreement). *)

module Vector = Abonn_tensor.Vector
module Matrix = Abonn_tensor.Matrix
module Rng = Abonn_util.Rng

let check_float = Alcotest.(check (float 1e-9))

let vec = Alcotest.testable Vector.pp (Vector.approx_equal ~tol:1e-9)

(* --- Vector --- *)

let test_vec_add () =
  Alcotest.check vec "add" [| 4.0; 6.0 |] (Vector.add [| 1.0; 2.0 |] [| 3.0; 4.0 |])

let test_vec_sub () =
  Alcotest.check vec "sub" [| -2.0; -2.0 |] (Vector.sub [| 1.0; 2.0 |] [| 3.0; 4.0 |])

let test_vec_dot () = check_float "dot" 11.0 (Vector.dot [| 1.0; 2.0 |] [| 3.0; 4.0 |])

let test_vec_dim_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Vector.dot: dimension mismatch (2 vs 3)")
    (fun () -> ignore (Vector.dot [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

let test_vec_norms () =
  check_float "norm2" 5.0 (Vector.norm2 [| 3.0; 4.0 |]);
  check_float "norm_inf" 4.0 (Vector.norm_inf [| 3.0; -4.0 |]);
  check_float "norm_inf empty" 0.0 (Vector.norm_inf [||])

let test_vec_axpy () =
  let y = [| 1.0; 1.0 |] in
  Vector.axpy 2.0 [| 1.0; 2.0 |] y;
  Alcotest.check vec "axpy" [| 3.0; 5.0 |] y

let test_vec_relu () =
  Alcotest.check vec "relu" [| 0.0; 0.0; 2.5 |] (Vector.relu [| -1.0; 0.0; 2.5 |])

let test_vec_argmax () =
  Alcotest.(check int) "argmax" 2 (Vector.argmax [| 1.0; 0.5; 3.0; 3.0 |]);
  Alcotest.(check int) "first on tie" 0 (Vector.argmax [| 5.0; 5.0 |])

let test_vec_clamp () =
  let lo = [| 0.0; 0.0 |] and hi = [| 1.0; 1.0 |] in
  Alcotest.check vec "clamp" [| 0.0; 1.0 |] (Vector.clamp ~lo ~hi [| -5.0; 5.0 |])

let test_vec_scale_neg () =
  Alcotest.check vec "scale" [| 2.0; -4.0 |] (Vector.scale 2.0 [| 1.0; -2.0 |]);
  Alcotest.check vec "neg" [| -1.0; 2.0 |] (Vector.neg [| 1.0; -2.0 |])

(* --- Matrix --- *)

let mat = Alcotest.testable Matrix.pp (Matrix.approx_equal ~tol:1e-9)

let m22 a b c d = Matrix.of_rows [| [| a; b |]; [| c; d |] |]

let test_mat_identity_mv () =
  let i3 = Matrix.identity 3 in
  Alcotest.check vec "I x = x" [| 1.0; 2.0; 3.0 |] (Matrix.mv i3 [| 1.0; 2.0; 3.0 |])

let test_mat_matmul () =
  let a = m22 1.0 2.0 3.0 4.0 in
  let b = m22 5.0 6.0 7.0 8.0 in
  Alcotest.check mat "product" (m22 19.0 22.0 43.0 50.0) (Matrix.matmul a b)

let test_mat_matmul_dims () =
  let a = Matrix.zeros 2 3 and b = Matrix.zeros 2 3 in
  Alcotest.check_raises "bad dims"
    (Invalid_argument "Matrix.matmul: inner dims mismatch (2x3 * 2x3)") (fun () ->
      ignore (Matrix.matmul a b))

let test_mat_transpose () =
  let a = Matrix.of_rows [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let at = Matrix.transpose a in
  Alcotest.(check int) "rows" 3 at.Matrix.rows;
  check_float "entry" 2.0 (Matrix.get at 1 0)

let test_mat_mv_tmv () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  Alcotest.check vec "mv" [| 5.0; 11.0; 17.0 |] (Matrix.mv a [| 1.0; 2.0 |]);
  Alcotest.check vec "tmv" [| 22.0; 28.0 |] (Matrix.tmv a [| 1.0; 2.0; 3.0 |])

let test_mat_outer () =
  let o = Matrix.outer [| 1.0; 2.0 |] [| 3.0; 4.0 |] in
  Alcotest.check mat "outer" (m22 3.0 4.0 6.0 8.0) o

let test_mat_row_col () =
  let a = m22 1.0 2.0 3.0 4.0 in
  Alcotest.check vec "row" [| 3.0; 4.0 |] (Matrix.row a 1);
  Alcotest.check vec "col" [| 2.0; 4.0 |] (Matrix.col a 1)

let test_mat_add_sub_scale () =
  let a = m22 1.0 2.0 3.0 4.0 in
  let b = m22 1.0 1.0 1.0 1.0 in
  Alcotest.check mat "add" (m22 2.0 3.0 4.0 5.0) (Matrix.add a b);
  Alcotest.check mat "sub" (m22 0.0 1.0 2.0 3.0) (Matrix.sub a b);
  Alcotest.check mat "scale" (m22 2.0 4.0 6.0 8.0) (Matrix.scale 2.0 a)

let test_mat_of_rows_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_rows: ragged rows") (fun () ->
      ignore (Matrix.of_rows [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let test_mat_bounds_check () =
  let a = m22 1.0 2.0 3.0 4.0 in
  Alcotest.check_raises "get oob" (Invalid_argument "Matrix.get: out of bounds") (fun () ->
      ignore (Matrix.get a 2 0))

let test_mat_frobenius () =
  check_float "frobenius" (sqrt 30.0) (Matrix.frobenius (m22 1.0 2.0 3.0 4.0))

(* --- qcheck properties --- *)

let gen_matrix rows cols =
  let open QCheck.Gen in
  array_size (return (rows * cols)) (float_bound_inclusive 10.0) >|= fun data ->
  Matrix.init rows cols (fun i j -> data.((i * cols) + j) -. 5.0)

let arb_m33 = QCheck.make (gen_matrix 3 3)
let arb_v3 = QCheck.make QCheck.Gen.(array_size (return 3) (float_bound_inclusive 10.0))

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose involution" ~count:100 arb_m33 (fun m ->
      Matrix.approx_equal m (Matrix.transpose (Matrix.transpose m)))

let prop_matmul_mv_agree =
  QCheck.Test.make ~name:"matmul against mv column-wise" ~count:50
    (QCheck.pair arb_m33 arb_m33) (fun (a, b) ->
      let c = Matrix.matmul a b in
      let ok = ref true in
      for j = 0 to 2 do
        let cj = Matrix.mv a (Matrix.col b j) in
        if not (Vector.approx_equal ~tol:1e-6 cj (Matrix.col c j)) then ok := false
      done;
      !ok)

let prop_tmv_is_transpose_mv =
  QCheck.Test.make ~name:"tmv equals transpose-then-mv" ~count:100
    (QCheck.pair arb_m33 arb_v3) (fun (m, x) ->
      Vector.approx_equal ~tol:1e-6 (Matrix.tmv m x) (Matrix.mv (Matrix.transpose m) x))

let prop_dot_symmetric =
  QCheck.Test.make ~name:"dot symmetric" ~count:100 (QCheck.pair arb_v3 arb_v3)
    (fun (x, y) -> Float.abs (Vector.dot x y -. Vector.dot y x) < 1e-9)

let prop_matmul_associative =
  QCheck.Test.make ~name:"matmul associative" ~count:30
    (QCheck.triple arb_m33 arb_m33 arb_m33) (fun (a, b, c) ->
      Matrix.approx_equal ~tol:1e-4
        (Matrix.matmul (Matrix.matmul a b) c)
        (Matrix.matmul a (Matrix.matmul b c)))

(* Regression (fuzz-generator audit): [approx_equal] compared by
   [|x - y| > tol], which is false whenever the difference is NaN — so a
   NaN entry passed as equal to anything.  Non-finite entries must
   compare by identity. *)
let test_vec_approx_equal_nan_inf () =
  Alcotest.(check bool) "nan is not a finite value" false
    (Vector.approx_equal [| Float.nan |] [| 0.0 |]);
  Alcotest.(check bool) "finite value is not nan" false
    (Vector.approx_equal [| 0.0 |] [| Float.nan |]);
  Alcotest.(check bool) "nan equals nan" true
    (Vector.approx_equal [| Float.nan |] [| Float.nan |]);
  Alcotest.(check bool) "inf equals inf" true
    (Vector.approx_equal [| Float.infinity |] [| Float.infinity |]);
  Alcotest.(check bool) "inf is not -inf" false
    (Vector.approx_equal [| Float.infinity |] [| Float.neg_infinity |]);
  Alcotest.(check bool) "inf is not finite" false
    (Vector.approx_equal [| Float.infinity |] [| 1e308 |]);
  Alcotest.(check bool) "mixed vector still compares" true
    (Vector.approx_equal [| 1.0; Float.nan; Float.infinity |]
       [| 1.0 +. 1e-12; Float.nan; Float.infinity |])

let test_mat_approx_equal_nan () =
  let a = Matrix.of_rows [| [| Float.nan; 1.0 |] |] in
  let b = Matrix.of_rows [| [| 0.0; 1.0 |] |] in
  Alcotest.(check bool) "matrix nan is not 0" false (Matrix.approx_equal a b);
  Alcotest.(check bool) "matrix nan equals itself" true (Matrix.approx_equal a (Matrix.copy a))

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [ ( "tensor.vector",
      [ Alcotest.test_case "add" `Quick test_vec_add;
        Alcotest.test_case "sub" `Quick test_vec_sub;
        Alcotest.test_case "dot" `Quick test_vec_dot;
        Alcotest.test_case "dim mismatch" `Quick test_vec_dim_mismatch;
        Alcotest.test_case "norms" `Quick test_vec_norms;
        Alcotest.test_case "axpy" `Quick test_vec_axpy;
        Alcotest.test_case "relu" `Quick test_vec_relu;
        Alcotest.test_case "argmax" `Quick test_vec_argmax;
        Alcotest.test_case "clamp" `Quick test_vec_clamp;
        Alcotest.test_case "scale/neg" `Quick test_vec_scale_neg;
        Alcotest.test_case "approx_equal nan/inf" `Quick test_vec_approx_equal_nan_inf;
        qtest prop_dot_symmetric
      ] );
    ( "tensor.matrix",
      [ Alcotest.test_case "identity mv" `Quick test_mat_identity_mv;
        Alcotest.test_case "matmul" `Quick test_mat_matmul;
        Alcotest.test_case "matmul dims" `Quick test_mat_matmul_dims;
        Alcotest.test_case "transpose" `Quick test_mat_transpose;
        Alcotest.test_case "mv/tmv" `Quick test_mat_mv_tmv;
        Alcotest.test_case "outer" `Quick test_mat_outer;
        Alcotest.test_case "row/col" `Quick test_mat_row_col;
        Alcotest.test_case "add/sub/scale" `Quick test_mat_add_sub_scale;
        Alcotest.test_case "ragged rejected" `Quick test_mat_of_rows_ragged;
        Alcotest.test_case "bounds checked" `Quick test_mat_bounds_check;
        Alcotest.test_case "frobenius" `Quick test_mat_frobenius;
        Alcotest.test_case "approx_equal nan" `Quick test_mat_approx_equal_nan;
        qtest prop_transpose_involution;
        qtest prop_matmul_mv_agree;
        qtest prop_tmv_is_transpose_mv;
        qtest prop_matmul_associative
      ] )
  ]
