(* Tests for Abonn_lp: textbook simplex instances (optimal / infeasible /
   unbounded / degenerate), the general-form modelling layer, and the LP
   relaxation verifier cross-checked against DeepPoly and sampling. *)

module Matrix = Abonn_tensor.Matrix
module Rng = Abonn_util.Rng
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Split = Abonn_spec.Split
module Problem = Abonn_spec.Problem
module Network = Abonn_nn.Network
module Affine = Abonn_nn.Affine
module Builder = Abonn_nn.Builder
module Outcome = Abonn_prop.Outcome
module Deeppoly = Abonn_prop.Deeppoly
module Simplex = Abonn_lp.Simplex
module Lp = Abonn_lp.Lp_problem
module Lp_verifier = Abonn_lp.Lp_verifier

let check_float tol = Alcotest.(check (float tol))

(* --- Simplex on standard-form instances --- *)

let test_simplex_basic () =
  (* min -x1 - 2 x2  s.t.  x1 + x2 + s1 = 4;  x1 + 3 x2 + s2 = 6; all >= 0.
     Optimum at x1 = 3, x2 = 1: objective -5. *)
  let a = Matrix.of_rows [| [| 1.0; 1.0; 1.0; 0.0 |]; [| 1.0; 3.0; 0.0; 1.0 |] |] in
  let sol = Simplex.solve ~c:[| -1.0; -2.0; 0.0; 0.0 |] ~a ~b:[| 4.0; 6.0 |] () in
  Alcotest.(check bool) "optimal" true (sol.Simplex.status = Simplex.Optimal);
  check_float 1e-9 "objective" (-5.0) sol.Simplex.objective;
  check_float 1e-9 "x1" 3.0 sol.Simplex.x.(0);
  check_float 1e-9 "x2" 1.0 sol.Simplex.x.(1)

let test_simplex_infeasible () =
  (* x1 = 1 and x1 = 2 simultaneously. *)
  let a = Matrix.of_rows [| [| 1.0 |]; [| 1.0 |] |] in
  let sol = Simplex.solve ~c:[| 0.0 |] ~a ~b:[| 1.0; 2.0 |] () in
  Alcotest.(check bool) "infeasible" true (sol.Simplex.status = Simplex.Infeasible)

let test_simplex_unbounded () =
  (* min -x1  s.t.  x1 - x2 = 0: both can grow without bound. *)
  let a = Matrix.of_rows [| [| 1.0; -1.0 |] |] in
  let sol = Simplex.solve ~c:[| -1.0; 0.0 |] ~a ~b:[| 0.0 |] () in
  Alcotest.(check bool) "unbounded" true (sol.Simplex.status = Simplex.Unbounded)

let test_simplex_negative_rhs () =
  (* Row with negative b must be flipped internally:
     -x1 - x2 = -3  ⇔  x1 + x2 = 3.  Maximising x1 drives it to 3. *)
  let a = Matrix.of_rows [| [| -1.0; -1.0 |] |] in
  let sol = Simplex.solve ~c:[| -1.0; 0.0 |] ~a ~b:[| -3.0 |] () in
  Alcotest.(check bool) "optimal" true (sol.Simplex.status = Simplex.Optimal);
  check_float 1e-9 "x1 = 3" 3.0 sol.Simplex.x.(0);
  check_float 1e-9 "objective" (-3.0) sol.Simplex.objective

let test_simplex_redundant_rows () =
  (* Duplicate constraint leaves a zero-valued artificial in the basis. *)
  let a = Matrix.of_rows [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let sol = Simplex.solve ~c:[| 1.0; 1.0 |] ~a ~b:[| 2.0; 2.0 |] () in
  Alcotest.(check bool) "optimal" true (sol.Simplex.status = Simplex.Optimal);
  check_float 1e-9 "objective" 2.0 sol.Simplex.objective

let test_simplex_degenerate_terminates () =
  (* Classic degenerate instance; Bland's rule must terminate. *)
  let a =
    Matrix.of_rows
      [| [| 0.5; -5.5; -2.5; 9.0; 1.0; 0.0; 0.0 |];
         [| 0.5; -1.5; -0.5; 1.0; 0.0; 1.0; 0.0 |];
         [| 1.0; 0.0; 0.0; 0.0; 0.0; 0.0; 1.0 |]
      |]
  in
  let c = [| -10.0; 57.0; 9.0; 24.0; 0.0; 0.0; 0.0 |] in
  let sol = Simplex.solve ~c ~a ~b:[| 0.0; 0.0; 1.0 |] () in
  Alcotest.(check bool) "optimal" true (sol.Simplex.status = Simplex.Optimal);
  check_float 1e-6 "objective" (-1.0) sol.Simplex.objective

let test_simplex_dimension_checks () =
  let a = Matrix.of_rows [| [| 1.0 |] |] in
  Alcotest.(check bool) "bad b" true
    (try ignore (Simplex.solve ~c:[| 0.0 |] ~a ~b:[| 1.0; 2.0 |] ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad c" true
    (try ignore (Simplex.solve ~c:[| 0.0; 1.0 |] ~a ~b:[| 1.0 |] ()); false
     with Invalid_argument _ -> true)

(* --- Lp_problem modelling layer --- *)

let test_lp_bounded_box () =
  (* min x + y over [1,2] × [3,4]: optimum 4 at the lower corner. *)
  let lp = Lp.create () in
  let x = Lp.add_var ~lo:1.0 ~hi:2.0 lp in
  let y = Lp.add_var ~lo:3.0 ~hi:4.0 lp in
  Lp.set_objective lp [ (1.0, x); (1.0, y) ];
  (match Lp.solve lp with
   | Lp.Optimal { objective; values } ->
     check_float 1e-9 "objective" 4.0 objective;
     check_float 1e-9 "x" 1.0 (values x);
     check_float 1e-9 "y" 3.0 (values y)
   | Lp.Infeasible | Lp.Unbounded | Lp.Pivot_limit -> Alcotest.fail "expected optimum")

let test_lp_maximize_via_negation () =
  (* max x + y over x + y <= 5, x,y in [0,10]: minimise the negation. *)
  let lp = Lp.create () in
  let x = Lp.add_var ~lo:0.0 ~hi:10.0 lp in
  let y = Lp.add_var ~lo:0.0 ~hi:10.0 lp in
  Lp.add_constraint lp [ (1.0, x); (1.0, y) ] Lp.Le 5.0;
  Lp.set_objective lp [ (-1.0, x); (-1.0, y) ];
  (match Lp.solve lp with
   | Lp.Optimal { objective; _ } -> check_float 1e-9 "max is 5" (-5.0) objective
   | Lp.Infeasible | Lp.Unbounded | Lp.Pivot_limit -> Alcotest.fail "expected optimum")

let test_lp_free_variable () =
  (* Free variable pinned by an equality: x free, x = -7. *)
  let lp = Lp.create () in
  let x = Lp.add_var lp in
  Lp.add_constraint lp [ (1.0, x) ] Lp.Eq (-7.0);
  Lp.set_objective lp [ (1.0, x) ];
  (match Lp.solve lp with
   | Lp.Optimal { objective; values } ->
     check_float 1e-9 "objective" (-7.0) objective;
     check_float 1e-9 "x" (-7.0) (values x)
   | Lp.Infeasible | Lp.Unbounded | Lp.Pivot_limit -> Alcotest.fail "expected optimum")

let test_lp_upper_bounded_only () =
  (* x ≤ 2 (no lower bound), minimise -x: optimum at 2. *)
  let lp = Lp.create () in
  let x = Lp.add_var ~hi:2.0 lp in
  Lp.set_objective lp [ (-1.0, x) ];
  (match Lp.solve lp with
   | Lp.Optimal { values; _ } -> check_float 1e-9 "x" 2.0 (values x)
   | Lp.Infeasible | Lp.Unbounded | Lp.Pivot_limit -> Alcotest.fail "expected optimum")

let test_lp_ge_constraint () =
  let lp = Lp.create () in
  let x = Lp.add_var ~lo:0.0 lp in
  Lp.add_constraint lp [ (1.0, x) ] Lp.Ge 4.0;
  Lp.set_objective lp [ (1.0, x) ];
  (match Lp.solve lp with
   | Lp.Optimal { objective; _ } -> check_float 1e-9 "objective" 4.0 objective
   | Lp.Infeasible | Lp.Unbounded | Lp.Pivot_limit -> Alcotest.fail "expected optimum")

let test_lp_infeasible () =
  let lp = Lp.create () in
  let x = Lp.add_var ~lo:0.0 ~hi:1.0 lp in
  Lp.add_constraint lp [ (1.0, x) ] Lp.Ge 2.0;
  Alcotest.(check bool) "infeasible" true (Lp.solve lp = Lp.Infeasible)

let test_lp_unbounded () =
  let lp = Lp.create () in
  let x = Lp.add_var ~lo:0.0 lp in
  Lp.set_objective lp [ (-1.0, x) ];
  Alcotest.(check bool) "unbounded" true (Lp.solve lp = Lp.Unbounded)

let test_lp_objective_constant () =
  let lp = Lp.create () in
  let x = Lp.add_var ~lo:1.0 ~hi:1.0 lp in
  Lp.set_objective ~constant:10.0 lp [ (2.0, x) ];
  (match Lp.solve lp with
   | Lp.Optimal { objective; _ } -> check_float 1e-9 "objective" 12.0 objective
   | Lp.Infeasible | Lp.Unbounded | Lp.Pivot_limit -> Alcotest.fail "expected optimum")

let test_lp_resolve_with_new_objective () =
  (* The builder is reusable: solve twice with different objectives. *)
  let lp = Lp.create () in
  let x = Lp.add_var ~lo:0.0 ~hi:1.0 lp in
  Lp.set_objective lp [ (1.0, x) ];
  let first = match Lp.solve lp with Lp.Optimal { objective; _ } -> objective | _ -> nan in
  Lp.set_objective lp [ (-1.0, x) ];
  let second = match Lp.solve lp with Lp.Optimal { objective; _ } -> objective | _ -> nan in
  check_float 1e-9 "min" 0.0 first;
  check_float 1e-9 "max(-)" (-1.0) second

let test_lp_rejects_bad_bounds () =
  let lp = Lp.create () in
  Alcotest.(check bool) "raises" true
    (try ignore (Lp.add_var ~lo:2.0 ~hi:1.0 lp); false with Invalid_argument _ -> true)

let test_lp_duplicate_terms_summed () =
  (* x + x <= 4  ⇔  x <= 2. *)
  let lp = Lp.create () in
  let x = Lp.add_var ~lo:0.0 lp in
  Lp.add_constraint lp [ (1.0, x); (1.0, x) ] Lp.Le 4.0;
  Lp.set_objective lp [ (-1.0, x) ];
  (match Lp.solve lp with
   | Lp.Optimal { values; _ } -> check_float 1e-9 "x" 2.0 (values x)
   | Lp.Infeasible | Lp.Unbounded | Lp.Pivot_limit -> Alcotest.fail "expected optimum")

(* --- LP verifier --- *)

let random_problem ?(seed = 0) ?(dims = [ 2; 5; 2 ]) ?(eps = 0.3) () =
  let rng = Rng.create seed in
  let net = Builder.mlp rng ~dims in
  let in_dim = List.hd dims in
  let center = Array.init in_dim (fun _ -> Rng.range rng (-0.5) 0.5) in
  let region = Region.linf_ball ~center ~eps () in
  let out_dim = List.nth dims (List.length dims - 1) in
  let label = Network.predict net center in
  let property = Property.robustness ~num_classes:out_dim ~label in
  Problem.create ~network:net ~region ~property ()

let test_lp_verifier_exact_on_linear () =
  let w = Matrix.of_rows [| [| 1.0; -2.0 |] |] in
  let affine = Affine.of_weights [ (w, [| 0.25 |]) ] in
  let region = Region.create ~lower:[| -1.0; -1.0 |] ~upper:[| 1.0; 1.0 |] in
  let property = Property.single [| 1.0 |] 0.0 in
  let problem = Problem.of_affine ~affine ~region ~property () in
  let outcome = Lp_verifier.run problem [] in
  check_float 1e-8 "phat" (-2.75) outcome.Outcome.phat;
  match outcome.Outcome.candidate with
  | None -> Alcotest.fail "expected candidate"
  | Some x ->
    Alcotest.(check bool) "candidate is real counterexample" true
      (Problem.is_counterexample problem x)

let test_lp_verifier_at_least_as_tight_as_deeppoly () =
  (* LP over the full triangle relaxation dominates any per-neuron choice
     of a single lower line, so phat_LP >= phat_DeepPoly. *)
  for seed = 0 to 7 do
    let problem = random_problem ~seed () in
    let lp = Lp_verifier.run problem [] in
    let dp = Deeppoly.run problem [] in
    Alcotest.(check bool)
      (Printf.sprintf "lp >= deeppoly (seed %d)" seed)
      true
      (lp.Outcome.phat >= dp.Outcome.phat -. 1e-7)
  done

let test_lp_verifier_phat_sound () =
  for seed = 20 to 23 do
    let problem = random_problem ~seed () in
    let outcome = Lp_verifier.run problem [] in
    let rng = Rng.create (seed * 31) in
    let ok = ref true in
    for _ = 1 to 200 do
      let x = Region.sample rng problem.Problem.region in
      if Problem.concrete_margin problem x < outcome.Outcome.phat -. 1e-7 then ok := false
    done;
    Alcotest.(check bool) (Printf.sprintf "lp phat sound (seed %d)" seed) true !ok
  done

let test_lp_verifier_candidate_in_region () =
  for seed = 30 to 33 do
    let problem = random_problem ~seed ~eps:0.6 () in
    let outcome = Lp_verifier.run problem [] in
    match outcome.Outcome.candidate with
    | None -> ()
    | Some x ->
      Alcotest.(check bool)
        (Printf.sprintf "candidate in region (seed %d)" seed)
        true
        (Region.contains problem.Problem.region x)
  done

let test_lp_verifier_infeasible_split_vacuous () =
  let problem = random_problem ~seed:50 ~dims:[ 3; 6; 6; 2 ] ~eps:0.01 () in
  let outcome = Deeppoly.run problem [] in
  let affine = problem.Problem.affine in
  let found = ref None in
  Array.iteri
    (fun l (b : Abonn_prop.Bounds.t) ->
      Array.iteri
        (fun i _ ->
          if !found = None && b.Abonn_prop.Bounds.lower.(i) > 0.01 then
            found := Some (Affine.relu_index affine ~layer:l ~idx:i))
        b.Abonn_prop.Bounds.lower)
    outcome.Outcome.pre_bounds;
  match !found with
  | None -> Alcotest.fail "no stable-active neuron"
  | Some relu ->
    let child = Lp_verifier.run problem (Split.extend [] ~relu ~phase:Split.Inactive) in
    Alcotest.(check bool) "vacuous" true child.Outcome.infeasible

let test_lp_verifier_splits_tighten () =
  (* The LP is monotone in the constraint set: each child's bound
     dominates the parent's (unlike single-line relaxations, the triangle
     LP only gains constraints when an interval shrinks). *)
  let problem = random_problem ~seed:60 ~eps:0.4 () in
  let parent = Lp_verifier.run problem [] in
  match Abonn_prop.Bounds.unstable_indices parent.Outcome.pre_bounds.(0) with
  | [] -> Alcotest.fail "expected unstable neuron"
  | idx :: _ ->
    let relu = Affine.relu_index problem.Problem.affine ~layer:0 ~idx in
    List.iter
      (fun phase ->
        let child = Lp_verifier.run problem (Split.extend [] ~relu ~phase) in
        Alcotest.(check bool) "child >= parent" true
          (child.Outcome.phat >= parent.Outcome.phat -. 1e-7))
      [ Split.Active; Split.Inactive ]

let prop_lp_matches_brute_force_2d =
  (* On 2-input networks the margin minimum over the box is approximated
     well by dense grid search; the LP bound must stay below it. *)
  QCheck.Test.make ~name:"lp phat below grid minimum" ~count:10
    (QCheck.int_range 0 500) (fun seed ->
      let problem = random_problem ~seed ~dims:[ 2; 4; 2 ] ~eps:0.3 () in
      let outcome = Lp_verifier.run problem [] in
      let region = problem.Problem.region in
      let n = 15 in
      let ok = ref true in
      for i = 0 to n do
        for j = 0 to n do
          let x =
            [| region.Region.lower.(0)
               +. (float_of_int i /. float_of_int n
                   *. (region.Region.upper.(0) -. region.Region.lower.(0)));
               region.Region.lower.(1)
               +. (float_of_int j /. float_of_int n
                   *. (region.Region.upper.(1) -. region.Region.lower.(1)))
            |]
          in
          if Problem.concrete_margin problem x < outcome.Outcome.phat -. 1e-7 then ok := false
        done
      done;
      !ok)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [ ( "lp.simplex",
      [ Alcotest.test_case "basic optimum" `Quick test_simplex_basic;
        Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
        Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
        Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
        Alcotest.test_case "redundant rows" `Quick test_simplex_redundant_rows;
        Alcotest.test_case "degenerate terminates" `Quick test_simplex_degenerate_terminates;
        Alcotest.test_case "dimension checks" `Quick test_simplex_dimension_checks
      ] );
    ( "lp.problem",
      [ Alcotest.test_case "bounded box" `Quick test_lp_bounded_box;
        Alcotest.test_case "maximize via negation" `Quick test_lp_maximize_via_negation;
        Alcotest.test_case "free variable" `Quick test_lp_free_variable;
        Alcotest.test_case "upper bounded only" `Quick test_lp_upper_bounded_only;
        Alcotest.test_case "ge constraint" `Quick test_lp_ge_constraint;
        Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
        Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
        Alcotest.test_case "objective constant" `Quick test_lp_objective_constant;
        Alcotest.test_case "resolve" `Quick test_lp_resolve_with_new_objective;
        Alcotest.test_case "rejects bad bounds" `Quick test_lp_rejects_bad_bounds;
        Alcotest.test_case "duplicate terms" `Quick test_lp_duplicate_terms_summed
      ] );
    ( "lp.verifier",
      [ Alcotest.test_case "exact on linear" `Quick test_lp_verifier_exact_on_linear;
        Alcotest.test_case "tighter than deeppoly" `Quick test_lp_verifier_at_least_as_tight_as_deeppoly;
        Alcotest.test_case "phat sound" `Quick test_lp_verifier_phat_sound;
        Alcotest.test_case "candidate in region" `Quick test_lp_verifier_candidate_in_region;
        Alcotest.test_case "infeasible split vacuous" `Quick test_lp_verifier_infeasible_split_vacuous;
        Alcotest.test_case "splits tighten" `Quick test_lp_verifier_splits_tighten;
        qtest prop_lp_matches_brute_force_2d
      ] )
  ]

(* --- Boxlp: bounded-variable simplex --- *)

module Boxlp = Abonn_lp.Boxlp

let test_boxlp_box_minimum () =
  (* no rows: optimum at the cost-wise best corner *)
  let sol =
    Boxlp.solve ~c:[| 1.0; -1.0 |] ~lo:[| -1.0; -2.0 |] ~hi:[| 3.0; 4.0 |] ~rows:[] ()
  in
  Alcotest.(check bool) "optimal" true (sol.Boxlp.status = Boxlp.Optimal);
  check_float 1e-9 "objective" (-5.0) sol.Boxlp.objective;
  check_float 1e-9 "x0" (-1.0) sol.Boxlp.x.(0);
  check_float 1e-9 "x1" 4.0 sol.Boxlp.x.(1)

let test_boxlp_with_constraint () =
  (* min -x0-x1 over [0,2]^2 with x0+x1 <= 3 *)
  let rows = [ { Boxlp.coefs = [ (0, 1.0); (1, 1.0) ]; sense = Boxlp.Le; rhs = 3.0 } ] in
  let sol = Boxlp.solve ~c:[| -1.0; -1.0 |] ~lo:[| 0.0; 0.0 |] ~hi:[| 2.0; 2.0 |] ~rows () in
  Alcotest.(check bool) "optimal" true (sol.Boxlp.status = Boxlp.Optimal);
  check_float 1e-9 "objective" (-3.0) sol.Boxlp.objective

let test_boxlp_infeasible () =
  let rows = [ { Boxlp.coefs = [ (0, 1.0) ]; sense = Boxlp.Ge; rhs = 5.0 } ] in
  let sol = Boxlp.solve ~c:[| 0.0 |] ~lo:[| 0.0 |] ~hi:[| 1.0 |] ~rows () in
  Alcotest.(check bool) "infeasible" true (sol.Boxlp.status = Boxlp.Infeasible)

let test_boxlp_unbounded () =
  (* x1 has an infinite upper bound and negative cost, no rows limit it *)
  let sol = Boxlp.solve ~c:[| -1.0 |] ~lo:[| 0.0 |] ~hi:[| infinity |] ~rows:[] () in
  Alcotest.(check bool) "unbounded" true (sol.Boxlp.status = Boxlp.Unbounded)

let test_boxlp_equality_rows () =
  (* x0 + x1 = 1 over [0,1]^2, min x0 -> (0,1) *)
  let rows = [ { Boxlp.coefs = [ (0, 1.0); (1, 1.0) ]; sense = Boxlp.Eq; rhs = 1.0 } ] in
  let sol = Boxlp.solve ~c:[| 1.0; 0.0 |] ~lo:[| 0.0; 0.0 |] ~hi:[| 1.0; 1.0 |] ~rows () in
  Alcotest.(check bool) "optimal" true (sol.Boxlp.status = Boxlp.Optimal);
  check_float 1e-9 "x0" 0.0 sol.Boxlp.x.(0);
  check_float 1e-9 "x1" 1.0 sol.Boxlp.x.(1)

let test_boxlp_rejects_free_variable () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Boxlp.solve ~c:[| 1.0 |] ~lo:[| neg_infinity |] ~hi:[| infinity |] ~rows:[] ());
       false
     with Invalid_argument _ -> true)

let test_boxlp_pinned_variable () =
  (* lo = hi pins a variable; constraints must still be honoured *)
  let rows = [ { Boxlp.coefs = [ (0, 1.0); (1, 1.0) ]; sense = Boxlp.Le; rhs = 1.0 } ] in
  let sol =
    Boxlp.solve ~c:[| 0.0; -1.0 |] ~lo:[| 0.5; 0.0 |] ~hi:[| 0.5; 9.0 |] ~rows ()
  in
  Alcotest.(check bool) "optimal" true (sol.Boxlp.status = Boxlp.Optimal);
  check_float 1e-9 "x1 limited" 0.5 sol.Boxlp.x.(1)

(* Differential property: Boxlp agrees with the standard-form reduction
   on random bounded LPs (statuses and optima). *)
let prop_boxlp_matches_standard =
  QCheck.Test.make ~name:"boxlp matches standard simplex" ~count:200
    (QCheck.int_range 0 100_000) (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 4 in
      let m = 1 + Rng.int rng 4 in
      let lo = Array.init n (fun _ -> Rng.range rng (-2.0) 0.0) in
      let hi = Array.init n (fun i -> lo.(i) +. Rng.range rng 0.0 3.0) in
      let c = Array.init n (fun _ -> Rng.range rng (-1.0) 1.0) in
      let rows =
        List.init m (fun _ ->
            let coefs = List.init n (fun j -> (j, Rng.range rng (-1.0) 1.0)) in
            let sense =
              match Rng.int rng 3 with 0 -> Boxlp.Le | 1 -> Boxlp.Ge | _ -> Boxlp.Eq
            in
            { Boxlp.coefs; sense; rhs = Rng.range rng (-1.0) 1.0 })
      in
      (* reference through the standard-form path (forced by a free var) *)
      let lp = Lp.create () in
      let vars = Array.init n (fun j -> Lp.add_var ~lo:lo.(j) ~hi:hi.(j) lp) in
      let _free = Lp.add_var lp in
      List.iter
        (fun (r : Boxlp.row) ->
          let terms = List.map (fun (j, v) -> (v, vars.(j))) r.Boxlp.coefs in
          let sense =
            match r.Boxlp.sense with
            | Boxlp.Le -> Lp.Le
            | Boxlp.Ge -> Lp.Ge
            | Boxlp.Eq -> Lp.Eq
          in
          Lp.add_constraint lp terms sense r.Boxlp.rhs)
        rows;
      Lp.set_objective lp (Array.to_list (Array.mapi (fun j cj -> (cj, vars.(j))) c));
      let reference = Lp.solve lp in
      let fast = Boxlp.solve ~c ~lo ~hi ~rows () in
      match reference, fast.Boxlp.status with
      | Lp.Optimal { objective; _ }, Boxlp.Optimal ->
        Float.abs (objective -. fast.Boxlp.objective) < 1e-5
      | Lp.Infeasible, Boxlp.Infeasible -> true
      | Lp.Unbounded, Boxlp.Unbounded -> true
      | (Lp.Optimal _ | Lp.Infeasible | Lp.Unbounded | Lp.Pivot_limit), _ -> false)

let boxlp_tests =
  ( "lp.boxlp",
    [ Alcotest.test_case "box minimum" `Quick test_boxlp_box_minimum;
      Alcotest.test_case "with constraint" `Quick test_boxlp_with_constraint;
      Alcotest.test_case "infeasible" `Quick test_boxlp_infeasible;
      Alcotest.test_case "unbounded" `Quick test_boxlp_unbounded;
      Alcotest.test_case "equality rows" `Quick test_boxlp_equality_rows;
      Alcotest.test_case "rejects free var" `Quick test_boxlp_rejects_free_variable;
      Alcotest.test_case "pinned variable" `Quick test_boxlp_pinned_variable;
      qtest prop_boxlp_matches_standard
    ] )

let suite = suite @ [ boxlp_tests ]
