(* Tests for the search-policy introspection layer: decision-event
   round-trips, sampling cadence, the no-perturbation contract (an
   introspected run takes the same search path as a plain one), the
   flight-recorder ring (wraparound, signal dump, parallel dumps), the
   summary pair-integrity check, the explain/hotspots analytics and the
   committed golden introspected trace. *)

module Rng = Abonn_util.Rng
module Budget = Abonn_util.Budget
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Verdict = Abonn_spec.Verdict
module Problem = Abonn_spec.Problem
module Network = Abonn_nn.Network
module Builder = Abonn_nn.Builder
module Result = Abonn_bab.Result
module Event = Abonn_obs.Event
module Sink = Abonn_obs.Sink
module Obs = Abonn_obs.Obs
module Introspect = Abonn_obs.Introspect
module Reader = Abonn_trace.Reader
module Summary = Abonn_trace.Summary
module Explain = Abonn_trace.Explain
module Hotspots = Abonn_trace.Hotspots
module Registry = Abonn_trace.Registry
module Regress = Abonn_trace.Regress

let golden_introspect = "fixtures/golden_introspect.jsonl"

let read_clean path =
  let events, issues = Reader.read_file path in
  Alcotest.(check (list string)) (path ^ " has no issues") []
    (List.map Reader.issue_to_string issues);
  events

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let env seq t event = { Event.seq; t; domain = None; event }

let random_problem ?(seed = 0) ?(dims = [ 2; 6; 2 ]) ?(eps = 0.3) () =
  let rng = Rng.create seed in
  let net = Builder.mlp rng ~dims in
  let in_dim = List.hd dims in
  let center = Array.init in_dim (fun _ -> Rng.range rng (-0.5) 0.5) in
  let region = Region.linf_ball ~center ~eps () in
  let out_dim = List.nth dims (List.length dims - 1) in
  let label = Network.predict net center in
  let property = Property.robustness ~num_classes:out_dim ~label in
  Problem.create ~network:net ~region ~property ()

(* --- decision-event round-trips --- *)

let decision_events =
  [ Event.Ucb_decision
      { engine = "abonn"; depth = 3; chosen = "+"; sample = 16;
        plus_exploit = 0.42; plus_explore = 0.11; plus_visits = 7;
        minus_exploit = 0.39; minus_explore = 0.21; minus_visits = 2 };
    Event.Branch_decision
      { engine = "bestfirst"; depth = 2; kind = "relu"; choice = 17;
        score = 1.25; runner_up = 4; runner_up_score = 1.01; candidates = 24;
        sample = 1 };
    (* no runner-up: -1 / nan must survive the round trip *)
    Event.Branch_decision
      { engine = "inputsplit"; depth = 0; kind = "input"; choice = 1;
        score = 0.5; runner_up = -1; runner_up_score = Float.nan;
        candidates = 1; sample = 1 };
    Event.Frontier_decision
      { engine = "bestfirst"; depth = 4; priority = -0.07; runner_up = -0.11;
        frontier = 9; sample = 4 } ]

let test_decision_roundtrip () =
  List.iteri
    (fun i ev ->
      let e = env (i + 1) (0.001 *. float_of_int i) ev in
      let line = Event.to_json e in
      match Event.of_json line with
      | Error msg -> Alcotest.failf "decision event %d: %s" i msg
      | Ok e' ->
        Alcotest.(check bool)
          (Printf.sprintf "event %d round-trips" i)
          true (Event.equal e e');
        (* re-encoding is byte-stable, like every other event *)
        Alcotest.(check string)
          (Printf.sprintf "event %d re-encodes identically" i)
          line (Event.to_json e'))
    decision_events

(* --- sampling cadence --- *)

let test_sampling_cadence () =
  Introspect.with_rate (Some 3) (fun () ->
      Alcotest.(check bool) "enabled" true (Introspect.enabled ());
      Alcotest.(check (list int)) "every 3rd decision, first included"
        [ 3; 0; 0; 3; 0; 0; 3 ]
        (List.init 7 (fun _ -> Introspect.sample ())));
  Alcotest.(check bool) "disabled outside with_rate" false (Introspect.enabled ());
  Alcotest.(check int) "sample is 0 when off" 0 (Introspect.sample ());
  Introspect.with_rate (Some 1) (fun () ->
      Alcotest.(check (list int)) "rate 1 records everything" [ 1; 1; 1 ]
        (List.init 3 (fun _ -> Introspect.sample ())))

(* --- the no-perturbation contract --- *)

let is_decision = function
  | Event.Ucb_decision _ | Event.Branch_decision _ | Event.Frontier_decision _ ->
    true
  | _ -> false

let captured_run ?rate verify =
  let sink, dump = Sink.memory () in
  let result =
    Introspect.with_rate rate (fun () -> Obs.with_sink sink verify)
  in
  (result, dump ())

(* Same problem, with and without --introspect: stripping the decision
   events from the introspected stream must leave the plain run's event
   sequence (same names, same visit order, same verdict) — sampling
   must never steer the search. *)
let test_introspection_does_not_perturb () =
  List.iter
    (fun (name, verify) ->
      let plain, plain_events = captured_run verify in
      let intro, intro_events = captured_run ~rate:1 verify in
      Alcotest.(check string) (name ^ " same verdict")
        (Verdict.to_string plain.Result.verdict)
        (Verdict.to_string intro.Result.verdict);
      Alcotest.(check int) (name ^ " same node count")
        plain.Result.stats.Result.nodes intro.Result.stats.Result.nodes;
      let stripped =
        List.filter (fun e -> not (is_decision e.Event.event)) intro_events
      in
      Alcotest.(check bool) (name ^ " introspected run has decision events")
        true
        (List.exists (fun e -> is_decision e.Event.event) intro_events);
      Alcotest.(check (list string)) (name ^ " same event-name sequence")
        (List.map (fun e -> Event.name e.Event.event) plain_events)
        (List.map (fun e -> Event.name e.Event.event) stripped);
      let gammas evs =
        List.filter_map
          (fun e ->
            match e.Event.event with
            | Event.Node_evaluated { gamma; _ } -> Some gamma
            | _ -> None)
          evs
      in
      Alcotest.(check (list string)) (name ^ " same visit order")
        (gammas plain_events) (gammas stripped))
    [ ( "abonn",
        fun () ->
          Abonn_core.Abonn.verify ~budget:(Budget.of_calls 120) ~domains:1
            (random_problem ~seed:3 ()) );
      ( "bestfirst",
        fun () ->
          Abonn_bab.Bestfirst.verify ~budget:(Budget.of_calls 120) ~domains:1
            (random_problem ~seed:3 ()) );
      ( "bfs",
        fun () ->
          Abonn_bab.Bfs.verify ~budget:(Budget.of_calls 120) ~domains:1
            (random_problem ~seed:3 ()) );
      ( "inputsplit",
        fun () ->
          Abonn_bab.Inputsplit.verify ~budget:(Budget.of_calls 120) ~domains:1
            (random_problem ~seed:3 ()) ) ]

let test_no_decisions_without_introspect () =
  let _, events =
    captured_run (fun () ->
        Abonn_core.Abonn.verify ~budget:(Budget.of_calls 60)
          (random_problem ~seed:1 ()))
  in
  Alcotest.(check bool) "no decision events when off" false
    (List.exists (fun e -> is_decision e.Event.event) events)

(* --- pair integrity --- *)

let test_pairs_ok_on_fresh_run () =
  List.iter
    (fun (name, verify) ->
      let _, events = captured_run ~rate:1 verify in
      match Summary.runs events with
      | [ run ] ->
        Alcotest.(check bool) (name ^ " has pair rows") true
          (run.Summary.pairs <> []);
        List.iter
          (fun p ->
            Alcotest.(check int)
              (Printf.sprintf "%s %s mismatches" name p.Summary.kind)
              0 p.Summary.mismatch)
          run.Summary.pairs;
        Alcotest.(check bool) (name ^ " pairs_ok") true (Summary.pairs_ok run)
      | runs -> Alcotest.failf "%s: expected 1 run, got %d" name (List.length runs))
    [ ( "abonn",
        fun () ->
          Abonn_core.Abonn.verify ~budget:(Budget.of_calls 120) ~domains:1
            (random_problem ~seed:3 ()) );
      ( "bestfirst",
        fun () ->
          Abonn_bab.Bestfirst.verify ~budget:(Budget.of_calls 120) ~domains:1
            (random_problem ~seed:3 ()) ) ]

let test_orphan_annotation_is_mismatch () =
  (* a ucb_decision not immediately after its node_selected *)
  let events =
    [ env 1 0.000
        (Event.Node_evaluated
           { engine = "abonn"; depth = 0; gamma = "\xCE\xB5"; phat = -0.1;
             reward = 0.1 });
      env 2 0.001
        (Event.Ucb_decision
           { engine = "abonn"; depth = 1; chosen = "+"; sample = 1;
             plus_exploit = 0.1; plus_explore = 0.2; plus_visits = 1;
             minus_exploit = 0.0; minus_explore = 0.2; minus_visits = 1 }) ]
  in
  match Summary.runs events with
  | [ run ] ->
    let ucb = List.find (fun p -> p.Summary.kind = "ucb") run.Summary.pairs in
    Alcotest.(check int) "orphan counted" 1 ucb.Summary.mismatch;
    Alcotest.(check bool) "pairs_ok is false" false (Summary.pairs_ok run);
    Alcotest.(check bool) "summary renders MISMATCH" true
      (contains ~affix:"MISMATCH" (Summary.to_string [ run ]))
  | runs -> Alcotest.failf "expected 1 run, got %d" (List.length runs)

let test_wrong_depth_branch_is_mismatch () =
  let events =
    [ env 1 0.000
        (Event.Node_evaluated
           { engine = "abonn"; depth = 4; gamma = "r1+.r2+.r3+.r4+"; phat = -0.1;
             reward = 0.1 });
      env 2 0.001
        (Event.Branch_decision
           { engine = "abonn"; depth = 2; kind = "relu"; choice = 0; score = 1.0;
             runner_up = -1; runner_up_score = Float.nan; candidates = 3;
             sample = 1 }) ]
  in
  match Summary.runs events with
  | [ run ] ->
    let br = List.find (fun p -> p.Summary.kind = "branch") run.Summary.pairs in
    Alcotest.(check int) "focus-depth disagreement counted" 1 br.Summary.mismatch
  | runs -> Alcotest.failf "expected 1 run, got %d" (List.length runs)

(* --- flight recorder --- *)

let node_event i =
  Event.Node_selected { engine = "abonn"; depth = i; ucb = float_of_int i }

let test_flight_wraparound () =
  let sink, fl = Sink.flight ~capacity:8 () in
  sink.Sink.emit
    (env 1 0.0 (Event.Run_started { engine = "abonn"; instance = "case" }));
  for i = 2 to 21 do
    sink.Sink.emit (env i (0.001 *. float_of_int i) (node_event i))
  done;
  sink.Sink.emit
    (env 22 0.022
       (Event.Verdict_reached
          { engine = "abonn"; verdict = "timeout"; elapsed = 0.022 }));
  let events = Sink.flight_events fl in
  (* newest 8 ring events plus both out-of-band terminators *)
  Alcotest.(check int) "10 events survive" 10 (List.length events);
  Alcotest.(check (list int)) "seq order, oldest ring entries evicted"
    [ 1; 14; 15; 16; 17; 18; 19; 20; 21; 22 ]
    (List.map (fun e -> e.Event.seq) events);
  sink.Sink.close ()

let test_flight_dump_roundtrip () =
  let sink, fl = Sink.flight ~capacity:4 () in
  sink.Sink.emit
    (env 1 0.0 (Event.Run_started { engine = "abonn"; instance = "case" }));
  for i = 2 to 9 do
    sink.Sink.emit (env i (0.001 *. float_of_int i) (node_event i))
  done;
  let path = Filename.temp_file "abonn_flight" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Sink.flight_dump fl path;
  (* eviction leaves a seq gap between the terminator and the ring
     window — the reader flags it (correctly: the trace IS partial) but
     must parse every surviving line *)
  let events, issues = Reader.read_file path in
  Alcotest.(check bool) "only seq-gap issues on an evicted ring" true
    (List.for_all
       (function Reader.Seq_gap _ -> true | _ -> false)
       issues);
  Alcotest.(check (list int)) "dump = snapshot, in seq order"
    (List.map (fun e -> e.Event.seq) (Sink.flight_events fl))
    (List.map (fun e -> e.Event.seq) events);
  sink.Sink.close ()

(* SIGTERM mid-run: the handler dumps the ring; the dump must read back
   cleanly with the run's terminator present.  The signal is raised
   in-process against a recorder filled by a real search. *)
let test_flight_dump_on_sigterm () =
  let sink, fl = Sink.flight () in
  ignore
    (Obs.with_sink sink (fun () ->
         Abonn_core.Abonn.verify ~budget:(Budget.of_calls 80)
           (random_problem ~seed:2 ())));
  let path = Filename.temp_file "abonn_flight_sig" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let dumped = ref false in
  let previous =
    Sys.signal Sys.sigterm
      (Sys.Signal_handle
         (fun _ ->
           Sink.flight_dump fl path;
           dumped := true))
  in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigterm previous)
  @@ fun () ->
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  (* delivery happens at the next safe point; allocate until it does *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not !dumped) && Unix.gettimeofday () < deadline do
    ignore (Sys.opaque_identity (Array.make 64 0))
  done;
  Alcotest.(check bool) "handler ran" true !dumped;
  let events = read_clean path in
  Alcotest.(check bool) "dump is non-empty" true (events <> []);
  Alcotest.(check bool) "terminator survived the ring" true
    (List.exists
       (fun e ->
         match e.Event.event with Event.Verdict_reached _ -> true | _ -> false)
       events);
  let seqs = List.map (fun e -> e.Event.seq) events in
  Alcotest.(check bool) "seqs strictly increasing" true
    (List.for_all2 (fun a b -> a < b)
       (List.filteri (fun i _ -> i < List.length seqs - 1) seqs)
       (List.tl seqs));
  sink.Sink.close ()

let test_flight_dump_parallel () =
  let sink, fl = Sink.flight () in
  ignore
    (Obs.with_sink sink (fun () ->
         Abonn_core.Abonn.verify ~budget:(Budget.of_calls 200) ~domains:4
           (random_problem ~seed:4 ~dims:[ 2; 8; 8; 2 ] ())));
  let path = Filename.temp_file "abonn_flight_par" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Sink.flight_dump fl path;
  let events = read_clean path in
  Alcotest.(check bool) "dump is non-empty" true (events <> []);
  (* seq-consistent per domain: each worker's events appear in its own
     emission order (global seq order implies every per-domain
     subsequence is ordered; assert seqs are strictly increasing and
     therefore unique) *)
  let by_domain = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let d = Option.value ~default:(-1) e.Event.domain in
      Hashtbl.replace by_domain d
        (e.Event.seq :: Option.value ~default:[] (Hashtbl.find_opt by_domain d)))
    events;
  Hashtbl.iter
    (fun d seqs_rev ->
      let seqs = List.rev seqs_rev in
      Alcotest.(check bool)
        (Printf.sprintf "domain %d seqs increasing" d)
        true
        (fst
           (List.fold_left
              (fun (ok, last) s -> (ok && s > last, s))
              (true, min_int) seqs)))
    by_domain;
  sink.Sink.close ()

(* --- explain --- *)

let test_explain_golden () =
  let events = read_clean golden_introspect in
  let e = Explain.of_events events in
  Alcotest.(check (option string)) "falsified" (Some "falsified") e.Explain.verdict;
  Alcotest.(check int) "nodes" 187 e.Explain.nodes;
  Alcotest.(check bool) "wasted work attributed" true
    (Float.is_finite e.Explain.wasted_frac);
  Alcotest.(check bool) "most of the tree was off the cex path" true
    (e.Explain.wasted_frac > 0.5 && e.Explain.wasted_frac < 1.0);
  Alcotest.(check bool) "balance table present (introspected trace)" true
    (e.Explain.balance <> []);
  List.iter
    (fun (b : Explain.depth_balance) ->
      Alcotest.(check bool) "flips bounded by decisions" true
        (b.Explain.flips <= b.Explain.decisions);
      Alcotest.(check bool) "explore term positive" true (b.Explain.mean_explore > 0.0))
    e.Explain.balance;
  Alcotest.(check bool) "reward errors present" true (e.Explain.reward_err <> []);
  Alcotest.(check bool) "branch decisions recorded" true
    (e.Explain.branch_decisions > 0);
  let report = Explain.to_string e in
  List.iter
    (fun affix -> Alcotest.(check bool) ("report mentions " ^ affix) true
        (contains ~affix report))
    [ "wasted work"; "exploration/exploitation"; "reward-prediction" ]

let test_explain_divergence_self () =
  let events = read_clean golden_introspect in
  let e = Explain.of_events ~vs:events events in
  match e.Explain.divergence with
  | None -> Alcotest.fail "expected divergence section"
  | Some d ->
    Alcotest.(check bool) "no first divergence vs self" true
      (d.Explain.first_divergence = None);
    Alcotest.(check (float 1e-9)) "jaccard 1.0 vs self" 1.0 d.Explain.jaccard;
    Alcotest.(check int) "nothing exclusive to a" 0 d.Explain.only_a;
    Alcotest.(check int) "nothing exclusive to b" 0 d.Explain.only_b

(* --- hotspots --- *)

let test_hotspots_golden () =
  let events = read_clean golden_introspect in
  let h = Hotspots.of_events events in
  Alcotest.(check bool) "has rows" true (h.Hotspots.rows <> []);
  Alcotest.(check bool) "wall positive" true (h.Hotspots.wall > 0.0);
  let sorted_desc =
    let rec ok = function
      | (a : Hotspots.row) :: (b :: _ as rest) ->
        a.Hotspots.seconds >= b.Hotspots.seconds && ok rest
      | _ -> true
    in
    ok h.Hotspots.rows
  in
  Alcotest.(check bool) "rows sorted by seconds desc" true sorted_desc;
  List.iter
    (fun (r : Hotspots.row) ->
      Alcotest.(check bool) "calls positive" true (r.Hotspots.calls > 0);
      Alcotest.(check bool) "time non-negative" true (r.Hotspots.seconds >= 0.0);
      Alcotest.(check bool) "phase is namespaced" true
        (contains ~affix:"." r.Hotspots.phase))
    h.Hotspots.rows;
  let attributed =
    List.fold_left (fun acc (r : Hotspots.row) -> acc +. r.Hotspots.seconds) 0.0
      h.Hotspots.rows
  in
  Alcotest.(check bool) "attribution within wall" true
    (attributed <= h.Hotspots.wall *. 1.05);
  Alcotest.(check bool) "table renders ranks" true
    (contains ~affix:"rank" (Hotspots.to_string h))

let test_hotspots_flame () =
  let events = read_clean golden_introspect in
  let h = Hotspots.of_events events in
  let flame = Hotspots.to_flame h in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' flame)
  in
  Alcotest.(check bool) "one line per nonzero row (plus overhead)" true
    (List.length lines >= List.length h.Hotspots.rows);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "flame line has no weight: %s" line
      | Some i ->
        let stack = String.sub line 0 i in
        let weight = String.sub line (i + 1) (String.length line - i - 1) in
        Alcotest.(check bool)
          ("weight is a positive integer: " ^ line)
          true
          (match int_of_string_opt weight with Some w -> w > 0 | None -> false);
        Alcotest.(check bool)
          ("stack rooted at engine: " ^ line)
          true
          (contains ~affix:"abonn;" stack))
    lines

(* --- golden introspected trace: replay + byte stability --- *)

let test_golden_introspect_replay () =
  let events = read_clean golden_introspect in
  match Summary.runs events with
  | [ run ] ->
    Alcotest.(check string) "engine" "abonn" run.Summary.engine;
    Alcotest.(check (option string)) "verdict" (Some "falsified")
      run.Summary.verdict;
    Alcotest.(check int) "calls" 187 run.Summary.calls;
    Alcotest.(check bool) "all pair families clean" true (Summary.pairs_ok run);
    Alcotest.(check bool) "ucb family present" true
      (List.exists (fun p -> p.Summary.kind = "ucb") run.Summary.pairs);
    Alcotest.(check bool) "branch family present" true
      (List.exists (fun p -> p.Summary.kind = "branch") run.Summary.pairs)
  | runs -> Alcotest.failf "expected 1 run, got %d" (List.length runs)

let test_golden_introspect_byte_stable () =
  let ic = open_in golden_introspect in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let rec go line_no =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
      (match Event.of_json line with
       | Error msg -> Alcotest.failf "line %d does not parse: %s" line_no msg
       | Ok e ->
         if Event.to_json e <> line then
           Alcotest.failf "line %d does not re-encode byte-identically" line_no);
      go (line_no + 1)
  in
  go 1

(* --- registry schema (domains since 2, source_format since 3) --- *)

let test_registry_domains_roundtrip () =
  let r =
    Registry.make ~ts:"2026-08-08T00:00:00Z" ~commit:"abc1234"
      ~peak_rss_bytes:4096 ~domains:4 ~engine:"abonn" ~model:"mnist_l2"
      ~instance:"i3" ~seed:0 ~verdict:"timeout" ~wall:1.5 ~calls:100 ~nodes:100
      ~max_depth:7 ()
  in
  Alcotest.(check int) "schema stamped" Registry.schema_version r.Registry.schema;
  Alcotest.(check bool) "json carries domains" true
    (contains ~affix:"\"domains\":4" (Registry.to_json r));
  match Registry.of_json (Registry.to_json r) with
  | Error msg -> Alcotest.fail msg
  | Ok r' ->
    Alcotest.(check int) "domains round-trips" 4 r'.Registry.domains;
    Alcotest.(check string) "record round-trips" (Registry.to_json r)
      (Registry.to_json r')

let test_registry_schema1_backward_compat () =
  (* a literal schema-1 line, exactly as PR 5 wrote it: no domains field *)
  let legacy =
    "{\"schema\":1,\"ts\":\"2026-08-07T00:00:00Z\",\"commit\":\"abc1234\",\
     \"engine\":\"abonn\",\"model\":\"mnist_l2\",\"instance\":\"i0\",\"seed\":0,\
     \"verdict\":\"verified\",\"wall\":0.100000,\"calls\":10,\"nodes\":10,\
     \"max_depth\":3,\"peak_rss_bytes\":1024}"
  in
  match Registry.of_json legacy with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    Alcotest.(check int) "legacy schema preserved" 1 r.Registry.schema;
    Alcotest.(check int) "domains defaults to 1" 1 r.Registry.domains;
    Alcotest.(check string) "payload intact" "verified" r.Registry.verdict

(* --- overhead gate --- *)

let bench_json rows =
  Printf.sprintf
    "{\"schema\": 1, \"commit\": \"abc\", \"date\": \"2026-08-08\", \"rows\": {%s}, \
     \"geomean_speedup\": 1.0}"
    (String.concat ", "
       (List.map
          (fun (name, nps) ->
            Printf.sprintf
              "%S: {\"nodes_per_sec_cached\": %.1f, \"nodes_per_sec_uncached\": \
               %.1f, \"speedup\": 1.0, \"peak_rss_bytes\": 1024}"
              name nps nps)
          rows))

let load_bench rows =
  match Regress.load_string (bench_json rows) with
  | Ok b -> b
  | Error msg -> Alcotest.failf "bench json: %s" msg

let test_overhead_gate () =
  let bench =
    load_bench [ ("a", 1000.0); ("a@flight", 985.0); ("b", 500.0); ("b@flight", 499.0) ]
  in
  let r = Regress.check_overhead ~suffix:"flight" ~max_pct:2.0 bench in
  Alcotest.(check int) "both pairs found" 2 (List.length r.Regress.overhead_verdicts);
  Alcotest.(check bool) "within budget" true r.Regress.overhead_ok;
  let tight = Regress.check_overhead ~suffix:"flight" ~max_pct:1.0 bench in
  Alcotest.(check bool) "1.5% overhead trips a 1% gate" false
    tight.Regress.overhead_ok;
  Alcotest.(check bool) "report names the offender" true
    (contains ~affix:"EXCEEDED" (Regress.overhead_to_string tight))

let test_overhead_gate_not_vacuous () =
  let bench = load_bench [ ("a", 1000.0) ] in
  let r = Regress.check_overhead ~suffix:"i16" ~max_pct:5.0 bench in
  Alcotest.(check bool) "no variant rows fails the gate" false
    r.Regress.overhead_ok;
  let orphan = load_bench [ ("a@i16", 950.0) ] in
  let r = Regress.check_overhead ~suffix:"i16" ~max_pct:5.0 orphan in
  Alcotest.(check bool) "variant without base fails the gate" false
    r.Regress.overhead_ok

let suite =
  [ ( "introspect.events",
      [ Alcotest.test_case "decision events round-trip" `Quick
          test_decision_roundtrip;
        Alcotest.test_case "sampling cadence" `Quick test_sampling_cadence ] );
    ( "introspect.contract",
      [ Alcotest.test_case "introspection does not perturb the search" `Quick
          test_introspection_does_not_perturb;
        Alcotest.test_case "no decision events without --introspect" `Quick
          test_no_decisions_without_introspect ] );
    ( "introspect.pairs",
      [ Alcotest.test_case "fresh introspected runs pair cleanly" `Quick
          test_pairs_ok_on_fresh_run;
        Alcotest.test_case "orphan annotation is a mismatch" `Quick
          test_orphan_annotation_is_mismatch;
        Alcotest.test_case "wrong-depth branch decision is a mismatch" `Quick
          test_wrong_depth_branch_is_mismatch ] );
    ( "introspect.flight",
      [ Alcotest.test_case "ring wraparound keeps newest + terminators" `Quick
          test_flight_wraparound;
        Alcotest.test_case "dump round-trips through the reader" `Quick
          test_flight_dump_roundtrip;
        Alcotest.test_case "SIGTERM dump reads back cleanly" `Quick
          test_flight_dump_on_sigterm;
        Alcotest.test_case "parallel dump is seq-consistent per domain" `Quick
          test_flight_dump_parallel ] );
    ( "introspect.explain",
      [ Alcotest.test_case "golden explain report" `Quick test_explain_golden;
        Alcotest.test_case "divergence vs self is empty" `Quick
          test_explain_divergence_self ] );
    ( "introspect.hotspots",
      [ Alcotest.test_case "golden hotspot attribution" `Quick
          test_hotspots_golden;
        Alcotest.test_case "folded-stack output is well-formed" `Quick
          test_hotspots_flame ] );
    ( "introspect.golden",
      [ Alcotest.test_case "golden introspected trace replays" `Quick
          test_golden_introspect_replay;
        Alcotest.test_case "golden introspected trace is byte-stable" `Quick
          test_golden_introspect_byte_stable ] );
    ( "introspect.registry",
      [ Alcotest.test_case "domains field round-trips (schema 2)" `Quick
          test_registry_domains_roundtrip;
        Alcotest.test_case "schema-1 lines still parse" `Quick
          test_registry_schema1_backward_compat ] );
    ( "introspect.overhead",
      [ Alcotest.test_case "overhead gate passes and trips" `Quick
          test_overhead_gate;
        Alcotest.test_case "overhead gate is not vacuous" `Quick
          test_overhead_gate_not_vacuous ] ) ]
