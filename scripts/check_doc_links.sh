#!/usr/bin/env sh
# Fail on dead relative links in the project documentation.
#
#   scripts/check_doc_links.sh [FILE...]
#
# Scans README.md and docs/*.md (or the given files) for markdown links
# [text](target) whose target is a relative path, and checks the target
# exists relative to the file containing the link.  External links
# (http/https/mailto) and pure fragments (#section) are skipped; a
# trailing #fragment on a relative link is stripped before the check.
# Exits non-zero listing every dead link.

set -u

cd "$(dirname "$0")/.." || exit 1

if [ "$#" -gt 0 ]; then
  files="$*"
else
  files="README.md docs/*.md"
fi

for f in $files; do
  [ -f "$f" ] || { echo "missing doc file: $f"; continue; }
  dir=$(dirname "$f")
  # one link target per line; tolerate several links on one source line
  grep -o '\[[^]]*\]([^)]*)' "$f" 2>/dev/null \
    | sed 's/^\[[^]]*\](\([^)]*\))$/\1/' \
    | while IFS= read -r target; do
        case "$target" in
          http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${target%%#*}
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
          echo "$f: dead link: $target"
        fi
      done
done > /tmp/dead_links.$$ 2>&1

if [ -s /tmp/dead_links.$$ ]; then
  cat /tmp/dead_links.$$
  rm -f /tmp/dead_links.$$
  echo "doc link check: FAIL"
  exit 1
fi
rm -f /tmp/dead_links.$$
echo "doc link check: OK"
