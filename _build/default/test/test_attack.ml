(* Tests for Abonn_attack and Abonn_crown: attacks find genuine
   counterexamples on violated problems, stay silent on robust ones, and
   the αβ-CROWN-style baseline agrees with the naive BaB verdicts. *)

module Rng = Abonn_util.Rng
module Budget = Abonn_util.Budget
module Region = Abonn_spec.Region
module Property = Abonn_spec.Property
module Verdict = Abonn_spec.Verdict
module Problem = Abonn_spec.Problem
module Network = Abonn_nn.Network
module Builder = Abonn_nn.Builder
module Attack = Abonn_attack.Attack
module Alphabeta = Abonn_crown.Alphabeta
module Result = Abonn_bab.Result
module Bfs = Abonn_bab.Bfs

let random_problem ?(seed = 0) ?(dims = [ 2; 6; 2 ]) ?(eps = 0.3) () =
  let rng = Rng.create seed in
  let net = Builder.mlp rng ~dims in
  let in_dim = List.hd dims in
  let center = Array.init in_dim (fun _ -> Rng.range rng (-0.5) 0.5) in
  let region = Region.linf_ball ~center ~eps () in
  let out_dim = List.nth dims (List.length dims - 1) in
  let label = Network.predict net center in
  let property = Property.robustness ~num_classes:out_dim ~label in
  Problem.create ~network:net ~region ~property ()

let attacks = [ Attack.fgsm; Attack.pgd (); Attack.random_search (); Attack.best_effort ]

let test_attacks_hit_obvious_violation () =
  let problem = random_problem ~seed:1 ~eps:10.0 () in
  let found = ref 0 in
  List.iter
    (fun (a : Attack.t) ->
      match a.Attack.run (Rng.create 5) problem with
      | Some x ->
        incr found;
        Alcotest.(check bool) (a.Attack.name ^ " cex genuine") true
          (Problem.is_counterexample problem x)
      | None -> ())
    attacks;
  Alcotest.(check bool) "at least pgd and best-effort hit" true (!found >= 2)

let test_attacks_silent_on_robust () =
  let problem = random_problem ~seed:2 ~eps:1e-7 () in
  List.iter
    (fun (a : Attack.t) ->
      Alcotest.(check bool) (a.Attack.name ^ " finds nothing") true
        (a.Attack.run (Rng.create 5) problem = None))
    attacks

let test_attack_results_inside_region () =
  for seed = 3 to 12 do
    let problem = random_problem ~seed ~eps:1.0 () in
    match Attack.best_effort.Attack.run (Rng.create seed) problem with
    | None -> ()
    | Some x ->
      Alcotest.(check bool)
        (Printf.sprintf "inside region (seed %d)" seed)
        true
        (Region.contains problem.Problem.region x)
  done

let test_pgd_deterministic () =
  let problem = random_problem ~seed:4 ~eps:0.8 () in
  let a = Attack.pgd () in
  let r1 = a.Attack.run (Rng.create 9) problem in
  let r2 = a.Attack.run (Rng.create 9) problem in
  Alcotest.(check bool) "same result" true (r1 = r2)

let test_pgd_beats_random_on_narrow_violation () =
  (* On mid-size regions PGD should find violations at least as often as
     blind sampling over matched seeds. *)
  let pgd_hits = ref 0 and rand_hits = ref 0 in
  for seed = 20 to 39 do
    let problem = random_problem ~seed ~dims:[ 3; 8; 2 ] ~eps:0.45 () in
    (match (Attack.pgd ()).Attack.run (Rng.create seed) problem with
     | Some _ -> incr pgd_hits
     | None -> ());
    match (Attack.random_search ~samples:120 ()).Attack.run (Rng.create seed) problem with
    | Some _ -> incr rand_hits
    | None -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "pgd (%d) >= random (%d)" !pgd_hits !rand_hits)
    true
    (!pgd_hits >= !rand_hits)

(* --- αβ-CROWN-style baseline --- *)

let test_crown_agrees_with_bfs () =
  let solved = ref 0 in
  for seed = 50 to 64 do
    let problem = random_problem ~seed ~eps:0.35 () in
    let bfs = Bfs.verify ~budget:(Budget.of_calls 4000) problem in
    let crown = Alphabeta.verify ~budget:(Budget.of_calls 4000) problem in
    match bfs.Result.verdict, crown.Result.verdict with
    | Verdict.Timeout, _ | _, Verdict.Timeout -> ()
    | v1, v2 ->
      incr solved;
      Alcotest.(check bool)
        (Printf.sprintf "verdict agreement (seed %d)" seed)
        true
        (Verdict.is_verified v1 = Verdict.is_verified v2)
  done;
  Alcotest.(check bool) "most instances solved" true (!solved >= 10)

let test_crown_attack_short_circuits () =
  (* On a grossly violated problem the attack phase should conclude with
     zero AppVer calls. *)
  let problem = random_problem ~seed:1 ~eps:10.0 () in
  let r = Alphabeta.verify problem in
  Alcotest.(check bool) "falsified" true (Verdict.is_falsified r.Result.verdict);
  Alcotest.(check int) "no bound computations" 0 r.Result.stats.Result.appver_calls

let test_crown_cex_valid () =
  for seed = 70 to 79 do
    let problem = random_problem ~seed ~eps:0.6 () in
    let r = Alphabeta.verify ~budget:(Budget.of_calls 2000) problem in
    match r.Result.verdict with
    | Verdict.Falsified x ->
      Alcotest.(check bool)
        (Printf.sprintf "genuine cex (seed %d)" seed)
        true
        (Problem.is_counterexample problem x)
    | Verdict.Verified | Verdict.Timeout -> ()
  done

let suite =
  [ ( "attack.portfolio",
      [ Alcotest.test_case "hits obvious violation" `Quick test_attacks_hit_obvious_violation;
        Alcotest.test_case "silent on robust" `Quick test_attacks_silent_on_robust;
        Alcotest.test_case "results inside region" `Quick test_attack_results_inside_region;
        Alcotest.test_case "pgd deterministic" `Quick test_pgd_deterministic;
        Alcotest.test_case "pgd >= random" `Quick test_pgd_beats_random_on_narrow_violation
      ] );
    ( "crown.alphabeta",
      [ Alcotest.test_case "agrees with bfs" `Quick test_crown_agrees_with_bfs;
        Alcotest.test_case "attack short-circuits" `Quick test_crown_attack_short_circuits;
        Alcotest.test_case "cex valid" `Quick test_crown_cex_valid
      ] )
  ]
