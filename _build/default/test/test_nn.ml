(* Tests for Abonn_nn: layer forward/backward (gradients checked against
   finite differences), conv materialisation, affine compilation, trainer
   convergence on a separable toy problem, serialization round-trips. *)

module Matrix = Abonn_tensor.Matrix
module Vector = Abonn_tensor.Vector
module Rng = Abonn_util.Rng
module Layer = Abonn_nn.Layer
module Conv = Abonn_nn.Conv
module Network = Abonn_nn.Network
module Affine = Abonn_nn.Affine
module Builder = Abonn_nn.Builder
module Trainer = Abonn_nn.Trainer
module Serialize = Abonn_nn.Serialize

let check_float = Alcotest.(check (float 1e-6))
let vec = Alcotest.testable Vector.pp (Vector.approx_equal ~tol:1e-6)

(* A fixed small network: 2 -> 3 -> 2, weights chosen by hand. *)
let tiny_net () =
  let w1 = Matrix.of_rows [| [| 1.0; -1.0 |]; [| 2.0; 0.5 |]; [| -1.0; 1.0 |] |] in
  let b1 = [| 0.0; -1.0; 0.5 |] in
  let w2 = Matrix.of_rows [| [| 1.0; 1.0; 1.0 |]; [| -1.0; 0.0; 2.0 |] |] in
  let b2 = [| 0.1; -0.2 |] in
  Network.create [ Layer.linear w1 b1; Layer.Relu 3; Layer.linear w2 b2 ]

let test_network_forward () =
  let net = tiny_net () in
  let x = [| 1.0; 2.0 |] in
  (* z1 = [-1; 2; 1.5]; relu = [0; 2; 1.5]; y = [0+2+1.5+0.1; 0+0+3-0.2] *)
  Alcotest.check vec "forward" [| 3.6; 2.8 |] (Network.forward net x)

let test_network_dims () =
  let net = tiny_net () in
  Alcotest.(check int) "input" 2 (Network.input_dim net);
  Alcotest.(check int) "output" 2 (Network.output_dim net);
  Alcotest.(check int) "relus" 3 (Network.num_relus net);
  Alcotest.(check int) "neurons" 5 (Network.num_neurons net)

let test_network_trace () =
  let net = tiny_net () in
  let tr = Network.trace net [| 1.0; 2.0 |] in
  Alcotest.(check int) "trace length" 4 (Array.length tr);
  Alcotest.check vec "input kept" [| 1.0; 2.0 |] tr.(0);
  Alcotest.check vec "output last" (Network.forward net [| 1.0; 2.0 |]) tr.(3)

let test_network_create_rejects_mismatch () =
  let w = Matrix.zeros 3 2 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Network.create [ Layer.linear w (Array.make 3 0.0); Layer.Relu 4 ]);
       false
     with Invalid_argument _ -> true)

(* Finite-difference check of the input gradient of a scalar output. *)
let finite_diff_grad f x =
  let eps = 1e-5 in
  Array.mapi
    (fun i _ ->
      let xp = Array.copy x and xm = Array.copy x in
      xp.(i) <- xp.(i) +. eps;
      xm.(i) <- xm.(i) -. eps;
      (f xp -. f xm) /. (2.0 *. eps))
    x

let test_input_gradient_matches_fd () =
  let rng = Rng.create 123 in
  let net = Builder.mlp rng ~dims:[ 4; 6; 3 ] in
  let d_out = [| 1.0; -2.0; 0.5 |] in
  (* x away from ReLU kinks with overwhelming probability *)
  let x = Array.init 4 (fun _ -> Rng.range rng (-1.0) 1.0) in
  let f x = Vector.dot d_out (Network.forward net x) in
  let g = Network.input_gradient net x ~d_out in
  let g_fd = finite_diff_grad f x in
  Alcotest.(check bool) "gradient matches finite differences" true
    (Vector.approx_equal ~tol:1e-4 g g_fd)

let test_param_gradient_descends () =
  (* One SGD step on a single sample must reduce that sample's loss. *)
  let rng = Rng.create 7 in
  let net = Builder.mlp rng ~dims:[ 3; 5; 2 ] in
  let x = [| 0.5; -0.3; 0.8 |] in
  let label = 1 in
  let loss net =
    let logits = Network.forward net x in
    fst (Trainer.cross_entropy_grad logits label)
  in
  let logits = Network.forward net x in
  let _, d_out = Trainer.cross_entropy_grad logits label in
  let _, grads = Network.backprop net x ~d_out in
  let net' = Network.apply_grads net grads ~lr:0.1 in
  Alcotest.(check bool) "loss decreased" true (loss net' < loss net)

(* --- Conv --- *)

let test_conv_geometry () =
  let rng = Rng.create 1 in
  let c = Conv.create rng ~in_channels:1 ~in_h:5 ~in_w:5 ~out_channels:2 ~kernel:3 ~stride:2 ~padding:1 in
  Alcotest.(check int) "out_h" 3 (Conv.out_h c);
  Alcotest.(check int) "out_w" 3 (Conv.out_w c);
  Alcotest.(check int) "input dim" 25 (Conv.input_dim c);
  Alcotest.(check int) "output dim" 18 (Conv.output_dim c)

let test_conv_known_value () =
  (* 1 channel, 3x3 input, 2x2 kernel of ones, stride 1, no padding. *)
  let rng = Rng.create 1 in
  let c0 = Conv.create rng ~in_channels:1 ~in_h:3 ~in_w:3 ~out_channels:1 ~kernel:2 ~stride:1 ~padding:0 in
  let c = { c0 with Conv.weight = Array.make 4 1.0; bias = [| 0.5 |] } in
  let x = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0 |] in
  (* windows: [1,2,4,5]=12, [2,3,5,6]=16, [4,5,7,8]=24, [5,6,8,9]=28; +bias *)
  Alcotest.check vec "conv values" [| 12.5; 16.5; 24.5; 28.5 |] (Conv.forward c x)

let test_conv_matrix_agrees_with_forward () =
  let rng = Rng.create 42 in
  let c = Conv.create rng ~in_channels:2 ~in_h:4 ~in_w:4 ~out_channels:3 ~kernel:3 ~stride:1 ~padding:1 in
  let w, b = Conv.to_matrix c in
  for trial = 1 to 5 do
    ignore trial;
    let x = Array.init (Conv.input_dim c) (fun _ -> Rng.range rng (-1.0) 1.0) in
    let direct = Conv.forward c x in
    let via_matrix = Vector.add (Matrix.mv w x) b in
    Alcotest.(check bool) "materialisation agrees" true
      (Vector.approx_equal ~tol:1e-9 direct via_matrix)
  done

let test_conv_backward_matches_fd () =
  let rng = Rng.create 5 in
  let c = Conv.create rng ~in_channels:1 ~in_h:4 ~in_w:4 ~out_channels:2 ~kernel:2 ~stride:1 ~padding:0 in
  let x = Array.init (Conv.input_dim c) (fun _ -> Rng.range rng (-1.0) 1.0) in
  let d_out = Array.init (Conv.output_dim c) (fun _ -> Rng.range rng (-1.0) 1.0) in
  let f x = Vector.dot d_out (Conv.forward c x) in
  let d_in, _ = Conv.backward c ~input:x ~d_out in
  Alcotest.(check bool) "conv input grad" true
    (Vector.approx_equal ~tol:1e-4 d_in (finite_diff_grad f x))

(* --- Affine compilation --- *)

let test_affine_matches_network () =
  let rng = Rng.create 99 in
  let net = Builder.mlp rng ~dims:[ 3; 4; 4; 2 ] in
  let affine = Affine.of_network net in
  Alcotest.(check int) "relus" (Network.num_relus net) Affine.(affine.num_relus);
  for trial = 1 to 10 do
    ignore trial;
    let x = Array.init 3 (fun _ -> Rng.range rng (-2.0) 2.0) in
    Alcotest.(check bool) "same function" true
      (Vector.approx_equal ~tol:1e-9 (Network.forward net x) (Affine.forward affine x))
  done

let test_affine_convnet_matches () =
  let rng = Rng.create 77 in
  let net =
    Builder.convnet rng ~in_channels:1 ~in_h:6 ~in_w:6
      ~convs:[ { Builder.out_channels = 2; kernel = 3; stride = 2; padding = 1 } ]
      ~dense:[ 8 ] ~num_classes:3
  in
  let affine = Affine.of_network net in
  for trial = 1 to 5 do
    ignore trial;
    let x = Array.init 36 (fun _ -> Rng.uniform rng) in
    Alcotest.(check bool) "conv compile agrees" true
      (Vector.approx_equal ~tol:1e-8 (Network.forward net x) (Affine.forward affine x))
  done

let test_affine_fuses_consecutive_affine () =
  (* Linear;Linear;Relu;Linear must fuse to exactly 2 affine layers. *)
  let rng = Rng.create 3 in
  let l1 = Layer.random_linear rng ~in_dim:3 ~out_dim:4 in
  let l2 = Layer.random_linear rng ~in_dim:4 ~out_dim:5 in
  let l3 = Layer.random_linear rng ~in_dim:5 ~out_dim:2 in
  let net = Network.create [ l1; l2; Layer.Relu 5; l3 ] in
  let affine = Affine.of_network net in
  Alcotest.(check int) "two affine layers" 2 (Affine.num_layers affine);
  let x = [| 0.3; -0.2; 0.9 |] in
  Alcotest.(check bool) "fusion preserves semantics" true
    (Vector.approx_equal ~tol:1e-9 (Network.forward net x) (Affine.forward affine x))

let test_affine_relu_indexing_roundtrip () =
  let rng = Rng.create 11 in
  let net = Builder.mlp rng ~dims:[ 2; 3; 4; 2 ] in
  let affine = Affine.of_network net in
  Alcotest.(check int) "K" 7 Affine.(affine.num_relus);
  for k = 0 to 6 do
    let layer, idx = Affine.relu_position affine k in
    Alcotest.(check int) "roundtrip" k (Affine.relu_index affine ~layer ~idx)
  done;
  Alcotest.(check bool) "out of range" true
    (try ignore (Affine.relu_position affine 7); false with Invalid_argument _ -> true)

let test_affine_pre_activations () =
  let net = tiny_net () in
  let affine = Affine.of_network net in
  let pre = Affine.pre_activations affine [| 1.0; 2.0 |] in
  Alcotest.(check int) "two layers" 2 (Array.length pre);
  Alcotest.check vec "hidden pre-activation" [| -1.0; 2.0; 1.5 |] pre.(0);
  Alcotest.check vec "output" [| 3.6; 2.8 |] pre.(1)

let test_affine_rejects_trailing_relu () =
  let rng = Rng.create 3 in
  let l1 = Layer.random_linear rng ~in_dim:2 ~out_dim:3 in
  let net = Network.create [ l1; Layer.Relu 3 ] in
  Alcotest.(check bool) "raises" true
    (try ignore (Affine.of_network net); false with Invalid_argument _ -> true)

(* --- Trainer --- *)

let blob_samples rng n =
  (* Two linearly separable Gaussian blobs in 2-D. *)
  Array.init n (fun i ->
      let label = i mod 2 in
      let cx = if label = 0 then -1.0 else 1.0 in
      { Trainer.features = [| cx +. (0.3 *. Rng.gaussian rng); 0.3 *. Rng.gaussian rng |];
        label })

let test_trainer_learns_blobs () =
  let rng = Rng.create 2024 in
  let net = Builder.mlp rng ~dims:[ 2; 8; 2 ] in
  let samples = blob_samples rng 200 in
  let before = Trainer.accuracy net samples in
  let config = { Trainer.default_config with epochs = 20 } in
  let net = Trainer.train ~config rng net samples in
  let after = Trainer.accuracy net samples in
  Alcotest.(check bool)
    (Printf.sprintf "accuracy improves (%.2f -> %.2f)" before after)
    true
    (after >= 0.95)

let test_trainer_loss_decreases () =
  let rng = Rng.create 31 in
  let net = Builder.mlp rng ~dims:[ 2; 6; 2 ] in
  let samples = blob_samples rng 100 in
  let loss0 = Trainer.average_loss net samples in
  let config = { Trainer.default_config with epochs = 5 } in
  let net = Trainer.train ~config rng net samples in
  Alcotest.(check bool) "loss decreases" true (Trainer.average_loss net samples < loss0)

let test_softmax_normalises () =
  let p = Trainer.softmax [| 1.0; 2.0; 3.0 |] in
  check_float "sums to one" 1.0 (Array.fold_left ( +. ) 0.0 p);
  Alcotest.(check bool) "monotone" true (p.(0) < p.(1) && p.(1) < p.(2))

let test_softmax_stable_large_logits () =
  let p = Trainer.softmax [| 1000.0; 0.0 |] in
  Alcotest.(check bool) "no nan" true (not (Float.is_nan p.(0)));
  check_float "saturates" 1.0 p.(0)

(* --- Serialize --- *)

let test_serialize_roundtrip_mlp () =
  let rng = Rng.create 55 in
  let net = Builder.mlp rng ~dims:[ 3; 5; 2 ] in
  let net' = Serialize.of_string (Serialize.to_string net) in
  let x = [| 0.1; -0.7; 0.4 |] in
  Alcotest.check vec "roundtrip function" (Network.forward net x) (Network.forward net' x)

let test_serialize_roundtrip_conv () =
  let rng = Rng.create 56 in
  let net =
    Builder.convnet rng ~in_channels:1 ~in_h:5 ~in_w:5
      ~convs:[ { Builder.out_channels = 2; kernel = 3; stride = 1; padding = 0 } ]
      ~dense:[] ~num_classes:2
  in
  let net' = Serialize.of_string (Serialize.to_string net) in
  let x = Array.init 25 (fun i -> float_of_int i /. 25.0) in
  Alcotest.check vec "conv roundtrip" (Network.forward net x) (Network.forward net' x)

let test_serialize_rejects_garbage () =
  Alcotest.(check bool) "bad header" true
    (try ignore (Serialize.of_string "not a network"); false with Failure _ -> true);
  Alcotest.(check bool) "truncated" true
    (try ignore (Serialize.of_string "abonn-network 1 2\nrelu 3\n"); false
     with Failure _ -> true)

let test_serialize_file_roundtrip () =
  let rng = Rng.create 57 in
  let net = Builder.mlp rng ~dims:[ 2; 3; 2 ] in
  let path = Filename.temp_file "abonn_test" ".net" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save net path;
      let net' = Serialize.load path in
      let x = [| 0.5; -0.5 |] in
      Alcotest.check vec "file roundtrip" (Network.forward net x) (Network.forward net' x))

(* --- qcheck: network forward is piecewise linear => positively homogeneous
   along fixed directions between kinks is hard to test; instead test that
   forward is deterministic and Lipschitz on small perturbations. --- *)

let prop_forward_deterministic =
  QCheck.Test.make ~name:"forward deterministic" ~count:50
    QCheck.(array_of_size (QCheck.Gen.return 3) (float_bound_inclusive 2.0))
    (fun x ->
      let rng = Rng.create 1234 in
      let net = Builder.mlp rng ~dims:[ 3; 4; 2 ] in
      Vector.approx_equal (Network.forward net x) (Network.forward net x))

let qtest = QCheck_alcotest.to_alcotest

let suite =
  [ ( "nn.network",
      [ Alcotest.test_case "forward" `Quick test_network_forward;
        Alcotest.test_case "dims" `Quick test_network_dims;
        Alcotest.test_case "trace" `Quick test_network_trace;
        Alcotest.test_case "mismatch rejected" `Quick test_network_create_rejects_mismatch;
        Alcotest.test_case "input grad vs fd" `Quick test_input_gradient_matches_fd;
        Alcotest.test_case "sgd step descends" `Quick test_param_gradient_descends;
        qtest prop_forward_deterministic
      ] );
    ( "nn.conv",
      [ Alcotest.test_case "geometry" `Quick test_conv_geometry;
        Alcotest.test_case "known value" `Quick test_conv_known_value;
        Alcotest.test_case "matrix agrees" `Quick test_conv_matrix_agrees_with_forward;
        Alcotest.test_case "backward vs fd" `Quick test_conv_backward_matches_fd
      ] );
    ( "nn.affine",
      [ Alcotest.test_case "mlp matches" `Quick test_affine_matches_network;
        Alcotest.test_case "convnet matches" `Quick test_affine_convnet_matches;
        Alcotest.test_case "fuses affine" `Quick test_affine_fuses_consecutive_affine;
        Alcotest.test_case "relu indexing" `Quick test_affine_relu_indexing_roundtrip;
        Alcotest.test_case "pre-activations" `Quick test_affine_pre_activations;
        Alcotest.test_case "trailing relu rejected" `Quick test_affine_rejects_trailing_relu
      ] );
    ( "nn.trainer",
      [ Alcotest.test_case "learns blobs" `Quick test_trainer_learns_blobs;
        Alcotest.test_case "loss decreases" `Quick test_trainer_loss_decreases;
        Alcotest.test_case "softmax normalises" `Quick test_softmax_normalises;
        Alcotest.test_case "softmax stable" `Quick test_softmax_stable_large_logits
      ] );
    ( "nn.serialize",
      [ Alcotest.test_case "mlp roundtrip" `Quick test_serialize_roundtrip_mlp;
        Alcotest.test_case "conv roundtrip" `Quick test_serialize_roundtrip_conv;
        Alcotest.test_case "rejects garbage" `Quick test_serialize_rejects_garbage;
        Alcotest.test_case "file roundtrip" `Quick test_serialize_file_roundtrip
      ] )
  ]
