(* Tests for Abonn_harness: engine wrappers, cost model, experiment
   drivers (on a miniature suite) and report rendering. *)

module Models = Abonn_data.Models
module Instances = Abonn_data.Instances
module Runner = Abonn_harness.Runner
module Experiment = Abonn_harness.Experiment
module Report = Abonn_harness.Report
module Result = Abonn_bab.Result
module Verdict = Abonn_spec.Verdict

(* One shared miniature suite: a single MLP family, few instances, so the
   whole harness test group stays fast. *)
let mini_suite =
  lazy
    (Experiment.build_suite ~instances_per_model:3 ~epochs:6
       ~models:[ Models.mnist_l2 ] ())

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0

(* --- Runner --- *)

let test_runner_engine_names () =
  Alcotest.(check (list string)) "line-up"
    [ "bab-baseline"; "ab-crown"; "abonn" ]
    (List.map (fun (e : Runner.engine) -> e.Runner.name) Runner.default_engines)

let test_runner_record_fields () =
  let suite = Lazy.force mini_suite in
  match suite.Experiment.instances with
  | [] -> Alcotest.fail "no instances"
  | inst :: _ ->
    let r = Runner.run_instance ~calls:50 (Runner.abonn ()) inst in
    Alcotest.(check string) "engine name" "abonn" r.Runner.engine;
    Alcotest.(check bool) "budget respected" true
      (r.Runner.result.Result.stats.Result.appver_calls <= 51);
    Alcotest.(check bool) "model time positive" true (r.Runner.model_time > 0.0)

let test_runner_cost_model_consistent () =
  let suite = Lazy.force mini_suite in
  match suite.Experiment.instances with
  | [] -> Alcotest.fail "no instances"
  | inst :: _ ->
    let r = Runner.run_instance ~calls:50 Runner.bab_baseline inst in
    let calls = r.Runner.result.Result.stats.Result.appver_calls in
    Alcotest.(check bool) "model_time = cost * calls" true
      (calls = 0 || r.Runner.model_time /. float_of_int calls > 0.0)

(* --- Experiment --- *)

let test_table1_rows () =
  let suite = Lazy.force mini_suite in
  let rows = Experiment.table1 suite in
  Alcotest.(check int) "one model" 1 (List.length rows);
  let row = List.hd rows in
  Alcotest.(check string) "name" "mnist_l2" row.Experiment.model;
  Alcotest.(check bool) "neurons positive" true (row.Experiment.neurons > 0);
  Alcotest.(check int) "instances counted"
    (List.length suite.Experiment.instances)
    row.Experiment.num_instances

let mini_rq1 = lazy (Experiment.rq1 ~calls:150 (Lazy.force mini_suite))

let test_rq1_covers_all_pairs () =
  let suite = Lazy.force mini_suite in
  let rq = Lazy.force mini_rq1 in
  Alcotest.(check int) "records = engines x instances"
    (3 * List.length suite.Experiment.instances)
    (List.length rq.Experiment.records)

let test_table2_structure () =
  let rq = Lazy.force mini_rq1 in
  let t2 = Experiment.table2 rq in
  Alcotest.(check int) "one model row" 1 (List.length t2);
  let _, cells = List.hd t2 in
  Alcotest.(check int) "three engines" 3 (List.length cells);
  List.iter
    (fun (c : Experiment.table2_cell) ->
      Alcotest.(check bool) "solved bounded" true
        (c.Experiment.solved >= 0 && c.Experiment.solved <= 3))
    cells

let test_fig3_sizes () =
  let rq = Lazy.force mini_rq1 in
  let sizes = Experiment.fig3 rq in
  Alcotest.(check int) "one size per instance"
    (List.length (Lazy.force mini_suite).Experiment.instances)
    (Array.length sizes);
  Array.iter (fun s -> Alcotest.(check bool) "odd node count" true (int_of_float s mod 2 = 1)) sizes

let test_fig4_points_positive () =
  let rq = Lazy.force mini_rq1 in
  let per_model = Experiment.fig4 rq in
  List.iter
    (fun (_, points) ->
      List.iter
        (fun (t, s) ->
          Alcotest.(check bool) "positive time" true (t > 0.0);
          Alcotest.(check bool) "positive speedup" true (s > 0.0))
        points)
    per_model

let test_rq3_classes () =
  let rq = Lazy.force mini_rq1 in
  let per_model = Experiment.rq3 rq in
  List.iter
    (fun (_, boxes) ->
      Alcotest.(check int) "2 engines x 2 classes" 4 (List.length boxes);
      List.iter
        (fun (b : Experiment.rq3_box) ->
          match b.Experiment.box with
          | Some _ -> Alcotest.(check bool) "count positive" true (b.Experiment.count > 0)
          | None -> Alcotest.(check int) "empty box has zero count" 0 b.Experiment.count)
        boxes)
    per_model

let test_rq2_grid_shape () =
  let suite = Lazy.force mini_suite in
  let grids =
    Experiment.rq2 ~calls:60 ~lambdas:[ 0.0; 1.0 ] ~cs:[ 0.0; 0.2 ] ~max_instances:1 suite
  in
  Alcotest.(check int) "one model" 1 (List.length grids);
  let _, g = List.hd grids in
  Alcotest.(check int) "four cells" 4 (List.length g.Experiment.cells);
  List.iter
    (fun (_, v) -> Alcotest.(check bool) "cell finite" true (Float.is_finite v))
    g.Experiment.cells

let test_ablation_rows () =
  let suite = Lazy.force mini_suite in
  let rows = Experiment.ablation ~calls:60 ~max_instances:1 suite in
  Alcotest.(check int) "twelve variants" 12 (List.length rows);
  List.iter
    (fun (name, (c : Experiment.table2_cell)) ->
      Alcotest.(check string) "names match" name c.Experiment.engine)
    rows

(* --- Report rendering --- *)

let test_report_table1 () =
  let s = Report.table1 (Experiment.table1 (Lazy.force mini_suite)) in
  Alcotest.(check bool) "mentions model" true (contains s "mnist_l2");
  Alcotest.(check bool) "has header" true (contains s "#Neurons")

let test_report_table2 () =
  let s = Report.table2 (Experiment.table2 (Lazy.force mini_rq1)) in
  Alcotest.(check bool) "has engines" true (contains s "abonn solved")

let test_report_fig3 () =
  let s = Report.fig3 (Experiment.fig3 (Lazy.force mini_rq1)) in
  Alcotest.(check bool) "histogram rendered" true (contains s "tree sizes");
  Alcotest.(check string) "empty data handled" "Fig. 3: no data\n" (Report.fig3 [||])

let test_report_fig4 () =
  let s = Report.fig4 (Experiment.fig4 (Lazy.force mini_rq1)) in
  Alcotest.(check bool) "speedup text" true (contains s "speedup")

let test_report_fig6 () =
  let s = Report.fig6 (Experiment.rq3 (Lazy.force mini_rq1)) in
  Alcotest.(check bool) "has classes" true (contains s "violated")

let test_report_fig5_and_ablation () =
  let suite = Lazy.force mini_suite in
  let grids =
    Experiment.rq2 ~calls:40 ~lambdas:[ 0.0; 1.0 ] ~cs:[ 0.0 ] ~max_instances:1 suite
  in
  let s = Report.fig5 grids in
  Alcotest.(check bool) "best starred" true (contains s "*");
  let rows = Experiment.ablation ~calls:40 ~max_instances:1 suite in
  let s = Report.ablation rows in
  Alcotest.(check bool) "variants listed" true (contains s "abonn(default)")

let suite =
  [ ( "harness.runner",
      [ Alcotest.test_case "engine names" `Quick test_runner_engine_names;
        Alcotest.test_case "record fields" `Quick test_runner_record_fields;
        Alcotest.test_case "cost model" `Quick test_runner_cost_model_consistent
      ] );
    ( "harness.experiment",
      [ Alcotest.test_case "table1 rows" `Quick test_table1_rows;
        Alcotest.test_case "rq1 coverage" `Quick test_rq1_covers_all_pairs;
        Alcotest.test_case "table2 structure" `Quick test_table2_structure;
        Alcotest.test_case "fig3 sizes" `Quick test_fig3_sizes;
        Alcotest.test_case "fig4 points" `Quick test_fig4_points_positive;
        Alcotest.test_case "rq3 classes" `Quick test_rq3_classes;
        Alcotest.test_case "rq2 grid" `Quick test_rq2_grid_shape;
        Alcotest.test_case "ablation rows" `Quick test_ablation_rows
      ] );
    ( "harness.report",
      [ Alcotest.test_case "table1" `Quick test_report_table1;
        Alcotest.test_case "table2" `Quick test_report_table2;
        Alcotest.test_case "fig3" `Quick test_report_fig3;
        Alcotest.test_case "fig4" `Quick test_report_fig4;
        Alcotest.test_case "fig6" `Quick test_report_fig6;
        Alcotest.test_case "fig5/ablation" `Quick test_report_fig5_and_ablation
      ] )
  ]

let test_report_csv () =
  let rq = Lazy.force mini_rq1 in
  let s = Report.csv rq.Experiment.records in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + one line per record"
    (1 + List.length rq.Experiment.records)
    (List.length lines);
  Alcotest.(check bool) "header fields" true (contains (List.hd lines) "model_time");
  List.iteri
    (fun i line ->
      if i > 0 then
        Alcotest.(check int) "11 comma-separated fields" 11
          (List.length (String.split_on_char ',' line)))
    lines

let csv_tests = ( "harness.csv", [ Alcotest.test_case "csv export" `Quick test_report_csv ] )

let suite = suite @ [ csv_tests ]
